package core

import (
	"context"
	"fmt"

	"bright/internal/cosim"
	"bright/internal/pdn"
)

// Batch evaluates a sequence of configurations while reusing every
// operator that consecutive points share:
//
//   - one cosim.Runner (assembled thermal FV network, its preconditioner
//     and the previous converged temperature field) per hydrodynamic
//     condition, rebuilt only when (FlowMLMin, InletTempC) changes;
//   - one pdn.Session (power-grid matrix plus multigrid setup and the
//     previous voltage field) for the whole batch, since the grid matrix
//     does not depend on Config at all.
//
// Fed points in sim.SweepSpec.Grid() row-major order — flow outermost,
// load innermost — every run of points sharing (flow, inlet) chains warm
// starts through one thermal session, which is the sweep-level win this
// type exists for. A Batch is not safe for concurrent use.
type Batch struct {
	runner *cosim.Runner
	pdnSes *pdn.Session
}

// NewBatch returns an empty batch; caches fill lazily on first use.
func NewBatch() *Batch { return &Batch{} }

// EvaluateContext evaluates one configuration, reusing cached state from
// previous evaluations where still valid.
func (b *Batch) EvaluateContext(ctx context.Context, cfg Config) (*Report, error) {
	s, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if b.runner == nil || !b.runner.Matches(cfg.FlowMLMin, cfg.InletTempC) {
		r, err := cosim.NewRunner(cfg.FlowMLMin, cfg.InletTempC)
		if err != nil {
			return nil, fmt.Errorf("core: co-simulation: %w", err)
		}
		b.runner = r
	}
	s.pdnSession = b.pdnSes
	rep, err := s.evaluateWith(ctx, b.runner.RunContext)
	if s.pdnSession != nil {
		b.pdnSes = s.pdnSession // keep the lazily-built session for the next point
	}
	return rep, err
}
