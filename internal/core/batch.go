package core

import (
	"context"
	"fmt"
	"math"

	"bright/internal/cosim"
	"bright/internal/floorplan"
	"bright/internal/mesh"
	"bright/internal/pdn"
)

// Batch evaluates a sequence of configurations while reusing every
// operator that consecutive points share:
//
//   - one cosim.Runner (assembled thermal FV network, its preconditioner
//     and the previous converged temperature field) per hydrodynamic
//     condition, rebuilt only when (FlowMLMin, InletTempC) changes;
//   - one pdn.Session (power-grid matrix plus multigrid setup and the
//     previous voltage field) for the whole batch, since the grid matrix
//     does not depend on Config at all.
//
// Fed points in sim.SweepSpec.Grid() row-major order — flow outermost,
// load innermost — every run of points sharing (flow, inlet) chains warm
// starts through one thermal session, which is the sweep-level win this
// type exists for. A Batch is not safe for concurrent use.
type Batch struct {
	runner *cosim.Runner
	pdnSes *pdn.Session

	// gridCache holds chain-prefetched PDN solutions keyed by pdnKey:
	// PrefetchChain batch-solves the distinct grid points of a sweep
	// chain in one block-Krylov run, and EvaluateContext serves each
	// point's grid stage from here instead of solving it again.
	gridCache map[string]*pdn.Solution
}

// NewBatch returns an empty batch; caches fill lazily on first use.
func NewBatch() *Batch { return &Batch{} }

// pdnKey identifies a configuration up to the fields the PDN solve
// depends on — SupplyVoltage and ChipLoad — quantized like
// Config.CanonicalKey so tolerance-equal points share one entry.
func pdnKey(cfg Config) string {
	q := func(v float64) float64 {
		r := math.Round(v/keyTolerance) * keyTolerance
		if r == 0 {
			r = 0
		}
		return r
	}
	return fmt.Sprintf("%.9f|%.9f", q(cfg.SupplyVoltage), q(cfg.ChipLoad))
}

// PrefetchChain batch-solves the PDN operating points of a sweep chain
// before its sequential walk begins. The grid inputs depend only on
// (SupplyVoltage, ChipLoad), so the distinct grid points of the whole
// chain are known upfront and solve together through the session's
// block Krylov path — one matrix traversal per iteration serves every
// point, instead of each point traversing the matrix alone during the
// walk. Duplicate points dedupe to one solve. A prefetch error leaves
// the batch fully usable: EvaluateContext simply solves per point.
func (b *Batch) PrefetchChain(ctx context.Context, cfgs []Config) error {
	if len(cfgs) < 2 {
		return nil
	}
	p, _, err := pdn.Power7Problem()
	if err != nil {
		return err
	}
	fp := floorplan.Power7()
	var keys []string
	var loads []*mesh.Field2D
	var supplies []float64
	seen := make(map[string]bool, len(cfgs))
	for _, cfg := range cfgs {
		if err := cfg.Validate(); err != nil {
			return err
		}
		k := pdnKey(cfg)
		if seen[k] || b.gridCache[k] != nil {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
		loads = append(loads, pdnLoadFor(p, fp, cfg))
		supplies = append(supplies, cfg.SupplyVoltage)
	}
	if len(keys) == 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if b.pdnSes == nil {
		ses, err := pdn.NewSession(p)
		if err != nil {
			return fmt.Errorf("core: power grid: %w", err)
		}
		b.pdnSes = ses
	}
	sols, err := b.pdnSes.SolveBatch(loads, supplies)
	if err != nil {
		return fmt.Errorf("core: chain prefetch: %w", err)
	}
	if b.gridCache == nil {
		b.gridCache = make(map[string]*pdn.Solution, len(keys))
	}
	for i, k := range keys {
		b.gridCache[k] = sols[i]
	}
	return nil
}

// EvaluateContext evaluates one configuration, reusing cached state from
// previous evaluations where still valid.
func (b *Batch) EvaluateContext(ctx context.Context, cfg Config) (*Report, error) {
	s, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	if b.runner == nil || !b.runner.Matches(cfg.FlowMLMin, cfg.InletTempC) {
		r, err := cosim.NewRunner(cfg.FlowMLMin, cfg.InletTempC)
		if err != nil {
			return nil, fmt.Errorf("core: co-simulation: %w", err)
		}
		b.runner = r
	}
	s.pdnSession = b.pdnSes
	if b.gridCache != nil {
		s.gridPresolved = func(c Config) *pdn.Solution { return b.gridCache[pdnKey(c)] }
	}
	rep, err := s.evaluateWith(ctx, b.runner.RunContext)
	if s.pdnSession != nil {
		b.pdnSes = s.pdnSession // keep the lazily-built session for the next point
	}
	return rep, err
}
