package core

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestCanonicalKeyStableUnderSubTolerancePerturbation(t *testing.T) {
	base := DefaultConfig()
	key := base.CanonicalKey()
	// Perturb every field by far less than the solver tolerance: the key
	// must not move.
	perturbed := base
	perturbed.FlowMLMin += 1e-12
	perturbed.InletTempC -= 3e-13
	perturbed.SupplyVoltage += 2e-12
	perturbed.ChipLoad -= 1e-13
	perturbed.ManifoldK += 4e-12
	perturbed.PumpEfficiency -= 2e-13
	if got := perturbed.CanonicalKey(); got != key {
		t.Fatalf("sub-tolerance perturbation changed the key:\n  %s\n  %s", key, got)
	}
}

func TestCanonicalKeyDistinguishesRealChanges(t *testing.T) {
	base := DefaultConfig()
	key := base.CanonicalKey()
	mutations := []func(*Config){
		func(c *Config) { c.FlowMLMin = 48 },
		func(c *Config) { c.InletTempC = 37 },
		func(c *Config) { c.SupplyVoltage = 0.95 },
		func(c *Config) { c.ChipLoad = 0.5 },
		func(c *Config) { c.ManifoldK = 2.0 },
		func(c *Config) { c.PumpEfficiency = 0.6 },
	}
	for k, mutate := range mutations {
		c := base
		mutate(&c)
		if c.CanonicalKey() == key {
			t.Errorf("case %d: distinct config mapped to the same key", k)
		}
	}
}

func TestCanonicalKeyNormalizesNegativeZero(t *testing.T) {
	a := DefaultConfig()
	b := a
	a.ChipLoad = 0
	b.ChipLoad = math.Copysign(0, -1)
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Fatal("0 and -0 must map to the same key")
	}
}

// TestCanonicalKeyCoversEveryField guards the hash against silently
// dropping fields: every exported field of Config must (a) be counted by
// floatFields and (b) appear by name in the key, so adding a field
// without extending CanonicalKey fails this test.
func TestCanonicalKeyCoversEveryField(t *testing.T) {
	typ := reflect.TypeOf(Config{})
	n := typ.NumField()
	fields := DefaultConfig().floatFields()
	if len(fields) != n {
		t.Fatalf("Config has %d fields but floatFields covers %d — "+
			"extend floatFields (and CanonicalKey/Validate) for the new field", n, len(fields))
	}
	key := DefaultConfig().CanonicalKey()
	for i := 0; i < n; i++ {
		f := typ.Field(i)
		if f.Type.Kind() != reflect.Float64 {
			t.Fatalf("Config.%s is %s; floatFields only handles float64 — "+
				"teach CanonicalKey about the new kind", f.Name, f.Type)
		}
		if !strings.Contains(key, f.Name+"=") {
			t.Errorf("field %s missing from canonical key %q", f.Name, key)
		}
	}
}

// TestChainKeyTracksHydrodynamicConditionOnly pins ChainKey's contract:
// it moves with flow and inlet temperature (beyond tolerance), ignores
// the electrical fields entirely, and shares CanonicalKey's quantization
// so sub-tolerance jitter never splits a warm-start chain.
func TestChainKeyTracksHydrodynamicConditionOnly(t *testing.T) {
	base := DefaultConfig()
	key := base.ChainKey()

	// Electrical-only changes keep the chain.
	same := base
	same.SupplyVoltage = 0.85
	same.ChipLoad = 0.4
	same.ManifoldK = 2.0
	same.PumpEfficiency = 0.7
	if got := same.ChainKey(); got != key {
		t.Fatalf("electrical change moved the chain key:\n  %s\n  %s", key, got)
	}

	// Sub-tolerance hydrodynamic jitter keeps the chain too.
	jitter := base
	jitter.FlowMLMin += 1e-12
	jitter.InletTempC -= 3e-13
	if got := jitter.ChainKey(); got != key {
		t.Fatalf("sub-tolerance jitter moved the chain key:\n  %s\n  %s", key, got)
	}

	// Real hydrodynamic changes must move it.
	flow := base
	flow.FlowMLMin = 300
	if flow.ChainKey() == key {
		t.Fatal("flow change did not move the chain key")
	}
	inlet := base
	inlet.InletTempC = 37
	if inlet.ChainKey() == key {
		t.Fatal("inlet-temperature change did not move the chain key")
	}

	// -0 normalizes like CanonicalKey's fields do.
	zp, zn := base, base
	zp.InletTempC = 0
	zn.InletTempC = math.Copysign(0, -1)
	if zp.ChainKey() != zn.ChainKey() {
		t.Fatal("0 and -0 inlet temperatures must share a chain key")
	}

	// The chain key is a strict prefix-style projection of the canonical
	// key's vocabulary: both name fields identically, so the two keys can
	// be correlated in logs and cache dumps.
	if !strings.Contains(base.CanonicalKey(), key) {
		t.Fatalf("chain key %q is not a projection of canonical key %q", key, base.CanonicalKey())
	}
}
