package core

import (
	"math"
	"testing"
)

// quantRef reproduces CanonicalKey's quantization spec independently:
// round to the keyTolerance grid and normalize -0 to 0. The fuzz
// targets use it to state key equality as a property of the quantized
// field tuple, so any drift between the key and its documented
// tolerance shows up as a mismatch here.
func quantRef(v float64) float64 {
	q := math.Round(v/keyTolerance) * keyTolerance
	if q == 0 {
		q = 0 // fold -0 into 0 so both render identically
	}
	return q
}

func fuzzConfig(flow, inlet, volt, load, k, eff float64) Config {
	return Config{
		FlowMLMin:      flow,
		InletTempC:     inlet,
		SupplyVoltage:  volt,
		ChipLoad:       load,
		ManifoldK:      k,
		PumpEfficiency: eff,
	}
}

func allFinite(c Config) bool {
	for _, f := range c.floatFields() {
		if math.IsNaN(f.Value) || math.IsInf(f.Value, 0) {
			return false
		}
	}
	return true
}

// FuzzCanonicalKey checks the cache-key contract under arbitrary field
// values: keys are deterministic, non-finite configs never validate
// (so they can never be planted in a cache), sub-tolerance
// perturbations that round to the same grid point keep the same key,
// and two configs share a key exactly when their quantized field
// tuples coincide.
func FuzzCanonicalKey(f *testing.F) {
	d := DefaultConfig()
	f.Add(d.FlowMLMin, d.InletTempC, d.SupplyVoltage, d.ChipLoad, d.ManifoldK, d.PumpEfficiency)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(-0.0, 676.0000000004, 1.0, 1.0, 1.5, 0.5)
	f.Add(math.NaN(), 27.0, 1.0, 1.0, 1.5, 0.5)
	f.Add(676.0, math.Inf(1), 1.0, 1.0, 1.5, 0.5)
	f.Add(1e-12, -1e-12, 1e300, -1e300, 2.5e-10, -2.5e-10)

	f.Fuzz(func(t *testing.T, flow, inlet, volt, load, k, eff float64) {
		c := fuzzConfig(flow, inlet, volt, load, k, eff)

		if !allFinite(c) {
			if err := c.Validate(); err == nil {
				t.Fatalf("Validate accepted a non-finite config: %+v", c)
			}
			// Non-finite configs are rejected before keying matters;
			// nothing further to pin down.
			return
		}

		key := c.CanonicalKey()
		if again := c.CanonicalKey(); again != key {
			t.Fatalf("CanonicalKey not deterministic: %q then %q", key, again)
		}

		// A perturbation below half the grid spacing keeps the key
		// whenever it rounds to the same grid point (it can legitimately
		// differ when the value sits near a rounding boundary).
		p := c
		p.FlowMLMin += keyTolerance / 8
		p.InletTempC -= keyTolerance / 8
		if quantRef(p.FlowMLMin) == quantRef(c.FlowMLMin) &&
			quantRef(p.InletTempC) == quantRef(c.InletTempC) {
			if p.CanonicalKey() != key {
				t.Fatalf("sub-tolerance perturbation changed the key:\n  %q\n  %q", key, p.CanonicalKey())
			}
		}

		// Key equality must coincide with quantized-tuple equality: pair
		// the config against a mutated copy of itself and compare.
		m := fuzzConfig(inlet, flow, volt+keyTolerance*3, load, k, eff)
		if !allFinite(m) {
			return
		}
		cf, mf := c.floatFields(), m.floatFields()
		tuplesEqual := true
		for i := range cf {
			if quantRef(cf[i].Value) != quantRef(mf[i].Value) {
				tuplesEqual = false
				break
			}
		}
		keysEqual := m.CanonicalKey() == key
		if keysEqual != tuplesEqual {
			t.Fatalf("key equality (%v) disagrees with quantized-tuple equality (%v):\n  %q\n  %q",
				keysEqual, tuplesEqual, key, m.CanonicalKey())
		}
	})
}

// FuzzChainKey checks that the per-chain solver key depends on exactly
// the two fields the chain solve depends on — flow and inlet
// temperature — and nothing else: electrical fields may vary freely
// without splitting the chain cache, while any quantized change to
// flow or inlet must split it.
func FuzzChainKey(f *testing.F) {
	d := DefaultConfig()
	f.Add(d.FlowMLMin, d.InletTempC, d.SupplyVoltage, d.ChipLoad)
	f.Add(0.0, -0.0, 1e-9, 2e-9)
	f.Add(676.0000000004, 27.0, 0.8, 0.25)

	f.Fuzz(func(t *testing.T, flow, inlet, volt, load float64) {
		c := fuzzConfig(flow, inlet, volt, load, 1.5, 0.5)
		key := c.ChainKey()
		if again := c.ChainKey(); again != key {
			t.Fatalf("ChainKey not deterministic: %q then %q", key, again)
		}

		// Electrical-side fields must not influence the chain key.
		e := c
		e.SupplyVoltage = volt + 0.25
		e.ChipLoad = load + 1
		e.ManifoldK = 9.75
		e.PumpEfficiency = 0.125
		if e.ChainKey() != key {
			t.Fatalf("non-hydraulic field changed ChainKey:\n  %q\n  %q", key, e.ChainKey())
		}

		// A quantized change to either hydraulic field must split it.
		if !math.IsNaN(flow) && !math.IsInf(flow, 0) {
			h := c
			h.FlowMLMin = flow + 7*keyTolerance
			if quantRef(h.FlowMLMin) != quantRef(flow) && h.ChainKey() == key {
				t.Fatalf("flow moved across the grid but ChainKey held: %q", key)
			}
		}
		if !math.IsNaN(inlet) && !math.IsInf(inlet, 0) {
			h := c
			h.InletTempC = inlet + 7*keyTolerance
			if quantRef(h.InletTempC) != quantRef(inlet) && h.ChainKey() == key {
				t.Fatalf("inlet moved across the grid but ChainKey held: %q", key)
			}
		}
	})
}
