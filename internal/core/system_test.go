package core

import (
	"math"
	"strings"
	"testing"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.FlowMLMin = 0 },
		func(c *Config) { c.SupplyVoltage = 0 },
		func(c *Config) { c.InletTempC = 95 },
		func(c *Config) { c.ChipLoad = -1 },
		func(c *Config) { c.ManifoldK = -1 },
		func(c *Config) { c.PumpEfficiency = 0 },
		func(c *Config) { c.PumpEfficiency = 1.5 },
	}
	for k, mutate := range mutations {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", k)
		}
		if _, err := NewSystem(c); err == nil {
			t.Errorf("case %d: NewSystem accepted invalid config", k)
		}
	}
}

func TestConfigValidationRejectsNonFinite(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"flow NaN", func(c *Config) { c.FlowMLMin = nan }, "FlowMLMin"},
		{"flow +Inf", func(c *Config) { c.FlowMLMin = math.Inf(1) }, "FlowMLMin"},
		{"inlet NaN", func(c *Config) { c.InletTempC = nan }, "InletTempC"},
		{"inlet -Inf", func(c *Config) { c.InletTempC = math.Inf(-1) }, "InletTempC"},
		{"voltage NaN", func(c *Config) { c.SupplyVoltage = nan }, "SupplyVoltage"},
		{"voltage +Inf", func(c *Config) { c.SupplyVoltage = math.Inf(1) }, "SupplyVoltage"},
		{"load NaN", func(c *Config) { c.ChipLoad = nan }, "ChipLoad"},
		{"load -Inf", func(c *Config) { c.ChipLoad = math.Inf(-1) }, "ChipLoad"},
		{"manifold NaN", func(c *Config) { c.ManifoldK = nan }, "ManifoldK"},
		{"manifold +Inf", func(c *Config) { c.ManifoldK = math.Inf(1) }, "ManifoldK"},
		{"pump NaN", func(c *Config) { c.PumpEfficiency = nan }, "PumpEfficiency"},
		{"pump -Inf", func(c *Config) { c.PumpEfficiency = math.Inf(-1) }, "PumpEfficiency"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := DefaultConfig()
			tc.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatal("expected a validation error")
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Errorf("error %q does not name the offending field %s", err, tc.field)
			}
			if _, err := NewSystem(c); err == nil {
				t.Error("NewSystem accepted a non-finite config")
			}
		})
	}
}

func TestEvaluateNominalHeadlines(t *testing.T) {
	// The paper's integrated claims, end to end on the nominal config.
	s, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// ~6 A at 1 V.
	if rep.CoSim.Operating.Current < 5.0 || rep.CoSim.Operating.Current > 7.5 {
		t.Fatalf("array current %.2f A outside Fig. 7 band", rep.CoSim.Operating.Current)
	}
	// The caches are powered through the VRM.
	if !rep.PowersCaches {
		t.Fatalf("caches not powered: delivered %.2f W, demand %.2f W",
			rep.DeliveredW, rep.CacheDemandW)
	}
	// Fig. 8 voltage band.
	if rep.Grid.MinVCache < 0.93 || rep.Grid.MinVCache > 0.999 {
		t.Fatalf("grid min %.4f V outside band", rep.Grid.MinVCache)
	}
	// Fig. 9 peak band.
	if rep.PeakTempC < 36 || rep.PeakTempC > 44 {
		t.Fatalf("peak %.1f C outside band", rep.PeakTempC)
	}
	// Net energy positive: generation exceeds pumping.
	if rep.NetElectricalGainW <= 0 {
		t.Fatalf("net gain %.2f W must be positive", rep.NetElectricalGainW)
	}
	// Report internal consistency.
	if rep.DeliveredW >= rep.CoSim.Operating.Power {
		t.Fatal("VRM conversion cannot create energy")
	}
}

func TestSummaryMentionsEverything(t *testing.T) {
	s, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	sum := rep.Summary()
	for _, want := range []string{"array:", "caches:", "grid:", "thermal:", "pump:", "676 ml/min"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestLowFlowSystemStillViable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FlowMLMin = 48
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// Hotter, but still within silicon limits; pumping power falls.
	if rep.PeakTempC < 45 || rep.PeakTempC > 80 {
		t.Fatalf("low-flow peak %.1f C outside expectation", rep.PeakTempC)
	}
	nominal, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	repNom, err := nominal.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Hydraulics.PumpPower >= repNom.Hydraulics.PumpPower {
		t.Fatal("reducing flow must reduce pumping power")
	}
}
