package core

import (
	"fmt"
	"math"

	"bright/internal/floorplan"
)

// DarkSiliconConfig parameterizes the extension experiment E2: how much
// of the chip must stay dark under a fixed conventional power-delivery
// budget, and how much the microfluidic supply relieves it. This
// quantifies the paper's central motivation ("it will no longer be
// possible to power up simultaneously all the available on-chip
// cores").
type DarkSiliconConfig struct {
	// DeliveryBudgetW is the power the conventional (package) delivery
	// medium can carry to the die.
	DeliveryBudgetW float64
	// MicrofluidicW is the additional power delivered by the on-die
	// flow-cell array (0 for the baseline).
	MicrofluidicW float64
	// SupplyVoltage for converting powers to currents in the report.
	SupplyVoltage float64
}

// DarkSiliconResult reports the lit/dark split for one scenario.
type DarkSiliconResult struct {
	Config DarkSiliconConfig
	// UncoreW is the non-gateable demand (logic + I/O + caches) that is
	// served before any core lights up.
	UncoreW float64
	// CacheW is the cache share of UncoreW (the part the microfluidic
	// supply can take over).
	CacheW float64
	// PerCoreW is the full-power demand of one core.
	PerCoreW float64
	// LitCores out of TotalCores can run at full power simultaneously.
	LitCores, TotalCores int
	// DarkFractionPct is the fraction of core silicon that must stay
	// dark.
	DarkFractionPct float64
}

// EvaluateDarkSilicon computes the lit-core count for a delivery
// scenario on the POWER7+ full-load map. The microfluidic power is
// applied to the cache rail first (its current density reach per the
// paper), freeing conventional budget for cores; any surplus beyond the
// cache demand is not credited (the flow cells cannot reach core-class
// power densities, as the paper's Section II discusses).
func EvaluateDarkSilicon(cfg DarkSiliconConfig) (*DarkSiliconResult, error) {
	if cfg.DeliveryBudgetW <= 0 {
		return nil, fmt.Errorf("core: nonpositive delivery budget %g", cfg.DeliveryBudgetW)
	}
	if cfg.MicrofluidicW < 0 {
		return nil, fmt.Errorf("core: negative microfluidic power %g", cfg.MicrofluidicW)
	}
	if cfg.SupplyVoltage <= 0 {
		return nil, fmt.Errorf("core: nonpositive supply voltage %g", cfg.SupplyVoltage)
	}
	f := floorplan.Power7()
	pm := floorplan.Power7FullLoad()
	res := &DarkSiliconResult{Config: cfg}
	res.CacheW = pm[floorplan.L2]*f.KindArea(floorplan.L2) +
		pm[floorplan.L3]*f.KindArea(floorplan.L3)
	res.UncoreW = res.CacheW +
		pm[floorplan.Logic]*f.KindArea(floorplan.Logic) +
		pm[floorplan.IO]*f.KindArea(floorplan.IO)
	for _, u := range f.Units {
		if u.Kind == floorplan.Core {
			res.TotalCores++
		}
	}
	res.PerCoreW = pm[floorplan.Core] * f.KindArea(floorplan.Core) / float64(res.TotalCores)

	// The microfluidic supply covers the cache rail up to the cache
	// demand; the covered amount leaves the conventional budget.
	covered := math.Min(cfg.MicrofluidicW, res.CacheW)
	available := cfg.DeliveryBudgetW - (res.UncoreW - covered)
	lit := 0
	if available > 0 {
		lit = int(available / res.PerCoreW)
	}
	if lit > res.TotalCores {
		lit = res.TotalCores
	}
	res.LitCores = lit
	res.DarkFractionPct = 100 * float64(res.TotalCores-lit) / float64(res.TotalCores)
	return res, nil
}

// DarkSiliconComparison runs the baseline (conventional only) and the
// microfluidically assisted scenario at the same conventional budget.
type DarkSiliconComparison struct {
	Baseline, Assisted *DarkSiliconResult
	// CoresRelit = Assisted.LitCores - Baseline.LitCores.
	CoresRelit int
}

// CompareDarkSilicon evaluates both scenarios. budgetW is the
// conventional delivery capacity; arrayW the flow-cell power at the
// rail (use the Fig. 7 headline ~6 W x VRM efficiency).
func CompareDarkSilicon(budgetW, arrayW float64) (*DarkSiliconComparison, error) {
	base, err := EvaluateDarkSilicon(DarkSiliconConfig{
		DeliveryBudgetW: budgetW, MicrofluidicW: 0, SupplyVoltage: 1,
	})
	if err != nil {
		return nil, err
	}
	asst, err := EvaluateDarkSilicon(DarkSiliconConfig{
		DeliveryBudgetW: budgetW, MicrofluidicW: arrayW, SupplyVoltage: 1,
	})
	if err != nil {
		return nil, err
	}
	return &DarkSiliconComparison{
		Baseline: base, Assisted: asst,
		CoresRelit: asst.LitCores - base.LitCores,
	}, nil
}
