package core

import "testing"

func TestDarkSiliconBaseline(t *testing.T) {
	// A delivery budget below the full-load demand forces cores dark.
	res, err := EvaluateDarkSilicon(DarkSiliconConfig{
		DeliveryBudgetW: 40, MicrofluidicW: 0, SupplyVoltage: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCores != 8 {
		t.Fatalf("POWER7+ has 8 cores, got %d", res.TotalCores)
	}
	if res.LitCores >= res.TotalCores {
		t.Fatalf("40 W budget should not light all cores (lit %d)", res.LitCores)
	}
	if res.DarkFractionPct <= 0 {
		t.Fatal("dark fraction must be positive under a tight budget")
	}
	// The bookkeeping: uncore includes the caches.
	if res.CacheW <= 0 || res.UncoreW <= res.CacheW {
		t.Fatalf("power decomposition broken: %+v", res)
	}
}

func TestDarkSiliconRelief(t *testing.T) {
	// E2 headline: moving the cache rail to the microfluidic supply
	// relights cores at the same conventional budget.
	cmp, err := CompareDarkSilicon(40, 5.2) // ~Fig. 7 power after VRM
	if err != nil {
		t.Fatal(err)
	}
	if cmp.CoresRelit <= 0 {
		t.Fatalf("microfluidic supply relit %d cores, expected > 0", cmp.CoresRelit)
	}
	if cmp.Assisted.LitCores > cmp.Assisted.TotalCores {
		t.Fatal("lit cores exceed total")
	}
	// The credit is capped at the cache demand: a huge array does not
	// help beyond the cache rail.
	big, err := CompareDarkSilicon(40, 100)
	if err != nil {
		t.Fatal(err)
	}
	if big.Assisted.LitCores > cmp.Assisted.LitCores+1 {
		t.Fatalf("credit not capped at the cache demand: %d vs %d",
			big.Assisted.LitCores, cmp.Assisted.LitCores)
	}
}

func TestDarkSiliconFullBudget(t *testing.T) {
	// A generous budget lights everything with or without assistance.
	res, err := EvaluateDarkSilicon(DarkSiliconConfig{
		DeliveryBudgetW: 200, MicrofluidicW: 0, SupplyVoltage: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LitCores != res.TotalCores || res.DarkFractionPct != 0 {
		t.Fatalf("200 W budget should light all cores: %+v", res)
	}
}

func TestDarkSiliconValidation(t *testing.T) {
	if _, err := EvaluateDarkSilicon(DarkSiliconConfig{DeliveryBudgetW: 0, SupplyVoltage: 1}); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := EvaluateDarkSilicon(DarkSiliconConfig{DeliveryBudgetW: 10, MicrofluidicW: -1, SupplyVoltage: 1}); err == nil {
		t.Fatal("negative microfluidic power accepted")
	}
	if _, err := EvaluateDarkSilicon(DarkSiliconConfig{DeliveryBudgetW: 10, SupplyVoltage: 0}); err == nil {
		t.Fatal("zero voltage accepted")
	}
}
