// Package core integrates the paper's proposal into one system model:
// an MPSoC floorplan with an on-die microfluidic redox flow-cell array
// that simultaneously powers the cache rails (through VRMs and a power
// grid) and cools the whole die (through the compact thermal model),
// with electro-thermal coupling. It is the programmatic embodiment of
// the paper's Fig. 1 and the engine behind the case-study experiments.
package core

import (
	"context"
	"fmt"
	"math"

	"bright/internal/cosim"
	"bright/internal/floorplan"
	"bright/internal/flowcell"
	"bright/internal/hydro"
	"bright/internal/mesh"
	"bright/internal/pdn"
	"bright/internal/thermal"
	"bright/internal/units"
)

// Config parameterizes the integrated POWER7+ case study.
type Config struct {
	// FlowMLMin is the total electrolyte flow in ml/min (Table II: 676).
	FlowMLMin float64
	// InletTempC is the coolant inlet temperature in C (27 nominal).
	InletTempC float64
	// SupplyVoltage is the cache rail voltage (V), 1.0 in the paper.
	SupplyVoltage float64
	// ChipLoad scales the full-load power map (1 = full load).
	ChipLoad float64
	// ManifoldK is the hydraulic minor-loss coefficient of the inlet/
	// outlet headers.
	ManifoldK float64
	// PumpEfficiency of the electrolyte pump (paper: 0.5).
	PumpEfficiency float64
}

// DefaultConfig returns the paper's nominal operating point.
func DefaultConfig() Config {
	return Config{
		FlowMLMin:      676,
		InletTempC:     27,
		SupplyVoltage:  1.0,
		ChipLoad:       1.0,
		ManifoldK:      1.5,
		PumpEfficiency: 0.5,
	}
}

// floatFields enumerates every float64 field of Config by name, in
// declaration order. CanonicalKey and the finiteness checks in Validate
// both iterate this list, and a reflection guard in the tests pins its
// length to the struct's field count so new fields cannot silently
// escape either.
func (c Config) floatFields() []struct {
	Name  string
	Value float64
} {
	return []struct {
		Name  string
		Value float64
	}{
		{"FlowMLMin", c.FlowMLMin},
		{"InletTempC", c.InletTempC},
		{"SupplyVoltage", c.SupplyVoltage},
		{"ChipLoad", c.ChipLoad},
		{"ManifoldK", c.ManifoldK},
		{"PumpEfficiency", c.PumpEfficiency},
	}
}

// keyTolerance is the absolute quantum CanonicalKey rounds every field
// to. It sits far below any solver tolerance in the stack (the co-sim
// converges to 0.01 K, the linear solvers to ~1e-10 relative), so two
// configs whose fields differ by less than this produce bitwise-equal
// results and may share one cache entry.
const keyTolerance = 1e-9

// CanonicalKey returns a deterministic string key identifying the
// configuration up to solver tolerance: each field is quantized to
// keyTolerance before formatting, so configs that differ only below the
// tolerance map to the same key. The key is human-readable on purpose —
// it doubles as a cache-debugging aid.
func (c Config) CanonicalKey() string {
	fields := c.floatFields()
	parts := make([]string, len(fields))
	for k, f := range fields {
		q := math.Round(f.Value/keyTolerance) * keyTolerance
		if q == 0 { // normalize -0
			q = 0
		}
		parts[k] = fmt.Sprintf("%s=%.9f", f.Name, q)
	}
	key := parts[0]
	for _, p := range parts[1:] {
		key += "|" + p
	}
	return key
}

// ChainKey returns a deterministic string key identifying only the
// hydrodynamic operating condition — flow rate and inlet temperature,
// quantized exactly like CanonicalKey. Configs sharing a ChainKey share
// the thermal session's factorized operators and warm-start state, so
// solving them back-to-back on one node is cheap; sweep chaining and the
// cluster coordinator both partition work on this key to preserve that
// locality.
func (c Config) ChainKey() string {
	quant := func(v float64) float64 {
		q := math.Round(v/keyTolerance) * keyTolerance
		if q == 0 { // normalize -0
			q = 0
		}
		return q
	}
	return fmt.Sprintf("FlowMLMin=%.9f|InletTempC=%.9f", quant(c.FlowMLMin), quant(c.InletTempC))
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	for _, f := range c.floatFields() {
		if math.IsNaN(f.Value) {
			return fmt.Errorf("core: %s is NaN", f.Name)
		}
		if math.IsInf(f.Value, 0) {
			return fmt.Errorf("core: %s is %g (must be finite)", f.Name, f.Value)
		}
	}
	if c.FlowMLMin <= 0 {
		return fmt.Errorf("core: nonpositive flow %g ml/min", c.FlowMLMin)
	}
	if c.SupplyVoltage <= 0 {
		return fmt.Errorf("core: nonpositive supply voltage %g", c.SupplyVoltage)
	}
	if c.InletTempC < 0 || c.InletTempC > 90 {
		return fmt.Errorf("core: inlet %g C outside liquid window", c.InletTempC)
	}
	if c.ChipLoad < 0 {
		return fmt.Errorf("core: negative chip load")
	}
	if c.ManifoldK < 0 {
		return fmt.Errorf("core: negative manifold K")
	}
	if c.PumpEfficiency <= 0 || c.PumpEfficiency > 1 {
		return fmt.Errorf("core: pump efficiency %g out of (0,1]", c.PumpEfficiency)
	}
	return nil
}

// System is the assembled integrated model.
type System struct {
	Config    Config
	Floorplan *floorplan.Floorplan
	Array     *flowcell.Array
	VRM       pdn.VRM

	// pdnSession lazily caches the assembled power-grid matrix, its
	// preconditioner and the previous voltage field across Evaluate
	// calls on this System: repeated evaluations (load sweeps on one
	// System) skip reassembly and warm-start each DC solve. Evaluate is
	// consequently not safe for concurrent use on a shared System; the
	// sim engine builds one System per solve, which keeps its workers
	// independent.
	pdnSession *pdn.Session

	// gridPresolved, when non-nil, is consulted before the PDN solve:
	// a non-nil Solution for this Config (from a chain prefetch that
	// batch-solved the whole sweep chain's grid points in one block
	// Krylov run) is used directly and the per-point solve is skipped.
	gridPresolved func(Config) *pdn.Solution
}

// NewSystem builds the integrated POWER7+ system at the given config.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := floorplan.Power7()
	if err := f.Validate(0); err != nil {
		return nil, err
	}
	array := flowcell.Power7ArrayAt(cfg.FlowMLMin, units.CtoK(cfg.InletTempC))
	if err := array.Validate(); err != nil {
		return nil, err
	}
	return &System{
		Config:    cfg,
		Floorplan: f,
		Array:     array,
		VRM:       pdn.DefaultVRM(),
	}, nil
}

// Report is the full evaluated state of the integrated system.
type Report struct {
	Config Config
	// CoSim is the converged electro-thermal state; CoSim.Operating is
	// the array's electrical point at the supply voltage.
	CoSim *cosim.Result
	// CacheDemandW and CacheDemandA are the cache rail demand from the
	// floorplan at 1 W/cm2.
	CacheDemandW, CacheDemandA float64
	// DeliveredW is the electric power available after VRM conversion.
	DeliveredW float64
	// PowersCaches reports whether the array covers the cache demand
	// through the VRM.
	PowersCaches bool
	// Grid is the Fig. 8 power-grid solution.
	Grid *pdn.Solution
	// Thermal is the Fig. 9 thermal state (from the coupled run).
	Thermal *thermal.Solution
	// PeakTempC is the coupled peak die temperature.
	PeakTempC float64
	// Hydraulics is the pressure/pump operating point.
	Hydraulics hydro.Report
	// NetElectricalGainW = delivered electric power - pumping power:
	// the paper's "flow cells generate more energy than is spent in
	// liquid pumping" claim.
	NetElectricalGainW float64
}

// Evaluate runs the full pipeline: electro-thermal co-simulation, power
// grid solve and hydraulic analysis.
func (s *System) Evaluate() (*Report, error) {
	return s.EvaluateContext(context.Background())
}

// EvaluateContext is Evaluate with cancellation: the context is threaded
// into the co-simulation loop (checked every outer iteration) and
// checked between the pipeline stages, so a canceled context aborts the
// evaluation within one co-sim iteration or one stage.
func (s *System) EvaluateContext(ctx context.Context) (*Report, error) {
	return s.evaluateWith(ctx, cosim.RunContext)
}

// evaluateWith is the shared pipeline behind System.EvaluateContext and
// Batch: the co-simulation stage is pluggable so a Batch can route it
// through a cached cosim.Runner instead of a one-shot run.
func (s *System) evaluateWith(ctx context.Context,
	runCosim func(context.Context, cosim.Config) (*cosim.Result, error)) (*Report, error) {
	cfg := s.Config
	co, err := runCosim(ctx, cosim.Config{
		TotalFlowMLMin:  cfg.FlowMLMin,
		InletTempC:      cfg.InletTempC,
		TerminalVoltage: cfg.SupplyVoltage,
		ChipLoad:        cfg.ChipLoad,
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("core: co-simulation: %w", err)
	}
	rep := &Report{
		Config:    cfg,
		CoSim:     co,
		Thermal:   co.Thermal,
		PeakTempC: units.KtoC(co.Thermal.PeakT),
	}
	rep.CacheDemandW = units.WPerCM2ToWPerM2(1.0) * s.Floorplan.CacheArea() * cfg.ChipLoad
	rep.CacheDemandA = rep.CacheDemandW / cfg.SupplyVoltage
	// The array feeds the rail through the VRM.
	rep.DeliveredW = co.Operating.Power * s.VRM.Efficiency
	rep.PowersCaches = rep.DeliveredW >= rep.CacheDemandW

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.gridPresolved != nil {
		rep.Grid = s.gridPresolved(cfg)
	}
	if rep.Grid == nil {
		p, _, err := pdn.Power7Problem()
		if err != nil {
			return nil, err
		}
		if s.pdnSession == nil {
			// The grid matrix depends only on the floorplan geometry, sheet
			// resistance and via sites — none of which vary with Config — so
			// one session (and one multigrid setup) serves every evaluation.
			ses, err := pdn.NewSession(p)
			if err != nil {
				return nil, fmt.Errorf("core: power grid: %w", err)
			}
			s.pdnSession = ses
		}
		grid, err := s.pdnSession.Solve(pdnLoadFor(p, s.Floorplan, cfg), cfg.SupplyVoltage)
		if err != nil {
			return nil, fmt.Errorf("core: power grid: %w", err)
		}
		rep.Grid = grid
	}

	net := s.Array.HydraulicNetwork(cfg.ManifoldK, cfg.PumpEfficiency)
	hyd, err := net.Evaluate(units.MLPerMinToM3PerS(cfg.FlowMLMin))
	if err != nil {
		return nil, fmt.Errorf("core: hydraulics: %w", err)
	}
	rep.Hydraulics = hyd
	rep.NetElectricalGainW = rep.DeliveredW - hyd.PumpPower
	return rep, nil
}

// pdnLoadFor builds the sink current density field the PDN solve uses
// for cfg. The grid inputs depend only on (SupplyVoltage, ChipLoad) —
// the co-simulation and hydraulic stages never feed back into them —
// which is what lets a sweep chain batch-presolve every grid point
// upfront (Batch.PrefetchChain). The problem's default field is never
// mutated: scaling copies first, so one shared Problem can serve a
// whole chain.
func pdnLoadFor(p *pdn.Problem, f *floorplan.Floorplan, cfg Config) *mesh.Field2D {
	load := p.LoadDensity
	if cfg.SupplyVoltage != p.Supply {
		load = pdn.CacheLoad(f, load.Grid, cfg.SupplyVoltage)
	}
	if cfg.ChipLoad != 1 {
		if load == p.LoadDensity {
			load = &mesh.Field2D{Grid: load.Grid, Data: append([]float64(nil), load.Data...)}
		}
		for k := range load.Data {
			load.Data[k] *= cfg.ChipLoad
		}
	}
	return load
}

// Summary renders the headline numbers as a human-readable block.
func (r *Report) Summary() string {
	return fmt.Sprintf(
		`integrated microfluidic power & cooling — %s
  array:   %.2f A at %.2f V  ->  %.2f W (%.2f W after VRM)
  caches:  need %.2f W (%.2f A at %.2f V)  ->  powered: %v
  grid:    min cache voltage %.4f V (supply %.2f V)
  thermal: peak %.1f C (inlet %.1f C), coolant out %.1f C
  pump:    %.2f W at dp %.3f bar (%.3f bar/cm)  ->  net gain %.2f W`,
		fmtCondition(r.Config),
		r.CoSim.Operating.Current, r.Config.SupplyVoltage, r.CoSim.Operating.Power, r.DeliveredW,
		r.CacheDemandW, r.CacheDemandA, r.Config.SupplyVoltage, r.PowersCaches,
		r.Grid.MinVCache, r.Config.SupplyVoltage,
		r.PeakTempC, r.Config.InletTempC, units.KtoC(r.Thermal.OutletT),
		r.Hydraulics.PumpPower, units.PaToBar(r.Hydraulics.TotalDrop),
		units.PaToBar(r.Hydraulics.PressureGradient)/100, r.NetElectricalGainW)
}

func fmtCondition(c Config) string {
	return fmt.Sprintf("%.0f ml/min, %.0f C inlet, load %.0f%%", c.FlowMLMin, c.InletTempC, 100*c.ChipLoad)
}
