package core

import (
	"context"
	"math"
	"testing"
)

// TestPrefetchChainServesGridStage: after PrefetchChain, EvaluateContext
// must serve each point's PDN stage straight from the prefetched cache
// (the report carries the cached *pdn.Solution itself), and the reports
// must match an un-prefetched batch over the same points.
func TestPrefetchChainServesGridStage(t *testing.T) {
	if testing.Short() {
		t.Skip("full co-simulation batch in -short mode")
	}
	cfgs := make([]Config, 3)
	for k, v := range []float64{0.96, 1.00, 1.04} {
		cfgs[k] = DefaultConfig()
		cfgs[k].SupplyVoltage = v
	}

	pre := NewBatch()
	if err := pre.PrefetchChain(context.Background(), cfgs); err != nil {
		t.Fatal(err)
	}
	if len(pre.gridCache) != len(cfgs) {
		t.Fatalf("gridCache holds %d solutions, want %d", len(pre.gridCache), len(cfgs))
	}

	plain := NewBatch()
	for _, cfg := range cfgs {
		got, err := pre.EvaluateContext(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Grid != pre.gridCache[pdnKey(cfg)] {
			t.Fatalf("supply %.2f: report grid is not the prefetched solution", cfg.SupplyVoltage)
		}
		want, err := plain.EvaluateContext(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(got.Grid.MinVCache - want.Grid.MinVCache); d > 1e-8 {
			t.Fatalf("supply %.2f: prefetched MinVCache off by %g", cfg.SupplyVoltage, d)
		}
		if d := math.Abs(got.PeakTempC - want.PeakTempC); d > 1e-6 {
			t.Fatalf("supply %.2f: prefetched PeakTempC off by %g", cfg.SupplyVoltage, d)
		}
	}
}

// TestPrefetchChainDedupAndGuards pins the cheap edge cases: duplicate
// operating points dedupe to one solve, short chains are a no-op, and
// invalid points reject before any solver work.
func TestPrefetchChainDedupAndGuards(t *testing.T) {
	b := NewBatch()
	if err := b.PrefetchChain(context.Background(), []Config{DefaultConfig()}); err != nil {
		t.Fatalf("single-point chain: %v", err)
	}
	if b.gridCache != nil {
		t.Fatal("single-point chain populated the cache")
	}

	// Four chain points, two distinct (SupplyVoltage, ChipLoad) pairs.
	cfgs := make([]Config, 4)
	for k := range cfgs {
		cfgs[k] = DefaultConfig()
		cfgs[k].ChipLoad = 0.5 + 0.5*float64(k%2)
	}
	if err := b.PrefetchChain(context.Background(), cfgs); err != nil {
		t.Fatal(err)
	}
	if len(b.gridCache) != 2 {
		t.Fatalf("gridCache holds %d solutions, want 2 after dedup", len(b.gridCache))
	}

	bad := DefaultConfig()
	bad.SupplyVoltage = -1
	if err := b.PrefetchChain(context.Background(), []Config{DefaultConfig(), bad}); err == nil {
		t.Fatal("invalid chain point accepted")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fresh := NewBatch()
	if err := fresh.PrefetchChain(ctx, []Config{cfgs[0], cfgs[1]}); err == nil {
		t.Fatal("canceled context accepted")
	}
}
