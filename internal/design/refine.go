package design

import (
	"fmt"
	"math"

	"bright/internal/num"
)

// Refine improves a feasible starting candidate by derivative-free
// coordinate descent on (width, height) with the wall thickness held at
// the starting value, maximizing the net power under the same
// constraints. Infeasible trial points are penalized, so the search
// stays inside the constraint set. It returns the refined evaluation.
func Refine(start Candidate, flowMLMin, inletC, voltage float64, cons Constraints) (*Evaluation, error) {
	if flowMLMin <= 0 || voltage <= 0 {
		return nil, fmt.Errorf("design: nonpositive flow/voltage")
	}
	wall := start.Pitch - start.Width
	if wall <= 0 {
		return nil, fmt.Errorf("design: starting candidate has no wall")
	}
	objective := func(x []float64) float64 {
		cand := Candidate{Width: x[0], Height: x[1], Pitch: x[0] + wall}
		evs, err := Explore([]Candidate{cand}, flowMLMin, inletC, voltage, cons)
		if err != nil || len(evs) == 0 || !evs[0].Feasible {
			return 1e6 // constraint penalty
		}
		return -evs[0].NetPowerW
	}
	lo := []float64{60e-6, 150e-6}
	hi := []float64{400e-6, cons.MaxAspect * 400e-6}
	x0 := []float64{
		math.Min(math.Max(start.Width, lo[0]), hi[0]),
		math.Min(math.Max(start.Height, lo[1]), hi[1]),
	}
	xStar, fStar, err := num.CoordinateDescent(objective, x0, lo, hi, 1e-4, 6)
	if err != nil {
		return nil, err
	}
	if fStar >= 1e6 {
		return nil, fmt.Errorf("design: refinement found no feasible point")
	}
	best := Candidate{Width: xStar[0], Height: xStar[1], Pitch: xStar[0] + wall}
	evs, err := Explore([]Candidate{best}, flowMLMin, inletC, voltage, cons)
	if err != nil {
		return nil, err
	}
	return &evs[0], nil
}
