package design

import "testing"

func TestRefineDoesNotDegrade(t *testing.T) {
	start := Candidate{Width: 150e-6, Height: 600e-6, Pitch: 250e-6} // grid best
	base, err := Explore([]Candidate{start}, 676, 27, 1.0, DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Refine(start, 676, 27, 1.0, DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Feasible {
		t.Fatalf("refined point infeasible: %s", ref.Reason)
	}
	if ref.NetPowerW < base[0].NetPowerW-1e-6 {
		t.Fatalf("refinement degraded: %.3f -> %.3f W", base[0].NetPowerW, ref.NetPowerW)
	}
}

func TestRefineImprovesInteriorStart(t *testing.T) {
	// A mediocre interior starting point must improve substantially.
	start := Candidate{Width: 280e-6, Height: 300e-6, Pitch: 380e-6}
	base, err := Explore([]Candidate{start}, 676, 27, 1.0, DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	if !base[0].Feasible {
		t.Fatalf("starting point should be feasible: %s", base[0].Reason)
	}
	ref, err := Refine(start, 676, 27, 1.0, DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	if ref.NetPowerW < 1.2*base[0].NetPowerW {
		t.Fatalf("refinement gained too little: %.2f -> %.2f W",
			base[0].NetPowerW, ref.NetPowerW)
	}
}

func TestRefineValidation(t *testing.T) {
	if _, err := Refine(Candidate{Width: 1e-4, Height: 1e-4, Pitch: 1e-4}, 676, 27, 1, DefaultConstraints()); err == nil {
		t.Fatal("wall-less start accepted")
	}
	if _, err := Refine(TableII(), 0, 27, 1, DefaultConstraints()); err == nil {
		t.Fatal("zero flow accepted")
	}
}
