package design

import (
	"strings"
	"testing"
)

func TestExploreDefaultGrid(t *testing.T) {
	evs, err := Explore(append(DefaultGrid(), TableII()), 676, 27, 1.0, DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 13 {
		t.Fatalf("expected 13 evaluations, got %d", len(evs))
	}
	// Sorted: feasible first, then by net power descending.
	seenInfeasible := false
	prevNet := 1e18
	for _, e := range evs {
		if !e.Feasible {
			seenInfeasible = true
			if e.Reason == "" {
				t.Fatalf("infeasible without reason: %v", e.Candidate)
			}
			continue
		}
		if seenInfeasible {
			t.Fatal("feasible design after infeasible in sort order")
		}
		if e.NetPowerW > prevNet {
			t.Fatal("net power not descending")
		}
		prevNet = e.NetPowerW
	}
	// The 100x600 um candidate violates the aspect constraint.
	var sawAspect bool
	for _, e := range evs {
		if !e.Feasible && strings.Contains(e.Reason, "aspect") {
			sawAspect = true
		}
	}
	if !sawAspect {
		t.Fatal("expected an aspect-ratio rejection in the default grid")
	}
}

func TestTableIIPointReproduced(t *testing.T) {
	evs, err := Explore([]Candidate{TableII()}, 676, 27, 1.0, DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	e := evs[0]
	if !e.Feasible {
		t.Fatalf("Table II point infeasible: %s", e.Reason)
	}
	if e.NChannels != 88 {
		t.Fatalf("Table II channels %d, want 88", e.NChannels)
	}
	if e.CurrentAt1V < 5.2 || e.CurrentAt1V > 7.0 {
		t.Fatalf("Table II current %.2f A inconsistent with Fig. 7", e.CurrentAt1V)
	}
	if e.PeakTempC < 36 || e.PeakTempC > 44 {
		t.Fatalf("Table II peak %.1f C inconsistent with Fig. 9", e.PeakTempC)
	}
}

func TestBetterDesignExists(t *testing.T) {
	// The outlook claim: geometry alone can improve on Table II. The
	// explorer must find at least one feasible design with
	// substantially higher net power.
	evs, err := Explore(append(DefaultGrid(), TableII()), 676, 27, 1.0, DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	var tableII, best *Evaluation
	for k := range evs {
		e := &evs[k]
		if e.Candidate == TableII() && tableII == nil {
			tableII = e
		}
		if e.Feasible && best == nil {
			best = e
		}
	}
	if tableII == nil || best == nil {
		t.Fatal("missing evaluations")
	}
	if best.NetPowerW < 1.3*tableII.NetPowerW {
		t.Fatalf("best design %.2f W should clearly beat Table II %.2f W",
			best.NetPowerW, tableII.NetPowerW)
	}
}

func TestConstraintsEnforced(t *testing.T) {
	// A tiny wall must be rejected.
	evs, err := Explore([]Candidate{{Width: 200e-6, Height: 400e-6, Pitch: 210e-6}},
		676, 27, 1.0, DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	if evs[0].Feasible || !strings.Contains(evs[0].Reason, "wall") {
		t.Fatalf("thin wall not rejected: %+v", evs[0])
	}
	// Degenerate geometry.
	evs, err = Explore([]Candidate{{Width: 0, Height: 1e-4, Pitch: 1e-4}},
		676, 27, 1.0, DefaultConstraints())
	if err != nil {
		t.Fatal(err)
	}
	if evs[0].Feasible {
		t.Fatal("degenerate geometry accepted")
	}
	// A strangling pump budget rejects the narrowest channels.
	tight := DefaultConstraints()
	tight.MaxPumpW = 0.1
	evs, err = Explore([]Candidate{TableII()}, 676, 27, 1.0, tight)
	if err != nil {
		t.Fatal(err)
	}
	if evs[0].Feasible || !strings.Contains(evs[0].Reason, "pump") {
		t.Fatalf("pump budget not enforced: %+v", evs[0])
	}
}

func TestExploreArgs(t *testing.T) {
	if _, err := Explore(nil, 676, 27, 1, DefaultConstraints()); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if _, err := Explore(DefaultGrid(), 0, 27, 1, DefaultConstraints()); err == nil {
		t.Fatal("zero flow accepted")
	}
}

func TestCandidateString(t *testing.T) {
	s := TableII().String()
	if !strings.Contains(s, "200") || !strings.Contains(s, "300") {
		t.Fatalf("candidate string %q", s)
	}
}
