// Package design explores the microchannel flow-cell design space: for
// candidate channel geometries it evaluates the electrical output, the
// pumping cost and the thermal performance of the integrated system,
// and ranks feasible designs by net electric power. This serves the
// paper's outlook ("the power density of electrochemical power delivery
// has to be massively improved"): the explorer shows how far geometry
// alone can push the Table II baseline.
package design

import (
	"fmt"
	"math"
	"sort"

	"bright/internal/cfd"
	"bright/internal/floorplan"
	"bright/internal/flowcell"
	"bright/internal/hydro"
	"bright/internal/thermal"
	"bright/internal/units"
)

// Candidate is one channel geometry to evaluate. The channel length is
// fixed by the die (channels span the 21.34 mm flow dimension, as in
// Table II).
type Candidate struct {
	// Width is the electrode gap / channel width (m).
	Width float64
	// Height is the etch depth (m).
	Height float64
	// Pitch is the channel-to-channel spacing (m); Pitch - Width is the
	// wall (fin) thickness.
	Pitch float64
}

// String implements fmt.Stringer.
func (c Candidate) String() string {
	return fmt.Sprintf("%gx%g um @ %g um pitch",
		units.MToUM(c.Width), units.MToUM(c.Height), units.MToUM(c.Pitch))
}

// Constraints bound feasibility.
type Constraints struct {
	// MaxPeakC is the junction temperature limit (C); 85 typical.
	MaxPeakC float64
	// MinWallUM is the minimum silicon wall between channels (um);
	// walls below ~50 um are fragile at 400+ um depths.
	MinWallUM float64
	// MaxAspect bounds Height/Width (etch capability); ~4 for DRIE.
	MaxAspect float64
	// MaxPumpW bounds the pumping budget (W).
	MaxPumpW float64
}

// DefaultConstraints returns practical limits for the technology.
func DefaultConstraints() Constraints {
	return Constraints{MaxPeakC: 85, MinWallUM: 50, MaxAspect: 4, MaxPumpW: 10}
}

// Evaluation is one scored design point.
type Evaluation struct {
	Candidate Candidate
	NChannels int
	// CurrentAt1V and PowerAt1V on the 1 V rail.
	CurrentAt1V, PowerAt1V float64
	// PumpPowerW at the operating flow.
	PumpPowerW float64
	// PeakTempC of the die under full load.
	PeakTempC float64
	// NetPowerW = PowerAt1V - PumpPowerW, the ranking objective.
	NetPowerW float64
	// Feasible designs satisfy every constraint; Reason explains
	// infeasibility.
	Feasible bool
	Reason   string
}

// Explore evaluates the candidates at the given total flow (ml/min),
// inlet (C) and rail voltage, returning all evaluations sorted by net
// power (feasible first).
func Explore(candidates []Candidate, flowMLMin, inletC, voltage float64, cons Constraints) ([]Evaluation, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("design: no candidates")
	}
	if flowMLMin <= 0 || voltage <= 0 {
		return nil, fmt.Errorf("design: nonpositive flow/voltage")
	}
	f := floorplan.Power7()
	out := make([]Evaluation, 0, len(candidates))
	for _, cand := range candidates {
		out = append(out, evaluate(f, cand, flowMLMin, inletC, voltage, cons))
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Feasible != out[j].Feasible {
			return out[i].Feasible
		}
		return out[i].NetPowerW > out[j].NetPowerW
	})
	return out, nil
}

func evaluate(f *floorplan.Floorplan, cand Candidate, flowMLMin, inletC, voltage float64, cons Constraints) Evaluation {
	ev := Evaluation{Candidate: cand}
	fail := func(format string, args ...any) Evaluation {
		ev.Feasible = false
		ev.Reason = fmt.Sprintf(format, args...)
		ev.NetPowerW = math.Inf(-1)
		return ev
	}
	if cand.Width <= 0 || cand.Height <= 0 || cand.Pitch <= cand.Width {
		return fail("degenerate geometry")
	}
	if wall := units.MToUM(cand.Pitch - cand.Width); wall < cons.MinWallUM {
		return fail("wall %.0f um below the %.0f um limit", wall, cons.MinWallUM)
	}
	if aspect := cand.Height / cand.Width; aspect > cons.MaxAspect {
		return fail("aspect %.1f beyond etch capability %.1f", aspect, cons.MaxAspect)
	}
	ch := cfd.Channel{Width: cand.Width, Height: cand.Height, Length: 22e-3}
	n := int(f.Width / cand.Pitch)
	if n < 1 {
		return fail("no channels fit")
	}
	ev.NChannels = n
	totalFlow := units.MLPerMinToM3PerS(flowMLMin)
	array := flowcell.Power7ArrayCustom(ch, n, totalFlow, units.CtoK(inletC))

	op, err := array.CurrentAtVoltage(voltage)
	if err != nil {
		return fail("electrical: %v", err)
	}
	ev.CurrentAt1V = op.Current
	ev.PowerAt1V = op.Power

	hyd, err := array.HydraulicNetwork(1.5, hydro.PumpEfficiencyDefault).Evaluate(totalFlow)
	if err != nil {
		return fail("hydraulics: %v", err)
	}
	ev.PumpPowerW = hyd.PumpPower
	if hyd.PumpPower > cons.MaxPumpW {
		return fail("pump %.1f W over the %.1f W budget", hyd.PumpPower, cons.MaxPumpW)
	}

	spec := thermal.ChannelSpec{
		Channel:          ch,
		Pitch:            cand.Pitch,
		NChannels:        n,
		Fluid:            thermal.VanadiumCoolant(),
		TotalFlowRate:    totalFlow,
		InletTemperature: units.CtoK(inletC),
		FinEfficiency:    0.8,
	}
	// The cavity layer must match the channel height.
	tp := &thermal.Problem{
		DieWidth:  f.Width,
		DieHeight: f.Height,
		Stack:     thermal.Power7Stack(spec),
		NX:        44, NY: 32,
	}
	tp.Power = f.Rasterize(tp.Grid(), floorplan.Power7FullLoad())
	sol, err := thermal.Solve(tp)
	if err != nil {
		return fail("thermal: %v", err)
	}
	ev.PeakTempC = units.KtoC(sol.PeakT)
	if ev.PeakTempC > cons.MaxPeakC {
		return fail("peak %.1f C over the %.0f C limit", ev.PeakTempC, cons.MaxPeakC)
	}
	ev.NetPowerW = ev.PowerAt1V - ev.PumpPowerW
	ev.Feasible = true
	return ev
}

// DefaultGrid returns a practical sweep around the Table II point:
// widths 100-300 um, depths 200-600 um, a fixed 100 um wall.
func DefaultGrid() []Candidate {
	var out []Candidate
	for _, w := range []float64{100e-6, 150e-6, 200e-6, 300e-6} {
		for _, h := range []float64{200e-6, 400e-6, 600e-6} {
			out = append(out, Candidate{Width: w, Height: h, Pitch: w + 100e-6})
		}
	}
	return out
}

// TableII returns the paper's design point as a candidate.
func TableII() Candidate {
	return Candidate{Width: 200e-6, Height: 400e-6, Pitch: 300e-6}
}
