package thermal

import (
	"math"
	"testing"

	"bright/internal/floorplan"
	"bright/internal/units"
)

func approx(t *testing.T, got, want, rel float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > rel*math.Abs(want) {
		t.Errorf("%s: got %g want %g (rel tol %g)", msg, got, want, rel)
	}
}

func TestMaterials(t *testing.T) {
	for _, m := range []Material{Silicon(), SiliconDioxide()} {
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if err := (Material{}).Validate(); err == nil {
		t.Fatal("zero material accepted")
	}
	if Silicon().Conductivity < 100 || Silicon().Conductivity > 160 {
		t.Fatal("silicon conductivity off")
	}
}

func TestChannelSpec(t *testing.T) {
	spec := Power7ChannelSpec(units.MLPerMinToM3PerS(676), 300, VanadiumCoolant())
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	approx(t, spec.FluidFraction(), 2.0/3.0, 1e-12, "fluid fraction 200/300")
	// Heat capacity rate ~47 W/K at Table II flow.
	approx(t, spec.HeatCapacityRate(), 47.2, 0.01, "m_dot cp")
	// Wall HTC ~1e4 W/m2K.
	h := spec.WallHTC()
	if h < 5e3 || h > 3e4 {
		t.Fatalf("HTC %g outside microchannel range", h)
	}
	bad := spec
	bad.Pitch = spec.Channel.Width
	if err := bad.Validate(); err == nil {
		t.Fatal("pitch <= width accepted")
	}
	bad = spec
	bad.FinEfficiency = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero fin efficiency accepted")
	}
}

func TestStackValidation(t *testing.T) {
	spec := Power7ChannelSpec(units.MLPerMinToM3PerS(676), 300, VanadiumCoolant())
	s := Power7Stack(spec)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// No heat source.
	bad := Power7Stack(spec)
	bad.Layers[0].HeatSource = false
	if err := bad.Validate(); err == nil {
		t.Fatal("stack without source accepted")
	}
	// Cavity height mismatch.
	bad = Power7Stack(spec)
	bad.Layers[2].Thickness = 1e-3
	if err := bad.Validate(); err == nil {
		t.Fatal("cavity/channel height mismatch accepted")
	}
	if err := (&Stack{}).Validate(); err == nil {
		t.Fatal("empty stack accepted")
	}
	// Multi-tier stacks are valid (paper's 3D outlook).
	s3d := Power7Stack3D(spec)
	if err := s3d.Validate(); err != nil {
		t.Fatalf("3D stack rejected: %v", err)
	}
	if s3d.NumCavities() != 2 {
		t.Fatalf("3D stack cavities = %d", s3d.NumCavities())
	}
	if Power7Stack(spec).NumCavities() != 1 {
		t.Fatal("single stack cavities != 1")
	}
}

func TestStack3DSolve(t *testing.T) {
	// Two-tier stack: both dies at full load, each cavity carrying the
	// Table II flow. Peak must exceed the single-die case (tier 0 heat
	// crosses tier 1's cavity) but stay within silicon limits, and the
	// energy balance must close over both cavities.
	spec := Power7ChannelSpec(units.MLPerMinToM3PerS(676), units.CtoK(27), VanadiumCoolant())
	f := floorplan.Power7()
	p := &Problem{
		DieWidth:  f.Width,
		DieHeight: f.Height,
		Stack:     Power7Stack3D(spec),
		NX:        44, NY: 32,
	}
	p.Power = f.Rasterize(p.Grid(), floorplan.Power7FullLoad())
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.TierActiveT) != 2 {
		t.Fatalf("expected 2 tier planes, got %d", len(sol.TierActiveT))
	}
	single := Power7Problem(676, units.CtoK(27), 0)
	single.NX, single.NY = 44, 32
	single.Power = f.Rasterize(single.Grid(), floorplan.Power7FullLoad())
	solSingle, err := Solve(single)
	if err != nil {
		t.Fatal(err)
	}
	if sol.PeakT <= solSingle.PeakT {
		t.Fatalf("stacked peak %g must exceed single-die %g", sol.PeakT, solSingle.PeakT)
	}
	if units.KtoC(sol.PeakT) > 70 {
		t.Fatalf("stacked peak %g C implausible for interlayer cooling", units.KtoC(sol.PeakT))
	}
	// Both tiers' power leaves through the two cavities.
	mc := 2 * spec.HeatCapacityRate() // two cavities at spec flow each
	carried := mc * (sol.OutletT - spec.InletTemperature)
	approx(t, carried, sol.TotalPower, 0.03, "two-cavity enthalpy balance")
	// Total power is twice the single-die map.
	approx(t, sol.TotalPower, 2*solSingle.TotalPower, 1e-9, "two tiers of sources")
}

func TestFig9PeakTemperature(t *testing.T) {
	// Paper Fig. 9: full-load POWER7+ cooled by the Table II array at
	// 676 ml/min, 27 C inlet -> 41 C peak. Our compact model lands
	// within a few degrees (38-42 C band asserted).
	p := Power7Problem(676, units.CtoK(27), 0)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	peakC := units.KtoC(sol.PeakT)
	if peakC < 36 || peakC > 44 {
		t.Fatalf("peak %g C outside the Fig. 9 band", peakC)
	}
	// Everything stays above the inlet.
	lo, _ := sol.ActiveT.MinMax()
	if lo < units.CtoK(27)-1e-6 {
		t.Fatalf("active plane below inlet: %g", units.KtoC(lo))
	}
}

func TestFig9HotspotOverCores(t *testing.T) {
	p := Power7Problem(676, units.CtoK(27), 0)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	u := floorplan.Power7().UnitAt(sol.PeakX, sol.PeakY)
	if u == nil || u.Kind != floorplan.Core {
		t.Fatalf("hotspot at (%g, %g) should be over a core, got %v", sol.PeakX, sol.PeakY, u)
	}
}

func TestEnergyConservation(t *testing.T) {
	// Steady state: all chip power (plus extra fluid heat) leaves with
	// the coolant: m_dot cp (T_out - T_in) == P_total + P_extra.
	for _, extra := range []float64{0, 4.0} {
		p := Power7Problem(676, units.CtoK(27), extra)
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		mc := p.Stack.Channels.HeatCapacityRate()
		carried := mc * (sol.OutletT - p.Stack.Channels.InletTemperature)
		approx(t, carried, sol.TotalPower+extra, 0.02, "enthalpy balance")
	}
}

func TestFluidMonotoneAlongFlow(t *testing.T) {
	// With positive heating everywhere, each channel's fluid
	// temperature must rise monotonically downstream.
	p := Power7Problem(676, units.CtoK(27), 0)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	g := sol.Grid
	for i := 0; i < g.NX(); i += 7 {
		prev := 0.0
		for j := 0; j < g.NY(); j++ {
			tf := sol.FluidT.At(i, j)
			if j > 0 && tf < prev-1e-9 {
				t.Fatalf("column %d: fluid cools downstream at j=%d (%g < %g)", i, j, tf, prev)
			}
			prev = tf
		}
	}
}

func TestWallAboveFluid(t *testing.T) {
	p := Power7Problem(676, units.CtoK(27), 0)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Heat flows die -> wall -> fluid: on average wall > fluid, and the
	// active plane is the hottest layer.
	if sol.MeanWallT <= sol.MeanFluidT {
		t.Fatalf("wall %g must exceed fluid %g", sol.MeanWallT, sol.MeanFluidT)
	}
	if sol.PeakT <= sol.MeanWallT {
		t.Fatal("active peak must exceed mean wall")
	}
}

func TestLowerFlowHotter(t *testing.T) {
	// The 48 ml/min sensitivity case (Sec. III-B) heats the fluid
	// substantially: mean fluid temperature rises by several K over the
	// nominal case — the driver of the 23% power gain.
	nominal, err := Solve(Power7Problem(676, units.CtoK(27), 0))
	if err != nil {
		t.Fatal(err)
	}
	low, err := Solve(Power7Problem(48, units.CtoK(27), 0))
	if err != nil {
		t.Fatal(err)
	}
	if low.PeakT <= nominal.PeakT {
		t.Fatal("low flow must run hotter")
	}
	dMean := low.MeanFluidT - nominal.MeanFluidT
	if dMean < 5 {
		t.Fatalf("48 ml/min should raise mean fluid T by >5 K, got %g", dMean)
	}
	// But still a viable operating point (< 85 C junction).
	if units.KtoC(low.PeakT) > 85 {
		t.Fatalf("low-flow peak %g C implausible", units.KtoC(low.PeakT))
	}
}

func TestHotterInletShiftsMap(t *testing.T) {
	// 37 C inlet (the other Sec. III-B case) shifts the whole map up by
	// ~10 K.
	cold, err := Solve(Power7Problem(676, units.CtoK(27), 0))
	if err != nil {
		t.Fatal(err)
	}
	hot, err := Solve(Power7Problem(676, units.CtoK(37), 0))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, hot.PeakT-cold.PeakT, 10, 0.03, "inlet shift")
}

func TestExtraFluidHeatSmall(t *testing.T) {
	// The flow cells' own ~4 W of electrochemical heat barely moves the
	// map (<0.2 K) at nominal flow: the basis for decoupling the power
	// and thermal solves at the first co-simulation iteration.
	base, err := Solve(Power7Problem(676, units.CtoK(27), 0))
	if err != nil {
		t.Fatal(err)
	}
	withHeat, err := Solve(Power7Problem(676, units.CtoK(27), 4.0))
	if err != nil {
		t.Fatal(err)
	}
	d := withHeat.PeakT - base.PeakT
	if d < 0 || d > 0.3 {
		t.Fatalf("4 W of fluid heat moved the peak by %g K", d)
	}
}

func TestGridRefinementStable(t *testing.T) {
	coarse := Power7Problem(676, units.CtoK(27), 0)
	coarse.NX, coarse.NY = 44, 32
	coarse.Power = floorplan.Power7().Rasterize(coarse.Grid(), floorplan.Power7FullLoad())
	fine := Power7Problem(676, units.CtoK(27), 0)
	fine.NX, fine.NY = 132, 96
	fine.Power = floorplan.Power7().Rasterize(fine.Grid(), floorplan.Power7FullLoad())
	solC, err := Solve(coarse)
	if err != nil {
		t.Fatal(err)
	}
	solF, err := Solve(fine)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(solC.PeakT-solF.PeakT) > 1.5 {
		t.Fatalf("peak not grid-stable: coarse %g vs fine %g", solC.PeakT, solF.PeakT)
	}
}

func TestValidation(t *testing.T) {
	p := Power7Problem(676, 300, 0)
	p.Power = nil
	if _, err := Solve(p); err == nil {
		t.Fatal("nil power accepted")
	}
	p = Power7Problem(676, 300, 0)
	p.ExtraFluidHeat = -1
	if _, err := Solve(p); err == nil {
		t.Fatal("negative extra heat accepted")
	}
	p = Power7Problem(676, 300, 0)
	p.DieWidth = 0
	if _, err := Solve(p); err == nil {
		t.Fatal("zero die accepted")
	}
	// Mismatched power grid.
	p = Power7Problem(676, 300, 0)
	p.NX = 10
	p.NY = 10
	if _, err := Solve(p); err == nil {
		t.Fatal("mismatched power grid accepted")
	}
}

func TestTransientApproachesSteady(t *testing.T) {
	p := Power7Problem(676, units.CtoK(27), 0)
	p.NX, p.NY = 44, 32
	p.Power = floorplan.Power7().Rasterize(p.Grid(), floorplan.Power7FullLoad())
	steady, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// The thin liquid-cooled stack settles within tens of ms.
	tr, err := SolveTransient(p, units.CtoK(27), 5e-3, 40)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, tr.Final.PeakT, steady.PeakT, 0.002, "transient settles to steady")
	// Peak temperature rises monotonically from the cold start.
	for k := 1; k < len(tr.PeakT); k++ {
		if tr.PeakT[k] < tr.PeakT[k-1]-1e-9 {
			t.Fatalf("non-monotone heating at step %d", k)
		}
	}
	// Early transient is well below steady (the model resolves the
	// thermal time constant rather than jumping to equilibrium).
	if tr.PeakT[0] > steady.PeakT-0.5 {
		t.Fatalf("first 5 ms step already at steady state (peak %g vs %g)", tr.PeakT[0], steady.PeakT)
	}
}

func TestTransientValidation(t *testing.T) {
	p := Power7Problem(676, 300, 0)
	if _, err := SolveTransient(p, 300, 0, 10); err == nil {
		t.Fatal("zero dt accepted")
	}
	if _, err := SolveTransient(p, 300, 1e-3, 0); err == nil {
		t.Fatal("zero steps accepted")
	}
	if _, err := SolveTransient(p, -5, 1e-3, 3); err == nil {
		t.Fatal("negative T0 accepted")
	}
}
