package thermal

import (
	"context"
	"fmt"
	"math"

	"bright/internal/mesh"
	"bright/internal/num"
)

// Problem is one thermal solve: a stack over a die with a power map.
// The coolant flows along the +Y axis (the paper's channels run along
// the 21.34 mm die dimension; Table II's 22 mm channel length).
type Problem struct {
	// DieWidth (X, across channels) and DieHeight (Y, along flow), m.
	DieWidth, DieHeight float64
	Stack               *Stack
	// Power is the heat-source density field (W/m2) on the solve grid
	// (rasterize the floorplan power map onto Grid()). In multi-tier
	// stacks every heat-source layer receives this map.
	Power *mesh.Field2D
	// ExtraFluidHeat is additional heat (W) deposited directly into the
	// coolant, distributed uniformly over all channels of all cavities
	// — the electrochemical loss heat of the flow cells in
	// co-simulation.
	ExtraFluidHeat float64
	// NX, NY are the lateral grid resolution (defaults 88 x 64: one
	// cell per channel pitch across, ~0.33 mm along flow).
	NX, NY int
	// NonlinearTempIterations enables temperature-dependent layer
	// conductivities (Material.TempExponent): the steady solve is
	// repeated with each layer's conductivity evaluated at its mean
	// temperature until the layer temperatures settle, up to this many
	// passes. 0 keeps the single linear solve at the 300 K reference.
	NonlinearTempIterations int
}

// Grid returns the lateral solve grid.
func (p *Problem) Grid() *mesh.Grid2D {
	nx, ny := p.NX, p.NY
	if nx == 0 {
		nx = 88
	}
	if ny == 0 {
		ny = 64
	}
	return mesh.NewUniformGrid2D(p.DieWidth, p.DieHeight, nx, ny)
}

// Validate reports whether the problem is well posed.
func (p *Problem) Validate() error {
	if p.DieWidth <= 0 || p.DieHeight <= 0 {
		return fmt.Errorf("thermal: nonpositive die %gx%g", p.DieWidth, p.DieHeight)
	}
	if p.Stack == nil {
		return fmt.Errorf("thermal: nil stack")
	}
	if err := p.Stack.Validate(); err != nil {
		return err
	}
	if p.Power == nil {
		return fmt.Errorf("thermal: nil power field")
	}
	if p.ExtraFluidHeat < 0 {
		return fmt.Errorf("thermal: negative extra fluid heat %g", p.ExtraFluidHeat)
	}
	return nil
}

// system is the assembled thermal network before matrix conversion.
type system struct {
	grid       *mesh.Grid2D
	co         *num.COO
	b          []float64 // baseline RHS (inlet advection), no chip power or fluid heat
	rhs        []float64 // reused full-RHS buffer of rhsWithPower
	cap        []float64 // heat capacity per node (J/K)
	n          int
	nx, ny, nz int
	activeKs   []int // heat-source layer indices
	cavKs      []int // cavity layer indices
	inletT     float64
	totalPower float64 // of the most recent rhsWithPower call
	// reversed reports whether column i flows in -Y (counterflow).
	reversed func(i int) bool
}

// rhsWithPower returns the full right-hand side for the given power
// field: the baseline (advection) plus the chip power deposited into
// every heat-source layer and extraFluidHeat (W) spread uniformly over
// all fluid nodes. It also records the integrated power in
// s.totalPower. The returned slice is an internal buffer, valid until
// the next rhsWithPower call — copy it to keep it.
func (s *system) rhsWithPower(power *mesh.Field2D, extraFluidHeat float64) ([]float64, error) {
	if power.Grid.NX() != s.nx || power.Grid.NY() != s.ny {
		return nil, fmt.Errorf("thermal: power grid %dx%d does not match solve grid %dx%d",
			power.Grid.NX(), power.Grid.NY(), s.nx, s.ny)
	}
	if s.rhs == nil {
		s.rhs = make([]float64, s.n)
	}
	b := s.rhs
	copy(b, s.b)
	nSolid := s.nx * s.ny * s.nz
	if extraFluidHeat != 0 {
		perCell := extraFluidHeat / float64(s.n-nSolid)
		for i := nSolid; i < s.n; i++ {
			b[i] += perCell
		}
	}
	s.totalPower = 0
	for _, k := range s.activeKs {
		for j := 0; j < s.ny; j++ {
			for i := 0; i < s.nx; i++ {
				q := power.At(i, j) * s.grid.X.Widths[i] * s.grid.Y.Widths[j]
				b[s.sIdx(i, j, k)] += q
				s.totalPower += q
			}
		}
	}
	return b, nil
}

func (s *system) sIdx(i, j, k int) int { return (k*s.ny+j)*s.nx + i }

// fIdx returns the fluid node of cavity c (index into cavKs) at (i, j).
func (s *system) fIdx(c, i, j int) int {
	return s.nx*s.ny*s.nz + (c*s.ny+j)*s.nx + i
}

// assemble builds the steady-state network (conductances, sources,
// advection) plus per-node heat capacities for the transient solver.
// layerT optionally supplies per-layer temperatures (K) at which the
// layer conductivities are evaluated; nil uses the 300 K reference.
func assemble(p *Problem, layerT []float64) (*system, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := p.Grid()
	nx, ny := g.NX(), g.NY()
	if p.Power.Grid.NX() != nx || p.Power.Grid.NY() != ny {
		return nil, fmt.Errorf("thermal: power grid %dx%d does not match solve grid %dx%d",
			p.Power.Grid.NX(), p.Power.Grid.NY(), nx, ny)
	}
	layers := p.Stack.Layers
	nz := len(layers)
	var cavKs, activeKs []int
	for k, l := range layers {
		if l.Kind == ChannelCavity {
			cavKs = append(cavKs, k)
		}
		if l.HeatSource {
			activeKs = append(activeKs, k)
		}
	}
	if len(cavKs) == 0 {
		return nil, fmt.Errorf("thermal: the stack needs a channel cavity layer (the only heat sink)")
	}
	nSolid := nx * ny * nz
	n := nSolid + len(cavKs)*nx*ny
	s := &system{
		grid: g, co: num.NewCOO(n, n),
		b: make([]float64, n), cap: make([]float64, n),
		n: n, nx: nx, ny: ny, nz: nz,
		activeKs: activeKs, cavKs: cavKs,
		inletT: p.Stack.Channels.InletTemperature,
	}
	spec := p.Stack.Channels
	phi := spec.FluidFraction()
	layerTempOf := func(k int) float64 {
		if layerT == nil || k >= len(layerT) {
			return 0 // reference
		}
		return layerT[k]
	}
	kEff := func(k int) float64 {
		l := layers[k]
		kc := l.Material.ConductivityAt(layerTempOf(k))
		if l.Kind == ChannelCavity {
			return kc*(1-phi) + spec.Fluid.ThermalConductivity*phi
		}
		return kc
	}
	stamp := func(a, c int, cond float64) {
		s.co.Add(a, a, cond)
		s.co.Add(a, c, -cond)
	}
	for k := 0; k < nz; k++ {
		t := layers[k].Thickness
		kc := kEff(k)
		cvol := layers[k].Material.VolHeatCapacity
		if layers[k].Kind == ChannelCavity {
			cvol *= 1 - phi // fluid capacity carried by the fluid nodes
		}
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				row := s.sIdx(i, j, k)
				dx := g.X.Widths[i]
				dy := g.Y.Widths[j]
				s.cap[row] = cvol * dx * dy * t
				if i < nx-1 {
					cond := kc * (dy * t) / g.X.CenterSpacing(i)
					stamp(row, s.sIdx(i+1, j, k), cond)
					stamp(s.sIdx(i+1, j, k), row, cond)
				}
				if j < ny-1 {
					cond := kc * (dx * t) / g.Y.CenterSpacing(j)
					stamp(row, s.sIdx(i, j+1, k), cond)
					stamp(s.sIdx(i, j+1, k), row, cond)
				}
				if k < nz-1 {
					up := s.sIdx(i, j, k+1)
					r := t/(2*kc) + layers[k+1].Thickness/(2*kEff(k+1))
					cond := (dx * dy) / r
					stamp(row, up, cond)
					stamp(up, row, cond)
				}
			}
		}
	}
	h := spec.WallHTC()
	perim := spec.ConvectivePerimeter()
	chanPerCell := float64(spec.NChannels) / float64(nx)
	fluidCapPerCell := spec.Fluid.HeatCapacityVol * spec.Channel.Area() * chanPerCell
	// Per-column flow share (clogging support): column i carries
	// weight_i/sum of the total heat capacity rate.
	weight := func(i int) float64 { return 1.0 / float64(nx) }
	if spec.FlowWeights != nil {
		if len(spec.FlowWeights) != nx {
			return nil, fmt.Errorf("thermal: %d flow weights for %d columns", len(spec.FlowWeights), nx)
		}
		sum := 0.0
		for _, w := range spec.FlowWeights {
			sum += w
		}
		weight = func(i int) float64 { return spec.FlowWeights[i] / sum }
	}
	s.reversed = func(i int) bool { return spec.CounterFlow && i%2 == 1 }
	for c, cavK := range cavKs {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				fRow := s.fIdx(c, i, j)
				sRow := s.sIdx(i, j, cavK)
				dy := g.Y.Widths[j]
				mcCell := spec.HeatCapacityRate() * weight(i)
				gConv := h * perim * dy * chanPerCell
				if mcCell == 0 {
					// Clogged column: stagnant fluid neither advects
					// nor convects meaningfully; couple it weakly to
					// the wall so its node stays well defined.
					gConv *= 1e-6
				}
				stamp(sRow, fRow, gConv)
				s.co.Add(fRow, fRow, gConv+mcCell)
				s.co.Add(fRow, sRow, -gConv)
				atInlet := j == 0
				upstream := j - 1
				if s.reversed(i) {
					atInlet = j == ny-1
					upstream = j + 1
				}
				if atInlet {
					s.b[fRow] += mcCell * spec.InletTemperature
				} else {
					s.co.Add(fRow, s.fIdx(c, i, upstream), -mcCell)
				}
				s.cap[fRow] = fluidCapPerCell * dy
			}
		}
	}
	return s, nil
}

// Solution is the solved temperature state.
type Solution struct {
	Grid *mesh.Grid2D
	// ActiveT is the hottest heat-source-plane temperature per cell (K);
	// for single-die stacks this is simply the active plane.
	ActiveT *mesh.Field2D
	// TierActiveT holds each heat-source layer's plane separately
	// (bottom-up), for multi-tier stacks.
	TierActiveT []*mesh.Field2D
	// WallT is the first cavity's solid (channel wall) temperature (K).
	WallT *mesh.Field2D
	// FluidT is the first cavity's coolant temperature (K) per cell.
	FluidT *mesh.Field2D
	// PeakT is the maximum active-plane temperature (K) over all tiers.
	PeakT float64
	// PeakX, PeakY locate the peak (m).
	PeakX, PeakY float64
	// OutletT is the mean coolant outlet temperature (K) over all
	// cavities.
	OutletT float64
	// MeanFluidT is the volume-mean coolant temperature (K) over all
	// cavities, the value the electrochemistry sees in co-simulation.
	MeanFluidT float64
	// MeanWallT is the mean channel-wall temperature (K) over all
	// cavities.
	MeanWallT float64
	// TotalPower is the integrated chip power (W, all tiers).
	TotalPower float64
}

func (s *system) extract(x []float64) *Solution {
	sol := &Solution{
		Grid:       s.grid,
		ActiveT:    mesh.NewField2D(s.grid),
		WallT:      mesh.NewField2D(s.grid),
		FluidT:     mesh.NewField2D(s.grid),
		PeakT:      -1,
		TotalPower: s.totalPower,
	}
	for range s.activeKs {
		sol.TierActiveT = append(sol.TierActiveT, mesh.NewField2D(s.grid))
	}
	nCav := len(s.cavKs)
	var fluidSum, wallSum float64
	for j := 0; j < s.ny; j++ {
		for i := 0; i < s.nx; i++ {
			hottest := -1.0
			for t, k := range s.activeKs {
				ta := x[s.sIdx(i, j, k)]
				sol.TierActiveT[t].Set(i, j, ta)
				if ta > hottest {
					hottest = ta
				}
			}
			sol.ActiveT.Set(i, j, hottest)
			if hottest > sol.PeakT {
				sol.PeakT = hottest
				sol.PeakX, sol.PeakY = s.grid.X.Centers[i], s.grid.Y.Centers[j]
			}
			sol.WallT.Set(i, j, x[s.sIdx(i, j, s.cavKs[0])])
			sol.FluidT.Set(i, j, x[s.fIdx(0, i, j)])
			for c := 0; c < nCav; c++ {
				tf := x[s.fIdx(c, i, j)]
				tw := x[s.sIdx(i, j, s.cavKs[c])]
				fluidSum += tf
				wallSum += tw
				outletJ := s.ny - 1
				if s.reversed != nil && s.reversed(i) {
					outletJ = 0
				}
				if j == outletJ {
					sol.OutletT += tf / float64(s.nx*nCav)
				}
			}
		}
	}
	sol.MeanFluidT = fluidSum / float64(s.nx*s.ny*nCav)
	sol.MeanWallT = wallSum / float64(s.nx*s.ny*nCav)
	return sol
}

// layerMeans returns the mean temperature of each solid layer from a
// raw solution vector.
func (s *system) layerMeans(x []float64) []float64 {
	out := make([]float64, s.nz)
	cells := float64(s.nx * s.ny)
	for k := 0; k < s.nz; k++ {
		sum := 0.0
		for j := 0; j < s.ny; j++ {
			for i := 0; i < s.nx; i++ {
				sum += x[s.sIdx(i, j, k)]
			}
		}
		out[k] = sum / cells
	}
	return out
}

// solveOnce assembles at the given layer temperatures and solves. x0,
// when sized to the system, seeds the Krylov iteration (warm start);
// otherwise the solve starts from the uniform inlet temperature. The
// advection coupling makes the network nonsymmetric, so the solver is
// pinned to BiCGSTAB without paying a symmetry scan.
func solveOnce(p *Problem, layerT, x0 []float64) (*system, []float64, error) {
	s, err := assemble(p, layerT)
	if err != nil {
		return nil, nil, err
	}
	b, err := s.rhsWithPower(p.Power, p.ExtraFluidHeat)
	if err != nil {
		return nil, nil, err
	}
	a := s.co.ToCSR()
	x := make([]float64, s.n)
	if len(x0) == s.n {
		copy(x, x0)
	} else {
		num.Fill(x, s.inletT)
	}
	// MaxIter rides the capped default: exhaustion now surfaces as
	// num.ErrMaxIter instead of burning 60*n iterations.
	solver := num.NewSparseSolverSymmetric(a, false, num.IterOptions{Tol: 1e-10})
	if _, err := solver.Solve(b, x); err != nil {
		return nil, nil, fmt.Errorf("thermal: steady solve failed: %w", err)
	}
	return s, x, nil
}

// Solve computes the steady-state temperature field, optionally with
// temperature-dependent layer conductivities (NonlinearTempIterations).
func Solve(p *Problem) (*Solution, error) {
	return SolveContext(context.Background(), p)
}

// SolveContext is Solve with cancellation: the context is checked before
// the initial linear solve and at every nonlinear conductivity update,
// so a canceled context aborts within one sparse solve.
func SolveContext(ctx context.Context, p *Problem) (*Solution, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, x, err := solveOnce(p, nil, nil)
	if err != nil {
		return nil, err
	}
	for iter := 0; iter < p.NonlinearTempIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		layerT := s.layerMeans(x)
		// Each conductivity update re-solves from the previous pass's
		// field — the matrices differ only by the temperature-dependent
		// conductivities, so the warm start is close.
		s2, x2, err := solveOnce(p, layerT, x)
		if err != nil {
			return nil, err
		}
		newT := s2.layerMeans(x2)
		maxD := 0.0
		for k := range newT {
			if d := math.Abs(newT[k] - layerT[k]); d > maxD {
				maxD = d
			}
		}
		s, x = s2, x2
		if maxD < 0.05 {
			break
		}
	}
	return s.extract(x), nil
}
