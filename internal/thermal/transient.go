package thermal

import (
	"context"
	"fmt"

	"bright/internal/mesh"
	"bright/internal/num"
)

// TransientResult is the sampled trajectory of a transient solve.
type TransientResult struct {
	// Times are the sample instants (s).
	Times []float64
	// PeakT is the active-plane peak temperature (K) at each sample.
	PeakT []float64
	// MeanFluidT is the coolant mean temperature (K) at each sample
	// (the quantity the electrochemistry follows in workload studies).
	MeanFluidT []float64
	// MeanWallT is the channel-wall mean temperature (K) per sample.
	MeanWallT []float64
	// TotalPowerW is the instantaneous chip power (W) per sample.
	TotalPowerW []float64
	// Final is the full state at the last step.
	Final *Solution
}

// SolveTransient integrates the thermal network with backward Euler from
// a uniform initial temperature t0 (typically the coolant inlet): at each
// step (A + C/dt) T^{n+1} = b + (C/dt) T^n. The matrix is constant, so
// it is assembled and preconditioned once. Use it for power-step
// studies: the paper's architecture promises thermal time constants in
// the millisecond range thanks to the thin stack and embedded coolant.
func SolveTransient(p *Problem, t0, dt float64, steps int) (*TransientResult, error) {
	return SolveSchedule(p, t0, dt, steps, nil)
}

// SolveTransientContext is SolveTransient with cancellation, checked at
// every step boundary.
func SolveTransientContext(ctx context.Context, p *Problem, t0, dt float64, steps int) (*TransientResult, error) {
	return SolveScheduleContext(ctx, p, t0, dt, steps, nil)
}

// SolveSchedule integrates the network under a time-varying power map:
// schedule(step, time) returns the power field for the step (1-based
// step index, time at the end of the step). A nil schedule holds
// p.Power constant — the plain step response. This is the engine of the
// workload scenarios (package workload): bursty chip activity produces
// temperature trajectories, which the quasi-static electrochemistry
// then follows.
func SolveSchedule(p *Problem, t0, dt float64, steps int, schedule func(step int, time float64) *mesh.Field2D) (*TransientResult, error) {
	return SolveScheduleContext(context.Background(), p, t0, dt, steps, schedule)
}

// SolveScheduleContext is SolveSchedule with cancellation: the context
// is checked at every step boundary, so a canceled workload run aborts
// within one backward-Euler step instead of finishing the trace.
func SolveScheduleContext(ctx context.Context, p *Problem, t0, dt float64, steps int, schedule func(step int, time float64) *mesh.Field2D) (*TransientResult, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("thermal: invalid transient parameters dt=%g steps=%d", dt, steps)
	}
	ts, err := NewTransientSession(p, t0, dt)
	if err != nil {
		return nil, err
	}
	res := &TransientResult{}
	power := p.Power
	for step := 1; step <= steps; step++ {
		time := float64(step) * dt
		if schedule != nil {
			if f := schedule(step, time); f != nil {
				power = f
			}
		}
		sol, err := ts.StepContext(ctx, power, p.ExtraFluidHeat)
		if err != nil {
			return nil, err
		}
		res.Times = append(res.Times, time)
		res.PeakT = append(res.PeakT, sol.PeakT)
		res.MeanFluidT = append(res.MeanFluidT, sol.MeanFluidT)
		res.MeanWallT = append(res.MeanWallT, sol.MeanWallT)
		res.TotalPowerW = append(res.TotalPowerW, sol.TotalPower)
		if step == steps {
			res.Final = sol
		}
	}
	return res, nil
}

// TransientSession is the step-at-a-time form of SolveSchedule: the
// backward-Euler matrix (A + C/dt) is assembled and preconditioned
// once, and each StepContext call advances the temperature state by one
// dt under a caller-supplied power map and coolant heat. Where
// SolveSchedule runs a whole trace in one call, a TransientSession is
// driven frame by frame by a long-lived caller — the streaming
// digital-twin sessions of internal/stream — and exposes its state
// vector for checkpoint/restore.
//
// The matrix is bound to the Problem's geometry, stack, flow and dt;
// changing any of those requires a fresh session. The temperature state
// survives such a rebuild: as long as the grid resolution and stack
// layout are unchanged (same node count and meaning), State from the
// old session may be Restore'd into the new one — that is how a
// degrading pump (a flow change, hence new advection terms) is stepped
// through without losing the temperature field. A TransientSession is
// not safe for concurrent use.
type TransientSession struct {
	p      *Problem
	dt     float64
	s      *system
	solver *num.SparseSolver
	x      []float64
	rhs    []float64
	time   float64
	step   int
}

// NewTransientSession assembles the backward-Euler system at the given
// step size, with the temperature state initialized uniformly to t0
// (typically the coolant inlet temperature).
func NewTransientSession(p *Problem, t0, dt float64) (*TransientSession, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("thermal: nonpositive transient step dt=%g", dt)
	}
	if t0 <= 0 {
		return nil, fmt.Errorf("thermal: nonpositive initial temperature %g", t0)
	}
	s, err := assemble(p, nil)
	if err != nil {
		return nil, err
	}
	// Add the capacitance terms to the diagonal.
	for row, c := range s.cap {
		s.co.Add(row, row, c/dt)
	}
	a := s.co.ToCSR()
	// One cached solver for every step: the matrix is constant, so the
	// preconditioner and Krylov workspace are built once, and each step
	// warm-starts from the previous temperature field.
	ts := &TransientSession{
		p:      p,
		dt:     dt,
		s:      s,
		solver: num.NewSparseSolverSymmetric(a, false, num.IterOptions{Tol: 1e-9}),
		x:      make([]float64, s.n),
		rhs:    make([]float64, s.n),
	}
	num.Fill(ts.x, t0)
	return ts, nil
}

// Dt returns the session's step size (s).
func (ts *TransientSession) Dt() float64 { return ts.dt }

// Grid returns the solve grid, the layout power maps passed to
// StepContext must be rasterized on.
func (ts *TransientSession) Grid() *mesh.Grid2D { return ts.s.grid }

// Time returns the simulated time at the current state (s).
func (ts *TransientSession) Time() float64 { return ts.time }

// Steps returns the number of steps taken so far.
func (ts *TransientSession) Steps() int { return ts.step }

// StepContext advances the state by one backward-Euler step under the
// given power map (nil keeps the Problem's map) and extra coolant heat
// (W), returning the solution at the new time. The context is checked
// before the linear solve.
func (ts *TransientSession) StepContext(ctx context.Context, power *mesh.Field2D, extraFluidHeat float64) (*Solution, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if power == nil {
		power = ts.p.Power
	}
	if extraFluidHeat < 0 {
		return nil, fmt.Errorf("thermal: negative extra fluid heat %g", extraFluidHeat)
	}
	base, err := ts.s.rhsWithPower(power, extraFluidHeat)
	if err != nil {
		return nil, fmt.Errorf("thermal: transient step %d: %w", ts.step+1, err)
	}
	copy(ts.rhs, base)
	for row, c := range ts.s.cap {
		ts.rhs[row] += c / ts.dt * ts.x[row]
	}
	if _, err := ts.solver.Solve(ts.rhs, ts.x); err != nil {
		return nil, fmt.Errorf("thermal: transient step %d: %w", ts.step+1, err)
	}
	ts.step++
	ts.time = float64(ts.step) * ts.dt
	return ts.s.extract(ts.x), nil
}

// State returns a copy of the temperature state vector (K per node) —
// the complete integrator state besides time, for checkpointing.
func (ts *TransientSession) State() []float64 {
	out := make([]float64, len(ts.x))
	copy(out, ts.x)
	return out
}

// Restore replaces the temperature state and clock, resuming a
// checkpointed trajectory (possibly in a freshly assembled session with
// the same node layout). The state length must match the session's.
func (ts *TransientSession) Restore(state []float64, time float64, step int) error {
	if len(state) != len(ts.x) {
		return fmt.Errorf("thermal: restore state has %d nodes, session has %d", len(state), len(ts.x))
	}
	if time < 0 || step < 0 {
		return fmt.Errorf("thermal: negative restore clock (time=%g step=%d)", time, step)
	}
	copy(ts.x, state)
	ts.time = time
	ts.step = step
	return nil
}
