package thermal

import (
	"fmt"

	"bright/internal/mesh"
	"bright/internal/num"
)

// TransientResult is the sampled trajectory of a transient solve.
type TransientResult struct {
	// Times are the sample instants (s).
	Times []float64
	// PeakT is the active-plane peak temperature (K) at each sample.
	PeakT []float64
	// MeanFluidT is the coolant mean temperature (K) at each sample
	// (the quantity the electrochemistry follows in workload studies).
	MeanFluidT []float64
	// MeanWallT is the channel-wall mean temperature (K) per sample.
	MeanWallT []float64
	// TotalPowerW is the instantaneous chip power (W) per sample.
	TotalPowerW []float64
	// Final is the full state at the last step.
	Final *Solution
}

// SolveTransient integrates the thermal network with backward Euler from
// a uniform initial temperature t0 (typically the coolant inlet): at each
// step (A + C/dt) T^{n+1} = b + (C/dt) T^n. The matrix is constant, so
// it is assembled and preconditioned once. Use it for power-step
// studies: the paper's architecture promises thermal time constants in
// the millisecond range thanks to the thin stack and embedded coolant.
func SolveTransient(p *Problem, t0, dt float64, steps int) (*TransientResult, error) {
	return SolveSchedule(p, t0, dt, steps, nil)
}

// SolveSchedule integrates the network under a time-varying power map:
// schedule(step, time) returns the power field for the step (1-based
// step index, time at the end of the step). A nil schedule holds
// p.Power constant — the plain step response. This is the engine of the
// workload scenarios (package workload): bursty chip activity produces
// temperature trajectories, which the quasi-static electrochemistry
// then follows.
func SolveSchedule(p *Problem, t0, dt float64, steps int, schedule func(step int, time float64) *mesh.Field2D) (*TransientResult, error) {
	if dt <= 0 || steps <= 0 {
		return nil, fmt.Errorf("thermal: invalid transient parameters dt=%g steps=%d", dt, steps)
	}
	if t0 <= 0 {
		return nil, fmt.Errorf("thermal: nonpositive initial temperature %g", t0)
	}
	s, err := assemble(p, nil)
	if err != nil {
		return nil, err
	}
	// Add the capacitance terms to the diagonal.
	for row, c := range s.cap {
		s.co.Add(row, row, c/dt)
	}
	a := s.co.ToCSR()
	// One cached solver for every step: the matrix is constant, so the
	// Jacobi preconditioner and Krylov workspace are built once, and
	// each step warm-starts from the previous temperature field.
	solver := num.NewSparseSolverSymmetric(a, false, num.IterOptions{Tol: 1e-9})

	x := make([]float64, s.n)
	num.Fill(x, t0)
	rhs := make([]float64, s.n)
	res := &TransientResult{}
	power := p.Power
	for step := 1; step <= steps; step++ {
		time := float64(step) * dt
		if schedule != nil {
			if f := schedule(step, time); f != nil {
				power = f
			}
		}
		base, err := s.rhsWithPower(power, p.ExtraFluidHeat)
		if err != nil {
			return nil, fmt.Errorf("thermal: schedule step %d: %w", step, err)
		}
		copy(rhs, base)
		for row, c := range s.cap {
			rhs[row] += c / dt * x[row]
		}
		if _, err := solver.Solve(rhs, x); err != nil {
			return nil, fmt.Errorf("thermal: transient step %d: %w", step, err)
		}
		sol := s.extract(x)
		res.Times = append(res.Times, time)
		res.PeakT = append(res.PeakT, sol.PeakT)
		res.MeanFluidT = append(res.MeanFluidT, sol.MeanFluidT)
		res.MeanWallT = append(res.MeanWallT, sol.MeanWallT)
		res.TotalPowerW = append(res.TotalPowerW, s.totalPower)
		if step == steps {
			res.Final = sol
		}
	}
	return res, nil
}
