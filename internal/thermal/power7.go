package thermal

import (
	"bright/internal/cfd"
	"bright/internal/floorplan"
	"bright/internal/units"
)

// Power7ChannelSpec returns the Table II microchannel array as a thermal
// channel spec at the given total flow rate (m3/s), inlet temperature
// (K) and fluid properties.
func Power7ChannelSpec(totalFlow, inletT float64, fluid cfd.Fluid) ChannelSpec {
	return ChannelSpec{
		Channel: cfd.Channel{
			Width:  200e-6,
			Height: 400e-6,
			Length: floorplan.Power7Height, // channels span the die along the flow
		},
		Pitch:            300e-6,
		NChannels:        88,
		Fluid:            fluid,
		TotalFlowRate:    totalFlow,
		InletTemperature: inletT,
		FinEfficiency:    0.8,
	}
}

// VanadiumCoolant returns the Table II electrolyte as a cfd.Fluid.
func VanadiumCoolant() cfd.Fluid {
	return cfd.Fluid{
		Density:             1260,
		Viscosity:           2.53e-3,
		ThermalConductivity: 0.67,
		HeatCapacityVol:     4.187e6,
	}
}

// Power7Problem assembles the Fig. 9 thermal problem: the POWER7+
// full-load power map under the Table II flow-cell array at the given
// total flow (ml/min) and inlet temperature (K). extraFluidHeat carries
// the flow cells' own electrochemical losses (W); pass 0 to reproduce
// the pure heat-removal map.
func Power7Problem(totalMLMin, inletT, extraFluidHeat float64) *Problem {
	f := floorplan.Power7()
	spec := Power7ChannelSpec(units.MLPerMinToM3PerS(totalMLMin), inletT, VanadiumCoolant())
	p := &Problem{
		DieWidth:       f.Width,
		DieHeight:      f.Height,
		Stack:          Power7Stack(spec),
		ExtraFluidHeat: extraFluidHeat,
	}
	p.Power = f.Rasterize(p.Grid(), floorplan.Power7FullLoad())
	return p
}
