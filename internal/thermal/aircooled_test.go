package thermal

import (
	"math"
	"testing"

	"bright/internal/floorplan"
	"bright/internal/units"
)

func airProblem(t *testing.T, htc float64) *AirCooledProblem {
	t.Helper()
	f := floorplan.Power7()
	p := Power7AirCooled(htc, units.CtoK(35), nil)
	p.Power = f.Rasterize(p.Grid(), floorplan.Power7FullLoad())
	return p
}

func TestAirCooledBaseline(t *testing.T) {
	// A good server air cooler (~2500 W/m2K effective at 35 C ambient)
	// runs the full-load POWER7+ tens of kelvin hotter than the
	// microfluidic array at a 27 C inlet.
	sol, err := SolveAirCooled(airProblem(t, 2500))
	if err != nil {
		t.Fatal(err)
	}
	peakC := units.KtoC(sol.PeakT)
	if peakC < 60 || peakC > 95 {
		t.Fatalf("air-cooled peak %.1f C outside server expectation", peakC)
	}
	micro, err := Solve(Power7Problem(676, units.CtoK(27), 0))
	if err != nil {
		t.Fatal(err)
	}
	if sol.PeakT-micro.PeakT < 20 {
		t.Fatalf("microfluidic advantage only %.1f K", sol.PeakT-micro.PeakT)
	}
}

func TestAirCooledEnergyBalance(t *testing.T) {
	p := airProblem(t, 3000)
	sol, err := SolveAirCooled(p)
	if err != nil {
		t.Fatal(err)
	}
	// All power leaves through the top film: htc * A * (Ttop - Tamb).
	carried := p.EffectiveHTC * p.DieWidth * p.DieHeight * (sol.TopMeanT - p.AmbientK)
	if math.Abs(carried-sol.TotalPower)/sol.TotalPower > 0.02 {
		t.Fatalf("film carries %.1f W of %.1f W", carried, sol.TotalPower)
	}
}

func TestAirCooledMonotoneInHTC(t *testing.T) {
	weak, err := SolveAirCooled(airProblem(t, 1000))
	if err != nil {
		t.Fatal(err)
	}
	strong, err := SolveAirCooled(airProblem(t, 10000))
	if err != nil {
		t.Fatal(err)
	}
	if strong.PeakT >= weak.PeakT {
		t.Fatal("stronger cooling must lower the peak")
	}
}

func TestAirCooledSpreaderHelps(t *testing.T) {
	// Removing the copper spreader concentrates the heat and raises the
	// peak at the same film coefficient.
	with := airProblem(t, 2500)
	solWith, err := SolveAirCooled(with)
	if err != nil {
		t.Fatal(err)
	}
	without := airProblem(t, 2500)
	without.Layers = without.Layers[:1] // die only
	solWithout, err := SolveAirCooled(without)
	if err != nil {
		t.Fatal(err)
	}
	if solWithout.PeakT <= solWith.PeakT {
		t.Fatalf("spreader should lower the peak: %.1f vs %.1f",
			units.KtoC(solWithout.PeakT), units.KtoC(solWith.PeakT))
	}
}

func TestAirCooledValidation(t *testing.T) {
	p := airProblem(t, 2500)
	p.EffectiveHTC = 0
	if _, err := SolveAirCooled(p); err == nil {
		t.Fatal("zero HTC accepted")
	}
	p = airProblem(t, 2500)
	p.AmbientK = -1
	if _, err := SolveAirCooled(p); err == nil {
		t.Fatal("negative ambient accepted")
	}
	p = airProblem(t, 2500)
	p.Layers[0].HeatSource = false
	if _, err := SolveAirCooled(p); err == nil {
		t.Fatal("sourceless stack accepted")
	}
	p = airProblem(t, 2500)
	p.Layers[1].Kind = ChannelCavity
	if _, err := SolveAirCooled(p); err == nil {
		t.Fatal("cavity layer accepted in the air-cooled stack")
	}
	p = airProblem(t, 2500)
	p.Power = nil
	if _, err := SolveAirCooled(p); err == nil {
		t.Fatal("nil power accepted")
	}
}
