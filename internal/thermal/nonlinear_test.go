package thermal

import (
	"math"
	"testing"

	"bright/internal/units"
)

func TestConductivityAt(t *testing.T) {
	si := Silicon()
	// Reference at 300 K (and for t <= 0).
	if si.ConductivityAt(300) != si.Conductivity || si.ConductivityAt(0) != si.Conductivity {
		t.Fatal("reference conductivity")
	}
	// Hotter silicon conducts worse.
	if si.ConductivityAt(340) >= si.ConductivityAt(300) {
		t.Fatal("silicon k must fall with T")
	}
	// Known ratio at 330 K: (300/330)^1.33 ~ 0.881.
	r := si.ConductivityAt(330) / si.Conductivity
	if math.Abs(r-math.Pow(300.0/330, 1.33)) > 1e-12 {
		t.Fatalf("k ratio %g", r)
	}
	// Exponent 0 materials are T-independent.
	ox := SiliconDioxide()
	if ox.ConductivityAt(400) != ox.Conductivity {
		t.Fatal("SiO2 should be constant here")
	}
	bad := si
	bad.TempExponent = 5
	if err := bad.Validate(); err == nil {
		t.Fatal("absurd exponent accepted")
	}
}

func TestNonlinearSolveRaisesPeak(t *testing.T) {
	linear := Power7Problem(676, units.CtoK(27), 0)
	solLin, err := Solve(linear)
	if err != nil {
		t.Fatal(err)
	}
	nonlin := Power7Problem(676, units.CtoK(27), 0)
	nonlin.NonlinearTempIterations = 4
	solNl, err := Solve(nonlin)
	if err != nil {
		t.Fatal(err)
	}
	d := solNl.PeakT - solLin.PeakT
	// Warmer silicon conducts worse -> slightly higher peak; the effect
	// is a fraction of a kelvin at these mild temperatures.
	if d <= 0 {
		t.Fatalf("nonlinear peak %.3f must exceed linear %.3f", solNl.PeakT, solLin.PeakT)
	}
	if d > 1.5 {
		t.Fatalf("nonlinear correction %.2f K implausibly large", d)
	}
}

func TestNonlinearConverges(t *testing.T) {
	// More iterations past convergence change nothing measurable.
	at := func(iters int) float64 {
		p := Power7Problem(676, units.CtoK(27), 0)
		p.NonlinearTempIterations = iters
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		return sol.PeakT
	}
	if d := math.Abs(at(3) - at(6)); d > 0.05 {
		t.Fatalf("not converged after 3 iterations (delta %.3f K)", d)
	}
}

func yGradient(sol *Solution) float64 {
	g := sol.Grid
	q := g.NY() / 4
	var first, last float64
	for j := 0; j < q; j++ {
		for i := 0; i < g.NX(); i++ {
			first += sol.ActiveT.At(i, j)
			last += sol.ActiveT.At(i, g.NY()-1-j)
		}
	}
	return (last - first) / float64(q*g.NX())
}

func TestCounterFlowEvensGradient(t *testing.T) {
	uni, err := Solve(Power7Problem(676, units.CtoK(27), 0))
	if err != nil {
		t.Fatal(err)
	}
	cf := Power7Problem(676, units.CtoK(27), 0)
	cf.Stack.Channels.CounterFlow = true
	solC, err := Solve(cf)
	if err != nil {
		t.Fatal(err)
	}
	gU, gC := yGradient(uni), yGradient(solC)
	// Uniflow warms monotonically downstream; counterflow must cut the
	// asymmetry roughly in half.
	if gU <= 0 {
		t.Fatalf("uniflow gradient %g not positive", gU)
	}
	if gC > 0.7*gU {
		t.Fatalf("counterflow gradient %.3f K should be well below uniflow %.3f K", gC, gU)
	}
	// Energy still conserved: outlet carries the chip power.
	mc := cf.Stack.Channels.HeatCapacityRate()
	carried := mc * (solC.OutletT - cf.Stack.Channels.InletTemperature)
	if math.Abs(carried-solC.TotalPower)/solC.TotalPower > 0.02 {
		t.Fatalf("counterflow enthalpy balance: %.1f W vs %.1f W", carried, solC.TotalPower)
	}
	// Peak unchanged or slightly better.
	if solC.PeakT > uni.PeakT+0.05 {
		t.Fatalf("counterflow peak %.2f worse than uniflow %.2f", solC.PeakT, uni.PeakT)
	}
}
