package thermal

import (
	"testing"

	"bright/internal/floorplan"
	"bright/internal/units"
)

func benchProblem() *Problem {
	p := Power7Problem(676, units.CtoK(27), 0)
	p.NX, p.NY = 44, 32
	p.Power = floorplan.Power7().Rasterize(p.Grid(), floorplan.Power7FullLoad())
	return p
}

// BenchmarkSolveCold is the from-scratch path the co-simulation used to
// pay every fixed-point iteration: assemble the FV network, build the
// preconditioner, converge BiCGSTAB from the uniform inlet field.
func BenchmarkSolveCold(b *testing.B) {
	p := benchProblem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionWarm is the cached path: matrix, preconditioner and
// Krylov workspace reused, each solve warm-started from the previous
// field with a slightly different coolant heat — exactly the shape of
// the co-simulation loop. Compare against BenchmarkSolveCold.
func BenchmarkSessionWarm(b *testing.B) {
	ses, err := NewSession(benchProblem())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ses.Solve(nil, 0); err != nil {
		b.Fatal(err)
	}
	heats := [...]float64{3.9, 4.0, 4.1, 4.0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ses.Solve(nil, heats[i%len(heats)]); err != nil {
			b.Fatal(err)
		}
	}
}
