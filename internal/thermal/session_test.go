package thermal

import (
	"math"
	"testing"

	"bright/internal/floorplan"
	"bright/internal/units"
)

// sessionTestProblem is the case-study problem at a coarse grid: fast
// enough to solve repeatedly, fine enough to exercise every term.
func sessionTestProblem(extraFluidHeat float64) *Problem {
	p := Power7Problem(676, units.CtoK(27), extraFluidHeat)
	p.NX, p.NY = 22, 16
	p.Power = floorplan.Power7().Rasterize(p.Grid(), floorplan.Power7FullLoad())
	return p
}

// TestSessionMatchesFreshSolve pins the session's core contract: a
// warm-started, cached-matrix solve lands on the same steady state as a
// from-scratch Solve, for several extra-heat values in either order.
func TestSessionMatchesFreshSolve(t *testing.T) {
	ses, err := NewSession(sessionTestProblem(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, heat := range []float64{0, 4.0, 1.5, 8.0, 0} {
		got, err := ses.Solve(nil, heat)
		if err != nil {
			t.Fatalf("session solve (heat=%g): %v", heat, err)
		}
		want, err := Solve(sessionTestProblem(heat))
		if err != nil {
			t.Fatalf("fresh solve (heat=%g): %v", heat, err)
		}
		for _, q := range []struct {
			name     string
			got, ref float64
		}{
			{"PeakT", got.PeakT, want.PeakT},
			{"MeanFluidT", got.MeanFluidT, want.MeanFluidT},
			{"MeanWallT", got.MeanWallT, want.MeanWallT},
		} {
			if rel := math.Abs(q.got-q.ref) / q.ref; rel > 1e-6 {
				t.Errorf("heat=%g: %s relative error %g (session %g vs fresh %g)",
					heat, q.name, rel, q.got, q.ref)
			}
		}
	}
}

// TestSessionWarmStartCutsIterations is the observable payoff: after the
// first solve, a nearby right-hand side converges in fewer Krylov
// iterations from the cached field than the cold solve needed.
func TestSessionWarmStartCutsIterations(t *testing.T) {
	ses, err := NewSession(sessionTestProblem(0))
	if err != nil {
		t.Fatal(err)
	}
	if ses.Warm() {
		t.Fatal("new session must start cold")
	}
	if _, err := ses.Solve(nil, 0); err != nil {
		t.Fatal(err)
	}
	cold := ses.LastIterations()
	if !ses.Warm() {
		t.Fatal("session must be warm after a converged solve")
	}
	if _, err := ses.Solve(nil, 0.1); err != nil {
		t.Fatal(err)
	}
	warm := ses.LastIterations()
	if warm >= cold {
		t.Fatalf("warm re-solve took %d iterations, cold took %d", warm, cold)
	}
}

// TestSessionRejectsNonlinear: the temperature-dependent-conductivity
// path reassembles per pass and cannot ride one cached matrix.
func TestSessionRejectsNonlinear(t *testing.T) {
	p := sessionTestProblem(0)
	p.NonlinearTempIterations = 3
	if _, err := NewSession(p); err == nil {
		t.Fatal("NewSession accepted a nonlinear problem")
	}
}

// TestSessionRejectsNegativeHeat mirrors Solve's validation.
func TestSessionRejectsNegativeHeat(t *testing.T) {
	ses, err := NewSession(sessionTestProblem(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ses.Solve(nil, -1); err == nil {
		t.Fatal("negative extra heat accepted")
	}
}
