package thermal

import (
	"context"
	"fmt"

	"bright/internal/mesh"
	"bright/internal/num"
	"bright/internal/obs"
)

// Session solve telemetry (process-wide; see internal/obs). The warm
// label splits first solves from warm-started re-solves, making the
// co-simulation's warm-start hit rate visible on /metrics.
var (
	sessionSolvesWarm = obs.Default.Counter("bright_thermal_session_solves_total",
		"Thermal session solves by warm-start state.", obs.L("warm", "true"))
	sessionSolvesCold = obs.Default.Counter("bright_thermal_session_solves_total",
		"Thermal session solves by warm-start state.", obs.L("warm", "false"))
)

// Session caches one assembled steady-state thermal system — the FV
// network matrix, its Jacobi preconditioner and the Krylov workspace —
// for repeated solves where only the right-hand side changes: a new
// power map, a new electrochemical loss heat, or both. This is exactly
// the shape of the electro-thermal co-simulation fixed-point loop,
// where the geometry, stack and flow are fixed across iterations; a
// session there skips per-iteration reassembly entirely and each solve
// warm-starts from the previous iteration's temperature field.
//
// Warm-start contract: the cached matrix and guess are valid only while
// the Problem's geometry, stack, channel spec, grid resolution and flow
// stay fixed. Changing any of those (a new mesh, a clogging pattern, a
// different flow rate) requires a fresh Session — the session holds no
// invalidation magic, it is bound to the Problem it was built from.
// Changing only Power or ExtraFluidHeat between calls is the intended
// use. A Session is not safe for concurrent use.
type Session struct {
	p      *Problem
	s      *system
	solver *num.SparseSolver
	x      []float64
	warm   bool
	last   num.IterResult
}

// NewSession assembles the problem once and prepares the cached solver.
// The problem must be linear (NonlinearTempIterations == 0): the
// temperature-dependent-conductivity path reassembles the matrix per
// pass and cannot reuse one factorization-free setup.
func NewSession(p *Problem) (*Session, error) {
	if p.NonlinearTempIterations != 0 {
		return nil, fmt.Errorf("thermal: Session requires a linear problem (NonlinearTempIterations=0, got %d)",
			p.NonlinearTempIterations)
	}
	s, err := assemble(p, nil)
	if err != nil {
		return nil, err
	}
	a := s.co.ToCSR()
	ses := &Session{
		p: p,
		s: s,
		// Advection makes the network nonsymmetric: BiCGSTAB, no scan.
		// MaxIter rides the capped default so exhaustion surfaces as
		// num.ErrMaxIter instead of burning 60*n iterations.
		solver: num.NewSparseSolverSymmetric(a, false, num.IterOptions{Tol: 1e-10}),
		x:      make([]float64, s.n),
	}
	num.Fill(ses.x, s.inletT)
	return ses, nil
}

// Solve computes the steady state for the given power map (nil keeps
// the problem's map) and extra coolant heat (W), warm-starting from the
// previous call's temperature field.
func (ss *Session) Solve(power *mesh.Field2D, extraFluidHeat float64) (*Solution, error) {
	return ss.SolveContext(context.Background(), power, extraFluidHeat)
}

// SolveContext is Solve with cancellation, checked before the linear
// solve starts.
func (ss *Session) SolveContext(ctx context.Context, power *mesh.Field2D, extraFluidHeat float64) (*Solution, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if power == nil {
		power = ss.p.Power
	}
	if extraFluidHeat < 0 {
		return nil, fmt.Errorf("thermal: negative extra fluid heat %g", extraFluidHeat)
	}
	b, err := ss.s.rhsWithPower(power, extraFluidHeat)
	if err != nil {
		return nil, err
	}
	if ss.warm {
		sessionSolvesWarm.Inc()
	} else {
		sessionSolvesCold.Inc()
	}
	res, err := ss.solver.Solve(b, ss.x)
	ss.last = res
	if err != nil {
		// Do not let a failed iterate poison the next warm start.
		num.Fill(ss.x, ss.s.inletT)
		ss.warm = false
		return nil, fmt.Errorf("thermal: session solve failed: %w", err)
	}
	ss.warm = true
	return ss.s.extract(ss.x), nil
}

// LastIterations reports the Krylov iteration count of the most recent
// solve — the observable measure of warm-start effectiveness.
func (ss *Session) LastIterations() int { return ss.last.Iterations }

// Warm reports whether the next solve will start from a previous
// converged field rather than the uniform inlet temperature.
func (ss *Session) Warm() bool { return ss.warm }
