// Package thermal implements a 3D-ICE-style compact thermal model for
// liquid-cooled chips (the paper's reference [7]): the die and cap are
// discretized into a 3D resistance network, and the microchannel layer
// is modeled as solid wall cells coupled to one fluid node per cell with
// upwind advection along the flow direction and convective wall
// conductances from Nusselt correlations. Steady-state and transient
// (backward Euler) solvers are provided. This package regenerates the
// paper's Fig. 9 thermal map.
package thermal

import (
	"fmt"
	"math"

	"bright/internal/cfd"
)

// Material carries bulk thermal properties.
type Material struct {
	Name string
	// Conductivity in W/(m.K) at the 300 K reference.
	Conductivity float64
	// VolHeatCapacity is rho*cp in J/(m3.K) (used by the transient
	// solver).
	VolHeatCapacity float64
	// TempExponent models k(T) = k300 * (300/T)^TempExponent; 0 means
	// temperature-independent. Bulk silicon follows ~1.33 near room
	// temperature (phonon scattering). Used by the nonlinear solve.
	TempExponent float64
}

// Validate reports whether the material is physical.
func (m Material) Validate() error {
	if m.Conductivity <= 0 || m.VolHeatCapacity <= 0 {
		return fmt.Errorf("thermal: nonphysical material %+v", m)
	}
	if m.TempExponent < 0 || m.TempExponent > 3 {
		return fmt.Errorf("thermal: conductivity exponent %g out of [0,3]", m.TempExponent)
	}
	return nil
}

// ConductivityAt returns the conductivity at temperature t (K); t <= 0
// returns the 300 K reference.
func (m Material) ConductivityAt(t float64) float64 {
	if m.TempExponent == 0 || t <= 0 {
		return m.Conductivity
	}
	return m.Conductivity * math.Pow(300/t, m.TempExponent)
}

// Silicon returns bulk silicon (130 W/mK at 300 K with the ~T^-1.33
// phonon roll-off).
func Silicon() Material {
	return Material{Name: "silicon", Conductivity: 130, VolHeatCapacity: 1.63e6, TempExponent: 1.33}
}

// SiliconDioxide returns SiO2 (BEOL approximation).
func SiliconDioxide() Material {
	return Material{Name: "SiO2", Conductivity: 1.4, VolHeatCapacity: 1.67e6}
}

// LayerKind distinguishes plain conduction layers from the microchannel
// cavity layer.
type LayerKind int

const (
	// Conduction is a homogeneous solid layer.
	Conduction LayerKind = iota
	// ChannelCavity is the etched microchannel layer: silicon walls
	// with fluid channels, homogenized per cell.
	ChannelCavity
)

// Layer is one stratum of the stack, bottom-up.
type Layer struct {
	Name      string
	Kind      LayerKind
	Thickness float64 // m
	Material  Material
	// HeatSource marks the layer receiving the chip power map (the
	// active silicon).
	HeatSource bool
}

// ChannelSpec describes the microchannel array inside the cavity layer.
type ChannelSpec struct {
	// Channel geometry; Channel.Height must equal the cavity layer
	// thickness and Channel.Length the die extent along the flow.
	Channel cfd.Channel
	// Pitch is the channel-to-channel spacing (m); Pitch - Width is
	// the wall thickness.
	Pitch float64
	// NChannels across the die.
	NChannels int
	// Fluid properties.
	Fluid cfd.Fluid
	// TotalFlowRate (m3/s) through all channels.
	TotalFlowRate float64
	// InletTemperature (K).
	InletTemperature float64
	// FinEfficiency discounts the side-wall convection area (0..1];
	// 0.8 is typical for 100 um silicon fins of 2:1 aspect channels.
	FinEfficiency float64
	// FlowWeights optionally assigns a relative flow to each solve
	// column (length = the problem's NX). Column i carries the fraction
	// w_i / sum(w) of TotalFlowRate; a zero weight models a clogged
	// channel (no advection, no convection). Nil means uniform flow.
	FlowWeights []float64
	// CounterFlow alternates the flow direction per column (odd columns
	// flow -Y): the classic counterflow layout that evens the
	// along-flow temperature gradient at the cost of dual headers.
	CounterFlow bool
}

// Validate reports whether the channel spec is usable.
func (c ChannelSpec) Validate() error {
	if err := c.Channel.Validate(); err != nil {
		return err
	}
	if err := c.Fluid.Validate(); err != nil {
		return err
	}
	if c.Pitch <= c.Channel.Width {
		return fmt.Errorf("thermal: pitch %g must exceed channel width %g", c.Pitch, c.Channel.Width)
	}
	if c.NChannels <= 0 {
		return fmt.Errorf("thermal: need channels, got %d", c.NChannels)
	}
	if c.TotalFlowRate <= 0 {
		return fmt.Errorf("thermal: nonpositive flow %g", c.TotalFlowRate)
	}
	if c.InletTemperature <= 0 {
		return fmt.Errorf("thermal: nonpositive inlet temperature %g", c.InletTemperature)
	}
	if c.FinEfficiency <= 0 || c.FinEfficiency > 1 {
		return fmt.Errorf("thermal: fin efficiency %g out of (0,1]", c.FinEfficiency)
	}
	if c.FlowWeights != nil {
		sum := 0.0
		for k, w := range c.FlowWeights {
			if w < 0 {
				return fmt.Errorf("thermal: negative flow weight at column %d", k)
			}
			sum += w
		}
		if sum <= 0 {
			return fmt.Errorf("thermal: all flow weights zero")
		}
	}
	if c.Fluid.ThermalConductivity <= 0 || c.Fluid.HeatCapacityVol <= 0 {
		return fmt.Errorf("thermal: fluid needs thermal properties")
	}
	return nil
}

// FluidFraction returns the cavity fluid volume fraction.
func (c ChannelSpec) FluidFraction() float64 { return c.Channel.Width / c.Pitch }

// HeatCapacityRate returns the total m_dot*cp (W/K) of the coolant.
func (c ChannelSpec) HeatCapacityRate() float64 {
	return c.TotalFlowRate * c.Fluid.HeatCapacityVol
}

// WallHTC returns the fully developed convective coefficient (W/m2K) on
// the channel walls.
func (c ChannelSpec) WallHTC() float64 {
	return cfd.HeatTransferCoefficient(c.Channel, c.Fluid)
}

// ConvectivePerimeter returns the effective wetted perimeter per channel
// (m), with the side walls discounted by the fin efficiency.
func (c ChannelSpec) ConvectivePerimeter() float64 {
	w, h := c.Channel.Width, c.Channel.Height
	return 2*w + 2*h*c.FinEfficiency
}

// Stack is the full layer assembly.
type Stack struct {
	Layers []Layer
	// Channels describes the cavity; required when any layer is a
	// ChannelCavity.
	Channels ChannelSpec
}

// Validate checks structural consistency. Multi-tier stacks (the
// paper's 3D-stacking outlook) may carry several heat-source dies and
// several cavity layers; every cavity shares the Channels spec (each
// tier carries an identical array at the same per-cavity flow).
func (s *Stack) Validate() error {
	if len(s.Layers) == 0 {
		return fmt.Errorf("thermal: empty stack")
	}
	sources := 0
	for i, l := range s.Layers {
		if l.Thickness <= 0 {
			return fmt.Errorf("thermal: layer %d (%s) nonpositive thickness", i, l.Name)
		}
		if err := l.Material.Validate(); err != nil {
			return fmt.Errorf("layer %d (%s): %w", i, l.Name, err)
		}
		if l.HeatSource {
			sources++
		}
		if l.Kind == ChannelCavity {
			if err := s.Channels.Validate(); err != nil {
				return err
			}
			if d := l.Thickness - s.Channels.Channel.Height; d > 1e-12 || d < -1e-12 {
				return fmt.Errorf("thermal: cavity layer thickness %g != channel height %g",
					l.Thickness, s.Channels.Channel.Height)
			}
		}
	}
	if sources == 0 {
		return fmt.Errorf("thermal: need at least one heat-source layer")
	}
	return nil
}

// NumCavities returns the number of channel-cavity layers.
func (s *Stack) NumCavities() int {
	n := 0
	for _, l := range s.Layers {
		if l.Kind == ChannelCavity {
			n++
		}
	}
	return n
}

// Power7Stack builds the case-study stack: a 500 um silicon die (active
// plane at its bottom), a thin BEOL/TSV bonding layer, the 400 um etched
// channel cavity (Table II channels) and a 300 um silicon cap.
func Power7Stack(spec ChannelSpec) *Stack {
	return &Stack{
		Layers: []Layer{
			{Name: "die", Kind: Conduction, Thickness: 500e-6, Material: Silicon(), HeatSource: true},
			{Name: "bond", Kind: Conduction, Thickness: 20e-6, Material: SiliconDioxide()},
			{Name: "cavity", Kind: ChannelCavity, Thickness: spec.Channel.Height, Material: Silicon()},
			{Name: "cap", Kind: Conduction, Thickness: 300e-6, Material: Silicon()},
		},
		Channels: spec,
	}
}

// Power7Stack3D builds a two-tier 3D stack (the paper's outlook:
// "enable even denser packaging of devices via 3D stacking of ICs with
// interlayer cooling"): two POWER7+-class dies, each with its own
// interlayer channel cavity carrying the Table II array. Both dies
// receive the chip power map; each cavity carries the spec's flow.
func Power7Stack3D(spec ChannelSpec) *Stack {
	return &Stack{
		Layers: []Layer{
			{Name: "die0", Kind: Conduction, Thickness: 500e-6, Material: Silicon(), HeatSource: true},
			{Name: "bond0", Kind: Conduction, Thickness: 20e-6, Material: SiliconDioxide()},
			{Name: "cavity0", Kind: ChannelCavity, Thickness: spec.Channel.Height, Material: Silicon()},
			{Name: "bond1", Kind: Conduction, Thickness: 20e-6, Material: SiliconDioxide()},
			{Name: "die1", Kind: Conduction, Thickness: 500e-6, Material: Silicon(), HeatSource: true},
			{Name: "bond2", Kind: Conduction, Thickness: 20e-6, Material: SiliconDioxide()},
			{Name: "cavity1", Kind: ChannelCavity, Thickness: spec.Channel.Height, Material: Silicon()},
			{Name: "cap", Kind: Conduction, Thickness: 300e-6, Material: Silicon()},
		},
		Channels: spec,
	}
}
