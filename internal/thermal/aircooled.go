package thermal

import (
	"fmt"

	"bright/internal/mesh"
	"bright/internal/num"
)

// AirCooledProblem is the conventional-cooling baseline the paper
// argues against: the same die, but heat leaves through a spreader and
// finned heat sink on top (lumped into an effective heat-transfer
// coefficient) instead of through embedded microchannels.
type AirCooledProblem struct {
	// DieWidth, DieHeight in m.
	DieWidth, DieHeight float64
	// Layers bottom-up, all Conduction, exactly one HeatSource. The top
	// layer's upper face carries the convective boundary.
	Layers []Layer
	// EffectiveHTC is the lumped spreader+sink+airflow coefficient
	// referenced to the die footprint (W/m2K). Good server air coolers
	// reach an effective 2000-5000 W/m2K; liquid cold plates 10-20k.
	EffectiveHTC float64
	// AmbientK is the inlet-air temperature (K).
	AmbientK float64
	// Power is the heat map (W/m2) on Grid().
	Power *mesh.Field2D
	// NX, NY default to 88x64.
	NX, NY int
}

// Grid returns the lateral solve grid.
func (p *AirCooledProblem) Grid() *mesh.Grid2D {
	nx, ny := p.NX, p.NY
	if nx == 0 {
		nx = 88
	}
	if ny == 0 {
		ny = 64
	}
	return mesh.NewUniformGrid2D(p.DieWidth, p.DieHeight, nx, ny)
}

// Validate reports whether the problem is well posed.
func (p *AirCooledProblem) Validate() error {
	if p.DieWidth <= 0 || p.DieHeight <= 0 {
		return fmt.Errorf("thermal: nonpositive die")
	}
	if len(p.Layers) == 0 {
		return fmt.Errorf("thermal: no layers")
	}
	sources := 0
	for i, l := range p.Layers {
		if l.Kind != Conduction {
			return fmt.Errorf("thermal: air-cooled layer %d must be Conduction", i)
		}
		if l.Thickness <= 0 {
			return fmt.Errorf("thermal: layer %d nonpositive thickness", i)
		}
		if err := l.Material.Validate(); err != nil {
			return err
		}
		if l.HeatSource {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("thermal: need exactly one source layer, got %d", sources)
	}
	if p.EffectiveHTC <= 0 {
		return fmt.Errorf("thermal: nonpositive HTC")
	}
	if p.AmbientK <= 0 {
		return fmt.Errorf("thermal: nonpositive ambient")
	}
	if p.Power == nil {
		return fmt.Errorf("thermal: nil power")
	}
	return nil
}

// AirCooledSolution is the solved baseline state.
type AirCooledSolution struct {
	Grid    *mesh.Grid2D
	ActiveT *mesh.Field2D
	PeakT   float64
	// TopMeanT is the mean top-surface temperature (K).
	TopMeanT float64
	// TotalPower integrated from the map (W).
	TotalPower float64
}

// SolveAirCooled computes the steady conduction + top-convection state.
func SolveAirCooled(p *AirCooledProblem) (*AirCooledSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := p.Grid()
	nx, ny := g.NX(), g.NY()
	if p.Power.Grid.NX() != nx || p.Power.Grid.NY() != ny {
		return nil, fmt.Errorf("thermal: power grid mismatch")
	}
	nz := len(p.Layers)
	n := nx * ny * nz
	idx := func(i, j, k int) int { return (k*ny+j)*nx + i }
	co := num.NewCOO(n, n)
	b := make([]float64, n)
	activeK := 0
	total := 0.0
	for k := 0; k < nz; k++ {
		l := p.Layers[k]
		if l.HeatSource {
			activeK = k
		}
		kc := l.Material.Conductivity
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				row := idx(i, j, k)
				dx := g.X.Widths[i]
				dy := g.Y.Widths[j]
				if i < nx-1 {
					cond := kc * (dy * l.Thickness) / g.X.CenterSpacing(i)
					co.Add(row, row, cond)
					co.Add(idx(i+1, j, k), idx(i+1, j, k), cond)
					co.Add(row, idx(i+1, j, k), -cond)
					co.Add(idx(i+1, j, k), row, -cond)
				}
				if j < ny-1 {
					cond := kc * (dx * l.Thickness) / g.Y.CenterSpacing(j)
					co.Add(row, row, cond)
					co.Add(idx(i, j+1, k), idx(i, j+1, k), cond)
					co.Add(row, idx(i, j+1, k), -cond)
					co.Add(idx(i, j+1, k), row, -cond)
				}
				if k < nz-1 {
					up := idx(i, j, k+1)
					r := l.Thickness/(2*kc) + p.Layers[k+1].Thickness/(2*p.Layers[k+1].Material.Conductivity)
					cond := (dx * dy) / r
					co.Add(row, row, cond)
					co.Add(up, up, cond)
					co.Add(row, up, -cond)
					co.Add(up, row, -cond)
				}
				if k == nz-1 {
					// Robin boundary: series of half-layer conduction
					// and the effective film coefficient.
					r := l.Thickness/(2*kc) + 1/p.EffectiveHTC
					cond := (dx * dy) / r
					co.Add(row, row, cond)
					b[row] += cond * p.AmbientK
				}
				if l.HeatSource {
					q := p.Power.At(i, j) * dx * dy
					b[row] += q
					total += q
				}
			}
		}
	}
	a := co.ToCSR()
	x := make([]float64, n)
	num.Fill(x, p.AmbientK)
	if _, err := num.CG(a, b, x, num.IterOptions{Tol: 1e-10, MaxIter: 60 * n, M: num.NewJacobi(a)}); err != nil {
		return nil, fmt.Errorf("thermal: air-cooled solve failed: %w", err)
	}
	sol := &AirCooledSolution{
		Grid:       g,
		ActiveT:    mesh.NewField2D(g),
		PeakT:      -1,
		TotalPower: total,
	}
	var topSum float64
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			ta := x[idx(i, j, activeK)]
			sol.ActiveT.Set(i, j, ta)
			if ta > sol.PeakT {
				sol.PeakT = ta
			}
			topSum += x[idx(i, j, nz-1)]
		}
	}
	sol.TopMeanT = topSum / float64(nx*ny)
	return sol, nil
}

// Power7AirCooled assembles the baseline for the POWER7+ full-load map:
// die, TIM and copper spreader under the lumped sink coefficient.
func Power7AirCooled(htc, ambientK float64, power *mesh.Field2D) *AirCooledProblem {
	return &AirCooledProblem{
		DieWidth:  26.55e-3,
		DieHeight: 21.34e-3,
		Layers: []Layer{
			{Name: "die", Kind: Conduction, Thickness: 500e-6, Material: Silicon(), HeatSource: true},
			{Name: "tim", Kind: Conduction, Thickness: 50e-6, Material: Material{Name: "TIM", Conductivity: 4, VolHeatCapacity: 2e6}},
			{Name: "spreader", Kind: Conduction, Thickness: 2e-3, Material: Material{Name: "copper", Conductivity: 390, VolHeatCapacity: 3.4e6}},
		},
		EffectiveHTC: htc,
		AmbientK:     ambientK,
		Power:        power,
	}
}
