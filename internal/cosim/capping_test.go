package cosim

import (
	"math"
	"testing"
)

func TestThermalCapFullLoadFitsAtNominal(t *testing.T) {
	res, err := ThermalCap(676, 27, 85)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLoadFraction != 1 {
		t.Fatalf("nominal condition should carry full load, got %.3f", res.MaxLoadFraction)
	}
	if res.PeakAtCapC > 45 {
		t.Fatalf("nominal peak %.1f C", res.PeakAtCapC)
	}
}

func TestThermalCapBindsAtStarvedFlow(t *testing.T) {
	res, err := ThermalCap(20, 27, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLoadFraction >= 1 || res.MaxLoadFraction <= 0.2 {
		t.Fatalf("starved-flow cap %.3f outside expectation", res.MaxLoadFraction)
	}
	// The governor caps right at the limit.
	if math.Abs(res.PeakAtCapC-60) > 1.0 {
		t.Fatalf("capped peak %.2f C not at the 60 C limit", res.PeakAtCapC)
	}
	if res.SustainedPowerW <= 0 || res.SustainedPowerW >= 58 {
		t.Fatalf("sustained power %.1f W inconsistent with the cap", res.SustainedPowerW)
	}
}

func TestThermalCapMonotoneInFlow(t *testing.T) {
	lo, err := ThermalCap(15, 27, 60)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := ThermalCap(30, 27, 60)
	if err != nil {
		t.Fatal(err)
	}
	if hi.MaxLoadFraction <= lo.MaxLoadFraction {
		t.Fatalf("more flow must allow more load: %.3f vs %.3f",
			hi.MaxLoadFraction, lo.MaxLoadFraction)
	}
}

func TestThermalCapValidation(t *testing.T) {
	if _, err := ThermalCap(0, 27, 85); err == nil {
		t.Fatal("zero flow accepted")
	}
	if _, err := ThermalCap(676, 60, 50); err == nil {
		t.Fatal("limit below inlet accepted")
	}
}
