// Package cosim couples the electrochemical flow-cell array model with
// the compact thermal model into the fixed-point electro-thermal
// co-simulation of Section III-B: the chip and flow-cell losses heat the
// coolant, the warmer electrolyte has faster kinetics and diffusion
// (more current at fixed potential), which changes the dissipated heat,
// and so on to convergence. It quantifies the paper's two sensitivity
// claims: <= 4% current gain at nominal flow, and up to ~23% power gain
// at reduced flow (48 ml/min) or elevated inlet temperature (37 C).
package cosim

import (
	"context"
	"fmt"
	"math"

	"bright/internal/flowcell"
	"bright/internal/mesh"
	"bright/internal/obs"
	"bright/internal/thermal"
	"bright/internal/units"
)

// Fixed-point loop telemetry (process-wide; see internal/obs). The
// outcome label separates healthy convergence from iteration-budget
// exhaustion, solver errors and cancellations — the signal a
// design-space sweep needs to spot regions where the electro-thermal
// coupling stops converging.
var (
	cosimIterations = obs.Default.Counter("bright_cosim_iterations_total",
		"Electro-thermal fixed-point iterations executed.")
	cosimConverged = obs.Default.Counter("bright_cosim_runs_total",
		"Completed co-simulation runs by outcome.", obs.L("outcome", "converged"))
	cosimMaxIter = obs.Default.Counter("bright_cosim_runs_total",
		"Completed co-simulation runs by outcome.", obs.L("outcome", "maxiter"))
	cosimErrored = obs.Default.Counter("bright_cosim_runs_total",
		"Completed co-simulation runs by outcome.", obs.L("outcome", "error"))
	cosimCanceled = obs.Default.Counter("bright_cosim_runs_total",
		"Completed co-simulation runs by outcome.", obs.L("outcome", "canceled"))
)

// Config describes one co-simulation run on the POWER7+ case study.
type Config struct {
	// TotalFlowMLMin is the array total flow rate in ml/min (Table II
	// nominal: 676; the sensitivity case: 48).
	TotalFlowMLMin float64
	// InletTempC is the electrolyte inlet temperature in C (27 nominal,
	// 37 for the hot-inlet case).
	InletTempC float64
	// TerminalVoltage is the array operating voltage (V), 1.0 in the
	// case study.
	TerminalVoltage float64
	// MaxIter bounds the fixed-point loop (default 30).
	MaxIter int
	// TolK is the convergence tolerance on the effective cell
	// temperature (default 0.01 K).
	TolK float64
	// Relax is the under-relaxation factor in (0, 1] (default 0.7).
	Relax float64
	// ChipLoad scales the chip power map (1 = full load).
	ChipLoad float64
}

func (c Config) withDefaults() Config {
	if c.MaxIter == 0 {
		c.MaxIter = 30
	}
	if c.TolK == 0 {
		c.TolK = 0.01
	}
	if c.Relax == 0 {
		c.Relax = 0.7
	}
	if c.ChipLoad == 0 {
		c.ChipLoad = 1
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.TotalFlowMLMin <= 0 {
		return fmt.Errorf("cosim: nonpositive flow %g ml/min", c.TotalFlowMLMin)
	}
	if c.TerminalVoltage <= 0 {
		return fmt.Errorf("cosim: nonpositive terminal voltage %g", c.TerminalVoltage)
	}
	if c.InletTempC < 0 || c.InletTempC > 90 {
		return fmt.Errorf("cosim: inlet %g C outside the liquid operating window", c.InletTempC)
	}
	if c.Relax < 0 || c.Relax > 1 {
		return fmt.Errorf("cosim: relaxation %g out of (0,1]", c.Relax)
	}
	if c.ChipLoad < 0 {
		return fmt.Errorf("cosim: negative chip load %g", c.ChipLoad)
	}
	return nil
}

// IterRecord traces one fixed-point iteration.
type IterRecord struct {
	CellTempK float64 // electrochemistry temperature used this iteration
	Current   float64 // A at the terminal voltage
	Power     float64 // W delivered
	HeatW     float64 // electrochemical heat deposited in the coolant
	PeakTK    float64 // chip peak temperature
}

// Result is a converged co-simulation state.
type Result struct {
	Config     Config
	Iterations int
	Converged  bool
	// CellTempK is the converged effective electrolyte film temperature
	// driving the electrochemistry.
	CellTempK float64
	// Operating is the array's electrical operating point at the
	// terminal voltage and converged temperature.
	Operating flowcell.OperatingPoint
	// Thermal is the final thermal solution.
	Thermal *thermal.Solution
	// History traces the iterations.
	History []IterRecord
}

// effectiveCellTemp blends the wall and bulk coolant temperatures into
// the film temperature the electrode boundary layer sees.
func effectiveCellTemp(sol *thermal.Solution) float64 {
	return 0.5 * (sol.MeanFluidT + sol.MeanWallT)
}

// Run executes the fixed-point co-simulation.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: the context is checked at every
// outer fixed-point iteration (and threaded into the thermal solver), so
// a canceled context aborts the co-simulation within one outer
// iteration, returning the context's error.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	r, err := NewRunner(cfg.TotalFlowMLMin, cfg.InletTempC)
	if err != nil {
		cosimErrored.Inc()
		return nil, fmt.Errorf("cosim: thermal session: %w", err)
	}
	return r.RunContext(ctx, cfg)
}

// Runner caches the thermal session behind the co-simulation for one
// hydrodynamic condition (total flow, inlet temperature): the FV network
// is assembled and preconditioned exactly once, and every solve — across
// fixed-point iterations AND across consecutive RunContext calls — warm
// starts from the previous converged temperature field. Consecutive runs
// that differ only in ChipLoad or TerminalVoltage (the inner axes of
// sim.SweepSpec.Grid()'s row-major order) therefore skip both reassembly
// and most Krylov iterations. A Runner is not safe for concurrent use.
type Runner struct {
	flowMLMin, inletTempC float64
	base                  *thermal.Problem
	session               *thermal.Session
	scaled                *mesh.Field2D
	// lastTCell is the previous run's converged cell temperature (0 until
	// a run converges). Seeding the next run's fixed point from it — a
	// continuation in the sweep's inner axes — converges in a fraction of
	// the outer iterations a cold start from the inlet temperature needs,
	// and each outer iteration saved is one full thermal solve saved.
	lastTCell float64
}

// NewRunner assembles the thermal session for one (flow, inlet)
// condition.
func NewRunner(flowMLMin, inletTempC float64) (*Runner, error) {
	tp := thermal.Power7Problem(flowMLMin, units.CtoK(inletTempC), 0)
	session, err := thermal.NewSession(tp)
	if err != nil {
		return nil, err
	}
	return &Runner{
		flowMLMin:  flowMLMin,
		inletTempC: inletTempC,
		base:       tp,
		session:    session,
		scaled:     &mesh.Field2D{Grid: tp.Power.Grid, Data: make([]float64, len(tp.Power.Data))},
	}, nil
}

// Matches reports whether the runner's cached thermal session covers the
// given hydrodynamic condition. Sweep grids repeat exact float values
// along each axis, so exact comparison is the right test.
func (r *Runner) Matches(flowMLMin, inletTempC float64) bool {
	return r.flowMLMin == flowMLMin && r.inletTempC == inletTempC
}

// RunContext executes the fixed-point co-simulation on the cached
// session. The config's flow and inlet must match the runner's
// condition; ChipLoad scales the power map into a reused buffer.
func (r *Runner) RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if !r.Matches(cfg.TotalFlowMLMin, cfg.InletTempC) {
		return nil, fmt.Errorf("cosim: runner bound to %g ml/min, %g C cannot run %g ml/min, %g C",
			r.flowMLMin, r.inletTempC, cfg.TotalFlowMLMin, cfg.InletTempC)
	}
	power := r.base.Power
	if cfg.ChipLoad != 1 {
		for k, v := range r.base.Power.Data {
			r.scaled.Data[k] = v * cfg.ChipLoad
		}
		power = r.scaled
	}
	tCell := units.CtoK(cfg.InletTempC)
	if r.lastTCell != 0 {
		// Warm start the fixed point from the neighboring point's
		// converged state. The iteration is a contraction, so the seed
		// changes only how fast it converges, not where.
		tCell = r.lastTCell
	}
	res := &Result{Config: cfg}
	var heat float64
	for iter := 1; iter <= cfg.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			cosimCanceled.Inc()
			return nil, err
		}
		res.Iterations = iter
		cosimIterations.Inc()
		array := flowcell.Power7ArrayAt(cfg.TotalFlowMLMin, tCell)
		op, err := array.CurrentAtVoltage(cfg.TerminalVoltage)
		if err != nil {
			cosimErrored.Inc()
			return nil, fmt.Errorf("cosim: iteration %d (T=%.2f K): %w", iter, tCell, err)
		}
		heat, err = array.HeatDissipation(op)
		if err != nil {
			cosimErrored.Inc()
			return nil, err
		}
		sol, err := r.session.SolveContext(ctx, power, heat)
		if err != nil {
			if ctx.Err() != nil {
				cosimCanceled.Inc()
				return nil, ctx.Err()
			}
			cosimErrored.Inc()
			return nil, fmt.Errorf("cosim: thermal solve at iteration %d: %w", iter, err)
		}
		res.History = append(res.History, IterRecord{
			CellTempK: tCell,
			Current:   op.Current,
			Power:     op.Power,
			HeatW:     heat,
			PeakTK:    sol.PeakT,
		})
		res.Operating = op
		res.Thermal = sol
		tNew := effectiveCellTemp(sol)
		if math.Abs(tNew-tCell) < cfg.TolK {
			res.Converged = true
			res.CellTempK = tCell
			r.lastTCell = tCell
			cosimConverged.Inc()
			return res, nil
		}
		tCell += cfg.Relax * (tNew - tCell)
	}
	res.CellTempK = tCell
	cosimMaxIter.Inc()
	return res, fmt.Errorf("cosim: no convergence after %d iterations (last dT drive)", cfg.MaxIter)
}

// IsothermalReference computes the array operating point with the
// electrochemistry pinned at the inlet temperature (no thermal
// feedback) — the baseline against which the paper's 4% and 23% gains
// are measured.
func IsothermalReference(cfg Config) (flowcell.OperatingPoint, error) {
	if err := cfg.Validate(); err != nil {
		return flowcell.OperatingPoint{}, err
	}
	array := flowcell.Power7ArrayAt(cfg.TotalFlowMLMin, units.CtoK(cfg.InletTempC))
	return array.CurrentAtVoltage(cfg.TerminalVoltage)
}

// Gain compares a coupled run against an isothermal reference at the
// same hydrodynamic condition and returns the relative current and
// power gains from the thermal coupling.
type Gain struct {
	Coupled   *Result
	Reference flowcell.OperatingPoint
	// CurrentGain = I_coupled/I_ref - 1 at the fixed terminal voltage.
	CurrentGain float64
	// PowerGain = P_coupled/P_ref - 1.
	PowerGain float64
}

// CouplingGain runs the co-simulation and its isothermal reference and
// reports the thermal-coupling gain.
func CouplingGain(cfg Config) (*Gain, error) {
	coupled, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	ref, err := IsothermalReference(cfg)
	if err != nil {
		return nil, err
	}
	return &Gain{
		Coupled:     coupled,
		Reference:   ref,
		CurrentGain: coupled.Operating.Current/ref.Current - 1,
		PowerGain:   coupled.Operating.Power/ref.Power - 1,
	}, nil
}
