package cosim

import (
	"fmt"
	"math"

	"bright/internal/flowcell"
	"bright/internal/units"
)

// ChannelSpread quantifies the cross-array nonuniformity the equal-
// channel array model ignores (extension experiment E5): channels over
// core columns run warmer than channels over the cool L3 center, so at
// a shared terminal voltage their currents differ. The array model
// (and the paper) treats all 88 channels as identical; this analysis
// bounds the error of that assumption.
type ChannelSpread struct {
	// TempC holds each channel's film temperature (C).
	TempC []float64
	// CurrentA holds each channel's current at the terminal voltage.
	CurrentA []float64
	// MinA, MaxA, MeanA summarize the currents.
	MinA, MaxA, MeanA float64
	// SpreadPct = (MaxA - MinA) / MeanA * 100.
	SpreadPct float64
	// TotalA is the summed array current with per-channel temperatures.
	TotalA float64
	// UniformTotalA is the array current when every channel sees the
	// mean temperature (the equal-channel assumption).
	UniformTotalA float64
	// AssumptionErrPct = |TotalA - UniformTotalA| / UniformTotalA * 100.
	AssumptionErrPct float64
}

// PerChannelSpread runs the coupled thermal solution at the given
// condition and re-solves each channel's operating point at its own
// column film temperature.
func PerChannelSpread(cfg Config) (*ChannelSpread, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	// One thermal solve at the coupled state.
	coupled, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	sol := coupled.Thermal
	g := sol.Grid
	// Column film temperatures: the thermal grid defaults to one cell
	// per channel pitch across the die (88 columns).
	nx := g.NX()
	spread := &ChannelSpread{MinA: math.Inf(1), MaxA: math.Inf(-1)}
	var total float64
	for i := 0; i < nx; i++ {
		var tf, tw float64
		for j := 0; j < g.NY(); j++ {
			tf += sol.FluidT.At(i, j)
			tw += sol.WallT.At(i, j)
		}
		film := 0.5 * (tf + tw) / float64(g.NY())
		// A single-channel "array" at this column's temperature.
		one := flowcell.Power7ArrayAt(cfg.TotalFlowMLMin, film)
		one.NChannels = 1
		one.Cell.StreamFlowRate = flowcell.Power7Array().Cell.StreamFlowRate
		op, err := one.CurrentAtVoltage(cfg.TerminalVoltage)
		if err != nil {
			return nil, fmt.Errorf("cosim: channel %d at %.2f K: %w", i, film, err)
		}
		spread.TempC = append(spread.TempC, units.KtoC(film))
		spread.CurrentA = append(spread.CurrentA, op.Current)
		total += op.Current
		if op.Current < spread.MinA {
			spread.MinA = op.Current
		}
		if op.Current > spread.MaxA {
			spread.MaxA = op.Current
		}
	}
	spread.TotalA = total * 88 / float64(nx) // rescale if the grid is not 88 wide
	spread.MeanA = total / float64(nx)
	spread.SpreadPct = 100 * (spread.MaxA - spread.MinA) / spread.MeanA

	// Equal-channel reference at the global mean film temperature.
	uniform := flowcell.Power7ArrayAt(cfg.TotalFlowMLMin, effectiveCellTemp(sol))
	opU, err := uniform.CurrentAtVoltage(cfg.TerminalVoltage)
	if err != nil {
		return nil, err
	}
	spread.UniformTotalA = opU.Current
	spread.AssumptionErrPct = 100 * math.Abs(spread.TotalA-spread.UniformTotalA) / spread.UniformTotalA
	return spread, nil
}
