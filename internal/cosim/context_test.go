package cosim

import (
	"context"
	"errors"
	"testing"
	"time"
)

func nominal() Config {
	return Config{
		TotalFlowMLMin:  676,
		InletTempC:      27,
		TerminalVoltage: 1.0,
	}
}

func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, nominal())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled context: got %v, want context.Canceled", err)
	}
}

// TestRunContextCancelMidRun cancels a running co-simulation and asserts
// it aborts within one outer iteration: the cancellation must surface as
// context.Canceled well before the full multi-second run completes.
func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		res, err := RunContext(ctx, nominal())
		done <- outcome{res, err}
	}()
	// Let the run enter its first iteration, then pull the plug.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case out := <-done:
		if !errors.Is(out.err, context.Canceled) {
			t.Fatalf("canceled run returned %v, want context.Canceled", out.err)
		}
		// One outer iteration is a few hundred ms (array solve + thermal
		// solve); the full run is several of those. Aborting within one
		// iteration of the cancel keeps us far under the full runtime.
		if elapsed := time.Since(start); elapsed > 3*time.Second {
			t.Fatalf("cancellation took %v — not honored at iteration boundaries", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("co-simulation ignored cancellation")
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full co-simulation in -short mode")
	}
	cfg := nominal()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Operating.Current != b.Operating.Current || a.Iterations != b.Iterations {
		t.Fatalf("RunContext(Background) diverged from Run: %+v vs %+v", a.Operating, b.Operating)
	}
}
