package cosim

import "testing"

func TestPerChannelSpread(t *testing.T) {
	s, err := PerChannelSpread(nominalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.CurrentA) != 88 || len(s.TempC) != 88 {
		t.Fatalf("expected 88 channels, got %d", len(s.CurrentA))
	}
	// Channels over core columns run warmer and carry more current:
	// there must be a measurable spread, but a modest one.
	if s.SpreadPct < 0.5 || s.SpreadPct > 15 {
		t.Fatalf("channel current spread %.2f%% outside expectation", s.SpreadPct)
	}
	// The paper's (and our array model's) equal-channel assumption is
	// validated: totals agree within a fraction of a percent.
	if s.AssumptionErrPct > 0.5 {
		t.Fatalf("equal-channel assumption off by %.3f%%", s.AssumptionErrPct)
	}
	if s.MinA <= 0 || s.MaxA <= s.MinA || s.MeanA <= 0 {
		t.Fatalf("degenerate statistics: %+v", s)
	}
	// Total current consistent with the Fig. 7 coupled headline.
	if s.TotalA < 5.5 || s.TotalA > 7.5 {
		t.Fatalf("per-channel total %.2f A inconsistent", s.TotalA)
	}
	// Temperature range: warm but bounded.
	lo, hi := s.TempC[0], s.TempC[0]
	for _, v := range s.TempC {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo < 27 || hi > 40 || hi-lo < 0.5 {
		t.Fatalf("film temperature range %.1f..%.1f C implausible", lo, hi)
	}
}

func TestPerChannelSpreadValidation(t *testing.T) {
	if _, err := PerChannelSpread(Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
