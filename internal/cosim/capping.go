package cosim

import (
	"fmt"

	"bright/internal/floorplan"
	"bright/internal/mesh"
	"bright/internal/thermal"
	"bright/internal/units"
)

// ThermalCapResult is the output of the thermal-capping governor
// (extension E20): the largest chip load fraction sustainable at a
// given coolant condition without exceeding the junction limit — the
// power-management policy a runtime would run on this hardware.
type ThermalCapResult struct {
	// FlowMLMin, InletTempC describe the coolant condition.
	FlowMLMin, InletTempC float64
	// LimitC is the junction limit used.
	LimitC float64
	// MaxLoadFraction in [0, 1]: 1 means full load fits.
	MaxLoadFraction float64
	// PeakAtCapC is the peak at the capped load (~LimitC when capped).
	PeakAtCapC float64
	// SustainedPowerW is the chip power at the cap.
	SustainedPowerW float64
}

// ThermalCap bisects the chip load fraction to the junction limit at
// the given coolant condition.
func ThermalCap(flowMLMin, inletC, limitC float64) (*ThermalCapResult, error) {
	if flowMLMin <= 0 {
		return nil, fmt.Errorf("cosim: nonpositive flow %g", flowMLMin)
	}
	if limitC <= inletC {
		return nil, fmt.Errorf("cosim: limit %g C must exceed the inlet %g C", limitC, inletC)
	}
	f := floorplan.Power7()
	base := thermal.Power7Problem(flowMLMin, units.CtoK(inletC), 0)
	fullMap := f.Rasterize(base.Grid(), floorplan.Power7FullLoad())
	peakAt := func(load float64) (float64, float64, error) {
		p := thermal.Power7Problem(flowMLMin, units.CtoK(inletC), 0)
		scaled := mesh.NewField2D(p.Grid())
		for k, v := range fullMap.Data {
			scaled.Data[k] = v * load
		}
		p.Power = scaled
		sol, err := thermal.Solve(p)
		if err != nil {
			return 0, 0, err
		}
		return units.KtoC(sol.PeakT), sol.TotalPower, nil
	}
	peakFull, powerFull, err := peakAt(1)
	if err != nil {
		return nil, err
	}
	res := &ThermalCapResult{
		FlowMLMin: flowMLMin, InletTempC: inletC, LimitC: limitC,
	}
	if peakFull <= limitC {
		res.MaxLoadFraction = 1
		res.PeakAtCapC = peakFull
		res.SustainedPowerW = powerFull
		return res, nil
	}
	lo, hi := 0.0, 1.0
	var peakLo, powerLo float64
	for iter := 0; iter < 30 && hi-lo > 1e-3; iter++ {
		mid := 0.5 * (lo + hi)
		peak, power, err := peakAt(mid)
		if err != nil {
			return nil, err
		}
		if peak <= limitC {
			lo, peakLo, powerLo = mid, peak, power
		} else {
			hi = mid
		}
	}
	res.MaxLoadFraction = lo
	res.PeakAtCapC = peakLo
	res.SustainedPowerW = powerLo
	return res, nil
}
