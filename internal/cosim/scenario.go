package cosim

import (
	"fmt"
	"math"

	"bright/internal/floorplan"
	"bright/internal/flowcell"
	"bright/internal/mesh"
	"bright/internal/thermal"
	"bright/internal/units"
	"bright/internal/workload"
)

// ScenarioConfig drives a transient workload co-simulation: a
// utilization trace plays on the chip, the transient thermal model
// tracks the temperature trajectory, and the electrochemistry follows
// quasi-statically (its own time constants — boundary-layer transit,
// double-layer charging — are far below the thermal ones).
type ScenarioConfig struct {
	Trace *workload.Trace
	// TotalFlowMLMin, InletTempC, TerminalVoltage as in Config.
	TotalFlowMLMin, InletTempC, TerminalVoltage float64
	// Dt is the transient step (s); default period/40.
	Dt float64
	// Periods of the trace to simulate; default 2.
	Periods int
	// NX, NY override the thermal grid (defaults 44x32 for speed).
	NX, NY int
}

// Validate reports whether the scenario is well posed.
func (c *ScenarioConfig) Validate() error {
	if c.Trace == nil {
		return fmt.Errorf("cosim: nil trace")
	}
	if err := c.Trace.Validate(); err != nil {
		return err
	}
	if c.TotalFlowMLMin <= 0 || c.TerminalVoltage <= 0 {
		return fmt.Errorf("cosim: nonpositive flow/voltage")
	}
	if c.InletTempC < 0 || c.InletTempC > 90 {
		return fmt.Errorf("cosim: inlet %g C outside window", c.InletTempC)
	}
	if c.Dt < 0 || c.Periods < 0 {
		return fmt.Errorf("cosim: negative stepping")
	}
	return nil
}

// ScenarioSample is one time sample of a scenario run.
type ScenarioSample struct {
	TimeS      float64
	ChipPowerW float64
	PeakTC     float64
	FilmTC     float64 // electrolyte film temperature
	ArrayA     float64 // array current at the terminal voltage
	ArrayW     float64
}

// ScenarioResult is a completed workload run.
type ScenarioResult struct {
	Samples []ScenarioSample
	// MaxPeakC over the run.
	MaxPeakC float64
	// ArrayMinA, ArrayMaxA bound the array output over the run.
	ArrayMinA, ArrayMaxA float64
	// EnergyDeliveredWh integrates the array output.
	EnergyDeliveredWh float64
	// MeanChipPowerW over the run.
	MeanChipPowerW float64
}

// RunWorkload executes the scenario.
func RunWorkload(cfg ScenarioConfig) (*ScenarioResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Periods == 0 {
		cfg.Periods = 2
	}
	period := cfg.Trace.TotalDuration()
	if cfg.Dt == 0 {
		cfg.Dt = period / 40
	}
	steps := int(math.Ceil(period * float64(cfg.Periods) / cfg.Dt))
	if steps < 2 {
		return nil, fmt.Errorf("cosim: scenario too short (%d steps)", steps)
	}
	nx, ny := cfg.NX, cfg.NY
	if nx == 0 {
		nx = 44
	}
	if ny == 0 {
		ny = 32
	}
	f := floorplan.Power7()
	inletK := units.CtoK(cfg.InletTempC)
	spec := thermal.Power7ChannelSpec(units.MLPerMinToM3PerS(cfg.TotalFlowMLMin), inletK, thermal.VanadiumCoolant())
	p := &thermal.Problem{
		DieWidth:  f.Width,
		DieHeight: f.Height,
		Stack:     thermal.Power7Stack(spec),
		NX:        nx, NY: ny,
	}
	pm := workload.Power7PowerModel()
	grid := p.Grid()
	// Pre-rasterize one field per distinct phase (the trace is
	// piecewise constant).
	fields := make([]*mesh.Field2D, len(cfg.Trace.Phases))
	for k, ph := range cfg.Trace.Phases {
		fields[k] = pm.DensityField(f, grid, ph.Util)
	}
	p.Power = fields[cfg.Trace.PhaseIndexAt(0)]
	tr, err := thermal.SolveSchedule(p, inletK, cfg.Dt, steps, func(step int, time float64) *mesh.Field2D {
		return fields[cfg.Trace.PhaseIndexAt(time-cfg.Dt/2)] // power during the step
	})
	if err != nil {
		return nil, err
	}
	res := &ScenarioResult{ArrayMinA: math.Inf(1), ArrayMaxA: math.Inf(-1)}
	var energyJ, chipPowerSum float64
	for k := range tr.Times {
		film := 0.5 * (tr.MeanFluidT[k] + tr.MeanWallT[k])
		array := flowcell.Power7ArrayAt(cfg.TotalFlowMLMin, film)
		op, err := array.CurrentAtVoltage(cfg.TerminalVoltage)
		if err != nil {
			return nil, fmt.Errorf("cosim: scenario sample %d (T=%.2f K): %w", k, film, err)
		}
		s := ScenarioSample{
			TimeS:      tr.Times[k],
			ChipPowerW: tr.TotalPowerW[k],
			PeakTC:     units.KtoC(tr.PeakT[k]),
			FilmTC:     units.KtoC(film),
			ArrayA:     op.Current,
			ArrayW:     op.Power,
		}
		res.Samples = append(res.Samples, s)
		if s.PeakTC > res.MaxPeakC {
			res.MaxPeakC = s.PeakTC
		}
		if s.ArrayA < res.ArrayMinA {
			res.ArrayMinA = s.ArrayA
		}
		if s.ArrayA > res.ArrayMaxA {
			res.ArrayMaxA = s.ArrayA
		}
		energyJ += s.ArrayW * cfg.Dt
		chipPowerSum += s.ChipPowerW
	}
	res.EnergyDeliveredWh = energyJ / 3600
	res.MeanChipPowerW = chipPowerSum / float64(len(res.Samples))
	return res, nil
}
