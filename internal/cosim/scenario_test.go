package cosim

import (
	"math"
	"testing"

	"bright/internal/floorplan"
	"bright/internal/workload"
)

func burstScenario() ScenarioConfig {
	return ScenarioConfig{
		Trace:           workload.Burst(0.4, 0.5),
		TotalFlowMLMin:  676,
		InletTempC:      27,
		TerminalVoltage: 1.0,
		Periods:         2,
	}
}

func TestWorkloadBurstScenario(t *testing.T) {
	res, err := RunWorkload(burstScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 40 {
		t.Fatalf("too few samples: %d", len(res.Samples))
	}
	// Peak temperature stays within the steady full-load envelope: a
	// 50% duty burst cannot exceed the steady Fig. 9 peak.
	if res.MaxPeakC < 30 || res.MaxPeakC > 40 {
		t.Fatalf("burst max peak %.1f C outside envelope", res.MaxPeakC)
	}
	// Energy-proportional response: the array output breathes with the
	// workload through the temperature coupling.
	if res.ArrayMaxA <= res.ArrayMinA {
		t.Fatal("array current did not vary over the workload")
	}
	swing := (res.ArrayMaxA - res.ArrayMinA) / res.ArrayMinA
	if swing < 0.005 || swing > 0.2 {
		t.Fatalf("array swing %.2f%% outside expectation", 100*swing)
	}
	// Chip power alternates between idle and full.
	var sawFull, sawIdle bool
	for _, s := range res.Samples {
		if s.ChipPowerW > 55 {
			sawFull = true
		}
		if s.ChipPowerW < 25 {
			sawIdle = true
		}
	}
	if !sawFull || !sawIdle {
		t.Fatalf("burst phases not realized (full=%v idle=%v)", sawFull, sawIdle)
	}
	// Mean chip power at 50% duty between the endpoints.
	if res.MeanChipPowerW < 30 || res.MeanChipPowerW > 50 {
		t.Fatalf("mean chip power %.1f W inconsistent with 50%% duty", res.MeanChipPowerW)
	}
	if res.EnergyDeliveredWh <= 0 {
		t.Fatal("no energy delivered")
	}
}

func TestWorkloadMigrationKeepsPeakDown(t *testing.T) {
	// Core migration at 1/8 background spreads one core's heat around:
	// the peak must stay far below the all-cores-on steady peak.
	res, err := RunWorkload(ScenarioConfig{
		Trace:           workload.CoreMigration(floorplan.Power7(), 0.05, 0.2),
		TotalFlowMLMin:  676,
		InletTempC:      27,
		TerminalVoltage: 1.0,
		Periods:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxPeakC > 36 {
		t.Fatalf("migration peak %.1f C too hot (one core at a time)", res.MaxPeakC)
	}
	if res.MaxPeakC < 28 {
		t.Fatalf("migration peak %.1f C suspiciously cold", res.MaxPeakC)
	}
}

func TestScenarioValidation(t *testing.T) {
	cfg := burstScenario()
	cfg.Trace = nil
	if _, err := RunWorkload(cfg); err == nil {
		t.Fatal("nil trace accepted")
	}
	cfg = burstScenario()
	cfg.TotalFlowMLMin = 0
	if _, err := RunWorkload(cfg); err == nil {
		t.Fatal("zero flow accepted")
	}
	cfg = burstScenario()
	cfg.Dt = -1
	if _, err := RunWorkload(cfg); err == nil {
		t.Fatal("negative dt accepted")
	}
	cfg = burstScenario()
	cfg.InletTempC = 95
	if _, err := RunWorkload(cfg); err == nil {
		t.Fatal("hot inlet accepted")
	}
}

func TestScenarioDeterministic(t *testing.T) {
	a, err := RunWorkload(burstScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkload(burstScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("nondeterministic sample count")
	}
	for k := range a.Samples {
		if math.Abs(a.Samples[k].ArrayA-b.Samples[k].ArrayA) > 1e-12 {
			t.Fatalf("nondeterministic at sample %d", k)
		}
	}
}
