package cosim

import (
	"math"
	"testing"

	"bright/internal/units"
)

func nominalConfig() Config {
	return Config{TotalFlowMLMin: 676, InletTempC: 27, TerminalVoltage: 1.0}
}

func TestNominalCouplingGainWithinPaperBound(t *testing.T) {
	// Section III-B: at the Table II flow rate the polarization curve
	// shows at most a 4% current increase at fixed potential from the
	// chip's heat. Our coupled model must land in (0, 5%].
	g, err := CouplingGain(nominalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !g.Coupled.Converged {
		t.Fatal("co-simulation did not converge")
	}
	if g.CurrentGain <= 0 {
		t.Fatalf("coupling gain %.3f%% must be positive", 100*g.CurrentGain)
	}
	if g.CurrentGain > 0.05 {
		t.Fatalf("coupling gain %.1f%% exceeds the paper's <=4%% claim band", 100*g.CurrentGain)
	}
}

func TestLowFlowGainReproduces23Percent(t *testing.T) {
	// Section III-B: reducing the flow to 48 ml/min heats the
	// electrolyte enough to raise generated power by up to 23%.
	g, err := CouplingGain(Config{TotalFlowMLMin: 48, InletTempC: 27, TerminalVoltage: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if g.PowerGain < 0.12 || g.PowerGain > 0.32 {
		t.Fatalf("low-flow power gain %.1f%% outside the paper's ~23%% band", 100*g.PowerGain)
	}
	// The electrolyte must have warmed substantially.
	if g.Coupled.CellTempK-units.CtoK(27) < 5 {
		t.Fatalf("cell temperature rise %.2f K too small to matter",
			g.Coupled.CellTempK-units.CtoK(27))
	}
}

func TestHotInletRaisesPowerVsNominal(t *testing.T) {
	// The 37 C inlet case: more power than the nominal 27 C condition
	// at the same flow and voltage.
	hot, err := Run(Config{TotalFlowMLMin: 676, InletTempC: 37, TerminalVoltage: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	nom, err := Run(nominalConfig())
	if err != nil {
		t.Fatal(err)
	}
	gain := hot.Operating.Power/nom.Operating.Power - 1
	if gain < 0.08 || gain > 0.30 {
		t.Fatalf("hot-inlet gain %.1f%% outside expected band", 100*gain)
	}
}

func TestConvergenceAndHistory(t *testing.T) {
	res, err := Run(nominalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations < 2 {
		t.Fatalf("expected a converged multi-iteration run, got %d iters", res.Iterations)
	}
	if len(res.History) != res.Iterations {
		t.Fatalf("history length %d != iterations %d", len(res.History), res.Iterations)
	}
	// Cell temperature trajectory is monotone (under-relaxed approach
	// from the cold start).
	for k := 1; k < len(res.History); k++ {
		if res.History[k].CellTempK < res.History[k-1].CellTempK-1e-9 {
			t.Fatalf("non-monotone temperature approach at iteration %d", k)
		}
	}
	// Converged temperature sits between inlet and peak chip temp.
	if res.CellTempK <= units.CtoK(27) || res.CellTempK >= res.Thermal.PeakT {
		t.Fatalf("cell temperature %.2f K outside physical bracket", res.CellTempK)
	}
}

func TestThermalStateConsistent(t *testing.T) {
	res, err := Run(nominalConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The final thermal solve already includes the array's heat:
	// peak must stay in the Fig. 9 band.
	peakC := units.KtoC(res.Thermal.PeakT)
	if peakC < 36 || peakC > 44 {
		t.Fatalf("coupled peak %.1f C outside Fig. 9 band", peakC)
	}
	// Array heat is a few watts at 1.0 V / ~6 A.
	last := res.History[len(res.History)-1]
	if last.HeatW < 2 || last.HeatW > 7 {
		t.Fatalf("array heat %.2f W implausible", last.HeatW)
	}
}

func TestIsothermalReferenceMatchesArrayModel(t *testing.T) {
	cfg := nominalConfig()
	ref, err := IsothermalReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ~6 A at 1 V (the Fig. 7 headline).
	if math.Abs(ref.Current-6.0) > 0.9 {
		t.Fatalf("isothermal reference %.2f A far from 6 A", ref.Current)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{TotalFlowMLMin: 0, InletTempC: 27, TerminalVoltage: 1},
		{TotalFlowMLMin: 676, InletTempC: 27, TerminalVoltage: 0},
		{TotalFlowMLMin: 676, InletTempC: 95, TerminalVoltage: 1},
		{TotalFlowMLMin: 676, InletTempC: 27, TerminalVoltage: 1, Relax: 1.5},
		{TotalFlowMLMin: 676, InletTempC: 27, TerminalVoltage: 1, ChipLoad: -1},
	}
	for k, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", k)
		}
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: Run accepted invalid config", k)
		}
		if _, err := IsothermalReference(cfg); err == nil {
			t.Errorf("case %d: IsothermalReference accepted invalid config", k)
		}
	}
}

func TestReducedChipLoadReducesCoupling(t *testing.T) {
	// At idle chip load the coolant barely warms, so the coupling gain
	// shrinks towards zero.
	full, err := CouplingGain(nominalConfig())
	if err != nil {
		t.Fatal(err)
	}
	idleCfg := nominalConfig()
	idleCfg.ChipLoad = 0.1
	idle, err := CouplingGain(idleCfg)
	if err != nil {
		t.Fatal(err)
	}
	if idle.CurrentGain >= full.CurrentGain {
		t.Fatalf("idle gain %.2f%% should be below full-load gain %.2f%%",
			100*idle.CurrentGain, 100*full.CurrentGain)
	}
	if idle.CurrentGain < 0 {
		t.Fatalf("idle gain %.2f%% negative", 100*idle.CurrentGain)
	}
}
