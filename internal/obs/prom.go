package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeSeries emits one sample line: name{labels,extra} value.
func writeSeries(w io.Writer, name, labels, extra, value string) error {
	sep := ""
	if labels != "" && extra != "" {
		sep = ","
	}
	if labels == "" && extra == "" {
		_, err := fmt.Fprintf(w, "%s %s\n", name, value)
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s%s%s} %s\n", name, labels, sep, extra, value)
	return err
}

// WritePrometheus renders every family in registration order in the
// Prometheus text exposition format (version 0.0.4). A write error
// (typically a scraper that hung up) aborts the rendering instead of
// formatting the remaining families into a dead buffer.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range r.order {
		if f.help != "" {
			if _, err := fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.order {
			if err := writeSample(bw, f, s); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// writeSample renders one series (every exposition line it produces).
func writeSample(bw io.Writer, f *family, s *series) error {
	switch {
	case s.counter != nil:
		return writeSeries(bw, f.name, s.labels, "", strconv.FormatUint(s.counter.Value(), 10))
	case s.counterFn != nil:
		return writeSeries(bw, f.name, s.labels, "", strconv.FormatUint(s.counterFn(), 10))
	case s.gauge != nil:
		return writeSeries(bw, f.name, s.labels, "", formatFloat(s.gauge.Value()))
	case s.gaugeFn != nil:
		return writeSeries(bw, f.name, s.labels, "", formatFloat(s.gaugeFn()))
	case s.hist != nil:
		counts, sum, total := s.hist.snapshot()
		var cum uint64
		for i, b := range s.hist.bounds {
			cum += counts[i]
			if err := writeSeries(bw, f.name+"_bucket", s.labels,
				`le="`+formatFloat(b)+`"`, strconv.FormatUint(cum, 10)); err != nil {
				return err
			}
		}
		if err := writeSeries(bw, f.name+"_bucket", s.labels, `le="+Inf"`, strconv.FormatUint(total, 10)); err != nil {
			return err
		}
		if err := writeSeries(bw, f.name+"_sum", s.labels, "", formatFloat(sum)); err != nil {
			return err
		}
		return writeSeries(bw, f.name+"_count", s.labels, "", strconv.FormatUint(total, 10))
	}
	return nil
}

// Handler serves the given registries concatenated as one Prometheus
// scrape. Duplicate registry pointers are rendered once, so
// Handler(engineReg, Default) stays correct when both are the same.
func Handler(regs ...*Registry) http.Handler {
	uniq := make([]*Registry, 0, len(regs))
	seen := make(map[*Registry]bool, len(regs))
	for _, r := range regs {
		if r == nil || seen[r] {
			continue
		}
		seen[r] = true
		uniq = append(uniq, r)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		for _, r := range uniq {
			if err := r.WritePrometheus(w); err != nil {
				return // client went away; nothing sensible to do
			}
		}
	})
}
