// Package obs is the dependency-free observability layer: atomic
// counters, gauges and fixed-bucket histograms collected into named
// registries and exported in the Prometheus text exposition format.
// It exists so the serving path (internal/sim, cmd/brightd) and the
// numeric core (internal/num, internal/cosim, internal/thermal) can
// publish solver telemetry — solve latencies, queue pressure, Krylov
// iteration counts, fixed-point convergence outcomes — without pulling
// a metrics dependency into a stdlib-only repository.
//
// Concurrency: all metric mutators (Inc, Add, Set, Observe) are
// lock-free atomics and safe for concurrent use; registration and
// exposition serialize on the registry mutex. Instruments are cheap
// enough for per-solve granularity, but not intended for per-element
// inner loops.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// atomicFloat is a float64 with atomic add/load, stored as IEEE bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n events.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (queue depth, utilization).
type Gauge struct {
	v atomicFloat
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add shifts the gauge by d (negative to decrease).
func (g *Gauge) Add(d float64) { g.v.Add(d) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram is a fixed-bucket latency/size distribution: cumulative
// bucket counts in the Prometheus style (bucket i counts observations
// <= Bounds[i], plus an implicit +Inf bucket), a running sum and a
// total count. Bounds are set at registration and never change.
type Histogram struct {
	bounds []float64       // sorted upper bounds, +Inf excluded
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomicFloat
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len => +Inf
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// Bounds returns the finite bucket upper bounds (shared slice; do not
// mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// snapshot returns per-bucket (non-cumulative) counts, the sum and the
// total. The buckets are read without a global lock, so under
// concurrent Observe the snapshot is approximate — fine for exposition.
func (h *Histogram) snapshot() (counts []uint64, sum float64, total uint64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.sum.Load(), h.count.Load()
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket containing the target rank, the same
// estimate Prometheus' histogram_quantile gives. Observations in the
// +Inf bucket clamp to the largest finite bound. Returns 0 when the
// histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	counts, _, total := h.snapshot()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(h.bounds) { // +Inf bucket
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and growing by factor: start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DefLatencyBuckets spans 500 µs to ~16 s — the range from a cached
// thermal re-solve to a cold full-grid co-simulation.
var DefLatencyBuckets = ExpBuckets(0.0005, 2, 16)
