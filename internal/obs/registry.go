package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (family, label set) time series. Exactly one of the
// value fields is set, matching the family type; the Fn variants are
// callback-backed (sampled at exposition time).
type series struct {
	labels    string // canonical rendered label pairs, "" when unlabeled
	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// family groups every series sharing one metric name: Prometheus
// requires a single HELP/TYPE per name.
type family struct {
	name    string
	help    string
	typ     metricType
	order   []*series
	byLabel map[string]*series
}

// Registry is an ordered collection of metric families. Registration is
// idempotent: asking for an existing (name, labels) series returns the
// same instrument, so package-level `var x = obs.Default.Counter(...)`
// and repeated construction in tests are both safe. Registering the
// same name with a different type, or a (name, labels) series with a
// different kind of backing (value vs callback), panics — that is a
// programming error, not a runtime condition.
type Registry struct {
	mu     sync.Mutex
	order  []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Default is the process-wide registry. Library packages (num, cosim,
// thermal) publish here; per-engine serving metrics live in the
// engine's own registry, and brightd's /metrics renders both.
var Default = NewRegistry()

// renderLabels canonicalizes a label set: sorted by name, escaped,
// rendered as `a="b",c="d"`.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteString(`"`)
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// fam returns (creating if needed) the family for name, enforcing type
// consistency.
func (r *Registry) fam(name, help string, typ metricType) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byLabel: make(map[string]*series)}
		r.byName[name] = f
		r.order = append(r.order, f)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, typ, f.typ))
	}
	return f
}

// ser returns (creating via mk if needed) the series for the rendered
// label set within f.
func (f *family) ser(labels []Label, mk func() *series) *series {
	key := renderLabels(labels)
	if s, ok := f.byLabel[key]; ok {
		return s
	}
	s := mk()
	s.labels = key
	f.byLabel[key] = s
	f.order = append(f.order, s)
	return s
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.fam(name, help, counterType).ser(labels, func() *series {
		return &series{counter: &Counter{}}
	})
	if s.counter == nil {
		panic(fmt.Sprintf("obs: counter series %q{%s} is callback-backed", name, renderLabels(labels)))
	}
	return s.counter
}

// CounterFunc registers a callback-backed counter series: fn is sampled
// at exposition time and must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fam(name, help, counterType).ser(labels, func() *series {
		return &series{counterFn: fn}
	})
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.fam(name, help, gaugeType).ser(labels, func() *series {
		return &series{gauge: &Gauge{}}
	})
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: gauge series %q{%s} is callback-backed", name, renderLabels(labels)))
	}
	return s.gauge
}

// GaugeFunc registers a callback-backed gauge series, sampled at
// exposition time (queue depth, pool occupancy, cache size).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fam(name, help, gaugeType).ser(labels, func() *series {
		return &series{gaugeFn: fn}
	})
}

// Histogram registers (or returns the existing) histogram series with
// the given finite bucket upper bounds (a +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.fam(name, help, histogramType).ser(labels, func() *series {
		return &series{hist: newHistogram(buckets)}
	})
	return s.hist
}
