package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(3.5)
	g.Add(-1.25)
	if g.Value() != 2.25 {
		t.Fatalf("gauge = %g, want 2.25", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	counts, sum, total := h.snapshot()
	// 0.5 and 1 land in le=1 (bounds are inclusive), 5 in le=10,
	// 50 in le=100, 500 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, counts[i], w, counts)
		}
	}
	if total != 5 {
		t.Fatalf("count = %d, want 5", total)
	}
	if math.Abs(sum-556.5) > 1e-12 {
		t.Fatalf("sum = %g, want 556.5", sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	// 100 observations uniform in (0, 4]: 25 per bucket in le=1..le=4.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	if q := h.Quantile(0.5); math.Abs(q-2) > 0.25 {
		t.Fatalf("p50 = %g, want ~2", q)
	}
	if q := h.Quantile(1); q != 4 {
		t.Fatalf("p100 = %g, want 4", q)
	}
	// Values beyond the last finite bound clamp to it.
	h2 := newHistogram([]float64{1})
	h2.Observe(1000)
	if q := h2.Quantile(0.99); q != 1 {
		t.Fatalf("+Inf-bucket quantile = %g, want clamp to 1", q)
	}
	var empty Histogram
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-15 {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("k", "v"))
	b := r.Counter("x_total", "help", L("k", "v"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	other := r.Counter("x_total", "help", L("k", "w"))
	if other == a {
		t.Fatal("distinct label values shared a series")
	}
	h1 := r.Histogram("h", "", []float64{1, 2})
	h2 := r.Histogram("h", "", []float64{1, 2})
	if h1 != h2 {
		t.Fatal("histogram re-registration returned a new instance")
	}
}

func TestRegistryLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("y_total", "", L("a", "1"), L("b", "2"))
	b := r.Counter("y_total", "", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatal("label order changed series identity")
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("z_total", "")
}

// TestConcurrentUse exercises registration, mutation and exposition
// concurrently; run under -race this is the registry's thread-safety
// proof.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "")
	h := r.Histogram("lat_seconds", "", DefLatencyBuckets)
	var depth Gauge
	r.GaugeFunc("depth", "", depth.Value)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-4)
				depth.Add(1)
				depth.Add(-1)
				// Concurrent idempotent re-registration.
				r.Counter("events_total", "")
				r.Counter("per_goroutine_total", "", L("g", string(rune('a'+g))))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := r.WritePrometheus(discard{}); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
