package obs

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// parseExposition reads Prometheus text format into sample -> value,
// keyed by the full series string (name plus rendered labels).
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return samples
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("req_total", "Requests served.", L("code", "200"))
	c.Add(7)
	g := r.Gauge("queue_depth", "Jobs waiting.")
	g.Set(3)
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	for _, want := range []string{
		"# HELP req_total Requests served.",
		"# TYPE req_total counter",
		"# TYPE queue_depth gauge",
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	samples := parseExposition(t, text)
	checks := map[string]float64{
		`req_total{code="200"}`:         7,
		`queue_depth`:                   3,
		`lat_seconds_bucket{le="0.1"}`:  1,
		`lat_seconds_bucket{le="1"}`:    2, // cumulative
		`lat_seconds_bucket{le="+Inf"}`: 3,
		`lat_seconds_count`:             3,
		`lat_seconds_sum`:               5.55,
	}
	for k, want := range checks {
		got, ok := samples[k]
		if !ok {
			t.Fatalf("missing sample %q in:\n%s", k, text)
		}
		if got != want {
			t.Fatalf("%s = %g, want %g", k, got, want)
		}
	}
}

func TestLabeledHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "", []float64{1}, L("op", "solve"))
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, b.String())
	if samples[`d_seconds_bucket{op="solve",le="1"}`] != 1 {
		t.Fatalf("labeled bucket missing:\n%s", b.String())
	}
	if samples[`d_seconds_count{op="solve"}`] != 1 {
		t.Fatalf("labeled count missing:\n%s", b.String())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("path", `a\b`+"\n"))
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\\b\n"`) {
		t.Fatalf("label value not escaped:\n%q", b.String())
	}
}

func TestCallbackSeries(t *testing.T) {
	r := NewRegistry()
	n := uint64(0)
	r.CounterFunc("cb_total", "", func() uint64 { return n })
	depth := 0
	r.GaugeFunc("cb_depth", "", func() float64 { return float64(depth) })
	n, depth = 42, 7
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, b.String())
	if samples["cb_total"] != 42 || samples["cb_depth"] != 7 {
		t.Fatalf("callback series sampled wrong: %v", samples)
	}
}

func TestHandlerMergesAndDedupes(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("a_total", "").Inc()
	r2 := NewRegistry()
	r2.Counter("b_total", "").Add(2)

	// r1 passed twice must render once.
	srv := httptest.NewServer(Handler(r1, r2, r1, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type %q, want %q", ct, ContentType)
	}
	var b strings.Builder
	if _, err := fmt.Fprint(&b, readAll(t, resp.Body)); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if strings.Count(text, "# TYPE a_total counter") != 1 {
		t.Fatalf("duplicate registry rendered twice:\n%s", text)
	}
	samples := parseExposition(t, text)
	if samples["a_total"] != 1 || samples["b_total"] != 2 {
		t.Fatalf("merged scrape wrong: %v", samples)
	}
}

func readAll(t *testing.T, r interface{ Read([]byte) (int, error) }) string {
	t.Helper()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			return b.String()
		}
	}
}
