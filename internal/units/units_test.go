package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
		t.Errorf("%s: got %g want %g (tol %g)", msg, got, want, tol)
	}
}

func TestConstants(t *testing.T) {
	approx(t, GasConstant, 8.314, 1e-3, "R")
	approx(t, Faraday, 96485, 1e-4, "F")
	approx(t, StandardTemperature, 298.15, 1e-9, "T0")
	// RT/F at 25 C is the familiar 25.69 mV thermal voltage.
	approx(t, GasConstant*StandardTemperature/Faraday, 0.025693, 1e-4, "RT/F")
}

func TestTemperatureConversion(t *testing.T) {
	approx(t, CtoK(0), 273.15, 1e-12, "0C")
	approx(t, CtoK(27), 300.15, 1e-12, "27C")
	approx(t, KtoC(300), 26.85, 1e-12, "300K")
	// Paper Table II quotes the inlet as 300 K (27 C): the table rounds.
	if math.Abs(CtoK(27)-300.0) > 0.2 {
		t.Errorf("paper inlet temperature sanity check failed")
	}
}

func TestTemperatureRoundTrip(t *testing.T) {
	f := func(c float64) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		return math.Abs(KtoC(CtoK(c))-c) < 1e-9*math.Max(1, math.Abs(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlowRateConversion(t *testing.T) {
	// 300 uL/min = 5e-9 m3/s.
	approx(t, ULPerMinToM3PerS(300), 5e-9, 1e-12, "300 uL/min")
	// 676 ml/min (Table II total flow) = 1.1267e-5 m3/s.
	approx(t, MLPerMinToM3PerS(676), 1.12667e-5, 1e-4, "676 ml/min")
	// Round trips.
	approx(t, M3PerSToMLPerMin(MLPerMinToM3PerS(48)), 48, 1e-12, "ml/min round trip")
	approx(t, M3PerSToULPerMin(ULPerMinToM3PerS(2.5)), 2.5, 1e-12, "uL/min round trip")
	// 1 ml/min is 1000 uL/min.
	approx(t, MLPerMinToM3PerS(1), ULPerMinToM3PerS(1000), 1e-15, "ml vs uL")
}

func TestPressureConversion(t *testing.T) {
	approx(t, PaToBar(1e5), 1, 1e-12, "1 bar")
	approx(t, BarToPa(1.5), 1.5e5, 1e-12, "1.5 bar")
	approx(t, PaToBar(BarToPa(3.3)), 3.3, 1e-12, "bar round trip")
}

func TestCurrentDensityConversion(t *testing.T) {
	// 1 A/m2 == 0.1 mA/cm2; 50 mA/cm2 (Fig. 3 axis max) == 500 A/m2.
	approx(t, APerM2ToMAPerCM2(1), 0.1, 1e-12, "A/m2 -> mA/cm2")
	approx(t, MAPerCM2ToAPerM2(50), 500, 1e-12, "mA/cm2 -> A/m2")
	approx(t, MAPerCM2ToAPerM2(APerM2ToMAPerCM2(777)), 777, 1e-12, "round trip")
}

func TestLengthConversion(t *testing.T) {
	// Paper Table II: 200 um channel width, 22 mm channel length.
	approx(t, UMToM(200), 200e-6, 1e-12, "200um -> m")
	approx(t, MToUM(200e-6), 200, 1e-12, "m -> 200um")
	approx(t, MMToM(22), 22e-3, 1e-12, "22mm -> m")
	approx(t, MToMM(22e-3), 22, 1e-12, "m -> 22mm")

	// Quick-check round trips: the helpers must be exact inverses to
	// within floating-point roundoff over physically plausible scales.
	roundTrip := func(to, from func(float64) float64, name string) {
		f := func(v float64) bool {
			v = math.Mod(math.Abs(v), 1e6) // keep magnitudes physical
			got := from(to(v))
			return math.Abs(got-v) <= 1e-9*math.Max(1, math.Abs(v))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s round trip: %v", name, err)
		}
	}
	roundTrip(MToUM, UMToM, "m<->um")
	roundTrip(MToMM, MMToM, "m<->mm")
	roundTrip(CtoK, KtoC, "C<->K")
	roundTrip(PaToBar, BarToPa, "Pa<->bar")
}

func TestPowerDensityConversion(t *testing.T) {
	// 26.7 W/cm2 (POWER7+ peak) == 2.67e5 W/m2.
	approx(t, WPerCM2ToWPerM2(26.7), 2.67e5, 1e-12, "W/cm2 -> W/m2")
	approx(t, WPerM2ToWPerCM2(WPerCM2ToWPerM2(0.77)), 0.77, 1e-12, "round trip")
}

func TestFormatSI(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{2.53e-3, "Pa.s", "mPa.s"},
		{1.5e5, "Pa", "kPa"},
		{0, "W", "0 W"},
		{4.4, "W", "4.400 W"},
		{2e-7, "m", "nm"}, // 200.000 nm
	}
	for _, c := range cases {
		got := FormatSI(c.v, c.unit)
		if !strings.Contains(got, c.want) {
			t.Errorf("FormatSI(%g,%q) = %q, want substring %q", c.v, c.unit, got, c.want)
		}
	}
	if got := FormatSI(-3.3e5, "Pa"); !strings.Contains(got, "-330.000 kPa") {
		t.Errorf("negative FormatSI = %q", got)
	}
}
