// Package units provides physical constants, unit conversions and
// formatting helpers shared by every physics package in the repository.
//
// All internal computation uses SI base units (m, kg, s, K, A, mol, V, W,
// Pa). The conversion helpers exist so that package boundaries and user
// facing configuration can speak the units the paper uses (uL/min, ml/min,
// bar, degrees Celsius, mA/cm2, W/cm2) without ad-hoc factors scattered
// through the code.
package units

import "fmt"

// Fundamental physical constants (CODATA values, SI units).
const (
	// GasConstant is the universal gas constant R in J/(mol*K).
	GasConstant = 8.314462618
	// Faraday is the Faraday constant F in C/mol.
	Faraday = 96485.33212
	// ZeroCelsius is 0 degrees Celsius expressed in kelvin.
	ZeroCelsius = 273.15
	// StandardTemperature is the electrochemical standard temperature
	// (25 C) in kelvin.
	StandardTemperature = 298.15
	// AtmosphericPressure is one standard atmosphere in Pa.
	AtmosphericPressure = 101325.0
	// Bar is one bar in Pa.
	Bar = 1e5
)

// Length conversions.
const (
	Millimeter = 1e-3 // m
	Micrometer = 1e-6 // m
	Centimeter = 1e-2 // m
)

// Area conversions.
const (
	SquareCentimeter = 1e-4 // m2
	SquareMillimeter = 1e-6 // m2
)

// MToUM converts a length in meters to micrometers (the unit the
// paper's channel-geometry tables use).
func MToUM(m float64) float64 { return m / Micrometer }

// UMToM converts a length in micrometers to meters.
func UMToM(um float64) float64 { return um * Micrometer }

// MToMM converts a length in meters to millimeters.
func MToMM(m float64) float64 { return m / Millimeter }

// MMToM converts a length in millimeters to meters.
func MMToM(mm float64) float64 { return mm * Millimeter }

// CtoK converts a temperature in degrees Celsius to kelvin.
func CtoK(c float64) float64 { return c + ZeroCelsius }

// KtoC converts a temperature in kelvin to degrees Celsius.
func KtoC(k float64) float64 { return k - ZeroCelsius }

// ULPerMinToM3PerS converts a volumetric flow rate in microliters per
// minute to cubic meters per second.
func ULPerMinToM3PerS(ul float64) float64 { return ul * 1e-9 / 60.0 }

// MLPerMinToM3PerS converts a volumetric flow rate in milliliters per
// minute to cubic meters per second.
func MLPerMinToM3PerS(ml float64) float64 { return ml * 1e-6 / 60.0 }

// M3PerSToMLPerMin converts a volumetric flow rate in cubic meters per
// second to milliliters per minute.
func M3PerSToMLPerMin(q float64) float64 { return q * 60.0 * 1e6 }

// M3PerSToULPerMin converts a volumetric flow rate in cubic meters per
// second to microliters per minute.
func M3PerSToULPerMin(q float64) float64 { return q * 60.0 * 1e9 }

// PaToBar converts a pressure in Pa to bar.
func PaToBar(p float64) float64 { return p / Bar }

// BarToPa converts a pressure in bar to Pa.
func BarToPa(b float64) float64 { return b * Bar }

// APerM2ToMAPerCM2 converts a current density from A/m2 to mA/cm2 (the
// unit used on the x axis of the paper's Fig. 3).
func APerM2ToMAPerCM2(j float64) float64 { return j * 0.1 }

// MAPerCM2ToAPerM2 converts a current density from mA/cm2 to A/m2.
func MAPerCM2ToAPerM2(j float64) float64 { return j * 10.0 }

// WPerM2ToWPerCM2 converts a power (or heat-flux) density from W/m2 to
// W/cm2, the unit used for chip power densities in the paper.
func WPerM2ToWPerCM2(q float64) float64 { return q * 1e-4 }

// WPerCM2ToWPerM2 converts a power density from W/cm2 to W/m2.
func WPerCM2ToWPerM2(q float64) float64 { return q * 1e4 }

// FormatSI renders v with an SI magnitude prefix and the given unit,
// e.g. FormatSI(2.53e-3, "Pa.s") == "2.530 mPa.s". It is intended for
// human-readable report output, not for machine parsing.
func FormatSI(v float64, unit string) string {
	type prefix struct {
		factor float64
		symbol string
	}
	prefixes := []prefix{
		{1e9, "G"}, {1e6, "M"}, {1e3, "k"},
		{1, ""},
		{1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
	}
	av := v
	if av < 0 {
		av = -av
	}
	if av == 0 {
		return fmt.Sprintf("0 %s", unit)
	}
	for _, p := range prefixes {
		if av >= p.factor {
			return fmt.Sprintf("%.3f %s%s", v/p.factor, p.symbol, unit)
		}
	}
	last := prefixes[len(prefixes)-1]
	return fmt.Sprintf("%.3f %s%s", v/last.factor, last.symbol, unit)
}
