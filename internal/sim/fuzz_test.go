package sim

import (
	"encoding/json"
	"testing"

	"bright/internal/core"
)

// FuzzCacheSnapshotRestore throws arbitrary bytes at the snapshot
// restore path that brightd exposes as PUT /v1/cache/snapshot: whatever
// a peer (or an attacker) uploads, the decode+restore pipeline must not
// panic, must keep the cache within its capacity, must account for
// every entry as either restored or skipped, and must reject foreign
// wire versions outright.
func FuzzCacheSnapshotRestore(f *testing.F) {
	valid := core.DefaultConfig()
	validSnap := CacheSnapshot{
		Version:  CacheSnapshotVersion,
		Capacity: 4,
		Entries: []CacheSnapshotEntry{
			{Key: valid.CanonicalKey(), Report: &core.Report{Config: valid}},
		},
	}
	seed, err := json.Marshal(validSnap)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"version":2,"capacity":1,"entries":[]}`))
	f.Add([]byte(`{"version":1,"entries":[{"key":"bogus","report":{}}]}`))
	f.Add([]byte(`{"version":1,"entries":[{"key":"","report":null}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s CacheSnapshot
		if err := json.Unmarshal(data, &s); err != nil {
			return // not a snapshot; the HTTP handler rejects it before restore
		}

		const capacity = 2
		c := newLRUCache(capacity)
		restored, skipped, err := c.RestoreSnapshot(s)

		if s.Version != CacheSnapshotVersion {
			if err == nil {
				t.Fatalf("RestoreSnapshot accepted wire version %d (this build speaks %d)", s.Version, CacheSnapshotVersion)
			}
			if restored != 0 || skipped != 0 {
				t.Fatalf("rejected snapshot still reported work: restored=%d skipped=%d", restored, skipped)
			}
			return
		}
		if err != nil {
			t.Fatalf("RestoreSnapshot failed on a version-%d snapshot: %v", CacheSnapshotVersion, err)
		}
		if restored+skipped != len(s.Entries) {
			t.Fatalf("accounting leak: %d entries but restored=%d skipped=%d", len(s.Entries), restored, skipped)
		}
		if c.Len() > capacity {
			t.Fatalf("cache over capacity after restore: Len=%d cap=%d", c.Len(), capacity)
		}

		// Every restored entry must be reachable under the key it was
		// stored at; key-mismatched and report-less entries must have
		// been skipped, never planted.
		for _, e := range s.Entries {
			if e.Report == nil || e.Report.Config.CanonicalKey() != e.Key {
				continue
			}
			// Entries beyond capacity may have been evicted; a hit, when
			// present, must carry a self-consistent report.
			if rep, ok := c.Get(e.Key); ok && rep.Config.CanonicalKey() != e.Key {
				t.Fatalf("cache returned a report whose config does not match its key %q", e.Key)
			}
		}
	})
}
