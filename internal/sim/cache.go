package sim

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"bright/internal/core"
)

// lruCache is a size-bounded least-recently-used memoization of solved
// reports, keyed by core.Config.CanonicalKey(). Reports are stored by
// pointer and treated as immutable once published; callers must not
// mutate a cached *core.Report.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	refreshes atomic.Uint64
	restored  atomic.Uint64
}

type cacheEntry struct {
	key string
	rep *core.Report
}

// newLRUCache returns a cache holding at most capacity reports; a
// capacity <= 0 disables caching (every Get misses, Add is a no-op).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// enabled reports whether the cache stores anything at all.
func (c *lruCache) enabled() bool { return c.cap > 0 }

// Get returns the cached report for key and marks it most recently used.
// A disabled cache reports a plain miss without touching the counters:
// counting every lookup as a miss against a cache that does not exist
// made /v1/stats show a growing miss count and a meaningless 0% hit
// rate (the stats layer reports "disabled" instead).
func (c *lruCache) Get(key string) (*core.Report, bool) {
	if !c.enabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).rep, true
}

// Add inserts (or refreshes) a solved report, evicting the least
// recently used entry when the cache is full. The refresh path counts
// the overwrite (the old report is dropped, which is an event worth
// seeing in /v1/stats) and still runs the eviction loop: a restore that
// shrank the effective population, or any future cap change, must not
// leave the cache over capacity until an unrelated insert happens by.
func (c *lruCache) Add(key string, rep *core.Report) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(key, rep)
}

// addLocked is Add's body, shared with RestoreSnapshot (which holds the
// lock across many inserts so a snapshot lands atomically).
func (c *lruCache) addLocked(key string, rep *core.Report) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).rep = rep
		c.order.MoveToFront(el)
		c.refreshes.Add(1)
		c.evictOverCapLocked()
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, rep: rep})
	c.evictOverCapLocked()
}

// evictOverCapLocked drops least-recently-used entries until the cache
// is back within capacity, counting every eviction.
func (c *lruCache) evictOverCapLocked() {
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// Len returns the current number of cached reports.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Counters returns the lifetime hit/miss/eviction counts.
func (c *lruCache) Counters() (hits, misses, evictions uint64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// RefreshCounters returns the lifetime overwrite and snapshot-restore
// counts.
func (c *lruCache) RefreshCounters() (refreshes, restored uint64) {
	return c.refreshes.Load(), c.restored.Load()
}

// CacheSnapshotVersion is the wire version of CacheSnapshot. Bump it
// whenever the JSON shape (or the key quantization it depends on)
// changes incompatibly; RestoreSnapshot rejects versions it does not
// understand instead of silently misreading them.
const CacheSnapshotVersion = 1

// CacheSnapshot is a portable dump of the report LRU, oldest entry
// first so replaying it through Add reproduces the recency order. It is
// the payload of brightd's GET/PUT /v1/cache/snapshot: a restarting
// shard rejoins the cluster warm by uploading the snapshot its
// coordinator saved before the crash.
type CacheSnapshot struct {
	Version  int                  `json:"version"`
	Capacity int                  `json:"capacity"`
	Entries  []CacheSnapshotEntry `json:"entries"`
}

// CacheSnapshotEntry is one cached report keyed by its canonical key.
type CacheSnapshotEntry struct {
	Key    string       `json:"key"`
	Report *core.Report `json:"report"`
}

// Snapshot captures the cache contents, oldest first.
func (c *lruCache) Snapshot() CacheSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheSnapshot{
		Version:  CacheSnapshotVersion,
		Capacity: c.cap,
		Entries:  make([]CacheSnapshotEntry, 0, c.order.Len()),
	}
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		s.Entries = append(s.Entries, CacheSnapshotEntry{Key: e.key, Report: e.rep})
	}
	return s
}

// RestoreSnapshot merges a snapshot into the cache under one lock hold.
// Entries whose key does not match their report's own canonical key are
// skipped (a snapshot from a build with different quantization must not
// plant entries the local keying can never hit), as are entries with no
// report. The local capacity is authoritative: a snapshot larger than
// this cache restores only its most recent entries, and the eviction
// loop keeps Len <= cap throughout. Returns the number of entries
// restored and the number skipped.
func (c *lruCache) RestoreSnapshot(s CacheSnapshot) (restored, skipped int, err error) {
	if s.Version != CacheSnapshotVersion {
		return 0, 0, fmt.Errorf("sim: cache snapshot version %d, this build speaks %d", s.Version, CacheSnapshotVersion)
	}
	if !c.enabled() {
		return 0, len(s.Entries), nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range s.Entries {
		if e.Report == nil || e.Report.Config.CanonicalKey() != e.Key {
			skipped++
			continue
		}
		c.addLocked(e.Key, e.Report)
		restored++
	}
	c.restored.Add(uint64(restored))
	return restored, skipped, nil
}

// flightGroup deduplicates concurrent solves of the same key: the first
// caller for a key becomes the leader and runs the solve; later callers
// ("followers") wait on the leader's completion instead of solving
// again. Unlike golang.org/x/sync/singleflight (not vendored here —
// stdlib only), completion is exposed as a channel so followers can
// abandon the wait when their own context dies while the leader keeps
// solving.
type flightGroup struct {
	mu     sync.Mutex
	flight map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when the leader publishes rep/err
	rep  *core.Report
	err  error
	// leaderCanceled marks completions that are a verdict on the LEADER
	// (its context died) rather than on the key (solver failure). A
	// follower whose own context is live must not inherit such an error:
	// it re-runs the lookup and elects a new leader. The classification
	// lives here, in one place, so every wait path applies the same rule
	// — before this, each select carried its own errors.Is pair, and a
	// wait path that forgot the check poisoned N live followers with one
	// canceled leader's ctx error.
	leaderCanceled bool
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flight: make(map[string]*flightCall)}
}

// join returns the in-flight call for key and whether this caller is the
// leader (created the call). Leaders must eventually call complete or
// abandon the call with forget.
func (g *flightGroup) join(key string) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if call, ok := g.flight[key]; ok {
		return call, false
	}
	call := &flightCall{done: make(chan struct{})}
	g.flight[key] = call
	return call, true
}

// complete publishes the leader's result to all followers and removes
// the call so the next request for the key starts fresh. Completions
// carrying the leader's own cancellation are marked leaderCanceled so
// followers re-elect instead of inheriting the error.
func (g *flightGroup) complete(key string, call *flightCall, rep *core.Report, err error) {
	g.mu.Lock()
	delete(g.flight, key)
	g.mu.Unlock()
	call.rep, call.err = rep, err
	call.leaderCanceled = err != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	close(call.done)
}

// forget removes the call without completing it — used when the leader
// fails to enqueue (queue full) so followers aren't stranded. Followers
// already waiting observe the closed channel with the sentinel error.
func (g *flightGroup) forget(key string, call *flightCall, err error) {
	g.complete(key, call, nil, err)
}
