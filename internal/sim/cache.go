package sim

import (
	"container/list"
	"sync"
	"sync/atomic"

	"bright/internal/core"
)

// lruCache is a size-bounded least-recently-used memoization of solved
// reports, keyed by core.Config.CanonicalKey(). Reports are stored by
// pointer and treated as immutable once published; callers must not
// mutate a cached *core.Report.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type cacheEntry struct {
	key string
	rep *core.Report
}

// newLRUCache returns a cache holding at most capacity reports; a
// capacity <= 0 disables caching (every Get misses, Add is a no-op).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// enabled reports whether the cache stores anything at all.
func (c *lruCache) enabled() bool { return c.cap > 0 }

// Get returns the cached report for key and marks it most recently used.
// A disabled cache reports a plain miss without touching the counters:
// counting every lookup as a miss against a cache that does not exist
// made /v1/stats show a growing miss count and a meaningless 0% hit
// rate (the stats layer reports "disabled" instead).
func (c *lruCache) Get(key string) (*core.Report, bool) {
	if !c.enabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).rep, true
}

// Add inserts (or refreshes) a solved report, evicting the least
// recently used entry when the cache is full.
func (c *lruCache) Add(key string, rep *core.Report) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).rep = rep
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, rep: rep})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// Len returns the current number of cached reports.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Counters returns the lifetime hit/miss/eviction counts.
func (c *lruCache) Counters() (hits, misses, evictions uint64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// flightGroup deduplicates concurrent solves of the same key: the first
// caller for a key becomes the leader and runs the solve; later callers
// ("followers") wait on the leader's completion instead of solving
// again. Unlike golang.org/x/sync/singleflight (not vendored here —
// stdlib only), completion is exposed as a channel so followers can
// abandon the wait when their own context dies while the leader keeps
// solving.
type flightGroup struct {
	mu     sync.Mutex
	flight map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when the leader publishes rep/err
	rep  *core.Report
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flight: make(map[string]*flightCall)}
}

// join returns the in-flight call for key and whether this caller is the
// leader (created the call). Leaders must eventually call complete or
// abandon the call with forget.
func (g *flightGroup) join(key string) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if call, ok := g.flight[key]; ok {
		return call, false
	}
	call := &flightCall{done: make(chan struct{})}
	g.flight[key] = call
	return call, true
}

// complete publishes the leader's result to all followers and removes
// the call so the next request for the key starts fresh.
func (g *flightGroup) complete(key string, call *flightCall, rep *core.Report, err error) {
	g.mu.Lock()
	delete(g.flight, key)
	g.mu.Unlock()
	call.rep, call.err = rep, err
	close(call.done)
}

// forget removes the call without completing it — used when the leader
// fails to enqueue (queue full) so followers aren't stranded. Followers
// already waiting observe the closed channel with the sentinel error.
func (g *flightGroup) forget(key string, call *flightCall, err error) {
	g.complete(key, call, nil, err)
}
