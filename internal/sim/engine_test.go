package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bright/internal/core"
	"bright/internal/cosim"
	"bright/internal/flowcell"
	"bright/internal/hydro"
	"bright/internal/pdn"
	"bright/internal/thermal"
)

// fakeReport builds a structurally complete report (every pointer the
// view/summary layer dereferences is non-nil) without running solvers.
func fakeReport(cfg core.Config) *core.Report {
	return &core.Report{
		Config: cfg,
		CoSim: &cosim.Result{
			Iterations: 3,
			Converged:  true,
			Operating:  flowcell.OperatingPoint{Current: 6.3, Voltage: cfg.SupplyVoltage, Power: 6.3 * cfg.SupplyVoltage},
			Thermal:    &thermal.Solution{PeakT: 311.4, OutletT: 301.4},
		},
		CacheDemandW:       2.2,
		CacheDemandA:       2.2,
		DeliveredW:         5.4,
		PowersCaches:       true,
		Grid:               &pdn.Solution{MinVCache: 0.962},
		Thermal:            &thermal.Solution{PeakT: 311.4, OutletT: 301.4},
		PeakTempC:          38.3,
		Hydraulics:         hydro.Report{TotalDrop: 41300, PressureGradient: 1.9e6, PumpPower: 0.93},
		NetElectricalGainW: 4.5,
	}
}

// countingSolver counts invocations. When block is non-nil, solves wait
// on it (release by closing it or canceling their context); blockN > 0
// restricts the blocking to the first blockN invocations. Both fields
// are set at construction and never mutated, so tests stay race-free.
type countingSolver struct {
	calls  atomic.Int64
	block  chan struct{}
	blockN int64 // 0 = block every call (while block is open)
	err    error
}

func (s *countingSolver) solve(ctx context.Context, cfg core.Config) (*core.Report, error) {
	n := s.calls.Add(1)
	if s.block != nil && (s.blockN == 0 || n <= s.blockN) {
		select {
		case <-s.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if s.err != nil {
		return nil, s.err
	}
	return fakeReport(cfg), nil
}

func newTestEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e := New(opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = e.Shutdown(ctx)
	})
	return e
}

// TestSingleFlight64 is the issue's acceptance test: 64 concurrent
// identical requests must trigger exactly one underlying solve.
func TestSingleFlight64(t *testing.T) {
	s := &countingSolver{block: make(chan struct{})}
	e := newTestEngine(t, Options{Workers: 4, QueueDepth: 8, Solver: s.solve})

	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	wg.Add(n)
	for k := 0; k < n; k++ {
		go func(k int) {
			defer wg.Done()
			_, errs[k] = e.Evaluate(context.Background(), core.DefaultConfig())
		}(k)
	}
	// Give every goroutine time to reach the flight group, then release
	// the (single) solve.
	time.Sleep(100 * time.Millisecond)
	close(s.block)
	wg.Wait()

	for k, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", k, err)
		}
	}
	if got := s.calls.Load(); got != 1 {
		t.Fatalf("64 identical requests caused %d solves, want exactly 1", got)
	}
	st := e.Stats()
	if st.Solves != 1 {
		t.Errorf("stats solves = %d, want 1", st.Solves)
	}
}

func TestDistinctConfigsSolveSeparately(t *testing.T) {
	s := &countingSolver{}
	e := newTestEngine(t, Options{Workers: 2, Solver: s.solve})
	for _, flow := range []float64{100, 200, 300} {
		cfg := core.DefaultConfig()
		cfg.FlowMLMin = flow
		if _, err := e.Evaluate(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.calls.Load(); got != 3 {
		t.Fatalf("3 distinct configs caused %d solves, want 3", got)
	}
}

func TestCacheHitSkipsSolver(t *testing.T) {
	s := &countingSolver{}
	e := newTestEngine(t, Options{Workers: 2, Solver: s.solve})
	cfg := core.DefaultConfig()
	for k := 0; k < 5; k++ {
		if _, err := e.Evaluate(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.calls.Load(); got != 1 {
		t.Fatalf("repeated requests caused %d solves, want 1 (cache)", got)
	}
	st := e.Stats()
	if st.CacheHits != 4 || st.CacheHitRate <= 0 {
		t.Errorf("stats: hits=%d rate=%g, want 4 hits and a positive rate", st.CacheHits, st.CacheHitRate)
	}
}

// TestQueueFullBackpressure fills the pool and the queue with blocked
// solves and asserts the next distinct request is rejected, not blocked.
func TestQueueFullBackpressure(t *testing.T) {
	s := &countingSolver{block: make(chan struct{})}
	e := newTestEngine(t, Options{Workers: 1, QueueDepth: 2, Solver: s.solve})

	submit := func(flow float64) chan error {
		cfg := core.DefaultConfig()
		cfg.FlowMLMin = flow
		done := make(chan error, 1)
		go func() {
			_, err := e.Evaluate(context.Background(), cfg)
			done <- err
		}()
		return done
	}
	// 1 running + 2 queued fill the engine.
	pending := []chan error{submit(101), submit(102), submit(103)}
	// Wait until the worker has picked up the first task and the queue
	// holds the other two.
	deadline := time.Now().Add(2 * time.Second)
	for len(e.queue) < 2 || s.calls.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("engine never saturated: depth=%d calls=%d", len(e.queue), s.calls.Load())
		}
		time.Sleep(time.Millisecond)
	}

	cfg := core.DefaultConfig()
	cfg.FlowMLMin = 104
	_, err := e.Evaluate(context.Background(), cfg)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("saturated engine returned %v, want ErrQueueFull", err)
	}
	if st := e.Stats(); st.QueueRejected != 1 {
		t.Errorf("stats rejected = %d, want 1", st.QueueRejected)
	}
	// The rejected key must not be stranded in the flight map: once the
	// engine drains, the same config must be solvable (the closed block
	// channel releases every later solve immediately).
	close(s.block)
	for _, p := range pending {
		if err := <-p; err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Evaluate(context.Background(), cfg); err != nil {
		t.Fatalf("post-backpressure request failed: %v", err)
	}
}

// TestCancellationDoesNotPoisonCache cancels a request mid-solve and
// asserts (a) the caller gets context.Canceled, (b) the result is not
// cached, and (c) a fresh request re-solves successfully.
func TestCancellationDoesNotPoisonCache(t *testing.T) {
	s := &countingSolver{block: make(chan struct{}), blockN: 1}
	e := newTestEngine(t, Options{Workers: 1, Solver: s.solve})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Evaluate(ctx, core.DefaultConfig())
		done <- err
	}()
	// Let the solve start, then cancel the submitter.
	deadline := time.Now().Add(2 * time.Second)
	for s.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("solve never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled request returned %v, want context.Canceled", err)
	}

	// Re-request: the cache must miss (no poisoned entry) and the solver
	// must run again (only the first call blocks, by blockN).
	if _, err := e.Evaluate(context.Background(), core.DefaultConfig()); err != nil {
		t.Fatalf("re-request after cancellation failed: %v", err)
	}
	if got := s.calls.Load(); got != 2 {
		t.Fatalf("solver ran %d times, want 2 (canceled + fresh)", got)
	}
}

// TestFollowerSurvivesLeaderCancel: a follower with a live context joins
// a flight whose leader cancels; the follower must transparently retry
// and get a result rather than inherit context.Canceled.
func TestFollowerSurvivesLeaderCancel(t *testing.T) {
	s := &countingSolver{block: make(chan struct{}), blockN: 1}
	e := newTestEngine(t, Options{Workers: 1, Solver: s.solve})

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := e.Evaluate(leaderCtx, core.DefaultConfig())
		leaderDone <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader solve never started")
		}
		time.Sleep(time.Millisecond)
	}

	followerDone := make(chan error, 1)
	go func() {
		_, err := e.Evaluate(context.Background(), core.DefaultConfig())
		followerDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the follower join the flight
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader got %v, want context.Canceled", err)
	}
	// The follower's retry becomes the new leader; its solve (call 2) is
	// past blockN and completes without external release.
	select {
	case err := <-followerDone:
		if err != nil {
			t.Fatalf("follower got %v, want success via retry", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower never completed")
	}
}

// TestManyFollowersSurviveLeaderCancel is the regression pin for the
// flight-group poisoning bug: one leader whose context dies mid-solve
// must not fail the N followers whose contexts are live. Every follower
// re-runs the lookup, exactly one of them is re-elected leader for the
// fresh solve, and all N receive the result.
func TestManyFollowersSurviveLeaderCancel(t *testing.T) {
	const followers = 8
	s := &countingSolver{block: make(chan struct{}), blockN: 1}
	e := newTestEngine(t, Options{Workers: 2, Solver: s.solve})

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := e.Evaluate(leaderCtx, core.DefaultConfig())
		leaderDone <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader solve never started")
		}
		time.Sleep(time.Millisecond)
	}

	followerDone := make(chan error, followers)
	for i := 0; i < followers; i++ {
		go func() {
			_, err := e.Evaluate(context.Background(), core.DefaultConfig())
			followerDone <- err
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the followers join the flight
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader got %v, want context.Canceled", err)
	}
	for i := 0; i < followers; i++ {
		select {
		case err := <-followerDone:
			if err != nil {
				t.Fatalf("follower %d inherited the leader's cancellation: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("follower %d never completed", i)
		}
	}
	// The canceled solve plus exactly one re-elected leader's solve: the
	// retry must coalesce the followers, not fan out N fresh solves.
	if got := s.calls.Load(); got != 2 {
		t.Fatalf("solver ran %d times, want 2 (canceled leader + one re-elected)", got)
	}
}

func TestSolverErrorPropagatesAndIsNotCached(t *testing.T) {
	s := &countingSolver{err: fmt.Errorf("solver exploded")}
	e := newTestEngine(t, Options{Workers: 1, Solver: s.solve})
	if _, err := e.Evaluate(context.Background(), core.DefaultConfig()); err == nil {
		t.Fatal("expected solver error")
	}
	if _, err := e.Evaluate(context.Background(), core.DefaultConfig()); err == nil {
		t.Fatal("expected solver error on retry")
	}
	if got := s.calls.Load(); got != 2 {
		t.Fatalf("failed solve was cached: %d calls, want 2", got)
	}
	if st := e.Stats(); st.SolveErrors != 2 {
		t.Errorf("stats errors = %d, want 2", st.SolveErrors)
	}
}

func TestInvalidConfigRejectedBeforeQueue(t *testing.T) {
	s := &countingSolver{}
	e := newTestEngine(t, Options{Workers: 1, Solver: s.solve})
	cfg := core.DefaultConfig()
	cfg.FlowMLMin = -1
	if _, err := e.Evaluate(context.Background(), cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
	if s.calls.Load() != 0 {
		t.Fatal("invalid config reached the solver")
	}
}

func TestShutdownDrainsInFlightWork(t *testing.T) {
	s := &countingSolver{block: make(chan struct{})}
	e := New(Options{Workers: 2, QueueDepth: 8, Solver: s.solve})

	results := make(chan error, 3)
	for _, flow := range []float64{111, 222, 333} {
		cfg := core.DefaultConfig()
		cfg.FlowMLMin = flow
		go func() {
			_, err := e.Evaluate(context.Background(), cfg)
			results <- err
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.calls.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers never picked up tasks")
		}
		time.Sleep(time.Millisecond)
	}
	// Release the solves and shut down: every submitted job must still
	// complete successfully (drain semantics).
	close(s.block)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for k := 0; k < 3; k++ {
		if err := <-results; err != nil {
			t.Fatalf("drained job %d failed: %v", k, err)
		}
	}
	// After shutdown, new work is refused.
	if _, err := e.Evaluate(context.Background(), core.DefaultConfig()); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-shutdown evaluate returned %v, want ErrClosed", err)
	}
	// Shutdown is idempotent.
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestRealSolverEndToEnd runs one genuine evaluation through the engine
// and checks the headline band — the engine must not perturb physics.
func TestRealSolverEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full co-simulation in -short mode")
	}
	e := newTestEngine(t, Options{Workers: 1})
	rep, err := e.Evaluate(context.Background(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.CoSim.Operating.Current < 5.0 || rep.CoSim.Operating.Current > 7.5 {
		t.Fatalf("engine-served current %.2f A outside Fig. 7 band", rep.CoSim.Operating.Current)
	}
	// Second request is a cache hit returning the identical report.
	rep2, err := e.Evaluate(context.Background(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep2 != rep {
		t.Fatal("cache hit returned a different report pointer")
	}
}
