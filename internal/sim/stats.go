package sim

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stats is a point-in-time snapshot of the engine's serving metrics,
// shaped for JSON (the brightd /v1/stats endpoint marshals it as-is).
type Stats struct {
	// Pool.
	Workers       int `json:"workers"`
	BusyWorkers   int `json:"busy_workers"`
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`

	// Cache.
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	CacheSize     int     `json:"cache_size"`
	CacheCapacity int     `json:"cache_capacity"`

	// Solves.
	Solves        uint64 `json:"solves"`
	SolveErrors   uint64 `json:"solve_errors"`
	QueueRejected uint64 `json:"queue_rejected"`

	// Latency over completed solves (cache hits excluded).
	SolveLatencyMeanMS float64 `json:"solve_latency_mean_ms"`
	SolveLatencyMaxMS  float64 `json:"solve_latency_max_ms"`
	SolveLatencyLastMS float64 `json:"solve_latency_last_ms"`

	// Sweep jobs.
	JobsActive int `json:"jobs_active"`
	JobsDone   int `json:"jobs_done"`

	// KernelThreads is the resolved process-wide goroutine cap of the
	// numeric kernels (SpMV, dot, axpy) behind every solve.
	KernelThreads int `json:"kernel_threads"`
}

// metrics accumulates the mutable counters behind Stats. Counters that
// are bumped on hot paths are atomics; the latency aggregate sits under
// its own mutex.
type metrics struct {
	busyWorkers   atomic.Int64
	solves        atomic.Uint64
	solveErrors   atomic.Uint64
	queueRejected atomic.Uint64

	mu           sync.Mutex
	latencyTotal time.Duration
	latencyMax   time.Duration
	latencyLast  time.Duration
	latencyCount uint64
}

func (m *metrics) recordSolve(d time.Duration, err error) {
	m.solves.Add(1)
	if err != nil {
		m.solveErrors.Add(1)
	}
	m.mu.Lock()
	m.latencyTotal += d
	m.latencyLast = d
	if d > m.latencyMax {
		m.latencyMax = d
	}
	m.latencyCount++
	m.mu.Unlock()
}

func (m *metrics) latencySnapshot() (meanMS, maxMS, lastMS float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	toMS := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	if m.latencyCount > 0 {
		meanMS = toMS(m.latencyTotal) / float64(m.latencyCount)
	}
	return meanMS, toMS(m.latencyMax), toMS(m.latencyLast)
}
