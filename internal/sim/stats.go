package sim

import (
	"sync"
	"sync/atomic"
	"time"

	"bright/internal/obs"
)

// Stats is a point-in-time snapshot of the engine's serving metrics,
// shaped for JSON (the brightd /v1/stats endpoint marshals it as-is).
// The same counters back the Prometheus /metrics exposition; this view
// folds them into one JSON object for humans and scripts.
type Stats struct {
	// Pool.
	Workers       int `json:"workers"`
	BusyWorkers   int `json:"busy_workers"`
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`

	// Cache. When the cache is disabled (non-positive capacity) Enabled
	// is false and every other cache field is zero — there is no cache
	// to have a hit rate.
	CacheEnabled   bool    `json:"cache_enabled"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheEvictions uint64  `json:"cache_evictions"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	CacheSize      int     `json:"cache_size"`
	CacheCapacity  int     `json:"cache_capacity"`
	// CacheRefreshes counts Add calls that overwrote an existing entry
	// (same canonical key solved again); CacheRestored counts entries
	// merged in through PUT /v1/cache/snapshot (cluster warm rejoin).
	CacheRefreshes uint64 `json:"cache_refreshes"`
	CacheRestored  uint64 `json:"cache_restored"`

	// Solves.
	Solves        uint64 `json:"solves"`
	SolveErrors   uint64 `json:"solve_errors"`
	QueueRejected uint64 `json:"queue_rejected"`

	// Latency over completed solves (cache hits excluded). Percentiles
	// are estimated from the fixed-bucket histogram backing the
	// Prometheus exposition.
	SolveLatencyMeanMS float64 `json:"solve_latency_mean_ms"`
	SolveLatencyP50MS  float64 `json:"solve_latency_p50_ms"`
	SolveLatencyP90MS  float64 `json:"solve_latency_p90_ms"`
	SolveLatencyP99MS  float64 `json:"solve_latency_p99_ms"`
	SolveLatencyMaxMS  float64 `json:"solve_latency_max_ms"`
	SolveLatencyLastMS float64 `json:"solve_latency_last_ms"`

	// Sweep jobs.
	JobsActive int `json:"jobs_active"`
	JobsDone   int `json:"jobs_done"`

	// Sweep warm-start chains. A chain is a run of grid-adjacent sweep
	// points sharing the hydrodynamic condition, executed sequentially
	// on one cached solver stack; a warm point is a chain solve seeded
	// by an earlier point's converged state, a cold point paid the full
	// setup. WarmPoints/(WarmPoints+ColdPoints) is the chaining hit rate.
	SweepChains     uint64 `json:"sweep_chains"`
	SweepPointsWarm uint64 `json:"sweep_points_warm"`
	SweepPointsCold uint64 `json:"sweep_points_cold"`

	// Skew-aware segment scheduling: chains longer than
	// Options.SweepSegment split into bounded segments dealt across the
	// sweep workers; an idle worker steals queued segments from the
	// most-loaded peer. Segments counts every segment executed (a chain
	// at or under the bound is one segment); Steals counts the subset a
	// worker took from another worker's queue.
	SweepSegments uint64 `json:"sweep_segments"`
	SweepSteals   uint64 `json:"sweep_steals"`

	// Sweep chain prefetches: multi-point chains whose distinct PDN
	// operating points were batch-presolved up front through the block
	// Krylov path, by outcome. A failed prefetch costs nothing — the
	// chain's points still solve in the sequential walk.
	SweepPrefetches     uint64 `json:"sweep_prefetches"`
	SweepPrefetchErrors uint64 `json:"sweep_prefetch_errors"`

	// KernelThreads is the resolved process-wide goroutine cap of the
	// numeric kernels (SpMV, dot, axpy) behind every solve.
	KernelThreads int `json:"kernel_threads"`
}

// metrics holds the engine's mutable counters, backed by obs
// instruments so the same numbers serve /v1/stats and /metrics. Max and
// last latency are not expressible as histogram samples, so they keep a
// small mutex of their own.
type metrics struct {
	busyWorkers atomic.Int64

	solves              *obs.Counter
	solveErrors         *obs.Counter
	queueRejected       *obs.Counter
	solveLatency        *obs.Histogram
	sweepChains         *obs.Counter
	sweepSegments       *obs.Counter
	sweepSteals         *obs.Counter
	sweepPointsWarm     *obs.Counter
	sweepPointsCold     *obs.Counter
	sweepPrefetches     *obs.Counter
	sweepPrefetchErrors *obs.Counter

	mu          sync.Mutex
	latencyMax  time.Duration
	latencyLast time.Duration
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		solves: reg.Counter("bright_solves_total",
			"Completed solver invocations (cache hits excluded)."),
		solveErrors: reg.Counter("bright_solve_errors_total",
			"Solver invocations that returned an error (including cancellations)."),
		queueRejected: reg.Counter("bright_queue_rejected_total",
			"Evaluate requests shed with ErrQueueFull backpressure."),
		solveLatency: reg.Histogram("bright_solve_duration_seconds",
			"Wall-clock latency of one solver invocation.", obs.DefLatencyBuckets),
		sweepChains: reg.Counter("bright_sweep_chains_total",
			"Sweep warm-start chains executed (runs of points sharing a hydrodynamic condition)."),
		sweepSegments: reg.Counter("bright_sweep_segments_total",
			"Sweep segments executed (bounded slices of a chain; the unit of work stealing)."),
		sweepSteals: reg.Counter("bright_sweep_steals_total",
			"Sweep segments an idle worker stole from another worker's queue."),
		sweepPointsWarm: reg.Counter("bright_sweep_points_total",
			"Sweep points solved inside a chain, by warm-start state.", obs.L("warm", "true")),
		sweepPointsCold: reg.Counter("bright_sweep_points_total",
			"Sweep points solved inside a chain, by warm-start state.", obs.L("warm", "false")),
		sweepPrefetches: reg.Counter("bright_sweep_chain_prefetches_total",
			"Sweep chains whose upfront batch prefetch (multi-RHS PDN presolve) succeeded.", obs.L("ok", "true")),
		sweepPrefetchErrors: reg.Counter("bright_sweep_chain_prefetches_total",
			"Sweep chains whose upfront batch prefetch (multi-RHS PDN presolve) succeeded.", obs.L("ok", "false")),
	}
}

func (m *metrics) recordSolve(d time.Duration, err error) {
	m.solves.Inc()
	if err != nil {
		m.solveErrors.Inc()
	}
	m.solveLatency.Observe(d.Seconds())
	m.mu.Lock()
	m.latencyLast = d
	if d > m.latencyMax {
		m.latencyMax = d
	}
	m.mu.Unlock()
}

func (m *metrics) latencySnapshot() (meanMS, p50MS, p90MS, p99MS, maxMS, lastMS float64) {
	const sToMS = 1e3
	if n := m.solveLatency.Count(); n > 0 {
		meanMS = m.solveLatency.Sum() / float64(n) * sToMS
		p50MS = m.solveLatency.Quantile(0.50) * sToMS
		p90MS = m.solveLatency.Quantile(0.90) * sToMS
		p99MS = m.solveLatency.Quantile(0.99) * sToMS
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	toMS := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return meanMS, p50MS, p90MS, p99MS, toMS(m.latencyMax), toMS(m.latencyLast)
}

// registerGauges publishes the engine's sampled-at-scrape-time state
// (queue occupancy, pool utilization, cache size, job counts) into its
// registry. Called once from New, after every field the callbacks read
// is in place.
func (e *Engine) registerGauges() {
	reg := e.reg
	reg.GaugeFunc("bright_workers",
		"Fixed worker-pool size.", func() float64 { return float64(e.opts.Workers) })
	reg.GaugeFunc("bright_workers_busy",
		"Workers currently running a solve.", func() float64 { return float64(e.m.busyWorkers.Load()) })
	reg.GaugeFunc("bright_queue_depth",
		"Jobs waiting on the bounded queue.", func() float64 { return float64(len(e.queue)) })
	reg.GaugeFunc("bright_queue_capacity",
		"Bounded queue capacity.", func() float64 { return float64(cap(e.queue)) })
	reg.GaugeFunc("bright_cache_enabled",
		"1 when the memoization cache is enabled, 0 when disabled.", func() float64 {
			if e.cache.enabled() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("bright_cache_entries",
		"Reports currently held by the memoization cache.", func() float64 { return float64(e.cache.Len()) })
	reg.CounterFunc("bright_cache_hits_total",
		"Memoization cache hits.", func() uint64 { h, _, _ := e.cache.Counters(); return h })
	reg.CounterFunc("bright_cache_misses_total",
		"Memoization cache misses.", func() uint64 { _, m, _ := e.cache.Counters(); return m })
	reg.CounterFunc("bright_cache_evictions_total",
		"Reports evicted from the memoization cache.", func() uint64 { _, _, ev := e.cache.Counters(); return ev })
	reg.CounterFunc("bright_cache_refreshes_total",
		"Cache inserts that overwrote an existing entry.", func() uint64 { r, _ := e.cache.RefreshCounters(); return r })
	reg.CounterFunc("bright_cache_restored_total",
		"Cache entries merged in from an uploaded snapshot (warm rejoin).", func() uint64 { _, r := e.cache.RefreshCounters(); return r })
	reg.GaugeFunc("bright_jobs_active",
		"Sweep jobs currently running.", func() float64 { a, _ := e.jobs.counts(); return float64(a) })
	reg.GaugeFunc("bright_jobs_done",
		"Sweep jobs finished (done, failed or canceled).", func() float64 { _, d := e.jobs.counts(); return float64(d) })
}
