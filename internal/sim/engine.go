// Package sim is the concurrent job-execution layer over the bright
// system model: a fixed-size worker pool with a bounded queue (explicit
// backpressure instead of blocking), a canonical-key memoizing LRU cache
// with single-flight deduplication, batched parameter sweeps that fan
// out across the pool, and context-aware cancellation threaded into the
// iterative solvers. It is the engine behind the brightd daemon and the
// substrate for design-space exploration workloads, which are
// embarrassingly parallel grids over (flow, inlet temperature, rail
// voltage, load).
package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"bright/internal/core"
	"bright/internal/num"
	"bright/internal/obs"
)

// ErrQueueFull is returned by Evaluate when the bounded job queue is at
// capacity — the backpressure signal. Callers should shed load or retry
// later; the engine never blocks a submitter on a full queue.
var ErrQueueFull = errors.New("sim: job queue full")

// ErrClosed is returned by Evaluate and SubmitSweep after Shutdown.
var ErrClosed = errors.New("sim: engine closed")

// Solver computes the full system report for one configuration. The
// production solver builds a core.System and runs EvaluateContext; tests
// and benchmarks inject counting or synthetic solvers.
type Solver func(ctx context.Context, cfg core.Config) (*core.Report, error)

// ChainPrefetch receives a sweep chain's complete point list before the
// chain's sequential walk, letting a stateful chain solver presolve
// whatever the points' known-upfront inputs allow (batched multi-RHS
// PDN solves in the production path).
type ChainPrefetch func(ctx context.Context, cfgs []core.Config) error

// DefaultSolver is the production path: core.NewSystem + EvaluateContext.
func DefaultSolver(ctx context.Context, cfg core.Config) (*core.Report, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return sys.EvaluateContext(ctx)
}

// Options configures a new Engine. The zero value gives NumCPU workers,
// a 64-deep queue, a 256-entry cache and the production solver.
type Options struct {
	// Workers is the fixed worker-pool size (default runtime.NumCPU()).
	Workers int
	// QueueDepth bounds the pending-job queue; a full queue makes
	// Evaluate return ErrQueueFull (default 64).
	QueueDepth int
	// CacheSize bounds the memoization LRU in entries (default 256;
	// negative disables caching).
	CacheSize int
	// SweepSegment bounds the points one stealable sweep segment may
	// carry: chains longer than the bound split (preferentially at
	// supply-voltage boundaries) so a skewed grid cannot serialize a
	// sweep behind one goroutine. 0 means the default (16); negative
	// disables splitting, restoring whole-chain scheduling. The bound
	// trades steal granularity against warm-start carry — each segment's
	// first point re-warms its solver stack cold.
	SweepSegment int
	// KernelThreads caps the goroutines the numeric kernels (SpMV, dot,
	// axpy) fork per operation; 0 keeps the current process-wide setting
	// (which defaults to GOMAXPROCS). The setting is process-wide — the
	// kernels are shared by every solver in the process — so the last
	// engine created wins. Deployments running one engine per process
	// (brightd) set it from the BRIGHT_NUM_THREADS environment or the
	// -kernel-threads flag.
	KernelThreads int
	// Solver overrides the production solver (tests, benchmarks).
	Solver Solver
	// BatchSolver builds a fresh stateful solver for one sweep chain — a
	// run of grid-adjacent points sharing the hydrodynamic condition,
	// executed sequentially so each point warm-starts from its
	// neighbor's converged state. The default wraps core.NewBatch (one
	// thermal session per condition, one PDN session per chain); when
	// Solver is overridden and BatchSolver is not, chains reuse the
	// overridden Solver (stateless, no warm carry).
	BatchSolver func() Solver
	// BatchChain, when set, supersedes BatchSolver: it additionally
	// returns a ChainPrefetch that SubmitSweep hands the chain's full
	// point list before the sequential walk begins, so the solver can
	// batch work whose inputs are known upfront (the default
	// core.NewBatch prefetch block-solves the chain's PDN grid points
	// in one multi-RHS Krylov run). A nil prefetch is valid. Prefetch
	// errors are counted and otherwise ignored — every point still
	// solves correctly, just without the batched head start.
	BatchChain func() (Solver, ChainPrefetch)
	// Metrics is the registry the engine publishes its serving metrics
	// into; nil gives the engine a private registry (reachable via
	// Engine.Metrics). One engine per registry: the gauge callbacks are
	// bound to the engine that registered first.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.SweepSegment == 0 {
		o.SweepSegment = 16
	}
	if o.Solver == nil {
		o.Solver = DefaultSolver
		if o.BatchSolver == nil && o.BatchChain == nil {
			o.BatchChain = func() (Solver, ChainPrefetch) {
				b := core.NewBatch()
				return b.EvaluateContext, b.PrefetchChain
			}
		}
	}
	if o.BatchChain == nil {
		if o.BatchSolver == nil {
			s := o.Solver
			o.BatchSolver = func() Solver { return s }
		}
		bs := o.BatchSolver
		o.BatchChain = func() (Solver, ChainPrefetch) { return bs(), nil }
	}
	return o
}

// task is one unit of work on the queue: solve cfg under ctx and
// complete the flight call with the result.
type task struct {
	ctx  context.Context
	cfg  core.Config
	key  string
	call *flightCall
}

// Engine is the concurrent evaluation service. Create with New, submit
// with Evaluate / SubmitSweep, observe with Stats, stop with Shutdown.
type Engine struct {
	opts   Options
	queue  chan *task
	cache  *lruCache
	flight *flightGroup
	reg    *obs.Registry
	m      *metrics
	jobs   *jobRegistry

	workerWG sync.WaitGroup
	sweepWG  sync.WaitGroup

	// closeMu guards the closed flag and queue sends: Evaluate sends
	// while holding it read-locked, Shutdown closes the queue while
	// holding it write-locked, so no send can race the close.
	closeMu sync.RWMutex
	closed  bool
}

// New builds and starts an engine: the worker pool is running on return.
func New(opts Options) *Engine {
	opts = opts.withDefaults()
	if opts.KernelThreads > 0 {
		num.SetKernelThreads(opts.KernelThreads)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{
		opts:   opts,
		queue:  make(chan *task, opts.QueueDepth),
		cache:  newLRUCache(opts.CacheSize),
		flight: newFlightGroup(),
		reg:    reg,
		m:      newMetrics(reg),
		jobs:   newJobRegistry(),
	}
	e.registerGauges()
	e.workerWG.Add(opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		go e.worker()
	}
	return e
}

func (e *Engine) worker() {
	defer e.workerWG.Done()
	for t := range e.queue {
		e.m.busyWorkers.Add(1)
		start := time.Now()
		rep, err := e.opts.Solver(t.ctx, t.cfg)
		e.m.recordSolve(time.Since(start), err)
		if err == nil {
			e.cache.Add(t.key, rep)
		}
		e.flight.complete(t.key, t.call, rep, err)
		e.m.busyWorkers.Add(-1)
	}
}

// enqueue places a task on the bounded queue. With block=false a full
// queue returns ErrQueueFull immediately (external backpressure); with
// block=true the send waits for a slot or the context (internal sweep
// fan-out, which is itself bounded by the job's point list).
func (e *Engine) enqueue(t *task, block bool) error {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	if block {
		select {
		case e.queue <- t:
			return nil
		case <-t.ctx.Done():
			return t.ctx.Err()
		}
	}
	select {
	case e.queue <- t:
		return nil
	default:
		e.m.queueRejected.Add(1)
		return ErrQueueFull
	}
}

// Evaluate solves one configuration through the cache, single-flight
// layer and worker pool. Identical concurrent requests (same canonical
// key) trigger exactly one underlying solve; a full queue returns
// ErrQueueFull; ctx cancels the caller's wait and, when the caller is
// the flight leader, the solve itself (at solver iteration boundaries).
// Failed or canceled solves are never cached.
func (e *Engine) Evaluate(ctx context.Context, cfg core.Config) (*core.Report, error) {
	return e.evaluate(ctx, cfg, false)
}

func (e *Engine) evaluate(ctx context.Context, cfg core.Config, block bool) (*core.Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	key := cfg.CanonicalKey()
	for {
		if rep, ok := e.cache.Get(key); ok {
			return rep, nil
		}
		call, leader := e.flight.join(key)
		if leader {
			t := &task{ctx: ctx, cfg: cfg, key: key, call: call}
			if err := e.enqueue(t, block); err != nil {
				e.flight.forget(key, call, err)
				return nil, err
			}
		}
		select {
		case <-call.done:
			if call.err == nil {
				return call.rep, nil
			}
			// A follower whose own context is still live should not be
			// penalized for the leader's cancellation: retry the whole
			// lookup and elect a new leader (the cache was not poisoned,
			// so this re-solves). The flight group classified the
			// completion, so every wait path applies the same rule.
			if !leader && ctx.Err() == nil && call.leaderCanceled {
				continue
			}
			return nil, call.err
		case <-ctx.Done():
			// The caller gives up waiting. The solve (if this caller led
			// it) sees the same context and aborts at its next iteration
			// boundary; followers keep waiting on their own contexts.
			return nil, ctx.Err()
		}
	}
}

// evaluateChained is the sweep-chain variant of evaluate: the cache and
// single-flight layers still apply, but the flight leader solves INLINE
// with the chain's own stateful solver instead of enqueueing to the
// worker pool — that is what lets consecutive points reuse one warm
// solver stack. The solved return reports whether this call ran the
// solver itself (leader, no cache hit), which is what the warm/cold
// chain metrics count.
func (e *Engine) evaluateChained(ctx context.Context, cfg core.Config, solver Solver) (rep *core.Report, solved bool, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, false, err
	}
	key := cfg.CanonicalKey()
	for {
		if rep, ok := e.cache.Get(key); ok {
			return rep, false, nil
		}
		call, leader := e.flight.join(key)
		if leader {
			start := time.Now()
			rep, err := solver(ctx, cfg)
			e.m.recordSolve(time.Since(start), err)
			if err == nil {
				e.cache.Add(key, rep)
			}
			e.flight.complete(key, call, rep, err)
			return rep, true, err
		}
		select {
		case <-call.done:
			if call.err == nil {
				return call.rep, false, nil
			}
			// Same follower-retry rule as evaluate: a live follower is not
			// penalized for the leader's cancellation.
			if ctx.Err() == nil && call.leaderCanceled {
				continue
			}
			return nil, false, call.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// Metrics returns the registry holding the engine's serving metrics,
// for exposition (the /metrics endpoint renders it).
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// CacheSnapshot dumps the report LRU for transfer (GET
// /v1/cache/snapshot). Reports are shared by pointer with the live
// cache; they are immutable once published, so serializing the snapshot
// concurrently with serving is safe.
func (e *Engine) CacheSnapshot() CacheSnapshot {
	return e.cache.Snapshot()
}

// RestoreCacheSnapshot merges a snapshot into the report LRU (PUT
// /v1/cache/snapshot) — the warm-rejoin path for a restarted shard.
// Entries that fail the key self-check are skipped, the local capacity
// bounds what sticks, and an unknown snapshot version is an error.
func (e *Engine) RestoreCacheSnapshot(s CacheSnapshot) (restored, skipped int, err error) {
	return e.cache.RestoreSnapshot(s)
}

// Stats snapshots the engine's serving metrics.
func (e *Engine) Stats() Stats {
	hits, misses, evictions := e.cache.Counters()
	var hitRate float64
	if total := hits + misses; total > 0 {
		hitRate = float64(hits) / float64(total)
	}
	cacheCap := e.opts.CacheSize
	if !e.cache.enabled() {
		cacheCap = 0
	}
	refreshes, restored := e.cache.RefreshCounters()
	meanMS, p50MS, p90MS, p99MS, maxMS, lastMS := e.m.latencySnapshot()
	active, done := e.jobs.counts()
	return Stats{
		Workers:             e.opts.Workers,
		BusyWorkers:         int(e.m.busyWorkers.Load()),
		QueueDepth:          len(e.queue),
		QueueCapacity:       cap(e.queue),
		CacheEnabled:        e.cache.enabled(),
		CacheHits:           hits,
		CacheMisses:         misses,
		CacheEvictions:      evictions,
		CacheHitRate:        hitRate,
		CacheSize:           e.cache.Len(),
		CacheCapacity:       cacheCap,
		CacheRefreshes:      refreshes,
		CacheRestored:       restored,
		Solves:              e.m.solves.Value(),
		SolveErrors:         e.m.solveErrors.Value(),
		QueueRejected:       e.m.queueRejected.Value(),
		SolveLatencyMeanMS:  meanMS,
		SolveLatencyP50MS:   p50MS,
		SolveLatencyP90MS:   p90MS,
		SolveLatencyP99MS:   p99MS,
		SolveLatencyMaxMS:   maxMS,
		SolveLatencyLastMS:  lastMS,
		JobsActive:          active,
		JobsDone:            done,
		SweepChains:         e.m.sweepChains.Value(),
		SweepSegments:       e.m.sweepSegments.Value(),
		SweepSteals:         e.m.sweepSteals.Value(),
		SweepPointsWarm:     e.m.sweepPointsWarm.Value(),
		SweepPointsCold:     e.m.sweepPointsCold.Value(),
		SweepPrefetches:     e.m.sweepPrefetches.Value(),
		SweepPrefetchErrors: e.m.sweepPrefetchErrors.Value(),
		KernelThreads:       num.KernelThreads(),
	}
}

// Shutdown stops accepting new work, drains queued and in-flight jobs,
// and waits for the workers to exit; ctx bounds the drain (on timeout
// the workers keep finishing in the background, but Shutdown returns
// ctx's error). Shutdown is idempotent.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.closeMu.Lock()
	if !e.closed {
		e.closed = true
		close(e.queue)
	}
	e.closeMu.Unlock()

	drained := make(chan struct{})
	go func() {
		e.workerWG.Wait()
		e.sweepWG.Wait() // sweep chains solve outside the worker pool
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("sim: shutdown drain: %w", ctx.Err())
	}
}
