package sim

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
)

// Request IDs tag every HTTP request so multi-line server logs (access
// line, encode failures, solver diagnostics) can be correlated. The ID
// is minted by the outermost middleware that sees the request —
// brightd's logging wrapper, or the handler itself when the wrapper is
// absent (tests, embedded use) — stored in the request context, and
// echoed to the client in the X-Request-ID response header.

type requestIDKey struct{}

// reqIDPrefix distinguishes processes so IDs stay unique across
// restarts; reqIDSeq distinguishes requests within one.
var (
	reqIDPrefix = func() string {
		var b [3]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "bright"
		}
		return hex.EncodeToString(b[:])
	}()
	reqIDSeq atomic.Uint64
)

func newRequestID() string {
	return fmt.Sprintf("%s-%06d", reqIDPrefix, reqIDSeq.Add(1))
}

// ContextWithRequestID returns ctx carrying the request ID.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the request ID carried by ctx, or "" when absent.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// EnsureRequestID returns a request whose context carries a request ID
// (minting one when absent) and the ID itself. The caller owns header
// propagation.
func EnsureRequestID(r *http.Request) (*http.Request, string) {
	if id := RequestID(r.Context()); id != "" {
		return r, id
	}
	id := newRequestID()
	return r.WithContext(ContextWithRequestID(r.Context(), id)), id
}

// withRequestIDs is the handler-level fallback: it guarantees every
// request reaching the mux has an ID and the response carries it.
func withRequestIDs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r, id := EnsureRequestID(r)
		if w.Header().Get("X-Request-ID") == "" {
			w.Header().Set("X-Request-ID", id)
		}
		next.ServeHTTP(w, r)
	})
}
