package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts Options) (*Engine, *httptest.Server) {
	t.Helper()
	e := newTestEngine(t, opts)
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)
	return e, srv
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestHTTPEvaluate(t *testing.T) {
	s := &countingSolver{}
	_, srv := newTestServer(t, Options{Workers: 2, Solver: s.solve})

	resp, body := postJSON(t, srv.URL+"/v1/evaluate", `{"flow_ml_min": 300}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var view ReportView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Config.FlowMLMin != 300 {
		t.Fatalf("override lost: %+v", view.Config)
	}
	// Unspecified fields default to the paper's nominal point.
	if view.Config.SupplyVoltage != 1.0 || view.Config.InletTempC != 27 {
		t.Fatalf("defaults lost: %+v", view.Config)
	}
	if view.ArrayCurrentA <= 0 || view.Summary == "" {
		t.Fatalf("view missing headline numbers: %+v", view)
	}
}

func TestHTTPEvaluateValidation(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, Solver: (&countingSolver{}).solve})
	resp, body := postJSON(t, srv.URL+"/v1/evaluate", `{"flow_ml_min": -10}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid config returned %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "flow") {
		t.Fatalf("error body does not explain the problem: %s", body)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/evaluate", `not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON returned %d", resp.StatusCode)
	}
}

func TestHTTPStatsHitRate(t *testing.T) {
	s := &countingSolver{}
	_, srv := newTestServer(t, Options{Workers: 2, Solver: s.solve})
	for k := 0; k < 3; k++ {
		resp, body := postJSON(t, srv.URL+"/v1/evaluate", `{}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", k, resp.StatusCode, body)
		}
	}
	var st Stats
	getJSON(t, srv.URL+"/v1/stats", &st)
	if st.CacheHitRate <= 0 {
		t.Fatalf("repeated identical requests left hit rate %g, want > 0", st.CacheHitRate)
	}
	if st.Solves != 1 || st.CacheHits != 2 {
		t.Fatalf("solves=%d hits=%d, want 1/2", st.Solves, st.CacheHits)
	}
	if st.Workers != 2 || st.QueueCapacity == 0 {
		t.Fatalf("pool stats missing: %+v", st)
	}
}

func TestHTTPSweepAndJobPolling(t *testing.T) {
	s := &countingSolver{}
	_, srv := newTestServer(t, Options{Workers: 4, Solver: s.solve})

	resp, body := postJSON(t, srv.URL+"/v1/sweep",
		`{"flows_ml_min": [100, 300, 676], "inlet_temps_c": [27, 37]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	var accepted struct {
		JobID string `json:"job_id"`
		Total int    `json:"total"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Total != 6 || accepted.JobID == "" {
		t.Fatalf("unexpected accept body: %s", body)
	}

	deadline := time.Now().Add(10 * time.Second)
	var view JobView
	for {
		getJSON(t, srv.URL+"/v1/jobs/"+accepted.JobID, &view)
		if view.State != JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", view)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if view.State != JobDone || view.Completed != 6 {
		t.Fatalf("job finished %s with %d/%d", view.State, view.Completed, view.Total)
	}
	for _, r := range view.Results {
		if r.Report == nil {
			t.Fatalf("point %d has no report: %+v", r.Index, r)
		}
	}
}

func TestHTTPSweepSurvivesSubmitterDisconnect(t *testing.T) {
	// The sweep must keep running after the submitting request's context
	// dies (the handler detaches the job from the request).
	s := &countingSolver{}
	e, srv := newTestServer(t, Options{Workers: 2, Solver: s.solve})

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/sweep",
		bytes.NewBufferString(`{"flows_ml_min": [100, 200]}`))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var accepted struct {
		JobID string `json:"job_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel() // simulate client disconnect right after the 202

	job, ok := e.Job(accepted.JobID)
	if !ok {
		t.Fatal("job vanished")
	}
	v := waitJob(t, job, 10*time.Second)
	if v.State != JobDone {
		t.Fatalf("job died with the request: %s", v.State)
	}
}

func TestHTTPUnknownJob(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, Solver: (&countingSolver{}).solve})
	resp := getJSON(t, srv.URL+"/v1/jobs/job-424242", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job returned %d", resp.StatusCode)
	}
}

func TestHTTPQueueFullIs503(t *testing.T) {
	s := &countingSolver{block: make(chan struct{})}
	_, srv := newTestServer(t, Options{Workers: 1, QueueDepth: 1, Solver: s.solve})
	defer close(s.block)

	// Saturate: 1 running + 1 queued (distinct configs so no dedup).
	// Plain http.Post here — t.Fatal must not run off the test goroutine.
	for k := 0; k < 2; k++ {
		body := fmt.Sprintf(`{"flow_ml_min": %d}`, 100+k)
		go func() {
			resp, err := http.Post(srv.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.calls.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("server never saturated")
		}
		time.Sleep(time.Millisecond)
	}
	var resp *http.Response
	for time.Now().Before(deadline) {
		resp, _ = postJSON(t, srv.URL+"/v1/evaluate", `{"flow_ml_min": 999}`)
		if resp.StatusCode == http.StatusServiceUnavailable {
			return // backpressure surfaced as 503
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("saturated server last returned %d, want 503", resp.StatusCode)
}
