package sim

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts Options) (*Engine, *httptest.Server) {
	t.Helper()
	e := newTestEngine(t, opts)
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)
	return e, srv
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestHTTPEvaluate(t *testing.T) {
	s := &countingSolver{}
	_, srv := newTestServer(t, Options{Workers: 2, Solver: s.solve})

	resp, body := postJSON(t, srv.URL+"/v1/evaluate", `{"flow_ml_min": 300}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var view ReportView
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.Config.FlowMLMin != 300 {
		t.Fatalf("override lost: %+v", view.Config)
	}
	// Unspecified fields default to the paper's nominal point.
	if view.Config.SupplyVoltage != 1.0 || view.Config.InletTempC != 27 {
		t.Fatalf("defaults lost: %+v", view.Config)
	}
	if view.ArrayCurrentA <= 0 || view.Summary == "" {
		t.Fatalf("view missing headline numbers: %+v", view)
	}
}

func TestHTTPEvaluateValidation(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, Solver: (&countingSolver{}).solve})
	resp, body := postJSON(t, srv.URL+"/v1/evaluate", `{"flow_ml_min": -10}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid config returned %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "flow") {
		t.Fatalf("error body does not explain the problem: %s", body)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/evaluate", `not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON returned %d", resp.StatusCode)
	}
}

func TestHTTPStatsHitRate(t *testing.T) {
	s := &countingSolver{}
	_, srv := newTestServer(t, Options{Workers: 2, Solver: s.solve})
	for k := 0; k < 3; k++ {
		resp, body := postJSON(t, srv.URL+"/v1/evaluate", `{}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", k, resp.StatusCode, body)
		}
	}
	var st Stats
	getJSON(t, srv.URL+"/v1/stats", &st)
	if st.CacheHitRate <= 0 {
		t.Fatalf("repeated identical requests left hit rate %g, want > 0", st.CacheHitRate)
	}
	if st.Solves != 1 || st.CacheHits != 2 {
		t.Fatalf("solves=%d hits=%d, want 1/2", st.Solves, st.CacheHits)
	}
	if st.Workers != 2 || st.QueueCapacity == 0 {
		t.Fatalf("pool stats missing: %+v", st)
	}
}

func TestHTTPSweepAndJobPolling(t *testing.T) {
	s := &countingSolver{}
	_, srv := newTestServer(t, Options{Workers: 4, Solver: s.solve})

	resp, body := postJSON(t, srv.URL+"/v1/sweep",
		`{"flows_ml_min": [100, 300, 676], "inlet_temps_c": [27, 37]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	var accepted struct {
		JobID string `json:"job_id"`
		Total int    `json:"total"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Total != 6 || accepted.JobID == "" {
		t.Fatalf("unexpected accept body: %s", body)
	}

	deadline := time.Now().Add(10 * time.Second)
	var view JobView
	for {
		getJSON(t, srv.URL+"/v1/jobs/"+accepted.JobID, &view)
		if view.State != JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", view)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if view.State != JobDone || view.Completed != 6 {
		t.Fatalf("job finished %s with %d/%d", view.State, view.Completed, view.Total)
	}
	for _, r := range view.Results {
		if r.Report == nil {
			t.Fatalf("point %d has no report: %+v", r.Index, r)
		}
	}
}

func TestHTTPSweepSurvivesSubmitterDisconnect(t *testing.T) {
	// The sweep must keep running after the submitting request's context
	// dies (the handler detaches the job from the request).
	s := &countingSolver{}
	e, srv := newTestServer(t, Options{Workers: 2, Solver: s.solve})

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/sweep",
		bytes.NewBufferString(`{"flows_ml_min": [100, 200]}`))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var accepted struct {
		JobID string `json:"job_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel() // simulate client disconnect right after the 202

	job, ok := e.Job(accepted.JobID)
	if !ok {
		t.Fatal("job vanished")
	}
	v := waitJob(t, job, 10*time.Second)
	if v.State != JobDone {
		t.Fatalf("job died with the request: %s", v.State)
	}
}

func TestHTTPUnknownJob(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, Solver: (&countingSolver{}).solve})
	resp := getJSON(t, srv.URL+"/v1/jobs/job-424242", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job returned %d", resp.StatusCode)
	}
}

func TestHTTPQueueFullIs503(t *testing.T) {
	s := &countingSolver{block: make(chan struct{})}
	_, srv := newTestServer(t, Options{Workers: 1, QueueDepth: 1, Solver: s.solve})
	defer close(s.block)

	// Saturate: 1 running + 1 queued (distinct configs so no dedup).
	// Plain http.Post here — t.Fatal must not run off the test goroutine.
	for k := 0; k < 2; k++ {
		body := fmt.Sprintf(`{"flow_ml_min": %d}`, 100+k)
		go func() {
			resp, err := http.Post(srv.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.calls.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("server never saturated")
		}
		time.Sleep(time.Millisecond)
	}
	var resp *http.Response
	var body []byte
	for time.Now().Before(deadline) {
		resp, body = postJSON(t, srv.URL+"/v1/evaluate", `{"flow_ml_min": 999}`)
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Backpressure surfaced as 503 — and as *retryable* 503:
			// Retry-After distinguishes a momentarily full queue from a
			// terminal shutdown (see TestHTTPClosedEngine503).
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("queue-full 503 missing Retry-After header")
			}
			var eb struct {
				Error     string `json:"error"`
				Retryable bool   `json:"retryable"`
			}
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("decoding 503 body %q: %v", body, err)
			}
			if !eb.Retryable || !strings.Contains(eb.Error, "queue full") {
				t.Fatalf("queue-full body %+v, want retryable with a queue-full error", eb)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("saturated server last returned %d, want 503", resp.StatusCode)
}

// TestHTTPClosedEngine503 pins the other half of the 503 split: a shut
// down engine answers 503 with no Retry-After and a non-retryable body,
// so clients can tell terminal shutdown from transient backpressure.
func TestHTTPClosedEngine503(t *testing.T) {
	e := New(Options{Workers: 1, Solver: (&countingSolver{}).solve})
	srv := httptest.NewServer(NewHandler(e))
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, ep := range []string{"/v1/evaluate", "/v1/sweep"} {
		resp, body := postJSON(t, srv.URL+ep, `{}`)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s on closed engine returned %d: %s", ep, resp.StatusCode, body)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			t.Fatalf("%s: terminal shutdown 503 carries Retry-After %q", ep, ra)
		}
		var eb struct {
			Error     string `json:"error"`
			Retryable bool   `json:"retryable"`
		}
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Fatalf("decoding 503 body %q: %v", body, err)
		}
		if eb.Retryable || !strings.Contains(eb.Error, "closed") {
			t.Fatalf("%s: shutdown body %+v, want non-retryable engine-closed error", ep, eb)
		}
	}
}

func TestHTTPOversizedSweepGrid(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, Solver: (&countingSolver{}).solve})
	axis := func(n int) string {
		vals := make([]string, n)
		for i := range vals {
			vals[i] = fmt.Sprintf("%d", 100+i)
		}
		return "[" + strings.Join(vals, ",") + "]"
	}
	// 17 * 16 * 16 = 4352 > MaxSweepPoints (4096).
	body := fmt.Sprintf(`{"flows_ml_min": %s, "inlet_temps_c": %s, "chip_loads": %s}`,
		axis(17), `[20,21,22,23,24,25,26,27,28,29,30,31,32,33,34,35]`,
		`[0.1,0.15,0.2,0.25,0.3,0.35,0.4,0.45,0.5,0.55,0.6,0.65,0.7,0.75,0.8,0.85]`)
	resp, respBody := postJSON(t, srv.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized sweep returned %d: %s", resp.StatusCode, respBody)
	}
	if !strings.Contains(string(respBody), "cap") {
		t.Fatalf("oversized-sweep error does not mention the cap: %s", respBody)
	}
}

func TestHTTPMalformedSweepBody(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, Solver: (&countingSolver{}).solve})
	resp, body := postJSON(t, srv.URL+"/v1/sweep", `{"flows_ml_min": "not-a-list"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed sweep body returned %d: %s", resp.StatusCode, body)
	}
}

func TestHTTPRequestIDAssigned(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, Solver: (&countingSolver{}).solve})
	r1 := getJSON(t, srv.URL+"/v1/stats", nil)
	r2 := getJSON(t, srv.URL+"/v1/stats", nil)
	id1, id2 := r1.Header.Get("X-Request-ID"), r2.Header.Get("X-Request-ID")
	if id1 == "" || id2 == "" {
		t.Fatalf("responses missing X-Request-ID: %q, %q", id1, id2)
	}
	if id1 == id2 {
		t.Fatalf("distinct requests shared request ID %q", id1)
	}
}

// failingWriter accepts headers but fails every body write, simulating
// a client that vanished after the status line went out.
type failingWriter struct {
	h http.Header
}

func (f *failingWriter) Header() http.Header {
	if f.h == nil {
		f.h = make(http.Header)
	}
	return f.h
}
func (f *failingWriter) WriteHeader(int)           {}
func (f *failingWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("connection gone") }

func TestWriteJSONLogsEncodeErrors(t *testing.T) {
	var buf bytes.Buffer
	prev := log.Writer()
	log.SetOutput(&buf)
	defer log.SetOutput(prev)

	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	req = req.WithContext(ContextWithRequestID(req.Context(), "test-rid-42"))
	writeJSON(&failingWriter{}, req, http.StatusOK, map[string]string{"k": "v"})

	out := buf.String()
	if !strings.Contains(out, "connection gone") {
		t.Fatalf("encode failure not logged: %q", out)
	}
	if !strings.Contains(out, "test-rid-42") {
		t.Fatalf("encode-failure log missing the request ID: %q", out)
	}
}

// parseMetrics reads Prometheus text exposition into series -> value.
func parseMetrics(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed metrics value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return parseMetrics(t, buf.String())
}

// TestHTTPMetricsEndToEnd runs the production solver through the full
// HTTP surface and asserts the /metrics exposition carries the whole
// pipeline's telemetry: serving counters and the solve-latency
// histogram from the engine registry, plus cosim fixed-point and Krylov
// iteration counters from obs.Default — and that the counters are
// monotone across scrapes.
func TestHTTPMetricsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline solve in -short mode")
	}
	_, srv := newTestServer(t, Options{Workers: 2})

	resp, body := postJSON(t, srv.URL+"/v1/evaluate", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate: %d: %s", resp.StatusCode, body)
	}
	m1 := scrapeMetrics(t, srv.URL)

	if m1["bright_solves_total"] < 1 {
		t.Fatalf("bright_solves_total = %g, want >= 1", m1["bright_solves_total"])
	}
	if m1["bright_solve_duration_seconds_count"] < 1 {
		t.Fatalf("solve latency histogram empty: %v", m1)
	}
	if m1[`bright_solve_duration_seconds_bucket{le="+Inf"}`] != m1["bright_solve_duration_seconds_count"] {
		t.Fatalf("histogram +Inf bucket disagrees with count")
	}
	if _, ok := m1["bright_queue_capacity"]; !ok {
		t.Fatalf("queue gauges missing: %v", m1)
	}
	if _, ok := m1["bright_cache_misses_total"]; !ok {
		t.Fatalf("cache counters missing: %v", m1)
	}
	// Solver telemetry from obs.Default: the evaluate above ran a real
	// co-simulation, which runs fixed-point iterations, thermal session
	// solves and BiCGSTAB solves.
	if m1["bright_cosim_iterations_total"] < 1 {
		t.Fatalf("cosim iterations not counted: %v", m1)
	}
	if m1[`bright_cosim_runs_total{outcome="converged"}`] < 1 {
		t.Fatalf("cosim convergence outcome not counted")
	}
	if m1[`bright_krylov_iterations_total{method="bicgstab"}`] < 1 {
		t.Fatalf("Krylov iterations not counted")
	}
	if m1[`bright_thermal_session_solves_total{warm="false"}`] < 1 {
		t.Fatalf("thermal session solves not counted")
	}

	// Monotonicity: another (distinct) solve strictly raises the solve
	// and iteration counters and never lowers any counter.
	resp, body = postJSON(t, srv.URL+"/v1/evaluate", `{"inlet_temp_c": 37}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second evaluate: %d: %s", resp.StatusCode, body)
	}
	m2 := scrapeMetrics(t, srv.URL)
	if m2["bright_solves_total"] <= m1["bright_solves_total"] {
		t.Fatalf("solves counter not monotone: %g -> %g",
			m1["bright_solves_total"], m2["bright_solves_total"])
	}
	if m2["bright_cosim_iterations_total"] <= m1["bright_cosim_iterations_total"] {
		t.Fatalf("cosim iteration counter not monotone")
	}
	for _, name := range []string{
		"bright_solve_errors_total", "bright_queue_rejected_total",
		"bright_cache_hits_total", "bright_cache_misses_total",
		`bright_krylov_iterations_total{method="bicgstab"}`,
	} {
		if m2[name] < m1[name] {
			t.Fatalf("counter %s went backwards: %g -> %g", name, m1[name], m2[name])
		}
	}
}

// The wrapper must satisfy the optional upgrade interfaces statically —
// otherwise net/http's type assertions on the wrapped writer fail and
// SSE flushing, hijacking and the sendfile fast path silently degrade.
var (
	_ http.Flusher  = (*statusRecorder)(nil)
	_ http.Hijacker = (*statusRecorder)(nil)
	_ io.ReaderFrom = (*statusRecorder)(nil)
)

// plainWriter is the minimal http.ResponseWriter: no Flusher, no
// Hijacker, no ReaderFrom. Its writes land in buf so fallback paths can
// be checked for data integrity.
type plainWriter struct {
	h      http.Header
	buf    bytes.Buffer
	status int
}

func (w *plainWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header)
	}
	return w.h
}
func (w *plainWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }
func (w *plainWriter) WriteHeader(code int)        { w.status = code }

type flushingWriter struct {
	plainWriter
	flushed bool
}

func (w *flushingWriter) Flush() { w.flushed = true }

type hijackableWriter struct {
	plainWriter
	hijacked bool
}

func (w *hijackableWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	w.hijacked = true
	return nil, nil, nil
}

type readerFromWriter struct {
	plainWriter
	delegated bool
}

func (w *readerFromWriter) ReadFrom(src io.Reader) (int64, error) {
	w.delegated = true
	return io.Copy(&w.buf, src)
}

// TestStatusRecorderInterfacePassthrough pins the passthrough contract
// with an interface-assertion table: each optional capability of the
// underlying writer must surface through the wrapper (delegation), and
// each missing capability must degrade the way net/http expects —
// Flush a no-op, Hijack a hard error, ReadFrom a plain copy.
func TestStatusRecorderInterfacePassthrough(t *testing.T) {
	tests := []struct {
		name          string
		underlying    http.ResponseWriter
		wantFlushed   func(http.ResponseWriter) bool
		wantHijackErr bool
		wantHijacked  func(http.ResponseWriter) bool
		wantDelegated func(http.ResponseWriter) bool
	}{
		{
			name:          "plain writer: no-op flush, hijack errors, copy fallback",
			underlying:    &plainWriter{},
			wantHijackErr: true,
		},
		{
			name:          "flusher delegates",
			underlying:    &flushingWriter{},
			wantFlushed:   func(w http.ResponseWriter) bool { return w.(*flushingWriter).flushed },
			wantHijackErr: true,
		},
		{
			name:         "hijacker delegates",
			underlying:   &hijackableWriter{},
			wantHijacked: func(w http.ResponseWriter) bool { return w.(*hijackableWriter).hijacked },
		},
		{
			name:          "readerFrom delegates",
			underlying:    &readerFromWriter{},
			wantDelegated: func(w http.ResponseWriter) bool { return w.(*readerFromWriter).delegated },
			wantHijackErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rec := &statusRecorder{ResponseWriter: tt.underlying, status: http.StatusOK}

			rec.Flush() // must never panic, whatever the underlying writer
			if tt.wantFlushed != nil && !tt.wantFlushed(tt.underlying) {
				t.Error("Flush not forwarded to the underlying http.Flusher")
			}

			_, _, err := rec.Hijack()
			if tt.wantHijackErr && err == nil {
				t.Error("Hijack on a non-Hijacker underlying writer returned nil error")
			}
			if !tt.wantHijackErr && err != nil {
				t.Errorf("Hijack: %v", err)
			}
			if tt.wantHijacked != nil && !tt.wantHijacked(tt.underlying) {
				t.Error("Hijack not forwarded to the underlying http.Hijacker")
			}

			const payload = "sendfile-sized body"
			n, err := rec.ReadFrom(strings.NewReader(payload))
			if err != nil || n != int64(len(payload)) {
				t.Fatalf("ReadFrom = (%d, %v), want (%d, nil)", n, err, len(payload))
			}
			if tt.wantDelegated != nil && !tt.wantDelegated(tt.underlying) {
				t.Error("ReadFrom not forwarded to the underlying io.ReaderFrom")
			}
			// Whichever path ran, the bytes must have landed.
			var got string
			switch u := tt.underlying.(type) {
			case *plainWriter:
				got = u.buf.String()
			case *flushingWriter:
				got = u.buf.String()
			case *hijackableWriter:
				got = u.buf.String()
			case *readerFromWriter:
				got = u.buf.String()
			}
			if got != payload {
				t.Errorf("ReadFrom wrote %q, want %q", got, payload)
			}
		})
	}
}

// TestAccessLogStreamingPassthrough drives the wrapper through a real
// net/http server: the handler's Flusher assertion must succeed behind
// WithAccessLog, which it would not if statusRecorder merely embedded
// the interface.
func TestAccessLogStreamingPassthrough(t *testing.T) {
	srv := httptest.NewServer(WithAccessLog(http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			f, ok := w.(http.Flusher)
			if !ok {
				http.Error(w, "no flusher behind the access-log wrapper", http.StatusInternalServerError)
				return
			}
			fmt.Fprint(w, "frame-1\n")
			f.Flush()
			fmt.Fprint(w, "frame-2\n")
		})))
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if string(body) != "frame-1\nframe-2\n" {
		t.Fatalf("streamed body %q", body)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("access-log wrapper did not assign X-Request-ID")
	}
}

func TestHTTPHealthz(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, Solver: (&countingSolver{}).solve})
	var body map[string]string
	resp := getJSON(t, srv.URL+"/healthz", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz returned %d", resp.StatusCode)
	}
	if body["status"] != "ok" {
		t.Fatalf("healthz body %v", body)
	}
}

// TestHTTPCacheSnapshotRoundTrip moves a warm cache between two engines
// over the HTTP surface — the cluster warm-rejoin path end to end: solve
// on A, GET A's snapshot, PUT it into B, and B answers the same configs
// from cache without solving.
func TestHTTPCacheSnapshotRoundTrip(t *testing.T) {
	sa := &countingSolver{}
	_, srvA := newTestServer(t, Options{Workers: 2, Solver: sa.solve})
	sb := &countingSolver{}
	_, srvB := newTestServer(t, Options{Workers: 2, Solver: sb.solve})

	for _, body := range []string{`{"flow_ml_min": 300}`, `{"flow_ml_min": 500}`} {
		resp, b := postJSON(t, srvA.URL+"/v1/evaluate", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warming A: %d: %s", resp.StatusCode, b)
		}
	}

	resp, err := http.Get(srvA.URL + "/v1/cache/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snapBody, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET snapshot: %d: %s", resp.StatusCode, snapBody)
	}
	var snap CacheSnapshot
	if err := json.Unmarshal(snapBody, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Version != CacheSnapshotVersion || len(snap.Entries) != 2 {
		t.Fatalf("snapshot version %d with %d entries, want v%d with 2",
			snap.Version, len(snap.Entries), CacheSnapshotVersion)
	}

	req, _ := http.NewRequest(http.MethodPut, srvB.URL+"/v1/cache/snapshot", bytes.NewReader(snapBody))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var put struct {
		Restored int `json:"restored"`
		Skipped  int `json:"skipped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&put); err != nil {
		t.Fatal(err)
	}
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if resp.StatusCode != http.StatusOK || put.Restored != 2 || put.Skipped != 0 {
		t.Fatalf("PUT snapshot: status %d, restored %d, skipped %d", resp.StatusCode, put.Restored, put.Skipped)
	}

	// B must now answer the warmed configs from cache: zero solves.
	for _, body := range []string{`{"flow_ml_min": 300}`, `{"flow_ml_min": 500}`} {
		resp, b := postJSON(t, srvB.URL+"/v1/evaluate", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replaying on B: %d: %s", resp.StatusCode, b)
		}
	}
	if n := sb.calls.Load(); n != 0 {
		t.Fatalf("B solved %d times after restore, want 0 (cache hits)", n)
	}
	var st Stats
	getJSON(t, srvB.URL+"/v1/stats", &st)
	if st.CacheHits != 2 || st.CacheRestored != 2 {
		t.Fatalf("B stats hits=%d restored=%d, want 2/2", st.CacheHits, st.CacheRestored)
	}
}

func TestHTTPCacheSnapshotVersionMismatch(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, Solver: (&countingSolver{}).solve})
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/cache/snapshot",
		strings.NewReader(`{"version": 99, "capacity": 4, "entries": []}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("version-99 snapshot returned %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "version") {
		t.Fatalf("version-mismatch error does not name the problem: %s", body)
	}
}

func TestHTTPStatsCacheDisabled(t *testing.T) {
	_, srv := newTestServer(t, Options{Workers: 1, CacheSize: -1, Solver: (&countingSolver{}).solve})
	for k := 0; k < 2; k++ {
		resp, body := postJSON(t, srv.URL+"/v1/evaluate", `{}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d: %s", k, resp.StatusCode, body)
		}
	}
	var st Stats
	getJSON(t, srv.URL+"/v1/stats", &st)
	if st.CacheEnabled {
		t.Fatalf("cache reported enabled with CacheSize -1: %+v", st)
	}
	if st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheHitRate != 0 {
		t.Fatalf("disabled cache accumulated counters: %+v", st)
	}
	if st.CacheCapacity != 0 || st.CacheSize != 0 {
		t.Fatalf("disabled cache reports capacity/size: %+v", st)
	}
	if st.Solves != 2 {
		t.Fatalf("solves = %d, want 2 (no memoization without a cache)", st.Solves)
	}
}
