package sim

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"bright/internal/core"
	"bright/internal/obs"
	"bright/internal/stream"
	"bright/internal/units"
)

// Request-body ceilings. Ordinary API payloads (configs, sweep specs)
// are a few KB, so 1 MiB is already generous; cache-snapshot PUTs carry
// a whole LRU dump on the cluster warm-rejoin path and get the same
// 64 MiB ceiling the coordinator's proxy allows. Anything larger is a
// hostile or broken client, and MaxBytesReader cuts it off instead of
// letting it stream unbounded data into the decoder.
const (
	maxRequestBody  = 1 << 20
	maxSnapshotBody = 64 << 20
)

// ReportView is the JSON-facing condensation of a core.Report: the
// headline quantities of every pipeline stage without the full field
// solutions (which run to megabytes of mesh data).
type ReportView struct {
	Config core.Config `json:"config"`

	// Array electrical operating point.
	ArrayCurrentA float64 `json:"array_current_a"`
	ArrayPowerW   float64 `json:"array_power_w"`
	DeliveredW    float64 `json:"delivered_w"`

	// Cache rail.
	CacheDemandW float64 `json:"cache_demand_w"`
	PowersCaches bool    `json:"powers_caches"`
	MinVCacheV   float64 `json:"min_v_cache_v"`

	// Thermal.
	PeakTempC   float64 `json:"peak_temp_c"`
	OutletTempC float64 `json:"outlet_temp_c"`

	// Hydraulics and net balance.
	PumpPowerW         float64 `json:"pump_power_w"`
	PressureDropBar    float64 `json:"pressure_drop_bar"`
	NetElectricalGainW float64 `json:"net_electrical_gain_w"`

	// Co-simulation diagnostics.
	CoSimIterations int  `json:"cosim_iterations"`
	CoSimConverged  bool `json:"cosim_converged"`

	// Summary is the human-readable block from Report.Summary().
	Summary string `json:"summary"`
}

// NewReportView condenses a full report.
func NewReportView(r *core.Report) ReportView {
	return ReportView{
		Config:             r.Config,
		ArrayCurrentA:      r.CoSim.Operating.Current,
		ArrayPowerW:        r.CoSim.Operating.Power,
		DeliveredW:         r.DeliveredW,
		CacheDemandW:       r.CacheDemandW,
		PowersCaches:       r.PowersCaches,
		MinVCacheV:         r.Grid.MinVCache,
		PeakTempC:          r.PeakTempC,
		OutletTempC:        units.KtoC(r.Thermal.OutletT),
		PumpPowerW:         r.Hydraulics.PumpPower,
		PressureDropBar:    units.PaToBar(r.Hydraulics.TotalDrop),
		NetElectricalGainW: r.NetElectricalGainW,
		CoSimIterations:    r.CoSim.Iterations,
		CoSimConverged:     r.CoSim.Converged,
		Summary:            r.Summary(),
	}
}

// EvaluateRequest is the /v1/evaluate body. Absent fields take the
// paper's nominal operating point (core.DefaultConfig).
type EvaluateRequest struct {
	FlowMLMin      *float64 `json:"flow_ml_min,omitempty"`
	InletTempC     *float64 `json:"inlet_temp_c,omitempty"`
	SupplyVoltage  *float64 `json:"supply_voltage,omitempty"`
	ChipLoad       *float64 `json:"chip_load,omitempty"`
	ManifoldK      *float64 `json:"manifold_k,omitempty"`
	PumpEfficiency *float64 `json:"pump_efficiency,omitempty"`
}

// Config applies the request's overrides on top of the default config.
func (r EvaluateRequest) Config() core.Config {
	cfg := core.DefaultConfig()
	set := func(dst *float64, src *float64) {
		if src != nil {
			*dst = *src
		}
	}
	set(&cfg.FlowMLMin, r.FlowMLMin)
	set(&cfg.InletTempC, r.InletTempC)
	set(&cfg.SupplyVoltage, r.SupplyVoltage)
	set(&cfg.ChipLoad, r.ChipLoad)
	set(&cfg.ManifoldK, r.ManifoldK)
	set(&cfg.PumpEfficiency, r.PumpEfficiency)
	return cfg
}

type errorBody struct {
	Error string `json:"error"`
	// Retryable marks transient conditions (queue backpressure) apart
	// from terminal ones (engine shutdown): both are 503, but only the
	// former is worth retrying against this instance.
	Retryable bool `json:"retryable"`
}

// writeJSON encodes v after the status line. An encode failure at that
// point cannot change the response code anymore, but it must not vanish
// either — a truncated body is otherwise undiagnosable — so it is
// logged with the request ID.
func writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		id := RequestID(r.Context())
		if id == "" {
			id = "-"
		}
		log.Printf("sim: rid=%s %s %s: encoding %T response after status %d: %v",
			id, r.Method, r.URL.Path, v, status, err)
	}
}

func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeJSON(w, r, status, errorBody{Error: err.Error()})
}

// statusFor maps engine errors to HTTP statuses: backpressure and
// shutdown are 503, cancellation/timeout is 504, validation and
// everything else is 400.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadRequest
	}
}

// writeEngineError distinguishes the two 503 causes that statusFor
// conflates from the client's point of view: a full queue is retryable
// backpressure (Retry-After says so), engine shutdown is terminal for
// this instance (no Retry-After; go elsewhere).
func writeEngineError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, r, http.StatusServiceUnavailable,
			errorBody{Error: err.Error(), Retryable: true})
	case errors.Is(err, ErrClosed):
		writeJSON(w, r, http.StatusServiceUnavailable,
			errorBody{Error: err.Error(), Retryable: false})
	default:
		writeError(w, r, statusFor(err), err)
	}
}

// HandlerOption customizes NewHandler's HTTP surface.
type HandlerOption func(*handlerConfig)

type handlerConfig struct {
	stream *stream.Manager
}

// WithStreamManager mounts the streaming digital-twin session API
// (/v1/sessions...) alongside the evaluation endpoints, folds the
// manager's aggregate counters into /v1/stats (under "stream") and its
// bright_stream_* series into /metrics.
func WithStreamManager(m *stream.Manager) HandlerOption {
	return func(c *handlerConfig) { c.stream = m }
}

// statsResponse embeds the engine stats (keeping the legacy flat JSON
// shape) and appends the streaming-session aggregates when a stream
// manager is mounted.
type statsResponse struct {
	Stats
	Stream *stream.Stats `json:"stream,omitempty"`
}

// NewHandler wires the engine's HTTP surface:
//
//	POST   /v1/evaluate  — solve one configuration (synchronous)
//	POST   /v1/sweep     — submit a batched sweep, returns a job id
//	GET    /v1/jobs/{id} — poll a sweep job (state + streamed results)
//	DELETE /v1/jobs/{id} — cancel a sweep job's remaining points
//	GET    /v1/stats     — serving metrics (cache, queue, latency)
//	GET    /metrics      — Prometheus text exposition: the engine's
//	                       registry plus obs.Default (solver telemetry
//	                       from num, cosim and thermal)
//
// With WithStreamManager, the streaming session API of internal/stream
// (/v1/sessions and friends) is mounted on the same mux.
//
// Every response carries an X-Request-ID header (minted here unless an
// outer middleware already assigned one via EnsureRequestID). Sweep
// jobs are detached from the submitting request's context (they outlive
// it by design); they stop on engine shutdown or Job.Cancel.
func NewHandler(e *Engine, opts ...HandlerOption) http.Handler {
	var hc handlerConfig
	for _, o := range opts {
		o(&hc)
	}
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/evaluate", func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
		var req EvaluateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		rep, err := e.Evaluate(r.Context(), req.Config())
		if err != nil {
			writeEngineError(w, r, err)
			return
		}
		writeJSON(w, r, http.StatusOK, NewReportView(rep))
	})

	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
		var spec SweepSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding sweep spec: %w", err))
			return
		}
		// Detach from the request context: the job must keep running
		// after this response is written.
		//lint:ignore ctxpropagate sweep jobs outlive the submitting request by design
		job, err := e.SubmitSweep(context.Background(), spec)
		if err != nil {
			writeEngineError(w, r, err)
			return
		}
		writeJSON(w, r, http.StatusAccepted, map[string]any{
			"job_id": job.ID,
			"total":  job.Total,
		})
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := e.Job(r.PathValue("id"))
		if !ok {
			writeError(w, r, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, r, http.StatusOK, job.Snapshot())
	})

	// Cancel a sweep job's remaining points; already-solved points stay
	// in the snapshot. Idempotent — canceling a finished job is a no-op.
	// The cluster coordinator uses this to retire a superseded sub-job
	// after re-balancing its chain onto an idle shard.
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := e.Job(r.PathValue("id"))
		if !ok {
			writeError(w, r, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		job.Cancel()
		writeJSON(w, r, http.StatusOK, job.Snapshot())
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		resp := statsResponse{Stats: e.Stats()}
		if hc.stream != nil {
			st := hc.stream.Stats()
			resp.Stream = &st
		}
		writeJSON(w, r, http.StatusOK, resp)
	})

	// Liveness probe: answers as long as the process accepts requests.
	// Deliberately free of engine locks so a wedged solve cannot make a
	// healthy-but-busy shard look dead to the cluster coordinator.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, r, http.StatusOK, map[string]string{"status": "ok"})
	})

	// Cache snapshot transfer, the cluster warm-rejoin path: GET dumps
	// the report LRU (oldest first), PUT merges a previously captured
	// dump back in. The payload is versioned JSON; a PUT carrying a
	// version this build does not speak is a 400, and entries whose key
	// fails the canonical-key self-check are skipped, not trusted.
	mux.HandleFunc("GET /v1/cache/snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, r, http.StatusOK, e.CacheSnapshot())
	})
	mux.HandleFunc("PUT /v1/cache/snapshot", func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxSnapshotBody)
		var snap CacheSnapshot
		if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
			writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding cache snapshot: %w", err))
			return
		}
		restored, skipped, err := e.RestoreCacheSnapshot(snap)
		if err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, r, http.StatusOK, map[string]int{"restored": restored, "skipped": skipped})
	})

	registries := []*obs.Registry{e.Metrics(), obs.Default}
	if hc.stream != nil {
		hc.stream.RegisterRoutes(mux)
		registries = append(registries, hc.stream.Metrics())
	}
	mux.Handle("GET /metrics", obs.Handler(registries...))

	return withRequestIDs(mux)
}

// HTTP-surface telemetry for WithAccessLog, alongside the solver
// counters in obs.Default so one /metrics scrape carries both. Status
// classes rather than exact codes keep the cardinality fixed.
var (
	httpRequests = map[int]*obs.Counter{
		2: obs.Default.Counter("bright_http_requests_total", "HTTP responses by status class.", obs.L("class", "2xx")),
		3: obs.Default.Counter("bright_http_requests_total", "HTTP responses by status class.", obs.L("class", "3xx")),
		4: obs.Default.Counter("bright_http_requests_total", "HTTP responses by status class.", obs.L("class", "4xx")),
		5: obs.Default.Counter("bright_http_requests_total", "HTTP responses by status class.", obs.L("class", "5xx")),
	}
	httpDuration = obs.Default.Histogram("bright_http_request_duration_seconds",
		"End-to-end HTTP request latency.", obs.DefLatencyBuckets)
)

// statusRecorder captures the response code for the access log while
// forwarding the optional http.ResponseWriter upgrade interfaces. The
// forwarding matters: a wrapper that only embeds the interface hides
// Flusher/Hijacker/ReaderFrom from type assertions, so SSE frames
// buffer behind the wrapper, connection takeover silently degrades to
// a 500 and sendfile-style copies fall back to userspace buffers.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streamed responses (SSE,
// NDJSON session frames) are not buffered behind the access-log
// wrapper. http.ResponseWriter implementations without Flusher make it
// a no-op, matching net/http's own behavior.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Hijack forwards connection takeover to the underlying writer. Unlike
// Flush there is no safe no-op: a handler that asked to hijack owns the
// connection afterwards, so an underlying writer without the capability
// is a hard error the handler must see.
func (r *statusRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	hj, ok := r.ResponseWriter.(http.Hijacker)
	if !ok {
		return nil, nil, fmt.Errorf("sim: underlying ResponseWriter (%T) does not support hijacking", r.ResponseWriter)
	}
	return hj.Hijack()
}

// ReadFrom forwards to the underlying writer's io.ReaderFrom fast path
// (net/http uses it for sendfile on file-backed responses) and falls
// back to a plain copy when the underlying writer lacks one.
func (r *statusRecorder) ReadFrom(src io.Reader) (int64, error) {
	if rf, ok := r.ResponseWriter.(io.ReaderFrom); ok {
		return rf.ReadFrom(src)
	}
	return io.Copy(onlyWriter{r.ResponseWriter}, src)
}

// onlyWriter strips every non-Write method so the io.Copy fallback in
// ReadFrom cannot recurse into ReadFrom itself.
type onlyWriter struct{ io.Writer }

// WithAccessLog assigns each request its ID (echoed in the X-Request-ID
// response header and every related server log line), records the HTTP
// telemetry, and writes the access log line. It is the outermost
// middleware of brightd — both the single-node daemon and the cluster
// coordinator wrap their handlers with it.
func WithAccessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r, id := EnsureRequestID(r)
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		httpDuration.Observe(elapsed.Seconds())
		if c, ok := httpRequests[rec.status/100]; ok {
			c.Inc()
		}
		log.Printf("rid=%s %s %s -> %d (%s)", id, r.Method, r.URL.Path, rec.status,
			elapsed.Round(time.Millisecond))
	})
}
