package sim

import (
	"context"
	"fmt"
	"sync"
	"time"

	"bright/internal/core"
)

// MaxSweepPoints bounds a single sweep's grid so one request cannot
// enqueue unbounded work.
const MaxSweepPoints = 4096

// SweepSpec describes a batched design-space sweep: the cartesian
// product of the listed axis values, each applied on top of Base. An
// empty axis keeps Base's value for that field, so a spec with a single
// populated axis is a 1-D sweep.
type SweepSpec struct {
	// Base is the configuration the axes override; zero value means
	// core.DefaultConfig().
	Base *core.Config `json:"base,omitempty"`
	// Axes (any may be empty):
	FlowsMLMin     []float64 `json:"flows_ml_min,omitempty"`
	InletTempsC    []float64 `json:"inlet_temps_c,omitempty"`
	SupplyVoltages []float64 `json:"supply_voltages,omitempty"`
	ChipLoads      []float64 `json:"chip_loads,omitempty"`
}

// Grid expands the spec into the full list of configurations, in
// row-major axis order (flow outermost, load innermost).
func (s SweepSpec) Grid() ([]core.Config, error) {
	base := core.DefaultConfig()
	if s.Base != nil {
		base = *s.Base
	}
	axis := func(vals []float64, fallback float64) []float64 {
		if len(vals) == 0 {
			return []float64{fallback}
		}
		return vals
	}
	flows := axis(s.FlowsMLMin, base.FlowMLMin)
	inlets := axis(s.InletTempsC, base.InletTempC)
	volts := axis(s.SupplyVoltages, base.SupplyVoltage)
	loads := axis(s.ChipLoads, base.ChipLoad)

	n := len(flows) * len(inlets) * len(volts) * len(loads)
	if n == 0 {
		return nil, fmt.Errorf("sim: empty sweep grid")
	}
	if n > MaxSweepPoints {
		return nil, fmt.Errorf("sim: sweep grid has %d points, cap is %d", n, MaxSweepPoints)
	}
	grid := make([]core.Config, 0, n)
	for _, f := range flows {
		for _, t := range inlets {
			for _, v := range volts {
				for _, l := range loads {
					cfg := base
					cfg.FlowMLMin, cfg.InletTempC, cfg.SupplyVoltage, cfg.ChipLoad = f, t, v, l
					if err := cfg.Validate(); err != nil {
						return nil, fmt.Errorf("sim: sweep point %d: %w", len(grid), err)
					}
					grid = append(grid, cfg)
				}
			}
		}
	}
	return grid, nil
}

// JobState is the lifecycle of a sweep job.
type JobState string

const (
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"   // at least one point errored
	JobCanceled JobState = "canceled" // job context canceled before completion
)

// PointResult is one solved sweep point, streamed into the job as
// workers complete it (order follows completion, not grid order; Index
// gives the grid position).
type PointResult struct {
	Index      int         `json:"index"`
	Config     core.Config `json:"config"`
	Report     *ReportView `json:"report,omitempty"`
	Error      string      `json:"error,omitempty"`
	DurationMS float64     `json:"duration_ms"`
}

// Job is an asynchronous sweep: submitted once, polled for state and
// incrementally streamed results.
type Job struct {
	ID    string
	Total int

	mu        sync.Mutex
	state     JobState
	results   []PointResult
	completed int
	failed    int
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc
}

// JobView is a poll snapshot of a job, shaped for JSON.
type JobView struct {
	ID        string        `json:"id"`
	State     JobState      `json:"state"`
	Total     int           `json:"total"`
	Completed int           `json:"completed"`
	Failed    int           `json:"failed"`
	ElapsedMS float64       `json:"elapsed_ms"`
	Results   []PointResult `json:"results"`
}

// Snapshot returns a copy of the job's current state; the results slice
// is copied so callers can serialize it without holding the job lock.
func (j *Job) Snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := j.finished
	if end.IsZero() {
		end = time.Now()
	}
	out := JobView{
		ID:        j.ID,
		State:     j.state,
		Total:     j.Total,
		Completed: j.completed,
		Failed:    j.failed,
		ElapsedMS: float64(end.Sub(j.started)) / float64(time.Millisecond),
		Results:   append([]PointResult(nil), j.results...),
	}
	return out
}

// Cancel aborts the job's remaining points; already-solved points stay.
func (j *Job) Cancel() { j.cancel() }

func (j *Job) record(r PointResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.results = append(j.results, r)
	j.completed++
	if r.Error != "" {
		j.failed++
	}
}

func (j *Job) finish(ctxErr error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	switch {
	case ctxErr != nil:
		j.state = JobCanceled
	case j.failed > 0:
		j.state = JobFailed
	default:
		j.state = JobDone
	}
}

// jobRegistry tracks submitted jobs by ID.
type jobRegistry struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*Job
}

func newJobRegistry() *jobRegistry {
	return &jobRegistry{jobs: make(map[string]*Job)}
}

func (r *jobRegistry) add(j *Job) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	j.ID = fmt.Sprintf("job-%06d", r.seq)
	r.jobs[j.ID] = j
	return j.ID
}

func (r *jobRegistry) get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

func (r *jobRegistry) counts() (active, done int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, j := range r.jobs {
		j.mu.Lock()
		if j.state == JobRunning {
			active++
		} else {
			done++
		}
		j.mu.Unlock()
	}
	return active, done
}

// gridPoint is one sweep point with its grid position.
type gridPoint struct {
	idx int
	cfg core.Config
}

// chainGrid splits a row-major sweep grid into chains: maximal runs of
// consecutive points sharing a hydrodynamic condition (ChainKey, i.e.
// FlowMLMin and InletTempC up to solver tolerance). Because Grid()
// nests flow outermost and load innermost, points sharing the
// hydrodynamic condition — and therefore the thermal system matrix —
// are always contiguous, so each chain can run sequentially on one
// cached solver stack with neighbor warm starts. The cluster coordinator
// partitions on the same key so a chain never splits across shards.
func chainGrid(grid []core.Config) [][]gridPoint {
	var chains [][]gridPoint
	prevKey := ""
	for i, cfg := range grid {
		key := cfg.ChainKey()
		if i == 0 || key != prevKey {
			chains = append(chains, nil)
		}
		prevKey = key
		chains[len(chains)-1] = append(chains[len(chains)-1], gridPoint{idx: i, cfg: cfg})
	}
	return chains
}

// SubmitSweep expands the spec into warm-start chains (runs of
// grid-adjacent points sharing the hydrodynamic condition), splits long
// chains into bounded segments (Options.SweepSegment), and executes the
// segment plan on a work-stealing pool of up to Options.Workers
// goroutines, returning immediately with a pollable Job. Each segment
// runs sequentially on its own stateful solver from Options.BatchChain:
// every point after the segment's first warm-starts from its neighbor's
// converged thermal and PDN state, so batched sweeps amortize assembly,
// preconditioner setup and most Krylov iterations, while a skewed grid
// (one long chain among short ones) no longer serializes behind a
// single goroutine — idle workers steal queued segments from loaded
// ones. The segment plan depends only on the grid and the bound, never
// on worker count or timing, so per-point outputs are bitwise identical
// across worker counts and steal schedules; only completion order
// varies. Points still flow through the cache/single-flight path, so a
// sweep revisiting known configurations is mostly cache hits. Segment
// solves run inline on the sweep workers, not on the queue; the job
// runs until done or until ctx (or Job.Cancel) cancels it.
func (e *Engine) SubmitSweep(ctx context.Context, spec SweepSpec) (*Job, error) {
	e.closeMu.RLock()
	closed := e.closed
	e.closeMu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	grid, err := spec.Grid()
	if err != nil {
		return nil, err
	}
	jobCtx, cancel := context.WithCancel(ctx)
	j := &Job{
		Total:   len(grid),
		state:   JobRunning,
		started: time.Now(),
		cancel:  cancel,
	}
	e.jobs.add(j)

	chains := chainGrid(grid)
	// Chains are counted at plan time; a job canceled mid-flight still
	// reports the chains it planned, matching Total's planned points.
	e.m.sweepChains.Add(uint64(len(chains)))
	segs := planSegments(chains, e.opts.SweepSegment)
	workers := e.opts.Workers
	if workers > len(segs) {
		workers = len(segs)
	}
	sched := newSegmentScheduler(segs, workers)

	e.sweepWG.Add(1)
	go func() {
		defer e.sweepWG.Done()
		defer cancel()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for jobCtx.Err() == nil {
					seg, stolen := sched.next(w)
					if seg == nil {
						return
					}
					if stolen {
						e.m.sweepSteals.Inc()
					}
					e.m.sweepSegments.Inc()
					e.runSegment(jobCtx, j, seg.pts)
				}
			}(w)
		}
		wg.Wait()
		j.finish(jobCtx.Err())
	}()
	return j, nil
}

// runSegment walks one segment sequentially on a fresh chain solver:
// prefetch the segment's points, then solve them in grid order with
// neighbor warm starts. A segment's first solved point is cold (it pays
// the solver-stack setup, exactly like a chain head before
// segmentation), the rest are warm.
func (e *Engine) runSegment(jobCtx context.Context, j *Job, pts []gridPoint) {
	solver, prefetch := e.opts.BatchChain()
	if prefetch != nil && len(pts) > 1 {
		cfgs := make([]core.Config, len(pts))
		for i, pt := range pts {
			cfgs[i] = pt.cfg
		}
		if err := prefetch(jobCtx, cfgs); err != nil {
			// Nothing is lost: every point still solves in the
			// sequential walk below, just without the batched
			// head start.
			e.m.sweepPrefetchErrors.Inc()
		} else {
			e.m.sweepPrefetches.Inc()
		}
	}
	solved := 0
	for _, pt := range pts {
		if jobCtx.Err() != nil {
			return
		}
		e.closeMu.RLock()
		engineClosed := e.closed
		e.closeMu.RUnlock()
		if engineClosed {
			j.record(PointResult{Index: pt.idx, Config: pt.cfg, Error: ErrClosed.Error()})
			continue
		}
		start := time.Now()
		rep, didSolve, err := e.evaluateChained(jobCtx, pt.cfg, solver)
		if didSolve {
			if solved > 0 {
				e.m.sweepPointsWarm.Inc()
			} else {
				e.m.sweepPointsCold.Inc()
			}
			solved++
		}
		pr := PointResult{
			Index:      pt.idx,
			Config:     pt.cfg,
			DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
		}
		if err != nil {
			pr.Error = err.Error()
		} else {
			v := NewReportView(rep)
			pr.Report = &v
		}
		j.record(pr)
	}
}

// Job returns the job with the given ID.
func (e *Engine) Job(id string) (*Job, bool) {
	return e.jobs.get(id)
}
