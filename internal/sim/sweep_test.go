package sim

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bright/internal/core"
	"bright/internal/obs"
)

var errSolverBoom = errors.New("synthetic solver failure")

func TestSweepGridExpansion(t *testing.T) {
	spec := SweepSpec{
		FlowsMLMin:  []float64{100, 676},
		InletTempsC: []float64{27, 37, 47},
	}
	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 6 {
		t.Fatalf("grid has %d points, want 2*3=6", len(grid))
	}
	// Unswept axes keep the base (default) values.
	def := core.DefaultConfig()
	for k, cfg := range grid {
		if cfg.SupplyVoltage != def.SupplyVoltage || cfg.PumpEfficiency != def.PumpEfficiency {
			t.Fatalf("point %d lost base values: %+v", k, cfg)
		}
	}
	// Row-major: flow outermost.
	if grid[0].FlowMLMin != 100 || grid[3].FlowMLMin != 676 {
		t.Fatalf("unexpected axis order: %+v", grid)
	}
}

// TestSweepGridRowMajorOrder pins the exact expansion order of Grid():
// flow outermost, then inlet temperature, then supply voltage, with
// chip load innermost. chainGrid and the batch solver's session reuse
// both depend on this ordering, so it is a golden test — any change to
// the nesting must update this table deliberately.
func TestSweepGridRowMajorOrder(t *testing.T) {
	spec := SweepSpec{
		FlowsMLMin:     []float64{100, 676},
		InletTempsC:    []float64{27, 47},
		SupplyVoltages: []float64{0.9, 1.0},
		ChipLoads:      []float64{0.5, 1.0},
	}
	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	want := [][4]float64{ // {flow, inlet, voltage, load}
		{100, 27, 0.9, 0.5}, {100, 27, 0.9, 1.0}, {100, 27, 1.0, 0.5}, {100, 27, 1.0, 1.0},
		{100, 47, 0.9, 0.5}, {100, 47, 0.9, 1.0}, {100, 47, 1.0, 0.5}, {100, 47, 1.0, 1.0},
		{676, 27, 0.9, 0.5}, {676, 27, 0.9, 1.0}, {676, 27, 1.0, 0.5}, {676, 27, 1.0, 1.0},
		{676, 47, 0.9, 0.5}, {676, 47, 0.9, 1.0}, {676, 47, 1.0, 0.5}, {676, 47, 1.0, 1.0},
	}
	if len(grid) != len(want) {
		t.Fatalf("grid has %d points, want %d", len(grid), len(want))
	}
	for k, w := range want {
		got := [4]float64{grid[k].FlowMLMin, grid[k].InletTempC, grid[k].SupplyVoltage, grid[k].ChipLoad}
		if got != w {
			t.Fatalf("point %d = %v, want %v (row-major order broken)", k, got, w)
		}
	}
}

// TestChainGrid: the 2x2x2x2 grid above must split into 4 chains of 4 —
// one per (flow, inlet) pair — with contiguous, increasing indices.
func TestChainGrid(t *testing.T) {
	spec := SweepSpec{
		FlowsMLMin:     []float64{100, 676},
		InletTempsC:    []float64{27, 47},
		SupplyVoltages: []float64{0.9, 1.0},
		ChipLoads:      []float64{0.5, 1.0},
	}
	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	chains := chainGrid(grid)
	if len(chains) != 4 {
		t.Fatalf("got %d chains, want 4 (one per hydrodynamic condition)", len(chains))
	}
	next := 0
	for c, chain := range chains {
		if len(chain) != 4 {
			t.Fatalf("chain %d has %d points, want 4", c, len(chain))
		}
		for _, pt := range chain {
			if pt.idx != next {
				t.Fatalf("chain %d: index %d, want %d (chains must cover the grid in order)", c, pt.idx, next)
			}
			if pt.cfg.FlowMLMin != chain[0].cfg.FlowMLMin || pt.cfg.InletTempC != chain[0].cfg.InletTempC {
				t.Fatalf("chain %d mixes hydrodynamic conditions: %+v", c, pt.cfg)
			}
			next++
		}
	}
	if next != len(grid) {
		t.Fatalf("chains cover %d points, want %d", next, len(grid))
	}
}

func TestSweepGridCustomBase(t *testing.T) {
	base := core.DefaultConfig()
	base.PumpEfficiency = 0.7
	spec := SweepSpec{Base: &base, ChipLoads: []float64{0.5, 1.0}}
	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if len(grid) != 2 || grid[0].PumpEfficiency != 0.7 {
		t.Fatalf("base override lost: %+v", grid)
	}
}

func TestSweepGridRejectsOversizeAndInvalid(t *testing.T) {
	big := make([]float64, 100)
	for k := range big {
		big[k] = float64(k + 1)
	}
	if _, err := (SweepSpec{FlowsMLMin: big, InletTempsC: big[:50]}).Grid(); err == nil {
		t.Fatal("5000-point grid accepted beyond MaxSweepPoints")
	}
	if _, err := (SweepSpec{FlowsMLMin: []float64{-5}}).Grid(); err == nil {
		t.Fatal("invalid sweep point accepted")
	}
}

func waitJob(t *testing.T, j *Job, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := j.Snapshot()
		if v.State != JobRunning {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v (%d/%d)", v.ID, v.State, timeout, v.Completed, v.Total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSweepJobCompletesAllPoints(t *testing.T) {
	s := &countingSolver{}
	e := newTestEngine(t, Options{Workers: 4, QueueDepth: 8, Solver: s.solve})
	job, err := e.SubmitSweep(context.Background(), SweepSpec{
		FlowsMLMin:  []float64{100, 300, 676},
		InletTempsC: []float64{27, 37},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := waitJob(t, job, 10*time.Second)
	if v.State != JobDone {
		t.Fatalf("job state %s, want done", v.State)
	}
	if v.Completed != 6 || len(v.Results) != 6 || v.Failed != 0 {
		t.Fatalf("completed=%d results=%d failed=%d, want 6/6/0", v.Completed, len(v.Results), v.Failed)
	}
	// Every grid index appears exactly once.
	seen := make(map[int]bool)
	for _, r := range v.Results {
		if r.Report == nil || r.Error != "" {
			t.Fatalf("point %d: %+v", r.Index, r)
		}
		if seen[r.Index] {
			t.Fatalf("index %d reported twice", r.Index)
		}
		seen[r.Index] = true
	}
	if s.calls.Load() != 6 {
		t.Fatalf("solver ran %d times, want 6", s.calls.Load())
	}
}

// TestSweepSharesCacheWithEvaluate: a sweep over already-solved points
// must be served from the cache, not re-solved.
func TestSweepSharesCacheWithEvaluate(t *testing.T) {
	s := &countingSolver{}
	e := newTestEngine(t, Options{Workers: 2, Solver: s.solve})
	for _, flow := range []float64{100, 200} {
		if _, err := e.Evaluate(context.Background(), cfgWithFlow(flow)); err != nil {
			t.Fatal(err)
		}
	}
	job, err := e.SubmitSweep(context.Background(), SweepSpec{FlowsMLMin: []float64{100, 200, 300}})
	if err != nil {
		t.Fatal(err)
	}
	v := waitJob(t, job, 10*time.Second)
	if v.State != JobDone {
		t.Fatalf("job state %s", v.State)
	}
	if got := s.calls.Load(); got != 3 { // 2 warm-up + 1 new point
		t.Fatalf("solver ran %d times, want 3 (two sweep points cached)", got)
	}
}

func TestSweepJobCancel(t *testing.T) {
	s := &countingSolver{block: make(chan struct{})}
	e := newTestEngine(t, Options{Workers: 1, QueueDepth: 4, Solver: s.solve})
	flows := make([]float64, 20)
	for k := range flows {
		flows[k] = float64(100 + k)
	}
	job, err := e.SubmitSweep(context.Background(), SweepSpec{FlowsMLMin: flows})
	if err != nil {
		t.Fatal(err)
	}
	// Let the first point start solving, then cancel the job.
	deadline := time.Now().Add(2 * time.Second)
	for s.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweep never started")
		}
		time.Sleep(time.Millisecond)
	}
	job.Cancel()
	v := waitJob(t, job, 10*time.Second)
	if v.State != JobCanceled {
		t.Fatalf("canceled job reports %s", v.State)
	}
	if v.Completed >= v.Total {
		t.Fatalf("cancellation did not stop the sweep: %d/%d", v.Completed, v.Total)
	}
	close(s.block)
}

func TestSweepFailedPointMarksJobFailed(t *testing.T) {
	s := &countingSolver{err: errSolverBoom}
	e := newTestEngine(t, Options{Workers: 2, Solver: s.solve})
	job, err := e.SubmitSweep(context.Background(), SweepSpec{FlowsMLMin: []float64{100, 200}})
	if err != nil {
		t.Fatal(err)
	}
	v := waitJob(t, job, 10*time.Second)
	if v.State != JobFailed || v.Failed != 2 {
		t.Fatalf("state=%s failed=%d, want failed/2", v.State, v.Failed)
	}
}

// krylovIterations reads the process-wide Krylov iteration counters.
// Registration is idempotent, so this returns the same instruments the
// solvers in internal/num bump.
func krylovIterations() uint64 {
	cg := obs.Default.Counter("bright_krylov_iterations_total",
		"Krylov iterations spent inside SparseSolver.Solve, by method.", obs.L("method", "cg"))
	bicg := obs.Default.Counter("bright_krylov_iterations_total",
		"Krylov iterations spent inside SparseSolver.Solve, by method.", obs.L("method", "bicgstab"))
	return cg.Value() + bicg.Value()
}

// TestSweepWarmStartSavesKrylovIterations is the issue's acceptance
// test: a chained 1-D sweep (16 load points under one hydrodynamic
// condition) must spend measurably fewer total Krylov iterations than
// solving the same points independently, observed through the
// process-wide obs counters.
func TestSweepWarmStartSavesKrylovIterations(t *testing.T) {
	if testing.Short() {
		t.Skip("full co-simulation sweep in -short mode")
	}
	loads := make([]float64, 16)
	for k := range loads {
		loads[k] = 0.25 + 0.05*float64(k)
	}

	e := newTestEngine(t, Options{Workers: 1})
	before := krylovIterations()
	job, err := e.SubmitSweep(context.Background(), SweepSpec{ChipLoads: loads})
	if err != nil {
		t.Fatal(err)
	}
	// 16 full co-simulations: ~20 s plain, several minutes under -race.
	v := waitJob(t, job, 15*time.Minute)
	if v.State != JobDone {
		t.Fatalf("sweep job state %s, want done", v.State)
	}
	chained := krylovIterations() - before

	st := e.Stats()
	if st.SweepChains < 1 || st.SweepPointsCold < 1 || st.SweepPointsWarm < uint64(len(loads)-1) {
		t.Fatalf("chain metrics: chains=%d cold=%d warm=%d, want >=1 / >=1 / >=%d",
			st.SweepChains, st.SweepPointsCold, st.SweepPointsWarm, len(loads)-1)
	}

	before = krylovIterations()
	for _, l := range loads {
		cfg := core.DefaultConfig()
		cfg.ChipLoad = l
		if _, err := DefaultSolver(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
	}
	independent := krylovIterations() - before

	t.Logf("krylov iterations: chained=%d independent=%d", chained, independent)
	if chained >= independent {
		t.Fatalf("chained sweep spent %d Krylov iterations, independent solves spent %d — warm starts saved nothing",
			chained, independent)
	}
	// "Measurably fewer": require at least a 20% saving.
	if 5*chained > 4*independent {
		t.Fatalf("chained sweep saved only %d of %d iterations (under 20%%)", independent-chained, independent)
	}
}

// TestSweepChainPrefetchReceivesChains: SubmitSweep must hand each
// multi-point chain's complete, in-order config list to the BatchChain
// prefetch before the sequential walk starts, and count the outcome.
func TestSweepChainPrefetchReceivesChains(t *testing.T) {
	s := &countingSolver{}
	var mu sync.Mutex
	var got [][]core.Config
	e := newTestEngine(t, Options{
		Workers: 2,
		BatchChain: func() (Solver, ChainPrefetch) {
			return s.solve, func(_ context.Context, cfgs []core.Config) error {
				mu.Lock()
				got = append(got, append([]core.Config(nil), cfgs...))
				mu.Unlock()
				return nil
			}
		},
	})
	job, err := e.SubmitSweep(context.Background(), SweepSpec{
		FlowsMLMin: []float64{100, 200},
		ChipLoads:  []float64{0.5, 0.75, 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := waitJob(t, job, 10*time.Second)
	if v.State != JobDone || v.Completed != 6 {
		t.Fatalf("state=%s completed=%d, want done/6", v.State, v.Completed)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("prefetch invoked %d times, want once per chain (2)", len(got))
	}
	for _, cfgs := range got {
		if len(cfgs) != 3 {
			t.Fatalf("prefetch received %d configs, want the chain's full 3", len(cfgs))
		}
		wantLoads := []float64{0.5, 0.75, 1.0}
		for k, cfg := range cfgs {
			if cfg.FlowMLMin != cfgs[0].FlowMLMin || cfg.ChipLoad != wantLoads[k] {
				t.Fatalf("prefetch config %d out of chain order: %+v", k, cfg)
			}
		}
	}
	if st := e.Stats(); st.SweepPrefetches != 2 || st.SweepPrefetchErrors != 0 {
		t.Fatalf("prefetch counters ok=%d err=%d, want 2/0", st.SweepPrefetches, st.SweepPrefetchErrors)
	}
}

// TestSweepChainPrefetchSkipsSinglePoints: chains of one point have
// nothing to batch, so the prefetch must not run at all.
func TestSweepChainPrefetchSkipsSinglePoints(t *testing.T) {
	s := &countingSolver{}
	var calls atomic.Int64
	e := newTestEngine(t, Options{
		Workers: 2,
		BatchChain: func() (Solver, ChainPrefetch) {
			return s.solve, func(_ context.Context, _ []core.Config) error {
				calls.Add(1)
				return nil
			}
		},
	})
	job, err := e.SubmitSweep(context.Background(), SweepSpec{FlowsMLMin: []float64{100, 200, 300}})
	if err != nil {
		t.Fatal(err)
	}
	if v := waitJob(t, job, 10*time.Second); v.State != JobDone || v.Completed != 3 {
		t.Fatalf("state=%s completed=%d, want done/3", v.State, v.Completed)
	}
	if n := calls.Load(); n != 0 {
		t.Fatalf("prefetch ran %d times on single-point chains, want 0", n)
	}
}

// TestSweepChainPrefetchErrorIsSoft: a failing prefetch must not fail
// the chain — every point still solves sequentially — and the failure
// is visible in the stats.
func TestSweepChainPrefetchErrorIsSoft(t *testing.T) {
	s := &countingSolver{}
	e := newTestEngine(t, Options{
		Workers: 1,
		BatchChain: func() (Solver, ChainPrefetch) {
			return s.solve, func(_ context.Context, _ []core.Config) error {
				return errSolverBoom
			}
		},
	})
	job, err := e.SubmitSweep(context.Background(), SweepSpec{ChipLoads: []float64{0.5, 1.0}})
	if err != nil {
		t.Fatal(err)
	}
	v := waitJob(t, job, 10*time.Second)
	if v.State != JobDone || v.Completed != 2 || v.Failed != 0 {
		t.Fatalf("state=%s completed=%d failed=%d, want done/2/0 despite prefetch error", v.State, v.Completed, v.Failed)
	}
	if s.calls.Load() != 2 {
		t.Fatalf("solver ran %d times, want 2", s.calls.Load())
	}
	if st := e.Stats(); st.SweepPrefetchErrors != 1 || st.SweepPrefetches != 0 {
		t.Fatalf("prefetch counters ok=%d err=%d, want 0/1", st.SweepPrefetches, st.SweepPrefetchErrors)
	}
}

func TestJobLookup(t *testing.T) {
	s := &countingSolver{}
	e := newTestEngine(t, Options{Workers: 1, Solver: s.solve})
	job, err := e.SubmitSweep(context.Background(), SweepSpec{FlowsMLMin: []float64{100}})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := e.Job(job.ID); !ok || got != job {
		t.Fatalf("Job(%q) = %v, %v", job.ID, got, ok)
	}
	if _, ok := e.Job("job-999999"); ok {
		t.Fatal("unknown job id resolved")
	}
	waitJob(t, job, 10*time.Second)
}
