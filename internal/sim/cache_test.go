package sim

import (
	"fmt"
	"testing"

	"bright/internal/core"
)

func cfgWithFlow(flow float64) core.Config {
	c := core.DefaultConfig()
	c.FlowMLMin = flow
	return c
}

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRUCache(3)
	reps := map[string]*core.Report{}
	for _, flow := range []float64{1, 2, 3} {
		cfg := cfgWithFlow(flow)
		rep := fakeReport(cfg)
		reps[cfg.CanonicalKey()] = rep
		c.Add(cfg.CanonicalKey(), rep)
	}
	// Touch key 1 so key 2 becomes the least recently used.
	if _, ok := c.Get(cfgWithFlow(1).CanonicalKey()); !ok {
		t.Fatal("key 1 missing")
	}
	// Inserting a fourth entry must evict key 2, not key 1.
	c.Add(cfgWithFlow(4).CanonicalKey(), fakeReport(cfgWithFlow(4)))
	if _, ok := c.Get(cfgWithFlow(2).CanonicalKey()); ok {
		t.Fatal("least-recently-used key 2 survived eviction")
	}
	for _, flow := range []float64{1, 3, 4} {
		if _, ok := c.Get(cfgWithFlow(flow).CanonicalKey()); !ok {
			t.Fatalf("key %g wrongly evicted", flow)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("cache length %d, want 3", c.Len())
	}
}

func TestLRURefreshExistingKey(t *testing.T) {
	c := newLRUCache(2)
	key := cfgWithFlow(1).CanonicalKey()
	first := fakeReport(cfgWithFlow(1))
	second := fakeReport(cfgWithFlow(1))
	c.Add(key, first)
	c.Add(key, second)
	if c.Len() != 1 {
		t.Fatalf("re-adding a key grew the cache to %d", c.Len())
	}
	got, _ := c.Get(key)
	if got != second {
		t.Fatal("refresh did not replace the stored report")
	}
}

func TestCacheDisabled(t *testing.T) {
	for _, capacity := range []int{-1, 0} {
		c := newLRUCache(capacity)
		key := cfgWithFlow(1).CanonicalKey()
		c.Add(key, fakeReport(cfgWithFlow(1)))
		if _, ok := c.Get(key); ok {
			t.Fatalf("cap %d: disabled cache returned a hit", capacity)
		}
		if c.Len() != 0 {
			t.Fatalf("cap %d: disabled cache stored an entry", capacity)
		}
		// A cache that does not exist must not count misses: the old
		// behavior made /v1/stats report a growing miss count and a
		// bogus 0% hit rate with caching off.
		if hits, misses, evictions := c.Counters(); hits != 0 || misses != 0 || evictions != 0 {
			t.Fatalf("cap %d: disabled cache counted hits=%d misses=%d evictions=%d, want all 0",
				capacity, hits, misses, evictions)
		}
		if c.enabled() {
			t.Fatalf("cap %d: cache reports enabled", capacity)
		}
	}
}

func TestCacheCounters(t *testing.T) {
	c := newLRUCache(8)
	key := cfgWithFlow(1).CanonicalKey()
	c.Get(key) // miss
	c.Add(key, fakeReport(cfgWithFlow(1)))
	c.Get(key) // hit
	c.Get(key) // hit
	hits, misses, evictions := c.Counters()
	if hits != 2 || misses != 1 || evictions != 0 {
		t.Fatalf("counters hits=%d misses=%d evictions=%d, want 2/1/0", hits, misses, evictions)
	}
}

func TestCacheEvictionCounter(t *testing.T) {
	c := newLRUCache(2)
	for k := 0; k < 5; k++ {
		cfg := cfgWithFlow(float64(k + 1))
		c.Add(cfg.CanonicalKey(), fakeReport(cfg))
	}
	if _, _, evictions := c.Counters(); evictions != 3 {
		t.Fatalf("evictions = %d, want 3", evictions)
	}
}

func TestCacheManyKeysStaysBounded(t *testing.T) {
	c := newLRUCache(16)
	for k := 0; k < 200; k++ {
		cfg := cfgWithFlow(float64(k + 1))
		c.Add(cfg.CanonicalKey(), fakeReport(cfg))
	}
	if c.Len() != 16 {
		t.Fatalf("cache grew to %d entries, cap is 16", c.Len())
	}
	// The 16 most recent keys survive.
	for k := 184; k < 200; k++ {
		if _, ok := c.Get(cfgWithFlow(float64(k + 1)).CanonicalKey()); !ok {
			t.Fatalf("recent key %d evicted", k+1)
		}
	}
}

func TestFlightGroupLeaderElection(t *testing.T) {
	g := newFlightGroup()
	call1, leader1 := g.join("k")
	call2, leader2 := g.join("k")
	if !leader1 || leader2 {
		t.Fatal("exactly the first joiner must lead")
	}
	if call1 != call2 {
		t.Fatal("joiners got different calls")
	}
	rep := fakeReport(core.DefaultConfig())
	g.complete("k", call1, rep, nil)
	select {
	case <-call2.done:
	default:
		t.Fatal("complete did not release followers")
	}
	if call2.rep != rep {
		t.Fatal("follower saw the wrong report")
	}
	// After completion the key starts a fresh flight.
	_, leader3 := g.join("k")
	if !leader3 {
		t.Fatal("completed key did not reset")
	}
}

func TestFlightGroupForget(t *testing.T) {
	g := newFlightGroup()
	call, _ := g.join("k")
	sentinel := fmt.Errorf("queue full")
	g.forget("k", call, sentinel)
	<-call.done
	if call.err != sentinel {
		t.Fatalf("forget published %v, want sentinel", call.err)
	}
	if _, leader := g.join("k"); !leader {
		t.Fatal("forgotten key did not reset")
	}
}
