package sim

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"bright/internal/core"
)

func cfgWithFlow(flow float64) core.Config {
	c := core.DefaultConfig()
	c.FlowMLMin = flow
	return c
}

func TestLRUEvictionOrder(t *testing.T) {
	c := newLRUCache(3)
	reps := map[string]*core.Report{}
	for _, flow := range []float64{1, 2, 3} {
		cfg := cfgWithFlow(flow)
		rep := fakeReport(cfg)
		reps[cfg.CanonicalKey()] = rep
		c.Add(cfg.CanonicalKey(), rep)
	}
	// Touch key 1 so key 2 becomes the least recently used.
	if _, ok := c.Get(cfgWithFlow(1).CanonicalKey()); !ok {
		t.Fatal("key 1 missing")
	}
	// Inserting a fourth entry must evict key 2, not key 1.
	c.Add(cfgWithFlow(4).CanonicalKey(), fakeReport(cfgWithFlow(4)))
	if _, ok := c.Get(cfgWithFlow(2).CanonicalKey()); ok {
		t.Fatal("least-recently-used key 2 survived eviction")
	}
	for _, flow := range []float64{1, 3, 4} {
		if _, ok := c.Get(cfgWithFlow(flow).CanonicalKey()); !ok {
			t.Fatalf("key %g wrongly evicted", flow)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("cache length %d, want 3", c.Len())
	}
}

func TestLRURefreshExistingKey(t *testing.T) {
	c := newLRUCache(2)
	key := cfgWithFlow(1).CanonicalKey()
	first := fakeReport(cfgWithFlow(1))
	second := fakeReport(cfgWithFlow(1))
	c.Add(key, first)
	c.Add(key, second)
	if c.Len() != 1 {
		t.Fatalf("re-adding a key grew the cache to %d", c.Len())
	}
	got, _ := c.Get(key)
	if got != second {
		t.Fatal("refresh did not replace the stored report")
	}
}

func TestCacheDisabled(t *testing.T) {
	for _, capacity := range []int{-1, 0} {
		c := newLRUCache(capacity)
		key := cfgWithFlow(1).CanonicalKey()
		c.Add(key, fakeReport(cfgWithFlow(1)))
		if _, ok := c.Get(key); ok {
			t.Fatalf("cap %d: disabled cache returned a hit", capacity)
		}
		if c.Len() != 0 {
			t.Fatalf("cap %d: disabled cache stored an entry", capacity)
		}
		// A cache that does not exist must not count misses: the old
		// behavior made /v1/stats report a growing miss count and a
		// bogus 0% hit rate with caching off.
		if hits, misses, evictions := c.Counters(); hits != 0 || misses != 0 || evictions != 0 {
			t.Fatalf("cap %d: disabled cache counted hits=%d misses=%d evictions=%d, want all 0",
				capacity, hits, misses, evictions)
		}
		if c.enabled() {
			t.Fatalf("cap %d: cache reports enabled", capacity)
		}
	}
}

func TestCacheCounters(t *testing.T) {
	c := newLRUCache(8)
	key := cfgWithFlow(1).CanonicalKey()
	c.Get(key) // miss
	c.Add(key, fakeReport(cfgWithFlow(1)))
	c.Get(key) // hit
	c.Get(key) // hit
	hits, misses, evictions := c.Counters()
	if hits != 2 || misses != 1 || evictions != 0 {
		t.Fatalf("counters hits=%d misses=%d evictions=%d, want 2/1/0", hits, misses, evictions)
	}
}

func TestCacheEvictionCounter(t *testing.T) {
	c := newLRUCache(2)
	for k := 0; k < 5; k++ {
		cfg := cfgWithFlow(float64(k + 1))
		c.Add(cfg.CanonicalKey(), fakeReport(cfg))
	}
	if _, _, evictions := c.Counters(); evictions != 3 {
		t.Fatalf("evictions = %d, want 3", evictions)
	}
}

func TestCacheManyKeysStaysBounded(t *testing.T) {
	c := newLRUCache(16)
	for k := 0; k < 200; k++ {
		cfg := cfgWithFlow(float64(k + 1))
		c.Add(cfg.CanonicalKey(), fakeReport(cfg))
	}
	if c.Len() != 16 {
		t.Fatalf("cache grew to %d entries, cap is 16", c.Len())
	}
	// The 16 most recent keys survive.
	for k := 184; k < 200; k++ {
		if _, ok := c.Get(cfgWithFlow(float64(k + 1)).CanonicalKey()); !ok {
			t.Fatalf("recent key %d evicted", k+1)
		}
	}
}

func TestFlightGroupLeaderElection(t *testing.T) {
	g := newFlightGroup()
	call1, leader1 := g.join("k")
	call2, leader2 := g.join("k")
	if !leader1 || leader2 {
		t.Fatal("exactly the first joiner must lead")
	}
	if call1 != call2 {
		t.Fatal("joiners got different calls")
	}
	rep := fakeReport(core.DefaultConfig())
	g.complete("k", call1, rep, nil)
	select {
	case <-call2.done:
	default:
		t.Fatal("complete did not release followers")
	}
	if call2.rep != rep {
		t.Fatal("follower saw the wrong report")
	}
	// After completion the key starts a fresh flight.
	_, leader3 := g.join("k")
	if !leader3 {
		t.Fatal("completed key did not reset")
	}
}

// TestLRURefreshCountsOverwrite: re-adding an existing key must count
// as a refresh — before the fix the overwrite was invisible in every
// counter, so a workload re-solving hot keys looked identical to one
// never touching the cache twice.
func TestLRURefreshCountsOverwrite(t *testing.T) {
	c := newLRUCache(4)
	key := cfgWithFlow(1).CanonicalKey()
	c.Add(key, fakeReport(cfgWithFlow(1)))
	c.Add(key, fakeReport(cfgWithFlow(1)))
	c.Add(key, fakeReport(cfgWithFlow(1)))
	if refreshes, restored := c.RefreshCounters(); refreshes != 2 || restored != 0 {
		t.Fatalf("refreshes=%d restored=%d, want 2/0", refreshes, restored)
	}
	if _, _, evictions := c.Counters(); evictions != 0 {
		t.Fatalf("refresh within capacity evicted %d entries", evictions)
	}
}

// TestCacheSnapshotRoundTrip pins the snapshot contract: oldest-first
// order, LRU recency reproduced on restore, and the restore counter.
func TestCacheSnapshotRoundTrip(t *testing.T) {
	src := newLRUCache(8)
	for _, flow := range []float64{1, 2, 3} {
		cfg := cfgWithFlow(flow)
		src.Add(cfg.CanonicalKey(), fakeReport(cfg))
	}
	// Touch flow=1 so the recency order is 2 (oldest), 3, 1 (newest).
	src.Get(cfgWithFlow(1).CanonicalKey())
	snap := src.Snapshot()
	if snap.Version != CacheSnapshotVersion || len(snap.Entries) != 3 {
		t.Fatalf("snapshot version=%d entries=%d, want %d/3", snap.Version, len(snap.Entries), CacheSnapshotVersion)
	}
	wantOrder := []string{
		cfgWithFlow(2).CanonicalKey(),
		cfgWithFlow(3).CanonicalKey(),
		cfgWithFlow(1).CanonicalKey(),
	}
	for i, want := range wantOrder {
		if snap.Entries[i].Key != want {
			t.Fatalf("entry %d key %q, want %q (oldest first)", i, snap.Entries[i].Key, want)
		}
	}

	dst := newLRUCache(8)
	restored, skipped, err := dst.RestoreSnapshot(snap)
	if err != nil || restored != 3 || skipped != 0 {
		t.Fatalf("restore: restored=%d skipped=%d err=%v, want 3/0/nil", restored, skipped, err)
	}
	if _, rst := dst.RefreshCounters(); rst != 3 {
		t.Fatalf("restored counter = %d, want 3", rst)
	}
	// Recency carried over: inserting two fresh keys into a cap-3 cache
	// must evict flow=2 then flow=3, never the freshly-touched flow=1.
	small := newLRUCache(3)
	if _, _, err := small.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	small.Add(cfgWithFlow(4).CanonicalKey(), fakeReport(cfgWithFlow(4)))
	if _, ok := small.Get(cfgWithFlow(2).CanonicalKey()); ok {
		t.Fatal("oldest snapshot entry survived eviction")
	}
	if _, ok := small.Get(cfgWithFlow(1).CanonicalKey()); !ok {
		t.Fatal("most recent snapshot entry evicted")
	}
}

// TestCacheSnapshotRestoreStaysBounded: restoring a snapshot larger
// than the local capacity must evict inline — before the fix a restore
// could leave order.Len() > cap until the next unrelated Add.
func TestCacheSnapshotRestoreStaysBounded(t *testing.T) {
	src := newLRUCache(16)
	for k := 0; k < 10; k++ {
		cfg := cfgWithFlow(float64(k + 1))
		src.Add(cfg.CanonicalKey(), fakeReport(cfg))
	}
	dst := newLRUCache(4)
	restored, skipped, err := dst.RestoreSnapshot(src.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if restored != 10 || skipped != 0 {
		t.Fatalf("restored=%d skipped=%d, want 10/0", restored, skipped)
	}
	if dst.Len() != 4 {
		t.Fatalf("restore left %d entries in a cap-4 cache", dst.Len())
	}
	// The four most recent snapshot entries survive.
	for k := 6; k < 10; k++ {
		if _, ok := dst.Get(cfgWithFlow(float64(k + 1)).CanonicalKey()); !ok {
			t.Fatalf("recent snapshot key %d missing after bounded restore", k+1)
		}
	}
	if _, _, evictions := dst.Counters(); evictions != 6 {
		t.Fatalf("evictions = %d, want 6", evictions)
	}
}

// TestCacheSnapshotRejectsBadEntries: version mismatches are errors,
// key/report mismatches and nil reports are skipped, and a disabled
// cache restores nothing.
func TestCacheSnapshotRejectsBadEntries(t *testing.T) {
	c := newLRUCache(8)
	if _, _, err := c.RestoreSnapshot(CacheSnapshot{Version: 99}); err == nil {
		t.Fatal("unknown snapshot version accepted")
	}
	snap := CacheSnapshot{
		Version: CacheSnapshotVersion,
		Entries: []CacheSnapshotEntry{
			{Key: "stale-quantization", Report: fakeReport(cfgWithFlow(1))},
			{Key: cfgWithFlow(2).CanonicalKey(), Report: nil},
			{Key: cfgWithFlow(3).CanonicalKey(), Report: fakeReport(cfgWithFlow(3))},
		},
	}
	restored, skipped, err := c.RestoreSnapshot(snap)
	if err != nil || restored != 1 || skipped != 2 {
		t.Fatalf("restored=%d skipped=%d err=%v, want 1/2/nil", restored, skipped, err)
	}
	disabled := newLRUCache(0)
	restored, skipped, err = disabled.RestoreSnapshot(snap)
	if err != nil || restored != 0 || skipped != 3 {
		t.Fatalf("disabled cache: restored=%d skipped=%d err=%v, want 0/3/nil", restored, skipped, err)
	}
}

// TestFlightGroupClassifiesLeaderCancellation: completions carrying a
// context error are marked leaderCanceled (including wrapped forms);
// solver verdicts are not.
func TestFlightGroupClassifiesLeaderCancellation(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{context.Canceled, true},
		{context.DeadlineExceeded, true},
		{fmt.Errorf("cosim aborted: %w", context.Canceled), true},
		{fmt.Errorf("solver exploded"), false},
		{nil, false},
	}
	g := newFlightGroup()
	for _, tc := range cases {
		call, _ := g.join("k")
		g.complete("k", call, nil, tc.err)
		if call.leaderCanceled != tc.want {
			t.Errorf("complete(%v): leaderCanceled=%v, want %v", tc.err, call.leaderCanceled, tc.want)
		}
	}
}

func TestFlightGroupForget(t *testing.T) {
	g := newFlightGroup()
	call, _ := g.join("k")
	sentinel := fmt.Errorf("queue full")
	g.forget("k", call, sentinel)
	<-call.done
	if call.err != sentinel {
		t.Fatalf("forget published %v, want sentinel", call.err)
	}
	if _, leader := g.join("k"); !leader {
		t.Fatal("forgotten key did not reset")
	}
}

// TestFlightGroupForgetJoinRace hammers forget against concurrent joins
// on the same key (run under -race): every joiner must either lead its
// own flight or observe a completed one — a late follower must never
// hang on a key whose leader forgot it. The invariant under test is the
// delete-then-close ordering in complete/forget: a joiner that found
// the call in the map is guaranteed the channel close, and a joiner
// that missed it starts a fresh flight it leads itself.
func TestFlightGroupForgetJoinRace(t *testing.T) {
	const rounds, joiners = 200, 8
	g := newFlightGroup()
	sentinel := fmt.Errorf("queue full")
	for r := 0; r < rounds; r++ {
		key := fmt.Sprintf("k%d", r%4)
		var wg sync.WaitGroup
		leaderCall, leader := g.join(key)
		if !leader {
			t.Fatalf("round %d: stale flight for %s survived the previous round", r, key)
		}
		for j := 0; j < joiners; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				call, isLeader := g.join(key)
				if isLeader {
					// A joiner that raced past the forget leads a fresh
					// flight; it must complete it or the next round hangs.
					g.complete(key, call, nil, sentinel)
					return
				}
				select {
				case <-call.done:
				case <-time.After(5 * time.Second):
					t.Error("follower hung on a forgotten key")
				}
			}()
		}
		g.forget(key, leaderCall, sentinel)
		wg.Wait()
		// The key must be clean for the next round: any flight left in
		// the map now is a leaked call nobody will ever complete.
		cleanup, fresh := g.join(key)
		if !fresh {
			select {
			case <-cleanup.done:
			case <-time.After(5 * time.Second):
				t.Fatalf("round %d: leaked un-completed flight for %s", r, key)
			}
		} else {
			g.complete(key, cleanup, nil, sentinel)
		}
	}
}
