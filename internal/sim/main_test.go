package sim

import (
	"testing"

	"bright/internal/testutil/leakcheck"
)

// TestMain enforces goroutine-neutrality for the engine package: after
// the tests pass, every worker, sweep goroutine, and flight leader must
// be gone. This is the runtime twin of the goroutinelife analyzer.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
