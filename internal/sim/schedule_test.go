package sim

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"bright/internal/core"
)

// loadChain builds a synthetic n-point chain: one hydrodynamic
// condition, a voltsEvery-long load run per voltage step (voltsEvery <=
// 0 keeps one voltage throughout).
func loadChain(n, voltsEvery int) []gridPoint {
	pts := make([]gridPoint, n)
	for i := range pts {
		cfg := core.DefaultConfig()
		if voltsEvery > 0 {
			cfg.SupplyVoltage = 0.8 + 0.01*float64(i/voltsEvery)
		}
		cfg.ChipLoad = 0.25 + 0.001*float64(i)
		pts[i] = gridPoint{idx: i, cfg: cfg}
	}
	return pts
}

func TestSegmentChainBounds(t *testing.T) {
	// At or under the bound, and with splitting disabled, chains stay
	// whole.
	for _, tc := range []struct{ n, max int }{{5, 16}, {16, 16}, {100, 0}, {100, -1}} {
		segs := segmentChain(loadChain(tc.n, 4), tc.max)
		if len(segs) != 1 || len(segs[0]) != tc.n {
			t.Fatalf("chain of %d with bound %d split into %d segments", tc.n, tc.max, len(segs))
		}
	}

	// A long chain with voltage steps splits at voltage boundaries once
	// past the bound: 40 points in load runs of 4, bound 6 → splits at
	// the first boundary at or past 6, i.e. every 8 points.
	segs := segmentChain(loadChain(40, 4), 6)
	total := 0
	for _, seg := range segs {
		if len(seg) > 12 { // 2*maxPts force-split ceiling
			t.Fatalf("segment of %d points exceeds the 2x bound", len(seg))
		}
		for i := 1; i < len(seg); i++ {
			if seg[i].idx != seg[i-1].idx+1 {
				t.Fatalf("segment indices not contiguous: %d after %d", seg[i].idx, seg[i-1].idx)
			}
		}
		// Interior points never sit on a voltage boundary unless the
		// force-split fired, which it cannot here (boundary every 4 < 12).
		for i := 1; i < len(seg); i++ {
			if i >= 6 && seg[i].cfg.SupplyVoltage != seg[i-1].cfg.SupplyVoltage {
				t.Fatalf("segment crosses a voltage boundary past the bound at offset %d", i)
			}
		}
		total += len(seg)
	}
	if total != 40 {
		t.Fatalf("segments cover %d points, want 40", total)
	}
	if len(segs) < 4 {
		t.Fatalf("40-point chain with bound 6 produced only %d segments", len(segs))
	}

	// No voltage boundaries at all: the force-split at 2x the bound
	// still bounds every segment.
	for _, seg := range segmentChain(loadChain(40, 0), 6) {
		if len(seg) > 12 {
			t.Fatalf("boundary-free chain produced a %d-point segment, cap is 12", len(seg))
		}
	}
}

// TestSegmentPlanDeterministic pins the schedule-invariance premise: the
// segment plan is a pure function of the chains and the bound, so two
// plans over the same grid are identical — worker count never enters.
func TestSegmentPlanDeterministic(t *testing.T) {
	chains := [][]gridPoint{loadChain(40, 4), loadChain(3, 0), loadChain(17, 5)}
	a := planSegments(chains, 6)
	b := planSegments(chains, 6)
	if len(a) != len(b) {
		t.Fatalf("plan sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].chain != b[i].chain || a[i].seg != b[i].seg || len(a[i].pts) != len(b[i].pts) {
			t.Fatalf("plan entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].pts[0].idx != b[i].pts[0].idx {
			t.Fatalf("plan entry %d starts at different grid points", i)
		}
	}
}

// TestSegmentSchedulerDealAndSteal drives the scheduler directly: LPT
// dealing balances queued points, a worker drains its own queue in
// order, and an idle worker steals from the most-loaded peer's tail.
func TestSegmentSchedulerDealAndSteal(t *testing.T) {
	chains := [][]gridPoint{loadChain(32, 4), loadChain(2, 0), loadChain(2, 0)}
	segs := planSegments(chains, 4)
	s := newSegmentScheduler(segs, 2)

	// Worker 0 claims everything: first its own deque (not stolen), then
	// worker 1's via steals. Own-queue claims must strictly precede the
	// steals, every segment is served exactly once, and at least one
	// steal proves the LPT deal actually split the plan across workers.
	claimed := make(map[*sweepSegment]bool)
	steals, stealing := 0, false
	for {
		seg, stolen := s.next(0)
		if seg == nil {
			break
		}
		if claimed[seg] {
			t.Fatal("segment served twice")
		}
		claimed[seg] = true
		if stolen {
			stealing = true
			steals++
		} else if stealing {
			t.Fatal("own-queue claim after a steal — the deque order is broken")
		}
	}
	if len(claimed) != len(segs) {
		t.Fatalf("served %d segments, want %d", len(claimed), len(segs))
	}
	if steals == 0 {
		t.Fatal("no steals observed; LPT should have dealt segments to both workers")
	}
	if seg, _ := s.next(1); seg != nil {
		t.Fatal("scheduler served a segment after the plan was fully claimed")
	}
}

// TestSweepSkewedChainSpeedup is the fairness acceptance test: a grid
// whose chain structure leaves workers idle (one long chain) must
// finish measurably faster with segment scheduling than with
// whole-chain scheduling (SweepSegment < 0, the pre-scheduler
// behavior). Solves sleep a fixed 5ms, so the ratio measures scheduling
// alone, not solver throughput — valid even on a single-core box.
func TestSweepSkewedChainSpeedup(t *testing.T) {
	const points = 32
	const delay = 5 * time.Millisecond
	loads := make([]float64, points)
	for i := range loads {
		loads[i] = 0.25 + 0.02*float64(i)
	}
	sleepy := func(ctx context.Context, cfg core.Config) (*core.Report, error) {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return fakeReport(cfg), nil
	}
	run := func(segment int) time.Duration {
		e := newTestEngine(t, Options{Workers: 4, CacheSize: -1, SweepSegment: segment, Solver: sleepy})
		start := time.Now()
		job, err := e.SubmitSweep(context.Background(), SweepSpec{ChipLoads: loads})
		if err != nil {
			t.Fatal(err)
		}
		if v := waitJob(t, job, time.Minute); v.State != JobDone || v.Completed != points {
			t.Fatalf("state=%s completed=%d, want done/%d", v.State, v.Completed, points)
		}
		return time.Since(start)
	}

	sequential := run(-1) // whole-chain scheduling: one worker walks all 32 points
	segmented := run(4)   // 8 segments across 4 workers

	t.Logf("skewed sweep: whole-chain=%v segmented=%v", sequential, segmented)
	// Ideal is 4x; require 1.5x to stay robust against scheduler jitter
	// on a loaded box.
	if float64(sequential)/float64(segmented) < 1.5 {
		t.Fatalf("segmented sweep took %v vs %v whole-chain — under the 1.5x fairness bound", segmented, sequential)
	}
}

// TestSweepSegmentAccounting pins the warm/cold arithmetic under
// segmentation: every executed segment contributes exactly one cold
// point (its head re-warms a fresh solver stack) and len-1 warm points,
// and the segment/chain counters match the plan exactly.
func TestSweepSegmentAccounting(t *testing.T) {
	s := &countingSolver{}
	// 2 chains of 10 load points, bound 4, no voltage boundaries: each
	// chain force-splits at 8 → segments of 8+2 → 4 segments total.
	e := newTestEngine(t, Options{Workers: 3, CacheSize: -1, SweepSegment: 4, Solver: s.solve})
	loads := make([]float64, 10)
	for i := range loads {
		loads[i] = 0.25 + 0.05*float64(i)
	}
	job, err := e.SubmitSweep(context.Background(), SweepSpec{
		FlowsMLMin: []float64{100, 200},
		ChipLoads:  loads,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := waitJob(t, job, 30*time.Second); v.State != JobDone || v.Completed != 20 {
		t.Fatalf("state=%s completed=%d, want done/20", v.State, v.Completed)
	}
	st := e.Stats()
	if st.SweepChains != 2 || st.SweepSegments != 4 {
		t.Fatalf("chains=%d segments=%d, want 2/4", st.SweepChains, st.SweepSegments)
	}
	if st.SweepPointsCold != 4 || st.SweepPointsWarm != 16 {
		t.Fatalf("cold=%d warm=%d, want exactly 4/16 (one cold head per segment)", st.SweepPointsCold, st.SweepPointsWarm)
	}
	if s.calls.Load() != 20 {
		t.Fatalf("solver ran %d times, want 20 (cache disabled)", s.calls.Load())
	}
}

// TestSweepStealObserved forces runtime skew the LPT deal cannot see:
// one segment's points are 30x slower than the rest, so the workers
// that finish early must steal the slow worker's queued segment, and
// the steal shows up in the stats.
func TestSweepStealObserved(t *testing.T) {
	const slowLoad = 0.25 // the first segment's loads are all < 0.3
	skewed := func(ctx context.Context, cfg core.Config) (*core.Report, error) {
		d := time.Millisecond
		if cfg.ChipLoad < 0.3 {
			d = 30 * time.Millisecond
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return fakeReport(cfg), nil
	}
	loads := make([]float64, 16)
	for i := range loads {
		loads[i] = slowLoad + 0.04*float64(i) // first 2 points slow, rest fast
	}
	// 1 chain of 16, bound 2, no voltage boundaries → force-splits at 2x
	// the bound into 4 segments of 4, dealt 2+2 across 2 workers. The
	// worker that lands the slow head segment lags; the other drains its
	// own pair and steals from the laggard's tail.
	e := newTestEngine(t, Options{Workers: 2, CacheSize: -1, SweepSegment: 2, Solver: skewed})
	job, err := e.SubmitSweep(context.Background(), SweepSpec{ChipLoads: loads})
	if err != nil {
		t.Fatal(err)
	}
	if v := waitJob(t, job, 30*time.Second); v.State != JobDone || v.Completed != 16 {
		t.Fatalf("state=%s completed=%d, want done/16", v.State, v.Completed)
	}
	st := e.Stats()
	if st.SweepSegments != 4 {
		t.Fatalf("segments=%d, want 4", st.SweepSegments)
	}
	if st.SweepSteals == 0 {
		t.Fatal("no steals under forced runtime skew — work stealing inactive")
	}
}

// TestSweepScheduleInvariance is the bitwise contract: with the same
// segment bound, a sweep's per-point reports are bit-for-bit identical
// whether the plan runs on one worker (pure sequential walk of the
// plan) or on four with stealing. Real co-simulation solves through the
// production chain solver, cache disabled so every point solves in both
// runs; reports are compared through their canonical JSON rendering,
// which preserves float64 bits.
func TestSweepScheduleInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full co-simulation sweep in -short mode")
	}
	loads := []float64{0.4, 0.55, 0.7, 0.85, 1.0, 1.15}
	run := func(workers int) map[int]string {
		e := newTestEngine(t, Options{Workers: workers, CacheSize: -1, SweepSegment: 2})
		job, err := e.SubmitSweep(context.Background(), SweepSpec{ChipLoads: loads})
		if err != nil {
			t.Fatal(err)
		}
		v := waitJob(t, job, 15*time.Minute)
		if v.State != JobDone || v.Completed != len(loads) {
			t.Fatalf("workers=%d: state=%s completed=%d, want done/%d", workers, v.State, v.Completed, len(loads))
		}
		out := make(map[int]string, len(v.Results))
		for _, r := range v.Results {
			if r.Report == nil {
				t.Fatalf("workers=%d: point %d missing report: %+v", workers, r.Index, r)
			}
			buf, err := json.Marshal(r.Report)
			if err != nil {
				t.Fatal(err)
			}
			out[r.Index] = string(buf)
		}
		return out
	}

	seq := run(1)
	par := run(4)
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for idx, want := range seq {
		if got := par[idx]; got != want {
			t.Fatalf("point %d differs between 1-worker and 4-worker runs:\n  seq: %s\n  par: %s", idx, want, got)
		}
	}
}
