package sim

import (
	"sort"
	"sync"
)

// This file is the skew-aware sweep scheduler. The old sweep executor
// walked each warm-start chain sequentially on one goroutine, bounded
// by a semaphore: with skewed chain lengths (one hydrodynamic
// condition sweeping a fine voltage×load grid while the others solve a
// point or two) the longest chain set the job's wall clock while the
// other workers idled. The scheduler splits long chains into bounded
// segments, deals the segments to the workers longest-first (LPT), and
// lets an idle worker steal queued segments from the most-loaded peer.
//
// The segment plan is a pure function of the grid and the segment
// bound — it never depends on the worker count or on timing. Each
// segment runs on its own chain solver (its first point re-warms the
// solver stack cold, exactly like a chain head), so a point's numeric
// path is fixed by the plan alone, and a sweep's per-point outputs are
// bitwise identical whether the segments run on one worker or on many,
// stolen or not. Only completion *order* varies; JobView.Results is
// documented as completion-ordered with explicit grid indices.

// sweepSegment is one stealable unit of sweep work: a run of
// grid-adjacent points from a single chain, solved sequentially with
// neighbor warm starts.
type sweepSegment struct {
	chain int // chain index in the plan, for deterministic ordering
	seg   int // segment index within the chain
	pts   []gridPoint
}

// segmentChain splits one chain into segments of roughly maxPts points.
// Chains at or under the bound stay whole — the warm-start carry is
// never broken for work that cannot skew the schedule. Longer chains
// split preferentially where the supply voltage steps (the grid's
// second-innermost axis, so a segment keeps whole load runs and its
// interior warm starts stay nearest-neighbor in the sweep plane); a
// segment is force-split at twice the bound if no voltage boundary
// shows up. maxPts <= 0 disables splitting.
func segmentChain(chain []gridPoint, maxPts int) [][]gridPoint {
	if maxPts <= 0 || len(chain) <= maxPts {
		return [][]gridPoint{chain}
	}
	var segs [][]gridPoint
	start := 0
	for i := 1; i < len(chain); i++ {
		n := i - start
		atBoundary := chain[i].cfg.SupplyVoltage != chain[i-1].cfg.SupplyVoltage
		if (n >= maxPts && atBoundary) || n >= 2*maxPts {
			segs = append(segs, chain[start:i])
			start = i
		}
	}
	return append(segs, chain[start:])
}

// planSegments expands a chain list into the job's segment plan.
func planSegments(chains [][]gridPoint, maxPts int) []*sweepSegment {
	var segs []*sweepSegment
	for ci, chain := range chains {
		for si, pts := range segmentChain(chain, maxPts) {
			segs = append(segs, &sweepSegment{chain: ci, seg: si, pts: pts})
		}
	}
	return segs
}

// segmentScheduler deals a segment plan across workers and serves
// next() calls: a worker drains its own deque front-to-back and, once
// empty, steals from the back of the most-loaded peer. One mutex
// guards everything — segments are coarse (tens of solver runs), so
// the scheduler is nowhere near contended.
type segmentScheduler struct {
	mu     sync.Mutex
	queues [][]*sweepSegment // per-worker FIFO deques
	remain []int             // queued (unclaimed) points per worker
}

// newSegmentScheduler assigns segments longest-processing-time-first:
// segments sorted by descending point count (stable, so ties keep plan
// order) and each dealt to the currently least-loaded worker. LPT gets
// within 4/3 of the optimal makespan before any stealing happens;
// stealing then absorbs the runtime skew LPT cannot see (points are
// not equal-cost — warm points are cheap, cold and cache-miss points
// are not).
func newSegmentScheduler(segs []*sweepSegment, workers int) *segmentScheduler {
	s := &segmentScheduler{
		queues: make([][]*sweepSegment, workers),
		remain: make([]int, workers),
	}
	order := append([]*sweepSegment(nil), segs...)
	sort.SliceStable(order, func(a, b int) bool { return len(order[a].pts) > len(order[b].pts) })
	for _, seg := range order {
		w := 0
		for i := 1; i < workers; i++ {
			if s.remain[i] < s.remain[w] {
				w = i
			}
		}
		s.queues[w] = append(s.queues[w], seg)
		s.remain[w] += len(seg.pts)
	}
	return s
}

// next hands worker w its next segment, stealing from the most-loaded
// peer's tail when w's own deque is empty. A nil segment means the
// plan is fully claimed and the worker should exit.
func (s *segmentScheduler) next(w int) (seg *sweepSegment, stolen bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.queues[w]; len(q) > 0 {
		seg = q[0]
		s.queues[w] = q[1:]
		s.remain[w] -= len(seg.pts)
		return seg, false
	}
	v := -1
	for i := range s.queues {
		if i == w || len(s.queues[i]) == 0 {
			continue
		}
		if v < 0 || s.remain[i] > s.remain[v] {
			v = i
		}
	}
	if v < 0 {
		return nil, false
	}
	q := s.queues[v]
	seg = q[len(q)-1]
	s.queues[v] = q[:len(q)-1]
	s.remain[v] -= len(seg.pts)
	return seg, true
}
