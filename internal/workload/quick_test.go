package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bright/internal/floorplan"
)

func quickConfig(seed int64, max int) *quick.Config {
	return &quick.Config{MaxCount: max, Rand: rand.New(rand.NewSource(seed))}
}

// TestQuickTraceAtAlwaysReturnsAPhase: any time maps onto one of the
// trace's phase utilizations, for any (possibly negative) query time.
func TestQuickTraceAtAlwaysReturnsAPhase(t *testing.T) {
	fn := func(d1, d2, d3 uint8, u1, u2, u3 uint8, tRaw int16) bool {
		tr := &Trace{Phases: []Phase{
			{Duration: 0.01 + float64(d1)/100, Util: Utilization{Default: float64(u1) / 255}},
			{Duration: 0.01 + float64(d2)/100, Util: Utilization{Default: float64(u2) / 255}},
			{Duration: 0.01 + float64(d3)/100, Util: Utilization{Default: float64(u3) / 255}},
		}}
		if err := tr.Validate(); err != nil {
			return false
		}
		got := tr.At(float64(tRaw) / 10).Default
		for _, p := range tr.Phases {
			if got == p.Util.Default {
				return true
			}
		}
		return false
	}
	if err := quick.Check(fn, quickConfig(51, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickTracePeriodicity: At(t) == At(t + period) for any t.
func TestQuickTracePeriodicity(t *testing.T) {
	tr := Burst(0.7, 0.3)
	period := tr.TotalDuration()
	fn := func(tRaw int16) bool {
		tt := float64(tRaw) / 50
		// Skip times within rounding distance of a phase boundary,
		// where the float64 modulo can land on either side.
		frac := math.Mod(math.Mod(tt, period)+period, period)
		for _, edge := range []float64{0, tr.Phases[0].Duration, period} {
			if math.Abs(frac-edge) < 1e-9 {
				return true
			}
		}
		return tr.At(tt).Default == tr.At(tt+period).Default
	}
	if err := quick.Check(fn, quickConfig(52, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickPowerBetweenIdleAndFull: the instantaneous total power at
// any utilization lies between the idle and full endpoints.
func TestQuickPowerBetweenIdleAndFull(t *testing.T) {
	f := floorplan.Power7()
	pm := Power7PowerModel()
	idle := pm.TotalPower(f, Utilization{Default: 0})
	full := pm.TotalPower(f, Utilization{Default: 1})
	fn := func(uRaw uint8, coreRaw uint8) bool {
		u := Utilization{
			Default: float64(uRaw) / 255,
			ByKind: map[floorplan.UnitKind]float64{
				floorplan.Core: float64(coreRaw) / 255,
			},
		}
		p := pm.TotalPower(f, u)
		return p >= idle-1e-9 && p <= full+1e-9 && !math.IsNaN(p)
	}
	if err := quick.Check(fn, quickConfig(53, 200)); err != nil {
		t.Error(err)
	}
}
