package workload

import (
	"math"
	"testing"

	"bright/internal/floorplan"
	"bright/internal/mesh"
)

func approx(t *testing.T, got, want, rel float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > rel*math.Abs(want) {
		t.Errorf("%s: got %g want %g (rel tol %g)", msg, got, want, rel)
	}
}

func TestUtilizationPrecedence(t *testing.T) {
	u := Utilization{
		ByName:  map[string]float64{"CORE0": 1},
		ByKind:  map[floorplan.UnitKind]float64{floorplan.Core: 0.5},
		Default: 0.1,
	}
	f := floorplan.Power7()
	var core0, core1, l3 floorplan.Unit
	for _, unit := range f.Units {
		switch unit.Name {
		case "CORE0":
			core0 = unit
		case "CORE1":
			core1 = unit
		case "L3_0":
			l3 = unit
		}
	}
	if u.Of(core0) != 1 {
		t.Fatal("name precedence")
	}
	if u.Of(core1) != 0.5 {
		t.Fatal("kind precedence")
	}
	if u.Of(l3) != 0.1 {
		t.Fatal("default fallback")
	}
}

func TestUtilizationValidate(t *testing.T) {
	if err := (Utilization{Default: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Utilization{Default: 1.5}).Validate(); err == nil {
		t.Fatal("default >1 accepted")
	}
	if err := (Utilization{ByName: map[string]float64{"X": -0.1}}).Validate(); err == nil {
		t.Fatal("negative by-name accepted")
	}
	if err := (Utilization{ByKind: map[floorplan.UnitKind]float64{floorplan.Core: 2}}).Validate(); err == nil {
		t.Fatal("by-kind >1 accepted")
	}
}

func TestTraceAtWrapsPeriodically(t *testing.T) {
	tr := Burst(1.0, 0.25)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	approx(t, tr.TotalDuration(), 1.0, 1e-12, "period")
	// Inside the burst.
	if tr.At(0.1).Default != 1 {
		t.Fatal("burst phase")
	}
	// Inside the idle tail.
	if tr.At(0.9).Default != 0 {
		t.Fatal("idle phase")
	}
	// Wrapped.
	if tr.At(2.1).Default != 1 || tr.At(-0.9).Default != 1 {
		t.Fatal("wrapping")
	}
}

func TestTraceValidate(t *testing.T) {
	if err := (&Trace{}).Validate(); err == nil {
		t.Fatal("empty trace accepted")
	}
	bad := &Trace{Phases: []Phase{{Duration: 0}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-duration phase accepted")
	}
}

func TestPowerModelEndpoints(t *testing.T) {
	f := floorplan.Power7()
	pm := Power7PowerModel()
	full := pm.TotalPower(f, Utilization{Default: 1})
	idle := pm.TotalPower(f, Utilization{Default: 0})
	// Full equals the Fig. 9 full-load budget.
	approx(t, full, f.TotalPower(floorplan.Power7FullLoad()), 1e-9, "full-load endpoint")
	// Idle is a meaningful but smaller floor.
	if idle <= 0.2*full || idle >= 0.6*full {
		t.Fatalf("idle %g vs full %g outside leakage expectation", idle, full)
	}
	// Linear in utilization.
	half := pm.TotalPower(f, Utilization{Default: 0.5})
	approx(t, half, 0.5*(full+idle), 1e-9, "linearity")
}

func TestDensityFieldMatchesAnalyticTotal(t *testing.T) {
	f := floorplan.Power7()
	pm := Power7PowerModel()
	g := mesh.NewUniformGrid2D(f.Width, f.Height, 60, 48)
	for _, u := range []Utilization{
		{Default: 1},
		{Default: 0.3},
		{ByKind: map[floorplan.UnitKind]float64{floorplan.Core: 1}, Default: 0},
	} {
		field := pm.DensityField(f, g, u)
		approx(t, field.Integrate(), pm.TotalPower(f, u), 1e-9, "rasterized power")
	}
}

func TestCoreMigrationTrace(t *testing.T) {
	f := floorplan.Power7()
	tr := CoreMigration(f, 0.01, 0.2)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Phases) != 8 {
		t.Fatalf("expected 8 phases (one per core), got %d", len(tr.Phases))
	}
	// Each phase heats exactly one core fully.
	for k, p := range tr.Phases {
		hot := 0
		for name, v := range p.Util.ByName {
			if v == 1 {
				hot++
				if name == "" {
					t.Fatal("unnamed hot unit")
				}
			}
		}
		if hot != 1 {
			t.Fatalf("phase %d: %d hot cores", k, hot)
		}
	}
	// Migration actually moves the hotspot: consecutive phases differ.
	if tr.Phases[0].Util.ByName["CORE0"] != 1 || tr.Phases[1].Util.ByName["CORE0"] == 1 {
		t.Fatal("hotspot did not move")
	}
}

func TestSteadyTrace(t *testing.T) {
	tr := Steady(0.7, 5)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.At(3).Default != 0.7 {
		t.Fatal("steady value")
	}
	if tr.TotalDuration() != 5 {
		t.Fatal("duration")
	}
}

func TestBurstDutyClamping(t *testing.T) {
	if tr := Burst(1, 0); tr.Phases[0].Duration != 0.5 {
		t.Fatal("zero duty should default to 0.5")
	}
	if tr := Burst(1, 1.2); tr.Phases[1].Duration <= 0 {
		t.Fatal("duty >= 1 should clamp, leaving a positive idle phase")
	}
}
