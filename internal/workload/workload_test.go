package workload

import (
	"encoding/json"
	"math"
	"testing"

	"bright/internal/floorplan"
	"bright/internal/mesh"
)

func approx(t *testing.T, got, want, rel float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > rel*math.Abs(want) {
		t.Errorf("%s: got %g want %g (rel tol %g)", msg, got, want, rel)
	}
}

func TestUtilizationPrecedence(t *testing.T) {
	u := Utilization{
		ByName:  map[string]float64{"CORE0": 1},
		ByKind:  map[floorplan.UnitKind]float64{floorplan.Core: 0.5},
		Default: 0.1,
	}
	f := floorplan.Power7()
	var core0, core1, l3 floorplan.Unit
	for _, unit := range f.Units {
		switch unit.Name {
		case "CORE0":
			core0 = unit
		case "CORE1":
			core1 = unit
		case "L3_0":
			l3 = unit
		}
	}
	if u.Of(core0) != 1 {
		t.Fatal("name precedence")
	}
	if u.Of(core1) != 0.5 {
		t.Fatal("kind precedence")
	}
	if u.Of(l3) != 0.1 {
		t.Fatal("default fallback")
	}
}

func TestUtilizationValidate(t *testing.T) {
	if err := (Utilization{Default: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Utilization{Default: 1.5}).Validate(); err == nil {
		t.Fatal("default >1 accepted")
	}
	if err := (Utilization{ByName: map[string]float64{"X": -0.1}}).Validate(); err == nil {
		t.Fatal("negative by-name accepted")
	}
	if err := (Utilization{ByKind: map[floorplan.UnitKind]float64{floorplan.Core: 2}}).Validate(); err == nil {
		t.Fatal("by-kind >1 accepted")
	}
}

func TestTraceAtWrapsPeriodically(t *testing.T) {
	tr := Burst(1.0, 0.25)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	approx(t, tr.TotalDuration(), 1.0, 1e-12, "period")
	// Inside the burst.
	if tr.At(0.1).Default != 1 {
		t.Fatal("burst phase")
	}
	// Inside the idle tail.
	if tr.At(0.9).Default != 0 {
		t.Fatal("idle phase")
	}
	// Wrapped.
	if tr.At(2.1).Default != 1 || tr.At(-0.9).Default != 1 {
		t.Fatal("wrapping")
	}
}

// Phase intervals are half-open [start, end): sampling exactly at a
// boundary returns the phase that begins there, and exactly one period
// wraps to phase 0.
func TestTraceAtExactBoundaries(t *testing.T) {
	tr := &Trace{Phases: []Phase{
		{Duration: 0.25, Util: Utilization{Default: 1}},
		{Duration: 0.75, Util: Utilization{Default: 0}},
	}}
	if got := tr.PhaseIndexAt(0); got != 0 {
		t.Fatalf("At(0): phase %d, want 0", got)
	}
	// Exactly at the internal boundary: the idle phase starts here.
	if got := tr.PhaseIndexAt(0.25); got != 1 {
		t.Fatalf("At(0.25): phase %d, want 1 (half-open intervals)", got)
	}
	// Exactly one period: wraps to the start of the next period.
	if got := tr.PhaseIndexAt(1.0); got != 0 {
		t.Fatalf("At(period): phase %d, want 0 (periodic wrap)", got)
	}
	if got := tr.PhaseIndexAt(1.25); got != 1 {
		t.Fatalf("At(period+0.25): phase %d, want 1", got)
	}
	// Boundary classification must be exact for times built by summing
	// the same prefix durations the trace holds, even when the
	// durations are not exactly representable.
	odd := &Trace{Phases: []Phase{
		{Duration: 0.1, Util: Utilization{Default: 0.1}},
		{Duration: 0.1, Util: Utilization{Default: 0.2}},
		{Duration: 0.1, Util: Utilization{Default: 0.3}},
	}}
	edge := odd.Phases[0].Duration + odd.Phases[1].Duration
	if got := odd.PhaseIndexAt(edge); got != 2 {
		t.Fatalf("At(sum of first two durations): phase %d, want 2", got)
	}
}

func TestTraceClampSemantics(t *testing.T) {
	tr := &Trace{
		Clamp: true,
		Phases: []Phase{
			{Duration: 0.5, Util: Utilization{Default: 0.3}},
			{Duration: 0.5, Util: Utilization{Default: 1}},
		},
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.At(0.25).Default; got != 0.3 {
		t.Fatalf("At(0.25) = %g, want 0.3", got)
	}
	// At and past the end: the last phase holds forever (a DVFS step
	// must not restart when the session outruns the trace).
	for _, tm := range []float64{1.0, 1.5, 100} {
		if got := tr.At(tm).Default; got != 1 {
			t.Fatalf("clamp At(%g) = %g, want 1", tm, got)
		}
	}
	// Negative times clamp to the first phase.
	if got := tr.At(-3).Default; got != 0.3 {
		t.Fatalf("clamp At(-3) = %g, want 0.3", got)
	}
	// The same trace with wrap restarts instead.
	wrap := &Trace{Phases: tr.Phases}
	if got := wrap.At(1.25).Default; got != 0.3 {
		t.Fatalf("wrap At(1.25) = %g, want 0.3", got)
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := &Trace{
		Clamp: true,
		Phases: []Phase{
			{Duration: 0.5, Util: Utilization{
				ByName:  map[string]float64{"CORE0": 1},
				ByKind:  map[floorplan.UnitKind]float64{floorplan.Core: 0.5},
				Default: 0.1,
			}},
		},
	}
	blob, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Clamp || len(back.Phases) != 1 {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	ph := back.Phases[0]
	if ph.Duration != 0.5 || ph.Util.Default != 0.1 ||
		ph.Util.ByName["CORE0"] != 1 || ph.Util.ByKind[floorplan.Core] != 0.5 {
		t.Fatalf("round trip lost values: %+v", ph)
	}
}

func TestTraceValidate(t *testing.T) {
	if err := (&Trace{}).Validate(); err == nil {
		t.Fatal("empty trace accepted")
	}
	bad := &Trace{Phases: []Phase{{Duration: 0}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-duration phase accepted")
	}
}

func TestPowerModelEndpoints(t *testing.T) {
	f := floorplan.Power7()
	pm := Power7PowerModel()
	full := pm.TotalPower(f, Utilization{Default: 1})
	idle := pm.TotalPower(f, Utilization{Default: 0})
	// Full equals the Fig. 9 full-load budget.
	approx(t, full, f.TotalPower(floorplan.Power7FullLoad()), 1e-9, "full-load endpoint")
	// Idle is a meaningful but smaller floor.
	if idle <= 0.2*full || idle >= 0.6*full {
		t.Fatalf("idle %g vs full %g outside leakage expectation", idle, full)
	}
	// Linear in utilization.
	half := pm.TotalPower(f, Utilization{Default: 0.5})
	approx(t, half, 0.5*(full+idle), 1e-9, "linearity")
}

func TestDensityFieldMatchesAnalyticTotal(t *testing.T) {
	f := floorplan.Power7()
	pm := Power7PowerModel()
	g := mesh.NewUniformGrid2D(f.Width, f.Height, 60, 48)
	for _, u := range []Utilization{
		{Default: 1},
		{Default: 0.3},
		{ByKind: map[floorplan.UnitKind]float64{floorplan.Core: 1}, Default: 0},
	} {
		field := pm.DensityField(f, g, u)
		approx(t, field.Integrate(), pm.TotalPower(f, u), 1e-9, "rasterized power")
	}
}

func TestCoreMigrationTrace(t *testing.T) {
	f := floorplan.Power7()
	tr := CoreMigration(f, 0.01, 0.2)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Phases) != 8 {
		t.Fatalf("expected 8 phases (one per core), got %d", len(tr.Phases))
	}
	// Each phase heats exactly one core fully.
	for k, p := range tr.Phases {
		hot := 0
		for name, v := range p.Util.ByName {
			if v == 1 {
				hot++
				if name == "" {
					t.Fatal("unnamed hot unit")
				}
			}
		}
		if hot != 1 {
			t.Fatalf("phase %d: %d hot cores", k, hot)
		}
	}
	// Migration actually moves the hotspot: consecutive phases differ.
	if tr.Phases[0].Util.ByName["CORE0"] != 1 || tr.Phases[1].Util.ByName["CORE0"] == 1 {
		t.Fatal("hotspot did not move")
	}
}

func TestSteadyTrace(t *testing.T) {
	tr := Steady(0.7, 5)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.At(3).Default != 0.7 {
		t.Fatal("steady value")
	}
	if tr.TotalDuration() != 5 {
		t.Fatal("duration")
	}
}

func TestBurstDutyClamping(t *testing.T) {
	if tr := Burst(1, 0); tr.Phases[0].Duration != 0.5 {
		t.Fatal("zero duty should default to 0.5")
	}
	if tr := Burst(1, 1.2); tr.Phases[1].Duration <= 0 {
		t.Fatal("duty >= 1 should clamp, leaving a positive idle phase")
	}
}
