// Package workload synthesizes time-varying chip activity for the
// transient studies: utilization traces per floorplan unit, a power
// model mapping utilization to power density, and generators for the
// standard scenario shapes (steady, bursty, core migration). The paper
// motivates the technology with energy-proportional computing; these
// traces let the thermal and electrochemical models be exercised under
// activity that actually varies.
package workload

import (
	"fmt"
	"math"

	"bright/internal/floorplan"
	"bright/internal/mesh"
)

// Utilization describes the activity of the chip at one instant, in
// [0, 1] per unit. Lookup precedence: by unit name, then by unit kind,
// then Default. The JSON form is the wire format of the streaming
// session API (internal/stream), where clients push utilization
// updates into a live transient co-simulation.
type Utilization struct {
	ByName  map[string]float64             `json:"by_name,omitempty"`
	ByKind  map[floorplan.UnitKind]float64 `json:"by_kind,omitempty"`
	Default float64                        `json:"default"`
}

// Of returns the utilization of a unit.
func (u Utilization) Of(unit floorplan.Unit) float64 {
	if v, ok := u.ByName[unit.Name]; ok {
		return v
	}
	if v, ok := u.ByKind[unit.Kind]; ok {
		return v
	}
	return u.Default
}

// Validate checks all utilizations are within [0, 1].
func (u Utilization) Validate() error {
	check := func(v float64, where string) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("workload: utilization %g out of [0,1] (%s)", v, where)
		}
		return nil
	}
	if err := check(u.Default, "default"); err != nil {
		return err
	}
	for k, v := range u.ByName {
		if err := check(v, k); err != nil {
			return err
		}
	}
	for k, v := range u.ByKind {
		if err := check(v, k.String()); err != nil {
			return err
		}
	}
	return nil
}

// Phase is one segment of a trace.
type Phase struct {
	// Duration in seconds (> 0).
	Duration float64 `json:"duration_s"`
	// Util is the chip activity during the phase.
	Util Utilization `json:"util"`
}

// Trace is a piecewise-constant utilization schedule. Each phase
// occupies the half-open interval [start, start+Duration) — sampling
// exactly at a boundary returns the phase that begins there. Times
// outside [0, TotalDuration()) wrap around periodically by default
// (At(TotalDuration()) is At(0)); with Clamp set they clamp to the
// first/last phase instead.
type Trace struct {
	Phases []Phase `json:"phases"`
	// Clamp switches the out-of-range semantics from periodic wrapping
	// to clamping: times past the end hold the last phase forever and
	// negative times hold the first. Wrap (the default) is what a
	// periodic Burst trace driving an arbitrarily long session needs;
	// clamp is what a one-shot step scenario (DVFS step, wake-up) needs
	// so the trace does not silently restart when a long-lived session
	// outruns it.
	Clamp bool `json:"clamp,omitempty"`
}

// Validate reports whether the trace is usable.
func (t *Trace) Validate() error {
	if len(t.Phases) == 0 {
		return fmt.Errorf("workload: empty trace")
	}
	for i, p := range t.Phases {
		if p.Duration <= 0 {
			return fmt.Errorf("workload: phase %d has nonpositive duration", i)
		}
		if err := p.Util.Validate(); err != nil {
			return fmt.Errorf("phase %d: %w", i, err)
		}
	}
	return nil
}

// TotalDuration returns one period of the trace (s).
func (t *Trace) TotalDuration() float64 {
	d := 0.0
	for _, p := range t.Phases {
		d += p.Duration
	}
	return d
}

// At returns the utilization at the given time, honoring the trace's
// wrap-vs-clamp semantics (see Trace).
func (t *Trace) At(time float64) Utilization {
	k := t.PhaseIndexAt(time)
	if k < 0 {
		return Utilization{}
	}
	return t.Phases[k].Util
}

// PhaseIndexAt returns the index of the phase active at the given time
// (-1 for an empty trace). Phase intervals are half-open: phase k spans
// [edge(k), edge(k+1)) where edge(k) is the cumulative duration of the
// phases before it, so a time landing exactly on a boundary belongs to
// the phase that starts there. Comparisons run against the cumulative
// edges (not repeated subtraction), so a caller that computes sample
// times by summing the same prefix durations gets exact boundary
// classification, free of accumulated float drift.
//
// Out-of-range times wrap periodically by default — time is reduced
// modulo TotalDuration(), so exactly one period maps to phase 0, the
// shape a periodic Burst trace needs when it drives a session for many
// periods. With Clamp set, times at or past TotalDuration() return the
// last phase and negative times the first.
func (t *Trace) PhaseIndexAt(time float64) int {
	n := len(t.Phases)
	if n == 0 {
		return -1
	}
	period := t.TotalDuration()
	if period <= 0 {
		return n - 1
	}
	if t.Clamp {
		if time < 0 {
			return 0
		}
		if time >= period {
			return n - 1
		}
	} else {
		time = math.Mod(time, period)
		if time < 0 {
			time += period
		}
	}
	edge := 0.0
	for k, p := range t.Phases {
		edge += p.Duration
		if time < edge {
			return k
		}
	}
	// Float round-off in the Mod can leave time a hair at or above the
	// final edge; that instant belongs to the last phase.
	return n - 1
}

// PowerModel maps utilization to per-kind power density: density =
// idle + util * (full - idle). Leakage (idle) keeps the floor realistic.
type PowerModel struct {
	Idle, Full floorplan.PowerMap
}

// Power7PowerModel returns the POWER7+ model: the paper's full-load
// densities with a 30% leakage floor on cores/logic and a 50% floor on
// the always-on caches (eDRAM refresh) and I/O.
func Power7PowerModel() PowerModel {
	full := floorplan.Power7FullLoad()
	idle := floorplan.PowerMap{}
	for k, v := range full {
		switch k {
		case floorplan.Core, floorplan.Logic:
			idle[k] = 0.3 * v
		default:
			idle[k] = 0.5 * v
		}
	}
	return PowerModel{Idle: idle, Full: full}
}

// DensityField rasterizes the instantaneous power map for the given
// utilization onto a grid.
func (pm PowerModel) DensityField(f *floorplan.Floorplan, g *mesh.Grid2D, u Utilization) *mesh.Field2D {
	field := mesh.NewField2D(g)
	for j := 0; j < g.NY(); j++ {
		for i := 0; i < g.NX(); i++ {
			cell := floorplan.Rect{
				X: g.X.Edges[i], Y: g.Y.Edges[j],
				W: g.X.Widths[i], H: g.Y.Widths[j],
			}
			acc := 0.0
			for _, unit := range f.Units {
				ov := cell.Overlap(unit.Rect)
				if ov <= 0 {
					continue
				}
				util := u.Of(unit)
				d := pm.Idle[unit.Kind] + util*(pm.Full[unit.Kind]-pm.Idle[unit.Kind])
				acc += d * ov
			}
			field.Set(i, j, acc/cell.Area())
		}
	}
	return field
}

// TotalPower integrates the instantaneous map analytically (W).
func (pm PowerModel) TotalPower(f *floorplan.Floorplan, u Utilization) float64 {
	s := 0.0
	for _, unit := range f.Units {
		util := u.Of(unit)
		d := pm.Idle[unit.Kind] + util*(pm.Full[unit.Kind]-pm.Idle[unit.Kind])
		s += d * unit.Rect.Area()
	}
	return s
}

// --- Generators -------------------------------------------------------

// Steady returns a single-phase trace at uniform utilization.
func Steady(util, duration float64) *Trace {
	return &Trace{Phases: []Phase{{
		Duration: duration,
		Util:     Utilization{Default: util},
	}}}
}

// Burst alternates full activity (duty fraction of the period) with
// idle: the classic race-to-idle shape.
func Burst(period, duty float64) *Trace {
	if duty <= 0 {
		duty = 0.5
	}
	if duty >= 1 {
		duty = 0.999
	}
	return &Trace{Phases: []Phase{
		{Duration: duty * period, Util: Utilization{Default: 1}},
		{Duration: (1 - duty) * period, Util: Utilization{Default: 0}},
	}}
}

// CoreMigration cycles full activity around the cores (one hot core at
// a time, dwell seconds each) while the rest of the chip idles at the
// background level — the thermal-management pattern that spreads
// hotspots.
func CoreMigration(f *floorplan.Floorplan, dwell, background float64) *Trace {
	var tr Trace
	for _, u := range f.Units {
		if u.Kind != floorplan.Core {
			continue
		}
		tr.Phases = append(tr.Phases, Phase{
			Duration: dwell,
			Util: Utilization{
				ByName:  map[string]float64{u.Name: 1},
				Default: background,
			},
		})
	}
	return &tr
}
