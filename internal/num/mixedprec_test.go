package num

import (
	"math"
	"math/rand"
	"testing"
)

// TestMixedPrecisionMGCG is the mixed-precision property test: with the
// V-cycle interior demoted to float32, MG-CG must still converge to the
// float64 answer within IterOptions.Tol on both the 2D Poisson and the
// stack3d-shaped fixtures. The outer Krylov loop stays float64, so the
// preconditioner's precision may cost iterations but never accuracy.
func TestMixedPrecisionMGCG(t *testing.T) {
	cases := []struct {
		name  string
		a     *CSR
		shape GridShape
	}{
		{"poisson64", laplacian2D(64), GridShape{NX: 64, NY: 64}},
		{"stack3d", laplacian3D(24, 20, 8), GridShape{NX: 24, NY: 20, NZ: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			b := make([]float64, tc.a.Rows)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			const tol = 1e-9
			mg64, err := NewGMG(tc.a, tc.shape, MGOptions{Precision: PrecisionFloat64})
			if err != nil {
				t.Fatal(err)
			}
			x64 := make([]float64, tc.a.Rows)
			r64, err := CG(tc.a, b, x64, IterOptions{Tol: tol, M: mg64})
			if err != nil {
				t.Fatal(err)
			}

			mg32, err := NewGMG(tc.a, tc.shape, MGOptions{Precision: PrecisionFloat32})
			if err != nil {
				t.Fatal(err)
			}
			if mg32.Precision() != PrecisionFloat32 {
				t.Fatalf("float32 hierarchy not active: %v", mg32.Precision())
			}
			x32 := make([]float64, tc.a.Rows)
			r32, err := CG(tc.a, b, x32, IterOptions{Tol: tol, M: mg32})
			if err != nil {
				t.Fatal(err)
			}
			if mg32.Precision() != PrecisionFloat32 {
				t.Fatal("float32 path fell back during a healthy solve")
			}
			if rn := residualNorm(tc.a, b, x32); rn/Norm2(b) > tol {
				t.Fatalf("mixed-precision residual %g exceeds tol", rn/Norm2(b))
			}
			// Same answer as float64 within the tolerance the caller asked
			// for (both are within tol of the true solution; compare
			// against each other scaled by the solution norm).
			diff := 0.0
			for i := range x64 {
				if d := math.Abs(x64[i] - x32[i]); d > diff {
					diff = d
				}
			}
			xn := Norm2(x64)
			if diff/xn > tol*100 {
				t.Fatalf("mixed-precision answer differs from float64 by %g (rel), want <= %g", diff/xn, tol*100)
			}
			t.Logf("%s: f64=%d iters, f32=%d iters, rel-diff=%.2e", tc.name, r64.Iterations, r32.Iterations, diff/xn)
			if r32.Iterations > 2*r64.Iterations {
				t.Fatalf("float32 preconditioner cost %d iters vs %d float64 — too weak", r32.Iterations, r64.Iterations)
			}
		})
	}
}

// TestMixedPrecisionFallback: an operator whose entries overflow float32
// must refuse the mirror at setup and count the fallback, while Apply
// keeps working through the float64 hierarchy.
func TestMixedPrecisionFallback(t *testing.T) {
	n := 16
	a2 := laplacian2D(n)
	big := &CSR{Rows: a2.Rows, Cols: a2.Cols, RowPtr: a2.RowPtr, ColIdx: a2.ColIdx, Val: make([]float64, a2.NNZ())}
	for k, v := range a2.Val {
		big.Val[k] = v * 1e200 // far beyond float32 range
	}
	f0 := mgPrecisionFallbacks.Value()
	mg, err := NewGMG(big, GridShape{NX: n, NY: n}, MGOptions{Precision: PrecisionFloat32})
	if err != nil {
		t.Fatal(err)
	}
	if mg.Precision() != PrecisionFloat64 {
		t.Fatal("un-mirrorable operator did not fall back to float64")
	}
	if d := mgPrecisionFallbacks.Value() - f0; d != 1 {
		t.Fatalf("fallback counter moved by %d, want 1", d)
	}
	b := make([]float64, big.Rows)
	b[0] = 1e200
	x := make([]float64, big.Rows)
	if _, err := CG(big, b, x, IterOptions{Tol: 1e-9, M: mg}); err != nil {
		t.Fatalf("fallback hierarchy failed to solve: %v", err)
	}
}

// TestChebySmoother: the Chebyshev polynomial smoother must converge —
// to the same answer — and the setup counter must move. It should need
// no more V-cycles than Jacobi at equal SpMV budget per cycle.
func TestChebySmoother(t *testing.T) {
	const n = 64
	a := laplacian2D(n)
	c0 := chebySetups.Value()
	mg, err := NewGMG(a, GridShape{NX: n, NY: n}, MGOptions{Smoother: SmootherCheby})
	if err != nil {
		t.Fatal(err)
	}
	if d := chebySetups.Value() - c0; d != 1 {
		t.Fatalf("cheby setup counter moved by %d, want 1", d)
	}
	if mg.Smoother() != SmootherCheby {
		t.Fatalf("smoother resolved to %v", mg.Smoother())
	}
	rng := rand.New(rand.NewSource(23))
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, a.Rows)
	res, err := CG(a, b, x, IterOptions{Tol: 1e-9, M: mg})
	if err != nil {
		t.Fatal(err)
	}
	if rn := residualNorm(a, b, x); rn/Norm2(b) > 1e-9 {
		t.Fatalf("residual %g after %d iters", rn, res.Iterations)
	}
	Fill(x, 0)
	jmg, err := NewGMG(a, GridShape{NX: n, NY: n}, MGOptions{Smoother: SmootherJacobi})
	if err != nil {
		t.Fatal(err)
	}
	jres, err := CG(a, b, x, IterOptions{Tol: 1e-9, M: jmg})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("64x64: cheby=%d iters, jacobi=%d iters", res.Iterations, jres.Iterations)
	if res.Iterations > jres.Iterations {
		t.Fatalf("Chebyshev cost %d iterations vs Jacobi %d, want <=", res.Iterations, jres.Iterations)
	}
}

// TestFMGGuess: the full-multigrid initial guess must cut outer CG
// iterations versus a zero start, and SparseSolver must engage it only
// on cold starts.
func TestFMGGuess(t *testing.T) {
	const n = 64
	a := laplacian2D(n)
	shape := GridShape{NX: n, NY: n}
	rng := rand.New(rand.NewSource(31))
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	cold := NewSparseSolverSymmetric(a, true, IterOptions{
		Tol: 1e-9, Precond: PrecondMG, Shape: &shape,
	})
	x := make([]float64, a.Rows)
	base, err := cold.Solve(b, x)
	if err != nil {
		t.Fatal(err)
	}
	fmg := NewSparseSolverSymmetric(a, true, IterOptions{
		Tol: 1e-9, Precond: PrecondMG, Shape: &shape, MG: MGOptions{FMGGuess: true},
	})
	Fill(x, 0)
	seeded, err := fmg.Solve(b, x)
	if err != nil {
		t.Fatal(err)
	}
	if rn := residualNorm(a, b, x); rn/Norm2(b) > 1e-9 {
		t.Fatalf("FMG-seeded solve residual %g", rn/Norm2(b))
	}
	t.Logf("64x64: zero-start=%d iters, fmg-start=%d iters", base.Iterations, seeded.Iterations)
	if seeded.Iterations >= base.Iterations {
		t.Fatalf("FMG guess did not reduce iterations (%d vs %d)", seeded.Iterations, base.Iterations)
	}
}

func TestParseMGPolicies(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want MGPrecision
	}{{"", PrecisionAuto}, {"auto", PrecisionAuto}, {"Float32", PrecisionFloat32}, {"f32", PrecisionFloat32}, {"float64", PrecisionFloat64}, {"F64", PrecisionFloat64}} {
		got, err := ParseMGPrecision(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMGPrecision(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseMGPrecision("f16"); err == nil {
		t.Fatal("ParseMGPrecision accepted f16")
	}
	for _, tc := range []struct {
		in   string
		want MGSmoother
	}{{"", SmootherAuto}, {"jacobi", SmootherJacobi}, {"Cheby", SmootherCheby}, {"chebyshev", SmootherCheby}} {
		got, err := ParseMGSmoother(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseMGSmoother(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseMGSmoother("sor"); err == nil {
		t.Fatal("ParseMGSmoother accepted sor")
	}
	// Process defaults resolve at setup when options stay auto.
	t.Cleanup(func() {
		SetDefaultMGPrecision(PrecisionAuto)
		SetDefaultMGSmoother(SmootherAuto)
	})
	SetDefaultMGPrecision(PrecisionFloat32)
	SetDefaultMGSmoother(SmootherCheby)
	a := laplacian2D(16)
	mg, err := NewGMG(a, GridShape{NX: 16, NY: 16}, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mg.Precision() != PrecisionFloat32 || mg.Smoother() != SmootherCheby {
		t.Fatalf("process defaults ignored: precision=%v smoother=%v", mg.Precision(), mg.Smoother())
	}
	mg, err = NewGMG(a, GridShape{NX: 16, NY: 16}, MGOptions{Precision: PrecisionFloat64, Smoother: SmootherJacobi})
	if err != nil {
		t.Fatal(err)
	}
	if mg.Precision() != PrecisionFloat64 || mg.Smoother() != SmootherJacobi {
		t.Fatal("per-options policy lost to the process default")
	}
}
