package num

import (
	"fmt"
	"math"
	"sort"
)

// Interpolator evaluates a 1D interpolant.
type Interpolator interface {
	// Eval returns the interpolated value at x. Outside the data range
	// the behaviour is implementation-defined (both implementations
	// here clamp to the end values' polynomial pieces).
	Eval(x float64) float64
}

// Linear is a piecewise-linear interpolant over strictly increasing
// abscissae.
type Linear struct {
	xs, ys []float64
}

// NewLinear builds a piecewise-linear interpolant. xs must be strictly
// increasing and the same length as ys (length >= 2).
func NewLinear(xs, ys []float64) (*Linear, error) {
	if err := checkInterpInput(xs, ys); err != nil {
		return nil, err
	}
	l := &Linear{xs: append([]float64(nil), xs...), ys: append([]float64(nil), ys...)}
	return l, nil
}

// Eval evaluates the interpolant, extrapolating linearly beyond the ends.
func (l *Linear) Eval(x float64) float64 {
	i := searchSegment(l.xs, x)
	x0, x1 := l.xs[i], l.xs[i+1]
	y0, y1 := l.ys[i], l.ys[i+1]
	t := (x - x0) / (x1 - x0)
	return y0 + t*(y1-y0)
}

// PCHIP is a monotone piecewise-cubic Hermite interpolant
// (Fritsch-Carlson). It never overshoots the data, which matters when
// interpolating physical property tables (viscosity, conductivity) where
// spurious oscillation would produce unphysical values.
type PCHIP struct {
	xs, ys, d []float64
}

// NewPCHIP builds a monotone cubic interpolant. xs must be strictly
// increasing and the same length as ys (length >= 2).
func NewPCHIP(xs, ys []float64) (*PCHIP, error) {
	if err := checkInterpInput(xs, ys); err != nil {
		return nil, err
	}
	n := len(xs)
	p := &PCHIP{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		d:  make([]float64, n),
	}
	h := make([]float64, n-1)
	delta := make([]float64, n-1)
	for i := 0; i < n-1; i++ {
		h[i] = xs[i+1] - xs[i]
		delta[i] = (ys[i+1] - ys[i]) / h[i]
	}
	if n == 2 {
		p.d[0], p.d[1] = delta[0], delta[0]
		return p, nil
	}
	// Interior slopes: weighted harmonic mean where the secants agree in
	// sign, zero otherwise (Fritsch-Carlson).
	for i := 1; i < n-1; i++ {
		if delta[i-1]*delta[i] <= 0 {
			p.d[i] = 0
			continue
		}
		w1 := 2*h[i] + h[i-1]
		w2 := h[i] + 2*h[i-1]
		p.d[i] = (w1 + w2) / (w1/delta[i-1] + w2/delta[i])
	}
	p.d[0] = edgeSlope(h[0], h[1], delta[0], delta[1])
	p.d[n-1] = edgeSlope(h[n-2], h[n-3], delta[n-2], delta[n-3])
	return p, nil
}

func edgeSlope(h0, h1, d0, d1 float64) float64 {
	s := ((2*h0+h1)*d0 - h0*d1) / (h0 + h1)
	if s*d0 <= 0 {
		return 0
	}
	if d0*d1 < 0 && math.Abs(s) > 3*math.Abs(d0) {
		return 3 * d0
	}
	return s
}

// Eval evaluates the interpolant; beyond the ends the boundary cubic
// piece is extended.
func (p *PCHIP) Eval(x float64) float64 {
	i := searchSegment(p.xs, x)
	h := p.xs[i+1] - p.xs[i]
	t := (x - p.xs[i]) / h
	h00 := (1 + 2*t) * (1 - t) * (1 - t)
	h10 := t * (1 - t) * (1 - t)
	h01 := t * t * (3 - 2*t)
	h11 := t * t * (t - 1)
	return h00*p.ys[i] + h10*h*p.d[i] + h01*p.ys[i+1] + h11*h*p.d[i+1]
}

func checkInterpInput(xs, ys []float64) error {
	if len(xs) != len(ys) {
		return ErrShape
	}
	if len(xs) < 2 {
		return fmt.Errorf("num: interpolation needs >= 2 points, got %d", len(xs))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return fmt.Errorf("num: abscissae must be strictly increasing (x[%d]=%g <= x[%d]=%g)",
				i, xs[i], i-1, xs[i-1])
		}
	}
	return nil
}

// searchSegment returns i such that xs[i] <= x < xs[i+1], clamped to the
// valid segment range [0, len(xs)-2].
func searchSegment(xs []float64, x float64) int {
	i := sort.SearchFloat64s(xs, x) - 1
	if i < 0 {
		i = 0
	}
	if i > len(xs)-2 {
		i = len(xs) - 2
	}
	return i
}
