package num

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// laplacian3D builds the SPD 7-point stencil on an nx x ny x nz grid,
// row-major with X fastest (mesh.Grid3D order).
func laplacian3D(nx, ny, nz int) *CSR {
	c := NewCOO(nx*ny*nz, nx*ny*nz)
	idx := func(i, j, k int) int { return (k*ny+j)*nx + i }
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				row := idx(i, j, k)
				c.Add(row, row, 6)
				if i > 0 {
					c.Add(row, idx(i-1, j, k), -1)
				}
				if i < nx-1 {
					c.Add(row, idx(i+1, j, k), -1)
				}
				if j > 0 {
					c.Add(row, idx(i, j-1, k), -1)
				}
				if j < ny-1 {
					c.Add(row, idx(i, j+1, k), -1)
				}
				if k > 0 {
					c.Add(row, idx(i, j, k-1), -1)
				}
				if k < nz-1 {
					c.Add(row, idx(i, j, k+1), -1)
				}
			}
		}
	}
	return c.ToCSR()
}

func TestCSRTranspose(t *testing.T) {
	c := NewCOO(3, 4)
	c.Add(0, 1, 2)
	c.Add(0, 3, -1)
	c.Add(1, 0, 5)
	c.Add(2, 2, 7)
	c.Add(2, 3, 0.5)
	a := c.ToCSR()
	at := a.Transpose()
	if at.Rows != 4 || at.Cols != 3 {
		t.Fatalf("transpose shape %dx%d, want 4x3", at.Rows, at.Cols)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("At(%d,%d)=%g but transpose At(%d,%d)=%g", i, j, a.At(i, j), j, i, at.At(j, i))
			}
		}
	}
}

func TestCSRMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randCSR := func(rows, cols int) *CSR {
		c := NewCOO(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if rng.Float64() < 0.4 {
					c.Add(i, j, rng.NormFloat64())
				}
			}
		}
		return c.ToCSR()
	}
	a := randCSR(7, 5)
	b := randCSR(5, 6)
	p := MatMul(a, b)
	if p.Rows != 7 || p.Cols != 6 {
		t.Fatalf("product shape %dx%d, want 7x6", p.Rows, p.Cols)
	}
	for i := 0; i < 7; i++ {
		// Columns must come out sorted (determinism contract).
		for k := p.RowPtr[i] + 1; k < p.RowPtr[i+1]; k++ {
			if p.ColIdx[k-1] >= p.ColIdx[k] {
				t.Fatalf("row %d columns not strictly sorted", i)
			}
		}
		for j := 0; j < 6; j++ {
			want := 0.0
			for l := 0; l < 5; l++ {
				want += a.At(i, l) * b.At(l, j)
			}
			if math.Abs(p.At(i, j)-want) > 1e-12 {
				t.Fatalf("product At(%d,%d)=%g, want %g", i, j, p.At(i, j), want)
			}
		}
	}
}

// TestGMGBeatsJacobi pins the PR's headline acceptance bound: on the
// 128x128 Laplacian, geometric-multigrid-preconditioned CG must converge
// in at most half the iterations of Jacobi-preconditioned CG.
func TestGMGBeatsJacobi(t *testing.T) {
	const n = 128
	a := laplacian2D(n)
	mg, err := NewGMG(a, GridShape{NX: n, NY: n}, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mg.Kind() != "gmg" || mg.Levels() < 3 {
		t.Fatalf("kind=%q levels=%d, want gmg with >=3 levels", mg.Kind(), mg.Levels())
	}
	rng := rand.New(rand.NewSource(5))
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	opt := IterOptions{Tol: 1e-8}
	x := make([]float64, a.Rows)
	opt.M = NewJacobi(a)
	jac, err := CG(a, b, x, opt)
	if err != nil {
		t.Fatal(err)
	}
	Fill(x, 0)
	opt.M = mg
	mgr, err := CG(a, b, x, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rn := residualNorm(a, b, x); rn > 1e-7 {
		t.Fatalf("MG-CG residual %g", rn)
	}
	if 2*mgr.Iterations > jac.Iterations {
		t.Fatalf("MG-CG took %d iterations vs Jacobi-CG %d, want >=2x fewer", mgr.Iterations, jac.Iterations)
	}
	t.Logf("128x128: jacobi=%d iters, gmg=%d iters (%.1fx)", jac.Iterations, mgr.Iterations,
		float64(jac.Iterations)/float64(mgr.Iterations))
}

func TestGMG3D(t *testing.T) {
	a := laplacian3D(24, 20, 8)
	mg, err := NewGMG(a, GridShape{NX: 24, NY: 20, NZ: 8}, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = float64(i%9) - 4
	}
	x := make([]float64, a.Rows)
	res, err := CG(a, b, x, IterOptions{Tol: 1e-9, M: mg})
	if err != nil {
		t.Fatal(err)
	}
	if rn := residualNorm(a, b, x); rn > 1e-8 {
		t.Fatalf("residual %g after %d iters", rn, res.Iterations)
	}
	Fill(x, 0)
	jac, err := CG(a, b, x, IterOptions{Tol: 1e-9, M: NewJacobi(a)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= jac.Iterations {
		t.Fatalf("3D MG-CG took %d iterations vs Jacobi %d, want fewer", res.Iterations, jac.Iterations)
	}
}

// TestGMGShapeMismatch: a shape that does not cover the matrix must be
// rejected at setup, not fail mysteriously later.
func TestGMGShapeMismatch(t *testing.T) {
	a := laplacian2D(16)
	if _, err := NewGMG(a, GridShape{NX: 16, NY: 17}, MGOptions{}); err == nil {
		t.Fatal("mismatched shape accepted")
	}
}

func TestAMGConvergence(t *testing.T) {
	const n = 64
	a := laplacian2D(n)
	mg, err := NewAMG(a, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mg.Kind() != "amg" || mg.Levels() < 2 {
		t.Fatalf("kind=%q levels=%d, want amg with >=2 levels", mg.Kind(), mg.Levels())
	}
	rng := rand.New(rand.NewSource(7))
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, a.Rows)
	res, err := CG(a, b, x, IterOptions{Tol: 1e-9, M: mg})
	if err != nil {
		t.Fatal(err)
	}
	if rn := residualNorm(a, b, x); rn > 1e-8 {
		t.Fatalf("residual %g after %d iters", rn, res.Iterations)
	}
	Fill(x, 0)
	jac, err := CG(a, b, x, IterOptions{Tol: 1e-9, M: NewJacobi(a)})
	if err != nil {
		t.Fatal(err)
	}
	if 2*res.Iterations > jac.Iterations {
		t.Fatalf("AMG-CG took %d iterations vs Jacobi %d, want >=2x fewer", res.Iterations, jac.Iterations)
	}
}

// TestMGApplyZeroAlloc is the per-cycle allocation contract: hierarchy
// setup may allocate, Apply must not.
func TestMGApplyZeroAlloc(t *testing.T) {
	SetKernelThreads(1)
	t.Cleanup(func() { SetKernelThreads(0) })
	a := laplacian2D(32)
	gmg, err := NewGMG(a, GridShape{NX: 32, NY: 32}, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	amg, err := NewAMG(a, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, a.Rows)
	z := make([]float64, a.Rows)
	for i := range r {
		r[i] = float64(i%13) - 6
	}
	for _, tc := range []struct {
		name string
		mg   *Multigrid
	}{{"gmg", gmg}, {"amg", amg}} {
		tc.mg.Apply(r, z) // warm any lazy paths before counting
		allocs := testing.AllocsPerRun(20, func() { tc.mg.Apply(r, z) })
		if allocs != 0 {
			t.Fatalf("%s Apply allocates %.1f per cycle, want 0", tc.name, allocs)
		}
	}
}

func TestParsePrecond(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precond
	}{{"auto", PrecondAuto}, {"", PrecondAuto}, {"Jacobi", PrecondJacobi}, {"mg", PrecondMG}, {"MULTIGRID", PrecondMG}} {
		got, err := ParsePrecond(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePrecond(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParsePrecond("ilu"); err == nil {
		t.Fatal("ParsePrecond accepted unknown name")
	}
}

// TestPrecondPolicy pins the auto-selection chain: options override
// process default, process default overrides the heuristic, and the
// heuristic picks MG only for large symmetric systems.
func TestPrecondPolicy(t *testing.T) {
	t.Cleanup(func() { SetDefaultPrecond(PrecondAuto) })
	small := laplacian2D(16) // 256 unknowns < MGAutoThreshold
	large := laplacian2D(64) // 4096 unknowns >= MGAutoThreshold
	isMG := func(p Preconditioner) bool { _, ok := p.(*Multigrid); return ok }

	SetDefaultPrecond(PrecondAuto)
	if s := NewSparseSolverSymmetric(small, true, IterOptions{}); isMG(s.Precond()) {
		t.Fatal("auto picked MG below the size threshold")
	}
	if s := NewSparseSolverSymmetric(large, true, IterOptions{}); !isMG(s.Precond()) {
		t.Fatal("auto did not pick MG at the size threshold")
	}
	if s := NewSparseSolverSymmetric(large, false, IterOptions{}); isMG(s.Precond()) {
		t.Fatal("auto picked MG for a nonsymmetric system")
	}

	// Forced MG builds GMG when a matching shape rides along, AMG
	// otherwise — even below the auto threshold.
	sh := &GridShape{NX: 16, NY: 16}
	if s := NewSparseSolverSymmetric(small, true, IterOptions{Precond: PrecondMG, Shape: sh}); !isMG(s.Precond()) {
		t.Fatal("forced MG ignored")
	} else if s.Precond().(*Multigrid).Kind() != "gmg" {
		t.Fatal("forced MG with shape did not build GMG")
	}
	if s := NewSparseSolverSymmetric(small, true, IterOptions{Precond: PrecondMG}); s.Precond().(*Multigrid).Kind() != "amg" {
		t.Fatal("forced MG without shape did not build AMG")
	}

	// Process-wide default applies when options stay auto, and the
	// options-level choice still wins over it.
	SetDefaultPrecond(PrecondJacobi)
	if s := NewSparseSolverSymmetric(large, true, IterOptions{}); isMG(s.Precond()) {
		t.Fatal("process-wide jacobi default ignored")
	}
	if s := NewSparseSolverSymmetric(large, true, IterOptions{Precond: PrecondMG}); !isMG(s.Precond()) {
		t.Fatal("per-options MG lost to the process default")
	}
}

// TestMaxIterOutcome pins the budget-exhaustion contract: the error is
// ErrMaxIter (still matching ErrNoConvergence), the solver does NOT
// fall back from CG to BiCGSTAB on it, and the dedicated obs counter
// moves while the fallback counter does not.
func TestMaxIterOutcome(t *testing.T) {
	a := laplacian2D(32)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, a.Rows)
	_, err := CG(a, b, x, IterOptions{Tol: 1e-14, MaxIter: 2, M: NewJacobi(a)})
	if !errors.Is(err, ErrMaxIter) || !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("budget exhaustion returned %v, want ErrMaxIter wrapping ErrNoConvergence", err)
	}

	m0, f0, fail0 := maxIterExhausted.Value(), cgFallbacks.Value(), solveFailures.Value()
	Fill(x, 0)
	s := NewSparseSolverSymmetric(a, true, IterOptions{Tol: 1e-14, MaxIter: 2, Precond: PrecondJacobi})
	if _, err := s.Solve(b, x); !errors.Is(err, ErrMaxIter) {
		t.Fatalf("SparseSolver returned %v, want ErrMaxIter", err)
	}
	if d := maxIterExhausted.Value() - m0; d != 1 {
		t.Fatalf("maxiter counter moved by %d, want 1", d)
	}
	if d := cgFallbacks.Value() - f0; d != 0 {
		t.Fatalf("fallback counter moved by %d on budget exhaustion, want 0", d)
	}
	if d := solveFailures.Value() - fail0; d != 1 {
		t.Fatalf("failure counter moved by %d, want 1", d)
	}
}

// TestMaxIterDefaultCap: the derived 10*n default must clamp on large
// systems instead of masking non-convergence behind huge budgets.
func TestMaxIterDefaultCap(t *testing.T) {
	o := IterOptions{}.withDefaults(1 << 20)
	if o.MaxIter != defaultMaxIterCap {
		t.Fatalf("default MaxIter for n=1<<20 is %d, want cap %d", o.MaxIter, defaultMaxIterCap)
	}
	o = IterOptions{}.withDefaults(10)
	if o.MaxIter != 200 {
		t.Fatalf("default MaxIter for n=10 is %d, want floor 200", o.MaxIter)
	}
	o = IterOptions{MaxIter: 123456}.withDefaults(10)
	if o.MaxIter != 123456 {
		t.Fatalf("explicit MaxIter overridden to %d", o.MaxIter)
	}
}

// TestMGTelemetry: hierarchy setup and cycle counters move.
func TestMGTelemetry(t *testing.T) {
	s0, c0, l0 := mgSetupsGMG.Value(), mgCycles.Value(), mgLevelsBuilt.Value()
	a := laplacian2D(32)
	mg, err := NewGMG(a, GridShape{NX: 32, NY: 32}, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, a.Rows)
	z := make([]float64, a.Rows)
	r[0] = 1
	mg.Apply(r, z)
	mg.Apply(r, z)
	if d := mgSetupsGMG.Value() - s0; d != 1 {
		t.Fatalf("gmg setup counter moved by %d, want 1", d)
	}
	if d := mgCycles.Value() - c0; d != 2 {
		t.Fatalf("cycle counter moved by %d, want 2", d)
	}
	if d := mgLevelsBuilt.Value() - l0; int(d) != mg.Levels() {
		t.Fatalf("levels counter moved by %d, want %d", d, mg.Levels())
	}
}
