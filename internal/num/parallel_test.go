package num

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// forceParallel shrinks the fork thresholds and raises the thread count
// so the parallel path runs even for tiny operands, restoring the
// defaults on cleanup.
func forceParallel(t *testing.T, threads int) {
	t.Helper()
	oldMin, oldChunk := parallelMinWork, parallelChunkWork
	SetKernelThreads(threads)
	parallelMinWork = 8
	parallelChunkWork = 4
	t.Cleanup(func() {
		parallelMinWork, parallelChunkWork = oldMin, oldChunk
		SetKernelThreads(0)
	})
}

func relErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if m := math.Abs(want); m > 1 {
		return d / m
	}
	return d
}

// randomCSR builds an n x n sparse matrix with a banded random pattern.
func randomCSR(rng *rand.Rand, n int) *CSR {
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 4+rng.Float64())
		for off := 1; off <= 3; off++ {
			if j := i - off; j >= 0 && rng.Float64() < 0.7 {
				c.Add(i, j, rng.NormFloat64())
			}
			if j := i + off; j < n && rng.Float64() < 0.7 {
				c.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return c.ToCSR()
}

// TestParallelKernelsMatchSerial is the property test of the kernel
// layer: for random operands across sizes spanning both sides of the
// fork threshold, the parallel kernels must agree with the serial
// ranges to within 1e-13 relative error.
func TestParallelKernelsMatchSerial(t *testing.T) {
	forceParallel(t, 4)
	rng := rand.New(rand.NewSource(42))
	sizes := []int{1, 2, 3, 5, 7, 16, 63, 64, 65, 100, 257, 1000, 4096, 12345}
	for _, n := range sizes {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * math.Exp(4*rng.Float64())
			y[i] = rng.NormFloat64()
		}

		if got, want := Dot(x, y), dotRange(x, y, 0, n); relErr(got, want) > 1e-13 {
			t.Errorf("n=%d: Dot parallel %g vs serial %g", n, got, want)
		}

		wantNorm := 0.0
		if m, s := norm2Range(x, 0, n); m > 0 {
			wantNorm = m * math.Sqrt(s)
		}
		if got := Norm2(x); relErr(got, wantNorm) > 1e-13 {
			t.Errorf("n=%d: Norm2 parallel %g vs serial %g", n, got, wantNorm)
		}

		ySerial := append([]float64(nil), y...)
		axpyRange(1.7, x, ySerial, 0, n)
		yPar := append([]float64(nil), y...)
		Axpy(1.7, x, yPar)
		for i := range yPar {
			if relErr(yPar[i], ySerial[i]) > 1e-13 {
				t.Errorf("n=%d: Axpy mismatch at %d: %g vs %g", n, i, yPar[i], ySerial[i])
				break
			}
		}

		a := randomCSR(rng, n)
		got := make([]float64, n)
		want := make([]float64, n)
		a.MulVec(x, got)
		mulVecRange(a, x, want, 0, n)
		for i := range got {
			if relErr(got[i], want[i]) > 1e-13 {
				t.Errorf("n=%d: MulVec mismatch at row %d: %g vs %g", n, i, got[i], want[i])
				break
			}
		}
	}
}

// TestParallelNorm2EdgeCases covers the all-zero vector and extreme
// magnitudes where the overflow-safe scaling matters.
func TestParallelNorm2EdgeCases(t *testing.T) {
	forceParallel(t, 4)
	zero := make([]float64, 1000)
	if got := Norm2(zero); got != 0 {
		t.Fatalf("Norm2(zero) = %g", got)
	}
	// One huge entry among zeros: no overflow, exact answer.
	big := make([]float64, 1000)
	big[777] = 1e300
	if got := Norm2(big); relErr(got, 1e300) > 1e-13 {
		t.Fatalf("Norm2(huge) = %g", got)
	}
}

func TestKernelThreadsConfig(t *testing.T) {
	SetKernelThreads(3)
	if got := KernelThreads(); got != 3 {
		t.Fatalf("KernelThreads = %d after SetKernelThreads(3)", got)
	}
	SetKernelThreads(0)
	if got := KernelThreads(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("KernelThreads = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetKernelThreads(-5) // negative normalizes to the default
	if got := KernelThreads(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("KernelThreads = %d after negative set", got)
	}
}

// TestSerialFallbackBelowThreshold pins the fork gate: operands below
// parallelMinWork must not spawn kernel workers.
func TestSerialFallbackBelowThreshold(t *testing.T) {
	SetKernelThreads(8)
	t.Cleanup(func() { SetKernelThreads(0) })
	if c := kernelChunks(parallelMinWork - 1); c != 1 {
		t.Fatalf("kernelChunks(minWork-1) = %d, want 1", c)
	}
	if c := kernelChunks(parallelMinWork * 4); c < 2 {
		t.Fatalf("kernelChunks(4*minWork) = %d, want >= 2", c)
	}
	if c := kernelChunks(1 << 30); c > maxKernelChunks {
		t.Fatalf("kernelChunks(huge) = %d exceeds cap %d", c, maxKernelChunks)
	}
}

// TestParallelCGMatchesSerial runs a full Krylov solve both ways: the
// solutions must agree to solver tolerance.
func TestParallelCGMatchesSerial(t *testing.T) {
	a := laplacian2D(48)
	n := a.Rows
	rng := rand.New(rand.NewSource(7))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	opt := IterOptions{Tol: 1e-12, M: NewJacobi(a)}

	SetKernelThreads(1)
	xSerial := make([]float64, n)
	if _, err := CG(a, b, xSerial, opt); err != nil {
		t.Fatal(err)
	}

	forceParallel(t, 4)
	xPar := make([]float64, n)
	if _, err := CG(a, b, xPar, opt); err != nil {
		t.Fatal(err)
	}
	for i := range xPar {
		if relErr(xPar[i], xSerial[i]) > 1e-9 {
			t.Fatalf("solution mismatch at %d: %g vs %g", i, xPar[i], xSerial[i])
		}
	}
}
