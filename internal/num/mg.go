package num

import (
	"fmt"
	"math"

	"bright/internal/obs"
)

// Multigrid telemetry (process-wide; see internal/obs). Setup is counted
// per hierarchy construction, cycles per preconditioner application —
// the ratio is the reuse factor that justifies caching MG per operator.
var (
	mgSetupsGMG = obs.Default.Counter("bright_mg_setups_total",
		"Multigrid hierarchy constructions by kind.", obs.L("kind", "gmg"))
	mgSetupsAMG = obs.Default.Counter("bright_mg_setups_total",
		"Multigrid hierarchy constructions by kind.", obs.L("kind", "amg"))
	mgCycles = obs.Default.Counter("bright_mg_cycles_total",
		"Multigrid V-cycles executed (one Apply may run several).")
	mgLevelsBuilt = obs.Default.Counter("bright_mg_levels_total",
		"Multigrid levels constructed across all setups (levels per setup = depth of that hierarchy).")
	mgCoarseHeavySmooths = obs.Default.Counter("bright_mg_coarse_heavy_smooths_total",
		"Coarsest-level visits that fell back to heavy smoothing because the direct LU was unavailable (singular coarse operator).")
	mgPrecisionFallbacks = obs.Default.Counter("bright_mg_precision_fallbacks_total",
		"Mixed-precision multigrid applications that fell back to the float64 hierarchy (non-finite or stalled float32 cycle, or un-mirrorable operator at setup).")
)

// GridShape describes the structured grid behind a matrix whose unknowns
// are ordered row-major with X fastest (mesh.Grid2D/Grid3D Index order).
// NZ <= 1 means a 2D grid.
type GridShape struct {
	NX, NY, NZ int
}

func (s GridShape) nz() int {
	if s.NZ <= 1 {
		return 1
	}
	return s.NZ
}

// Cells returns the total unknown count the shape implies.
func (s GridShape) Cells() int { return s.NX * s.NY * s.nz() }

// coarsen halves every axis (cell-centered: ceil(n/2)).
func (s GridShape) coarsen() GridShape {
	h := func(n int) int { return (n + 1) / 2 }
	return GridShape{NX: h(s.NX), NY: h(s.NY), NZ: h(s.nz())}
}

// MGOptions tunes the multigrid hierarchy. The zero value gives a
// symmetric V(1,1) cycle with damped-Jacobi smoothing — symmetric
// pre/post smoothing and R = P^T keep the preconditioner SPD for SPD
// operators, which CG requires.
type MGOptions struct {
	// PreSmooth / PostSmooth are damped-Jacobi sweeps per level per
	// cycle (defaults 1 and 1; keep them equal for CG).
	PreSmooth, PostSmooth int
	// Omega is the Jacobi damping factor (default 0.8).
	Omega float64
	// CoarsestN stops coarsening once a level has at most this many
	// unknowns; that level is solved directly by dense LU (default 64).
	CoarsestN int
	// MaxLevels bounds the hierarchy depth (default 16).
	MaxLevels int
	// Cycles is the number of V-cycles per Apply (default 1).
	Cycles int
	// Theta is the AMG strength-of-connection threshold (default 0.08).
	Theta float64
	// Smoother selects the per-level smoother (damped Jacobi or the
	// Chebyshev polynomial). SmootherAuto defers to the process default
	// (SetDefaultMGSmoother), then to Jacobi.
	Smoother MGSmoother
	// ChebyDegree is the Chebyshev polynomial degree per smoothing pass
	// (default 3). One degree costs one SpMV, like one Jacobi sweep.
	ChebyDegree int
	// Precision selects the arithmetic of the V-cycle interior.
	// PrecisionAuto defers to the process default (SetDefaultMGPrecision
	// / BRIGHT_MG_PRECISION), then to float64. Float32 runs smoothing,
	// transfers and coarse work on a float32 mirror of the hierarchy,
	// promoting/demoting at the Apply boundary; it falls back to the
	// float64 hierarchy (sticky, counted) when the float32 cycle goes
	// non-finite or stops reducing the residual.
	Precision MGPrecision
	// Format selects the SpMV storage layout attached to each level's
	// operator (transfers stay CSR — they are applied once per cycle
	// and their rectangular shapes pad badly). FormatAuto defers to the
	// process default, then to the per-level size heuristic, which
	// naturally leaves small coarse levels in CSR.
	Format SparseFormat
	// FMGGuess enables the full-multigrid initial guess in
	// SparseSolver.Solve: when the warm start is cold (all-zero x), one
	// FMG pass seeds the outer Krylov iteration instead of starting from
	// zero.
	FMGGuess bool
}

func (o MGOptions) withDefaults() MGOptions {
	if o.PreSmooth <= 0 {
		o.PreSmooth = 1
	}
	if o.PostSmooth <= 0 {
		o.PostSmooth = 1
	}
	if o.Omega <= 0 {
		o.Omega = 0.8
	}
	if o.CoarsestN <= 0 {
		o.CoarsestN = 64
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 16
	}
	if o.Cycles <= 0 {
		o.Cycles = 1
	}
	if o.Theta <= 0 {
		o.Theta = 0.08
	}
	if o.ChebyDegree <= 0 {
		o.ChebyDegree = 3
	}
	return o
}

// mgLevel is one rung of the hierarchy. p maps the next-coarser level's
// correction up to this level; r (= p^T) maps this level's residual
// down. Both are nil on the coarsest level. The x/b/res buffers are
// sized at setup so Apply never allocates.
type mgLevel struct {
	a       *CSR
	invDiag []float64
	p, r    *CSR
	x, b    []float64
	res     []float64
	d       []float64 // Chebyshev direction scratch (nil under Jacobi)
	hi, lo  float64   // Chebyshev eigenvalue window of D^{-1}A
}

// mgLevel32 is the float32 mirror of one hierarchy rung for the
// mixed-precision cycle: demoted operator, transfers and inverse
// diagonal, plus float32 work buffers. The eigenvalue window is shared
// with the float64 level (estimated once, in float64, at setup).
type mgLevel32 struct {
	a       *CSR32
	invDiag []float32
	p, r    *CSR32
	x, b    []float32
	res     []float32
	d       []float32
	hi, lo  float64
}

// Multigrid is a V-cycle preconditioner over a fixed operator: geometric
// (NewGMG, structured grids) or aggregation-based algebraic (NewAMG, any
// CSR). Setup builds the full hierarchy — prolongations, Galerkin coarse
// operators A_c = P^T A P, inverse diagonals and a dense LU of the
// coarsest level — once; Apply then runs allocation-free V-cycles, so a
// Multigrid cached per operator (thermal session, PDN grid) costs setup
// exactly once. Apply is not safe for concurrent use; SparseSolver
// serializes solves, which covers the intended use.
type Multigrid struct {
	levels []*mgLevel
	coarse *LU
	opt    MGOptions
	kind   string

	// Resolved policies (options -> process default -> built-in).
	smoother  MGSmoother
	precision MGPrecision

	// Float32 mirror hierarchy (nil unless precision resolved to
	// float32 and the operator mirrored cleanly).
	lev32    []*mgLevel32
	coarseB  []float64 // f64 staging for the coarse LU in the f32 cycle
	coarseX  []float64
	fellBack bool // sticky: float32 cycle went non-finite or stalled
	applies  int  // Apply count, used to pace the f32 stall probe
	stalls   int  // consecutive stalled float32 applies observed
}

// Kind reports "gmg" or "amg".
func (m *Multigrid) Kind() string { return m.kind }

// Levels reports the hierarchy depth, including the coarsest level.
func (m *Multigrid) Levels() int { return len(m.levels) }

// Smoother reports the resolved smoother policy.
func (m *Multigrid) Smoother() MGSmoother { return m.smoother }

// Precision reports the precision the cycle is currently running at:
// the resolved policy, demoted to float64 if the float32 path fell
// back (at setup or stickily during Apply).
func (m *Multigrid) Precision() MGPrecision {
	if m.lev32 == nil || m.fellBack {
		return PrecisionFloat64
	}
	return PrecisionFloat32
}

// NewGMG builds a geometric multigrid hierarchy for a matrix discretized
// on the given structured grid: cell-centered bilinear (trilinear in 3D)
// prolongation, full-weighting restriction R = P^T, and Galerkin coarse
// operators, re-coarsening by 2 per axis until CoarsestN.
func NewGMG(a *CSR, shape GridShape, opt MGOptions) (*Multigrid, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	if shape.NX <= 0 || shape.NY <= 0 || shape.Cells() != a.Rows {
		return nil, fmt.Errorf("num: grid shape %dx%dx%d does not cover %d unknowns",
			shape.NX, shape.NY, shape.nz(), a.Rows)
	}
	opt = opt.withDefaults()
	m := &Multigrid{opt: opt, kind: "gmg"}
	cur := a
	curShape := shape
	for len(m.levels) < opt.MaxLevels-1 && cur.Rows > opt.CoarsestN {
		next := curShape.coarsen()
		if next.Cells() >= cur.Rows {
			break // coarsening stalled (grid already 1x1x1-ish)
		}
		p := interpolation(curShape, next)
		if err := m.pushLevel(cur, p); err != nil {
			return nil, err
		}
		cur = MatMul(m.levels[len(m.levels)-1].r, MatMul(cur, p))
		curShape = next
	}
	if err := m.finish(cur); err != nil {
		return nil, err
	}
	m.setupPolicies()
	mgSetupsGMG.Inc()
	mgLevelsBuilt.Add(uint64(len(m.levels)))
	return m, nil
}

// NewAMG builds an aggregation-based algebraic multigrid hierarchy from
// the matrix alone: strength-filtered greedy aggregation, Jacobi-smoothed
// piecewise-constant prolongation and Galerkin coarse operators. It is
// the fallback for operators without grid structure (irregular PDN
// stamps, mixed solid/fluid thermal networks).
func NewAMG(a *CSR, opt MGOptions) (*Multigrid, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	opt = opt.withDefaults()
	m := &Multigrid{opt: opt, kind: "amg"}
	cur := a
	for len(m.levels) < opt.MaxLevels-1 && cur.Rows > opt.CoarsestN {
		p, ok := aggregationProlongation(cur, opt.Theta, opt.Omega)
		if !ok {
			break // aggregation stalled; solve what we have
		}
		if err := m.pushLevel(cur, p); err != nil {
			return nil, err
		}
		cur = MatMul(m.levels[len(m.levels)-1].r, MatMul(cur, p))
	}
	if err := m.finish(cur); err != nil {
		return nil, err
	}
	m.setupPolicies()
	mgSetupsAMG.Inc()
	mgLevelsBuilt.Add(uint64(len(m.levels)))
	return m, nil
}

// pushLevel appends a non-coarsest level with prolongation p.
func (m *Multigrid) pushLevel(a *CSR, p *CSR) error {
	inv, err := invDiagOf(a)
	if err != nil {
		return err
	}
	a.EnsureFormat(m.opt.Format)
	m.levels = append(m.levels, &mgLevel{
		a: a, invDiag: inv, p: p, r: p.Transpose(),
		x: make([]float64, a.Rows), b: make([]float64, a.Rows), res: make([]float64, a.Rows),
	})
	return nil
}

// finish installs the coarsest level and its direct factorization.
func (m *Multigrid) finish(a *CSR) error {
	inv, err := invDiagOf(a)
	if err != nil {
		return err
	}
	a.EnsureFormat(m.opt.Format)
	m.levels = append(m.levels, &mgLevel{
		a: a, invDiag: inv,
		x: make([]float64, a.Rows), b: make([]float64, a.Rows), res: make([]float64, a.Rows),
	})
	lu, err := FactorLU(a.ToDense())
	if err != nil {
		// A singular coarse operator (e.g. a pure-Neumann network whose
		// null space survived coarsening) falls back to heavy smoothing
		// on that level instead of failing the whole hierarchy.
		m.coarse = nil
		return nil
	}
	m.coarse = lu
	return nil
}

func invDiagOf(a *CSR) ([]float64, error) {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("num: multigrid needs a nonzero finite diagonal (row %d has %g)", i, v)
		}
		inv[i] = 1 / v
	}
	return inv, nil
}

// setupPolicies resolves the smoother and precision policies (options
// -> process default -> built-in) and builds whatever the resolved
// policies need: Chebyshev eigenvalue windows and direction scratch,
// and the float32 mirror hierarchy. Called once at the end of setup.
func (m *Multigrid) setupPolicies() {
	sm := m.opt.Smoother
	if sm == SmootherAuto {
		sm = DefaultMGSmoother()
	}
	if sm == SmootherAuto {
		sm = SmootherJacobi
	}
	m.smoother = sm
	if sm == SmootherCheby {
		for _, lev := range m.levels {
			rho := estimateSpectralRadius(lev.a, lev.invDiag, chebyPowerIters)
			if rho <= 0 {
				// Degenerate level: chebySmooth falls back to Jacobi on
				// the zeroed window.
				continue
			}
			lev.lo, lev.hi = chebyLoFrac*rho, chebyHiFrac*rho
			lev.d = make([]float64, lev.a.Rows)
		}
		chebySetups.Inc()
	}
	pr := m.opt.Precision
	if pr == PrecisionAuto {
		pr = DefaultMGPrecision()
	}
	if pr == PrecisionAuto {
		pr = PrecisionFloat64
	}
	m.precision = pr
	if pr == PrecisionFloat32 && !m.build32() {
		// Operator does not mirror faithfully (float32 overflow / int32
		// index overflow): permanent setup-time fallback.
		m.lev32 = nil
		mgPrecisionFallbacks.Inc()
	}
}

// build32 constructs the float32 mirror hierarchy. Returns false when
// any operator or transfer cannot be demoted faithfully.
func (m *Multigrid) build32() bool {
	m.lev32 = make([]*mgLevel32, len(m.levels))
	for l, lev := range m.levels {
		l32 := &mgLevel32{
			a:       NewCSR32(lev.a),
			invDiag: make([]float32, len(lev.invDiag)),
			x:       make([]float32, lev.a.Rows),
			b:       make([]float32, lev.a.Rows),
			res:     make([]float32, lev.a.Rows),
			hi:      lev.hi,
			lo:      lev.lo,
		}
		if l32.a == nil {
			return false
		}
		demote(l32.invDiag, lev.invDiag)
		if !finite32(l32.invDiag) {
			return false
		}
		if lev.p != nil {
			if l32.p, l32.r = NewCSR32(lev.p), NewCSR32(lev.r); l32.p == nil || l32.r == nil {
				return false
			}
		}
		if m.smoother == SmootherCheby && lev.d != nil {
			l32.d = make([]float32, lev.a.Rows)
		}
		m.lev32[l] = l32
	}
	coarseN := m.levels[len(m.levels)-1].a.Rows
	m.coarseB = make([]float64, coarseN)
	m.coarseX = make([]float64, coarseN)
	return true
}

// Apply runs the configured number of V-cycles on A z = r from a zero
// initial guess. It is allocation-free: every buffer was sized at
// setup. Under the float32 policy the cycles run on the mirror
// hierarchy with the residual scale-normalized at the boundary (so
// tiny late-iteration residuals never demote to a zero block); a
// non-finite or stalled float32 cycle falls back — stickily, and
// counted — to the float64 hierarchy, which always exists.
func (m *Multigrid) Apply(r, z []float64) {
	m.applies++
	if m.lev32 != nil && !m.fellBack && m.apply32(r, z) {
		return
	}
	f := m.levels[0]
	copy(f.b, r)
	Fill(f.x, 0)
	for c := 0; c < m.opt.Cycles; c++ {
		m.vcycle(0)
	}
	copy(z, f.x)
	mgCycles.Add(uint64(m.opt.Cycles))
}

// apply32 runs the V-cycles on the float32 hierarchy. It reports false
// (after arranging the fallback) when the cycle result is unusable.
func (m *Multigrid) apply32(r, z []float64) bool {
	scale := maxAbs(r)
	if scale == 0 {
		Fill(z, 0)
		return true
	}
	f := m.lev32[0]
	demoteScaled(f.b, r, 1/scale)
	fill32(f.x, 0)
	for c := 0; c < m.opt.Cycles; c++ {
		m.vcycle32(0)
	}
	if !finite32(f.x) {
		m.fellBack = true
		mgPrecisionFallbacks.Inc()
		return false
	}
	// Stall probe: an extra float32 SpMV comparing ||b - A x|| against
	// ||b||. A healthy cycle reduces the residual well below 1; no
	// reduction means float32 has run out of bits for this operator.
	// Probing the first applies and then every 32nd keeps the
	// steady-state overhead near zero while still catching a stall
	// within a bounded number of wasted cycles.
	if m.applies <= 2 || m.applies%32 == 0 {
		f.a.MulVec(f.x, f.res)
		var bn, rn float64
		for i, bv := range f.b {
			d := float64(bv) - float64(f.res[i])
			rn += d * d
			bn += float64(bv) * float64(bv)
		}
		if rn >= 0.95*0.95*bn {
			m.stalls++
			if m.stalls >= 2 {
				m.fellBack = true
				mgPrecisionFallbacks.Inc()
				return false
			}
		} else {
			m.stalls = 0
		}
	}
	promoteScaled(z, f.x, scale)
	mgCycles.Add(uint64(m.opt.Cycles))
	return true
}

func (m *Multigrid) vcycle(l int) {
	lev := m.levels[l]
	if l == len(m.levels)-1 {
		if m.coarse != nil {
			// LU never fails here: shapes were fixed at setup.
			//lint:ignore errignore SolveInto only errors on shape mismatch, pinned at setup
			_ = m.coarse.SolveInto(lev.x, lev.b)
		} else {
			mgCoarseHeavySmooths.Inc()
			m.smooth(lev, 4*(m.opt.PreSmooth+m.opt.PostSmooth))
		}
		return
	}
	m.smooth(lev, m.opt.PreSmooth)
	lev.a.MulVec(lev.x, lev.res)
	for i := range lev.res {
		lev.res[i] = lev.b[i] - lev.res[i]
	}
	next := m.levels[l+1]
	lev.r.MulVec(lev.res, next.b)
	Fill(next.x, 0)
	m.vcycle(l + 1)
	lev.p.MulVec(next.x, lev.res)
	Axpy(1, lev.res, lev.x)
	m.smooth(lev, m.opt.PostSmooth)
}

// vcycle32 is vcycle on the float32 mirror. The coarsest level promotes
// through the float64 LU (the coarse system is tiny — at most CoarsestN
// unknowns — so the promote/demote staging is noise, and reusing the
// existing factorization keeps the float32 hierarchy LU-free).
func (m *Multigrid) vcycle32(l int) {
	lev := m.lev32[l]
	if l == len(m.lev32)-1 {
		if m.coarse != nil {
			promote(m.coarseB, lev.b)
			//lint:ignore errignore SolveInto only errors on shape mismatch, pinned at setup
			_ = m.coarse.SolveInto(m.coarseX, m.coarseB)
			demote(lev.x, m.coarseX)
		} else {
			mgCoarseHeavySmooths.Inc()
			m.smooth32(lev, 4*(m.opt.PreSmooth+m.opt.PostSmooth))
		}
		return
	}
	m.smooth32(lev, m.opt.PreSmooth)
	lev.a.MulVec(lev.x, lev.res)
	for i := range lev.res {
		lev.res[i] = lev.b[i] - lev.res[i]
	}
	next := m.lev32[l+1]
	lev.r.MulVec(lev.res, next.b)
	fill32(next.x, 0)
	m.vcycle32(l + 1)
	lev.p.MulVec(next.x, lev.res)
	for i, v := range lev.res {
		lev.x[i] += v
	}
	m.smooth32(lev, m.opt.PostSmooth)
}

// smooth dispatches one smoothing pass on a float64 level. Under
// Chebyshev, sweeps scales the polynomial degree so heavier requests
// (the coarse escape hatch) still mean more work.
func (m *Multigrid) smooth(lev *mgLevel, sweeps int) {
	if m.smoother == SmootherCheby && lev.d != nil {
		m.chebySmooth(lev, sweeps*m.opt.ChebyDegree)
		return
	}
	m.jacobiSmooth(lev, sweeps)
}

func (m *Multigrid) smooth32(lev *mgLevel32, sweeps int) {
	if m.smoother == SmootherCheby && lev.d != nil {
		m.chebySmooth32(lev, sweeps*m.opt.ChebyDegree)
		return
	}
	m.jacobiSmooth32(lev, sweeps)
}

// jacobiSmooth runs damped-Jacobi sweeps x += omega * D^{-1} (b - A x).
// The SpMV rides the kernel pool; the pointwise update is cheap enough
// serial.
func (m *Multigrid) jacobiSmooth(lev *mgLevel, sweeps int) {
	for s := 0; s < sweeps; s++ {
		lev.a.MulVec(lev.x, lev.res)
		om := m.opt.Omega
		for i, d := range lev.invDiag {
			lev.x[i] += om * d * (lev.b[i] - lev.res[i])
		}
	}
}

func (m *Multigrid) jacobiSmooth32(lev *mgLevel32, sweeps int) {
	om := float32(m.opt.Omega)
	for s := 0; s < sweeps; s++ {
		lev.a.MulVec(lev.x, lev.res)
		for i, d := range lev.invDiag {
			lev.x[i] += om * d * (lev.b[i] - lev.res[i])
		}
	}
}

// FMG runs one full-multigrid pass on A x = b: the right-hand side is
// restricted down the hierarchy, the coarsest system is solved
// directly, and the solution is interpolated back up with one V-cycle
// per level. The result lands in x — it is an O(n) initial guess whose
// error is already smooth on every scale, which typically saves the
// outer Krylov loop several iterations versus starting from zero.
// Always runs on the float64 hierarchy (it executes once per solve, so
// bandwidth is not the bottleneck).
func (m *Multigrid) FMG(b, x []float64) {
	last := len(m.levels) - 1
	copy(m.levels[0].b, b)
	for l := 0; l < last; l++ {
		m.levels[l].r.MulVec(m.levels[l].b, m.levels[l+1].b)
	}
	lev := m.levels[last]
	if m.coarse != nil {
		//lint:ignore errignore SolveInto only errors on shape mismatch, pinned at setup
		_ = m.coarse.SolveInto(lev.x, lev.b)
	} else {
		mgCoarseHeavySmooths.Inc()
		Fill(lev.x, 0)
		m.smooth(lev, 4*(m.opt.PreSmooth+m.opt.PostSmooth))
	}
	for l := last - 1; l >= 0; l-- {
		m.levels[l].p.MulVec(m.levels[l+1].x, m.levels[l].x)
		m.vcycle(l)
	}
	copy(x, m.levels[0].x)
	mgCycles.Add(uint64(last))
}

// interpolation builds the cell-centered bilinear/trilinear prolongation
// from the coarse shape to the fine shape as a CSR (fine rows x coarse
// cols). Each fine cell interpolates from its parent coarse cell and the
// axis neighbours its center leans toward, with 1D weights (3/4, 1/4)
// tensored across axes; at domain boundaries the stencil clamps to
// injection.
func interpolation(fine, coarse GridShape) *CSR {
	ax := axisWeights(fine.NX, coarse.NX)
	ay := axisWeights(fine.NY, coarse.NY)
	az := axisWeights(fine.nz(), coarse.nz())
	co := NewCOO(fine.Cells(), coarse.Cells())
	cIdx := func(i, j, k int) int { return (k*coarse.NY+j)*coarse.NX + i }
	row := 0
	for k := 0; k < fine.nz(); k++ {
		for j := 0; j < fine.NY; j++ {
			for i := 0; i < fine.NX; i++ {
				for _, wz := range az[k] {
					for _, wy := range ay[j] {
						for _, wx := range ax[i] {
							co.Add(row, cIdx(wx.i, wy.i, wz.i), wx.w*wy.w*wz.w)
						}
					}
				}
				row++
			}
		}
	}
	return co.ToCSR()
}

// axisEntry is one (coarse index, weight) contribution along an axis.
type axisEntry struct {
	i int
	w float64
}

// axisWeights returns, per fine cell, the 1D cell-centered linear
// interpolation stencil: parent coarse cell with weight 3/4 and the
// neighbour the fine center leans toward with 1/4, clamped to injection
// at the boundary.
func axisWeights(n, nc int) [][]axisEntry {
	out := make([][]axisEntry, n)
	for i := 0; i < n; i++ {
		c := i / 2
		if c >= nc {
			c = nc - 1
		}
		nb := c + 1
		if i%2 == 0 {
			nb = c - 1
		}
		if nb < 0 || nb >= nc {
			out[i] = []axisEntry{{i: c, w: 1}}
		} else {
			out[i] = []axisEntry{{i: c, w: 0.75}, {i: nb, w: 0.25}}
		}
	}
	return out
}

// aggregationProlongation builds the smoothed-aggregation prolongation
// for one AMG coarsening step. Returns ok=false when aggregation cannot
// shrink the problem (no strong connections left).
func aggregationProlongation(a *CSR, theta, omega float64) (*CSR, bool) {
	agg, nAgg := aggregate(a, theta)
	if nAgg <= 0 || nAgg >= a.Rows {
		return nil, false
	}
	// Tentative piecewise-constant prolongation.
	co := NewCOO(a.Rows, nAgg)
	for i, g := range agg {
		co.Add(i, g, 1)
	}
	pt := co.ToCSR()
	// One damped-Jacobi smoothing pass: P = (I - omega D^{-1} A) P_t.
	// Smoothing spreads each aggregate's footprint over its neighbours,
	// which restores near-optimal convergence on diffusion operators.
	d := a.Diag()
	jac := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: a.RowPtr,
		ColIdx: a.ColIdx,
		Val:    make([]float64, a.NNZ()),
	}
	for i := 0; i < a.Rows; i++ {
		di := d[i]
		if di == 0 {
			di = 1
		}
		s := omega / di
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			jac.Val[k] = -s * a.Val[k]
			if a.ColIdx[k] == i {
				jac.Val[k] += 1
			}
		}
	}
	return MatMul(jac, pt), true
}

// aggregate greedily groups nodes over strong connections
// (|a_ij| >= theta * sqrt(|a_ii a_jj|)): a first pass seeds aggregates
// from still-free nodes and their free strong neighbours, a second pass
// attaches leftovers to their strongest aggregated neighbour (or makes
// them singletons). Returns the aggregate id per node and the count.
func aggregate(a *CSR, theta float64) ([]int, int) {
	n := a.Rows
	d := a.Diag()
	agg := make([]int, n)
	for i := range agg {
		agg[i] = -1
	}
	strong := func(i, k int) bool {
		j := a.ColIdx[k]
		if j == i {
			return false
		}
		v := math.Abs(a.Val[k])
		return v*v >= theta*theta*math.Abs(d[i]*d[j])
	}
	nAgg := 0
	for i := 0; i < n; i++ {
		if agg[i] != -1 {
			continue
		}
		free := true
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if strong(i, k) && agg[a.ColIdx[k]] != -1 {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		agg[i] = nAgg
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if strong(i, k) {
				agg[a.ColIdx[k]] = nAgg
			}
		}
		nAgg++
	}
	for i := 0; i < n; i++ {
		if agg[i] != -1 {
			continue
		}
		best, bestV := -1, 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j == i || agg[j] == -1 {
				continue
			}
			if v := math.Abs(a.Val[k]); v > bestV {
				best, bestV = agg[j], v
			}
		}
		if best >= 0 {
			agg[i] = best
		} else {
			agg[i] = nAgg
			nAgg++
		}
	}
	return agg, nAgg
}
