package num

import (
	"fmt"
	"math"

	"bright/internal/obs"
)

// Multigrid telemetry (process-wide; see internal/obs). Setup is counted
// per hierarchy construction, cycles per preconditioner application —
// the ratio is the reuse factor that justifies caching MG per operator.
var (
	mgSetupsGMG = obs.Default.Counter("bright_mg_setups_total",
		"Multigrid hierarchy constructions by kind.", obs.L("kind", "gmg"))
	mgSetupsAMG = obs.Default.Counter("bright_mg_setups_total",
		"Multigrid hierarchy constructions by kind.", obs.L("kind", "amg"))
	mgCycles = obs.Default.Counter("bright_mg_cycles_total",
		"Multigrid V-cycles executed (one Apply may run several).")
	mgLevelsBuilt = obs.Default.Counter("bright_mg_levels_total",
		"Multigrid levels constructed across all setups (levels per setup = depth of that hierarchy).")
)

// GridShape describes the structured grid behind a matrix whose unknowns
// are ordered row-major with X fastest (mesh.Grid2D/Grid3D Index order).
// NZ <= 1 means a 2D grid.
type GridShape struct {
	NX, NY, NZ int
}

func (s GridShape) nz() int {
	if s.NZ <= 1 {
		return 1
	}
	return s.NZ
}

// Cells returns the total unknown count the shape implies.
func (s GridShape) Cells() int { return s.NX * s.NY * s.nz() }

// coarsen halves every axis (cell-centered: ceil(n/2)).
func (s GridShape) coarsen() GridShape {
	h := func(n int) int { return (n + 1) / 2 }
	return GridShape{NX: h(s.NX), NY: h(s.NY), NZ: h(s.nz())}
}

// MGOptions tunes the multigrid hierarchy. The zero value gives a
// symmetric V(1,1) cycle with damped-Jacobi smoothing — symmetric
// pre/post smoothing and R = P^T keep the preconditioner SPD for SPD
// operators, which CG requires.
type MGOptions struct {
	// PreSmooth / PostSmooth are damped-Jacobi sweeps per level per
	// cycle (defaults 1 and 1; keep them equal for CG).
	PreSmooth, PostSmooth int
	// Omega is the Jacobi damping factor (default 0.8).
	Omega float64
	// CoarsestN stops coarsening once a level has at most this many
	// unknowns; that level is solved directly by dense LU (default 64).
	CoarsestN int
	// MaxLevels bounds the hierarchy depth (default 16).
	MaxLevels int
	// Cycles is the number of V-cycles per Apply (default 1).
	Cycles int
	// Theta is the AMG strength-of-connection threshold (default 0.08).
	Theta float64
}

func (o MGOptions) withDefaults() MGOptions {
	if o.PreSmooth <= 0 {
		o.PreSmooth = 1
	}
	if o.PostSmooth <= 0 {
		o.PostSmooth = 1
	}
	if o.Omega <= 0 {
		o.Omega = 0.8
	}
	if o.CoarsestN <= 0 {
		o.CoarsestN = 64
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 16
	}
	if o.Cycles <= 0 {
		o.Cycles = 1
	}
	if o.Theta <= 0 {
		o.Theta = 0.08
	}
	return o
}

// mgLevel is one rung of the hierarchy. p maps the next-coarser level's
// correction up to this level; r (= p^T) maps this level's residual
// down. Both are nil on the coarsest level. The x/b/res buffers are
// sized at setup so Apply never allocates.
type mgLevel struct {
	a       *CSR
	invDiag []float64
	p, r    *CSR
	x, b    []float64
	res     []float64
}

// Multigrid is a V-cycle preconditioner over a fixed operator: geometric
// (NewGMG, structured grids) or aggregation-based algebraic (NewAMG, any
// CSR). Setup builds the full hierarchy — prolongations, Galerkin coarse
// operators A_c = P^T A P, inverse diagonals and a dense LU of the
// coarsest level — once; Apply then runs allocation-free V-cycles, so a
// Multigrid cached per operator (thermal session, PDN grid) costs setup
// exactly once. Apply is not safe for concurrent use; SparseSolver
// serializes solves, which covers the intended use.
type Multigrid struct {
	levels []*mgLevel
	coarse *LU
	opt    MGOptions
	kind   string
}

// Kind reports "gmg" or "amg".
func (m *Multigrid) Kind() string { return m.kind }

// Levels reports the hierarchy depth, including the coarsest level.
func (m *Multigrid) Levels() int { return len(m.levels) }

// NewGMG builds a geometric multigrid hierarchy for a matrix discretized
// on the given structured grid: cell-centered bilinear (trilinear in 3D)
// prolongation, full-weighting restriction R = P^T, and Galerkin coarse
// operators, re-coarsening by 2 per axis until CoarsestN.
func NewGMG(a *CSR, shape GridShape, opt MGOptions) (*Multigrid, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	if shape.NX <= 0 || shape.NY <= 0 || shape.Cells() != a.Rows {
		return nil, fmt.Errorf("num: grid shape %dx%dx%d does not cover %d unknowns",
			shape.NX, shape.NY, shape.nz(), a.Rows)
	}
	opt = opt.withDefaults()
	m := &Multigrid{opt: opt, kind: "gmg"}
	cur := a
	curShape := shape
	for len(m.levels) < opt.MaxLevels-1 && cur.Rows > opt.CoarsestN {
		next := curShape.coarsen()
		if next.Cells() >= cur.Rows {
			break // coarsening stalled (grid already 1x1x1-ish)
		}
		p := interpolation(curShape, next)
		if err := m.pushLevel(cur, p); err != nil {
			return nil, err
		}
		cur = MatMul(m.levels[len(m.levels)-1].r, MatMul(cur, p))
		curShape = next
	}
	if err := m.finish(cur); err != nil {
		return nil, err
	}
	mgSetupsGMG.Inc()
	mgLevelsBuilt.Add(uint64(len(m.levels)))
	return m, nil
}

// NewAMG builds an aggregation-based algebraic multigrid hierarchy from
// the matrix alone: strength-filtered greedy aggregation, Jacobi-smoothed
// piecewise-constant prolongation and Galerkin coarse operators. It is
// the fallback for operators without grid structure (irregular PDN
// stamps, mixed solid/fluid thermal networks).
func NewAMG(a *CSR, opt MGOptions) (*Multigrid, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	opt = opt.withDefaults()
	m := &Multigrid{opt: opt, kind: "amg"}
	cur := a
	for len(m.levels) < opt.MaxLevels-1 && cur.Rows > opt.CoarsestN {
		p, ok := aggregationProlongation(cur, opt.Theta, opt.Omega)
		if !ok {
			break // aggregation stalled; solve what we have
		}
		if err := m.pushLevel(cur, p); err != nil {
			return nil, err
		}
		cur = MatMul(m.levels[len(m.levels)-1].r, MatMul(cur, p))
	}
	if err := m.finish(cur); err != nil {
		return nil, err
	}
	mgSetupsAMG.Inc()
	mgLevelsBuilt.Add(uint64(len(m.levels)))
	return m, nil
}

// pushLevel appends a non-coarsest level with prolongation p.
func (m *Multigrid) pushLevel(a *CSR, p *CSR) error {
	inv, err := invDiagOf(a)
	if err != nil {
		return err
	}
	m.levels = append(m.levels, &mgLevel{
		a: a, invDiag: inv, p: p, r: p.Transpose(),
		x: make([]float64, a.Rows), b: make([]float64, a.Rows), res: make([]float64, a.Rows),
	})
	return nil
}

// finish installs the coarsest level and its direct factorization.
func (m *Multigrid) finish(a *CSR) error {
	inv, err := invDiagOf(a)
	if err != nil {
		return err
	}
	m.levels = append(m.levels, &mgLevel{
		a: a, invDiag: inv,
		x: make([]float64, a.Rows), b: make([]float64, a.Rows), res: make([]float64, a.Rows),
	})
	lu, err := FactorLU(a.ToDense())
	if err != nil {
		// A singular coarse operator (e.g. a pure-Neumann network whose
		// null space survived coarsening) falls back to heavy smoothing
		// on that level instead of failing the whole hierarchy.
		m.coarse = nil
		return nil
	}
	m.coarse = lu
	return nil
}

func invDiagOf(a *CSR) ([]float64, error) {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("num: multigrid needs a nonzero finite diagonal (row %d has %g)", i, v)
		}
		inv[i] = 1 / v
	}
	return inv, nil
}

// Apply runs the configured number of V-cycles on A z = r from a zero
// initial guess. It is allocation-free: every buffer was sized at setup.
func (m *Multigrid) Apply(r, z []float64) {
	f := m.levels[0]
	copy(f.b, r)
	Fill(f.x, 0)
	for c := 0; c < m.opt.Cycles; c++ {
		m.vcycle(0)
	}
	copy(z, f.x)
	mgCycles.Add(uint64(m.opt.Cycles))
}

func (m *Multigrid) vcycle(l int) {
	lev := m.levels[l]
	if l == len(m.levels)-1 {
		if m.coarse != nil {
			// LU never fails here: shapes were fixed at setup.
			//lint:ignore errignore SolveInto only errors on shape mismatch, pinned at setup
			_ = m.coarse.SolveInto(lev.x, lev.b)
		} else {
			m.smooth(lev, 4*(m.opt.PreSmooth+m.opt.PostSmooth))
		}
		return
	}
	m.smooth(lev, m.opt.PreSmooth)
	lev.a.MulVec(lev.x, lev.res)
	for i := range lev.res {
		lev.res[i] = lev.b[i] - lev.res[i]
	}
	next := m.levels[l+1]
	lev.r.MulVec(lev.res, next.b)
	Fill(next.x, 0)
	m.vcycle(l + 1)
	lev.p.MulVec(next.x, lev.res)
	Axpy(1, lev.res, lev.x)
	m.smooth(lev, m.opt.PostSmooth)
}

// smooth runs damped-Jacobi sweeps x += omega * D^{-1} (b - A x). The
// SpMV rides the kernel pool; the pointwise update is cheap enough
// serial.
func (m *Multigrid) smooth(lev *mgLevel, sweeps int) {
	for s := 0; s < sweeps; s++ {
		lev.a.MulVec(lev.x, lev.res)
		om := m.opt.Omega
		for i, d := range lev.invDiag {
			lev.x[i] += om * d * (lev.b[i] - lev.res[i])
		}
	}
}

// interpolation builds the cell-centered bilinear/trilinear prolongation
// from the coarse shape to the fine shape as a CSR (fine rows x coarse
// cols). Each fine cell interpolates from its parent coarse cell and the
// axis neighbours its center leans toward, with 1D weights (3/4, 1/4)
// tensored across axes; at domain boundaries the stencil clamps to
// injection.
func interpolation(fine, coarse GridShape) *CSR {
	ax := axisWeights(fine.NX, coarse.NX)
	ay := axisWeights(fine.NY, coarse.NY)
	az := axisWeights(fine.nz(), coarse.nz())
	co := NewCOO(fine.Cells(), coarse.Cells())
	cIdx := func(i, j, k int) int { return (k*coarse.NY+j)*coarse.NX + i }
	row := 0
	for k := 0; k < fine.nz(); k++ {
		for j := 0; j < fine.NY; j++ {
			for i := 0; i < fine.NX; i++ {
				for _, wz := range az[k] {
					for _, wy := range ay[j] {
						for _, wx := range ax[i] {
							co.Add(row, cIdx(wx.i, wy.i, wz.i), wx.w*wy.w*wz.w)
						}
					}
				}
				row++
			}
		}
	}
	return co.ToCSR()
}

// axisEntry is one (coarse index, weight) contribution along an axis.
type axisEntry struct {
	i int
	w float64
}

// axisWeights returns, per fine cell, the 1D cell-centered linear
// interpolation stencil: parent coarse cell with weight 3/4 and the
// neighbour the fine center leans toward with 1/4, clamped to injection
// at the boundary.
func axisWeights(n, nc int) [][]axisEntry {
	out := make([][]axisEntry, n)
	for i := 0; i < n; i++ {
		c := i / 2
		if c >= nc {
			c = nc - 1
		}
		nb := c + 1
		if i%2 == 0 {
			nb = c - 1
		}
		if nb < 0 || nb >= nc {
			out[i] = []axisEntry{{i: c, w: 1}}
		} else {
			out[i] = []axisEntry{{i: c, w: 0.75}, {i: nb, w: 0.25}}
		}
	}
	return out
}

// aggregationProlongation builds the smoothed-aggregation prolongation
// for one AMG coarsening step. Returns ok=false when aggregation cannot
// shrink the problem (no strong connections left).
func aggregationProlongation(a *CSR, theta, omega float64) (*CSR, bool) {
	agg, nAgg := aggregate(a, theta)
	if nAgg <= 0 || nAgg >= a.Rows {
		return nil, false
	}
	// Tentative piecewise-constant prolongation.
	co := NewCOO(a.Rows, nAgg)
	for i, g := range agg {
		co.Add(i, g, 1)
	}
	pt := co.ToCSR()
	// One damped-Jacobi smoothing pass: P = (I - omega D^{-1} A) P_t.
	// Smoothing spreads each aggregate's footprint over its neighbours,
	// which restores near-optimal convergence on diffusion operators.
	d := a.Diag()
	jac := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: a.RowPtr,
		ColIdx: a.ColIdx,
		Val:    make([]float64, a.NNZ()),
	}
	for i := 0; i < a.Rows; i++ {
		di := d[i]
		if di == 0 {
			di = 1
		}
		s := omega / di
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			jac.Val[k] = -s * a.Val[k]
			if a.ColIdx[k] == i {
				jac.Val[k] += 1
			}
		}
	}
	return MatMul(jac, pt), true
}

// aggregate greedily groups nodes over strong connections
// (|a_ij| >= theta * sqrt(|a_ii a_jj|)): a first pass seeds aggregates
// from still-free nodes and their free strong neighbours, a second pass
// attaches leftovers to their strongest aggregated neighbour (or makes
// them singletons). Returns the aggregate id per node and the count.
func aggregate(a *CSR, theta float64) ([]int, int) {
	n := a.Rows
	d := a.Diag()
	agg := make([]int, n)
	for i := range agg {
		agg[i] = -1
	}
	strong := func(i, k int) bool {
		j := a.ColIdx[k]
		if j == i {
			return false
		}
		v := math.Abs(a.Val[k])
		return v*v >= theta*theta*math.Abs(d[i]*d[j])
	}
	nAgg := 0
	for i := 0; i < n; i++ {
		if agg[i] != -1 {
			continue
		}
		free := true
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if strong(i, k) && agg[a.ColIdx[k]] != -1 {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		agg[i] = nAgg
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if strong(i, k) {
				agg[a.ColIdx[k]] = nAgg
			}
		}
		nAgg++
	}
	for i := 0; i < n; i++ {
		if agg[i] != -1 {
			continue
		}
		best, bestV := -1, 0.0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j == i || agg[j] == -1 {
				continue
			}
			if v := math.Abs(a.Val[k]); v > bestV {
				best, bestV = agg[j], v
			}
		}
		if best >= 0 {
			agg[i] = best
		} else {
			agg[i] = nAgg
			nAgg++
		}
	}
	return agg, nAgg
}
