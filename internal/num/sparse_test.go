package num

import (
	"math"
	"math/rand"
	"testing"
)

func TestCOOToCSR(t *testing.T) {
	c := NewCOO(3, 3)
	c.Add(0, 0, 1)
	c.Add(1, 1, 2)
	c.Add(1, 1, 3) // duplicate: must merge to 5
	c.Add(2, 0, 4)
	c.Add(0, 2, 6)
	c.Add(1, 0, 0) // explicit zero: dropped
	m := c.ToCSR()
	if m.NNZ() != 4 {
		t.Fatalf("nnz = %d, want 4", m.NNZ())
	}
	if m.At(1, 1) != 5 {
		t.Fatalf("merged entry = %g, want 5", m.At(1, 1))
	}
	if m.At(0, 2) != 6 || m.At(2, 0) != 4 || m.At(0, 0) != 1 {
		t.Fatal("entries misplaced")
	}
	if m.At(2, 2) != 0 {
		t.Fatal("missing entry should read 0")
	}
}

func TestCSRColumnOrderWithinRow(t *testing.T) {
	c := NewCOO(1, 5)
	c.Add(0, 4, 1)
	c.Add(0, 1, 2)
	c.Add(0, 3, 3)
	m := c.ToCSR()
	for k := 1; k < m.NNZ(); k++ {
		if m.ColIdx[k] <= m.ColIdx[k-1] {
			t.Fatalf("column indices not sorted: %v", m.ColIdx)
		}
	}
}

func TestCSRMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, m = 17, 13
	d := NewDense(n, m)
	c := NewCOO(n, m)
	for k := 0; k < 60; k++ {
		i, j := rng.Intn(n), rng.Intn(m)
		v := rng.NormFloat64()
		d.Add(i, j, v)
		c.Add(i, j, v)
	}
	s := c.ToCSR()
	x := make([]float64, m)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, n)
	y2 := make([]float64, n)
	d.MulVec(x, y1)
	s.MulVec(x, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("row %d: dense %g vs sparse %g", i, y1[i], y2[i])
		}
	}
}

func TestCSRDiag(t *testing.T) {
	c := NewCOO(3, 3)
	c.Add(0, 0, 2)
	c.Add(2, 2, -1)
	c.Add(1, 0, 9) // off-diagonal
	d := c.ToCSR().Diag()
	if d[0] != 2 || d[1] != 0 || d[2] != -1 {
		t.Fatalf("Diag = %v", d)
	}
}

func TestCSRIsSymmetric(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 1, 3)
	c.Add(1, 0, 3)
	c.Add(0, 0, 1)
	if !c.ToCSR().IsSymmetric(1e-14) {
		t.Fatal("symmetric matrix reported asymmetric")
	}
	c2 := NewCOO(2, 2)
	c2.Add(0, 1, 3)
	if c2.ToCSR().IsSymmetric(1e-14) {
		t.Fatal("asymmetric matrix reported symmetric")
	}
	rect := NewCOO(2, 3).ToCSR()
	if rect.IsSymmetric(1e-14) {
		t.Fatal("rectangular matrix cannot be symmetric")
	}
}

func TestCOOOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range stamp")
		}
	}()
	NewCOO(2, 2).Add(2, 0, 1)
}
