package num

// SolveTridiag solves the tridiagonal system with sub-diagonal a,
// diagonal b, super-diagonal c and right-hand side d using the Thomas
// algorithm. a[0] and c[n-1] are ignored. The inputs are not modified;
// the solution is returned in a fresh slice.
//
// The Thomas algorithm is numerically stable for diagonally dominant
// systems, which is what the finite-volume discretizations in this
// repository produce.
func SolveTridiag(a, b, c, d []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n || len(c) != n || len(d) != n {
		return nil, ErrShape
	}
	if n == 0 {
		return nil, nil
	}
	cp := make([]float64, n)
	dp := make([]float64, n)
	if b[0] == 0 {
		return nil, ErrSingular
	}
	cp[0] = c[0] / b[0]
	dp[0] = d[0] / b[0]
	for i := 1; i < n; i++ {
		den := b[i] - a[i]*cp[i-1]
		if den == 0 {
			return nil, ErrSingular
		}
		cp[i] = c[i] / den
		dp[i] = (d[i] - a[i]*dp[i-1]) / den
	}
	x := make([]float64, n)
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return x, nil
}
