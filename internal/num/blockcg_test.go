package num

import (
	"math"
	"math/rand"
	"testing"
)

// TestBlockCGMatchesSequential is the determinism pin: block CG run
// serially must produce, per column, the same iterates as a sequential
// per-RHS CG from the same guesses — to 1e-10 elementwise. The
// per-column recurrences and i-ascending strided reductions reproduce
// the sequential summation order exactly, so in practice the match is
// bitwise; 1e-10 is the contract.
func TestBlockCGMatchesSequential(t *testing.T) {
	SetKernelThreads(1)
	t.Cleanup(func() { SetKernelThreads(0) })
	const n, k = 48, 5
	a := laplacian2D(n)
	rng := rand.New(rand.NewSource(41))
	rows := a.Rows
	bs := make([][]float64, k)
	for j := range bs {
		bs[j] = make([]float64, rows)
		for i := range bs[j] {
			bs[j][i] = rng.NormFloat64()
		}
	}
	opt := IterOptions{Tol: 1e-10, M: NewJacobi(a)}

	// Sequential reference.
	seq := make([][]float64, k)
	for j := range seq {
		seq[j] = make([]float64, rows)
		if _, err := CG(a, bs[j], seq[j], opt); err != nil {
			t.Fatalf("sequential rhs %d: %v", j, err)
		}
	}

	// Batched: pack column-major, solve, compare.
	bb := make([]float64, rows*k)
	xx := make([]float64, rows*k)
	for j := 0; j < k; j++ {
		for i := 0; i < rows; i++ {
			bb[j*rows+i] = bs[j][i]
		}
	}
	out, err := BlockCG(a, bb, xx, k, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < k; j++ {
		for i := 0; i < rows; i++ {
			if d := math.Abs(xx[j*rows+i] - seq[j][i]); d > 1e-10 {
				t.Fatalf("rhs %d row %d: block=%g seq=%g (diff %g)", j, i, xx[j*rows+i], seq[j][i], d)
			}
		}
		if out.PerRHS[j].Residual > opt.Tol {
			t.Fatalf("rhs %d residual %g above tol", j, out.PerRHS[j].Residual)
		}
	}
}

// TestBlockCGTraversalSavings pins the amortization claim with the obs
// counter: solving k systems batched must traverse strictly fewer
// matrix rows than solving them sequentially.
func TestBlockCGTraversalSavings(t *testing.T) {
	const n, k = 48, 6
	a := laplacian2D(n)
	rows := a.Rows
	rng := rand.New(rand.NewSource(43))
	bb := make([]float64, rows*k)
	for i := range bb {
		bb[i] = rng.NormFloat64()
	}
	opt := IterOptions{Tol: 1e-10, M: NewJacobi(a)}

	seqStart := spmvRowsTraversed.Value()
	colX := make([]float64, rows)
	for j := 0; j < k; j++ {
		Fill(colX, 0)
		if _, err := CG(a, bb[j*rows:(j+1)*rows], colX, opt); err != nil {
			t.Fatal(err)
		}
	}
	seqRows := spmvRowsTraversed.Value() - seqStart

	r0 := blockRHSSolved.Value()
	blkStart := spmvRowsTraversed.Value()
	xx := make([]float64, rows*k)
	if _, err := BlockCG(a, bb, xx, k, opt, nil); err != nil {
		t.Fatal(err)
	}
	blkRows := spmvRowsTraversed.Value() - blkStart
	if d := blockRHSSolved.Value() - r0; d != k {
		t.Fatalf("blockcg rhs counter moved by %d, want %d", d, k)
	}
	if blkRows >= seqRows {
		t.Fatalf("block traversed %d rows vs %d sequential, want fewer", blkRows, seqRows)
	}
	t.Logf("rows traversed: seq=%d block=%d (%.1fx fewer)", seqRows, blkRows, float64(seqRows)/float64(blkRows))
}

// TestBlockCGConvergenceFreeze: columns that converge early must stop
// counting iterations while the block keeps running the others.
func TestBlockCGConvergenceFreeze(t *testing.T) {
	const n = 32
	a := laplacian2D(n)
	rows := a.Rows
	const k = 3
	bb := make([]float64, rows*k)
	// Column 0: zero RHS (converges at iteration 0 with x=0).
	// Column 1: a smooth RHS. Column 2: rough random.
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < rows; i++ {
		bb[1*rows+i] = 1
		bb[2*rows+i] = rng.NormFloat64()
	}
	xx := make([]float64, rows*k)
	out, err := BlockCG(a, bb, xx, k, IterOptions{Tol: 1e-10, M: NewJacobi(a)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.PerRHS[0].Iterations != 0 {
		t.Fatalf("zero-RHS column reported %d iterations, want 0", out.PerRHS[0].Iterations)
	}
	for i := 0; i < rows; i++ {
		if xx[i] != 0 {
			t.Fatal("zero-RHS column got a nonzero solution")
		}
	}
	if out.PerRHS[1].Iterations >= out.PerRHS[2].Iterations {
		t.Fatalf("smooth column (%d iters) should freeze before rough column (%d iters)",
			out.PerRHS[1].Iterations, out.PerRHS[2].Iterations)
	}
	if out.Iterations != out.PerRHS[2].Iterations {
		t.Fatalf("block iterations %d, want slowest column's %d", out.Iterations, out.PerRHS[2].Iterations)
	}
}

// TestSolveBlock covers the SparseSolver entry: symmetric systems run
// batched block CG through the cached preconditioner, and the
// nonsymmetric degradation still returns correct per-column solutions.
func TestSolveBlock(t *testing.T) {
	const n = 32
	a := laplacian2D(n)
	rows := a.Rows
	const k = 4
	rng := rand.New(rand.NewSource(53))
	bb := make([]float64, rows*k)
	for i := range bb {
		bb[i] = rng.NormFloat64()
	}
	s := NewSparseSolverSymmetric(a, true, IterOptions{Tol: 1e-10})
	xx := make([]float64, rows*k)
	if _, err := s.SolveBlock(bb, xx, k); err != nil {
		t.Fatal(err)
	}
	res := make([]float64, rows)
	for j := 0; j < k; j++ {
		a.MulVec(xx[j*rows:(j+1)*rows], res)
		worst := 0.0
		for i := 0; i < rows; i++ {
			if d := math.Abs(res[i] - bb[j*rows+i]); d > worst {
				worst = d
			}
		}
		if worst > 1e-7 {
			t.Fatalf("rhs %d residual inf-norm %g", j, worst)
		}
	}

	// Nonsymmetric path: advection-like upwind operator.
	c := NewCOO(rows, rows)
	for i := 0; i < rows; i++ {
		c.Add(i, i, 4)
		if i > 0 {
			c.Add(i, i-1, -2)
		}
		if i < rows-1 {
			c.Add(i, i+1, -1)
		}
	}
	ns := c.ToCSR()
	sn := NewSparseSolverSymmetric(ns, false, IterOptions{Tol: 1e-10})
	Fill(xx, 0)
	if _, err := sn.SolveBlock(bb, xx, k); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < k; j++ {
		ns.MulVec(xx[j*rows:(j+1)*rows], res)
		for i := 0; i < rows; i++ {
			if d := math.Abs(res[i] - bb[j*rows+i]); d > 1e-6 {
				t.Fatalf("nonsymmetric rhs %d row %d residual %g", j, i, d)
			}
		}
	}

	// Shape errors must be rejected, not crash.
	if _, err := s.SolveBlock(bb[:rows], xx, k); err == nil {
		t.Fatal("short b accepted")
	}
}

// TestMulVecBlockMatchesMulVec: the column-major multi-RHS SpMV must
// agree with k independent MulVec calls, serial and parallel.
func TestMulVecBlockMatchesMulVec(t *testing.T) {
	a := laplacian2D(24)
	rows := a.Rows
	const k = 3
	rng := rand.New(rand.NewSource(59))
	xx := make([]float64, rows*k)
	for i := range xx {
		xx[i] = rng.NormFloat64()
	}
	want := make([]float64, rows*k)
	for j := 0; j < k; j++ {
		a.MulVec(xx[j*rows:(j+1)*rows], want[j*rows:(j+1)*rows])
	}
	check := func(tag string) {
		got := make([]float64, rows*k)
		a.MulVecBlock(xx, got, k)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: block SpMV mismatch at %d: %g vs %g", tag, i, got[i], want[i])
			}
		}
	}
	SetKernelThreads(1)
	check("serial")
	// Force the forked path by shrinking the thresholds.
	SetKernelThreads(4)
	oldMin, oldChunk := parallelMinWork, parallelChunkWork
	parallelMinWork, parallelChunkWork = 1, 512
	t.Cleanup(func() {
		parallelMinWork, parallelChunkWork = oldMin, oldChunk
		SetKernelThreads(0)
	})
	check("parallel")
}
