package num

import (
	"math"
	"math/rand"
	"testing"
)

// skewedCSR builds a deterministic random sparse matrix with skewed row
// lengths: most rows short, occasional long rows, some empty — the
// shape that stresses the σ-window sort and the prefix kernel.
func skewedCSR(rng *rand.Rand, rows, cols int) *CSR {
	c := NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		nnz := rng.Intn(6)
		if rng.Intn(10) == 0 {
			nnz = rng.Intn(cols) // occasional near-dense row
		}
		for k := 0; k < nnz; k++ {
			// Duplicates are fine: COO merges them.
			c.Add(i, rng.Intn(cols), rng.NormFloat64())
		}
	}
	return c.ToCSR()
}

// TestSELLMatchesCSRBitwise pins the format's core contract: for any
// matrix, SELL-C-σ MulVec produces bit-for-bit the serial CSR result —
// same per-row summation order, padding never touched.
func TestSELLMatchesCSRBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][2]int{
		{1, 1}, {7, 5}, {31, 31}, {32, 32}, {33, 17}, // partial / exact / spill slices
		{256, 256}, {1000, 300},
	}
	for _, sh := range shapes {
		rows, cols := sh[0], sh[1]
		a := skewedCSR(rng, rows, cols)
		s := NewSELLCS(a)
		if s == nil {
			t.Fatalf("%dx%d: NewSELLCS returned nil", rows, cols)
		}
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, rows)
		mulVecRange(a, x, want, 0, rows)
		got := make([]float64, rows)
		for i := range got {
			got[i] = math.NaN() // every slot must be written, even empty rows
		}
		s.MulVec(x, got)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%dx%d row %d: SELL %v != CSR %v", rows, cols, i, got[i], want[i])
			}
		}
		if s.NNZ() != a.NNZ() {
			t.Fatalf("%dx%d: NNZ %d != %d", rows, cols, s.NNZ(), a.NNZ())
		}
		if pr := s.PaddingRatio(); pr < 1 && a.NNZ() > 0 {
			t.Fatalf("%dx%d: padding ratio %v < 1", rows, cols, pr)
		}
	}
}

// TestSELLStructure checks the layout invariants the kernel relies on:
// Perm is a permutation local to each σ window, and RowLen is
// non-increasing within every slice.
func TestSELLStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := skewedCSR(rng, 700, 80)
	s := NewSELLCS(a)
	seen := make([]bool, a.Rows)
	for pos, row := range s.Perm {
		if seen[row] {
			t.Fatalf("row %d appears twice in Perm", row)
		}
		seen[row] = true
		if w := pos / sellSigma; int(row)/sellSigma != w {
			t.Fatalf("Perm[%d]=%d escaped its σ window %d", pos, row, w)
		}
	}
	for pos := 1; pos < a.Rows; pos++ {
		if pos%SellC == 0 {
			continue // slice boundary: no ordering constraint across it
		}
		if s.RowLen[pos] > s.RowLen[pos-1] {
			t.Fatalf("RowLen not non-increasing inside slice at pos %d: %d > %d",
				pos, s.RowLen[pos], s.RowLen[pos-1])
		}
	}
}

// TestSELL32MatchesCSR32 pins the float32 mirror against the serial
// CSR32 kernel the same way.
func TestSELL32MatchesCSR32(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := skewedCSR(rng, 500, 200)
	a32 := NewCSR32(a)
	if a32 == nil {
		t.Fatal("NewCSR32 returned nil")
	}
	s32 := newSELLCS32(NewSELLCS(a))
	if s32 == nil {
		t.Fatal("newSELLCS32 returned nil")
	}
	x := make([]float32, a.Cols)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	want := make([]float32, a.Rows)
	mulVec32Range(a32, x, want, 0, a.Rows)
	got := make([]float32, a.Rows)
	s32.MulVec(x, got)
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("row %d: SELL32 %v != CSR32 %v", i, got[i], want[i])
		}
	}
}

// TestSELLParallelMatchesSerial forces the kernel-pool fork on a small
// matrix (shrunk thresholds) and checks the result is still bitwise the
// serial one — slices are independent, so the split cannot change bits.
func TestSELLParallelMatchesSerial(t *testing.T) {
	minWork, chunkWork := parallelMinWork, parallelChunkWork
	parallelMinWork, parallelChunkWork = 1, 1
	SetKernelThreads(4)
	t.Cleanup(func() {
		parallelMinWork, parallelChunkWork = minWork, chunkWork
		SetKernelThreads(0)
	})
	rng := rand.New(rand.NewSource(11))
	a := skewedCSR(rng, 513, 513)
	s := NewSELLCS(a)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, a.Rows)
	sellMulVecRange(s, x, want, 0, s.numSlices())
	got := make([]float64, a.Rows)
	s.MulVec(x, got)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("row %d: parallel %v != serial %v", i, got[i], want[i])
		}
	}
}

// TestEnsureFormatPolicy walks the policy chain: explicit option beats
// the process default beats the size heuristic, and a pathologically
// padded matrix falls back to CSR with the fallback counter bumped.
func TestEnsureFormatPolicy(t *testing.T) {
	t.Cleanup(func() { SetDefaultSparseFormat(FormatAuto) })

	small := laplacian2D(8) // 64 rows, far below sellMinRows
	small.EnsureFormat(FormatAuto)
	if small.sell.Load() != nil {
		t.Fatal("heuristic attached SELL below sellMinRows")
	}
	small.EnsureFormat(FormatSELL)
	if small.sell.Load() == nil {
		t.Fatal("explicit FormatSELL did not attach a mirror")
	}

	SetDefaultSparseFormat(FormatSELL)
	viaDefault := laplacian2D(8)
	viaDefault.EnsureFormat(FormatAuto)
	if viaDefault.sell.Load() == nil {
		t.Fatal("process default FormatSELL did not attach a mirror")
	}
	forcedCSR := laplacian2D(8)
	forcedCSR.EnsureFormat(FormatCSR)
	if forcedCSR.sell.Load() != nil {
		t.Fatal("explicit FormatCSR did not override the process default")
	}
	SetDefaultSparseFormat(FormatAuto)

	big := laplacian2D(70) // 4900 rows, above sellMinRows
	big.EnsureFormat(FormatAuto)
	if big.sell.Load() == nil {
		t.Fatal("heuristic did not attach SELL above sellMinRows")
	}

	// One dense row among empties: padding ratio far beyond the
	// threshold, so the conversion must be discarded and counted.
	skew := NewCOO(SellC, 256)
	for j := 0; j < 256; j++ {
		skew.Add(0, j, 1)
	}
	padded := skew.ToCSR()
	fb0 := sellFallbacks.Value()
	padded.EnsureFormat(FormatSELL)
	if padded.sell.Load() != nil {
		t.Fatalf("padding ratio %v should have fallen back to CSR",
			NewSELLCS(padded).PaddingRatio())
	}
	if sellFallbacks.Value() != fb0+1 {
		t.Fatal("fallback not counted")
	}
}

// TestParseSparseFormat pins the flag/env surface.
func TestParseSparseFormat(t *testing.T) {
	for _, c := range []struct {
		in   string
		want SparseFormat
	}{
		{"", FormatAuto}, {"auto", FormatAuto}, {"csr", FormatCSR},
		{"sell", FormatSELL}, {"SELLCS", FormatSELL}, {" Sell ", FormatSELL},
	} {
		got, err := ParseSparseFormat(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseSparseFormat(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseSparseFormat("ellpack"); err == nil {
		t.Fatal("ParseSparseFormat accepted garbage")
	}
	for _, f := range []SparseFormat{FormatAuto, FormatCSR, FormatSELL} {
		back, err := ParseSparseFormat(f.String())
		if err != nil || back != f {
			t.Fatalf("round trip %v -> %q -> %v, %v", f, f.String(), back, err)
		}
	}
}

// TestCSR32InheritsSELL: demoting a CSR that carries a SELL mirror must
// produce a CSR32 carrying the float32 mirror, and the two must agree.
func TestCSR32InheritsSELL(t *testing.T) {
	a := laplacian2D(20)
	a.EnsureFormat(FormatSELL)
	a32 := NewCSR32(a)
	if a32 == nil {
		t.Fatal("NewCSR32 returned nil")
	}
	s32 := a32.sell.Load()
	if s32 == nil {
		t.Fatal("CSR32 did not inherit the SELL mirror")
	}
	x := make([]float32, a.Cols)
	for i := range x {
		x[i] = float32(i%5) - 2
	}
	want := make([]float32, a.Rows)
	mulVec32Range(&CSR32{Rows: a32.Rows, Cols: a32.Cols, RowPtr: a32.RowPtr, ColIdx: a32.ColIdx, Val: a32.Val},
		x, want, 0, a.Rows)
	got := make([]float32, a.Rows)
	a32.MulVec(x, got)
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("row %d: inherited SELL32 %v != CSR32 %v", i, got[i], want[i])
		}
	}
}

// FuzzSELLRoundTrip throws arbitrary sparse structures (empty rows,
// dense rows, duplicates, single-slice shapes) at the CSR -> SELL-C-σ
// conversion and checks MulVec agrees with the serial CSR kernel within
// 1e-15 relative — in fact bit-for-bit, which is the stronger contract
// the solvers' warm-start determinism rides on.
func FuzzSELLRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(1), []byte{})                            // minimal, all-empty
	f.Add(uint8(40), uint8(3), []byte{0, 0, 1, 5, 2, 200})         // empty + short rows, two slices
	f.Add(uint8(5), uint8(5), []byte{0, 0, 1, 0, 1, 2, 0, 2, 3})   // single slice
	f.Add(uint8(200), uint8(200), []byte{9, 9, 9, 9, 8, 7, 1, 2})  // spill shape
	f.Add(uint8(33), uint8(2), []byte{1, 0, 1, 1, 1, 0, 32, 1, 9}) // dense row + duplicate
	f.Fuzz(func(t *testing.T, rows, cols uint8, data []byte) {
		r := int(rows)%300 + 1
		c := int(cols)%300 + 1
		coo := NewCOO(r, c)
		for k := 0; k+2 < len(data); k += 3 {
			i := int(data[k]) % r
			j := int(data[k+1]) % c
			v := float64(int8(data[k+2]))
			if v == 0 {
				v = 1
			}
			coo.Add(i, j, v/3)
		}
		a := coo.ToCSR()
		s := NewSELLCS(a)
		if s == nil {
			t.Fatal("NewSELLCS returned nil for a small matrix")
		}
		if s.NNZ() != a.NNZ() {
			t.Fatalf("NNZ %d != %d", s.NNZ(), a.NNZ())
		}
		x := make([]float64, c)
		for i := range x {
			x[i] = float64((i*7)%13) - 6.5
		}
		want := make([]float64, r)
		mulVecRange(a, x, want, 0, r)
		got := make([]float64, r)
		for i := range got {
			got[i] = math.NaN()
		}
		s.MulVec(x, got)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("row %d: SELL %v != CSR %v", i, got[i], want[i])
			}
		}
	})
}
