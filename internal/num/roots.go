package num

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket is returned when a bracketing root finder is given an
// interval whose endpoints do not straddle a sign change.
var ErrNoBracket = errors.New("num: root is not bracketed")

// Brent finds a root of f in [a, b] using Brent's method (inverse
// quadratic interpolation safeguarded by bisection). f(a) and f(b) must
// have opposite signs. tol is the absolute tolerance on the root
// location; if tol <= 0 a machine-level default is used.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	c, fc := a, fa
	d, e := b-a, b-a
	const maxIter = 200
	for i := 0; i < maxIter; i++ {
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			d, e = b-a, b-a
		}
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.SmallestNonzeroFloat64*math.Abs(b) + 0.5*tol
		xm := 0.5 * (c - b)
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			// Attempt inverse quadratic interpolation.
			s := fb / fa
			var p, q float64
			if a == c {
				p = 2 * xm * s
				q = 1 - s
			} else {
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			min1 := 3*xm*q - math.Abs(tol1*q)
			min2 := math.Abs(e * q)
			if 2*p < math.Min(min1, min2) {
				e, d = d, p/q
			} else {
				d, e = xm, xm
			}
		} else {
			d, e = xm, xm
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else if xm > 0 {
			b += tol1
		} else {
			b -= tol1
		}
		fb = f(b)
	}
	return b, fmt.Errorf("%w: Brent exceeded iteration budget", ErrNoConvergence)
}

// Newton finds a root of f starting from x0 using Newton's method with a
// numerical derivative and bisection-style step damping. It is used where
// a bracket is not known a priori; prefer Brent when a bracket exists.
func Newton(f func(float64) float64, x0, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	x := x0
	fx := f(x)
	const maxIter = 100
	for i := 0; i < maxIter; i++ {
		if math.Abs(fx) == 0 {
			return x, nil
		}
		// Central-difference derivative with scale-aware step.
		h := 1e-7 * (math.Abs(x) + 1e-7)
		dfx := (f(x+h) - f(x-h)) / (2 * h)
		if dfx == 0 || math.IsNaN(dfx) {
			return x, fmt.Errorf("%w: Newton derivative vanished at x=%g", ErrNoConvergence, x)
		}
		step := fx / dfx
		// Damp: halve the step until |f| does not blow up.
		xn := x - step
		fn := f(xn)
		for k := 0; k < 40 && (math.IsNaN(fn) || math.Abs(fn) > 2*math.Abs(fx)); k++ {
			step *= 0.5
			xn = x - step
			fn = f(xn)
		}
		if math.Abs(xn-x) <= tol*(1+math.Abs(xn)) {
			return xn, nil
		}
		x, fx = xn, fn
	}
	return x, fmt.Errorf("%w: Newton exceeded iteration budget", ErrNoConvergence)
}

// ExpandBracket grows the interval [a, b] geometrically around its
// initial extent until f changes sign across it, up to maxExpand
// doublings. It returns the bracketing interval. This helps callers that
// know a root exists but only have a rough initial window.
func ExpandBracket(f func(float64) float64, a, b float64, maxExpand int) (float64, float64, error) {
	if a >= b {
		return 0, 0, fmt.Errorf("num: ExpandBracket requires a < b (got %g, %g)", a, b)
	}
	fa, fb := f(a), f(b)
	for i := 0; i < maxExpand; i++ {
		if (fa > 0) != (fb > 0) || fa == 0 || fb == 0 {
			return a, b, nil
		}
		w := b - a
		if math.Abs(fa) < math.Abs(fb) {
			a -= w
			fa = f(a)
		} else {
			b += w
			fb = f(b)
		}
	}
	if (fa > 0) != (fb > 0) {
		return a, b, nil
	}
	return 0, 0, ErrNoBracket
}
