package num

import (
	"fmt"
	"math"

	"bright/internal/obs"
)

// Multi-RHS telemetry (process-wide; see internal/obs). The row counter
// is the currency of the block solver's win: a block traversal counts
// its rows once however many right-hand sides ride it, so comparing the
// counter across a sequential and a batched sweep chain measures the
// amortization directly.
var (
	spmvRowsTraversed = obs.Default.Counter("bright_spmv_rows_total",
		"CSR rows traversed by SpMV kernels (a k-RHS block traversal counts its rows once).")
	blockRHSSolved = obs.Default.Counter("bright_blockcg_rhs_total",
		"Right-hand sides solved through the batched block-CG path.")
)

// MulVecBlock computes Y = m*X for k right-hand sides in one traversal
// of the matrix. X and Y hold the k vectors column-major: column j
// occupies x[j*Cols : (j+1)*Cols], so every column keeps the contiguous
// layout (and exact summation order) of a MulVec operand while the
// matrix entries are read once per row for all k columns. len(x) must
// be Cols*k and len(y) Rows*k.
func (m *CSR) MulVecBlock(x, y []float64, k int) {
	if k <= 0 || len(x) != m.Cols*k || len(y) != m.Rows*k {
		panic(ErrShape)
	}
	if k == 1 {
		m.MulVec(x, y)
		return
	}
	spmvRowsTraversed.Add(uint64(m.Rows))
	chunks := kernelChunks(2 * m.NNZ() * k)
	if chunks == 1 {
		mulVecBlockRange(m, x, y, k, 0, m.Rows)
		return
	}
	r := getRun(opMulVecBlock)
	r.a, r.x, r.y, r.blockK = m, x, y, k
	forkJoin(r, m.Rows, chunks)
	r.blockK = 0
	putRun(r)
}

// blockAp computes ap_j = A p_j and pap_j = <p_j, Ap_j> for every
// active column. The serial traversal fuses the dot into the SpMV pass
// (each row's Ap value is consumed while still in register, so p and ap
// are never re-read); a forked traversal falls back to MulVecBlock plus
// per-column Dot, both of which ride the kernel pool. Inactive columns
// are skipped — their pap entry is zeroed and their ap left stale,
// which is fine because frozen columns do no further updates.
func blockAp(a *CSR, p, ap []float64, k int, active []bool, pap []float64) {
	if kernelChunks(2*a.NNZ()*k) == 1 {
		spmvRowsTraversed.Add(uint64(a.Rows))
		mulVecBlockDotRange(a, p, ap, k, active, pap, 0, a.Rows)
		return
	}
	a.MulVecBlock(p, ap, k)
	n := a.Rows
	for j := 0; j < k; j++ {
		pap[j] = 0
		if active[j] {
			pap[j] = Dot(p[j*n:(j+1)*n], ap[j*n:(j+1)*n])
		}
	}
}

// BlockWorkspace holds the scratch of BlockCG so repeated batched
// solves against same-sized blocks do not reallocate. A zero value is
// ready to use. Not safe for concurrent use.
type BlockWorkspace struct {
	r, z, p, ap []float64 // n*k column-major blocks
	rz, bnorm   []float64 // per-column recurrence state
	res         []float64
	pap         []float64 // per-column <p, Ap> from the fused traversal
	active      []bool
	perRHS      []IterResult // backs BlockResult.PerRHS (reused per solve)
}

// NewBlockWorkspace returns a workspace pre-sized for n unknowns and k
// right-hand sides.
func NewBlockWorkspace(n, k int) *BlockWorkspace {
	w := &BlockWorkspace{}
	w.size(n, k)
	return w
}

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func (w *BlockWorkspace) size(n, k int) {
	w.r = grow(w.r, n*k)
	w.z = grow(w.z, n*k)
	w.p = grow(w.p, n*k)
	w.ap = grow(w.ap, n*k)
	w.rz = grow(w.rz, k)
	w.bnorm = grow(w.bnorm, k)
	w.res = grow(w.res, k)
	w.pap = grow(w.pap, k)
	if cap(w.active) < k {
		w.active = make([]bool, k)
	}
	w.active = w.active[:k]
	if cap(w.perRHS) < k {
		w.perRHS = make([]IterResult, k)
	}
	w.perRHS = w.perRHS[:k]
	for j := range w.perRHS {
		w.perRHS[j] = IterResult{}
	}
}

// BlockResult reports a batched solve: per-column iteration counts and
// residuals, plus the shared traversal count.
type BlockResult struct {
	// PerRHS holds each column's iteration count and final relative
	// residual, in column order. It aliases the workspace (valid until
	// the workspace's next solve) so steady-state solves stay
	// allocation-free.
	PerRHS []IterResult
	// Iterations is the block iteration count (the slowest column).
	Iterations int
}

// BlockCG solves the k symmetric positive definite systems A x_j = b_j
// together: k independent preconditioned-CG recurrences (per-column
// alpha/beta, each running the exact update sequence of CGWith on its
// contiguous column slice, so every column's iterates match a
// sequential solve bit for bit) sharing one SpMV traversal per
// iteration through MulVecBlock. b and x hold the right-hand sides and
// initial guesses column-major (column j at [j*n : (j+1)*n], see
// MulVecBlock); x is overwritten with the solutions. A column that
// converges freezes — its preconditioner and vector work stops — while
// the block traversal keeps serving the rest, which is where a sweep
// chain's amortization comes from.
//
// The preconditioner sees plain contiguous column vectors, so any
// Preconditioner (Jacobi, multigrid) works unchanged.
func BlockCG(a *CSR, b, x []float64, k int, opt IterOptions, ws *BlockWorkspace) (BlockResult, error) {
	n := a.Rows
	if a.Cols != n || k <= 0 || len(b) != n*k || len(x) != n*k {
		return BlockResult{}, ErrShape
	}
	opt = opt.withDefaults(n)
	if ws == nil {
		ws = &BlockWorkspace{}
	}
	ws.size(n, k)
	blockRHSSolved.Add(uint64(k))

	col := func(s []float64, j int) []float64 { return s[j*n : (j+1)*n] }

	out := BlockResult{PerRHS: ws.perRHS}
	a.MulVecBlock(x, ws.r, k)
	for i := range ws.r {
		ws.r[i] = b[i] - ws.r[i]
	}
	remaining := 0
	for j := 0; j < k; j++ {
		rj := col(ws.r, j)
		ws.bnorm[j] = Norm2(col(b, j))
		if ws.bnorm[j] == 0 {
			Fill(col(x, j), 0)
			ws.active[j] = false
			continue
		}
		ws.res[j] = Norm2(rj) / ws.bnorm[j]
		out.PerRHS[j].Residual = ws.res[j]
		if ws.res[j] <= opt.Tol {
			ws.active[j] = false
			continue
		}
		ws.active[j] = true
		remaining++
		opt.M.Apply(rj, col(ws.z, j))
		copy(col(ws.p, j), col(ws.z, j))
		ws.rz[j] = Dot(rj, col(ws.z, j))
	}
	jp, _ := opt.M.(*JacobiPreconditioner)
	var firstErr error
	for it := 1; it <= opt.MaxIter && remaining > 0; it++ {
		out.Iterations = it
		// One traversal serves every still-active column; frozen columns
		// are skipped entirely (their results are already final). The
		// serial traversal folds the <p, Ap> reductions into the SpMV
		// pass so p and Ap are not re-read from memory.
		blockAp(a, ws.p, ws.ap, k, ws.active, ws.pap)
		for j := 0; j < k; j++ {
			if !ws.active[j] {
				continue
			}
			pj, apj, rj, xj, zj := col(ws.p, j), col(ws.ap, j), col(ws.r, j), col(x, j), col(ws.z, j)
			pap := ws.pap[j]
			if pap == 0 || math.IsNaN(pap) {
				if firstErr == nil {
					firstErr = fmt.Errorf("%w: block CG breakdown on rhs %d (pAp=%g)", ErrNoConvergence, j, pap)
				}
				ws.active[j] = false
				remaining--
				out.PerRHS[j] = IterResult{it, ws.res[j]}
				continue
			}
			alpha := ws.rz[j] / pap
			// Fused x/r update carrying the residual's max magnitude —
			// the first half of the overflow-safe Norm2 — so the two
			// Axpy passes and the norm's max scan cost one traversal.
			// Per element this is exactly Axpy(alpha, p, x),
			// Axpy(-alpha, ap, r), then Norm2(r): (-a)*b == -(a*b) in
			// IEEE arithmetic, so the iterates still match a sequential
			// CGWith solve bit for bit when run serial.
			maxr := 0.0
			for i := range pj {
				xj[i] += alpha * pj[i]
				rj[i] -= alpha * apj[i]
				if av := math.Abs(rj[i]); av > maxr {
					maxr = av
				}
			}
			rnorm := 0.0
			if maxr > 0 {
				s := 0.0
				for _, v := range rj {
					t := v / maxr
					s += t * t
				}
				rnorm = maxr * math.Sqrt(s)
			}
			ws.res[j] = rnorm / ws.bnorm[j]
			if ws.res[j] <= opt.Tol {
				ws.active[j] = false
				remaining--
				out.PerRHS[j] = IterResult{it, ws.res[j]}
				continue
			}
			// Preconditioner apply fused with the <r, z> reduction when
			// the preconditioner is pointwise Jacobi (the common sweep
			// chain case); anything else goes through the interface.
			var rzNew float64
			if jp != nil {
				s := 0.0
				for i, v := range rj {
					zv := v * jp.invDiag[i]
					zj[i] = zv
					s += v * zv
				}
				rzNew = s
			} else {
				opt.M.Apply(rj, zj)
				rzNew = Dot(rj, zj)
			}
			beta := rzNew / ws.rz[j]
			ws.rz[j] = rzNew
			for i := range pj {
				pj[i] = zj[i] + beta*pj[i]
			}
			out.PerRHS[j] = IterResult{it, ws.res[j]}
		}
	}
	if firstErr != nil {
		return out, firstErr
	}
	if remaining > 0 {
		return out, fmt.Errorf("%w: block CG after %d iters (%d of %d rhs unconverged)",
			ErrMaxIter, out.Iterations, remaining, k)
	}
	return out, nil
}
