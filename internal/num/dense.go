// Package num is the numerical kernel of the repository: dense and sparse
// linear algebra, iterative Krylov solvers, tridiagonal systems, scalar
// root finding, interpolation and quadrature. It is deliberately small,
// allocation-conscious and dependency-free; it stands in for the numerics
// that the paper obtained from COMSOL.
package num

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("num: singular matrix")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("num: dimension mismatch")

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewDense allocates a zeroed Rows x Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("num: invalid dense shape %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into the element at (i, j).
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = m*x. y must have length m.Rows and x length m.Cols.
func (m *Dense) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
}

// LU is an LU factorization with partial pivoting of a square matrix.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// FactorLU computes the LU factorization of the square matrix a with
// partial pivoting. The input matrix is not modified.
func FactorLU(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	n := a.Rows
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, a.Data)
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: find the largest magnitude in column k.
		p, maxv := k, math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(f.lu[i*n+k]); v > maxv {
				p, maxv = i, v
			}
		}
		if maxv == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				f.lu[p*n+j], f.lu[k*n+j] = f.lu[k*n+j], f.lu[p*n+j]
			}
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivot := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := f.lu[i*n+k] / pivot
			f.lu[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				f.lu[i*n+j] -= l * f.lu[k*n+j]
			}
		}
	}
	return f, nil
}

// Solve solves A x = b using the factorization. b is not modified; the
// solution is returned as a fresh slice.
func (f *LU) Solve(b []float64) ([]float64, error) {
	x := make([]float64, f.n)
	if err := f.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves A x = b into the caller-provided x without
// allocating — the coarse-grid solve inside a multigrid cycle runs once
// per V-cycle and must stay off the heap. x and b must not alias.
func (f *LU) SolveInto(x, b []float64) error {
	if len(b) != f.n || len(x) != f.n {
		return ErrShape
	}
	n := f.n
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu[i*n+j] * x[j]
		}
		d := f.lu[i*n+i]
		if d == 0 {
			return ErrSingular
		}
		x[i] = s / d
	}
	return nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveDense solves the square dense system A x = b.
func SolveDense(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Dot returns the inner product of x and y. Large operands are reduced
// in deterministic chunks across the kernel pool (see SetKernelThreads).
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	n := len(x)
	chunks := kernelChunks(n)
	if chunks == 1 {
		return dotRange(x, y, 0, n)
	}
	r := getRun(opDot)
	r.x, r.y = x, y
	forkJoin(r, n, chunks)
	s := 0.0
	for c := 0; c < chunks; c++ {
		s += r.part[c]
	}
	putRun(r)
	return s
}

// Norm2 returns the Euclidean norm of x, scaled to avoid overflow for
// extreme inputs. Large operands reduce in parallel chunks.
func Norm2(x []float64) float64 {
	n := len(x)
	chunks := kernelChunks(2 * n)
	if chunks == 1 {
		maxv, s := norm2Range(x, 0, n)
		if maxv == 0 {
			return 0
		}
		return maxv * math.Sqrt(s)
	}
	r := getRun(opNorm2)
	r.x = x
	forkJoin(r, n, chunks)
	maxv := 0.0
	for c := 0; c < chunks; c++ {
		if m := r.part[2*c]; m > maxv {
			maxv = m
		}
	}
	if maxv == 0 {
		putRun(r)
		return 0
	}
	s := 0.0
	for c := 0; c < chunks; c++ {
		if m := r.part[2*c]; m > 0 {
			ratio := m / maxv
			s += r.part[2*c+1] * ratio * ratio
		}
	}
	putRun(r)
	return maxv * math.Sqrt(s)
}

// NormInf returns the maximum absolute entry of x.
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes y += alpha*x in place. Large operands update in
// parallel chunks.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	n := len(x)
	chunks := kernelChunks(n)
	if chunks == 1 {
		axpyRange(alpha, x, y, 0, n)
		return
	}
	r := getRun(opAxpy)
	r.alpha, r.x, r.y = alpha, x, y
	forkJoin(r, n, chunks)
	putRun(r)
}

// Scale multiplies x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// MaxSlice returns the maximum value in x; it panics on empty input.
func MaxSlice(x []float64) float64 {
	if len(x) == 0 {
		panic("num: MaxSlice of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// MinSlice returns the minimum value in x; it panics on empty input.
func MinSlice(x []float64) float64 {
	if len(x) == 0 {
		panic("num: MinSlice of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Linspace returns n points evenly spaced over [a, b] inclusive.
// n must be >= 2.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		panic("num: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	d := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*d
	}
	out[n-1] = b
	return out
}
