package num

import "bright/internal/obs"

// Chebyshev smoother telemetry: setups are counted per hierarchy that
// resolves to polynomial smoothing, so experiments flipping the
// smoother policy can confirm which sessions actually rebuilt.
var chebySetups = obs.Default.Counter("bright_cheby_setups_total",
	"Multigrid hierarchies set up with the Chebyshev polynomial smoother.")

// chebyPowerIters is the number of power iterations used to estimate
// the spectral radius of D^{-1}A at setup. The estimate only steers
// smoothing bounds, so a loose (few-iteration) value is fine.
const chebyPowerIters = 12

// Chebyshev eigenvalue window as fractions of the estimated spectral
// radius rho(D^{-1}A): the polynomial damps components in
// [chebyLoFrac*rho, chebyHiFrac*rho]. Targeting only the upper part of
// the spectrum (not [0, rho]) is what makes it a smoother — low-energy
// error is the coarse grid's job. The lower edge is set aggressively
// wide at rho/10 (vs the textbook rho/3 of Adams et al.): on the
// anisotropic and stacked-die operators this repo cares about, strong
// directional coupling dilutes the eigenvalues of modes full coarsening
// cannot represent (e.g. xy-oscillatory/z-smooth modes of a thin stack)
// to well below rho/3, and a degree-3 polynomial reaching down to
// rho/10 still damps them where damped Jacobi and a rho/3 window both
// stall. Measured on the isotropic 2D Poisson operator the wide window
// costs nothing (same MG-CG iteration counts), while rho/30 starts to
// degrade it — rho/10 is the widest free setting. The 1.1 headroom
// absorbs power iteration underestimating rho.
const (
	chebyLoFrac = 0.10
	chebyHiFrac = 1.10
)

// estimateSpectralRadius runs power iteration on D^{-1}A and returns an
// estimate of its largest eigenvalue magnitude. The start vector is a
// fixed pseudo-random sequence so setups are reproducible run to run.
// Returns 0 for a matrix whose iteration collapses (zero operator).
func estimateSpectralRadius(a *CSR, invDiag []float64, iters int) float64 {
	n := a.Rows
	if n == 0 {
		return 0
	}
	v := make([]float64, n)
	w := make([]float64, n)
	seed := uint64(0x9e3779b97f4a7c15)
	for i := range v {
		// splitmix64 step; mapped into [-0.5, 0.5) so the start vector
		// has components in every eigendirection with high probability.
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		v[i] = float64(z>>11)/float64(1<<53) - 0.5
	}
	rho := 0.0
	for it := 0; it < iters; it++ {
		a.MulVec(v, w)
		for i := range w {
			w[i] *= invDiag[i]
		}
		nrm := Norm2(w)
		if nrm == 0 {
			return 0
		}
		rho = nrm // ||D^{-1}A v|| / ||v|| with ||v|| = 1
		inv := 1 / nrm
		for i := range w {
			v[i] = w[i] * inv
		}
	}
	return rho
}

// chebySmooth runs one degree-deg Chebyshev polynomial sweep on
// A x = b with Jacobi (D^{-1}) inner scaling, using the level's
// precomputed eigenvalue window [lo, hi]. Cost is one SpMV per degree —
// the same as deg damped-Jacobi sweeps — but the polynomial is the
// minimax damper over the window, so fewer V-cycles survive to the
// outer Krylov loop. The same fixed polynomial runs pre and post, which
// keeps the V-cycle SPD for CG.
func (m *Multigrid) chebySmooth(lev *mgLevel, deg int) {
	theta := (lev.hi + lev.lo) / 2
	delta := (lev.hi - lev.lo) / 2
	if theta <= 0 || delta <= 0 {
		m.jacobiSmooth(lev, deg)
		return
	}
	sigma := theta / delta
	rhoOld := 1 / sigma
	// First term: d = z/theta, x += d with z = D^{-1}(b - A x).
	lev.a.MulVec(lev.x, lev.res)
	for i, id := range lev.invDiag {
		lev.d[i] = id * (lev.b[i] - lev.res[i]) / theta
		lev.x[i] += lev.d[i]
	}
	for k := 2; k <= deg; k++ {
		rhoNew := 1 / (2*sigma - rhoOld)
		lev.a.MulVec(lev.x, lev.res)
		c1 := rhoNew * rhoOld
		c2 := 2 * rhoNew / delta
		for i, id := range lev.invDiag {
			z := id * (lev.b[i] - lev.res[i])
			lev.d[i] = c1*lev.d[i] + c2*z
			lev.x[i] += lev.d[i]
		}
		rhoOld = rhoNew
	}
}

// chebySmooth32 is the float32 mirror of chebySmooth, running on the
// mixed-precision hierarchy with the eigenvalue window estimated once in
// float64 at setup. The recurrence coefficients stay float64 — they are
// O(1) scalars, and keeping them wide costs nothing.
func (m *Multigrid) chebySmooth32(lev *mgLevel32, deg int) {
	theta := (lev.hi + lev.lo) / 2
	delta := (lev.hi - lev.lo) / 2
	if theta <= 0 || delta <= 0 {
		m.jacobiSmooth32(lev, deg)
		return
	}
	sigma := theta / delta
	rhoOld := 1 / sigma
	invTheta := float32(1 / theta)
	lev.a.MulVec(lev.x, lev.res)
	for i, id := range lev.invDiag {
		lev.d[i] = id * (lev.b[i] - lev.res[i]) * invTheta
		lev.x[i] += lev.d[i]
	}
	for k := 2; k <= deg; k++ {
		rhoNew := 1 / (2*sigma - rhoOld)
		lev.a.MulVec(lev.x, lev.res)
		c1 := float32(rhoNew * rhoOld)
		c2 := float32(2 * rhoNew / delta)
		for i, id := range lev.invDiag {
			z := id * (lev.b[i] - lev.res[i])
			lev.d[i] = c1*lev.d[i] + c2*z
			lev.x[i] += lev.d[i]
		}
		rhoOld = rhoNew
	}
}
