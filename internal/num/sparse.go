package num

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// COO is a coordinate-format sparse matrix builder. Duplicate entries are
// summed when converting to CSR, which makes it convenient for
// finite-volume / nodal-analysis stamping.
type COO struct {
	Rows, Cols int
	ri, ci     []int
	v          []float64
}

// NewCOO returns an empty COO builder of the given shape.
func NewCOO(rows, cols int) *COO {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("num: invalid sparse shape %dx%d", rows, cols))
	}
	return &COO{Rows: rows, Cols: cols}
}

// Add stamps v at (i, j). Repeated stamps at the same position accumulate.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.Rows || j < 0 || j >= c.Cols {
		panic(fmt.Sprintf("num: COO index (%d,%d) out of %dx%d", i, j, c.Rows, c.Cols))
	}
	if v == 0 {
		return
	}
	c.ri = append(c.ri, i)
	c.ci = append(c.ci, j)
	c.v = append(c.v, v)
}

// NNZ returns the number of raw (pre-deduplication) stamps.
func (c *COO) NNZ() int { return len(c.v) }

// ToCSR converts the builder into compressed-sparse-row form, merging
// duplicate entries.
func (c *COO) ToCSR() *CSR {
	n := len(c.v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if c.ri[ia] != c.ri[ib] {
			return c.ri[ia] < c.ri[ib]
		}
		return c.ci[ia] < c.ci[ib]
	})
	m := &CSR{Rows: c.Rows, Cols: c.Cols, RowPtr: make([]int, c.Rows+1)}
	lastR, lastC := -1, -1
	for _, k := range idx {
		r, col, val := c.ri[k], c.ci[k], c.v[k]
		if r == lastR && col == lastC {
			m.Val[len(m.Val)-1] += val
			continue
		}
		m.ColIdx = append(m.ColIdx, col)
		m.Val = append(m.Val, val)
		lastR, lastC = r, col
		m.RowPtr[r+1]++
	}
	for i := 0; i < c.Rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64

	// sell is the optional SELL-C-σ mirror attached by EnsureFormat at
	// solver/hierarchy setup. When present, MulVec runs the sliced
	// kernel instead of the row gather; results are bitwise identical
	// either way. The pointer is atomic so a mirror can be attached
	// while other goroutines multiply.
	sell atomic.Pointer[SELLCS]
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes y = m*x. Large matrices are row-partitioned across
// the kernel pool (see SetKernelThreads); the per-row sums are
// identical to the serial loop either way.
func (m *CSR) MulVec(x, y []float64) {
	if s := m.sell.Load(); s != nil {
		s.MulVec(x, y) // counts its own traversed rows
		return
	}
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(ErrShape)
	}
	spmvRowsTraversed.Add(uint64(m.Rows))
	// SpMV does ~2 flops per stored entry; gate the fork on nnz.
	chunks := kernelChunks(2 * m.NNZ())
	if chunks == 1 {
		mulVecRange(m, x, y, 0, m.Rows)
		return
	}
	r := getRun(opMulVec)
	r.a, r.x, r.y = m, x, y
	forkJoin(r, m.Rows, chunks)
	putRun(r)
}

// Diag extracts the matrix diagonal into a fresh slice. Missing diagonal
// entries are reported as zero.
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.ColIdx[k] == i {
				d[i] = m.Val[k]
				break
			}
		}
	}
	return d
}

// At returns the entry at (i, j) (zero if not stored). It is O(row nnz)
// and intended for tests and diagnostics, not inner loops.
func (m *CSR) At(i, j int) float64 {
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		if m.ColIdx[k] == j {
			return m.Val[k]
		}
	}
	return 0
}

// IsSymmetric reports whether the matrix is numerically symmetric to
// within tol on every stored entry. Intended for solver-precondition
// checks in tests.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			d := m.Val[k] - m.At(j, i)
			if d > tol || d < -tol {
				return false
			}
		}
	}
	return true
}
