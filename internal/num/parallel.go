package num

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the shared-memory parallel kernel layer: the
// BLAS-1 vector kernels (Dot, Norm2, Axpy) and the CSR matrix-vector
// product fork across a persistent pool of kernel goroutines when the
// operand is large enough to amortize the fork/join, and fall back to
// the serial loops below a work threshold so small systems pay nothing.
// The fork/join path is allocation-free in steady state: run descriptors
// come from a sync.Pool, work spans are plain values on a buffered
// channel, and partial-reduction slots live in the reused descriptor.
//
// The thread count is process-wide (SetKernelThreads); the serving
// layer exposes it through sim.Options so deployments can trade
// intra-solve parallelism against worker-pool concurrency.

// kernelThreads holds the configured thread count; 0 means "follow
// runtime.GOMAXPROCS".
var kernelThreads atomic.Int32

// SetKernelThreads sets the maximum number of goroutines a single
// kernel call (SpMV, dot, norm, axpy) may fan out across. n <= 0
// restores the default (runtime.GOMAXPROCS at call time). Safe to call
// concurrently with running kernels; in-flight operations finish with
// the count they started with.
func SetKernelThreads(n int) {
	if n < 0 {
		n = 0
	}
	kernelThreads.Store(int32(n))
}

// KernelThreads returns the effective kernel thread count.
func KernelThreads() int {
	if n := int(kernelThreads.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Parallelization thresholds. Variables (not constants) so the tests
// can shrink them and exercise the parallel path on small operands.
var (
	// parallelMinWork is the minimum number of scalar operations in a
	// kernel call before it forks; below it the serial loop wins.
	parallelMinWork = 1 << 15
	// parallelChunkWork is the target scalar operations per chunk.
	parallelChunkWork = 1 << 14
)

// maxKernelChunks bounds the fan-out of one kernel call (and sizes the
// partial-reduction scratch).
const maxKernelChunks = 64

// kernelChunks returns how many chunks a kernel call of the given
// scalar-op count should fork into (1 = run serial).
func kernelChunks(work int) int {
	t := KernelThreads()
	if t <= 1 || work < parallelMinWork {
		return 1
	}
	c := work / parallelChunkWork
	if c < 2 {
		return 1
	}
	if c > t {
		c = t
	}
	if c > maxKernelChunks {
		c = maxKernelChunks
	}
	return c
}

type kernelOp int32

const (
	opMulVec kernelOp = iota
	opDot
	opNorm2
	opAxpy
	opMulVec32
	opMulVecBlock
	opMulVecSell
	opMulVecSell32
)

// parRun describes one forked kernel call. Instances are pooled; the
// part slice doubles as the partial-reduction scratch and is retained
// across uses, so steady-state kernel calls do not allocate.
type parRun struct {
	op       kernelOp
	a        *CSR
	x, y     []float64
	a32      *CSR32
	x32, y32 []float32
	sell     *SELLCS
	sell32   *SELLCS32
	blockK   int
	alpha    float64
	part     []float64
	wg       sync.WaitGroup
}

// kernelSpan is one chunk of a run, sent by value over the work channel.
type kernelSpan struct {
	run    *parRun
	lo, hi int
	idx    int
}

var (
	kernelWorkOnce sync.Once
	kernelWork     chan kernelSpan
	kernelWorkers  atomic.Int32
	kernelSpawnMu  sync.Mutex
	runPool        = sync.Pool{New: func() any { return new(parRun) }}
)

// ensureWorkers guarantees at least n persistent kernel goroutines are
// parked on the work channel. Workers never exit; the pool grows to the
// largest fan-out ever requested and stays there.
func ensureWorkers(n int) {
	kernelWorkOnce.Do(func() {
		kernelWork = make(chan kernelSpan, 4*maxKernelChunks)
	})
	if int(kernelWorkers.Load()) >= n {
		return
	}
	kernelSpawnMu.Lock()
	for int(kernelWorkers.Load()) < n {
		kernelWorkers.Add(1)
		go kernelWorker()
	}
	kernelSpawnMu.Unlock()
}

func kernelWorker() {
	for sp := range kernelWork {
		sp.run.exec(sp.lo, sp.hi, sp.idx)
		sp.run.wg.Done()
	}
}

// exec runs the chunk [lo, hi) of the run's operation; idx addresses the
// chunk's partial-reduction slots.
func (r *parRun) exec(lo, hi, idx int) {
	switch r.op {
	case opMulVec:
		mulVecRange(r.a, r.x, r.y, lo, hi)
	case opDot:
		r.part[idx] = dotRange(r.x, r.y, lo, hi)
	case opNorm2:
		m, s := norm2Range(r.x, lo, hi)
		r.part[2*idx], r.part[2*idx+1] = m, s
	case opAxpy:
		axpyRange(r.alpha, r.x, r.y, lo, hi)
	case opMulVec32:
		mulVec32Range(r.a32, r.x32, r.y32, lo, hi)
	case opMulVecBlock:
		mulVecBlockRange(r.a, r.x, r.y, r.blockK, lo, hi)
	case opMulVecSell:
		// SELL forks over slice indices, not rows.
		sellMulVecRange(r.sell, r.x, r.y, lo, hi)
	case opMulVecSell32:
		sellMulVec32Range(r.sell32, r.x32, r.y32, lo, hi)
	}
}

// getRun checks a descriptor out of the pool with partial-reduction
// scratch for up to maxKernelChunks chunks.
func getRun(op kernelOp) *parRun {
	r := runPool.Get().(*parRun)
	r.op = op
	if cap(r.part) < 2*maxKernelChunks {
		r.part = make([]float64, 2*maxKernelChunks)
	}
	r.part = r.part[:2*maxKernelChunks]
	return r
}

// putRun drops operand references (so pooled descriptors do not pin
// matrices or vectors) and returns the descriptor to the pool.
func putRun(r *parRun) {
	r.a, r.x, r.y = nil, nil, nil
	r.a32, r.x32, r.y32 = nil, nil, nil
	r.sell, r.sell32 = nil, nil
	runPool.Put(r)
}

// forkJoin splits [0, n) into the given chunk count, executes chunk 0
// inline on the calling goroutine and the rest on the kernel pool, and
// waits for all of them.
func forkJoin(r *parRun, n, chunks int) {
	ensureWorkers(chunks - 1)
	r.wg.Add(chunks - 1)
	for c := 1; c < chunks; c++ {
		kernelWork <- kernelSpan{run: r, lo: c * n / chunks, hi: (c + 1) * n / chunks, idx: c}
	}
	r.exec(0, n/chunks, 0)
	r.wg.Wait()
}

// Serial kernel ranges. The full-range serial calls are bitwise
// identical to the pre-parallel implementations.

func mulVecRange(m *CSR, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
}

func dotRange(x, y []float64, lo, hi int) float64 {
	s := 0.0
	for i := lo; i < hi; i++ {
		s += x[i] * y[i]
	}
	return s
}

// norm2Range returns the chunk's maximum magnitude m and the sum of
// (v/m)^2 over the chunk (0 if the chunk is all zero). Chunks combine
// exactly: for chunk results (m_i, s_i), the norm is
// M*sqrt(sum_i s_i*(m_i/M)^2) with M = max m_i — the same overflow-safe
// scaling as the serial Norm2, which is the single-chunk case.
func norm2Range(x []float64, lo, hi int) (maxv, sumsq float64) {
	for i := lo; i < hi; i++ {
		if a := math.Abs(x[i]); a > maxv {
			maxv = a
		}
	}
	if maxv == 0 {
		return 0, 0
	}
	for i := lo; i < hi; i++ {
		r := x[i] / maxv
		sumsq += r * r
	}
	return maxv, sumsq
}

func axpyRange(alpha float64, x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		y[i] += alpha * x[i]
	}
}

func mulVec32Range(m *CSR32, x, y []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := float32(0)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
}

// mulVecBlockRange is the multi-RHS SpMV row range: x and y hold k
// right-hand sides column-major (column j occupies x[j*n : (j+1)*n]).
// The row's index/value entries are read once into cache and then
// reused across all k columns, so the matrix stream is amortized while
// each column keeps the access pattern (and summation order) of the
// single-vector MulVec.
// blockRowTile is the row-tile size of the multi-RHS SpMV kernels: the
// tile's matrix entries (Val/ColIdx for ~tile rows) are replayed from
// cache for every column instead of re-streaming the whole matrix, while
// each column's x window inside a tile stays a few tens of KB. Rows are
// still visited in ascending order per column, so tiling never changes
// the per-column arithmetic.
const blockRowTile = 2048

// mulVecBlockDotRange is mulVecBlockRange restricted to active columns,
// with the per-column <x_j, y_j> reduction folded into the traversal.
// Each pap[j] accumulates in ascending row order, so for a full serial
// range the reduction is bitwise identical to Dot(x_j, y_j) run after a
// separate SpMV. Inactive columns keep y stale and pap zero.
func mulVecBlockDotRange(m *CSR, x, y []float64, kw int, active []bool, pap []float64, lo, hi int) {
	n := m.Cols
	for j := 0; j < kw; j++ {
		pap[j] = 0
	}
	for t := lo; t < hi; t += blockRowTile {
		tEnd := t + blockRowTile
		if tEnd > hi {
			tEnd = hi
		}
		for j := 0; j < kw; j++ {
			if !active[j] {
				continue
			}
			xs := x[j*n : (j+1)*n]
			ys := y[j*m.Rows : (j+1)*m.Rows]
			s := pap[j]
			for i := t; i < tEnd; i++ {
				v := 0.0
				for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
					v += m.Val[k] * xs[m.ColIdx[k]]
				}
				ys[i] = v
				s += xs[i] * v
			}
			pap[j] = s
		}
	}
}

func mulVecBlockRange(m *CSR, x, y []float64, kw, lo, hi int) {
	n := m.Cols
	for t := lo; t < hi; t += blockRowTile {
		tEnd := t + blockRowTile
		if tEnd > hi {
			tEnd = hi
		}
		for j := 0; j < kw; j++ {
			xs := x[j*n : (j+1)*n]
			ys := y[j*m.Rows : (j+1)*m.Rows]
			for i := t; i < tEnd; i++ {
				s := 0.0
				for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
					s += m.Val[k] * xs[m.ColIdx[k]]
				}
				ys[i] = s
			}
		}
	}
}
