package num

import "math"

// This file implements the SELL-C-σ (sliced ELLPACK) sparse layout for
// the SpMV hot path. Rows are grouped into slices of C consecutive
// (sorted) rows; each slice stores its entries column-major, padded to
// the slice's widest row, so four neighboring rows' entries at the
// same column step sit on one cache line and can feed four independent
// register accumulators — the FP-add latency that serializes the CSR
// gather's single per-row sum chain is overlapped four-wide, and the
// column indices shrink to int32, cutting index traffic in half.
// Sorting rows by descending length inside a σ-row window (σ a small
// multiple of C) keeps rows of similar length in the same slice, which
// bounds the padding, while the permutation stays local enough that
// the x-vector access pattern of the finite-volume operators (banded,
// grid-ordered) survives.
//
// Two properties are load-bearing:
//
//   - Bitwise identity with CSR. Within a slice rows are sorted by
//     non-increasing length, so a four-row group's shortest row is its
//     last: the shared four-wide loop runs to that length and never
//     reads padding, and the longer rows finish on per-row tails. Each
//     row's register accumulates its entries in exactly CSR's
//     ascending-column order, so y is bit-for-bit the serial CSR
//     result (the contract every solver's warm-start and fallback
//     logic already relies on).
//
//   - Zero allocation on the multiply path. The accumulators are
//     registers; the parallel fork reuses the kernel pool's pooled
//     descriptors. All allocation happens in the constructors, which
//     run once at solver/hierarchy setup (escape-check pins this).
//
// A SELLCS is a snapshot of its source CSR, like CSR32: later mutation
// of the source is not observed.

const (
	// SellC is the slice height: the number of rows that share one
	// padded column-major slice, and the width of the kernel's stack
	// accumulator. 32 rows keep the accumulator (256 B) comfortably in
	// registers/L1 while giving the inner loop enough independent sums
	// to hide the x-gather latency; slices stay far smaller than the
	// kernel pool's row tiles (blockRowTile), so the pool's chunking
	// aligns to whole slices without load imbalance.
	SellC = 32
	// sellSigma is the row-sorting window: rows are sorted by
	// descending length only within σ = 8·C consecutive rows. A full
	// sort would minimize padding but scatter grid neighbours across
	// the matrix (ruining x locality); σ-windowed sorting bounds the
	// permutation distance to 256 rows while still packing
	// similar-length rows into common slices.
	sellSigma = 8 * SellC
)

// SELLCS is a SELL-C-σ matrix: the float64 mirror attached to a CSR by
// EnsureFormat and consulted by CSR.MulVec.
type SELLCS struct {
	Rows, Cols int
	// Perm maps sorted position -> original row index.
	Perm []int32
	// RowLen is the stored-entry count per sorted position,
	// non-increasing within each slice.
	RowLen []int32
	// SlicePtr is the per-slice start offset into ColIdx/Val
	// (length numSlices+1).
	SlicePtr []int
	// ColIdx/Val hold the padded column-major slices: the entry t of
	// the slice's row r lives at SlicePtr[s] + t*cnt + r, cnt being the
	// slice's row count. Padding slots are zero and never read.
	ColIdx []int32
	Val    []float64

	nnz int
}

// NewSELLCS converts a CSR into SELL-C-σ form. It returns nil when the
// dimensions exceed int32 indexing (the same bound CSR32 has). The
// conversion is unconditional — padding-overhead policy lives in
// EnsureFormat, which decides whether to attach the result.
func NewSELLCS(a *CSR) *SELLCS {
	if a.Cols > math.MaxInt32 || a.Rows > math.MaxInt32 {
		return nil
	}
	rows := a.Rows
	lens := make([]int32, rows)
	for i := 0; i < rows; i++ {
		lens[i] = int32(a.RowPtr[i+1] - a.RowPtr[i])
	}
	perm := make([]int32, rows)
	for i := range perm {
		perm[i] = int32(i)
	}
	// σ-window sort, descending by row length, stable (equal-length
	// rows keep grid order, preserving x locality). Insertion sort: the
	// window is at most sellSigma rows and finite-volume operators have
	// near-constant row lengths, so the passes are near-linear; being
	// loop-only also keeps this file free of heap-escaping closures,
	// which the escape-check gate watches for.
	for w := 0; w < rows; w += sellSigma {
		end := w + sellSigma
		if end > rows {
			end = rows
		}
		for i := w + 1; i < end; i++ {
			p := perm[i]
			l := lens[p]
			j := i - 1
			for j >= w && lens[perm[j]] < l {
				perm[j+1] = perm[j]
				j--
			}
			perm[j+1] = p
		}
	}
	nSlices := (rows + SellC - 1) / SellC
	slicePtr := make([]int, nSlices+1)
	padded := 0
	for s := 0; s < nSlices; s++ {
		base := s * SellC
		cnt := rows - base
		if cnt > SellC {
			cnt = SellC
		}
		slicePtr[s] = padded
		padded += int(lens[perm[base]]) * cnt // widest row first after the sort
	}
	slicePtr[nSlices] = padded

	rowLen := make([]int32, rows)
	colIdx := make([]int32, padded)
	val := make([]float64, padded)
	for s := 0; s < nSlices; s++ {
		base := s * SellC
		cnt := rows - base
		if cnt > SellC {
			cnt = SellC
		}
		off := slicePtr[s]
		for r := 0; r < cnt; r++ {
			row := int(perm[base+r])
			rowLen[base+r] = lens[row]
			k0 := a.RowPtr[row]
			for t := 0; t < int(lens[row]); t++ {
				colIdx[off+t*cnt+r] = int32(a.ColIdx[k0+t])
				val[off+t*cnt+r] = a.Val[k0+t]
			}
		}
	}
	return &SELLCS{
		Rows: rows, Cols: a.Cols,
		Perm: perm, RowLen: rowLen, SlicePtr: slicePtr,
		ColIdx: colIdx, Val: val,
		nnz: a.NNZ(),
	}
}

// NNZ returns the number of stored (non-padding) entries.
func (m *SELLCS) NNZ() int { return m.nnz }

// PaddingRatio reports padded storage over stored entries (>= 1; 1 is
// padding-free). It is the operational row-length-variance measure the
// format policy gates on: after the σ-window sort, only residual
// length spread inside a slice costs padding.
func (m *SELLCS) PaddingRatio() float64 {
	if m.nnz == 0 {
		return 1
	}
	return float64(len(m.Val)) / float64(m.nnz)
}

func (m *SELLCS) numSlices() int { return (m.Rows + SellC - 1) / SellC }

// MulVec computes y = m*x, bitwise identical to the source CSR's
// serial MulVec. Large matrices fork across the kernel pool on whole
// slices.
func (m *SELLCS) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(ErrShape)
	}
	spmvRowsTraversed.Add(uint64(m.Rows))
	ns := m.numSlices()
	chunks := kernelChunks(2 * m.nnz)
	if chunks > ns {
		chunks = ns
	}
	if chunks <= 1 {
		sellMulVecRange(m, x, y, 0, ns)
		return
	}
	r := getRun(opMulVecSell)
	r.sell, r.x, r.y = m, x, y
	forkJoin(r, ns, chunks)
	putRun(r)
}

// sellMulVecRange multiplies the slices [sLo, sHi). Rows are walked in
// groups of four with one register accumulator each: at a given column
// step t the four rows' entries are adjacent in the column-major slice
// (one cache line), and the four sums are independent dependency
// chains, so the FP-add latency that serializes the CSR gather's
// single per-row chain is overlapped four-wide. Each register still
// accumulates its row's entries in ascending column order, so every
// row's sum is bit-for-bit the serial CSR result. Lengths are
// non-increasing inside a slice, so the group's fourth row has the
// shortest length and the shared four-wide loop never reads padding;
// the longer rows finish on their own strided tail.
func sellMulVecRange(m *SELLCS, x, y []float64, sLo, sHi int) {
	vals, cols := m.Val, m.ColIdx
	rowLen, perm := m.RowLen, m.Perm
	for s := sLo; s < sHi; s++ {
		base := s * SellC
		cnt := m.Rows - base
		if cnt > SellC {
			cnt = SellC
		}
		off := m.SlicePtr[s]
		g := 0
		for ; g+4 <= cnt; g += 4 {
			l0 := int(rowLen[base+g])
			l1 := int(rowLen[base+g+1])
			l2 := int(rowLen[base+g+2])
			l3 := int(rowLen[base+g+3])
			var s0, s1, s2, s3 float64
			k := off + g
			t := 0
			for ; t+2 <= l3; t += 2 { // two column steps per trip: same
				k2 := k + cnt // per-row add order, half the loop overhead
				s0 += vals[k] * x[cols[k]]
				s1 += vals[k+1] * x[cols[k+1]]
				s2 += vals[k+2] * x[cols[k+2]]
				s3 += vals[k+3] * x[cols[k+3]]
				s0 += vals[k2] * x[cols[k2]]
				s1 += vals[k2+1] * x[cols[k2+1]]
				s2 += vals[k2+2] * x[cols[k2+2]]
				s3 += vals[k2+3] * x[cols[k2+3]]
				k = k2 + cnt
			}
			if t < l3 {
				s0 += vals[k] * x[cols[k]]
				s1 += vals[k+1] * x[cols[k+1]]
				s2 += vals[k+2] * x[cols[k+2]]
				s3 += vals[k+3] * x[cols[k+3]]
			}
			if l0 > l3 { // ragged tails, rare on stencil operators
				s0 = sellRowTail(vals, cols, x, s0, off+g, cnt, l3, l0)
				if l1 > l3 {
					s1 = sellRowTail(vals, cols, x, s1, off+g+1, cnt, l3, l1)
				}
				if l2 > l3 {
					s2 = sellRowTail(vals, cols, x, s2, off+g+2, cnt, l3, l2)
				}
			}
			y[perm[base+g]] = s0
			y[perm[base+g+1]] = s1
			y[perm[base+g+2]] = s2
			y[perm[base+g+3]] = s3
		}
		for ; g < cnt; g++ { // remainder rows of a partial final slice
			y[perm[base+g]] = sellRowTail(vals, cols, x, 0, off+g, cnt, 0, int(rowLen[base+g]))
		}
	}
}

// sellRowTail accumulates one row's entries for column steps [t0, t1)
// onto s, striding through the column-major slice.
func sellRowTail(vals []float64, cols []int32, x []float64, s float64, base, stride, t0, t1 int) float64 {
	k := base + t0*stride
	for t := t0; t < t1; t++ {
		s += vals[k] * x[cols[k]]
		k += stride
	}
	return s
}

// SELLCS32 is the float32 mirror of a SELLCS for the mixed-precision
// cycle: values demoted to float32, layout (permutation, slice
// pointers, column indices) shared with the float64 mirror. It is
// attached to a CSR32 by NewCSR32 when the source CSR carries a SELL
// mirror, so the precision policy and the format policy compose
// without either knowing about the other.
type SELLCS32 struct {
	Rows, Cols int
	Perm       []int32
	RowLen     []int32
	SlicePtr   []int
	ColIdx     []int32
	Val        []float32

	nnz int
}

// newSELLCS32 demotes a SELLCS. Like NewCSR32 it returns nil when a
// value overflows float32 (padding slots are zero and always demote
// cleanly).
func newSELLCS32(s *SELLCS) *SELLCS32 {
	val := make([]float32, len(s.Val))
	for k, v := range s.Val {
		f := float32(v)
		if math.IsInf(float64(f), 0) && !math.IsInf(v, 0) {
			return nil
		}
		val[k] = f
	}
	return &SELLCS32{
		Rows: s.Rows, Cols: s.Cols,
		Perm: s.Perm, RowLen: s.RowLen, SlicePtr: s.SlicePtr, ColIdx: s.ColIdx,
		Val: val,
		nnz: s.nnz,
	}
}

// NNZ returns the number of stored (non-padding) entries.
func (m *SELLCS32) NNZ() int { return m.nnz }

func (m *SELLCS32) numSlices() int { return (m.Rows + SellC - 1) / SellC }

// MulVec computes y = m*x in float32, bitwise identical to the source
// CSR32's serial MulVec.
func (m *SELLCS32) MulVec(x, y []float32) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(ErrShape)
	}
	spmvRowsTraversed.Add(uint64(m.Rows))
	ns := m.numSlices()
	chunks := kernelChunks(2 * m.nnz)
	if chunks > ns {
		chunks = ns
	}
	if chunks <= 1 {
		sellMulVec32Range(m, x, y, 0, ns)
		return
	}
	r := getRun(opMulVecSell32)
	r.sell32, r.x32, r.y32 = m, x, y
	forkJoin(r, ns, chunks)
	putRun(r)
}

// sellMulVec32Range is sellMulVecRange in float32.
func sellMulVec32Range(m *SELLCS32, x, y []float32, sLo, sHi int) {
	vals, cols := m.Val, m.ColIdx
	rowLen, perm := m.RowLen, m.Perm
	for s := sLo; s < sHi; s++ {
		base := s * SellC
		cnt := m.Rows - base
		if cnt > SellC {
			cnt = SellC
		}
		off := m.SlicePtr[s]
		g := 0
		for ; g+4 <= cnt; g += 4 {
			l0 := int(rowLen[base+g])
			l1 := int(rowLen[base+g+1])
			l2 := int(rowLen[base+g+2])
			l3 := int(rowLen[base+g+3])
			var s0, s1, s2, s3 float32
			k := off + g
			t := 0
			for ; t+2 <= l3; t += 2 {
				k2 := k + cnt
				s0 += vals[k] * x[cols[k]]
				s1 += vals[k+1] * x[cols[k+1]]
				s2 += vals[k+2] * x[cols[k+2]]
				s3 += vals[k+3] * x[cols[k+3]]
				s0 += vals[k2] * x[cols[k2]]
				s1 += vals[k2+1] * x[cols[k2+1]]
				s2 += vals[k2+2] * x[cols[k2+2]]
				s3 += vals[k2+3] * x[cols[k2+3]]
				k = k2 + cnt
			}
			if t < l3 {
				s0 += vals[k] * x[cols[k]]
				s1 += vals[k+1] * x[cols[k+1]]
				s2 += vals[k+2] * x[cols[k+2]]
				s3 += vals[k+3] * x[cols[k+3]]
			}
			if l0 > l3 {
				s0 = sellRowTail32(vals, cols, x, s0, off+g, cnt, l3, l0)
				if l1 > l3 {
					s1 = sellRowTail32(vals, cols, x, s1, off+g+1, cnt, l3, l1)
				}
				if l2 > l3 {
					s2 = sellRowTail32(vals, cols, x, s2, off+g+2, cnt, l3, l2)
				}
			}
			y[perm[base+g]] = s0
			y[perm[base+g+1]] = s1
			y[perm[base+g+2]] = s2
			y[perm[base+g+3]] = s3
		}
		for ; g < cnt; g++ {
			y[perm[base+g]] = sellRowTail32(vals, cols, x, 0, off+g, cnt, 0, int(rowLen[base+g]))
		}
	}
}

// sellRowTail32 is sellRowTail in float32.
func sellRowTail32(vals []float32, cols []int32, x []float32, s float32, base, stride, t0, t1 int) float32 {
	k := base + t0*stride
	for t := t0; t < t1; t++ {
		s += vals[k] * x[cols[k]]
		k += stride
	}
	return s
}
