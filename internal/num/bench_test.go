package num

import (
	"math/rand"
	"testing"
)

// laplacian2D builds the SPD 5-point stencil on an n x n grid.
func laplacian2D(n int) *CSR {
	c := NewCOO(n*n, n*n)
	idx := func(i, j int) int { return j*n + i }
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			row := idx(i, j)
			c.Add(row, row, 4)
			if i > 0 {
				c.Add(row, idx(i-1, j), -1)
			}
			if i < n-1 {
				c.Add(row, idx(i+1, j), -1)
			}
			if j > 0 {
				c.Add(row, idx(i, j-1), -1)
			}
			if j < n-1 {
				c.Add(row, idx(i, j+1), -1)
			}
		}
	}
	return c.ToCSR()
}

func BenchmarkCSRMulVec64x64(b *testing.B) {
	a := laplacian2D(64)
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(x, y)
	}
}

func BenchmarkCGLaplacian64x64(b *testing.B) {
	a := laplacian2D(64)
	rhs := make([]float64, a.Rows)
	rng := rand.New(rand.NewSource(1))
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	m := NewJacobi(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, a.Rows)
		if _, err := CG(a, rhs, x, IterOptions{Tol: 1e-8, M: m}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBiCGSTABConvection(b *testing.B) {
	const n = 4096
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 3)
		if i > 0 {
			c.Add(i, i-1, -1.8)
		}
		if i < n-1 {
			c.Add(i, i+1, -1)
		}
	}
	a := c.ToCSR()
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	m := NewJacobi(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, n)
		if _, err := BiCGSTAB(a, rhs, x, IterOptions{Tol: 1e-9, M: m}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLUSolve64(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const n = 64
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		a.Add(i, i, float64(n))
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveDense(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTridiag4096(b *testing.B) {
	const n = 4096
	sub := make([]float64, n)
	diag := make([]float64, n)
	sup := make([]float64, n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = 4
		sub[i] = -1
		sup[i] = -1
		rhs[i] = float64(i % 5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveTridiag(sub, diag, sup, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBrentPolarizationStyle(b *testing.B) {
	// The shape of the operating-point solves: exp-dominated monotone
	// function root-found per evaluation.
	f := func(x float64) float64 { return 2.3*expApprox(x) - 5 - x }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Brent(f, 0, 3, 1e-12); err != nil {
			b.Fatal(err)
		}
	}
}

// expApprox keeps the benchmark allocation-free and deterministic.
func expApprox(x float64) float64 {
	s := 1.0
	term := 1.0
	for k := 1; k < 12; k++ {
		term *= x / float64(k)
		s += term
	}
	return s
}

// benchThreads runs fn once per kernel-thread setting as /serial and
// /parallel sub-benchmarks — the pairing the bench report keys on to
// compute speedups. The settings are restored afterwards so other
// benchmarks in the run see the process default.
func benchThreads(b *testing.B, fn func(b *testing.B)) {
	prev := KernelThreads()
	b.Cleanup(func() { SetKernelThreads(prev) })
	b.Run("serial", func(b *testing.B) {
		SetKernelThreads(1)
		fn(b)
	})
	b.Run("parallel", func(b *testing.B) {
		SetKernelThreads(4)
		fn(b)
	})
}

// BenchmarkMulVecLargeGrid is the headline SpMV kernel on the 256x256
// five-point Laplacian (65k rows, ~327k nonzeros) — large enough that
// the parallel path engages at its default work threshold.
func BenchmarkMulVecLargeGrid(b *testing.B) {
	a := laplacian2D(256)
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i%13) * 0.25
	}
	benchThreads(b, func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.MulVec(x, y)
		}
	})
}

// BenchmarkDotLarge exercises the chunked reduction on 1M elements.
func BenchmarkDotLarge(b *testing.B) {
	const n = 1 << 20
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i%17) * 0.5
		y[i] = float64(i%11) * 0.25
	}
	benchThreads(b, func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink = Dot(x, y)
		}
	})
}

var sink float64

// BenchmarkCGLargeGrid solves the 256x256 Laplacian with a cached
// SparseSolver: the end-to-end effect of the parallel kernels on a
// realistic Krylov solve. The solver is reused across iterations, so
// the loop also demonstrates the allocation-free steady state.
func BenchmarkCGLargeGrid(b *testing.B) {
	a := laplacian2D(256)
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = float64(i%7) - 3
	}
	benchThreads(b, func(b *testing.B) {
		s := NewSparseSolverSymmetric(a, true, IterOptions{Tol: 1e-8, MaxIter: 10 * a.Rows})
		x := make([]float64, a.Rows)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Fill(x, 0)
			if _, err := s.Solve(rhs, x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchPrecond runs one CG solve per iteration as /jacobi and /mg
// sub-benchmarks — the suffix pairing cmd/benchjson keys on to compute
// the multigrid speedup rows. MG setup happens outside the timed loop,
// matching how the serving paths cache the hierarchy per operator.
func benchPrecond(b *testing.B, a *CSR, shape GridShape, tol float64) {
	rng := rand.New(rand.NewSource(4))
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	run := func(b *testing.B, m Preconditioner) {
		x := make([]float64, a.Rows)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Fill(x, 0)
			if _, err := CG(a, rhs, x, IterOptions{Tol: tol, M: m}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("jacobi", func(b *testing.B) { run(b, NewJacobi(a)) })
	mg, err := NewGMG(a, shape, MGOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("mg", func(b *testing.B) { run(b, mg) })
}

func BenchmarkCGPoisson64x64(b *testing.B) {
	benchPrecond(b, laplacian2D(64), GridShape{NX: 64, NY: 64}, 1e-8)
}

func BenchmarkCGPoisson128x128(b *testing.B) {
	benchPrecond(b, laplacian2D(128), GridShape{NX: 128, NY: 128}, 1e-8)
}

// BenchmarkCGStack3D is the 3D-IC shape: a chip-scale XY grid a few
// layers deep, matching the thermal stack solves.
func BenchmarkCGStack3D(b *testing.B) {
	benchPrecond(b, laplacian3D(48, 48, 8), GridShape{NX: 48, NY: 48, NZ: 8}, 1e-8)
}

// stack3D builds the 7-point stencil on an nx x ny x nz grid with
// in-plane weight 1 and through-plane weight wz — the stacked-die
// thermal operator, where inter-layer coupling through microchannel
// walls and TSVs is much stronger than in-plane spreading.
func stack3D(nx, ny, nz int, wz float64) *CSR {
	c := NewCOO(nx*ny*nz, nx*ny*nz)
	idx := func(i, j, k int) int { return (k*ny+j)*nx + i }
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				row := idx(i, j, k)
				diag := 0.0
				add := func(ii, jj, kk int, w float64) {
					if ii >= 0 && ii < nx && jj >= 0 && jj < ny && kk >= 0 && kk < nz {
						c.Add(row, idx(ii, jj, kk), -w)
						diag += w
					}
				}
				add(i-1, j, k, 1)
				add(i+1, j, k, 1)
				add(i, j-1, k, 1)
				add(i, j+1, k, 1)
				add(i, j, k-1, wz)
				add(i, j, k+1, wz)
				c.Add(row, row, diag+0.01)
			}
		}
	}
	return c.ToCSR()
}

// BenchmarkMGCG512x512F32 pairs /f64 and /f32 MG-CG solves on the
// 512x512 Poisson grid — the suffix couple cmd/benchjson keys on for
// the mixed-precision speedup rows. Both sides run the Chebyshev
// smoother (the production default after this PR) so the pair isolates
// the precision axis; the 512-class grid is where the float32
// hierarchy's halved memory traffic shows up — at cache-resident sizes
// the scalar kernels are compute-bound and the win vanishes. Hierarchy
// setup (including the float32 mirror) happens outside the timed loop,
// matching how the serving paths cache the preconditioner per operator.
func BenchmarkMGCG512x512F32(b *testing.B) {
	a := laplacian2D(512)
	shape := GridShape{NX: 512, NY: 512}
	rng := rand.New(rand.NewSource(5))
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	run := func(b *testing.B, prec MGPrecision) {
		mg, err := NewGMG(a, shape, MGOptions{Smoother: SmootherCheby, Precision: prec})
		if err != nil {
			b.Fatal(err)
		}
		if mg.Precision() != prec {
			b.Fatalf("precision %v not active", prec)
		}
		x := make([]float64, a.Rows)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Fill(x, 0)
			if _, err := CG(a, rhs, x, IterOptions{Tol: 1e-8, M: mg}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("f64", func(b *testing.B) { run(b, PrecisionFloat64) })
	b.Run("f32", func(b *testing.B) { run(b, PrecisionFloat32) })
}

// BenchmarkMGCGStack128x4Cheby pairs /jacobi-smooth and /cheby MG-CG
// solves on the 128x128x4 stacked-die operator with strong through-plane
// coupling (wz=6) — the smoother couple of the bench report, on the
// operator class the paper's MPSoC stacks actually produce. Full
// coarsening cannot represent the xy-oscillatory/z-smooth modes that
// strong inter-layer coupling pushes below the damped-Jacobi smoothing
// band, so the Jacobi-smoothed hierarchy degrades toward plain CG while
// the Chebyshev window [chebyLoFrac*rho, chebyHiFrac*rho] still covers
// them. Eigenvalue estimation runs at setup, outside the timed loop.
func BenchmarkMGCGStack128x4Cheby(b *testing.B) {
	a := stack3D(128, 128, 4, 6)
	shape := GridShape{NX: 128, NY: 128, NZ: 4}
	rng := rand.New(rand.NewSource(6))
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	run := func(b *testing.B, sm MGSmoother) {
		mg, err := NewGMG(a, shape, MGOptions{Smoother: sm})
		if err != nil {
			b.Fatal(err)
		}
		x := make([]float64, a.Rows)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Fill(x, 0)
			if _, err := CG(a, rhs, x, IterOptions{Tol: 1e-8, MaxIter: 4 * a.Rows, M: mg}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("jacobi-smooth", func(b *testing.B) { run(b, SmootherJacobi) })
	b.Run("cheby", func(b *testing.B) { run(b, SmootherCheby) })
}

// BenchmarkBlockCG128x128 pairs /seq (eight one-RHS CG solves) against
// /block (one eight-RHS block CG) on the 128x128 Poisson grid — the
// multi-RHS couple of the bench report. Each sub reports rows/op, the
// CSR rows traversed per sweep chain (from the bright_spmv_rows_total
// counter): that is the block solver's deterministic win — one
// traversal serves all k columns — and the metric cmd/benchjson pairs
// the couple on, immune to the wall-clock noise of a shared box.
func BenchmarkBlockCG128x128(b *testing.B) {
	a := laplacian2D(128)
	const k = 8
	n := a.Rows
	rng := rand.New(rand.NewSource(7))
	cols := make([][]float64, k)
	inter := make([]float64, n*k)
	for j := 0; j < k; j++ {
		cols[j] = make([]float64, n)
		for i := 0; i < n; i++ {
			v := rng.NormFloat64()
			cols[j][i] = v
			inter[j*n+i] = v
		}
	}
	opt := IterOptions{Tol: 1e-8, M: NewJacobi(a)}
	b.Run("seq", func(b *testing.B) {
		ws := NewWorkspace(n)
		x := make([]float64, n)
		rows0 := spmvRowsTraversed.Value()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < k; j++ {
				Fill(x, 0)
				if _, err := CGWith(a, cols[j], x, opt, ws); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(spmvRowsTraversed.Value()-rows0)/float64(b.N), "rows/op")
	})
	b.Run("block", func(b *testing.B) {
		ws := NewBlockWorkspace(n, k)
		x := make([]float64, n*k)
		rows0 := spmvRowsTraversed.Value()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Fill(x, 0)
			if _, err := BlockCG(a, inter, x, k, opt, ws); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(spmvRowsTraversed.Value()-rows0)/float64(b.N), "rows/op")
	})
}

// BenchmarkCGWarmWorkspace measures the steady-state re-solve loop the
// co-simulation runs: same matrix, warm initial guess, cached workspace
// and preconditioner. allocs/op is the headline number (must be 0).
func BenchmarkCGWarmWorkspace(b *testing.B) {
	a := laplacian2D(64)
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = float64(i%5) - 2
	}
	s := NewSparseSolverSymmetric(a, true, IterOptions{Tol: 1e-10, MaxIter: 10 * a.Rows})
	x := make([]float64, a.Rows)
	if _, err := s.Solve(rhs, x); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(rhs, x); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSpMV runs the sparse-layout couples on one operator: /csr vs
// /sell (float64 CSR gather vs SELL-C-σ sliced kernel) and /csr32 vs
// /sell32 (the float32 mirrors). Each sub reports rows/op — the
// deterministic traversal metric benchjson uses to sanity-match the
// pair — and the /csr-vs-/sell wall-clock ratio is the gated SELL
// speedup row in make bench-compare. The formats are built directly
// (no EnsureFormat) so each sub times exactly one kernel.
func benchSpMV(b *testing.B, a *CSR) {
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	y := make([]float64, a.Rows)
	s := NewSELLCS(a)
	if s == nil {
		b.Fatal("NewSELLCS returned nil")
	}
	a32 := NewCSR32(a)
	if a32 == nil {
		b.Fatal("NewCSR32 returned nil")
	}
	s32 := newSELLCS32(s)
	if s32 == nil {
		b.Fatal("newSELLCS32 returned nil")
	}
	x32 := make([]float32, a.Cols)
	demote(x32, x)
	y32 := make([]float32, a.Rows)
	run := func(b *testing.B, f func()) {
		rows0 := spmvRowsTraversed.Value()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f()
		}
		b.ReportMetric(float64(spmvRowsTraversed.Value()-rows0)/float64(b.N), "rows/op")
	}
	b.Run("csr", func(b *testing.B) { run(b, func() { a.MulVec(x, y) }) })
	b.Run("sell", func(b *testing.B) { run(b, func() { s.MulVec(x, y) }) })
	b.Run("csr32", func(b *testing.B) { run(b, func() { a32.MulVec(x32, y32) }) })
	b.Run("sell32", func(b *testing.B) { run(b, func() { s32.MulVec(x32, y32) }) })
}

// BenchmarkSpMV256x256 / 512x512: the PDN/thermal Poisson operators at
// the array scales the sweep service actually solves.
func BenchmarkSpMV256x256(b *testing.B) { benchSpMV(b, laplacian2D(256)) }

func BenchmarkSpMV512x512(b *testing.B) { benchSpMV(b, laplacian2D(512)) }

// BenchmarkSpMVStack128x4 is the stacked-die operator (4 tiers with
// inter-tier microchannel coupling), the anisotropic 7-point stencil
// from the through-chip-microchannel scenario.
func BenchmarkSpMVStack128x4(b *testing.B) { benchSpMV(b, stack3D(128, 128, 4, 6)) }
