package num

import (
	"fmt"
	"math"
)

// GoldenSection minimizes a unimodal scalar function on [a, b] to the
// given absolute tolerance on x, returning the minimizer and minimum.
// For non-unimodal functions it converges to some local minimum inside
// the bracket.
func GoldenSection(f func(float64) float64, a, b, tol float64) (xmin, fmin float64, err error) {
	if b <= a {
		return 0, 0, fmt.Errorf("num: GoldenSection needs a < b")
	}
	if tol <= 0 {
		tol = 1e-8 * (b - a)
	}
	const invPhi = 0.6180339887498949
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for i := 0; i < 500 && (b-a) > tol; i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	if f1 < f2 {
		return x1, f1, nil
	}
	return x2, f2, nil
}

// CoordinateDescent minimizes f over a box by cycling golden-section
// line searches along each coordinate until the improvement per sweep
// falls below tol (relative) or maxSweeps is exhausted. It returns the
// best point found. The method is derivative-free and robust for the
// smooth low-dimensional design objectives in this repository.
func CoordinateDescent(f func([]float64) float64, x0, lo, hi []float64, tol float64, maxSweeps int) ([]float64, float64, error) {
	dim := len(x0)
	if len(lo) != dim || len(hi) != dim {
		return nil, 0, fmt.Errorf("num: bounds dimension mismatch")
	}
	for d := 0; d < dim; d++ {
		if hi[d] <= lo[d] {
			return nil, 0, fmt.Errorf("num: empty box on coordinate %d", d)
		}
		if x0[d] < lo[d] || x0[d] > hi[d] {
			return nil, 0, fmt.Errorf("num: x0 outside the box on coordinate %d", d)
		}
	}
	if tol <= 0 {
		tol = 1e-6
	}
	if maxSweeps <= 0 {
		maxSweeps = 20
	}
	x := append([]float64(nil), x0...)
	best := f(x)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		prev := best
		for d := 0; d < dim; d++ {
			xd := append([]float64(nil), x...)
			line := func(v float64) float64 {
				xd[d] = v
				return f(xd)
			}
			xStar, fStar, err := GoldenSection(line, lo[d], hi[d], 1e-6*(hi[d]-lo[d]))
			if err != nil {
				return nil, 0, err
			}
			if fStar < best {
				best = fStar
				x[d] = xStar
			}
		}
		if math.Abs(prev-best) <= tol*(math.Abs(prev)+1e-12) {
			break
		}
	}
	return x, best, nil
}
