package num

import (
	"math"
	"sync/atomic"
)

// CSR32 is a float32 mirror of a CSR matrix for the mixed-precision
// multigrid cycle: values are demoted to float32 and column indices to
// int32, halving the memory traffic of the SpMV that dominates V-cycle
// cost. On the memory-bound grids the solvers run (the matrix no longer
// fits cache at 128^2), that bandwidth cut is the whole speedup — the
// flop count is unchanged. A CSR32 is a snapshot: later mutation of the
// source CSR is not observed.
type CSR32 struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int32
	Val        []float32

	// sell is the float32 SELL-C-σ mirror, inherited in NewCSR32 when
	// the source CSR already carries one: the precision policy and the
	// format policy compose without a separate knob.
	sell atomic.Pointer[SELLCS32]
}

// NewCSR32 demotes a CSR to its float32 mirror. It returns nil when the
// matrix cannot be mirrored faithfully enough to iterate on: dimensions
// beyond int32 indexing, or values whose magnitude overflows float32
// (demotion would turn them into Inf and poison every cycle). Values
// that underflow to zero are kept — they only weaken the smoother.
func NewCSR32(a *CSR) *CSR32 {
	if a.Cols > math.MaxInt32 || a.Rows > math.MaxInt32 {
		return nil
	}
	m := &CSR32{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: a.RowPtr,
		ColIdx: make([]int32, len(a.ColIdx)),
		Val:    make([]float32, len(a.Val)),
	}
	for k, j := range a.ColIdx {
		m.ColIdx[k] = int32(j)
	}
	for k, v := range a.Val {
		f := float32(v)
		if math.IsInf(float64(f), 0) && !math.IsInf(v, 0) {
			return nil
		}
		m.Val[k] = f
	}
	if s := a.sell.Load(); s != nil {
		if s32 := newSELLCS32(s); s32 != nil {
			sell32Conversions.Inc()
			m.sell.Store(s32)
		}
		// A nil s32 means a value overflowed float32 — but then the CSR
		// demotion above already returned nil, so this branch is
		// unreachable in practice; the guard just keeps the two paths
		// independent.
	}
	return m
}

// NNZ returns the number of stored entries.
func (m *CSR32) NNZ() int { return len(m.Val) }

// MulVec computes y = m*x in float32. Large matrices are
// row-partitioned across the same kernel pool as the float64 SpMV.
func (m *CSR32) MulVec(x, y []float32) {
	if s := m.sell.Load(); s != nil {
		s.MulVec(x, y) // counts its own traversed rows
		return
	}
	if len(x) != m.Cols || len(y) != m.Rows {
		panic(ErrShape)
	}
	spmvRowsTraversed.Add(uint64(m.Rows))
	chunks := kernelChunks(2 * m.NNZ())
	if chunks == 1 {
		mulVec32Range(m, x, y, 0, m.Rows)
		return
	}
	r := getRun(opMulVec32)
	r.a32, r.x32, r.y32 = m, x, y
	forkJoin(r, m.Rows, chunks)
	putRun(r)
}

// demoteScaled writes dst[i] = float32(src[i] * scale). The scale keeps
// the demoted vector in comfortable float32 range (the caller passes
// 1/maxabs), so a tiny outer residual never underflows to a zero block.
func demoteScaled(dst []float32, src []float64, scale float64) {
	for i, v := range src {
		dst[i] = float32(v * scale)
	}
}

// promoteScaled writes dst[i] = float64(src[i]) * scale, undoing
// demoteScaled's normalization.
func promoteScaled(dst []float64, src []float32, scale float64) {
	for i, v := range src {
		dst[i] = float64(v) * scale
	}
}

// promote widens src into dst unscaled.
func promote(dst []float64, src []float32) {
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// demote narrows src into dst unscaled.
func demote(dst []float32, src []float64) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// fill32 sets every element of x to v.
func fill32(x []float32, v float32) {
	for i := range x {
		x[i] = v
	}
}

// maxAbs returns the largest magnitude in x (0 for an empty or all-zero
// vector).
func maxAbs(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// finite32 reports whether every element of x is finite (float32
// overflow inside a cycle shows up as Inf/NaN here).
func finite32(x []float32) bool {
	for _, v := range x {
		d := float64(v)
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return false
		}
	}
	return true
}
