package num

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveTridiagKnown(t *testing.T) {
	// System: [2 -1 0; -1 2 -1; 0 -1 2] x = [1 0 1] => x = [1 1 1].
	a := []float64{0, -1, -1}
	b := []float64{2, 2, 2}
	c := []float64{-1, -1, 0}
	d := []float64{1, 0, 1}
	x, err := SolveTridiag(a, b, c, d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-1) > 1e-13 {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestSolveTridiagAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		d := make([]float64, n)
		dm := NewDense(n, n)
		for i := 0; i < n; i++ {
			b[i] = 4 + rng.Float64()
			dm.Set(i, i, b[i])
			if i > 0 {
				a[i] = rng.NormFloat64()
				dm.Set(i, i-1, a[i])
			}
			if i < n-1 {
				c[i] = rng.NormFloat64()
				dm.Set(i, i+1, c[i])
			}
			d[i] = rng.NormFloat64()
		}
		x1, err := SolveTridiag(a, b, c, d)
		if err != nil {
			t.Fatal(err)
		}
		x2, err := SolveDense(dm, d)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-10*(1+math.Abs(x2[i])) {
				t.Fatalf("trial %d row %d: thomas %g vs LU %g", trial, i, x1[i], x2[i])
			}
		}
	}
}

func TestSolveTridiagEdge(t *testing.T) {
	x, err := SolveTridiag([]float64{0}, []float64{5}, []float64{0}, []float64{10})
	if err != nil || x[0] != 2 {
		t.Fatalf("1x1 solve: x=%v err=%v", x, err)
	}
	if _, err := SolveTridiag([]float64{0}, []float64{0}, []float64{0}, []float64{1}); err == nil {
		t.Fatal("singular 1x1 must error")
	}
	if _, err := SolveTridiag(nil, nil, nil, nil); err != nil {
		t.Fatal("empty system should be a no-op")
	}
	if _, err := SolveTridiag([]float64{0, 0}, []float64{1}, []float64{0}, []float64{1}); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestBrentPolynomial(t *testing.T) {
	// Root of x^3 - 2x - 5 near 2.0945514815.
	f := func(x float64) float64 { return x*x*x - 2*x - 5 }
	x, err := Brent(f, 2, 3, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-2.0945514815423265) > 1e-10 {
		t.Fatalf("x = %.12f", x)
	}
}

func TestBrentEndpointRoot(t *testing.T) {
	f := func(x float64) float64 { return x }
	if x, err := Brent(f, 0, 1, 1e-14); err != nil || x != 0 {
		t.Fatalf("endpoint root: x=%g err=%v", x, err)
	}
}

func TestBrentNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Brent(f, -1, 1, 1e-12); err == nil {
		t.Fatal("must report missing bracket")
	}
}

func TestBrentTranscendental(t *testing.T) {
	// cos(x) = x at 0.7390851332.
	f := func(x float64) float64 { return math.Cos(x) - x }
	x, err := Brent(f, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-0.7390851332151607) > 1e-9 {
		t.Fatalf("x = %.12f", x)
	}
}

func TestNewtonSqrt(t *testing.T) {
	f := func(x float64) float64 { return x*x - 2 }
	x, err := Newton(f, 1, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-math.Sqrt2) > 1e-10 {
		t.Fatalf("x = %.15f", x)
	}
}

func TestExpandBracket(t *testing.T) {
	f := func(x float64) float64 { return x - 100 }
	a, b, err := ExpandBracket(f, 0, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !(f(a) <= 0 && f(b) >= 0) {
		t.Fatalf("bracket [%g,%g] does not straddle root", a, b)
	}
	if _, _, err := ExpandBracket(func(float64) float64 { return 1 }, 0, 1, 5); err == nil {
		t.Fatal("rootless function must fail to bracket")
	}
}

func TestLinearInterp(t *testing.T) {
	l, err := NewLinear([]float64{0, 1, 2}, []float64{0, 10, 0})
	if err != nil {
		t.Fatal(err)
	}
	if l.Eval(0.5) != 5 || l.Eval(1.5) != 5 {
		t.Fatalf("midpoints: %g %g", l.Eval(0.5), l.Eval(1.5))
	}
	// Extrapolation continues the end segments.
	if l.Eval(3) != -10 {
		t.Fatalf("extrapolation = %g", l.Eval(3))
	}
	if _, err := NewLinear([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("non-increasing abscissae must error")
	}
	if _, err := NewLinear([]float64{0}, []float64{1}); err == nil {
		t.Fatal("single point must error")
	}
}

func TestPCHIPInterpolatesNodes(t *testing.T) {
	xs := []float64{0, 1, 3, 4.5, 7}
	ys := []float64{1, 4, 2, 2, 8}
	p, err := NewPCHIP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if math.Abs(p.Eval(xs[i])-ys[i]) > 1e-12 {
			t.Fatalf("node %d: %g != %g", i, p.Eval(xs[i]), ys[i])
		}
	}
}

func TestPCHIPMonotonePreserving(t *testing.T) {
	// Monotone data must yield a monotone interpolant (no overshoot).
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 0.1, 0.5, 0.9, 1}
	p, err := NewPCHIP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	prev := p.Eval(0)
	for x := 0.01; x <= 4.0; x += 0.01 {
		v := p.Eval(x)
		if v < prev-1e-12 {
			t.Fatalf("non-monotone at x=%g: %g < %g", x, v, prev)
		}
		if v < -1e-12 || v > 1+1e-12 {
			t.Fatalf("overshoot at x=%g: %g", x, v)
		}
		prev = v
	}
}

func TestPCHIPTwoPoints(t *testing.T) {
	p, err := NewPCHIP([]float64{0, 2}, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Eval(1)-3) > 1e-12 {
		t.Fatalf("two-point PCHIP should be linear: %g", p.Eval(1))
	}
}

func TestGaussLegendreExactness(t *testing.T) {
	// 3-point rule is exact for degree-5 polynomials.
	f := func(x float64) float64 { return 5*math.Pow(x, 5) - x*x + 3 }
	got := GaussLegendre(f, -1, 2, 3)
	// Analytic: [5x^6/6 - x^3/3 + 3x] from -1 to 2 = 58.5.
	want := (5.0/6*64 - 8.0/3 + 6) - (5.0/6 + 1.0/3 - 3)
	if math.Abs(got-want) > 1e-10 {
		t.Fatalf("got %g want %g", got, want)
	}
}

func TestQuadratureCrossCheck(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(-x) * math.Sin(3*x) }
	g := GaussLegendre(f, 0, 2, 7) // falls back to composite
	s := CompositeSimpson(f, 0, 2, 400)
	if math.Abs(g-s) > 1e-7 {
		t.Fatalf("Gauss %g vs Simpson %g", g, s)
	}
}

func TestTrapzUniform(t *testing.T) {
	ys := []float64{0, 1, 2, 3}
	if v := TrapzUniform(ys, 1); math.Abs(v-4.5) > 1e-14 {
		t.Fatalf("trapz = %g", v)
	}
	if TrapzUniform([]float64{5}, 1) != 0 {
		t.Fatal("degenerate trapz")
	}
}

func TestPCHIPNeverOvershootsProperty(t *testing.T) {
	f := func(raw [6]float64) bool {
		xs := []float64{0, 1, 2, 3, 4, 5}
		ys := make([]float64, 6)
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
			ys[i] = v
		}
		p, err := NewPCHIP(xs, ys)
		if err != nil {
			return false
		}
		lo, hi := MinSlice(ys), MaxSlice(ys)
		span := hi - lo
		for x := 0.0; x <= 5.0; x += 0.05 {
			v := p.Eval(x)
			if v < lo-1e-9*(1+span) || v > hi+1e-9*(1+span) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
