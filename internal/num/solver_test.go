package num

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func residualNorm(a *CSR, b, x []float64) float64 {
	r := make([]float64, len(b))
	a.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	return Norm2(r) / Norm2(b)
}

func TestSparseSolverSymmetricCG(t *testing.T) {
	a := laplacian2D(24)
	n := a.Rows
	s := NewSparseSolver(a, IterOptions{Tol: 1e-11})
	if !s.Symmetric() {
		t.Fatal("laplacian not detected symmetric")
	}
	rng := rand.New(rand.NewSource(3))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	res, err := s.Solve(b, x)
	if err != nil {
		t.Fatal(err)
	}
	if rn := residualNorm(a, b, x); rn > 1e-10 {
		t.Fatalf("residual %g after %d iters", rn, res.Iterations)
	}
	// Warm start at the exact solution: the second solve must detect
	// convergence immediately.
	res2, err := s.Solve(b, x)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Iterations != 0 {
		t.Fatalf("warm-started solve took %d iterations, want 0", res2.Iterations)
	}
}

// TestSparseSolverFallback pins the CG -> BiCGSTAB path: diag(1, -1) is
// symmetric indefinite and breaks CG deterministically (p.Ap = 0 on the
// first step), so the solver must recover through BiCGSTAB with the
// same cached Jacobi preconditioner.
func TestSparseSolverFallback(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 1, -1)
	a := c.ToCSR()
	s := NewSparseSolver(a, IterOptions{Tol: 1e-12})
	if !s.Symmetric() {
		t.Fatal("diagonal matrix not detected symmetric")
	}
	b := []float64{1, 1}
	x := make([]float64, 2)
	if _, err := s.Solve(b, x); err != nil {
		t.Fatalf("fallback solve failed: %v", err)
	}
	want := []float64{1, -1}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
	// SolveSparse routes through the same path.
	x2, _, err := SolveSparse(a, b, IterOptions{Tol: 1e-12})
	if err != nil {
		t.Fatalf("SolveSparse fallback failed: %v", err)
	}
	for i := range x2 {
		if math.Abs(x2[i]-want[i]) > 1e-9 {
			t.Fatalf("SolveSparse x = %v, want %v", x2, want)
		}
	}
}

func TestSparseSolverNonsymmetric(t *testing.T) {
	const n = 200
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 3)
		if i > 0 {
			c.Add(i, i-1, -1.8)
		}
		if i < n-1 {
			c.Add(i, i+1, -1)
		}
	}
	a := c.ToCSR()
	s := NewSparseSolver(a, IterOptions{Tol: 1e-11})
	if s.Symmetric() {
		t.Fatal("convection matrix detected symmetric")
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)
	if _, err := s.Solve(b, x); err != nil {
		t.Fatal(err)
	}
	if rn := residualNorm(a, b, x); rn > 1e-10 {
		t.Fatalf("residual %g", rn)
	}
}

// TestSparseSolverConcurrent hammers one SparseSolver from many
// goroutines (run under -race via `make check`): solves serialize on
// the internal mutex and every caller must still get its own correct
// solution through the shared workspace.
func TestSparseSolverConcurrent(t *testing.T) {
	a := laplacian2D(16)
	n := a.Rows
	s := NewSparseSolver(a, IterOptions{Tol: 1e-11})
	const goroutines = 8
	const solvesEach = 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			b := make([]float64, n)
			x := make([]float64, n)
			for k := 0; k < solvesEach; k++ {
				for i := range b {
					b[i] = rng.NormFloat64()
				}
				Fill(x, 0)
				if _, err := s.Solve(b, x); err != nil {
					errs <- err
					return
				}
				if rn := residualNorm(a, b, x); rn > 1e-10 {
					errs <- ErrNoConvergence
					return
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestKrylovWorkspaceZeroAlloc is the steady-state allocation contract:
// warm solves through a reused Workspace and prebuilt preconditioner
// must not allocate at all.
func TestKrylovWorkspaceZeroAlloc(t *testing.T) {
	SetKernelThreads(1) // the serial path is the alloc-free baseline
	t.Cleanup(func() { SetKernelThreads(0) })
	a := laplacian2D(24)
	n := a.Rows
	rng := rand.New(rand.NewSource(9))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	opt := IterOptions{Tol: 1e-10, M: NewJacobi(a)}
	ws := NewWorkspace(n)
	if _, err := CGWith(a, b, x, opt, ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		Fill(x, 0)
		if _, err := CGWith(a, b, x, opt, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("CGWith allocates %.1f per solve, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(20, func() {
		Fill(x, 0)
		if _, err := BiCGSTABWith(a, b, x, opt, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("BiCGSTABWith allocates %.1f per solve, want 0", allocs)
	}

	// Same contract with a multigrid preconditioner: hierarchy setup may
	// allocate, the steady-state MG-preconditioned solve loop must not.
	mg, err := NewGMG(a, GridShape{NX: 24, NY: 24}, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opt.M = mg
	allocs = testing.AllocsPerRun(20, func() {
		Fill(x, 0)
		if _, err := CGWith(a, b, x, opt, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("MG-preconditioned CGWith allocates %.1f per solve, want 0", allocs)
	}

	// Mixed-precision hierarchy: the float32 mirror is built at setup;
	// the promote/demote boundary and the float32 cycles must not
	// allocate either.
	mg32, err := NewGMG(a, GridShape{NX: 24, NY: 24}, MGOptions{Precision: PrecisionFloat32})
	if err != nil {
		t.Fatal(err)
	}
	if mg32.Precision() != PrecisionFloat32 {
		t.Fatal("float32 hierarchy not active")
	}
	z := make([]float64, n)
	mg32.Apply(b, z) // warm the stall probe's early applies
	mg32.Apply(b, z)
	mg32.Apply(b, z)
	allocs = testing.AllocsPerRun(20, func() { mg32.Apply(b, z) })
	if allocs != 0 {
		t.Fatalf("float32 MG Apply allocates %.1f per cycle, want 0", allocs)
	}

	// Block solver: warm solves through a reused BlockWorkspace must not
	// allocate (PerRHS is workspace-backed).
	const k = 4
	bb := make([]float64, n*k)
	xx := make([]float64, n*k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			bb[j*n+i] = b[i] * float64(j+1)
		}
	}
	opt.M = NewJacobi(a)
	bws := NewBlockWorkspace(n, k)
	if _, err := BlockCG(a, bb, xx, k, opt, bws); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(20, func() {
		Fill(xx, 0)
		if _, err := BlockCG(a, bb, xx, k, opt, bws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("BlockCG allocates %.1f per solve, want 0", allocs)
	}

	// SELL-backed solves: the format conversion happens at EnsureFormat
	// (setup, may allocate); once the mirror is attached, steady-state
	// MulVec and the solve loop through it must stay allocation-free.
	as := laplacian2D(24)
	as.EnsureFormat(FormatSELL)
	if as.sell.Load() == nil {
		t.Fatal("SELL mirror not attached")
	}
	y := make([]float64, n)
	allocs = testing.AllocsPerRun(20, func() { as.MulVec(b, y) })
	if allocs != 0 {
		t.Fatalf("SELL MulVec allocates %.1f per call, want 0", allocs)
	}
	opt.M = NewJacobi(as)
	if _, err := CGWith(as, b, x, opt, ws); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(20, func() {
		Fill(x, 0)
		if _, err := CGWith(as, b, x, opt, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SELL-backed CGWith allocates %.1f per solve, want 0", allocs)
	}
}

// TestSparseSolverTelemetry pins the process-wide Krylov counters: a CG
// solve bumps the cg series, a CG breakdown bumps the fallback counter
// and the bicgstab series. Counters are deltas, not absolutes — other
// tests in the package share obs.Default.
func TestSparseSolverTelemetry(t *testing.T) {
	delta := func(f func()) (cgS, cgIt, biS, biIt, fb uint64) {
		c0, i0, b0, j0, f0 := cgSolves.Value(), cgIterations.Value(), bicgSolves.Value(), bicgIterations.Value(), cgFallbacks.Value()
		f()
		return cgSolves.Value() - c0, cgIterations.Value() - i0,
			bicgSolves.Value() - b0, bicgIterations.Value() - j0,
			cgFallbacks.Value() - f0
	}

	// Healthy SPD solve: CG only.
	a := laplacian2D(12)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	cgS, cgIt, biS, _, fb := delta(func() {
		x := make([]float64, a.Rows)
		if _, err := NewSparseSolver(a, IterOptions{Tol: 1e-10}).Solve(b, x); err != nil {
			t.Fatal(err)
		}
	})
	if cgS != 1 || cgIt == 0 || biS != 0 || fb != 0 {
		t.Fatalf("SPD solve counted cgSolves=%d cgIters=%d biSolves=%d fallbacks=%d, want 1/>0/0/0",
			cgS, cgIt, biS, fb)
	}

	// Symmetric-indefinite matrix: CG breaks down, BiCGSTAB finishes.
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 1, -1)
	ind := c.ToCSR()
	cgS, _, biS, biIt, fb := delta(func() {
		x := make([]float64, 2)
		if _, err := NewSparseSolver(ind, IterOptions{Tol: 1e-12}).Solve([]float64{1, 1}, x); err != nil {
			t.Fatal(err)
		}
	})
	if cgS != 1 || biS != 1 || biIt == 0 || fb != 1 {
		t.Fatalf("indefinite solve counted cgSolves=%d biSolves=%d biIters=%d fallbacks=%d, want 1/1/>0/1",
			cgS, biS, biIt, fb)
	}
}
