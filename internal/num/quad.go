package num

// GaussLegendre integrates f over [a, b] with an n-point Gauss-Legendre
// rule (n in {2, 3, 4, 5}; other values fall back to composite 5-point).
// The rule is exact for polynomials of degree 2n-1, which is ample for
// the smooth velocity/concentration profiles integrated in this
// repository.
func GaussLegendre(f func(float64) float64, a, b float64, n int) float64 {
	type rule struct{ x, w []float64 }
	rules := map[int]rule{
		2: {[]float64{-0.5773502691896257, 0.5773502691896257}, []float64{1, 1}},
		3: {[]float64{-0.7745966692414834, 0, 0.7745966692414834},
			[]float64{0.5555555555555556, 0.8888888888888888, 0.5555555555555556}},
		4: {[]float64{-0.8611363115940526, -0.3399810435848563, 0.3399810435848563, 0.8611363115940526},
			[]float64{0.3478548451374538, 0.6521451548625461, 0.6521451548625461, 0.3478548451374538}},
		5: {[]float64{-0.9061798459386640, -0.5384693101056831, 0, 0.5384693101056831, 0.9061798459386640},
			[]float64{0.2369268850561891, 0.4786286704993665, 0.5688888888888889, 0.4786286704993665, 0.2369268850561891}},
	}
	r, ok := rules[n]
	if !ok {
		// Composite 5-point over 8 panels for unusual n requests.
		const panels = 8
		h := (b - a) / panels
		s := 0.0
		for i := 0; i < panels; i++ {
			s += GaussLegendre(f, a+float64(i)*h, a+float64(i+1)*h, 5)
		}
		return s
	}
	mid := 0.5 * (a + b)
	half := 0.5 * (b - a)
	s := 0.0
	for i, xi := range r.x {
		s += r.w[i] * f(mid+half*xi)
	}
	return s * half
}

// CompositeSimpson integrates f over [a, b] with n panels (n rounded up
// to even). It is used as an independent cross-check of GaussLegendre in
// tests and for integrands sampled on uniform grids.
func CompositeSimpson(f func(float64) float64, a, b float64, n int) float64 {
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	s := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 0 {
			s += 2 * f(x)
		} else {
			s += 4 * f(x)
		}
	}
	return s * h / 3
}

// TrapzUniform integrates samples ys taken at uniform spacing dx with the
// trapezoidal rule.
func TrapzUniform(ys []float64, dx float64) float64 {
	if len(ys) < 2 {
		return 0
	}
	s := 0.5 * (ys[0] + ys[len(ys)-1])
	for _, v := range ys[1 : len(ys)-1] {
		s += v
	}
	return s * dx
}
