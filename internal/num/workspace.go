package num

// Workspace holds the scratch vectors of the Krylov solvers so that
// repeated solves against same-sized systems do not reallocate. A zero
// Workspace is ready to use: the first solve sizes the buffers, later
// solves of the same dimension reuse them (growing only if the system
// grows). A Workspace is not safe for concurrent use; give each
// goroutine its own, or use SparseSolver which serializes internally.
type Workspace struct {
	scratch [8][]float64
}

// Scratch-vector slots. CG uses the first four; BiCGSTAB uses all
// eight. The names document the mapping only — slots are interchangeable
// same-length buffers.
const (
	wsR    = iota // residual
	wsZ           // preconditioned residual / rhat
	wsP           // search direction
	wsAP          // A*p / v
	wsS           // BiCGSTAB s
	wsT           // BiCGSTAB t
	wsPhat        // BiCGSTAB preconditioned p
	wsShat        // BiCGSTAB preconditioned s
)

// NewWorkspace returns a workspace pre-sized for n-dimensional systems.
func NewWorkspace(n int) *Workspace {
	w := &Workspace{}
	for i := range w.scratch {
		w.scratch[i] = make([]float64, n)
	}
	return w
}

// vec returns slot's buffer with length n, reallocating only when the
// current capacity is too small. Contents are unspecified on return;
// the solvers fully initialize every vector they use.
func (w *Workspace) vec(slot, n int) []float64 {
	if cap(w.scratch[slot]) < n {
		w.scratch[slot] = make([]float64, n)
	}
	return w.scratch[slot][:n]
}
