package num

import "sort"

// Sparse matrix algebra used by the multigrid setup phase: transpose and
// matrix-matrix products build the restriction operators and the
// Galerkin coarse-level matrices (A_c = P^T A P). These run once per
// hierarchy construction, not per solve, so they favour clarity and
// deterministic output (sorted column order) over peak speed.

// Transpose returns m^T as a new CSR.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int, m.Cols+1),
		ColIdx: make([]int, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	for _, j := range m.ColIdx {
		t.RowPtr[j+1]++
	}
	for i := 0; i < t.Rows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	// next[i] is the write cursor of transposed row i.
	next := make([]int, t.Rows)
	copy(next, t.RowPtr[:t.Rows])
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			t.ColIdx[next[j]] = i
			t.Val[next[j]] = m.Val[k]
			next[j]++
		}
	}
	return t
}

// MatMul returns the product a*b as a new CSR (Gustavson's algorithm
// with a dense accumulator row). Columns within each output row are
// sorted, so the result is deterministic and At/Diag-friendly.
func MatMul(a, b *CSR) *CSR {
	if a.Cols != b.Rows {
		panic(ErrShape)
	}
	out := &CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int, a.Rows+1)}
	acc := make([]float64, b.Cols)
	mark := make([]int, b.Cols)
	for i := range mark {
		mark[i] = -1
	}
	var cols []int
	for i := 0; i < a.Rows; i++ {
		cols = cols[:0]
		for ka := a.RowPtr[i]; ka < a.RowPtr[i+1]; ka++ {
			j := a.ColIdx[ka]
			av := a.Val[ka]
			for kb := b.RowPtr[j]; kb < b.RowPtr[j+1]; kb++ {
				c := b.ColIdx[kb]
				if mark[c] != i {
					mark[c] = i
					acc[c] = 0
					cols = append(cols, c)
				}
				acc[c] += av * b.Val[kb]
			}
		}
		sort.Ints(cols)
		for _, c := range cols {
			out.ColIdx = append(out.ColIdx, c)
			out.Val = append(out.Val, acc[c])
		}
		out.RowPtr[i+1] = len(out.Val)
	}
	return out
}

// ToDense expands the sparse matrix into dense form (multigrid uses it
// for the coarsest-level direct factorization; keep it off large
// matrices).
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Set(i, m.ColIdx[k], m.Val[k])
		}
	}
	return d
}
