package num

import (
	"fmt"
	"math"
)

// ODEFunc evaluates the time derivative dy/dt = f(t, y) into dydt.
// The slices have equal length and dydt must be fully overwritten.
type ODEFunc func(t float64, y, dydt []float64)

// RK4 integrates y' = f(t, y) from t0 to t1 with n fixed fourth-order
// Runge-Kutta steps. y0 is not modified; the final state is returned in
// a fresh slice.
func RK4(f ODEFunc, y0 []float64, t0, t1 float64, n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("num: RK4 needs at least one step")
	}
	if t1 <= t0 {
		return nil, fmt.Errorf("num: RK4 needs t1 > t0")
	}
	dim := len(y0)
	y := append([]float64(nil), y0...)
	k1 := make([]float64, dim)
	k2 := make([]float64, dim)
	k3 := make([]float64, dim)
	k4 := make([]float64, dim)
	tmp := make([]float64, dim)
	h := (t1 - t0) / float64(n)
	t := t0
	for s := 0; s < n; s++ {
		f(t, y, k1)
		for i := range tmp {
			tmp[i] = y[i] + h/2*k1[i]
		}
		f(t+h/2, tmp, k2)
		for i := range tmp {
			tmp[i] = y[i] + h/2*k2[i]
		}
		f(t+h/2, tmp, k3)
		for i := range tmp {
			tmp[i] = y[i] + h*k3[i]
		}
		f(t+h, tmp, k4)
		for i := range y {
			y[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
		t += h
	}
	return y, nil
}

// AdaptiveOptions configures RK45.
type AdaptiveOptions struct {
	// RelTol, AbsTol are the per-component error tolerances
	// (defaults 1e-8, 1e-10).
	RelTol, AbsTol float64
	// InitialStep (default (t1-t0)/100) and MinStep (default
	// (t1-t0)*1e-12) bound the step size.
	InitialStep, MinStep float64
	// MaxSteps bounds the total accepted+rejected steps (default 1e6).
	MaxSteps int
}

func (o AdaptiveOptions) withDefaults(span float64) AdaptiveOptions {
	if o.RelTol <= 0 {
		o.RelTol = 1e-8
	}
	if o.AbsTol <= 0 {
		o.AbsTol = 1e-10
	}
	if o.InitialStep <= 0 {
		o.InitialStep = span / 100
	}
	if o.MinStep <= 0 {
		o.MinStep = span * 1e-12
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 1_000_000
	}
	return o
}

// RK45 integrates y' = f(t, y) from t0 to t1 with the adaptive
// Dormand-Prince 5(4) pair. y0 is not modified.
func RK45(f ODEFunc, y0 []float64, t0, t1 float64, opt AdaptiveOptions) ([]float64, error) {
	if t1 <= t0 {
		return nil, fmt.Errorf("num: RK45 needs t1 > t0")
	}
	opt = opt.withDefaults(t1 - t0)
	dim := len(y0)
	y := append([]float64(nil), y0...)
	// Dormand-Prince coefficients.
	var (
		c = [7]float64{0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1, 1}
		a = [7][6]float64{
			{},
			{1.0 / 5},
			{3.0 / 40, 9.0 / 40},
			{44.0 / 45, -56.0 / 15, 32.0 / 9},
			{19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
			{9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
			{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
		}
		b5 = [7]float64{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84, 0}
		b4 = [7]float64{5179.0 / 57600, 0, 7571.0 / 16695, 393.0 / 640, -92097.0 / 339200, 187.0 / 2100, 1.0 / 40}
	)
	k := make([][]float64, 7)
	for i := range k {
		k[i] = make([]float64, dim)
	}
	tmp := make([]float64, dim)
	y5 := make([]float64, dim)
	t := t0
	h := opt.InitialStep
	for step := 0; step < opt.MaxSteps; step++ {
		if t >= t1 {
			return y, nil
		}
		if t+h > t1 {
			h = t1 - t
		}
		for s := 0; s < 7; s++ {
			copy(tmp, y)
			for j := 0; j < s; j++ {
				if a[s][j] != 0 {
					Axpy(h*a[s][j], k[j], tmp)
				}
			}
			f(t+c[s]*h, tmp, k[s])
		}
		errNorm := 0.0
		for i := 0; i < dim; i++ {
			d5, d4 := 0.0, 0.0
			for s := 0; s < 7; s++ {
				d5 += b5[s] * k[s][i]
				d4 += b4[s] * k[s][i]
			}
			y5[i] = y[i] + h*d5
			scale := opt.AbsTol + opt.RelTol*math.Max(math.Abs(y[i]), math.Abs(y5[i]))
			e := h * (d5 - d4) / scale
			errNorm += e * e
		}
		errNorm = math.Sqrt(errNorm / float64(dim))
		if errNorm <= 1 {
			t += h
			copy(y, y5)
		}
		// PI-free step controller with safety factor.
		factor := 0.9 * math.Pow(math.Max(errNorm, 1e-10), -0.2)
		factor = math.Min(5, math.Max(0.2, factor))
		h *= factor
		if h < opt.MinStep {
			return nil, fmt.Errorf("num: RK45 step underflow at t=%g (err %g)", t, errNorm)
		}
	}
	return nil, fmt.Errorf("%w: RK45 exceeded %d steps", ErrNoConvergence, opt.MaxSteps)
}
