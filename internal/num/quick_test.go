package num

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickConfig returns a generator seeded deterministically.
func quickConfig(seed int64, max int) *quick.Config {
	return &quick.Config{
		MaxCount: max,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

// TestQuickCOOMatchesDense: random stamping sequences into COO/CSR and a
// dense matrix produce identical matrix-vector products.
func TestQuickCOOMatchesDense(t *testing.T) {
	f := func(stamps [30][3]uint8, xs [6]float64) bool {
		const n = 6
		d := NewDense(n, n)
		c := NewCOO(n, n)
		for _, s := range stamps {
			i, j := int(s[0])%n, int(s[1])%n
			v := float64(int(s[2])) - 127.5
			d.Add(i, j, v)
			c.Add(i, j, v)
		}
		x := xs[:]
		for k := range x {
			if math.IsNaN(x[k]) || math.IsInf(x[k], 0) || math.Abs(x[k]) > 1e100 {
				return true
			}
		}
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		d.MulVec(x, y1)
		c.ToCSR().MulVec(x, y2)
		for k := range y1 {
			if math.Abs(y1[k]-y2[k]) > 1e-9*(1+math.Abs(y1[k])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig(1, 200)); err != nil {
		t.Error(err)
	}
}

// TestQuickLUSolveInverts: for random diagonally dominant systems,
// solving then multiplying recovers the RHS.
func TestQuickLUSolveInverts(t *testing.T) {
	f := func(raw [4][4]int8, rhs [4]int8) bool {
		const n = 4
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, float64(raw[i][j])/16)
			}
			a.Add(i, i, 20) // dominance
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = float64(rhs[i])
		}
		x, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		y := make([]float64, n)
		a.MulVec(x, y)
		for i := range y {
			if math.Abs(y[i]-b[i]) > 1e-8*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig(2, 200)); err != nil {
		t.Error(err)
	}
}

// TestQuickBrentFindsBracketedRoot: for random monotone cubics with a
// sign change, Brent returns a point where |f| is tiny.
func TestQuickBrentFindsBracketedRoot(t *testing.T) {
	f := func(a1, a3 uint8, shift int8) bool {
		// f(x) = c3 x^3 + c1 x + c0 with c1, c3 > 0: strictly monotone.
		c3 := 0.1 + float64(a3)/64
		c1 := 0.1 + float64(a1)/64
		c0 := float64(shift) / 8
		fn := func(x float64) float64 { return c3*x*x*x + c1*x + c0 }
		lo, hi := -100.0, 100.0
		root, err := Brent(fn, lo, hi, 1e-12)
		if err != nil {
			return false
		}
		return math.Abs(fn(root)) < 1e-6
	}
	if err := quick.Check(f, quickConfig(3, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickTridiagMatchesDense on random dominant tridiagonal systems.
func TestQuickTridiagMatchesDense(t *testing.T) {
	f := func(sub, diag, sup, rhs [5]int8) bool {
		const n = 5
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		d := make([]float64, n)
		dm := NewDense(n, n)
		for i := 0; i < n; i++ {
			b[i] = 10 + math.Abs(float64(diag[i]))
			d[i] = float64(rhs[i])
			dm.Set(i, i, b[i])
			if i > 0 {
				a[i] = float64(sub[i]) / 32
				dm.Set(i, i-1, a[i])
			}
			if i < n-1 {
				c[i] = float64(sup[i]) / 32
				dm.Set(i, i+1, c[i])
			}
		}
		x1, err := SolveTridiag(a, b, c, d)
		if err != nil {
			return false
		}
		x2, err := SolveDense(dm, d)
		if err != nil {
			return false
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-9*(1+math.Abs(x2[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig(4, 200)); err != nil {
		t.Error(err)
	}
}

// TestQuickLinearInterpolatesBetweenNeighbors: interpolated values lie
// within the bracketing sample values.
func TestQuickLinearInterpolatesBetweenNeighbors(t *testing.T) {
	f := func(ys [6]int8, tRaw uint16) bool {
		xs := []float64{0, 1, 2, 3, 4, 5}
		yv := make([]float64, 6)
		for i, v := range ys {
			yv[i] = float64(v)
		}
		l, err := NewLinear(xs, yv)
		if err != nil {
			return false
		}
		x := float64(tRaw) / 65535 * 5
		i := int(x)
		if i > 4 {
			i = 4
		}
		v := l.Eval(x)
		lo := math.Min(yv[i], yv[i+1])
		hi := math.Max(yv[i], yv[i+1])
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, quickConfig(5, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickGaussMatchesSimpson on random cubics over random intervals.
func TestQuickGaussMatchesSimpson(t *testing.T) {
	f := func(c0, c1, c2, c3 int8, wRaw uint8) bool {
		fn := func(x float64) float64 {
			return float64(c0) + float64(c1)*x + float64(c2)*x*x + float64(c3)*x*x*x
		}
		a := -1.0
		b := a + 0.1 + float64(wRaw)/64
		g := GaussLegendre(fn, a, b, 3)
		s := CompositeSimpson(fn, a, b, 64)
		return math.Abs(g-s) <= 1e-6*(1+math.Abs(g))
	}
	if err := quick.Check(f, quickConfig(6, 300)); err != nil {
		t.Error(err)
	}
}
