package num

import (
	"math"
	"testing"
)

func TestRK4ExponentialDecay(t *testing.T) {
	// y' = -y, y(0) = 1 -> y(2) = e^-2.
	f := func(t float64, y, dydt []float64) { dydt[0] = -y[0] }
	y, err := RK4(f, []float64{1}, 0, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-math.Exp(-2)) > 1e-8 {
		t.Fatalf("y(2) = %.10f, want %.10f", y[0], math.Exp(-2))
	}
}

func TestRK4FourthOrderConvergence(t *testing.T) {
	f := func(t float64, y, dydt []float64) { dydt[0] = math.Cos(t) * y[0] }
	exact := math.Exp(math.Sin(2))
	errAt := func(n int) float64 {
		y, err := RK4(f, []float64{1}, 0, 2, n)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(y[0] - exact)
	}
	e1, e2 := errAt(40), errAt(80)
	order := math.Log2(e1 / e2)
	if order < 3.7 || order > 4.3 {
		t.Fatalf("observed order %.2f, want ~4", order)
	}
}

func TestRK4Harmonic(t *testing.T) {
	// y'' = -y as a system; energy conserved over one period.
	f := func(t float64, y, dydt []float64) {
		dydt[0] = y[1]
		dydt[1] = -y[0]
	}
	y, err := RK4(f, []float64{1, 0}, 0, 2*math.Pi, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-1) > 1e-8 || math.Abs(y[1]) > 1e-8 {
		t.Fatalf("one period: %v", y)
	}
}

func TestRK4Args(t *testing.T) {
	f := func(t float64, y, dydt []float64) { dydt[0] = 0 }
	if _, err := RK4(f, []float64{1}, 0, 1, 0); err == nil {
		t.Fatal("zero steps accepted")
	}
	if _, err := RK4(f, []float64{1}, 1, 0, 10); err == nil {
		t.Fatal("reversed interval accepted")
	}
}

func TestRK45MatchesRK4(t *testing.T) {
	f := func(t float64, y, dydt []float64) {
		dydt[0] = y[1]
		dydt[1] = -math.Sin(y[0]) // pendulum
	}
	y0 := []float64{1.2, 0}
	yRK4, err := RK4(f, y0, 0, 10, 20000)
	if err != nil {
		t.Fatal(err)
	}
	yRK45, err := RK45(f, y0, 0, 10, AdaptiveOptions{RelTol: 1e-10, AbsTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range yRK4 {
		if math.Abs(yRK4[i]-yRK45[i]) > 1e-6 {
			t.Fatalf("component %d: RK4 %.10f vs RK45 %.10f", i, yRK4[i], yRK45[i])
		}
	}
}

func TestRK45StiffnessAdapts(t *testing.T) {
	// Fast transient then slow decay: the adaptive integrator must
	// succeed where a coarse fixed grid would be unstable.
	f := func(t float64, y, dydt []float64) { dydt[0] = -50 * (y[0] - math.Cos(t)) }
	y, err := RK45(f, []float64{0}, 0, 3, AdaptiveOptions{RelTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	// Asymptotic solution ~ (2500 cos t + 50 sin t)/2501.
	want := (2500*math.Cos(3) + 50*math.Sin(3)) / 2501
	if math.Abs(y[0]-want) > 1e-4 {
		t.Fatalf("y(3) = %.6f, want %.6f", y[0], want)
	}
}

func TestRK45Args(t *testing.T) {
	f := func(t float64, y, dydt []float64) { dydt[0] = 0 }
	if _, err := RK45(f, []float64{1}, 1, 1, AdaptiveOptions{}); err == nil {
		t.Fatal("empty interval accepted")
	}
	// Step underflow: a derivative that demands ever-smaller steps.
	bad := func(t float64, y, dydt []float64) {
		dydt[0] = math.NaN()
	}
	if _, err := RK45(bad, []float64{1}, 0, 1, AdaptiveOptions{MaxSteps: 1000}); err == nil {
		t.Fatal("NaN derivative accepted")
	}
}

func TestRK4DoesNotMutateInitialState(t *testing.T) {
	f := func(t float64, y, dydt []float64) { dydt[0] = 1 }
	y0 := []float64{5}
	if _, err := RK4(f, y0, 0, 1, 10); err != nil {
		t.Fatal(err)
	}
	if y0[0] != 5 {
		t.Fatal("RK4 mutated y0")
	}
	if _, err := RK45(f, y0, 0, 1, AdaptiveOptions{}); err != nil {
		t.Fatal(err)
	}
	if y0[0] != 5 {
		t.Fatal("RK45 mutated y0")
	}
}
