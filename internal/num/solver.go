package num

import (
	"errors"
	"sync"

	"bright/internal/obs"
)

// Krylov solver telemetry, published process-wide (obs.Default): every
// SparseSolver in the process shares these, matching how the solvers
// themselves are shared across thermal sessions, PDN grids and sweeps.
// Counting happens per Solve call, not per iteration, so the cost is
// one atomic add against thousands of SpMV operations.
var (
	cgSolves = obs.Default.Counter("bright_krylov_solves_total",
		"SparseSolver.Solve attempts by method (a CG fallback counts both).",
		obs.L("method", "cg"))
	bicgSolves = obs.Default.Counter("bright_krylov_solves_total",
		"SparseSolver.Solve attempts by method (a CG fallback counts both).",
		obs.L("method", "bicgstab"))
	cgIterations = obs.Default.Counter("bright_krylov_iterations_total",
		"Krylov iterations spent inside SparseSolver.Solve, by method.",
		obs.L("method", "cg"))
	bicgIterations = obs.Default.Counter("bright_krylov_iterations_total",
		"Krylov iterations spent inside SparseSolver.Solve, by method.",
		obs.L("method", "bicgstab"))
	cgFallbacks = obs.Default.Counter("bright_krylov_cg_fallbacks_total",
		"CG breakdowns that restarted as BiCGSTAB on the cached preconditioner.")
	solveFailures = obs.Default.Counter("bright_krylov_failures_total",
		"SparseSolver.Solve calls whose final method did not converge.")
	maxIterExhausted = obs.Default.Counter("bright_krylov_maxiter_total",
		"Solves that exhausted their iteration budget (ErrMaxIter), distinct from breakdown fallbacks.")
)

// SparseSolver binds an iterative method to one matrix and caches
// everything that only depends on its sparsity pattern and values: the
// symmetry decision (CG vs BiCGSTAB), the Jacobi preconditioner, and
// the Krylov scratch workspace. Repeated solves against the same matrix
// — the co-simulation fixed-point loop, transient time stepping,
// parameter sweeps — pay none of that per call, and the steady-state
// solve loop is allocation-free.
//
// The solver does not observe later mutation of the matrix: if the
// values or pattern change, build a new SparseSolver.
//
// Solve is safe for concurrent use; calls serialize on an internal
// mutex (the scratch workspace is shared). For parallel solves against
// the same matrix, give each goroutine its own solver.
type SparseSolver struct {
	mu  sync.Mutex
	a   *CSR
	sym bool
	pre Preconditioner
	opt IterOptions
	ws  Workspace
	bws BlockWorkspace
}

// NewSparseSolver builds a solver for a, detecting symmetry once
// (numerically, to 1e-12). opt.M overrides the policy-built
// preconditioner when non-nil.
func NewSparseSolver(a *CSR, opt IterOptions) *SparseSolver {
	return NewSparseSolverSymmetric(a, a.IsSymmetric(1e-12), opt)
}

// NewSparseSolverSymmetric is NewSparseSolver with the symmetry
// decision asserted by the caller, skipping the O(nnz * row-nnz) scan —
// use it when the assembly guarantees the answer (FV diffusion stamps
// are symmetric; advection-coupled networks are not). Asserting
// symmetric=true on a matrix that only CG cannot handle is still safe:
// a CG breakdown falls back to BiCGSTAB on the same cached
// preconditioner.
func NewSparseSolverSymmetric(a *CSR, symmetric bool, opt IterOptions) *SparseSolver {
	a.EnsureFormat(opt.Format)
	s := &SparseSolver{a: a, sym: symmetric, opt: opt}
	if opt.M != nil {
		s.pre = opt.M
	} else {
		s.pre = buildPrecond(a, symmetric, opt)
	}
	return s
}

// Precond returns the preconditioner the solver resolved at build time
// (callers inspect it to confirm which policy branch was taken).
func (s *SparseSolver) Precond() Preconditioner { return s.pre }

// Symmetric reports the cached symmetry decision.
func (s *SparseSolver) Symmetric() bool { return s.sym }

// Matrix returns the bound matrix.
func (s *SparseSolver) Matrix() *CSR { return s.a }

// WarmStart carries a previous solution field across solves as the next
// solve's initial guess. The zero value is valid (an empty cache).
// Invalidation contract: a cached guess is only a guess — any field of
// the right length is safe (the solver still converges to the true
// solution) — but it must be dropped (Invalidate) when the system
// dimension changes, which Seed enforces by length check.
type WarmStart struct {
	x []float64
}

// Seed copies the cached field into x and reports whether it did; a
// missing or wrongly-sized cache leaves x untouched and returns false.
// Safe on a nil receiver.
func (w *WarmStart) Seed(x []float64) bool {
	if w == nil || len(w.x) != len(x) {
		return false
	}
	copy(x, w.x)
	return true
}

// Save stores a copy of x as the next Seed, reusing the cached buffer
// when the size matches. Safe on a nil receiver (no-op).
func (w *WarmStart) Save(x []float64) {
	if w == nil {
		return
	}
	if len(w.x) != len(x) {
		w.x = make([]float64, len(x))
	}
	copy(w.x, x)
}

// Invalidate drops the cached field.
func (w *WarmStart) Invalidate() {
	if w != nil {
		w.x = nil
	}
}

// Solve solves A x = b. x carries the initial guess in (warm start) and
// the solution out. Symmetric systems run preconditioned CG; a CG
// breakdown (symmetric-indefinite matrices) restarts BiCGSTAB from zero
// with the same preconditioner. Nonsymmetric systems run BiCGSTAB
// directly.
func (s *SparseSolver) Solve(b, x []float64) (IterResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	opt := s.opt
	opt.M = s.pre
	s.fmgSeed(b, x)
	if s.sym {
		res, err := CGWith(s.a, b, x, opt, &s.ws)
		cgSolves.Inc()
		cgIterations.Add(uint64(res.Iterations))
		if err == nil {
			return res, nil
		}
		if errors.Is(err, ErrMaxIter) {
			// Budget exhaustion is a tolerance/conditioning problem,
			// not a method problem — BiCGSTAB would burn the same
			// budget from zero. Surface it instead of masking it.
			maxIterExhausted.Inc()
			solveFailures.Inc()
			return res, err
		}
		cgFallbacks.Inc()
		Fill(x, 0)
	}
	res, err := BiCGSTABWith(s.a, b, x, opt, &s.ws)
	bicgSolves.Inc()
	bicgIterations.Add(uint64(res.Iterations))
	if err != nil {
		if errors.Is(err, ErrMaxIter) {
			maxIterExhausted.Inc()
		}
		solveFailures.Inc()
	}
	return res, err
}

// fmgSeed replaces a cold start (all-zero x) with a full-multigrid
// initial guess when the cached preconditioner is a Multigrid built
// with FMGGuess. Warm starts (nonzero x) are left alone — a previous
// solution is a better guess than FMG.
func (s *SparseSolver) fmgSeed(b, x []float64) {
	mg, ok := s.pre.(*Multigrid)
	if !ok || !mg.opt.FMGGuess {
		return
	}
	for _, v := range x {
		if v != 0 {
			return
		}
	}
	mg.FMG(b, x)
}

// SolveBlock solves the k systems A x_j = b_j together. b and x hold
// the right-hand sides and initial guesses column-major (column j at
// [j*n : (j+1)*n]; see MulVecBlock); x is overwritten with the
// solutions. Symmetric systems run the batched block CG — one matrix
// traversal per iteration serves every still-unconverged column, which
// is the sweep-chain amortization. Nonsymmetric systems degrade to
// sequential per-column BiCGSTAB through the same cached
// preconditioner, so the call is always valid.
func (s *SparseSolver) SolveBlock(b, x []float64, k int) (BlockResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.a.Rows
	if k <= 0 || len(b) != n*k || len(x) != n*k {
		return BlockResult{}, ErrShape
	}
	opt := s.opt
	opt.M = s.pre
	if s.sym {
		out, err := BlockCG(s.a, b, x, k, opt, &s.bws)
		cgSolves.Inc()
		cgIterations.Add(uint64(out.Iterations))
		if err != nil {
			if errors.Is(err, ErrMaxIter) {
				maxIterExhausted.Inc()
			}
			solveFailures.Inc()
		}
		return out, err
	}
	s.bws.size(n, k)
	out := BlockResult{PerRHS: s.bws.perRHS}
	var firstErr error
	for j := 0; j < k; j++ {
		res, err := BiCGSTABWith(s.a, b[j*n:(j+1)*n], x[j*n:(j+1)*n], opt, &s.ws)
		bicgSolves.Inc()
		bicgIterations.Add(uint64(res.Iterations))
		out.PerRHS[j] = res
		if res.Iterations > out.Iterations {
			out.Iterations = res.Iterations
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		if errors.Is(firstErr, ErrMaxIter) {
			maxIterExhausted.Inc()
		}
		solveFailures.Inc()
	}
	return out, firstErr
}
