package num

import (
	"math"
	"testing"
)

func TestGoldenSectionQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 1.7) * (x - 1.7) }
	x, fx, err := GoldenSection(f, -5, 5, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-1.7) > 1e-8 || fx > 1e-15 {
		t.Fatalf("x=%g f=%g", x, fx)
	}
}

func TestGoldenSectionEndpointMinimum(t *testing.T) {
	// Monotone function: the minimum sits at the left endpoint.
	x, _, err := GoldenSection(func(x float64) float64 { return x }, 2, 9, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-2) > 1e-6 {
		t.Fatalf("endpoint minimum missed: %g", x)
	}
	if _, _, err := GoldenSection(func(x float64) float64 { return x }, 3, 3, 0); err == nil {
		t.Fatal("empty bracket accepted")
	}
}

func TestCoordinateDescentRosenbrockish(t *testing.T) {
	// A smooth bowl with interacting coordinates.
	f := func(x []float64) float64 {
		return (x[0]-2)*(x[0]-2) + 3*(x[1]+1)*(x[1]+1) + 0.5*x[0]*x[1]
	}
	x, fx, err := CoordinateDescent(f, []float64{0, 0}, []float64{-10, -10}, []float64{10, 10}, 1e-10, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic minimum: 2(x-2)+0.5y = 0 and 6(y+1)+0.5x = 0 give
	// x = 54/23.5 ~ 2.2979, y = 8-4x ~ -1.1915.
	if math.Abs(x[0]-54.0/23.5) > 1e-3 || math.Abs(x[1]-(8-4*54.0/23.5)) > 1e-3 {
		t.Fatalf("minimizer %v (f=%g)", x, fx)
	}
}

func TestCoordinateDescentRespectsBox(t *testing.T) {
	f := func(x []float64) float64 { return -x[0] } // pushes to the upper bound
	x, _, err := CoordinateDescent(f, []float64{0.5}, []float64{0}, []float64{1}, 1e-9, 30)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] < 0 || x[0] > 1 {
		t.Fatalf("left the box: %v", x)
	}
	if x[0] < 0.999 {
		t.Fatalf("did not reach the active bound: %v", x)
	}
}

func TestCoordinateDescentValidation(t *testing.T) {
	f := func(x []float64) float64 { return 0 }
	if _, _, err := CoordinateDescent(f, []float64{0}, []float64{1}, []float64{0}, 0, 0); err == nil {
		t.Fatal("empty box accepted")
	}
	if _, _, err := CoordinateDescent(f, []float64{5}, []float64{0}, []float64{1}, 0, 0); err == nil {
		t.Fatal("x0 outside box accepted")
	}
	if _, _, err := CoordinateDescent(f, []float64{0, 0}, []float64{0}, []float64{1}, 0, 0); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}
