package num

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseAtSet(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7)
	m.Add(1, 2, 1)
	if got := m.At(1, 2); got != 8 {
		t.Fatalf("At(1,2) = %g, want 8", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("zero init broken: %g", got)
	}
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone aliases data")
	}
}

func TestDenseMulVec(t *testing.T) {
	m := NewDense(2, 3)
	// [1 2 3; 4 5 6] * [1 1 1]' = [6 15]'
	for j := 0; j < 3; j++ {
		m.Set(0, j, float64(j+1))
		m.Set(1, j, float64(j+4))
	}
	y := make([]float64, 2)
	m.MulVec([]float64{1, 1, 1}, y)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", y)
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := NewDense(3, 3)
	vals := [][]float64{{2, 1, 1}, {1, 3, 2}, {1, 0, 0}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	// Solution of A x = [4 5 6]' is x = [6 15 -23]'.
	x, err := SolveDense(a, []float64{4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{6, 15, -23}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveDense(a, []float64{1, 1}); err == nil {
		t.Fatal("expected singular-matrix error")
	}
}

func TestLUDeterminant(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 4)
	a.Set(1, 1, 2)
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Det(); math.Abs(d-2) > 1e-12 {
		t.Fatalf("det = %g, want 2", d)
	}
}

// Property: for random well-conditioned matrices, A*(A\b) == b.
func TestLUSolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonal dominance => well-conditioned
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveDense(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		r := make([]float64, n)
		a.MulVec(x, r)
		Axpy(-1, b, r)
		if Norm2(r) > 1e-9*(1+Norm2(b)) {
			t.Fatalf("trial %d: residual %g too large", trial, Norm2(r))
		}
	}
}

func TestVectorOps(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %g", Norm2(x))
	}
	if NormInf([]float64{-7, 2}) != 7 {
		t.Fatal("NormInf")
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot")
	}
	y := []float64{1, 1}
	Axpy(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatalf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 1.5 || y[1] != 2.5 {
		t.Fatalf("Scale = %v", y)
	}
	z := make([]float64, 3)
	Fill(z, 9)
	if z[2] != 9 {
		t.Fatal("Fill")
	}
	if MaxSlice([]float64{1, 9, 3}) != 9 || MinSlice([]float64{1, 9, 3}) != 1 {
		t.Fatal("Max/MinSlice")
	}
}

func TestNorm2Overflow(t *testing.T) {
	// Norm2 must not overflow for large entries.
	big := math.MaxFloat64 / 2
	if v := Norm2([]float64{big, big}); math.IsInf(v, 0) {
		t.Fatal("Norm2 overflowed")
	}
	if Norm2([]float64{0, 0}) != 0 {
		t.Fatal("Norm2 of zero vector")
	}
}

func TestNorm2TriangleInequality(t *testing.T) {
	f := func(a, b [4]float64) bool {
		for _, v := range append(a[:], b[:]...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				return true
			}
		}
		sum := make([]float64, 4)
		copy(sum, a[:])
		Axpy(1, b[:], sum)
		return Norm2(sum) <= Norm2(a[:])+Norm2(b[:])+1e-9*(Norm2(a[:])+Norm2(b[:])+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-15 {
			t.Fatalf("Linspace = %v", xs)
		}
	}
	if xs[len(xs)-1] != 1 {
		t.Fatal("endpoint must be exact")
	}
}
