package num

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is returned when an iterative solver exhausts its
// iteration budget without meeting the requested tolerance.
var ErrNoConvergence = errors.New("num: iterative solver did not converge")

// ErrMaxIter is the subset of ErrNoConvergence where the solver ran out
// of iteration budget, as opposed to a numerical breakdown. It wraps
// ErrNoConvergence, so errors.Is against either sentinel works;
// SparseSolver uses the distinction to surface budget exhaustion
// instead of retrying with a different method that would burn the same
// budget again.
var ErrMaxIter = fmt.Errorf("%w: iteration budget exhausted", ErrNoConvergence)

// Preconditioner applies an approximate inverse: z = M^{-1} r.
type Preconditioner interface {
	Apply(r, z []float64)
}

// IdentityPreconditioner is the trivial (no-op) preconditioner.
type IdentityPreconditioner struct{}

// Apply copies r into z.
func (IdentityPreconditioner) Apply(r, z []float64) { copy(z, r) }

// JacobiPreconditioner scales by the inverse diagonal of the matrix.
type JacobiPreconditioner struct {
	invDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from the matrix diagonal.
// Zero diagonal entries are treated as 1 (no scaling) so that the
// preconditioner is always well defined.
func NewJacobi(a *CSR) *JacobiPreconditioner {
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v != 0 {
			inv[i] = 1 / v
		} else {
			inv[i] = 1
		}
	}
	return &JacobiPreconditioner{invDiag: inv}
}

// Apply computes z = D^{-1} r.
func (p *JacobiPreconditioner) Apply(r, z []float64) {
	for i, v := range r {
		z[i] = v * p.invDiag[i]
	}
}

// IterOptions configures the Krylov solvers.
type IterOptions struct {
	// Tol is the relative residual tolerance ||r|| / ||b||.
	// Defaults to 1e-10 if zero.
	Tol float64
	// MaxIter bounds the iteration count. Defaults to 10*n if zero,
	// clamped to [200, 20000] — an unbounded 10*n default on large
	// grids masks non-convergence behind minutes of wasted iterations,
	// so the budget is capped and exhaustion surfaces as ErrMaxIter.
	MaxIter int
	// M is the preconditioner; identity if nil. SparseSolver fills it
	// from the Precond policy when nil.
	M Preconditioner
	// Precond selects the preconditioner family SparseSolver builds
	// when M is nil (PrecondAuto defers to the process default, then
	// to the size/symmetry heuristic). Ignored by bare CG/BiCGSTAB.
	Precond Precond
	// Shape, when non-nil and covering the matrix, tells PrecondMG the
	// structured grid behind the unknowns so it can build geometric
	// multigrid; without it MG falls back to aggregation AMG.
	Shape *GridShape
	// MG tunes the multigrid hierarchy when one is built.
	MG MGOptions
	// Format selects the SpMV storage layout SparseSolver attaches to
	// the operator at build time (FormatAuto defers to the process
	// default, then to the size heuristic). Ignored by bare
	// CG/BiCGSTAB, which multiply whatever format the matrix carries.
	Format SparseFormat
}

// defaultMaxIterCap bounds the derived 10*n iteration budget.
const defaultMaxIterCap = 20000

func (o IterOptions) withDefaults(n int) IterOptions {
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10 * n
		if o.MaxIter < 200 {
			o.MaxIter = 200
		}
		if o.MaxIter > defaultMaxIterCap {
			o.MaxIter = defaultMaxIterCap
		}
	}
	if o.M == nil {
		o.M = IdentityPreconditioner{}
	}
	return o
}

// IterResult reports the outcome of an iterative solve.
type IterResult struct {
	Iterations int
	Residual   float64 // final relative residual
}

// CG solves the symmetric positive definite system A x = b with the
// preconditioned conjugate gradient method. x is used as the initial
// guess (a warm start from a nearby solution cuts the iteration count)
// and overwritten with the solution.
func CG(a *CSR, b, x []float64, opt IterOptions) (IterResult, error) {
	return CGWith(a, b, x, opt, nil)
}

// CGWith is CG with caller-owned scratch: passing the same Workspace to
// repeated solves makes the steady-state loop allocation-free. A nil
// workspace allocates fresh scratch (identical to CG).
func CGWith(a *CSR, b, x []float64, opt IterOptions, ws *Workspace) (IterResult, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n || len(x) != n {
		return IterResult{}, ErrShape
	}
	opt = opt.withDefaults(n)
	if ws == nil {
		ws = &Workspace{}
	}
	r := ws.vec(wsR, n)
	z := ws.vec(wsZ, n)
	p := ws.vec(wsP, n)
	ap := ws.vec(wsAP, n)

	a.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := Norm2(b)
	if bnorm == 0 {
		Fill(x, 0)
		return IterResult{0, 0}, nil
	}
	opt.M.Apply(r, z)
	copy(p, z)
	rz := Dot(r, z)
	res := Norm2(r) / bnorm
	if res <= opt.Tol {
		return IterResult{0, res}, nil
	}
	for it := 1; it <= opt.MaxIter; it++ {
		a.MulVec(p, ap)
		pap := Dot(p, ap)
		if pap == 0 || math.IsNaN(pap) {
			return IterResult{it, res}, fmt.Errorf("%w: CG breakdown (pAp=%g)", ErrNoConvergence, pap)
		}
		alpha := rz / pap
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		res = Norm2(r) / bnorm
		if res <= opt.Tol {
			return IterResult{it, res}, nil
		}
		opt.M.Apply(r, z)
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return IterResult{opt.MaxIter, res}, fmt.Errorf("%w: CG after %d iters, residual %.3e", ErrMaxIter, opt.MaxIter, res)
}

// BiCGSTAB solves the general (nonsymmetric) system A x = b with the
// preconditioned stabilized bi-conjugate gradient method. x is the
// initial guess (warm-startable) and is overwritten with the solution.
func BiCGSTAB(a *CSR, b, x []float64, opt IterOptions) (IterResult, error) {
	return BiCGSTABWith(a, b, x, opt, nil)
}

// BiCGSTABWith is BiCGSTAB with caller-owned scratch: passing the same
// Workspace to repeated solves makes the steady-state loop
// allocation-free. A nil workspace allocates fresh scratch.
func BiCGSTABWith(a *CSR, b, x []float64, opt IterOptions, ws *Workspace) (IterResult, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n || len(x) != n {
		return IterResult{}, ErrShape
	}
	opt = opt.withDefaults(n)
	if ws == nil {
		ws = &Workspace{}
	}
	r := ws.vec(wsR, n)
	rhat := ws.vec(wsZ, n)
	p := ws.vec(wsP, n)
	v := ws.vec(wsAP, n)
	s := ws.vec(wsS, n)
	t := ws.vec(wsT, n)
	phat := ws.vec(wsPhat, n)
	shat := ws.vec(wsShat, n)

	a.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := Norm2(b)
	if bnorm == 0 {
		Fill(x, 0)
		return IterResult{0, 0}, nil
	}
	res := Norm2(r) / bnorm
	if res <= opt.Tol {
		return IterResult{0, res}, nil
	}
	copy(rhat, r)
	var rho, alpha, omega float64 = 1, 1, 1
	for it := 1; it <= opt.MaxIter; it++ {
		rhoNew := Dot(rhat, r)
		if rhoNew == 0 {
			return IterResult{it, res}, fmt.Errorf("%w: BiCGSTAB breakdown (rho=0)", ErrNoConvergence)
		}
		if it == 1 {
			copy(p, r)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			for i := range p {
				p[i] = r[i] + beta*(p[i]-omega*v[i])
			}
		}
		rho = rhoNew
		opt.M.Apply(p, phat)
		a.MulVec(phat, v)
		den := Dot(rhat, v)
		if den == 0 {
			return IterResult{it, res}, fmt.Errorf("%w: BiCGSTAB breakdown (rhat.v=0)", ErrNoConvergence)
		}
		alpha = rho / den
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if sr := Norm2(s) / bnorm; sr <= opt.Tol {
			Axpy(alpha, phat, x)
			return IterResult{it, sr}, nil
		}
		opt.M.Apply(s, shat)
		a.MulVec(shat, t)
		tt := Dot(t, t)
		if tt == 0 {
			return IterResult{it, res}, fmt.Errorf("%w: BiCGSTAB breakdown (t.t=0)", ErrNoConvergence)
		}
		omega = Dot(t, s) / tt
		if omega == 0 {
			return IterResult{it, res}, fmt.Errorf("%w: BiCGSTAB breakdown (omega=0)", ErrNoConvergence)
		}
		for i := range x {
			x[i] += alpha*phat[i] + omega*shat[i]
		}
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		res = Norm2(r) / bnorm
		if res <= opt.Tol {
			return IterResult{it, res}, nil
		}
	}
	return IterResult{opt.MaxIter, res}, fmt.Errorf("%w: BiCGSTAB after %d iters, residual %.3e", ErrMaxIter, opt.MaxIter, res)
}

// SolveSparse is a convenience wrapper: it chooses CG with a Jacobi
// preconditioner when the matrix is symmetric, BiCGSTAB otherwise, and
// returns the solution in a fresh slice. Both the CG attempt and the
// indefinite-matrix fallback to BiCGSTAB run through one SparseSolver,
// so the symmetry scan and the preconditioner are paid exactly once;
// callers solving repeatedly against the same matrix should hold a
// SparseSolver themselves.
func SolveSparse(a *CSR, b []float64, opt IterOptions) ([]float64, IterResult, error) {
	x := make([]float64, len(b))
	res, err := NewSparseSolver(a, opt).Solve(b, x)
	return x, res, err
}
