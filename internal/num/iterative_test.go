package num

import (
	"math"
	"math/rand"
	"testing"
)

// laplacian1D builds the standard SPD tridiagonal -u” stencil of size n.
func laplacian1D(n int) *CSR {
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 2)
		if i > 0 {
			c.Add(i, i-1, -1)
		}
		if i < n-1 {
			c.Add(i, i+1, -1)
		}
	}
	return c.ToCSR()
}

func residual(a *CSR, x, b []float64) float64 {
	r := make([]float64, len(b))
	a.MulVec(x, r)
	Axpy(-1, b, r)
	return Norm2(r) / (1 + Norm2(b))
}

func TestCGLaplacian(t *testing.T) {
	const n = 200
	a := laplacian1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i) * 0.1)
	}
	x := make([]float64, n)
	res, err := CG(a, b, x, IterOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, x, b); r > 1e-10 {
		t.Fatalf("residual %g after %d iters", r, res.Iterations)
	}
}

func TestCGWithJacobiFewerIterations(t *testing.T) {
	// Badly scaled SPD matrix: Jacobi should help markedly.
	const n = 150
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		scale := math.Pow(10, float64(i%4))
		c.Add(i, i, 2*scale)
		if i > 0 {
			c.Add(i, i-1, -0.5)
			c.Add(i-1, i, -0.5)
		}
	}
	a := c.ToCSR()
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	xPlain := make([]float64, n)
	resPlain, errPlain := CG(a, b, xPlain, IterOptions{Tol: 1e-10, MaxIter: 5000})
	xJac := make([]float64, n)
	resJac, errJac := CG(a, b, xJac, IterOptions{Tol: 1e-10, MaxIter: 5000, M: NewJacobi(a)})
	if errPlain != nil || errJac != nil {
		t.Fatalf("plain err=%v jacobi err=%v", errPlain, errJac)
	}
	if resJac.Iterations > resPlain.Iterations {
		t.Fatalf("Jacobi (%d iters) should not be slower than plain (%d iters)",
			resJac.Iterations, resPlain.Iterations)
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := laplacian1D(5)
	x := []float64{1, 2, 3, 4, 5}
	res, err := CG(a, make([]float64, 5), x, IterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual != 0 || Norm2(x) != 0 {
		t.Fatal("zero RHS must give zero solution")
	}
}

func TestBiCGSTABNonsymmetric(t *testing.T) {
	// Convection-diffusion style nonsymmetric matrix.
	const n = 120
	c := NewCOO(n, n)
	pe := 0.8 // upwind-biased
	for i := 0; i < n; i++ {
		c.Add(i, i, 2+pe)
		if i > 0 {
			c.Add(i, i-1, -1-pe)
		}
		if i < n-1 {
			c.Add(i, i+1, -1)
		}
	}
	a := c.ToCSR()
	b := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	_, err := BiCGSTAB(a, b, x, IterOptions{Tol: 1e-11, M: NewJacobi(a)})
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, x, b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

func TestSolveSparseAutodetect(t *testing.T) {
	// Symmetric path.
	a := laplacian1D(40)
	b := make([]float64, 40)
	b[20] = 1
	x, _, err := SolveSparse(a, b, IterOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(a, x, b); r > 1e-10 {
		t.Fatalf("sym residual %g", r)
	}
	// Nonsymmetric path.
	c := NewCOO(3, 3)
	c.Add(0, 0, 4)
	c.Add(0, 1, 1)
	c.Add(1, 1, 3)
	c.Add(1, 0, -1)
	c.Add(2, 2, 5)
	an := c.ToCSR()
	bn := []float64{1, 2, 3}
	xn, _, err := SolveSparse(an, bn, IterOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if r := residual(an, xn, bn); r > 1e-10 {
		t.Fatalf("nonsym residual %g", r)
	}
}

func TestCGAgainstDirectSolve(t *testing.T) {
	// Random SPD matrix: CG and dense LU must agree.
	rng := rand.New(rand.NewSource(11))
	const n = 30
	d := NewDense(n, n)
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64() * 0.1
			if i == j {
				v = 3 + rng.Float64()
			}
			d.Add(i, j, v)
			c.Add(i, j, v)
			if i != j {
				d.Add(j, i, v)
				c.Add(j, i, v)
			}
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	xDirect, err := SolveDense(d, b)
	if err != nil {
		t.Fatal(err)
	}
	xCG := make([]float64, n)
	if _, err := CG(c.ToCSR(), b, xCG, IterOptions{Tol: 1e-13}); err != nil {
		t.Fatal(err)
	}
	for i := range xCG {
		if math.Abs(xCG[i]-xDirect[i]) > 1e-8*(1+math.Abs(xDirect[i])) {
			t.Fatalf("row %d: CG %g vs LU %g", i, xCG[i], xDirect[i])
		}
	}
}

func TestIterShapeErrors(t *testing.T) {
	a := laplacian1D(4)
	if _, err := CG(a, make([]float64, 3), make([]float64, 4), IterOptions{}); err == nil {
		t.Fatal("CG must reject shape mismatch")
	}
	if _, err := BiCGSTAB(a, make([]float64, 4), make([]float64, 3), IterOptions{}); err == nil {
		t.Fatal("BiCGSTAB must reject shape mismatch")
	}
}
