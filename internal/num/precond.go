package num

import (
	"fmt"
	"strings"
	"sync/atomic"

	"bright/internal/obs"
)

// Precond selects the preconditioner family a SparseSolver builds when
// IterOptions.M is nil.
type Precond int32

const (
	// PrecondAuto defers to the process-wide default (SetDefaultPrecond),
	// then to the heuristic: multigrid for large symmetric systems,
	// Jacobi otherwise.
	PrecondAuto Precond = iota
	// PrecondJacobi forces diagonal scaling.
	PrecondJacobi
	// PrecondMG forces multigrid: geometric when IterOptions.Shape
	// describes the grid, aggregation-based AMG otherwise.
	PrecondMG
)

func (p Precond) String() string {
	switch p {
	case PrecondJacobi:
		return "jacobi"
	case PrecondMG:
		return "mg"
	default:
		return "auto"
	}
}

// ParsePrecond parses "auto", "jacobi" or "mg" (case-insensitive); it
// backs the brightd -solver-precond flag and BRIGHT_SOLVER_PRECOND env.
func ParsePrecond(s string) (Precond, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return PrecondAuto, nil
	case "jacobi":
		return PrecondJacobi, nil
	case "mg", "multigrid":
		return PrecondMG, nil
	}
	return PrecondAuto, fmt.Errorf("num: unknown preconditioner %q (want auto, jacobi or mg)", s)
}

var processPrecond atomic.Int32

// SetDefaultPrecond sets the process-wide policy consulted when an
// IterOptions leaves Precond at PrecondAuto.
func SetDefaultPrecond(p Precond) { processPrecond.Store(int32(p)) }

// DefaultPrecond returns the process-wide policy.
func DefaultPrecond() Precond { return Precond(processPrecond.Load()) }

// MGSmoother selects the multigrid per-level smoother.
type MGSmoother int32

const (
	// SmootherAuto defers to the process default (SetDefaultMGSmoother),
	// then to damped Jacobi.
	SmootherAuto MGSmoother = iota
	// SmootherJacobi is the damped-Jacobi smoother.
	SmootherJacobi
	// SmootherCheby is the degree-k Chebyshev polynomial smoother with
	// eigenvalue bounds estimated by power iteration at setup.
	SmootherCheby
)

func (s MGSmoother) String() string {
	switch s {
	case SmootherJacobi:
		return "jacobi"
	case SmootherCheby:
		return "cheby"
	default:
		return "auto"
	}
}

// ParseMGSmoother parses "auto", "jacobi" or "cheby"/"chebyshev"
// (case-insensitive); it backs the brightd -mg-smoother flag and the
// BRIGHT_MG_SMOOTHER env var.
func ParseMGSmoother(s string) (MGSmoother, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return SmootherAuto, nil
	case "jacobi":
		return SmootherJacobi, nil
	case "cheby", "chebyshev":
		return SmootherCheby, nil
	}
	return SmootherAuto, fmt.Errorf("num: unknown mg smoother %q (want auto, jacobi or cheby)", s)
}

// MGPrecision selects the arithmetic of the multigrid cycle interior.
type MGPrecision int32

const (
	// PrecisionAuto defers to the process default (SetDefaultMGPrecision
	// / BRIGHT_MG_PRECISION), then to float64.
	PrecisionAuto MGPrecision = iota
	// PrecisionFloat64 runs the whole cycle in float64.
	PrecisionFloat64
	// PrecisionFloat32 runs smoothing, transfers and coarse-grid work on
	// a float32 mirror of the hierarchy, falling back to float64 when
	// the float32 cycle goes non-finite or stalls.
	PrecisionFloat32
)

func (p MGPrecision) String() string {
	switch p {
	case PrecisionFloat64:
		return "float64"
	case PrecisionFloat32:
		return "float32"
	default:
		return "auto"
	}
}

// ParseMGPrecision parses "auto", "float64"/"f64" or "float32"/"f32"
// (case-insensitive); it backs the brightd -mg-precision flag and the
// BRIGHT_MG_PRECISION env var.
func ParseMGPrecision(s string) (MGPrecision, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return PrecisionAuto, nil
	case "float64", "f64", "double":
		return PrecisionFloat64, nil
	case "float32", "f32", "single":
		return PrecisionFloat32, nil
	}
	return PrecisionAuto, fmt.Errorf("num: unknown mg precision %q (want auto, float64 or float32)", s)
}

var (
	processMGSmoother  atomic.Int32
	processMGPrecision atomic.Int32
)

// SetDefaultMGSmoother sets the process-wide smoother consulted when
// MGOptions leaves Smoother at SmootherAuto.
func SetDefaultMGSmoother(s MGSmoother) { processMGSmoother.Store(int32(s)) }

// DefaultMGSmoother returns the process-wide smoother policy.
func DefaultMGSmoother() MGSmoother { return MGSmoother(processMGSmoother.Load()) }

// SetDefaultMGPrecision sets the process-wide cycle precision consulted
// when MGOptions leaves Precision at PrecisionAuto.
func SetDefaultMGPrecision(p MGPrecision) { processMGPrecision.Store(int32(p)) }

// DefaultMGPrecision returns the process-wide precision policy.
func DefaultMGPrecision() MGPrecision { return MGPrecision(processMGPrecision.Load()) }

// MGAutoThreshold is the unknown count at and above which PrecondAuto
// upgrades symmetric systems from Jacobi to multigrid. Below it, Jacobi
// solves finish before MG setup would pay for itself.
const MGAutoThreshold = 4096

var mgSetupFallbacks = obs.Default.Counter("bright_mg_setup_fallbacks_total",
	"Multigrid setups that failed and fell back to Jacobi.")

// buildPrecond resolves the policy chain (options -> process default ->
// heuristic) into a concrete preconditioner for a. Multigrid setup
// failure degrades to Jacobi rather than failing the solver build: the
// result is always usable, just possibly slower.
func buildPrecond(a *CSR, symmetric bool, opt IterOptions) Preconditioner {
	p := opt.Precond
	if p == PrecondAuto {
		p = DefaultPrecond()
	}
	if p == PrecondAuto {
		if symmetric && a.Rows >= MGAutoThreshold {
			p = PrecondMG
		} else {
			p = PrecondJacobi
		}
	}
	if p == PrecondMG {
		if m, err := newMGFor(a, opt); err == nil {
			return m
		}
		mgSetupFallbacks.Inc()
	}
	return NewJacobi(a)
}

// newMGFor builds geometric multigrid when the options carry a matching
// grid shape, aggregation AMG otherwise. The solver-level sparse format
// choice flows into the hierarchy so every level's operator goes through
// the same format policy.
func newMGFor(a *CSR, opt IterOptions) (*Multigrid, error) {
	mgo := opt.MG
	if mgo.Format == FormatAuto {
		mgo.Format = opt.Format
	}
	if opt.Shape != nil && opt.Shape.NX > 0 && opt.Shape.NY > 0 && opt.Shape.Cells() == a.Rows {
		return NewGMG(a, *opt.Shape, mgo)
	}
	return NewAMG(a, mgo)
}

// SparseFormat selects the SpMV storage layout a solver setup attaches
// to its operators.
type SparseFormat int32

const (
	// FormatAuto defers to the process-wide default
	// (SetDefaultSparseFormat / BRIGHT_SPARSE_FORMAT), then to the
	// heuristic: SELL-C-σ for operators large enough that SpMV is
	// memory-bound, plain CSR otherwise.
	FormatAuto SparseFormat = iota
	// FormatCSR forces the row-gather CSR kernels.
	FormatCSR
	// FormatSELL requests the SELL-C-σ sliced layout; conversion still
	// falls back to CSR when the padding overhead exceeds
	// sellMaxPadding (counted in bright_sparse_sell_fallbacks_total).
	FormatSELL
)

func (f SparseFormat) String() string {
	switch f {
	case FormatCSR:
		return "csr"
	case FormatSELL:
		return "sell"
	default:
		return "auto"
	}
}

// ParseSparseFormat parses "auto", "csr" or "sell"/"sellcs"
// (case-insensitive); it backs the brightd -sparse-format flag and the
// BRIGHT_SPARSE_FORMAT env var.
func ParseSparseFormat(s string) (SparseFormat, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return FormatAuto, nil
	case "csr":
		return FormatCSR, nil
	case "sell", "sellcs", "sell-c-sigma":
		return FormatSELL, nil
	}
	return FormatAuto, fmt.Errorf("num: unknown sparse format %q (want auto, csr or sell)", s)
}

var processSparseFormat atomic.Int32

// SetDefaultSparseFormat sets the process-wide layout consulted when an
// IterOptions leaves Format at FormatAuto.
func SetDefaultSparseFormat(f SparseFormat) { processSparseFormat.Store(int32(f)) }

// DefaultSparseFormat returns the process-wide layout policy.
func DefaultSparseFormat() SparseFormat { return SparseFormat(processSparseFormat.Load()) }

// Format-heuristic thresholds. Variables so tests can exercise both
// sides without building huge operators.
var (
	// sellMinRows is the row count at and above which FormatAuto picks
	// SELL-C-σ: below it the operator fits cache and the CSR gather is
	// already fast, while the conversion would still cost a pass over
	// the matrix at every solver setup.
	sellMinRows = 4096
	// sellMaxPadding is the PaddingRatio above which a SELL conversion
	// is discarded and the operator stays CSR: past it the padded
	// column-major stream reads more memory than the CSR gather saves.
	sellMaxPadding = 1.25
)

var (
	sellConversions = obs.Default.Counter("bright_sparse_conversions_total",
		"Operators converted to the SELL-C-σ layout at solver setup.",
		obs.L("format", "sell"))
	sell32Conversions = obs.Default.Counter("bright_sparse_conversions_total",
		"Operators converted to the SELL-C-σ layout at solver setup.",
		obs.L("format", "sell32"))
	sellFallbacks = obs.Default.Counter("bright_sparse_sell_fallbacks_total",
		"SELL-C-σ conversions discarded for excess padding (operator stayed CSR).")
)

// EnsureFormat resolves the format policy chain (explicit option ->
// process default -> size heuristic) and, when it lands on SELL-C-σ,
// attaches the sliced mirror to the matrix. It is idempotent, cheap
// when the resolution is CSR, and safe to call concurrently with
// MulVec. Conversion happens here — at solver/hierarchy setup — never
// on the multiply path, so the zero-alloc steady-state contract holds.
func (m *CSR) EnsureFormat(f SparseFormat) {
	if m.sell.Load() != nil {
		return
	}
	if f == FormatAuto {
		f = DefaultSparseFormat()
	}
	if f == FormatAuto {
		if m.Rows >= sellMinRows {
			f = FormatSELL
		} else {
			f = FormatCSR
		}
	}
	if f != FormatSELL {
		return
	}
	s := NewSELLCS(m)
	if s == nil || s.PaddingRatio() > sellMaxPadding {
		sellFallbacks.Inc()
		return
	}
	sellConversions.Inc()
	m.sell.Store(s)
}
