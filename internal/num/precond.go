package num

import (
	"fmt"
	"strings"
	"sync/atomic"

	"bright/internal/obs"
)

// Precond selects the preconditioner family a SparseSolver builds when
// IterOptions.M is nil.
type Precond int32

const (
	// PrecondAuto defers to the process-wide default (SetDefaultPrecond),
	// then to the heuristic: multigrid for large symmetric systems,
	// Jacobi otherwise.
	PrecondAuto Precond = iota
	// PrecondJacobi forces diagonal scaling.
	PrecondJacobi
	// PrecondMG forces multigrid: geometric when IterOptions.Shape
	// describes the grid, aggregation-based AMG otherwise.
	PrecondMG
)

func (p Precond) String() string {
	switch p {
	case PrecondJacobi:
		return "jacobi"
	case PrecondMG:
		return "mg"
	default:
		return "auto"
	}
}

// ParsePrecond parses "auto", "jacobi" or "mg" (case-insensitive); it
// backs the brightd -solver-precond flag and BRIGHT_SOLVER_PRECOND env.
func ParsePrecond(s string) (Precond, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return PrecondAuto, nil
	case "jacobi":
		return PrecondJacobi, nil
	case "mg", "multigrid":
		return PrecondMG, nil
	}
	return PrecondAuto, fmt.Errorf("num: unknown preconditioner %q (want auto, jacobi or mg)", s)
}

var processPrecond atomic.Int32

// SetDefaultPrecond sets the process-wide policy consulted when an
// IterOptions leaves Precond at PrecondAuto.
func SetDefaultPrecond(p Precond) { processPrecond.Store(int32(p)) }

// DefaultPrecond returns the process-wide policy.
func DefaultPrecond() Precond { return Precond(processPrecond.Load()) }

// MGAutoThreshold is the unknown count at and above which PrecondAuto
// upgrades symmetric systems from Jacobi to multigrid. Below it, Jacobi
// solves finish before MG setup would pay for itself.
const MGAutoThreshold = 4096

var mgSetupFallbacks = obs.Default.Counter("bright_mg_setup_fallbacks_total",
	"Multigrid setups that failed and fell back to Jacobi.")

// buildPrecond resolves the policy chain (options -> process default ->
// heuristic) into a concrete preconditioner for a. Multigrid setup
// failure degrades to Jacobi rather than failing the solver build: the
// result is always usable, just possibly slower.
func buildPrecond(a *CSR, symmetric bool, opt IterOptions) Preconditioner {
	p := opt.Precond
	if p == PrecondAuto {
		p = DefaultPrecond()
	}
	if p == PrecondAuto {
		if symmetric && a.Rows >= MGAutoThreshold {
			p = PrecondMG
		} else {
			p = PrecondJacobi
		}
	}
	if p == PrecondMG {
		if m, err := newMGFor(a, opt); err == nil {
			return m
		}
		mgSetupFallbacks.Inc()
	}
	return NewJacobi(a)
}

// newMGFor builds geometric multigrid when the options carry a matching
// grid shape, aggregation AMG otherwise.
func newMGFor(a *CSR, opt IterOptions) (*Multigrid, error) {
	if opt.Shape != nil && opt.Shape.NX > 0 && opt.Shape.NY > 0 && opt.Shape.Cells() == a.Rows {
		return NewGMG(a, *opt.Shape, opt.MG)
	}
	return NewAMG(a, opt.MG)
}
