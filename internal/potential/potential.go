// Package potential solves the charge-conservation equation of the
// paper (eq. (11), -div(sigma grad phi) = 0) on the channel
// cross-section: the ionic potential field between the two side-wall
// electrodes through the co-laminar electrolyte pair. It turns the
// lumped "gap / sigma" ohmic estimate used by the fast path into a
// proper field solution, capturing current constriction when the
// electrodes cover only part of the side walls and the series
// combination of two electrolytes with different conductivities.
package potential

import (
	"fmt"
	"sync"

	"bright/internal/mesh"
	"bright/internal/num"
)

// Problem is one cross-section potential solve. Coordinates: x spans
// the electrode gap (width), y the etch depth (height). The left
// electrode (x=0) is held at 0 V and the right (x=width) at 1 V; each
// covers the wall from y=0 up to coverage*height. All other boundaries
// are insulating.
type Problem struct {
	// Width is the electrode gap (m); Height the etch depth (m).
	Width, Height float64
	// CoverageLeft, CoverageRight are the electrode height fractions in
	// (0, 1].
	CoverageLeft, CoverageRight float64
	// SigmaFuel and SigmaOx are the conductivities (S/m) of the two
	// co-laminar streams; fuel occupies x < Width/2.
	SigmaFuel, SigmaOx float64
	// NX, NY are the grid resolution (defaults 48x48).
	NX, NY int
	// Warm optionally carries the potential field between solves of the
	// same cross-section at slowly varying parameters (e.g. conductivity
	// sweeps), seeding CG from the previous field instead of the flat
	// 0.5 V mid-gap guess. Auto-invalidates on a resolution change.
	Warm *num.WarmStart
}

// Validate reports whether the problem is well posed.
func (p *Problem) Validate() error {
	if p.Width <= 0 || p.Height <= 0 {
		return fmt.Errorf("potential: nonpositive domain %gx%g", p.Width, p.Height)
	}
	if p.CoverageLeft <= 0 || p.CoverageLeft > 1 || p.CoverageRight <= 0 || p.CoverageRight > 1 {
		return fmt.Errorf("potential: coverages (%g, %g) out of (0,1]", p.CoverageLeft, p.CoverageRight)
	}
	if p.SigmaFuel <= 0 || p.SigmaOx <= 0 {
		return fmt.Errorf("potential: nonpositive conductivity")
	}
	return nil
}

func (p *Problem) grid() *mesh.Grid2D {
	nx, ny := p.NX, p.NY
	if nx == 0 {
		nx = 48
	}
	if ny == 0 {
		ny = 48
	}
	return mesh.NewUniformGrid2D(p.Width, p.Height, nx, ny)
}

// Solution is the solved field and its integral quantities.
type Solution struct {
	// Phi is the potential field (V) for a 1 V terminal difference.
	Phi *mesh.Field2D
	// CurrentPerLength is the ionic current per unit channel length
	// (A/m) at the 1 V difference.
	CurrentPerLength float64
	// ResistancePerLength is the cross-section resistance-length
	// product (ohm.m): multiply by 1/channelLength for the channel's
	// ionic resistance.
	ResistancePerLength float64
	// ASR is the area-specific resistance (ohm.m2) referenced to the
	// full side-wall electrode area (height x length).
	ASR float64
	// ConstrictionFactor = ASR / ASR(full coverage, analytic): 1 for
	// full electrodes, > 1 when coverage constricts the current.
	ConstrictionFactor float64
}

// AnalyticASR returns the closed-form area-specific resistance
// (ohm.m2) for full-coverage electrodes: the series combination of the
// two electrolyte half-gaps.
func (p *Problem) AnalyticASR() float64 {
	return p.Width / 2 * (1/p.SigmaFuel + 1/p.SigmaOx)
}

// Solve computes the potential field with a cell-centered finite-volume
// discretization (harmonic-mean face conductivities at the co-laminar
// interface) and conjugate gradients.
func Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := p.grid()
	nx, ny := g.NX(), g.NY()
	n := g.NumCells()
	sigmaAt := func(i int) float64 {
		if g.X.Centers[i] < p.Width/2 {
			return p.SigmaFuel
		}
		return p.SigmaOx
	}
	co := num.NewCOO(n, n)
	b := make([]float64, n)
	harm := func(s1, s2 float64) float64 { return 2 * s1 * s2 / (s1 + s2) }
	for j := 0; j < ny; j++ {
		y := g.Y.Centers[j]
		for i := 0; i < nx; i++ {
			row := g.Index(i, j)
			dx := g.X.Widths[i]
			dy := g.Y.Widths[j]
			s := sigmaAt(i)
			// Interior faces.
			if i < nx-1 {
				cond := harm(s, sigmaAt(i+1)) * dy / g.X.CenterSpacing(i)
				col := g.Index(i+1, j)
				co.Add(row, row, cond)
				co.Add(col, col, cond)
				co.Add(row, col, -cond)
				co.Add(col, row, -cond)
			}
			if j < ny-1 {
				cond := s * dx / g.Y.CenterSpacing(j)
				col := g.Index(i, j+1)
				co.Add(row, row, cond)
				co.Add(col, col, cond)
				co.Add(row, col, -cond)
				co.Add(col, row, -cond)
			}
			// Electrode boundaries (Dirichlet via half-cell ghost).
			if i == 0 && y <= p.CoverageLeft*p.Height {
				cond := s * dy / (dx / 2)
				co.Add(row, row, cond)
				// phi = 0: no RHS term.
			}
			if i == nx-1 && y <= p.CoverageRight*p.Height {
				cond := s * dy / (dx / 2)
				co.Add(row, row, cond)
				b[row] += cond * 1.0 // phi = 1 V
			}
		}
	}
	a := co.ToCSR()
	x := make([]float64, n)
	if !p.Warm.Seed(x) {
		num.Fill(x, 0.5)
	}
	// The FV diffusion stamps are symmetric by construction: CG, no
	// scan. The grid shape lets the preconditioner policy build
	// geometric multigrid at high resolutions (the default 48x48 stays
	// below the auto threshold and runs Jacobi).
	solver := num.NewSparseSolverSymmetric(a, true,
		num.IterOptions{Tol: 1e-11, Shape: &num.GridShape{NX: nx, NY: ny}})
	if _, err := solver.Solve(b, x); err != nil {
		return nil, fmt.Errorf("potential: field solve failed: %w", err)
	}
	p.Warm.Save(x)
	sol := &Solution{Phi: &mesh.Field2D{Grid: g, Data: x}}
	// Current through the left electrode per unit channel length.
	for j := 0; j < ny; j++ {
		y := g.Y.Centers[j]
		if y > p.CoverageLeft*p.Height {
			continue
		}
		dy := g.Y.Widths[j]
		dx := g.X.Widths[0]
		sol.CurrentPerLength += p.SigmaFuel * dy * (x[g.Index(0, j)] - 0) / (dx / 2)
	}
	if sol.CurrentPerLength <= 0 {
		return nil, fmt.Errorf("potential: nonpositive electrode current")
	}
	sol.ResistancePerLength = 1.0 / sol.CurrentPerLength
	sol.ASR = sol.ResistancePerLength * p.Height
	sol.ConstrictionFactor = sol.ASR / p.AnalyticASR()
	return sol, nil
}

// constrictionMemo caches ConstrictionFactor results process-wide. The
// factor is a ratio of two resistances through the same uniform-sigma
// medium, so it is invariant under sigma scaling and the key needs only
// the geometry and coverage. Sweeps and per-cell models that revisit
// the same cross-section (the flow-cell array evaluates it once per
// clogging state) then skip the 48x48 CG solve entirely.
var constrictionMemo sync.Map // [3]float64{width, height, coverage} -> float64

// ConstrictionFactor is a convenience wrapper returning only the factor
// for the given geometry and symmetric electrode coverage. Results are
// memoized process-wide: the factor does not depend on sigma (it
// cancels in the ASR ratio for a uniform medium), so the cache is keyed
// on (width, height, coverage) only.
func ConstrictionFactor(width, height, coverage, sigma float64) (float64, error) {
	key := [3]float64{width, height, coverage}
	if v, ok := constrictionMemo.Load(key); ok {
		return v.(float64), nil
	}
	sol, err := Solve(&Problem{
		Width: width, Height: height,
		CoverageLeft: coverage, CoverageRight: coverage,
		SigmaFuel: sigma, SigmaOx: sigma,
	})
	if err != nil {
		return 0, err
	}
	constrictionMemo.Store(key, sol.ConstrictionFactor)
	return sol.ConstrictionFactor, nil
}
