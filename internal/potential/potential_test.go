package potential

import (
	"math"
	"testing"
)

func tableIIProblem() *Problem {
	return &Problem{
		Width: 200e-6, Height: 400e-6,
		CoverageLeft: 1, CoverageRight: 1,
		SigmaFuel: 40, SigmaOx: 40,
	}
}

func TestFullCoverageMatchesAnalytic(t *testing.T) {
	p := tableIIProblem()
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform field: the FVM must reproduce W/(sigma) ASR exactly
	// (within solver tolerance).
	if math.Abs(sol.ASR-p.AnalyticASR())/p.AnalyticASR() > 1e-6 {
		t.Fatalf("full-coverage ASR %g vs analytic %g", sol.ASR, p.AnalyticASR())
	}
	if math.Abs(sol.ConstrictionFactor-1) > 1e-6 {
		t.Fatalf("constriction factor %g != 1", sol.ConstrictionFactor)
	}
}

func TestTwoConductivitySeries(t *testing.T) {
	p := tableIIProblem()
	p.SigmaFuel, p.SigmaOx = 20, 60
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	want := p.Width / 2 * (1.0/20 + 1.0/60)
	if math.Abs(sol.ASR-want)/want > 1e-4 {
		t.Fatalf("two-sigma ASR %g vs series %g", sol.ASR, want)
	}
}

func TestPartialCoverageConstricts(t *testing.T) {
	prev := 1.0
	for _, cov := range []float64{0.75, 0.5, 0.25} {
		p := tableIIProblem()
		p.CoverageLeft, p.CoverageRight = cov, cov
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.ConstrictionFactor <= prev {
			t.Fatalf("coverage %g: factor %g must exceed %g", cov, sol.ConstrictionFactor, prev)
		}
		prev = sol.ConstrictionFactor
	}
	// Quarter coverage on both walls at this aspect ratio costs well
	// over 2x the full-coverage resistance.
	if prev < 2 {
		t.Fatalf("quarter-coverage constriction %g suspiciously small", prev)
	}
}

func TestReciprocity(t *testing.T) {
	// Swapping the two electrodes' coverages leaves the resistance
	// unchanged (network reciprocity), even with asymmetric sigma once
	// those are swapped too.
	p1 := tableIIProblem()
	p1.CoverageLeft, p1.CoverageRight = 0.4, 0.9
	s1, err := Solve(p1)
	if err != nil {
		t.Fatal(err)
	}
	p2 := tableIIProblem()
	p2.CoverageLeft, p2.CoverageRight = 0.9, 0.4
	s2, err := Solve(p2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s1.ASR-s2.ASR)/s1.ASR > 1e-6 {
		t.Fatalf("reciprocity violated: %g vs %g", s1.ASR, s2.ASR)
	}
}

func TestGridConvergence(t *testing.T) {
	cov := 0.5
	asrAt := func(n int) float64 {
		p := tableIIProblem()
		p.CoverageLeft, p.CoverageRight = cov, cov
		p.NX, p.NY = n, n
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		return sol.ASR
	}
	ref := asrAt(128)
	prevErr := math.Inf(1)
	for _, n := range []int{16, 32, 64} {
		e := math.Abs(asrAt(n)-ref) / ref
		if e > prevErr*1.01 {
			t.Fatalf("not converging at n=%d: %g vs %g", n, e, prevErr)
		}
		prevErr = e
	}
	if prevErr > 0.02 {
		t.Fatalf("finest error %g", prevErr)
	}
}

func TestPotentialFieldBounds(t *testing.T) {
	p := tableIIProblem()
	p.CoverageLeft, p.CoverageRight = 0.5, 0.5
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := sol.Phi.MinMax()
	if lo < -1e-9 || hi > 1+1e-9 {
		t.Fatalf("potential escapes [0,1]: [%g, %g]", lo, hi)
	}
	// Midline potential ~0.5 by symmetry.
	g := sol.Phi.Grid
	mid := sol.Phi.At(g.NX()/2, g.NY()/4)
	if math.Abs(mid-0.5) > 0.05 {
		t.Fatalf("midline potential %g", mid)
	}
}

func TestValidation(t *testing.T) {
	bad := []*Problem{
		{Width: 0, Height: 1, CoverageLeft: 1, CoverageRight: 1, SigmaFuel: 1, SigmaOx: 1},
		{Width: 1, Height: 1, CoverageLeft: 0, CoverageRight: 1, SigmaFuel: 1, SigmaOx: 1},
		{Width: 1, Height: 1, CoverageLeft: 1, CoverageRight: 1.5, SigmaFuel: 1, SigmaOx: 1},
		{Width: 1, Height: 1, CoverageLeft: 1, CoverageRight: 1, SigmaFuel: 0, SigmaOx: 1},
	}
	for k, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d accepted", k)
		}
	}
}

func TestConstrictionFactorHelper(t *testing.T) {
	f, err := ConstrictionFactor(200e-6, 400e-6, 1.0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-1) > 1e-6 {
		t.Fatalf("full coverage helper %g", f)
	}
	f2, err := ConstrictionFactor(200e-6, 400e-6, 0.5, 40)
	if err != nil {
		t.Fatal(err)
	}
	if f2 <= 1.05 {
		t.Fatalf("half coverage helper %g", f2)
	}
}
