package stream

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"bright/internal/workload"
)

// tinySpec is a fast manual session: coarse grid, no PDN.
func tinySpec() Spec {
	off := false
	no := false
	return Spec{
		NX: 16, NY: 12,
		DtS:       2e-3,
		MaxFrames: 50,
		PDN:       &off,
		Auto:      &no,
		Workload:  &WorkloadSpec{Name: "burst", PeriodS: 0.04, Duty: 0.5},
	}
}

func testManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	m := NewManager(opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return m
}

func TestSpecResolveDefaultsAndErrors(t *testing.T) {
	r, err := Spec{}.resolve(100000)
	if err != nil {
		t.Fatal(err)
	}
	if r.cfg.FlowMLMin != 676 || r.dt != 1e-3 || r.maxFrames != 200 ||
		r.nx != 44 || r.ny != 32 || !r.pdnOn || r.auto || r.trace != nil {
		t.Fatalf("defaults: %+v", r)
	}
	for _, bad := range []Spec{
		{DtS: -1},
		{MaxFrames: -2},
		{MaxFrames: 1 << 30},
		{InletTempC: 95},
		{PumpEfficiency: 1.5},
		{Workload: &WorkloadSpec{Name: "nope"}},
		{Scenario: "nope"},
		{Faults: []Fault{{Kind: "nope"}}},
		{Faults: []Fault{{Kind: FaultPumpDegradation, FlowScale: 0}}},
		{Faults: []Fault{{Kind: FaultChannelClog, Channels: 1000}}},
	} {
		if _, err := bad.resolve(100000); err == nil {
			t.Errorf("spec %+v accepted", bad)
		}
	}
	// A workload turns auto on by default.
	r, err = Spec{Workload: &WorkloadSpec{Name: "steady"}}.resolve(100000)
	if err != nil || !r.auto {
		t.Fatalf("steady workload should default to auto (err=%v)", err)
	}
}

func TestScenarioLibrary(t *testing.T) {
	for _, name := range Scenarios() {
		r, err := Spec{Scenario: name}.resolve(100000)
		if err != nil {
			t.Fatalf("scenario %s: %v", name, err)
		}
		if r.trace == nil {
			t.Fatalf("scenario %s resolved without a workload", name)
		}
	}
	// Client fields win over the scenario's.
	s := Spec{Scenario: "pump-degradation", MaxFrames: 7}
	r, err := s.resolve(100000)
	if err != nil || r.maxFrames != 7 {
		t.Fatalf("override lost: %+v err=%v", r, err)
	}
}

func TestFaultSchedule(t *testing.T) {
	fl := Fault{Kind: FaultPumpDegradation, StartS: 1, RampS: 2, FlowScale: 0.5}
	for _, tc := range []struct{ t, want float64 }{
		{0, 1}, {1, 1}, {2, 0.75}, {3, 0.5}, {10, 0.5},
	} {
		if got := fl.scaleAt(tc.t, 88); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("scaleAt(%g) = %g, want %g", tc.t, got, tc.want)
		}
	}
	clog := Fault{Kind: FaultChannelClog, StartS: 5, Channels: 22}
	if got := clog.scaleAt(4.999, 88); got != 1 {
		t.Errorf("clog before onset: %g", got)
	}
	if got := clog.scaleAt(5, 88); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("clog scale = %g, want 0.75 (22/88 clogged)", got)
	}
}

func TestManualAdvanceAndCompletion(t *testing.T) {
	m := testManager(t, Options{MaxSessions: 2, RingSize: 64})
	spec := tinySpec()
	spec.MaxFrames = 5
	s, err := m.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	n, last, err := s.Advance(ctx, 3)
	if err != nil || n != 3 || last == nil || last.Seq != 3 {
		t.Fatalf("advance: n=%d last=%v err=%v", n, last, err)
	}
	if last.ChipPowerW <= 0 || last.PeakTempC <= 27 || last.ArrayPowerW <= 0 {
		t.Fatalf("frame physics look wrong: %+v", last)
	}
	// Advancing past the budget clamps and completes the session.
	n, _, err = s.Advance(ctx, 10)
	if err != nil || n != 2 {
		t.Fatalf("clamped advance: n=%d err=%v", n, err)
	}
	if st := s.Status(); st.State != StateCompleted || st.Frames != 5 {
		t.Fatalf("status after budget: %+v", st)
	}
	if _, _, err := s.Advance(ctx, 1); !errors.Is(err, ErrCompleted) {
		t.Fatalf("advance on completed session: %v", err)
	}
	st := m.Stats()
	if st.EndedCompleted != 1 || st.FramesEmitted != 5 {
		t.Fatalf("manager stats: %+v", st)
	}
}

func TestUtilizationPushChangesPower(t *testing.T) {
	m := testManager(t, Options{MaxSessions: 1})
	spec := tinySpec()
	spec.Workload = nil // manual session idles at zero utilization
	s, err := m.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	_, idle, err := s.Advance(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetUtilization(ctx, workload.Utilization{Default: 1}); err != nil {
		t.Fatal(err)
	}
	_, full, err := s.Advance(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full.ChipPowerW <= idle.ChipPowerW {
		t.Fatalf("full-util frame power %g <= idle %g", full.ChipPowerW, idle.ChipPowerW)
	}
	if err := s.SetUtilization(ctx, workload.Utilization{Default: 2}); err == nil {
		t.Fatal("invalid utilization accepted")
	}
}

func TestAdmissionCapAndCancel(t *testing.T) {
	m := testManager(t, Options{MaxSessions: 1})
	s, err := m.Create(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(tinySpec()); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("over-cap create: %v", err)
	}
	if m.Stats().AdmissionRejected != 1 {
		t.Fatal("rejection not counted")
	}
	if err := m.Cancel(s.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(s.ID); ok {
		t.Fatal("canceled session still listed")
	}
	if m.Stats().EndedCanceled != 1 {
		t.Fatal("cancel not counted")
	}
	// The freed slot admits again.
	if _, err := m.Create(tinySpec()); err != nil {
		t.Fatalf("create after cancel: %v", err)
	}
}

func TestIdleTimeoutReapsSessions(t *testing.T) {
	m := testManager(t, Options{MaxSessions: 1, IdleTimeout: 60 * time.Millisecond})
	s, err := m.Create(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := m.Get(s.ID); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session not reaped; status %+v", s.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := m.Stats(); st.EndedIdleTimeout != 1 {
		t.Fatalf("idle outcome not counted: %+v", st)
	}
}

func TestCheckpointRestoreContinuesExactly(t *testing.T) {
	m := testManager(t, Options{MaxSessions: 2})
	s, err := m.Create(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := s.Advance(ctx, 8); err != nil {
		t.Fatal(err)
	}
	cp, err := s.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Step != 8 || cp.Version != CheckpointVersion || len(cp.ThermalState) == 0 {
		t.Fatalf("checkpoint: step=%d version=%d", cp.Step, cp.Version)
	}
	r, err := m.Restore(cp)
	if err != nil {
		t.Fatal(err)
	}
	_, fa, err := s.Advance(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, fb, err := r.Advance(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fa.Seq != 9 || fb.Seq != 9 {
		t.Fatalf("restored sequence: %d vs %d, want 9", fa.Seq, fb.Seq)
	}
	rel := func(a, b float64) float64 {
		if a == b {
			return 0
		}
		return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
	}
	const tol = 1e-6
	if rel(fa.PeakTempC, fb.PeakTempC) > tol ||
		rel(fa.ArrayPowerW, fb.ArrayPowerW) > tol ||
		rel(fa.MeanFluidTempC, fb.MeanFluidTempC) > tol ||
		rel(fa.ArrayHeatW, fb.ArrayHeatW) > tol {
		t.Fatalf("restored frame diverged:\n  orig %+v\n  rest %+v", fa, fb)
	}
	// Tampered checkpoints are rejected.
	bad := *cp
	bad.ThermalState = bad.ThermalState[:len(bad.ThermalState)-1]
	if _, err := m.Restore(&bad); err == nil {
		t.Fatal("short thermal state accepted")
	}
	bad = *cp
	bad.Version = 99
	if _, err := m.Restore(&bad); err == nil {
		t.Fatal("wrong version accepted")
	}
}

// TestPumpDegradationFault is the fault-injection acceptance test: a
// degrading pump must show the peak temperature rising AND the flow
// cells' electrical output falling across the ramp.
func TestPumpDegradationFault(t *testing.T) {
	m := testManager(t, Options{MaxSessions: 1})
	off := false
	no := false
	s, err := m.Create(Spec{
		Scenario: "pump-degradation",
		NX:       16, NY: 12,
		MaxFrames: 70,
		PDN:       &off,
		Auto:      &no,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := s.Advance(ctx, 70); err != nil {
		t.Fatal(err)
	}
	// Collect the trajectory from the ring (default capacity 256 holds
	// all 70 frames).
	var frames []Frame
	for at := uint64(1); ; {
		rd := s.ring.read(at)
		if !rd.ok {
			break
		}
		frames = append(frames, rd.frame)
		at = rd.frame.Seq + 1
	}
	if len(frames) != 70 {
		t.Fatalf("got %d frames", len(frames))
	}
	// Scenario: ramp over [0.02, 0.12] s at dt=2e-3 → frames 10..60.
	pre := frames[5]   // before the fault
	post := frames[69] // ramp finished, flow at 35%
	if post.FlowScale >= pre.FlowScale || post.FlowScale > 0.36 {
		t.Fatalf("flow scale did not degrade: pre %g post %g", pre.FlowScale, post.FlowScale)
	}
	if post.PeakTempC <= pre.PeakTempC {
		t.Fatalf("peak temperature did not rise under degraded flow: %g -> %g",
			pre.PeakTempC, post.PeakTempC)
	}
	if post.ArrayPowerW >= pre.ArrayPowerW {
		t.Fatalf("flow-cell power did not fall under degraded flow: %g -> %g",
			pre.ArrayPowerW, post.ArrayPowerW)
	}
	if s.Status().ThermalRebuilds == 0 {
		t.Fatal("flow ramp should have rebuilt the thermal matrix")
	}
	if pre.PumpPowerW <= post.PumpPowerW {
		// Lower flow pumps less power through the same network.
		t.Fatalf("pump power should fall with flow: %g -> %g", pre.PumpPowerW, post.PumpPowerW)
	}
}
