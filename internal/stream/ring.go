package stream

import "sync"

// Frame is one time sample of a streaming session: the per-step summary
// of the coupled electro-thermal state (full field solutions run to
// megabytes and stay server-side; checkpoints carry them instead).
type Frame struct {
	// Seq is the 1-based step number; frames of one session are a
	// contiguous sequence even across checkpoint/restore.
	Seq uint64 `json:"seq"`
	// TimeS is the simulated time at the end of the step (s).
	TimeS float64 `json:"time_s"`
	// ChipPowerW is the instantaneous chip power under the active
	// utilization (W).
	ChipPowerW float64 `json:"chip_power_w"`
	// PeakTempC is the active-plane peak temperature (C).
	PeakTempC float64 `json:"peak_temp_c"`
	// MeanFluidTempC is the coolant mean temperature (C).
	MeanFluidTempC float64 `json:"mean_fluid_temp_c"`
	// FilmTempC is the electrolyte film temperature driving the
	// electrochemistry (C).
	FilmTempC float64 `json:"film_temp_c"`
	// ArrayCurrentA, ArrayPowerW: flow-cell array operating point at the
	// terminal voltage.
	ArrayCurrentA float64 `json:"array_current_a"`
	ArrayPowerW   float64 `json:"array_power_w"`
	// DeliveredW is the array power after VRM conversion (W).
	DeliveredW float64 `json:"delivered_w"`
	// ArrayHeatW is the electrochemical loss fed back into the coolant
	// on the next step (W).
	ArrayHeatW float64 `json:"array_heat_w"`
	// MinVCacheV is the settled minimum cache-rail voltage (V); zero
	// when the PDN co-simulation is disabled.
	MinVCacheV float64 `json:"min_v_cache_v,omitempty"`
	// DroopMV is the transient dip below the settled cache voltage
	// during this step's load change (mV; 0 when the load held steady).
	DroopMV float64 `json:"droop_mv,omitempty"`
	// PumpPowerW, PressureDropBar: hydraulic operating point at the
	// effective (fault-scaled) flow.
	PumpPowerW      float64 `json:"pump_power_w"`
	PressureDropBar float64 `json:"pressure_drop_bar"`
	// NetGainW = DeliveredW - PumpPowerW.
	NetGainW float64 `json:"net_gain_w"`
	// FlowMLMin is the effective electrolyte flow (ml/min) after fault
	// scaling; FlowScale is the applied fault multiplier.
	FlowMLMin float64 `json:"flow_ml_min"`
	FlowScale float64 `json:"flow_scale"`
}

// ringRead is the result of one frameRing.read call.
type ringRead struct {
	frame Frame
	// skipped counts frames the reader asked for that were already
	// overwritten (drop-oldest backpressure); the returned frame is the
	// oldest still buffered.
	skipped uint64
	ok      bool
	// closed reports the ring is terminal and no further frames will
	// arrive (set only when ok is false).
	closed bool
	// reason/errMsg describe the terminal state when closed.
	reason string
	errMsg string
	// wake is closed on the next push or close (valid when ok is false
	// and closed is false).
	wake <-chan struct{}
}

// frameRing buffers the most recent frames of a session with drop-oldest
// semantics: the stepping goroutine pushes without ever blocking, and a
// slow reader that falls more than the capacity behind loses the oldest
// frames (reported as a gap), never stalls the producer. Readers poll
// with read and park on the returned wake channel.
type frameRing struct {
	mu   sync.Mutex
	buf  []Frame
	next uint64 // seq the next pushed frame receives
	// count is the number of live frames (<= len(buf)); the buffered
	// window is [next-count, next).
	count       int
	overwritten uint64
	closed      bool
	reason      string
	errMsg      string
	wake        chan struct{}
}

// newFrameRing sizes the buffer and sets the first sequence number
// (1 for fresh sessions, checkpoint step+1 for restored ones).
func newFrameRing(capacity int, firstSeq uint64) *frameRing {
	if capacity < 1 {
		capacity = 1
	}
	return &frameRing{
		buf:  make([]Frame, capacity),
		next: firstSeq,
		wake: make(chan struct{}),
	}
}

// push stamps the frame with the next sequence number, stores it
// (overwriting the oldest when full) and wakes all parked readers. It
// never blocks.
func (r *frameRing) push(f Frame) uint64 {
	r.mu.Lock()
	f.Seq = r.next
	r.buf[int(r.next%uint64(len(r.buf)))] = f
	r.next++
	if r.count < len(r.buf) {
		r.count++
	} else {
		r.overwritten++
	}
	wake := r.wake
	r.wake = make(chan struct{})
	r.mu.Unlock()
	close(wake)
	return f.Seq
}

// close marks the ring terminal; buffered frames stay readable. It is
// idempotent (the first reason wins) and wakes all parked readers.
func (r *frameRing) close(reason, errMsg string) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.reason = reason
	r.errMsg = errMsg
	wake := r.wake
	r.wake = make(chan struct{})
	r.mu.Unlock()
	close(wake)
}

// read returns the frame with sequence number from, or the oldest
// buffered frame (with the gap size in skipped) when from has been
// overwritten. When from has not been produced yet, ok is false and the
// caller either observes closed or parks on wake.
func (r *frameRing) read(from uint64) ringRead {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		// Nothing buffered yet (fresh or just-restored session): park
		// even when from predates next — the gap is reported once the
		// first frame lands.
		return ringRead{closed: r.closed, reason: r.reason, errMsg: r.errMsg, wake: r.wake}
	}
	oldest := r.next - uint64(r.count)
	if from < oldest {
		rd := ringRead{skipped: oldest - from, ok: true}
		from = oldest
		rd.frame = r.buf[int(from%uint64(len(r.buf)))]
		return rd
	}
	if from < r.next {
		return ringRead{frame: r.buf[int(from%uint64(len(r.buf)))], ok: true}
	}
	return ringRead{closed: r.closed, reason: r.reason, errMsg: r.errMsg, wake: r.wake}
}

// snapshot reports the ring's progress for status endpoints: the next
// sequence number, the overwrite count and the most recent frame (nil
// before the first push).
func (r *frameRing) snapshot() (next uint64, overwritten uint64, last *Frame) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count > 0 {
		f := r.buf[int((r.next-1)%uint64(len(r.buf)))]
		last = &f
	}
	return r.next, r.overwritten, last
}
