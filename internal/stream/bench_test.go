package stream

import (
	"context"
	"testing"
)

// BenchmarkTransientStepping measures the streaming session's frame
// rate: one backward-Euler thermal step plus the flow-cell operating
// point per frame (thermal variant), with the PDN transient co-sim
// added on top (pdn variant). The frames/s metric feeds the
// BENCH_PR6.json report via cmd/benchjson.
func BenchmarkTransientStepping(b *testing.B) {
	run := func(b *testing.B, pdnOn bool) {
		on := pdnOn
		res, err := Spec{
			NX: 44, NY: 32,
			DtS:       1e-3,
			MaxFrames: 100000,
			PDN:       &on,
			Workload:  &WorkloadSpec{Name: "burst", PeriodS: 0.04, Duty: 0.5},
		}.resolve(100000)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := newEngine(res, 1)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.stepFrame(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	}
	b.Run("thermal", func(b *testing.B) { run(b, false) })
	b.Run("pdn", func(b *testing.B) { run(b, true) })
}
