package stream

import (
	"context"
	"fmt"
	"math"

	"bright/internal/floorplan"
	"bright/internal/flowcell"
	"bright/internal/mesh"
	"bright/internal/pdn"
	"bright/internal/thermal"
	"bright/internal/units"
	"bright/internal/workload"
)

// pdnDt is the PDN backward-Euler sub-step (s): comparable to the VRM
// regulation lag, so a frozen-VRM sub-step exposes the decap droop.
const pdnDt = 1e-6

// pdnSettleSteps is the number of regulated sub-steps per frame.
const pdnSettleSteps = 2

// pdnDecapPerArea is the on-die decoupling capacitance (F/m2).
const pdnDecapPerArea = 2e-2

// rebuildTol is the relative flow drift that triggers a thermal matrix
// rebuild: the advection/convection stamps are bound to the flow, so a
// fault-scaled flow past this drift gets a fresh matrix with the
// temperature state transplanted.
const rebuildTol = 0.02

func power7Floorplan() *floorplan.Floorplan { return floorplan.Power7() }

// engine owns the numerical state of one session: the warm thermal and
// PDN transient sessions, the pre-rasterized workload fields, the fault
// schedule and the electrochemical feedback loop. It is driven from a
// single goroutine (the session run loop) and is not safe for
// concurrent use.
type engine struct {
	res *resolved

	f          *floorplan.Floorplan
	pm         workload.PowerModel
	grid       *mesh.Grid2D
	fullPowerW float64
	inletK     float64

	// phaseFields pre-rasterizes one power field per trace phase (the
	// trace is piecewise constant, so fields are shared across frames).
	phaseFields []*mesh.Field2D
	// manualUtil overrides the trace when the client pushes utilization
	// (nil until the first push on traced sessions; idle for manual
	// sessions).
	manualUtil  *workload.Utilization
	manualField *mesh.Field2D
	manualPowW  float64

	ts *thermal.TransientSession
	// builtScale is the flow scale the thermal matrix is assembled at.
	builtScale float64
	rebuilds   int

	pdnTS         *pdn.TransientSession
	vrm           pdn.VRM
	lastLoadScale float64

	// heatW is the flow cells' electrochemical loss from the previous
	// frame, injected into the coolant on the next thermal step.
	heatW float64

	step int
	time float64
}

// newEngine assembles the coupled model at the resolved operating
// point; thermalScale rebuilds the thermal matrix at a fault-scaled
// flow (1 for fresh sessions, the checkpointed scale on restore).
func newEngine(res *resolved, thermalScale float64) (*engine, error) {
	e := &engine{
		res:           res,
		f:             power7Floorplan(),
		pm:            workload.Power7PowerModel(),
		inletK:        units.CtoK(res.cfg.InletTempC),
		builtScale:    thermalScale,
		lastLoadScale: -1,
		vrm:           pdn.DefaultVRM(),
	}
	e.fullPowerW = e.pm.TotalPower(e.f, workload.Utilization{Default: 1})
	ts, err := e.buildThermal(thermalScale)
	if err != nil {
		return nil, err
	}
	e.ts = ts
	e.grid = ts.Grid()
	if res.trace != nil {
		e.phaseFields = make([]*mesh.Field2D, len(res.trace.Phases))
		for k, ph := range res.trace.Phases {
			e.phaseFields[k] = e.pm.DensityField(e.f, e.grid, ph.Util)
		}
	} else {
		// Manual sessions idle until the client pushes utilization.
		e.setManualUtil(workload.Utilization{})
	}
	if res.pdnOn {
		base, vrm, err := pdn.Power7Problem()
		if err != nil {
			return nil, err
		}
		if res.cfg.SupplyVoltage != base.Supply {
			base.Supply = res.cfg.SupplyVoltage
			base.LoadDensity = pdn.CacheLoad(base.Floorplan, base.LoadDensity.Grid, base.Supply)
		}
		e.vrm = vrm
		e.pdnTS, err = pdn.NewTransientSession(base, pdnDecapPerArea, pdnDt)
		if err != nil {
			return nil, err
		}
	}
	return e, nil
}

// buildThermal assembles a transient thermal session at the given flow
// scale (fraction of the nominal flow).
func (e *engine) buildThermal(scale float64) (*thermal.TransientSession, error) {
	flow := units.MLPerMinToM3PerS(e.res.cfg.FlowMLMin * scale)
	spec := thermal.Power7ChannelSpec(flow, e.inletK, thermal.VanadiumCoolant())
	p := &thermal.Problem{
		DieWidth:  e.f.Width,
		DieHeight: e.f.Height,
		Stack:     thermal.Power7Stack(spec),
		NX:        e.res.nx, NY: e.res.ny,
	}
	// The Problem's map is a fallback only; every step passes its own.
	p.Power = e.pm.DensityField(e.f, p.Grid(), workload.Utilization{Default: 1})
	return thermal.NewTransientSession(p, e.inletK, e.res.dt)
}

// setManualUtil installs a client-pushed utilization override,
// rasterizing its power field once.
func (e *engine) setManualUtil(u workload.Utilization) {
	g := e.grid
	if g == nil {
		// Called during construction before the grid exists: rasterize
		// on the problem grid of the freshly built session later.
		g = mesh.NewUniformGrid2D(e.f.Width, e.f.Height, e.res.nx, e.res.ny)
	}
	e.manualUtil = &u
	e.manualField = e.pm.DensityField(e.f, g, u)
	e.manualPowW = e.pm.TotalPower(e.f, u)
}

// powerAt returns the power field and analytic total power for the
// step covering (t, t+dt): the trace is sampled at the midpoint so a
// phase boundary landing exactly on a frame edge is unambiguous.
func (e *engine) powerAt(tMid float64) (*mesh.Field2D, float64) {
	if e.manualUtil != nil || e.res.trace == nil {
		return e.manualField, e.manualPowW
	}
	k := e.res.trace.PhaseIndexAt(tMid)
	return e.phaseFields[k], e.pm.TotalPower(e.f, e.res.trace.Phases[k].Util)
}

// stepFrame advances the coupled model by one dt and returns the frame
// (sequence number unset; the ring stamps it).
func (e *engine) stepFrame(ctx context.Context) (Frame, error) {
	t0 := e.time
	tEnd := t0 + e.res.dt
	power, chipPowW := e.powerAt(t0 + e.res.dt/2)

	// Fault schedule → effective flow; rebuild the thermal matrix when
	// the flow drifts past the tolerance, transplanting the temperature
	// state (same grid, same node layout).
	scale := e.res.flowScaleAt(tEnd)
	if math.Abs(scale-e.builtScale) > rebuildTol*e.builtScale {
		state, time, step := e.ts.State(), e.ts.Time(), e.ts.Steps()
		ts, err := e.buildThermal(scale)
		if err != nil {
			return Frame{}, fmt.Errorf("stream: thermal rebuild at scale %.3f: %w", scale, err)
		}
		if err := ts.Restore(state, time, step); err != nil {
			return Frame{}, err
		}
		e.ts = ts
		e.builtScale = scale
		e.rebuilds++
	}
	effFlowML := e.res.cfg.FlowMLMin * scale

	// Thermal step under the instantaneous power map, with the previous
	// frame's electrochemical loss heating the coolant.
	sol, err := e.ts.StepContext(ctx, power, e.heatW)
	if err != nil {
		return Frame{}, err
	}

	// Quasi-static electrochemistry at the film temperature.
	film := 0.5 * (sol.MeanFluidT + sol.MeanWallT)
	array := flowcell.Power7ArrayAt(effFlowML, film)
	op, err := array.CurrentAtVoltage(e.res.cfg.SupplyVoltage)
	if err != nil {
		return Frame{}, fmt.Errorf("stream: array at %.2f K, %.0f ml/min: %w", film, effFlowML, err)
	}
	heat, err := array.HeatDissipation(op)
	if err != nil {
		return Frame{}, err
	}
	e.heatW = heat

	frame := Frame{
		TimeS:          tEnd,
		ChipPowerW:     chipPowW,
		PeakTempC:      units.KtoC(sol.PeakT),
		MeanFluidTempC: units.KtoC(sol.MeanFluidT),
		FilmTempC:      units.KtoC(film),
		ArrayCurrentA:  op.Current,
		ArrayPowerW:    op.Power,
		DeliveredW:     op.Power * e.vrm.Efficiency,
		ArrayHeatW:     heat,
		FlowMLMin:      effFlowML,
		FlowScale:      scale,
	}

	// PDN transient: the cache rail follows the chip activity. A load
	// change first rides through one frozen-VRM sub-step (decap-only
	// droop), then the regulated matrix settles it.
	if e.pdnTS != nil {
		loadScale := chipPowW / e.fullPowerW
		droopV := math.Inf(1)
		if e.lastLoadScale >= 0 && math.Abs(loadScale-e.lastLoadScale) > 1e-9 {
			_, minVC, err := e.pdnTS.StepFrozen(loadScale)
			if err != nil {
				return Frame{}, err
			}
			droopV = minVC
		}
		var minVC float64
		for i := 0; i < pdnSettleSteps; i++ {
			_, minVC, err = e.pdnTS.Step(loadScale)
			if err != nil {
				return Frame{}, err
			}
		}
		frame.MinVCacheV = minVC
		if droopV < minVC {
			frame.DroopMV = 1000 * (minVC - droopV)
		}
		e.lastLoadScale = loadScale
	}

	// Hydraulics at the effective flow (analytic, no solve).
	net := array.HydraulicNetwork(e.res.cfg.ManifoldK, e.res.cfg.PumpEfficiency)
	rep, err := net.Evaluate(units.MLPerMinToM3PerS(effFlowML))
	if err != nil {
		return Frame{}, err
	}
	frame.PumpPowerW = rep.PumpPower
	frame.PressureDropBar = units.PaToBar(rep.TotalDrop)
	frame.NetGainW = frame.DeliveredW - rep.PumpPower

	e.step++
	e.time = tEnd
	return frame, nil
}
