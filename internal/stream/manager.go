package stream

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"bright/internal/obs"
)

// ErrTooManySessions is the admission-control rejection (HTTP 429).
var ErrTooManySessions = errors.New("stream: session limit reached")

// ErrManagerClosed reports a request against a draining manager.
var ErrManagerClosed = errors.New("stream: manager is shut down")

// ErrUnknownSession reports a lookup miss (HTTP 404).
var ErrUnknownSession = errors.New("stream: unknown session")

// Options configures a Manager. Zero values take the defaults.
type Options struct {
	// MaxSessions caps concurrently held sessions (running or finished
	// but not yet reaped); default 8. Admission past the cap is a 429.
	MaxSessions int
	// RingSize bounds each session's frame buffer; default 256 frames.
	RingSize int
	// IdleTimeout reaps sessions without client interaction; default
	// 2 minutes.
	IdleTimeout time.Duration
	// MaxFramesCap bounds the per-session frame budget; default 100000.
	MaxFramesCap int
	// Registry receives the bright_stream_* metrics; nil creates a
	// private one (exposed via Metrics).
	Registry *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxSessions == 0 {
		o.MaxSessions = 8
	}
	if o.RingSize == 0 {
		o.RingSize = 256
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	if o.MaxFramesCap == 0 {
		o.MaxFramesCap = 100000
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	return o
}

// Stats is the manager's aggregate view, folded into /v1/stats.
type Stats struct {
	SessionsActive    int    `json:"sessions_active"`
	SessionLimit      int    `json:"session_limit"`
	SessionsStarted   uint64 `json:"sessions_started"`
	FramesEmitted     uint64 `json:"frames_emitted"`
	FramesDropped     uint64 `json:"frames_dropped"`
	AdmissionRejected uint64 `json:"admission_rejected"`
	ThermalRebuilds   uint64 `json:"thermal_rebuilds"`
	EndedCompleted    uint64 `json:"ended_completed"`
	EndedIdleTimeout  uint64 `json:"ended_idle_timeout"`
	EndedCanceled     uint64 `json:"ended_canceled"`
	EndedError        uint64 `json:"ended_error"`
}

// Manager owns every streaming session of a brightd instance: admission
// control against a global cap, an idle-timeout janitor, the
// bright_stream_* metrics and coordinated shutdown.
type Manager struct {
	opts Options

	root   context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	sessions map[string]*Session
	// reserved counts admitted-but-still-assembling sessions so
	// concurrent Creates cannot overshoot the cap.
	reserved int
	closed   bool

	started  *obs.Counter
	frames   *obs.Counter
	dropped  *obs.Counter
	rejected *obs.Counter
	rebuilds *obs.Counter
	ended    map[string]*obs.Counter
}

// NewManager starts the janitor and registers the metrics (the only
// registration site, per the obsreg rule).
func NewManager(opts Options) *Manager {
	opts = opts.withDefaults()
	//lint:ignore ctxpropagate the manager is process-scoped; sessions detach from requests by design
	root, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:     opts,
		root:     root,
		cancel:   cancel,
		sessions: make(map[string]*Session),
	}
	reg := opts.Registry
	reg.GaugeFunc("bright_stream_sessions_active",
		"Streaming sessions currently held (running or awaiting reap).",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(len(m.sessions))
		})
	m.started = reg.Counter("bright_stream_sessions_started_total",
		"Streaming sessions admitted (created or restored).")
	m.frames = reg.Counter("bright_stream_frames_emitted_total",
		"Frames stepped and published across all sessions.")
	m.dropped = reg.Counter("bright_stream_frames_dropped_total",
		"Frames a consumer missed to drop-oldest ring backpressure.")
	m.rejected = reg.Counter("bright_stream_admission_rejected_total",
		"Session creations refused by the global cap (HTTP 429).")
	m.rebuilds = reg.Counter("bright_stream_thermal_rebuilds_total",
		"Thermal matrix reassemblies triggered by fault-driven flow changes.")
	endedHelp := "Sessions ended, by outcome."
	m.ended = map[string]*obs.Counter{
		StateCompleted:   reg.Counter("bright_stream_sessions_ended_total", endedHelp, obs.L("reason", StateCompleted)),
		StateIdleTimeout: reg.Counter("bright_stream_sessions_ended_total", endedHelp, obs.L("reason", StateIdleTimeout)),
		StateCanceled:    reg.Counter("bright_stream_sessions_ended_total", endedHelp, obs.L("reason", StateCanceled)),
		StateError:       reg.Counter("bright_stream_sessions_ended_total", endedHelp, obs.L("reason", StateError)),
	}
	m.wg.Add(1)
	go m.janitor()
	return m
}

// Metrics returns the registry holding the bright_stream_* series.
func (m *Manager) Metrics() *obs.Registry { return m.opts.Registry }

// IdleTimeout reports the reap horizon (for Retry-After hints).
func (m *Manager) IdleTimeout() time.Duration { return m.opts.IdleTimeout }

func newSessionID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; IDs are not
		// security-sensitive, so degrade to a constant rather than die.
		return "s-00ffffffffff"
	}
	return "s-" + hex.EncodeToString(b[:])
}

// admit reserves a session slot under the cap.
func (m *Manager) admit() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrManagerClosed
	}
	if len(m.sessions)+m.reserved >= m.opts.MaxSessions {
		m.rejected.Inc()
		return ErrTooManySessions
	}
	// Reserve the slot; the engine assembles outside the lock.
	m.reserved++
	return nil
}

func (m *Manager) unreserve() {
	m.mu.Lock()
	m.reserved--
	m.mu.Unlock()
}

func (m *Manager) install(s *Session) {
	ctx, cancel := context.WithCancel(m.root)
	s.cancel = cancel
	m.mu.Lock()
	m.reserved--
	m.sessions[s.ID] = s
	m.mu.Unlock()
	m.started.Inc()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		defer cancel()
		s.run(ctx)
	}()
}

// Create admits, resolves and starts a new session. The engine assembly
// (matrix setup, preconditioners) happens synchronously so spec errors
// come back as plain 400s.
func (m *Manager) Create(spec Spec) (*Session, error) {
	res, err := spec.resolve(m.opts.MaxFramesCap)
	if err != nil {
		return nil, err
	}
	// The session checkpoints the scenario-expanded spec, not the alias.
	expanded := spec
	if err := applyScenario(&expanded); err != nil {
		return nil, err
	}
	if err := m.admit(); err != nil {
		return nil, err
	}
	eng, err := newEngine(res, 1)
	if err != nil {
		m.unreserve()
		return nil, err
	}
	s := newSession(m, newSessionID(), expanded, res, eng, 1)
	m.install(s)
	return s, nil
}

// Restore admits a new session seeded from a checkpoint: the engine is
// rebuilt at the checkpointed operating point and flow scale, the state
// vectors transplanted, and the frame sequence continues where the
// checkpoint left off.
func (m *Manager) Restore(cp *Checkpoint) (*Session, error) {
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	res, err := cp.Spec.resolve(m.opts.MaxFramesCap)
	if err != nil {
		return nil, fmt.Errorf("stream: checkpoint spec: %w", err)
	}
	if err := m.admit(); err != nil {
		return nil, err
	}
	eng, err := newEngine(res, cp.FlowScale)
	if err != nil {
		m.unreserve()
		return nil, err
	}
	if err := eng.restoreFrom(cp); err != nil {
		m.unreserve()
		return nil, err
	}
	s := newSession(m, newSessionID(), cp.Spec, res, eng, uint64(cp.Step)+1)
	m.install(s)
	return s, nil
}

// Get looks a session up by ID.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok || s == nil {
		return nil, false
	}
	return s, true
}

// List snapshots every session's status, ordered by ID.
func (m *Manager) List() []Status {
	m.mu.Lock()
	ss := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		if s != nil {
			ss = append(ss, s)
		}
	}
	m.mu.Unlock()
	out := make([]Status, len(ss))
	for i, s := range ss {
		out[i] = s.Status()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Cancel tears a session down (client DELETE) and removes it.
func (m *Manager) Cancel(id string) error {
	s, ok := m.Get(id)
	if !ok {
		return ErrUnknownSession
	}
	s.cancelWith(StateCanceled)
	<-s.done
	m.remove(id)
	return nil
}

func (m *Manager) remove(id string) {
	m.mu.Lock()
	delete(m.sessions, id)
	m.mu.Unlock()
}

// sessionEnded tallies an outcome (called exactly once per session by
// Session.finish).
func (m *Manager) sessionEnded(reason string) {
	if c, ok := m.ended[reason]; ok {
		c.Inc()
	}
}

// frameEmitted accounts one published frame (and any thermal rebuilds
// it triggered).
func (m *Manager) frameEmitted(rebuilds int) {
	m.frames.Inc()
	if rebuilds > 0 {
		m.rebuilds.Add(uint64(rebuilds))
	}
}

// framesDropped accounts frames a reader lost to ring backpressure.
func (m *Manager) framesDropped(n uint64) {
	if n > 0 {
		m.dropped.Add(n)
	}
}

// janitor reaps idle sessions: running ones are canceled with the
// idle-timeout outcome, finished ones are removed once stale.
func (m *Manager) janitor() {
	defer m.wg.Done()
	tick := m.opts.IdleTimeout / 4
	if tick > 15*time.Second {
		tick = 15 * time.Second
	}
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.root.Done():
			return
		case now := <-t.C:
			m.reapIdle(now)
		}
	}
}

func (m *Manager) reapIdle(now time.Time) {
	m.mu.Lock()
	var idle []*Session
	for _, s := range m.sessions {
		if s != nil {
			idle = append(idle, s)
		}
	}
	m.mu.Unlock()
	for _, s := range idle {
		if s.idleFor(now) < m.opts.IdleTimeout {
			continue
		}
		select {
		case <-s.done:
			// Already finished and stale: reap the entry.
			m.remove(s.ID)
		default:
			s.cancelWith(StateIdleTimeout)
		}
	}
}

// Stats snapshots the aggregate counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	active := len(m.sessions)
	m.mu.Unlock()
	return Stats{
		SessionsActive:    active,
		SessionLimit:      m.opts.MaxSessions,
		SessionsStarted:   m.started.Value(),
		FramesEmitted:     m.frames.Value(),
		FramesDropped:     m.dropped.Value(),
		AdmissionRejected: m.rejected.Value(),
		ThermalRebuilds:   m.rebuilds.Value(),
		EndedCompleted:    m.ended[StateCompleted].Value(),
		EndedIdleTimeout:  m.ended[StateIdleTimeout].Value(),
		EndedCanceled:     m.ended[StateCanceled].Value(),
		EndedError:        m.ended[StateError].Value(),
	}
}

// Shutdown drains the manager: no new sessions are admitted, every
// session is canceled, and the call returns when all run loops and the
// janitor have exited (or the context gives up first).
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("stream: shutdown: %w", ctx.Err())
	}
}
