package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"bright/internal/workload"
)

// heartbeatInterval keeps idle SSE connections alive through proxies.
const heartbeatInterval = 15 * time.Second

// Request-body ceilings. Advance/utilization pushes are a few hundred
// bytes and session specs top out with a custom trace, so 1 MiB covers
// them; checkpoint restores carry the full integrator state (mesh-sized
// temperature and PDN vectors) and get a 64 MiB ceiling. MaxBytesReader
// turns anything larger into a decode error instead of an unbounded
// read.
const (
	maxRequestBody    = 1 << 20
	maxCheckpointBody = 64 << 20
)

type errorBody struct {
	Error     string `json:"error"`
	Retryable bool   `json:"retryable"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// A failure after the status line cannot be reported to this client
	// anymore; the transport error already closed the connection.
	//lint:ignore errignore encode failure after the status line has no channel back to the client
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// writeManagerError maps manager/session errors onto statuses: the cap
// is retryable 429 backpressure, shutdown a terminal 503, lookup misses
// 404, completed-budget advances 409, the rest 400.
func writeManagerError(w http.ResponseWriter, err error, idle time.Duration) {
	switch {
	case errors.Is(err, ErrTooManySessions):
		// Sessions free up on completion or after the idle timeout;
		// half the reap horizon is an honest hint.
		w.Header().Set("Retry-After", strconv.Itoa(int(idle.Seconds()/2)+1))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error(), Retryable: true})
	case errors.Is(err, ErrManagerClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case errors.Is(err, ErrUnknownSession), errors.Is(err, ErrSessionDone):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrCompleted):
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// RegisterRoutes mounts the streaming-session API:
//
//	POST   /v1/sessions                    — create (429 past the cap)
//	POST   /v1/sessions/restore            — restore from a checkpoint
//	GET    /v1/sessions                    — list session statuses
//	GET    /v1/sessions/{id}               — one session's status
//	DELETE /v1/sessions/{id}               — cancel and remove
//	GET    /v1/sessions/{id}/frames        — stream frames (SSE when
//	        Accept: text/event-stream, chunked NDJSON otherwise);
//	        query: from=<seq> max=<n> wait=false
//	POST   /v1/sessions/{id}/advance       — step a manual session
//	POST   /v1/sessions/{id}/utilization   — push a live utilization
//	GET    /v1/sessions/{id}/checkpoint    — capture restorable state
func (m *Manager) RegisterRoutes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding session spec: %w", err))
			return
		}
		s, err := m.Create(spec)
		if err != nil {
			writeManagerError(w, err, m.opts.IdleTimeout)
			return
		}
		writeJSON(w, http.StatusCreated, s.Status())
	})

	mux.HandleFunc("POST /v1/sessions/restore", func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxCheckpointBody)
		var cp Checkpoint
		if err := json.NewDecoder(r.Body).Decode(&cp); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding checkpoint: %w", err))
			return
		}
		s, err := m.Restore(&cp)
		if err != nil {
			writeManagerError(w, err, m.opts.IdleTimeout)
			return
		}
		writeJSON(w, http.StatusCreated, s.Status())
	})

	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"sessions": m.List()})
	})

	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeManagerError(w, ErrUnknownSession, 0)
			return
		}
		s.touch()
		writeJSON(w, http.StatusOK, s.Status())
	})

	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := m.Cancel(r.PathValue("id")); err != nil {
			writeManagerError(w, err, 0)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /v1/sessions/{id}/advance", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeManagerError(w, ErrUnknownSession, 0)
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
		var body struct {
			Steps int `json:"steps"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding advance body: %w", err))
			return
		}
		if body.Steps == 0 {
			body.Steps = 1
		}
		n, last, err := s.Advance(r.Context(), body.Steps)
		if err != nil && n == 0 {
			writeManagerError(w, err, 0)
			return
		}
		resp := map[string]any{"stepped": n}
		if last != nil {
			resp["frame"] = last
		}
		if err != nil {
			resp["error"] = err.Error()
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /v1/sessions/{id}/utilization", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeManagerError(w, ErrUnknownSession, 0)
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
		var u workload.Utilization
		if err := json.NewDecoder(r.Body).Decode(&u); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding utilization: %w", err))
			return
		}
		if err := s.SetUtilization(r.Context(), u); err != nil {
			writeManagerError(w, err, 0)
			return
		}
		writeJSON(w, http.StatusOK, s.Status())
	})

	mux.HandleFunc("GET /v1/sessions/{id}/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeManagerError(w, ErrUnknownSession, 0)
			return
		}
		cp, err := s.Checkpoint(r.Context())
		if err != nil {
			writeManagerError(w, err, 0)
			return
		}
		writeJSON(w, http.StatusOK, cp)
	})

	mux.HandleFunc("GET /v1/sessions/{id}/frames", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeManagerError(w, ErrUnknownSession, 0)
			return
		}
		m.streamFrames(w, r, s)
	})
}

// parseUint reads a nonnegative integer query parameter.
func parseUint(r *http.Request, name string, def uint64) (uint64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("query %s=%q: %w", name, v, err)
	}
	return n, nil
}

// streamFrames follows a session's ring from the requested sequence
// number, in SSE framing when the client asks for text/event-stream and
// chunked NDJSON otherwise. The reader's pace never slows the stepping
// goroutine: a stalled consumer falls behind the ring and observes a
// gap record instead.
func (m *Manager) streamFrames(w http.ResponseWriter, r *http.Request, s *Session) {
	from, err := parseUint(r, "from", 1)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	max, err := parseUint(r, "max", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	wait := r.URL.Query().Get("wait") != "false"
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")

	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flush()

	emit := func(event string, v any) bool {
		if !sse && event != "frame" {
			// NDJSON marks non-frame records by their event key so a
			// line-oriented consumer can tell them from frames.
			v = map[string]any{event: v}
		}
		blob, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if sse {
			if event == "frame" {
				if f, ok := v.(Frame); ok {
					if _, err := fmt.Fprintf(w, "id: %d\n", f.Seq); err != nil {
						return false
					}
				}
			}
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, blob)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", blob)
		}
		if err != nil {
			return false
		}
		flush()
		return true
	}

	var sent uint64
	heartbeat := time.NewTimer(heartbeatInterval)
	defer heartbeat.Stop()
	for {
		s.touch()
		rd := s.ring.read(from)
		if rd.ok {
			if rd.skipped > 0 {
				m.framesDropped(rd.skipped)
				if !emit("gap", map[string]any{"dropped": rd.skipped, "resume_seq": rd.frame.Seq}) {
					return
				}
			}
			if !emit("frame", rd.frame) {
				return
			}
			from = rd.frame.Seq + 1
			sent++
			if max > 0 && sent >= max {
				return
			}
			continue
		}
		if rd.closed {
			emit("end", map[string]any{"reason": rd.reason, "error": rd.errMsg})
			return
		}
		if !wait {
			return
		}
		if !heartbeat.Stop() {
			select {
			case <-heartbeat.C:
			default:
			}
		}
		heartbeat.Reset(heartbeatInterval)
		select {
		case <-rd.wake:
		case <-heartbeat.C:
			if sse {
				if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
					return
				}
				flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}
