package stream_test

// End-to-end tests of the streaming session API over real HTTP: the
// brightd handler stack (sim.NewHandler + WithStreamManager) behind an
// httptest server, exercised the way a client would — create, advance,
// stream SSE/NDJSON frames, hit the admission cap, checkpoint, restore
// and compare the restored trajectory against the original.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bright/internal/sim"
	"bright/internal/stream"
)

// twin is the assembled serving stack under test.
type twin struct {
	t   *testing.T
	srv *httptest.Server
	mgr *stream.Manager
}

func newTwin(t *testing.T, opts stream.Options) *twin {
	t.Helper()
	engine := sim.New(sim.Options{Workers: 2, QueueDepth: 8, CacheSize: 16})
	mgr := stream.NewManager(opts)
	srv := httptest.NewServer(sim.NewHandler(engine, sim.WithStreamManager(mgr)))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := mgr.Shutdown(ctx); err != nil {
			t.Errorf("manager shutdown: %v", err)
		}
		if err := engine.Shutdown(ctx); err != nil {
			t.Errorf("engine shutdown: %v", err)
		}
	})
	return &twin{t: t, srv: srv, mgr: mgr}
}

// doJSON issues a request with a JSON body and decodes the JSON reply.
func (tw *twin) doJSON(method, path string, body, out any) *http.Response {
	tw.t.Helper()
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			tw.t.Fatal(err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, tw.srv.URL+path, rd)
	if err != nil {
		tw.t.Fatal(err)
	}
	resp, err := tw.srv.Client().Do(req)
	if err != nil {
		tw.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		tw.t.Fatalf("%s %s: reading body: %v", method, path, err)
	}
	if out != nil && len(blob) > 0 {
		if err := json.Unmarshal(blob, out); err != nil {
			tw.t.Fatalf("%s %s: decoding %q: %v", method, path, blob, err)
		}
	}
	return resp
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id    string
	event string
	data  string
}

// readSSE parses a text/event-stream body into events.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var (
		events []sseEvent
		cur    sseEvent
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, ":"):
			// keep-alive comment
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	if cur.event != "" || cur.data != "" {
		events = append(events, cur)
	}
	return events
}

// TestHTTPEndToEnd is the acceptance walkthrough: open a Burst-workload
// session, advance it, stream >= 20 frames over SSE, bounce off the
// admission cap with a 429, checkpoint, restore, and check the restored
// session's next frame matches the original's continuation.
func TestHTTPEndToEnd(t *testing.T) {
	tw := newTwin(t, stream.Options{MaxSessions: 2, RingSize: 128})

	// Create a manual Burst session (PDN on, coarse thermal grid).
	var st stream.Status
	resp := tw.doJSON("POST", "/v1/sessions", map[string]any{
		"nx": 22, "ny": 16,
		"dt_s":       2e-3,
		"max_frames": 40,
		"auto":       false,
		"workload":   map[string]any{"name": "burst", "period_s": 0.04, "duty": 0.5},
	}, &st)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	if st.ID == "" || st.State != "running" || st.Auto {
		t.Fatalf("created status: %+v", st)
	}
	id := st.ID

	// Advance 25 frames.
	var adv struct {
		Stepped int           `json:"stepped"`
		Frame   *stream.Frame `json:"frame"`
	}
	resp = tw.doJSON("POST", "/v1/sessions/"+id+"/advance", map[string]any{"steps": 25}, &adv)
	if resp.StatusCode != http.StatusOK || adv.Stepped != 25 || adv.Frame == nil || adv.Frame.Seq != 25 {
		t.Fatalf("advance: %d %+v", resp.StatusCode, adv)
	}
	if adv.Frame.MinVCacheV <= 0 || adv.Frame.MinVCacheV >= 1.0 {
		t.Fatalf("PDN rail voltage not in a frame: %+v", adv.Frame)
	}

	// Stream the first 20 frames as SSE.
	req, _ := http.NewRequest("GET", tw.srv.URL+"/v1/sessions/"+id+"/frames?from=1&max=20", nil)
	req.Header.Set("Accept", "text/event-stream")
	sresp, err := tw.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	events := readSSE(t, sresp.Body)
	if len(events) != 20 {
		t.Fatalf("streamed %d events, want 20", len(events))
	}
	for i, ev := range events {
		if ev.event != "frame" {
			t.Fatalf("event %d: %q", i, ev.event)
		}
		var f stream.Frame
		if err := json.Unmarshal([]byte(ev.data), &f); err != nil {
			t.Fatalf("event %d data: %v", i, err)
		}
		if f.Seq != uint64(i+1) || ev.id != fmt.Sprint(f.Seq) {
			t.Fatalf("event %d: seq %d id %q", i, f.Seq, ev.id)
		}
		if f.PeakTempC <= 27 || f.ChipPowerW < 0 {
			t.Fatalf("frame %d physics: %+v", i, f)
		}
	}

	// A second session fits under the cap; a third bounces with 429.
	var st2 stream.Status
	resp = tw.doJSON("POST", "/v1/sessions", map[string]any{
		"nx": 16, "ny": 12, "pdn": false, "auto": false, "max_frames": 5,
	}, &st2)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("second create: %d", resp.StatusCode)
	}
	var reject struct {
		Error     string `json:"error"`
		Retryable bool   `json:"retryable"`
	}
	resp = tw.doJSON("POST", "/v1/sessions", map[string]any{"nx": 16, "ny": 12}, &reject)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap create: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" || !reject.Retryable {
		t.Fatalf("429 missing retry hints: header=%q body=%+v",
			resp.Header.Get("Retry-After"), reject)
	}

	// Listing shows both sessions; deleting the spare frees its slot.
	var list struct {
		Sessions []stream.Status `json:"sessions"`
	}
	tw.doJSON("GET", "/v1/sessions", nil, &list)
	if len(list.Sessions) != 2 {
		t.Fatalf("listed %d sessions", len(list.Sessions))
	}
	if resp := tw.doJSON("DELETE", "/v1/sessions/"+st2.ID, nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}

	// Checkpoint the original, restore it as a new session.
	var cp stream.Checkpoint
	if resp := tw.doJSON("GET", "/v1/sessions/"+id+"/checkpoint", nil, &cp); resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint: %d", resp.StatusCode)
	}
	if cp.Step != 25 || len(cp.ThermalState) == 0 || len(cp.PDNState) == 0 {
		t.Fatalf("checkpoint shape: step=%d thermal=%d pdn=%d",
			cp.Step, len(cp.ThermalState), len(cp.PDNState))
	}
	var rst stream.Status
	if resp := tw.doJSON("POST", "/v1/sessions/restore", cp, &rst); resp.StatusCode != http.StatusCreated {
		t.Fatalf("restore: %d", resp.StatusCode)
	}
	if rst.NextSeq != 26 {
		t.Fatalf("restored next_seq %d, want 26", rst.NextSeq)
	}

	// The restored session's next frame must match the original's
	// continuation within tolerance.
	var advA, advB struct {
		Stepped int           `json:"stepped"`
		Frame   *stream.Frame `json:"frame"`
	}
	tw.doJSON("POST", "/v1/sessions/"+id+"/advance", map[string]any{"steps": 1}, &advA)
	tw.doJSON("POST", "/v1/sessions/"+rst.ID+"/advance", map[string]any{"steps": 1}, &advB)
	if advA.Frame == nil || advB.Frame == nil || advA.Frame.Seq != 26 || advB.Frame.Seq != 26 {
		t.Fatalf("continuation frames: %+v vs %+v", advA.Frame, advB.Frame)
	}
	rel := func(a, b float64) float64 {
		if a == b {
			return 0
		}
		return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
	}
	const tol = 1e-6
	if rel(advA.Frame.PeakTempC, advB.Frame.PeakTempC) > tol ||
		rel(advA.Frame.ArrayPowerW, advB.Frame.ArrayPowerW) > tol ||
		rel(advA.Frame.MinVCacheV, advB.Frame.MinVCacheV) > tol ||
		rel(advA.Frame.ArrayHeatW, advB.Frame.ArrayHeatW) > tol {
		t.Fatalf("restored trajectory diverged:\n  orig %+v\n  rest %+v", advA.Frame, advB.Frame)
	}

	// /v1/stats folds the stream aggregates in; /metrics exposes the
	// bright_stream_* series.
	var stats struct {
		Stream *stream.Stats `json:"stream"`
	}
	tw.doJSON("GET", "/v1/stats", nil, &stats)
	if stats.Stream == nil || stats.Stream.SessionsStarted != 3 || stats.Stream.AdmissionRejected != 1 {
		t.Fatalf("/v1/stats stream block: %+v", stats.Stream)
	}
	mresp, err := tw.srv.Client().Get(tw.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, series := range []string{
		"bright_stream_sessions_started_total 3",
		"bright_stream_admission_rejected_total 1",
		"bright_stream_sessions_active",
	} {
		if !strings.Contains(string(blob), series) {
			t.Fatalf("/metrics missing %q", series)
		}
	}
}

// waitForState polls a session's status until it reaches want.
func waitForState(t *testing.T, tw *twin, id, want string) stream.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st stream.Status
		resp := tw.doJSON("GET", "/v1/sessions/"+id, nil, &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status poll: %d", resp.StatusCode)
		}
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("session stuck in %q (want %q): %+v", st.State, want, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHTTPLateJoinerSeesGapAndEnd runs an auto session against a tiny
// ring to completion with no reader attached, then connects: the NDJSON
// stream must announce the dropped prefix as an explicit gap record,
// deliver the buffered tail, and finish with an end record.
func TestHTTPLateJoinerSeesGapAndEnd(t *testing.T) {
	tw := newTwin(t, stream.Options{MaxSessions: 1, RingSize: 8})

	var st stream.Status
	resp := tw.doJSON("POST", "/v1/sessions", map[string]any{
		"nx": 16, "ny": 12, "pdn": false,
		"dt_s": 1e-3, "max_frames": 40,
		"workload": map[string]any{"name": "steady"},
	}, &st)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	if !st.Auto {
		t.Fatalf("workload session should free-run: %+v", st)
	}
	waitForState(t, tw, st.ID, "completed")

	sresp, err := tw.srv.Client().Get(tw.srv.URL + "/v1/sessions/" + st.ID + "/frames?from=1")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("NDJSON content type %q", ct)
	}
	var (
		frames []stream.Frame
		gaps   int
		ends   int
	)
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		var rec struct {
			Seq uint64 `json:"seq"`
			Gap *struct {
				Dropped   uint64 `json:"dropped"`
				ResumeSeq uint64 `json:"resume_seq"`
			} `json:"gap"`
			End *struct {
				Reason string `json:"reason"`
			} `json:"end"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("NDJSON line %q: %v", line, err)
		}
		switch {
		case rec.End != nil:
			ends++
			if rec.End.Reason != "completed" {
				t.Fatalf("end reason %q", rec.End.Reason)
			}
		case rec.Gap != nil:
			gaps++
			if rec.Gap.Dropped != 32 || rec.Gap.ResumeSeq != 33 {
				t.Fatalf("gap record: %+v", rec.Gap)
			}
		default:
			var f stream.Frame
			if err := json.Unmarshal(line, &f); err != nil {
				t.Fatal(err)
			}
			frames = append(frames, f)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// 40 frames through an 8-deep ring: the late joiner gets one gap of
	// 32, the last 8 frames, then the end record.
	if gaps != 1 || ends != 1 || len(frames) != 8 {
		t.Fatalf("late joiner saw gaps=%d ends=%d frames=%d", gaps, ends, len(frames))
	}
	for i, f := range frames {
		if f.Seq != uint64(33+i) {
			t.Fatalf("tail frame %d has seq %d", i, f.Seq)
		}
	}
}

// TestHTTPSlowConsumerNeverBlocksStepping attaches an SSE reader that
// refuses to read while an auto session runs: the stepping loop must
// finish its full budget regardless (the ring absorbs the stall), and
// once the reader drains it sees a monotone sequence closed by an end
// event.
func TestHTTPSlowConsumerNeverBlocksStepping(t *testing.T) {
	tw := newTwin(t, stream.Options{MaxSessions: 1, RingSize: 8})

	var st stream.Status
	resp := tw.doJSON("POST", "/v1/sessions", map[string]any{
		"nx": 16, "ny": 12, "pdn": false,
		"dt_s": 1e-3, "max_frames": 60,
		"workload": map[string]any{"name": "burst"},
	}, &st)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}

	// Open the stream and stall: no reads until the session completes.
	req, _ := http.NewRequest("GET", tw.srv.URL+"/v1/sessions/"+st.ID+"/frames?from=1", nil)
	req.Header.Set("Accept", "text/event-stream")
	sresp, err := tw.srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()

	// The stalled consumer must not stop the stepper from finishing.
	fin := waitForState(t, tw, st.ID, "completed")
	if fin.Frames != 60 {
		t.Fatalf("session finished %d frames under a stalled reader", fin.Frames)
	}

	// Drain: every frame in order, an end event last.
	events := readSSE(t, sresp.Body)
	if len(events) == 0 {
		t.Fatal("no events after drain")
	}
	var lastSeq uint64
	for _, ev := range events[:len(events)-1] {
		switch ev.event {
		case "frame":
			var f stream.Frame
			if err := json.Unmarshal([]byte(ev.data), &f); err != nil {
				t.Fatal(err)
			}
			if f.Seq <= lastSeq {
				t.Fatalf("sequence not monotone: %d after %d", f.Seq, lastSeq)
			}
			lastSeq = f.Seq
		case "gap":
			// Acceptable: the stall may overflow the socket buffer and
			// the ring both.
		default:
			t.Fatalf("unexpected mid-stream event %q", ev.event)
		}
	}
	if end := events[len(events)-1]; end.event != "end" || !strings.Contains(end.data, "completed") {
		t.Fatalf("final event: %+v", end)
	}
	if lastSeq != 60 {
		t.Fatalf("drain ended at seq %d, want 60", lastSeq)
	}
}
