package stream

import (
	"testing"

	"bright/internal/testutil/leakcheck"
)

// TestMain enforces goroutine-neutrality for the streaming service:
// session run loops and the manager's janitor must die with their
// manager. This is the runtime twin of the goroutinelife analyzer.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
