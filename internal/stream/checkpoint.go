package stream

import (
	"fmt"

	"bright/internal/workload"
)

// CheckpointVersion is the current checkpoint format version.
const CheckpointVersion = 1

// Checkpoint is the complete portable state of a session between two
// frames: the resolved spec plus every integrator state vector. A
// checkpoint restored into a fresh session (possibly another brightd
// process) continues the trajectory exactly — the state vectors are
// float64 and encoding/json round-trips them losslessly (Go emits the
// shortest representation that parses back to the same bits).
type Checkpoint struct {
	Version int    `json:"version"`
	ID      string `json:"session_id"`
	// Spec is the scenario-expanded session spec; restore re-resolves
	// it, so defaults stay pinned to the values the session ran with.
	Spec  Spec    `json:"spec"`
	TimeS float64 `json:"time_s"`
	Step  int     `json:"step"`
	// FlowScale is the fault multiplier the thermal matrix was built
	// at; restore rebuilds at the same scale so the first step after
	// the checkpoint uses the same operator.
	FlowScale float64 `json:"flow_scale"`
	// ArrayHeatW is the electrochemical loss pending injection into the
	// next thermal step (W).
	ArrayHeatW float64 `json:"array_heat_w"`
	// LastLoadScale arms droop detection across the restore (-1 before
	// the first PDN step).
	LastLoadScale float64 `json:"last_load_scale"`
	// ManualUtil is the client-pushed utilization override, if any.
	ManualUtil *workload.Utilization `json:"manual_util,omitempty"`
	// ThermalState is the temperature vector (K per node).
	ThermalState []float64 `json:"thermal_state"`
	// PDNState is the grid voltage vector (V per node); absent when the
	// PDN co-simulation is off.
	PDNState []float64 `json:"pdn_state,omitempty"`
}

// Validate checks the checkpoint's self-consistency (state lengths are
// checked against the rebuilt sessions during restore).
func (cp *Checkpoint) Validate() error {
	if cp.Version != CheckpointVersion {
		return fmt.Errorf("stream: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	if cp.Step < 0 || cp.TimeS < 0 {
		return fmt.Errorf("stream: negative checkpoint clock (step=%d time=%g)", cp.Step, cp.TimeS)
	}
	if cp.FlowScale <= 0 || cp.FlowScale > 1 {
		return fmt.Errorf("stream: checkpoint flow scale %g out of (0,1]", cp.FlowScale)
	}
	if len(cp.ThermalState) == 0 {
		return fmt.Errorf("stream: checkpoint has no thermal state")
	}
	if cp.ArrayHeatW < 0 {
		return fmt.Errorf("stream: negative checkpoint array heat %g", cp.ArrayHeatW)
	}
	return nil
}

// buildCheckpoint runs on the session's run goroutine (between frames),
// so every engine vector is quiescent.
func (s *Session) buildCheckpoint() (*Checkpoint, error) {
	e := s.eng
	cp := &Checkpoint{
		Version:       CheckpointVersion,
		ID:            s.ID,
		Spec:          s.spec,
		TimeS:         e.time,
		Step:          e.step,
		FlowScale:     e.builtScale,
		ArrayHeatW:    e.heatW,
		LastLoadScale: e.lastLoadScale,
		ThermalState:  e.ts.State(),
	}
	if e.manualUtil != nil {
		u := *e.manualUtil
		cp.ManualUtil = &u
	}
	if e.pdnTS != nil {
		cp.PDNState = e.pdnTS.State()
	}
	return cp, nil
}

// restoreFrom loads a validated checkpoint into a freshly built engine
// (constructed with the checkpoint's flow scale).
func (e *engine) restoreFrom(cp *Checkpoint) error {
	if err := e.ts.Restore(cp.ThermalState, cp.TimeS, cp.Step); err != nil {
		return err
	}
	if e.pdnTS != nil {
		if len(cp.PDNState) == 0 {
			return fmt.Errorf("stream: checkpoint lacks PDN state but the restored spec enables the PDN")
		}
		if err := e.pdnTS.Restore(cp.PDNState); err != nil {
			return err
		}
	}
	e.time = cp.TimeS
	e.step = cp.Step
	e.heatW = cp.ArrayHeatW
	e.lastLoadScale = cp.LastLoadScale
	if cp.ManualUtil != nil {
		e.setManualUtil(*cp.ManualUtil)
	}
	return nil
}
