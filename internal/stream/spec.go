// Package stream is the streaming digital-twin service behind brightd:
// long-lived sessions that step the coupled transient electro-thermal
// model (thermal backward Euler + PDN transient + quasi-static flow-cell
// operating point) under a live workload, and stream per-frame
// temperature/voltage/power summaries to HTTP clients as SSE or chunked
// NDJSON. Sessions hold warm solver state between frames, keep a
// bounded ring of recent frames (drop-oldest backpressure for slow
// consumers), enforce a global admission cap and idle timeouts, and
// support checkpoint/restore of the full integrator state.
package stream

import (
	"fmt"
	"math"

	"bright/internal/core"
	"bright/internal/thermal"
	"bright/internal/workload"
)

// Fault kinds of the injection library.
const (
	// FaultPumpDegradation ramps the delivered flow down to FlowScale
	// between StartS and StartS+RampS (a wearing pump losing head).
	FaultPumpDegradation = "pump-degradation"
	// FaultChannelClog removes Channels of the die's microchannels from
	// service at StartS (debris blocking inlets). The lumped thermal
	// model carries one total flow, so the clog is modeled as the
	// equivalent flow reduction 1 - Channels/NChannels.
	FaultChannelClog = "channel-clog"
)

// Fault is one entry of a session's fault-injection schedule. Faults
// multiply into a flow scale applied to the nominal electrolyte flow;
// the thermal matrix is rebuilt (with state transplant) when the
// effective flow drifts past a threshold.
type Fault struct {
	// Kind selects the fault model (Fault* constants).
	Kind string `json:"kind"`
	// StartS is the onset time (s, simulated).
	StartS float64 `json:"start_s"`
	// RampS spreads the onset over a ramp (s); 0 is a step.
	RampS float64 `json:"ramp_s,omitempty"`
	// FlowScale is the terminal flow multiplier in (0, 1] for
	// pump-degradation.
	FlowScale float64 `json:"flow_scale,omitempty"`
	// Channels is the clogged channel count for channel-clog.
	Channels int `json:"channels,omitempty"`
}

func (fl Fault) validate(nChannels int) error {
	switch fl.Kind {
	case FaultPumpDegradation:
		if fl.FlowScale <= 0 || fl.FlowScale > 1 {
			return fmt.Errorf("stream: %s flow_scale %g out of (0,1]", fl.Kind, fl.FlowScale)
		}
	case FaultChannelClog:
		if fl.Channels <= 0 || fl.Channels >= nChannels {
			return fmt.Errorf("stream: %s channels %d out of [1,%d)", fl.Kind, fl.Channels, nChannels)
		}
	default:
		return fmt.Errorf("stream: unknown fault kind %q", fl.Kind)
	}
	if fl.StartS < 0 || fl.RampS < 0 {
		return fmt.Errorf("stream: %s negative timing (start=%g ramp=%g)", fl.Kind, fl.StartS, fl.RampS)
	}
	return nil
}

// scaleAt returns the fault's flow multiplier at simulated time t.
func (fl Fault) scaleAt(t float64, nChannels int) float64 {
	target := fl.FlowScale
	if fl.Kind == FaultChannelClog {
		target = 1 - float64(fl.Channels)/float64(nChannels)
	}
	switch {
	case t < fl.StartS:
		return 1
	case fl.RampS <= 0 || t >= fl.StartS+fl.RampS:
		return target
	default:
		frac := (t - fl.StartS) / fl.RampS
		return 1 + frac*(target-1)
	}
}

// WorkloadSpec names or embeds the utilization trace driving a session.
type WorkloadSpec struct {
	// Name selects a generator: "steady", "burst" or "migration".
	// Empty with a nil Trace means a manual session (utilization pushed
	// by the client).
	Name string `json:"name,omitempty"`
	// Util is the steady level (default 1).
	Util float64 `json:"util,omitempty"`
	// PeriodS and Duty shape the burst generator (defaults 0.04 s, 0.5).
	PeriodS float64 `json:"period_s,omitempty"`
	Duty    float64 `json:"duty,omitempty"`
	// DwellS and Background shape the migration generator (defaults
	// 0.02 s per core, 0.2 background).
	DwellS     float64 `json:"dwell_s,omitempty"`
	Background float64 `json:"background,omitempty"`
	// Trace is a custom piecewise-constant schedule; it overrides Name.
	Trace *workload.Trace `json:"trace,omitempty"`
}

// Spec is the POST /v1/sessions body. Zero-valued operating-point
// fields take the paper's nominal values (core.DefaultConfig), zero
// stepping fields take the session defaults; a Scenario pre-fills
// whatever the client leaves unset.
type Spec struct {
	// Operating point (defaults: 676 ml/min, 27 C, 1.0 V, K=1.5,
	// eta=0.5).
	FlowMLMin      float64 `json:"flow_ml_min,omitempty"`
	InletTempC     float64 `json:"inlet_temp_c,omitempty"`
	SupplyVoltage  float64 `json:"supply_voltage,omitempty"`
	ManifoldK      float64 `json:"manifold_k,omitempty"`
	PumpEfficiency float64 `json:"pump_efficiency,omitempty"`

	// DtS is the transient step and frame interval (s; default 1e-3).
	DtS float64 `json:"dt_s,omitempty"`
	// MaxFrames bounds the session length (default 200; capped by the
	// manager).
	MaxFrames int `json:"max_frames,omitempty"`
	// NX, NY override the thermal grid (defaults 44x32).
	NX int `json:"nx,omitempty"`
	NY int `json:"ny,omitempty"`
	// PDN toggles the power-grid transient co-simulation (default on).
	PDN *bool `json:"pdn,omitempty"`
	// Auto selects free-running stepping (default: on when a workload
	// or scenario is given, off for manual sessions). Manual sessions
	// step only on POST .../advance.
	Auto *bool `json:"auto,omitempty"`

	// Scenario names a canned configuration (see Scenarios).
	Scenario string        `json:"scenario,omitempty"`
	Workload *WorkloadSpec `json:"workload,omitempty"`
	Faults   []Fault       `json:"faults,omitempty"`
}

// resolved is a Spec with every default applied, ready to build an
// engine from.
type resolved struct {
	cfg       core.Config // ChipLoad unused; utilization drives power
	dt        float64
	maxFrames int
	nx, ny    int
	pdnOn     bool
	auto      bool
	trace     *workload.Trace // nil = manual utilization only
	faults    []Fault
	nChannels int
	scenario  string
}

// Scenarios lists the canned session configurations.
func Scenarios() []string {
	return []string{"dvfs-step", "hotspot-migration", "pump-degradation", "channel-clog"}
}

// applyScenario fills the spec's unset fields from the named scenario.
// Client-set fields win, so a scenario is a starting point, not a
// straitjacket.
func applyScenario(s *Spec) error {
	if s.Scenario == "" {
		return nil
	}
	var base Spec
	switch s.Scenario {
	case "dvfs-step":
		// A DVFS step: the chip runs throttled, then steps to full
		// frequency; the trace clamps so the step does not replay.
		base = Spec{
			DtS:       2e-3,
			MaxFrames: 150,
			Workload: &WorkloadSpec{Trace: &workload.Trace{
				Clamp: true,
				Phases: []workload.Phase{
					{Duration: 0.05, Util: workload.Utilization{Default: 0.3}},
					{Duration: 1.0, Util: workload.Utilization{Default: 1}},
				},
			}},
		}
	case "hotspot-migration":
		// Thermal management cycles the hot core around the die.
		base = Spec{
			DtS:       1e-3,
			MaxFrames: 160,
			Workload:  &WorkloadSpec{Name: "migration", DwellS: 0.02, Background: 0.2},
		}
	case "pump-degradation":
		// The pump loses head over a 0.1 s ramp down to 35% flow while
		// the chip runs flat out.
		base = Spec{
			DtS:       2e-3,
			MaxFrames: 100,
			Workload:  &WorkloadSpec{Name: "steady", Util: 1},
			Faults: []Fault{{
				Kind: FaultPumpDegradation, StartS: 0.02, RampS: 0.1, FlowScale: 0.35,
			}},
		}
	case "channel-clog":
		// A third of the microchannels clog at t=50 ms under a bursty
		// load.
		base = Spec{
			DtS:       2e-3,
			MaxFrames: 100,
			Workload:  &WorkloadSpec{Name: "burst", PeriodS: 0.04, Duty: 0.5},
			Faults: []Fault{{
				Kind: FaultChannelClog, StartS: 0.05, Channels: 30,
			}},
		}
	default:
		return fmt.Errorf("stream: unknown scenario %q (have %v)", s.Scenario, Scenarios())
	}
	if s.DtS == 0 {
		s.DtS = base.DtS
	}
	if s.MaxFrames == 0 {
		s.MaxFrames = base.MaxFrames
	}
	if s.Workload == nil {
		s.Workload = base.Workload
	}
	if s.Faults == nil {
		s.Faults = base.Faults
	}
	return nil
}

// trace materializes the workload spec into a utilization trace.
func (w *WorkloadSpec) trace() (*workload.Trace, error) {
	if w == nil {
		return nil, nil
	}
	if w.Trace != nil {
		if err := w.Trace.Validate(); err != nil {
			return nil, err
		}
		return w.Trace, nil
	}
	switch w.Name {
	case "":
		return nil, nil
	case "steady":
		util := w.Util
		if util == 0 {
			util = 1
		}
		if util < 0 || util > 1 {
			return nil, fmt.Errorf("stream: steady util %g out of [0,1]", util)
		}
		// The duration is nominal: a steady trace holds one level
		// regardless of wrap.
		return workload.Steady(util, 1), nil
	case "burst":
		period := w.PeriodS
		if period == 0 {
			period = 0.04
		}
		if period <= 0 {
			return nil, fmt.Errorf("stream: burst period %g s", period)
		}
		return workload.Burst(period, w.Duty), nil
	case "migration":
		dwell := w.DwellS
		if dwell == 0 {
			dwell = 0.02
		}
		if dwell <= 0 {
			return nil, fmt.Errorf("stream: migration dwell %g s", dwell)
		}
		bg := w.Background
		if bg < 0 || bg > 1 {
			return nil, fmt.Errorf("stream: migration background %g out of [0,1]", bg)
		}
		return workload.CoreMigration(power7Floorplan(), dwell, bg), nil
	default:
		return nil, fmt.Errorf("stream: unknown workload %q (want steady, burst, migration or a trace)", w.Name)
	}
}

// resolve validates the spec and applies every default.
func (s Spec) resolve(maxFramesCap int) (*resolved, error) {
	if err := applyScenario(&s); err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	if s.FlowMLMin != 0 {
		cfg.FlowMLMin = s.FlowMLMin
	}
	if s.InletTempC != 0 {
		cfg.InletTempC = s.InletTempC
	}
	if s.SupplyVoltage != 0 {
		cfg.SupplyVoltage = s.SupplyVoltage
	}
	if s.ManifoldK != 0 {
		cfg.ManifoldK = s.ManifoldK
	}
	if s.PumpEfficiency != 0 {
		cfg.PumpEfficiency = s.PumpEfficiency
	}
	if cfg.FlowMLMin <= 0 || cfg.SupplyVoltage <= 0 {
		return nil, fmt.Errorf("stream: nonpositive flow/voltage")
	}
	if cfg.InletTempC < 0 || cfg.InletTempC > 90 {
		return nil, fmt.Errorf("stream: inlet %g C outside window", cfg.InletTempC)
	}
	if cfg.PumpEfficiency <= 0 || cfg.PumpEfficiency > 1 {
		return nil, fmt.Errorf("stream: pump efficiency %g out of (0,1]", cfg.PumpEfficiency)
	}
	r := &resolved{
		cfg:       cfg,
		dt:        s.DtS,
		maxFrames: s.MaxFrames,
		nx:        s.NX,
		ny:        s.NY,
		pdnOn:     s.PDN == nil || *s.PDN,
		scenario:  s.Scenario,
		faults:    s.Faults,
		nChannels: power7NChannels(),
	}
	if r.dt == 0 {
		r.dt = 1e-3
	}
	if r.dt <= 0 || math.IsNaN(r.dt) || r.dt > 1 {
		return nil, fmt.Errorf("stream: step dt=%g s out of (0,1]", r.dt)
	}
	if r.maxFrames == 0 {
		r.maxFrames = 200
	}
	if r.maxFrames < 1 || r.maxFrames > maxFramesCap {
		return nil, fmt.Errorf("stream: max_frames %d out of [1,%d]", r.maxFrames, maxFramesCap)
	}
	if r.nx == 0 {
		r.nx = 44
	}
	if r.ny == 0 {
		r.ny = 32
	}
	if r.nx < 4 || r.ny < 4 || r.nx > 512 || r.ny > 512 {
		return nil, fmt.Errorf("stream: thermal grid %dx%d out of range", r.nx, r.ny)
	}
	tr, err := s.Workload.trace()
	if err != nil {
		return nil, err
	}
	r.trace = tr
	// Auto default: free-run when a workload drives the session, wait
	// for advance calls when the client drives it.
	if s.Auto != nil {
		r.auto = *s.Auto
	} else {
		r.auto = tr != nil
	}
	for _, fl := range r.faults {
		if err := fl.validate(r.nChannels); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// flowScaleAt combines the fault schedule into one flow multiplier at
// time t, floored at 5% (the models break down at zero flow; a fully
// dead pump is outside the twin's envelope).
func (r *resolved) flowScaleAt(t float64) float64 {
	scale := 1.0
	for _, fl := range r.faults {
		scale *= fl.scaleAt(t, r.nChannels)
	}
	return math.Max(scale, 0.05)
}

// power7NChannels reads the Table II channel count off the thermal spec
// so the clog model shares its source of truth (the flow/temperature
// arguments are placeholders; only the geometry is read).
func power7NChannels() int {
	return thermal.Power7ChannelSpec(1, 300, thermal.VanadiumCoolant()).NChannels
}
