package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"bright/internal/workload"
)

// Session outcomes / states.
const (
	StateRunning     = "running"
	StateCompleted   = "completed"
	StateCanceled    = "canceled"
	StateIdleTimeout = "idle-timeout"
	StateError       = "error"
)

// ErrSessionDone reports a command sent to a session whose run loop has
// exited (canceled or reaped); finished-but-alive sessions still accept
// checkpoint and status calls.
var ErrSessionDone = errors.New("stream: session is gone")

// ErrCompleted reports an advance on a session that already reached its
// frame budget.
var ErrCompleted = errors.New("stream: session completed its frame budget")

// Status is the JSON view of a session's lifecycle state.
type Status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Frames is the number of frames emitted so far; NextSeq is
	// Frames+1 except after restore (the count restarts, the sequence
	// continues).
	Frames  int    `json:"frames"`
	NextSeq uint64 `json:"next_seq"`
	// Overwritten counts ring frames dropped before any reader at all
	// consumed them (drop-oldest).
	Overwritten uint64  `json:"frames_overwritten"`
	TimeS       float64 `json:"time_s"`
	DtS         float64 `json:"dt_s"`
	MaxFrames   int     `json:"max_frames"`
	Auto        bool    `json:"auto"`
	Scenario    string  `json:"scenario,omitempty"`
	// ThermalRebuilds counts fault-driven matrix reassemblies.
	ThermalRebuilds int `json:"thermal_rebuilds"`
	// IdleS is the time since the last client interaction (s).
	IdleS float64 `json:"idle_s"`
	// LastFrame is the most recent frame summary, if any.
	LastFrame *Frame `json:"last_frame,omitempty"`
}

// Session is one live streaming co-simulation. All numerical state is
// owned by the run goroutine; clients interact through the manager's
// HTTP layer, which serializes commands onto the run loop.
type Session struct {
	ID string

	mgr  *Manager
	spec Spec // scenario-expanded, for checkpoints
	res  *resolved
	eng  *engine
	ring *frameRing

	cmds   chan func()
	done   chan struct{} // closed when the run loop exits
	cancel context.CancelFunc
	// runCtx is the run loop's context, captured so command closures
	// (executed on the run goroutine) step under the session lifetime
	// rather than the submitting request's.
	runCtx context.Context

	mu           sync.Mutex
	state        string
	errMsg       string
	cancelReason string // set before cancel(); StateCanceled default
	lastTouch    time.Time
	failed       error
	// stepCount/rebuilds mirror the engine's counters under mu so
	// Status (HTTP goroutines) never touches run-loop-owned state.
	stepCount int
	rebuilds  int
}

func newSession(mgr *Manager, id string, spec Spec, res *resolved, eng *engine, firstSeq uint64) *Session {
	return &Session{
		ID:        id,
		mgr:       mgr,
		spec:      spec,
		res:       res,
		eng:       eng,
		ring:      newFrameRing(mgr.opts.RingSize, firstSeq),
		cmds:      make(chan func()),
		done:      make(chan struct{}),
		state:     StateRunning,
		lastTouch: time.Now(),
		stepCount: eng.step, // nonzero on restore
	}
}

// touch refreshes the idle clock.
func (s *Session) touch() {
	s.mu.Lock()
	s.lastTouch = time.Now()
	s.mu.Unlock()
}

func (s *Session) idleFor(now time.Time) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return now.Sub(s.lastTouch)
}

// cancelWith records why the session is being torn down and cancels its
// context; the run loop reports the outcome.
func (s *Session) cancelWith(reason string) {
	s.mu.Lock()
	if s.cancelReason == "" {
		s.cancelReason = reason
	}
	s.mu.Unlock()
	s.cancel()
}

// finish transitions a running session to a terminal state (first
// transition wins) and closes the frame ring so readers drain and end.
func (s *Session) finish(state, errMsg string) {
	s.mu.Lock()
	if s.state != StateRunning {
		s.mu.Unlock()
		return
	}
	s.state = state
	s.errMsg = errMsg
	s.mu.Unlock()
	s.ring.close(state, errMsg)
	s.mgr.sessionEnded(state)
}

// run is the session's stepping goroutine: it owns the engine, steps
// frames (continuously in auto mode, on advance commands otherwise) and
// executes client commands between frames. After the frame budget is
// exhausted the loop stays alive to serve checkpoint/status until the
// session is canceled or idle-reaped.
func (s *Session) run(ctx context.Context) {
	defer close(s.done)
	s.runCtx = ctx
	for {
		// Commands first, so advance/utilization/checkpoint interleave
		// with auto stepping.
		select {
		case fn := <-s.cmds:
			fn()
			continue
		case <-ctx.Done():
			s.finishCanceled()
			return
		default:
		}
		if s.autoStepPending() {
			if _, err := s.stepOnce(ctx); err != nil {
				if ctx.Err() != nil {
					s.finishCanceled()
					return
				}
				s.fail(err)
			}
			continue
		}
		// Budget exhausted (or manual session idle): mark auto sessions
		// completed, then block until a command or teardown arrives.
		if s.res.auto {
			s.finish(StateCompleted, "")
		}
		select {
		case fn := <-s.cmds:
			fn()
		case <-ctx.Done():
			s.finishCanceled()
			return
		}
	}
}

func (s *Session) finishCanceled() {
	s.mu.Lock()
	reason := s.cancelReason
	s.mu.Unlock()
	if reason == "" {
		reason = StateCanceled
	}
	s.finish(reason, "")
}

func (s *Session) autoStepPending() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res.auto && s.failed == nil && s.state == StateRunning && s.stepCount < s.res.maxFrames
}

func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.failed == nil {
		s.failed = err
	}
	s.mu.Unlock()
	s.finish(StateError, err.Error())
}

// stepOnce advances the engine one frame and publishes it. Run-loop
// only.
func (s *Session) stepOnce(ctx context.Context) (Frame, error) {
	rebuildsBefore := s.eng.rebuilds
	f, err := s.eng.stepFrame(ctx)
	if err != nil {
		return Frame{}, err
	}
	f.Seq = s.ring.push(f)
	s.mu.Lock()
	s.stepCount = s.eng.step
	s.rebuilds = s.eng.rebuilds
	s.mu.Unlock()
	s.mgr.frameEmitted(s.eng.rebuilds - rebuildsBefore)
	return f, nil
}

// do schedules fn onto the run loop, failing fast when the loop has
// exited or the caller gives up.
func (s *Session) do(ctx context.Context, fn func()) error {
	select {
	case s.cmds <- fn:
		return nil
	case <-s.done:
		return ErrSessionDone
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Advance steps a session up to steps frames synchronously, returning
// the number stepped and the last frame. It is how manual sessions are
// driven; on auto sessions it simply runs ahead of the free-running
// loop. Stepping past the frame budget returns ErrCompleted.
func (s *Session) Advance(ctx context.Context, steps int) (int, *Frame, error) {
	if steps < 1 {
		return 0, nil, fmt.Errorf("stream: advance steps %d < 1", steps)
	}
	s.touch()
	type reply struct {
		n    int
		last *Frame
		err  error
	}
	ch := make(chan reply, 1)
	err := s.do(ctx, func() {
		var rep reply
		for i := 0; i < steps; i++ {
			s.mu.Lock()
			failed, state, exhausted := s.failed, s.state, s.stepCount >= s.res.maxFrames
			s.mu.Unlock()
			if failed != nil {
				rep.err = failed
				break
			}
			if state != StateRunning || exhausted {
				if rep.n == 0 {
					rep.err = ErrCompleted
				}
				break
			}
			// Step under the session context: the step outlives an
			// abandoned request but dies with the session.
			f, err := s.stepOnce(s.runCtx)
			if err != nil {
				if s.runCtx.Err() == nil {
					s.fail(err)
				}
				rep.err = err
				break
			}
			rep.n++
			rep.last = &f
		}
		if rep.err == nil && s.eng.step >= s.res.maxFrames {
			// The budget is done; terminal for auto and manual alike.
			s.finish(StateCompleted, "")
		}
		ch <- rep
	})
	if err != nil {
		return 0, nil, err
	}
	select {
	case rep := <-ch:
		return rep.n, rep.last, rep.err
	case <-ctx.Done():
		return 0, nil, ctx.Err()
	}
}

// SetUtilization installs a client-pushed utilization override: the
// next frames use it instead of the trace (until the next push).
func (s *Session) SetUtilization(ctx context.Context, u workload.Utilization) error {
	if err := u.Validate(); err != nil {
		return err
	}
	s.touch()
	ch := make(chan struct{})
	err := s.do(ctx, func() {
		s.eng.setManualUtil(u)
		close(ch)
	})
	if err != nil {
		return err
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Checkpoint captures the full integrator state between frames. It
// works on running and finished sessions alike (as long as the run
// loop is alive, i.e. the session was not canceled or reaped).
func (s *Session) Checkpoint(ctx context.Context) (*Checkpoint, error) {
	s.touch()
	type reply struct {
		cp  *Checkpoint
		err error
	}
	ch := make(chan reply, 1)
	err := s.do(ctx, func() {
		cp, err := s.buildCheckpoint()
		ch <- reply{cp, err}
	})
	if err != nil {
		return nil, err
	}
	select {
	case rep := <-ch:
		return rep.cp, rep.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Status snapshots the session without touching the run loop.
func (s *Session) Status() Status {
	next, overwritten, last := s.ring.snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		ID:          s.ID,
		State:       s.state,
		Error:       s.errMsg,
		NextSeq:     next,
		Overwritten: overwritten,
		DtS:         s.res.dt,
		MaxFrames:   s.res.maxFrames,
		Auto:        s.res.auto,
		Scenario:    s.res.scenario,
		IdleS:       time.Since(s.lastTouch).Seconds(),
		LastFrame:   last,
	}
	if last != nil {
		st.TimeS = last.TimeS
	}
	// next-1 counts every step of the trajectory, including frames
	// emitted before a checkpoint/restore (the sequence continues).
	st.Frames = int(next - 1)
	st.ThermalRebuilds = s.rebuilds
	return st
}
