package stream

import (
	"sync"
	"testing"
)

func TestRingDropOldest(t *testing.T) {
	r := newFrameRing(4, 1)
	for i := 0; i < 10; i++ {
		seq := r.push(Frame{TimeS: float64(i)})
		if seq != uint64(i+1) {
			t.Fatalf("push %d got seq %d", i, seq)
		}
	}
	// Frames 1..6 are gone; 7..10 remain.
	rd := r.read(1)
	if !rd.ok || rd.skipped != 6 || rd.frame.Seq != 7 {
		t.Fatalf("read(1): ok=%v skipped=%d seq=%d, want gap of 6 to seq 7",
			rd.ok, rd.skipped, rd.frame.Seq)
	}
	rd = r.read(10)
	if !rd.ok || rd.skipped != 0 || rd.frame.Seq != 10 {
		t.Fatalf("read(10): %+v", rd)
	}
	// Next unproduced frame: park.
	rd = r.read(11)
	if rd.ok || rd.closed {
		t.Fatalf("read(11) should park, got %+v", rd)
	}
	next, overwritten, last := r.snapshot()
	if next != 11 || overwritten != 6 || last == nil || last.Seq != 10 {
		t.Fatalf("snapshot next=%d overwritten=%d last=%v", next, overwritten, last)
	}
}

func TestRingCloseWakesAndDrains(t *testing.T) {
	r := newFrameRing(4, 1)
	r.push(Frame{})
	rd := r.read(2)
	if rd.ok || rd.closed {
		t.Fatal("expected park")
	}
	done := make(chan struct{})
	go func() {
		<-rd.wake
		close(done)
	}()
	r.close(StateCompleted, "")
	<-done
	// Buffered frames stay readable after close.
	if rd := r.read(1); !rd.ok || rd.frame.Seq != 1 {
		t.Fatalf("read(1) after close: %+v", rd)
	}
	if rd := r.read(2); rd.ok || !rd.closed || rd.reason != StateCompleted {
		t.Fatalf("read(2) after close: %+v", rd)
	}
	// Idempotent: the first reason wins.
	r.close(StateError, "boom")
	if rd := r.read(2); rd.reason != StateCompleted || rd.errMsg != "" {
		t.Fatalf("second close overwrote: %+v", rd)
	}
}

func TestRingRestoredStartsEmpty(t *testing.T) {
	// A restored session's ring starts at the checkpoint's next
	// sequence with nothing buffered; a reader asking for history parks
	// and then sees the gap once frames flow again.
	r := newFrameRing(4, 21)
	rd := r.read(1)
	if rd.ok {
		t.Fatalf("empty restored ring returned a frame: %+v", rd)
	}
	seq := r.push(Frame{})
	if seq != 21 {
		t.Fatalf("restored ring first seq %d, want 21", seq)
	}
	rd = r.read(1)
	if !rd.ok || rd.skipped != 20 || rd.frame.Seq != 21 {
		t.Fatalf("read(1) after restore push: %+v", rd)
	}
}

// TestRingConcurrentProducerConsumer exercises the ring under -race: a
// fast producer must never block on stalled consumers, and consumers
// must observe a strictly increasing sequence with explicit gaps.
func TestRingConcurrentProducerConsumer(t *testing.T) {
	r := newFrameRing(8, 1)
	const frames = 500
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var at uint64 = 1
			lastSeq := uint64(0)
			for {
				rd := r.read(at)
				if rd.ok {
					if rd.frame.Seq <= lastSeq {
						t.Errorf("sequence went backwards: %d after %d", rd.frame.Seq, lastSeq)
						return
					}
					lastSeq = rd.frame.Seq
					at = rd.frame.Seq + 1
					continue
				}
				if rd.closed {
					return
				}
				<-rd.wake
			}
		}()
	}
	for i := 0; i < frames; i++ {
		r.push(Frame{TimeS: float64(i)})
	}
	r.close(StateCompleted, "")
	wg.Wait()
}
