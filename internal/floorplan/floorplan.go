// Package floorplan provides 2D chip floorplans, unit-kind power maps and
// rasterization onto simulation grids. It carries the IBM POWER7+
// geometry used in the paper's case study (Fig. 4): a 26.55 mm x
// 21.34 mm die with 8 cores, 8 L2 slices, 2 central L3 banks, logic
// strips and I/O bands, with a 26.7 W/cm2 peak power density and
// 1 W/cm2 average cache density.
package floorplan

import (
	"fmt"
	"math"

	"bright/internal/mesh"
)

// UnitKind classifies a floorplan unit for power assignment and for the
// cache mask of the PDN experiment.
type UnitKind int

const (
	// Core is a processor core (the thermal hotspots).
	Core UnitKind = iota
	// L2 is a per-core L2 cache slice.
	L2
	// L3 is a shared last-level cache bank.
	L3
	// Logic is miscellaneous uncore logic (memory controllers, SMP
	// links, accelerators).
	Logic
	// IO is an I/O pad band.
	IO
	numKinds
)

// String implements fmt.Stringer.
func (k UnitKind) String() string {
	switch k {
	case Core:
		return "Core"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case Logic:
		return "Logic"
	case IO:
		return "I/O"
	default:
		return fmt.Sprintf("UnitKind(%d)", int(k))
	}
}

// IsCache reports whether the unit kind belongs to the cache region
// powered by the microfluidic array in the paper's case study.
func (k UnitKind) IsCache() bool { return k == L2 || k == L3 }

// Rect is an axis-aligned rectangle in die coordinates (meters), with
// (X, Y) the lower-left corner.
type Rect struct {
	X, Y, W, H float64
}

// Area returns the rectangle area (m2).
func (r Rect) Area() float64 { return r.W * r.H }

// Contains reports whether the point (x, y) lies inside the rectangle
// (inclusive lower/left edges, exclusive upper/right).
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H
}

// Overlap returns the overlapping area of two rectangles.
func (r Rect) Overlap(o Rect) float64 {
	w := math.Min(r.X+r.W, o.X+o.W) - math.Max(r.X, o.X)
	h := math.Min(r.Y+r.H, o.Y+o.H) - math.Max(r.Y, o.Y)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Unit is one named floorplan block.
type Unit struct {
	Name string
	Kind UnitKind
	Rect Rect
}

// Floorplan is a complete, non-overlapping tiling of a rectangular die.
type Floorplan struct {
	Name          string
	Width, Height float64 // die dimensions, m
	Units         []Unit
}

// Area returns the die area (m2).
func (f *Floorplan) Area() float64 { return f.Width * f.Height }

// Validate checks that every unit lies within the die, that units do not
// overlap, and that the tiling covers the die to within tol (relative).
func (f *Floorplan) Validate(tol float64) error {
	if f.Width <= 0 || f.Height <= 0 {
		return fmt.Errorf("floorplan %q: nonpositive die %gx%g", f.Name, f.Width, f.Height)
	}
	if tol <= 0 {
		tol = 1e-6
	}
	total := 0.0
	for i, u := range f.Units {
		r := u.Rect
		if r.W <= 0 || r.H <= 0 {
			return fmt.Errorf("floorplan %q: unit %q has nonpositive size", f.Name, u.Name)
		}
		if r.X < -tol*f.Width || r.Y < -tol*f.Height ||
			r.X+r.W > f.Width*(1+tol) || r.Y+r.H > f.Height*(1+tol) {
			return fmt.Errorf("floorplan %q: unit %q exceeds die bounds", f.Name, u.Name)
		}
		total += r.Area()
		for j := i + 1; j < len(f.Units); j++ {
			if ov := r.Overlap(f.Units[j].Rect); ov > tol*f.Area() {
				return fmt.Errorf("floorplan %q: units %q and %q overlap by %g m2",
					f.Name, u.Name, f.Units[j].Name, ov)
			}
		}
	}
	if math.Abs(total-f.Area()) > tol*f.Area()*10 {
		return fmt.Errorf("floorplan %q: units cover %g m2 of %g m2 die",
			f.Name, total, f.Area())
	}
	return nil
}

// UnitAt returns the unit containing the point, or nil outside all units.
func (f *Floorplan) UnitAt(x, y float64) *Unit {
	for i := range f.Units {
		if f.Units[i].Rect.Contains(x, y) {
			return &f.Units[i]
		}
	}
	return nil
}

// KindArea returns the summed area (m2) of all units of the given kind.
func (f *Floorplan) KindArea(kind UnitKind) float64 {
	s := 0.0
	for _, u := range f.Units {
		if u.Kind == kind {
			s += u.Rect.Area()
		}
	}
	return s
}

// CacheArea returns the total L2+L3 area (m2).
func (f *Floorplan) CacheArea() float64 { return f.KindArea(L2) + f.KindArea(L3) }

// PowerMap assigns a power density (W/m2) to each unit kind.
type PowerMap map[UnitKind]float64

// TotalPower integrates the power map over the floorplan (W).
func (f *Floorplan) TotalPower(pm PowerMap) float64 {
	s := 0.0
	for _, u := range f.Units {
		s += pm[u.Kind] * u.Rect.Area()
	}
	return s
}

// Rasterize samples the unit power densities onto a grid covering the
// die, conserving per-unit power by area-weighted overlap: each cell
// receives the overlap-weighted mean density of the units it intersects.
func (f *Floorplan) Rasterize(g *mesh.Grid2D, pm PowerMap) *mesh.Field2D {
	field := mesh.NewField2D(g)
	for j := 0; j < g.NY(); j++ {
		for i := 0; i < g.NX(); i++ {
			cell := Rect{
				X: g.X.Edges[i], Y: g.Y.Edges[j],
				W: g.X.Widths[i], H: g.Y.Widths[j],
			}
			acc := 0.0
			for _, u := range f.Units {
				if ov := cell.Overlap(u.Rect); ov > 0 {
					acc += pm[u.Kind] * ov
				}
			}
			field.Set(i, j, acc/cell.Area())
		}
	}
	return field
}

// RasterizeMask returns a grid field that is 1 where the cell center
// falls inside a unit satisfying pred and 0 elsewhere (used for the
// cache-only PDN load of Fig. 8).
func (f *Floorplan) RasterizeMask(g *mesh.Grid2D, pred func(UnitKind) bool) *mesh.Field2D {
	field := mesh.NewField2D(g)
	for j := 0; j < g.NY(); j++ {
		for i := 0; i < g.NX(); i++ {
			u := f.UnitAt(g.X.Centers[i], g.Y.Centers[j])
			if u != nil && pred(u.Kind) {
				field.Set(i, j, 1)
			}
		}
	}
	return field
}
