package floorplan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bright/internal/mesh"
)

func quickConfig(seed int64, max int) *quick.Config {
	return &quick.Config{MaxCount: max, Rand: rand.New(rand.NewSource(seed))}
}

// TestQuickUnitAtAgreesWithRects: for random points on the die, UnitAt
// returns a unit whose rectangle actually contains the point.
func TestQuickUnitAtAgreesWithRects(t *testing.T) {
	f := Power7()
	fn := func(xr, yr uint16) bool {
		x := float64(xr) / 65535 * f.Width
		y := float64(yr) / 65535 * f.Height
		u := f.UnitAt(x, y)
		if u == nil {
			// Points exactly on the top/right die edge fall outside the
			// half-open rectangles; everywhere else must be covered.
			return x >= f.Width*(1-1e-4) || y >= f.Height*(1-1e-4)
		}
		return u.Rect.Contains(x, y)
	}
	if err := quick.Check(fn, quickConfig(31, 500)); err != nil {
		t.Error(err)
	}
}

// TestQuickRasterizeConservesPower on random grid resolutions.
func TestQuickRasterizeConservesPower(t *testing.T) {
	f := Power7()
	pm := Power7FullLoad()
	want := f.TotalPower(pm)
	fn := func(nxr, nyr uint8) bool {
		nx := 4 + int(nxr)%60
		ny := 4 + int(nyr)%60
		g := mesh.NewUniformGrid2D(f.Width, f.Height, nx, ny)
		got := f.Rasterize(g, pm).Integrate()
		d := got - want
		if d < 0 {
			d = -d
		}
		return d <= 1e-9*want
	}
	if err := quick.Check(fn, quickConfig(32, 40)); err != nil {
		t.Error(err)
	}
}

// TestQuickManyCoreAlwaysTiles: every accepted tiling validates and
// conserves the die area.
func TestQuickManyCoreAlwaysTiles(t *testing.T) {
	fn := func(rowsR, colsR, fracR uint8) bool {
		rows := 1 + int(rowsR)%8
		cols := 2 * (1 + int(colsR)%6)
		frac := 0.1 + 0.8*float64(fracR)/255
		f, err := ManyCoreWithCoreFraction(rows, cols, frac)
		if err != nil {
			return false
		}
		return f.Validate(1e-9) == nil
	}
	if err := quick.Check(fn, quickConfig(33, 60)); err != nil {
		t.Error(err)
	}
}

// TestQuickOverlapSymmetric: rectangle overlap is commutative and
// bounded by each rectangle's area.
func TestQuickOverlapSymmetric(t *testing.T) {
	fn := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := Rect{float64(ax), float64(ay), 1 + float64(aw), 1 + float64(ah)}
		b := Rect{float64(bx), float64(by), 1 + float64(bw), 1 + float64(bh)}
		o1 := a.Overlap(b)
		o2 := b.Overlap(a)
		if o1 != o2 {
			return false
		}
		return o1 >= 0 && o1 <= a.Area()+1e-12 && o1 <= b.Area()+1e-12
	}
	if err := quick.Check(fn, quickConfig(34, 400)); err != nil {
		t.Error(err)
	}
}
