package floorplan

import (
	"fmt"

	"bright/internal/units"
)

// ManyCore generates a synthetic tiled many-core floorplan on the
// POWER7+ die outline: rows x cols core tiles, each with an L2 slice on
// its right third, a central L3 band, and logic/IO rims. It exercises
// the library beyond the fixed POWER7+ layout — the paper's conclusion
// argues for "improved architectures that minimize data motion", i.e.
// many smaller, denser-cached tiles; this generator builds them.
func ManyCore(rows, cols int) (*Floorplan, error) {
	return ManyCoreWithCoreFraction(rows, cols, 2.0/3.0)
}

// ManyCoreWithCoreFraction generates the tiled floorplan with a custom
// core share of each tile (the rest is L2). Lower core fractions model
// the paper's "educated compromises": smaller cores with bigger caches
// reduce the chip's power density toward full microfluidic powering.
func ManyCoreWithCoreFraction(rows, cols int, coreFrac float64) (*Floorplan, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("floorplan: invalid tiling %dx%d", rows, cols)
	}
	if coreFrac <= 0 || coreFrac >= 1 {
		return nil, fmt.Errorf("floorplan: core fraction %g out of (0,1)", coreFrac)
	}
	if rows*cols > 256 {
		return nil, fmt.Errorf("floorplan: %d tiles exceed the generator's 256 limit", rows*cols)
	}
	w, h := Power7Width, Power7Height
	rim := 1.5 * units.Millimeter  // logic rims left/right
	band := 2.0 * units.Millimeter // IO bottom, logic top
	l3 := 3.5 * units.Millimeter   // central L3 column
	f := &Floorplan{
		Name:   fmt.Sprintf("manycore-%dx%d", rows, cols),
		Width:  w,
		Height: h,
	}
	inW := w - 2*rim - l3
	inH := h - 2*band
	if inW <= 0 || inH <= 0 {
		return nil, fmt.Errorf("floorplan: die too small for rims")
	}
	f.Units = append(f.Units,
		Unit{Name: "RIM_L", Kind: Logic, Rect: Rect{0, band, rim, inH}},
		Unit{Name: "RIM_R", Kind: Logic, Rect: Rect{w - rim, band, rim, inH}},
		Unit{Name: "TOP", Kind: Logic, Rect: Rect{0, h - band, w, band}},
		Unit{Name: "IO", Kind: IO, Rect: Rect{0, 0, w, band}},
		Unit{Name: "L3C", Kind: L3, Rect: Rect{rim + inW/2, band, l3, inH}},
	)
	// Tiles split between the two halves around the L3 column.
	halfW := inW / 2
	if cols%2 != 0 {
		return nil, fmt.Errorf("floorplan: cols must be even to split around the L3 column")
	}
	tileW := halfW / float64(cols/2)
	tileH := inH / float64(rows)
	coreW := tileW * coreFrac
	tile := func(n int, x, y float64) {
		f.Units = append(f.Units,
			Unit{Name: fmt.Sprintf("CORE%d", n), Kind: Core, Rect: Rect{x, y, coreW, tileH}},
			Unit{Name: fmt.Sprintf("L2_%d", n), Kind: L2, Rect: Rect{x + coreW, y, tileW - coreW, tileH}},
		)
	}
	n := 0
	for r := 0; r < rows; r++ {
		y := band + float64(r)*tileH
		for c := 0; c < cols/2; c++ {
			tile(n, rim+float64(c)*tileW, y)
			n++
			tile(n, rim+inW/2+l3+float64(c)*tileW, y)
			n++
		}
	}
	if err := f.Validate(1e-9); err != nil {
		return nil, fmt.Errorf("floorplan: generated %s invalid: %w", f.Name, err)
	}
	return f, nil
}
