package floorplan

import (
	"testing"

	"bright/internal/mesh"
)

func TestManyCoreGenerates(t *testing.T) {
	for _, tc := range []struct{ rows, cols, cores int }{
		{2, 4, 8},
		{4, 4, 16},
		{4, 8, 32},
		{8, 8, 64},
	} {
		f, err := ManyCore(tc.rows, tc.cols)
		if err != nil {
			t.Fatalf("%dx%d: %v", tc.rows, tc.cols, err)
		}
		if err := f.Validate(1e-9); err != nil {
			t.Fatalf("%dx%d: %v", tc.rows, tc.cols, err)
		}
		cores := 0
		l2s := 0
		for _, u := range f.Units {
			switch u.Kind {
			case Core:
				cores++
			case L2:
				l2s++
			}
		}
		if cores != tc.cores || l2s != tc.cores {
			t.Fatalf("%dx%d: %d cores / %d L2, want %d each", tc.rows, tc.cols, cores, l2s, tc.cores)
		}
		// Same die outline as POWER7+.
		if f.Width != Power7Width || f.Height != Power7Height {
			t.Fatal("die outline changed")
		}
	}
}

func TestManyCoreRejectsBadTilings(t *testing.T) {
	if _, err := ManyCore(0, 4); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := ManyCore(2, 3); err == nil {
		t.Fatal("odd cols accepted")
	}
	if _, err := ManyCore(64, 64); err == nil {
		t.Fatal("absurd tiling accepted")
	}
}

func TestManyCorePowerScalesWithTiles(t *testing.T) {
	// With the same power map, more tiles at the same total core area
	// keep the core power roughly constant (the tiling conserves area).
	pm := Power7FullLoad()
	f8, err := ManyCore(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	f64, err := ManyCore(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	p8 := pm[Core] * f8.KindArea(Core)
	p64 := pm[Core] * f64.KindArea(Core)
	if p64 < 0.9*p8 || p64 > 1.1*p8 {
		t.Fatalf("core power changed with tiling: %g vs %g", p8, p64)
	}
}

func TestManyCoreRasterizes(t *testing.T) {
	f, err := ManyCore(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := mesh.NewUniformGrid2D(f.Width, f.Height, 60, 48)
	field := f.Rasterize(g, Power7FullLoad())
	got := field.Integrate()
	want := f.TotalPower(Power7FullLoad())
	if d := got - want; d > 1e-9*want || d < -1e-9*want {
		t.Fatalf("rasterized %g vs analytic %g", got, want)
	}
}
