package floorplan

import "bright/internal/units"

// POWER7+ die dimensions from the paper (Fig. 4).
const (
	Power7Width  = 26.55 * units.Millimeter
	Power7Height = 21.34 * units.Millimeter
)

// Power7 builds the IBM POWER7+ floorplan used in the case study: a
// symmetric layout with four core/L2 quadrant groups at the die corners,
// two central L3 banks, memory-controller logic strips at the left and
// right edges, an SMP-link logic band at the top and an I/O band at the
// bottom — the arrangement visible in the paper's Fig. 4/Fig. 8. All
// coordinates are exact tilings (Validate passes with zero gaps).
func Power7() *Floorplan {
	mm := units.Millimeter
	// Column edges (x, mm).
	const (
		x0 = 0.0
		x1 = 1.8    // logic-left | cores-left
		x2 = 6.8    // cores-left | L2-left
		x3 = 9.4    // L2-left | L3-left
		x4 = 13.275 // die centerline
		x5 = 17.15  // L3-right | L2-right
		x6 = 19.75  // L2-right | cores-right
		x7 = 24.75  // cores-right | logic-right
		x8 = 26.55
	)
	// Row edges (y, mm).
	const (
		y0 = 0.0
		y1 = 2.17  // I/O band | lower blocks
		y2 = 6.42  // lower core row split
		y3 = 10.67 // lower | upper blocks
		y4 = 14.92 // upper core row split
		y5 = 19.17 // upper blocks | top logic band
		y6 = 21.34
	)
	r := func(xa, ya, xb, yb float64) Rect {
		return Rect{X: xa * mm, Y: ya * mm, W: (xb - xa) * mm, H: (yb - ya) * mm}
	}
	f := &Floorplan{
		Name:   "IBM POWER7+",
		Width:  Power7Width,
		Height: Power7Height,
		Units: []Unit{
			// Edge logic strips and bands.
			{Name: "MC0", Kind: Logic, Rect: r(x0, y1, x1, y5)},
			{Name: "MC1", Kind: Logic, Rect: r(x7, y1, x8, y5)},
			{Name: "SMP", Kind: Logic, Rect: r(x0, y5, x8, y6)},
			{Name: "IO0", Kind: IO, Rect: r(x0, y0, x8, y1)},

			// Eight cores: two stacked per quadrant column.
			{Name: "CORE0", Kind: Core, Rect: r(x1, y1, x2, y2)},
			{Name: "CORE1", Kind: Core, Rect: r(x1, y2, x2, y3)},
			{Name: "CORE2", Kind: Core, Rect: r(x1, y3, x2, y4)},
			{Name: "CORE3", Kind: Core, Rect: r(x1, y4, x2, y5)},
			{Name: "CORE4", Kind: Core, Rect: r(x6, y1, x7, y2)},
			{Name: "CORE5", Kind: Core, Rect: r(x6, y2, x7, y3)},
			{Name: "CORE6", Kind: Core, Rect: r(x6, y3, x7, y4)},
			{Name: "CORE7", Kind: Core, Rect: r(x6, y4, x7, y5)},

			// Eight L2 slices alongside their cores.
			{Name: "L2_0", Kind: L2, Rect: r(x2, y1, x3, y2)},
			{Name: "L2_1", Kind: L2, Rect: r(x2, y2, x3, y3)},
			{Name: "L2_2", Kind: L2, Rect: r(x2, y3, x3, y4)},
			{Name: "L2_3", Kind: L2, Rect: r(x2, y4, x3, y5)},
			{Name: "L2_4", Kind: L2, Rect: r(x5, y1, x6, y2)},
			{Name: "L2_5", Kind: L2, Rect: r(x5, y2, x6, y3)},
			{Name: "L2_6", Kind: L2, Rect: r(x5, y3, x6, y4)},
			{Name: "L2_7", Kind: L2, Rect: r(x5, y4, x6, y5)},

			// Two central eDRAM L3 banks.
			{Name: "L3_0", Kind: L3, Rect: r(x3, y1, x4, y5)},
			{Name: "L3_1", Kind: L3, Rect: r(x4, y1, x5, y5)},
		},
	}
	return f
}

// Power7PeakDensity is the chip's peak power density (W/m2): 26.7 W/cm2
// on the cores, from the paper.
var Power7PeakDensity = units.WPerCM2ToWPerM2(26.7)

// Power7FullLoad returns the full-load power map used for the Fig. 9
// thermal experiment: cores at the quoted 26.7 W/cm2 peak, caches at the
// quoted 1 W/cm2 average, uncore logic and I/O at representative
// server-class densities.
func Power7FullLoad() PowerMap {
	return PowerMap{
		Core:  Power7PeakDensity,
		L2:    units.WPerCM2ToWPerM2(1.0),
		L3:    units.WPerCM2ToWPerM2(1.0),
		Logic: units.WPerCM2ToWPerM2(8.0),
		IO:    units.WPerCM2ToWPerM2(3.0),
	}
}

// Power7CacheCurrent returns the supply current (A) the cache regions
// draw at the given supply voltage with the paper's 1 W/cm2 density.
func Power7CacheCurrent(f *Floorplan, supply float64) float64 {
	return units.WPerCM2ToWPerM2(1.0) * f.CacheArea() / supply
}
