package floorplan

import (
	"math"
	"testing"

	"bright/internal/mesh"
	"bright/internal/units"
)

func approx(t *testing.T, got, want, rel float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > rel*math.Abs(want) {
		t.Errorf("%s: got %g want %g (rel tol %g)", msg, got, want, rel)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{X: 1, Y: 2, W: 3, H: 4}
	if r.Area() != 12 {
		t.Fatal("area")
	}
	if !r.Contains(1, 2) || r.Contains(4, 2) || r.Contains(0, 3) {
		t.Fatal("containment edges")
	}
	o := Rect{X: 2, Y: 3, W: 10, H: 1}
	if r.Overlap(o) != 2 {
		t.Fatalf("overlap = %g", r.Overlap(o))
	}
	if r.Overlap(Rect{X: 100, Y: 100, W: 1, H: 1}) != 0 {
		t.Fatal("disjoint overlap")
	}
}

func TestPower7Valid(t *testing.T) {
	f := Power7()
	if err := f.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
	// Die dimensions from Fig. 4.
	approx(t, f.Width, 26.55e-3, 1e-12, "die width")
	approx(t, f.Height, 21.34e-3, 1e-12, "die height")
	approx(t, f.Area(), 566.58e-6, 1e-3, "die area")
}

func TestPower7Inventory(t *testing.T) {
	f := Power7()
	count := map[UnitKind]int{}
	for _, u := range f.Units {
		count[u.Kind]++
	}
	if count[Core] != 8 {
		t.Fatalf("POWER7+ has 8 cores, floorplan has %d", count[Core])
	}
	if count[L2] != 8 {
		t.Fatalf("8 L2 slices expected, got %d", count[L2])
	}
	if count[L3] != 2 {
		t.Fatalf("2 L3 banks expected, got %d", count[L3])
	}
}

func TestPower7Areas(t *testing.T) {
	f := Power7()
	// Cache fraction: the eDRAM-heavy POWER7+ die is ~35-45% cache.
	frac := f.CacheArea() / f.Area()
	if frac < 0.3 || frac > 0.5 {
		t.Fatalf("cache fraction %.2f outside expected band", frac)
	}
	// Cores ~25-35% of the die.
	cfrac := f.KindArea(Core) / f.Area()
	if cfrac < 0.2 || cfrac > 0.4 {
		t.Fatalf("core fraction %.2f outside expected band", cfrac)
	}
}

func TestPower7FullLoadBudget(t *testing.T) {
	f := Power7()
	total := f.TotalPower(Power7FullLoad())
	// Full-load chip power lands in the tens of watts (cores at
	// 26.7 W/cm2 over ~1.7 cm2 dominate).
	if total < 40 || total > 120 {
		t.Fatalf("total power %.1f W outside plausible envelope", total)
	}
	// Cores must dominate the budget.
	corePower := Power7FullLoad()[Core] * f.KindArea(Core)
	if corePower < 0.5*total {
		t.Fatalf("cores contribute %.1f of %.1f W; expected the majority", corePower, total)
	}
}

func TestPower7CacheCurrent(t *testing.T) {
	f := Power7()
	i := Power7CacheCurrent(f, 1.0)
	// 1 W/cm2 over ~2.2 cm2 of cache at 1 V -> ~2.2 A. (The paper
	// quotes 5 A, which corresponds to ~5 cm2 of cache — nearly the
	// whole die; see EXPERIMENTS.md for the documented discrepancy.)
	if i < 1.5 || i > 3.5 {
		t.Fatalf("cache current %.2f A outside floorplan expectation", i)
	}
}

func TestUnitAt(t *testing.T) {
	f := Power7()
	// Center of the die is L3.
	u := f.UnitAt(f.Width/2-1e-6, f.Height/2)
	if u == nil || u.Kind != L3 {
		t.Fatalf("die center should be L3, got %v", u)
	}
	// Bottom edge is I/O.
	u = f.UnitAt(f.Width/2, 0.5e-3)
	if u == nil || u.Kind != IO {
		t.Fatalf("bottom band should be I/O, got %v", u)
	}
	// Outside the die.
	if f.UnitAt(-1, -1) != nil {
		t.Fatal("outside point matched a unit")
	}
}

func TestValidateCatchesDefects(t *testing.T) {
	f := Power7()
	f.Units[0].Rect.W *= 2 // force overlap / out-of-bounds
	if err := f.Validate(1e-9); err == nil {
		t.Fatal("mutated floorplan accepted")
	}
	g := &Floorplan{Name: "gap", Width: 1e-3, Height: 1e-3, Units: []Unit{
		{Name: "half", Kind: Logic, Rect: Rect{0, 0, 0.5e-3, 1e-3}},
	}}
	if err := g.Validate(1e-9); err == nil {
		t.Fatal("half-covered die accepted")
	}
	z := &Floorplan{Name: "zero", Width: 1e-3, Height: 1e-3, Units: []Unit{
		{Name: "degenerate", Kind: Logic, Rect: Rect{0, 0, 0, 1e-3}},
	}}
	if err := z.Validate(1e-9); err == nil {
		t.Fatal("degenerate unit accepted")
	}
}

func TestRasterizeConservesPower(t *testing.T) {
	f := Power7()
	pm := Power7FullLoad()
	for _, n := range []int{16, 40, 96} {
		g := mesh.NewUniformGrid2D(f.Width, f.Height, n, n*4/5)
		field := f.Rasterize(g, pm)
		approx(t, field.Integrate(), f.TotalPower(pm), 1e-9,
			"rasterized power equals analytic total")
	}
}

func TestRasterizeMask(t *testing.T) {
	f := Power7()
	g := mesh.NewUniformGrid2D(f.Width, f.Height, 100, 80)
	mask := f.RasterizeMask(g, UnitKind.IsCache)
	// Mask area approximates the cache area.
	approx(t, mask.Integrate(), f.CacheArea(), 0.05, "mask area")
	// Mask is binary.
	for _, v := range mask.Data {
		if v != 0 && v != 1 {
			t.Fatalf("non-binary mask value %g", v)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := Core; k < numKinds; k++ {
		if k.String() == "" {
			t.Fatalf("empty string for kind %d", k)
		}
	}
	if !L2.IsCache() || !L3.IsCache() || Core.IsCache() {
		t.Fatal("IsCache classification")
	}
	if UnitKind(42).String() == "" {
		t.Fatal("unknown kind must format")
	}
}

func TestPeakDensityConstant(t *testing.T) {
	approx(t, Power7PeakDensity, units.WPerCM2ToWPerM2(26.7), 1e-12, "peak density")
}
