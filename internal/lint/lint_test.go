package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// expectation is one `// want[+N] <analyzer> "substr"` marker in a
// fixture file: a diagnostic from analyzer whose message contains
// substr must be reported at (file, line+N).
type expectation struct {
	file     string
	line     int
	analyzer string
	substr   string
}

var wantRe = regexp.MustCompile(`want(\+\d+)? (\w+) "([^"]*)"`)

// parseExpectations scans every .go file under dir for want markers.
func parseExpectations(t *testing.T, dir string) []expectation {
	t.Helper()
	var out []expectation
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				offset := 0
				if m[1] != "" {
					offset, _ = strconv.Atoi(m[1][1:])
				}
				out = append(out, expectation{
					file: path, line: line + offset, analyzer: m[2], substr: m[3],
				})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("scanning %s: %v", dir, err)
	}
	return out
}

// checkAgainstExpectations asserts a 1:1 match between diagnostics and
// want markers: every expectation met, no unexpected findings.
func checkAgainstExpectations(t *testing.T, diags []Diagnostic, wants []expectation) {
	t.Helper()
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] || d.Analyzer != w.analyzer || d.Pos.Line != w.line {
				continue
			}
			if filepath.Base(d.Pos.Filename) != filepath.Base(w.file) {
				continue
			}
			if !strings.Contains(d.Message, w.substr) {
				continue
			}
			matched[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("expected [%s] %q at %s:%d: no matching diagnostic", w.analyzer, w.substr, w.file, w.line)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func loadFixture(t *testing.T, dir string) []*Package {
	t.Helper()
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("Load(%s): no packages", dir)
	}
	return pkgs
}

// TestFixtureExpectations is the golden-fixture gate: every analyzer
// has positive cases (want markers) and negative cases (clean code in
// the same files, caught by the no-unexpected-diagnostics side).
func TestFixtureExpectations(t *testing.T) {
	dir := filepath.Join("testdata", "mod")
	pkgs := loadFixture(t, dir)
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: unexpected type errors: %v", p.ImportPath, p.TypeErrors)
		}
	}
	diags := Run(pkgs, All())
	checkAgainstExpectations(t, diags, parseExpectations(t, dir))

	// Each analyzer must have proven at least one true positive.
	seen := map[string]bool{}
	for _, d := range diags {
		seen[d.Analyzer] = true
	}
	for _, a := range All() {
		if !seen[a.Name] {
			t.Errorf("fixture has no positive case for analyzer %s", a.Name)
		}
	}
}

// TestBrokenPackageDoesNotAbortAnalysis: a type-check failure in one
// package degrades that package to partial analysis but must not stop
// the rest of the module from being analyzed.
func TestBrokenPackageDoesNotAbortAnalysis(t *testing.T) {
	dir := filepath.Join("testdata", "broken")
	pkgs := loadFixture(t, dir)
	if len(pkgs) != 2 {
		t.Fatalf("want 2 packages, got %d", len(pkgs))
	}
	var sawBroken bool
	for _, p := range pkgs {
		if pkgSegment(p.ImportPath) == "bad" {
			sawBroken = true
			if len(p.TypeErrors) == 0 {
				t.Errorf("%s: expected type-check errors", p.ImportPath)
			}
		}
	}
	if !sawBroken {
		t.Fatalf("fixture package bad not loaded")
	}
	diags := Run(pkgs, All())
	checkAgainstExpectations(t, diags, parseExpectations(t, dir))
}

// TestDeterministicOutput: two independent loads of the same tree must
// render byte-identical diagnostics, in sorted order.
func TestDeterministicOutput(t *testing.T) {
	dir := filepath.Join("testdata", "mod")
	render := func() string {
		var b strings.Builder
		for _, d := range Run(loadFixture(t, dir), All()) {
			fmt.Fprintf(&b, "%s\n", d)
		}
		return b.String()
	}
	first, second := render(), render()
	if first != second {
		t.Errorf("non-deterministic output:\n--- first\n%s--- second\n%s", first, second)
	}
	// Sorted by position: a quick structural spot check.
	diags := Run(loadFixture(t, dir), All())
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Errorf("diagnostics out of order: %s before %s", a, b)
		}
	}
}

// TestSuppressionRequiresReason: directive parsing distinguishes
// well-formed, unknown-analyzer and missing-reason forms.
func TestSuppressionDirectiveForms(t *testing.T) {
	dir := filepath.Join("testdata", "mod")
	diags := Run(loadFixture(t, dir), All())
	var malformed int
	for _, d := range diags {
		if d.Analyzer == "brightlint" {
			malformed++
		}
	}
	if malformed != 2 {
		t.Errorf("want 2 malformed-directive findings, got %d", malformed)
	}
}

// TestByName resolves analyzer subsets and rejects unknown names.
func TestByName(t *testing.T) {
	got, err := ByName("unitconv,errignore")
	if err != nil || len(got) != 2 || got[0].Name != "unitconv" || got[1].Name != "errignore" {
		t.Errorf("ByName subset: got %v, %v", got, err)
	}
	if all, err := ByName(""); err != nil || len(all) != len(All()) {
		t.Errorf("ByName empty: got %v, %v", all, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Errorf("ByName(nope): expected error")
	}
}

// TestRepoIsClean dogfoods the suite over the real tree: the linter
// must land (and stay) green on its own repository. This is the same
// gate `make lint` enforces, kept in tier-1 so a regression cannot
// land silently.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo lint in -short mode")
	}
	pkgs, err := Load(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatalf("Load(repo): %v", err)
	}
	diags := Run(pkgs, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestFixtureModulesTypeCheckWithSourceImporter pins the loader's
// source-importer path: the fixture mini-module leans on heavyweight
// std imports (sync for locksafe, net/http for httplife and obsreg,
// time for goroutinelife) and must type-check cleanly, or the v2
// analyzers silently lose the type information their rules depend on.
func TestFixtureModulesTypeCheckWithSourceImporter(t *testing.T) {
	pkgs := loadFixture(t, filepath.Join("testdata", "mod"))
	importedBy := map[string]string{"sync": "", "net/http": "", "time": ""}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: type errors under the source importer: %v", p.ImportPath, p.TypeErrors)
		}
		if p.Types == nil {
			continue
		}
		for _, imp := range p.Types.Imports() {
			if _, tracked := importedBy[imp.Path()]; tracked {
				importedBy[imp.Path()] = p.ImportPath
			}
		}
	}
	for path, by := range importedBy {
		if by == "" {
			t.Errorf("no fixture package imports %q: the source-importer regression coverage is gone", path)
		}
	}
}

// TestSoftTypeErrorsProduceNoFindings is the exit-code regression for
// cmd/brightlint: a package whose type check fails softly (an
// undefined identifier — the build gate's problem, not the linter's)
// yields zero diagnostics, so brightlint exits 0. Only findings may
// exit 1, and only a go list-level failure may exit 2.
func TestSoftTypeErrorsProduceNoFindings(t *testing.T) {
	pkgs := loadFixture(t, filepath.Join("testdata", "typeerr"))
	soft := 0
	for _, p := range pkgs {
		soft += len(p.TypeErrors)
		if p.LoadError != nil {
			t.Fatalf("%s: unexpected go list-level error (would exit 2): %v", p.ImportPath, p.LoadError)
		}
	}
	if soft == 0 {
		t.Fatalf("typeerr fixture should produce soft type-check errors")
	}
	if diags := Run(pkgs, All()); len(diags) != 0 {
		t.Fatalf("soft type errors must not surface as findings, got: %v", diags)
	}
}
