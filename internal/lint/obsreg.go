// obsreg: the metrics discipline. internal/obs registration is
// idempotent but not free — it takes the registry mutex, renders and
// canonicalizes label sets, and grows the family tables. Registration
// belongs in package-level vars or constructors, never in hot loops or
// per-request handlers; and label values must come from bounded
// domains — deriving one from request data turns the registry into an
// unbounded per-client allocation (cardinality explosion) that no
// scrape can render cheaply.

package lint

import (
	"go/ast"
	"go/types"
)

// ObsReg flags metric registration in loops and request handlers, and
// label values derived from request data.
var ObsReg = &Analyzer{
	Name: "obsreg",
	Doc:  "keep obs metric registration out of hot loops/handlers and label cardinality bounded",
	Run:  runObsReg,
}

var registrationMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterFunc": true, "GaugeFunc": true,
}

// isRegistration reports whether call registers an obs metric: a method
// from registrationMethods on a Registry defined in a package whose
// last path segment is "obs".
func isRegistration(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || pkgSegment(fn.Pkg().Path()) != "obs" || !registrationMethods[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// isObsL reports whether call is obs.L(name, value).
func isObsL(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && pkgSegment(fn.Pkg().Path()) == "obs" && fn.Name() == "L"
}

// referencesRequest reports whether e mentions a variable of type
// *net/http.Request — the marker for unbounded, client-controlled data.
func referencesRequest(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if types.TypeString(obj.Type(), nil) == "*net/http.Request" {
			found = true
		}
		return !found
	})
	return found
}

// handlerShaped reports whether the function node (FuncDecl or FuncLit)
// has the http handler signature func(http.ResponseWriter, *http.Request).
func handlerShaped(info *types.Info, n ast.Node) bool {
	var sig *types.Signature
	switch n := n.(type) {
	case *ast.FuncDecl:
		if obj, ok := info.Defs[n.Name].(*types.Func); ok {
			sig, _ = obj.Type().(*types.Signature)
		}
	case *ast.FuncLit:
		if tv, ok := info.Types[n]; ok {
			sig, _ = tv.Type.(*types.Signature)
		}
	}
	if sig == nil || sig.Params().Len() != 2 {
		return false
	}
	return types.TypeString(sig.Params().At(0).Type(), nil) == "net/http.ResponseWriter" &&
		types.TypeString(sig.Params().At(1).Type(), nil) == "*net/http.Request"
}

func runObsReg(p *Package) []Diagnostic {
	// The obs package itself constructs series internally; exempt.
	if pkgSegment(p.ImportPath) == "obs" || p.Info == nil {
		return nil
	}
	var diags []Diagnostic
	report := func(n ast.Node, msg string) {
		diags = append(diags, Diagnostic{Pos: p.Fset.Position(n.Pos()), Analyzer: "obsreg", Message: msg})
	}
	for _, f := range p.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if isObsL(p.Info, call) && len(call.Args) == 2 && referencesRequest(p.Info, call.Args[1]) {
				report(call.Args[1], "label value derived from request data: unbounded label cardinality; use a fixed enumeration instead")
				return
			}
			if !isRegistration(p.Info, call) {
				return
			}
			// Walk outward from the call: a loop before the enclosing
			// function means per-iteration registration; a handler-shaped
			// enclosing function means per-request registration.
			for i := len(stack) - 1; i >= 0; i-- {
				switch anc := stack[i].(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					report(call, "obs metric registration inside a loop: registration takes the registry lock and canonicalizes labels; hoist it to a package var or constructor")
					return
				case *ast.FuncDecl, *ast.FuncLit:
					if handlerShaped(p.Info, anc) {
						report(call, "obs metric registration inside a request handler: register once at construction and increment the instrument here")
					}
					return
				}
			}
		})
	}
	return diags
}
