// Fixture for locksafe: by-value mutex copies, unlock-free return
// paths, and RLock/Unlock kind mismatches. locksafe applies to every
// package, so this one needs no serving-path import suffix.
package locks

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

type table struct {
	mu sync.RWMutex
	m  map[string]int
}

// byValueParam receives a private copy of the lock (positive).
func byValueParam(c counter) int { // want locksafe "by value"
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// valueReceiver locks a copy of the receiver (positive).
func (c counter) get() int { // want locksafe "by value"
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// sum copies each element's lock into the range variable (positive).
func sum(cs []counter) int {
	total := 0
	for _, c := range cs { // want locksafe "range value"
		total += c.n
	}
	return total
}

// clone forks an in-use lock through a composite literal (positive).
func clone(c *counter) *counter {
	return &counter{mu: c.mu} // want locksafe "composite literal"
}

// snapshot copies the whole lock-bearing struct (positive).
func snapshot(c *counter) int {
	cp := *c // want locksafe "assignment copies"
	return cp.n
}

// fresh zero values are the legitimate initialization (negative).
func fresh() *counter {
	return &counter{mu: sync.Mutex{}, n: 0}
}

// sumByIndex shares the locks through pointers (negative).
func sumByIndex(cs []*counter) int {
	total := 0
	for _, c := range cs {
		total += c.n
	}
	return total
}

// getBroken returns with the lock held on the miss path (positive).
func (t *table) getBroken(k string) (int, bool) {
	t.mu.Lock()
	v, ok := t.m[k]
	if !ok {
		return 0, false // want locksafe "return path"
	}
	t.mu.Unlock()
	return v, true
}

// getDeferred is the sanctioned shape (negative).
func (t *table) getDeferred(k string) (int, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.m[k]
	return v, ok
}

// getManual releases on every path by hand (negative).
func (t *table) getManual(k string) (int, bool) {
	t.mu.RLock()
	v, ok := t.m[k]
	if !ok {
		t.mu.RUnlock()
		return 0, false
	}
	t.mu.RUnlock()
	return v, ok
}

// closureDefer releases through a deferred closure: still covers every
// return path (negative).
func (t *table) closureDefer(k string) int {
	t.mu.Lock()
	defer func() {
		t.mu.Unlock()
	}()
	if v, ok := t.m[k]; ok {
		return v
	}
	return 0
}

// mismatch releases a read lock with the writer Unlock (positive).
func (t *table) mismatch() int {
	t.mu.RLock()
	n := len(t.m)
	t.mu.Unlock() // want locksafe "RUnlock"
	return n
}

// wedge takes the lock and forgets it (positive).
func (t *table) wedge() {
	t.mu.Lock() // want locksafe "never released"
	t.m = map[string]int{}
}

// handoff transfers lock ownership to the caller by documented
// contract (suppressed).
func (t *table) handoff() {
	//lint:ignore locksafe ownership transfers to the caller, which must release
	t.mu.Lock()
}

// release is handoff's other half: an unlock with no matching lock in
// scope is not flagged (negative).
func (t *table) release() {
	t.mu.Unlock()
}
