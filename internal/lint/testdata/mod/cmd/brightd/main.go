// Serving-path fixture for ctxpropagate in a command: the import path
// ends in cmd/brightd. signal.NotifyContext is the documented way to
// build the process root context, so its Background() argument is not
// flagged; a bare Background() elsewhere is.
package main

import (
	"context"
	"os"
	"os/signal"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	_ = ctx
	detached := context.Background() // want ctxpropagate "context.Background"
	_ = detached
}
