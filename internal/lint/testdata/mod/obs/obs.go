// Package obs mirrors the shape of the real internal/obs registry just
// enough for the obsreg rule to latch on: the rule matches methods on a
// Registry type defined in a package whose last path segment is "obs".
package obs

type Label struct{ Name, Value string }

func L(name, value string) Label { return Label{Name: name, Value: value} }

type Counter struct{ n uint64 }

func (c *Counter) Inc() { c.n++ }

type Gauge struct{ v float64 }

func (g *Gauge) Set(v float64) { g.v = v }

type Histogram struct{ sum float64 }

func (h *Histogram) Observe(v float64) { h.sum += v }

type Registry struct{}

func NewRegistry() *Registry { return &Registry{} }

var Default = NewRegistry()

func (r *Registry) Counter(name, help string, labels ...Label) *Counter { return &Counter{} }

func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return &Histogram{}
}

func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {}

func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {}
