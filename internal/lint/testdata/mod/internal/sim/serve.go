// Serving-path fixture for ctxpropagate: this package's import path
// ends in internal/sim, so the cancellation discipline applies.
package sim

import (
	"context"

	"fixture/internal/core"
	"fixture/internal/cosim"
	"fixture/internal/flowcell"
	"fixture/internal/thermal"
)

// bad exercises every positive case.
func bad(cell *flowcell.Cell, sys *core.System) error {
	ctx := context.Background() // want ctxpropagate "context.Background"
	_ = ctx
	ctx2 := context.TODO() // want ctxpropagate "context.TODO"
	_ = ctx2
	if _, err := cosim.Run(cosim.Config{}); err != nil { // want ctxpropagate "cosim.RunContext"
		return err
	}
	if _, err := thermal.Solve(&thermal.Problem{}); err != nil { // want ctxpropagate "thermal.SolveContext"
		return err
	}
	if _, err := cell.Polarize(10, 0.95); err != nil { // want ctxpropagate "PolarizeContext"
		return err
	}
	if _, err := sys.Evaluate(); err != nil { // want ctxpropagate "EvaluateContext"
		return err
	}
	return nil
}

// good shows the clean form: context threaded, *Context variants used.
func good(ctx context.Context, cell *flowcell.Cell, sys *core.System) error {
	if _, err := cosim.RunContext(ctx, cosim.Config{}); err != nil {
		return err
	}
	if _, err := thermal.SolveContext(ctx, &thermal.Problem{}); err != nil {
		return err
	}
	if _, err := cell.PolarizeContext(ctx, 10, 0.95); err != nil {
		return err
	}
	if _, err := sys.EvaluateContext(ctx); err != nil {
		return err
	}
	return nil
}

// suppressed shows a deliberate, annotated detach.
func suppressed() context.Context {
	//lint:ignore ctxpropagate detached job context is deliberate here
	return context.Background()
}
