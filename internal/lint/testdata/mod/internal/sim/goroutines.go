// Serving-path fixture for goroutinelife: goroutine termination and
// ticker/timer Stop discipline. The import path ends in internal/sim,
// so the rule applies.
package sim

import (
	"context"
	"time"
)

// spin loops forever with no exit of any kind (positive).
func spin(ch chan int) {
	go func() { // want goroutinelife "no termination path"
		for {
			<-ch
		}
	}()
}

// pump resolves the named function's body through the declaration: a
// select with no return, break, or Done receive never ends (positive).
func pump(ch chan int) {
	go pumpLoop(ch) // want goroutinelife "no termination path"
}

func pumpLoop(ch chan int) {
	for {
		select {
		case v := <-ch:
			_ = v
		}
	}
}

// retry binds a literal to a local variable first; still resolved
// (positive).
func retry() {
	attempt := func() {
		for {
		}
	}
	go attempt() // want goroutinelife "no termination path"
}

// drain ranges over a closable channel: terminates on close (negative).
func drain(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// janitor selects on a context derived inside the spawner and stops
// its ticker: the idiomatic long-lived worker (negative).
func janitor(parent context.Context, d time.Duration) context.CancelFunc {
	ctx, cancel := context.WithCancel(parent)
	go func() {
		t := time.NewTicker(d)
		defer t.Stop()
		for {
			select {
			case <-t.C:
			case <-ctx.Done():
				return
			}
		}
	}()
	return cancel
}

// bounded loops have an end by construction (negative).
func bounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
		}
	}()
}

// feeder runs for the process lifetime by explicit contract
// (suppressed).
func feeder(ch chan int) {
	//lint:ignore goroutinelife metrics feeder runs for the process lifetime by design
	go func() {
		for {
			<-ch
		}
	}()
}

// tickNoStop never stops its ticker (positive).
func tickNoStop(d time.Duration, ch chan struct{}) {
	t := time.NewTicker(d) // want goroutinelife "never stopped"
	for range ch {
		<-t.C
	}
}

// inlineTimer leaves no handle to stop (positive).
func inlineTimer(d time.Duration) {
	<-time.NewTimer(d).C // want goroutinelife "no handle"
}

// tickLeak has no ticker handle at all (positive).
func tickLeak(d time.Duration) <-chan time.Time {
	return time.Tick(d) // want goroutinelife "time.Tick"
}

// newHeartbeat hands the ticker to the caller, which owns the Stop
// (negative).
func newHeartbeat(d time.Duration) *time.Ticker {
	t := time.NewTicker(d)
	return t
}

// stopped timers are fine even without defer (negative).
func pulse(d time.Duration) {
	t := time.NewTimer(d)
	<-t.C
	t.Stop()
}
