package core

import "context"

type System struct{}

type Report struct{}

func (s *System) Evaluate() (*Report, error) { return s.EvaluateContext(context.Background()) }

func (s *System) EvaluateContext(ctx context.Context) (*Report, error) { return &Report{}, nil }
