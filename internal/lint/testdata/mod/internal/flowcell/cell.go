package flowcell

import "context"

type Cell struct{}

type PolarizationCurve []float64

func (c *Cell) Polarize(n int, maxFrac float64) (PolarizationCurve, error) {
	return c.PolarizeContext(context.Background(), n, maxFrac)
}

func (c *Cell) PolarizeContext(ctx context.Context, n int, maxFrac float64) (PolarizationCurve, error) {
	return nil, nil
}
