// Package units mirrors the real internal/units: the one place magic
// conversion literals are legal (unitconv negative case).
package units

const (
	ZeroCelsius = 273.15
	Faraday     = 96485.33212
	Bar         = 1e5
	Micrometer  = 1e-6
)

func CtoK(c float64) float64 { return c + ZeroCelsius }

func MToUM(m float64) float64 { return m / Micrometer }
