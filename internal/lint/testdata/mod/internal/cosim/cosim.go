package cosim

import "context"

type Config struct{}

type Result struct{}

func Run(cfg Config) (*Result, error) { return RunContext(context.Background(), cfg) }

func RunContext(ctx context.Context, cfg Config) (*Result, error) { return &Result{}, nil }
