// Serving-path fixture for ctxpropagate: internal/stream sessions step
// transient solves on behalf of HTTP clients, so the cancellation
// discipline applies here exactly as in internal/sim.
package stream

import (
	"context"

	"fixture/internal/pdn"
	"fixture/internal/thermal"
)

// bad exercises the transient sibling pairs.
func bad() error {
	if _, err := thermal.SolveSchedule(&thermal.Problem{}); err != nil { // want ctxpropagate "thermal.SolveScheduleContext"
		return err
	}
	if _, err := thermal.SolveTransient(&thermal.Problem{}); err != nil { // want ctxpropagate "thermal.SolveTransientContext"
		return err
	}
	if _, err := pdn.SolveTransient(&pdn.Problem{}); err != nil { // want ctxpropagate "pdn.SolveTransientContext"
		return err
	}
	ctx := context.Background() // want ctxpropagate "context.Background"
	_ = ctx
	return nil
}

// good threads the context into the *Context variants.
func good(ctx context.Context) error {
	if _, err := thermal.SolveScheduleContext(ctx, &thermal.Problem{}); err != nil {
		return err
	}
	if _, err := thermal.SolveTransientContext(ctx, &thermal.Problem{}); err != nil {
		return err
	}
	if _, err := pdn.SolveTransientContext(ctx, &pdn.Problem{}); err != nil {
		return err
	}
	return nil
}

// detached shows the annotated escape hatch for session-scoped roots.
func detached() context.Context {
	//lint:ignore ctxpropagate session lifetimes detach from requests by design
	return context.Background()
}
