package pdn

import "context"

type Problem struct{}

type Waveform struct{}

func SolveTransient(p *Problem) (*Waveform, error) {
	return SolveTransientContext(context.Background(), p)
}

func SolveTransientContext(ctx context.Context, p *Problem) (*Waveform, error) {
	return &Waveform{}, nil
}
