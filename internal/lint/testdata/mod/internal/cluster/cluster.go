// Serving-path fixture for ctxpropagate: internal/cluster proxies
// client requests to backend shards, so every outbound call must stay
// derived from the incoming request context — a fresh root context
// here lets a hung shard pin coordinator goroutines past the caller's
// deadline.
package cluster

import (
	"context"

	"fixture/internal/thermal"
)

// bad detaches a backend probe from the request that triggered it.
func bad() error {
	ctx := context.Background() // want ctxpropagate "context.Background"
	_ = ctx
	if _, err := thermal.Solve(&thermal.Problem{}); err != nil { // want ctxpropagate "thermal.SolveContext"
		return err
	}
	return nil
}

// good derives per-backend deadlines from the caller's context.
func good(ctx context.Context) error {
	probeCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	_, err := thermal.SolveContext(probeCtx, &thermal.Problem{})
	return err
}
