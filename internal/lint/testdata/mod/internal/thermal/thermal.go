package thermal

import "context"

type Problem struct{}

type Solution struct{}

func Solve(p *Problem) (*Solution, error) { return SolveContext(context.Background(), p) }

func SolveContext(ctx context.Context, p *Problem) (*Solution, error) { return &Solution{}, nil }
