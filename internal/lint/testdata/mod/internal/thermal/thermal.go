package thermal

import "context"

type Problem struct{}

type Solution struct{}

func Solve(p *Problem) (*Solution, error) { return SolveContext(context.Background(), p) }

func SolveContext(ctx context.Context, p *Problem) (*Solution, error) { return &Solution{}, nil }

func SolveSchedule(p *Problem) ([]*Solution, error) {
	return SolveScheduleContext(context.Background(), p)
}

func SolveScheduleContext(ctx context.Context, p *Problem) ([]*Solution, error) { return nil, nil }

func SolveTransient(p *Problem) (*Solution, error) {
	return SolveTransientContext(context.Background(), p)
}

func SolveTransientContext(ctx context.Context, p *Problem) (*Solution, error) {
	return &Solution{}, nil
}
