// obsreg fixture: registration placement and label cardinality.
package web

import (
	"net/http"

	"fixture/obs"
)

// Package-level registration is the sanctioned pattern (negative case).
var requests = obs.Default.Counter("web_requests_total", "Requests served.")

// Constructor registration is also fine (negative case).
func newMetrics(r *obs.Registry) *obs.Gauge {
	return r.Gauge("web_depth", "Queue depth.")
}

// registerInLoop registers once per iteration (positive case).
func registerInLoop(r *obs.Registry, shards []string) {
	for _, s := range shards {
		r.Counter("web_shard_total", "Per-shard requests.", obs.L("shard", s)) // want obsreg "inside a loop"
	}
}

// rangelessLoop catches the plain for statement too (positive case).
func rangelessLoop(r *obs.Registry) {
	for i := 0; i < 4; i++ {
		r.GaugeFunc("web_pool", "Pool occupancy.", func() float64 { return 0 }) // want obsreg "inside a loop"
	}
}

// handler registers per request and derives a label from request data
// (both positive cases).
func handler(w http.ResponseWriter, r *http.Request) {
	c := obs.Default.Counter("web_hits_total", "Hits.") // want obsreg "request handler"
	c.Inc()
	obs.Default.Counter("web_path_total", "Hits by path.", obs.L("path", r.URL.Path)).Inc() // want obsreg "request handler" // want obsreg "cardinality"
}

// handlerLit flags handler-shaped function literals as well.
func register(mux *http.ServeMux) {
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {
		obs.Default.Gauge("web_live", "Liveness.") // want obsreg "request handler"
		w.WriteHeader(http.StatusOK)
	})
}

// Bounded label values from a fixed enumeration, registered at package
// level, are the sanctioned shape (negative case).
var byClass = obs.Default.Counter("web_class_total", "By class.", obs.L("class", "2xx"))

// goodHandler increments pre-registered instruments (negative case).
func goodHandler(w http.ResponseWriter, r *http.Request) {
	requests.Inc()
	byClass.Inc()
}
