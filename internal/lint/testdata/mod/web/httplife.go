// Fixture for httplife: WriteHeader-once, no writes after Hijack,
// response bodies closed on every path, Retry-After on 429, and
// bounded request-body reads in handlers.
package web

import (
	"encoding/json"
	"log"
	"net/http"
)

// doubleHeader can commit the status twice on one path (positive).
func doubleHeader(w http.ResponseWriter, failed bool) {
	w.WriteHeader(http.StatusOK)
	if failed {
		w.WriteHeader(http.StatusInternalServerError) // want httplife "already have been called"
	}
}

// exclusiveHeader commits exactly once per branch (negative).
func exclusiveHeader(w http.ResponseWriter, ok bool) {
	if ok {
		w.WriteHeader(http.StatusOK)
	} else {
		w.WriteHeader(http.StatusBadRequest)
	}
}

// earlyReturn's first commit leaves the function (negative).
func earlyReturn(w http.ResponseWriter, bad bool) {
	if bad {
		w.WriteHeader(http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// loopHeader may commit once per iteration (positive).
func loopHeader(w http.ResponseWriter, codes []int) {
	for _, c := range codes {
		w.WriteHeader(c) // want httplife "inside a loop"
	}
}

// writeAfterHijack touches the ResponseWriter after the connection has
// left (positive).
func writeAfterHijack(w http.ResponseWriter, r *http.Request) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	defer closeConn(conn)
	w.WriteHeader(http.StatusOK) // want httplife "after Hijack"
}

// hijackHandoff stops touching the writer once hijacked (negative).
func hijackHandoff(w http.ResponseWriter, r *http.Request) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "hijack unsupported", http.StatusInternalServerError)
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	closeConn(conn)
}

// closeConn logs (not drops) the close error.
func closeConn(c interface{ Close() error }) {
	if err := c.Close(); err != nil {
		log.Printf("closing hijacked conn: %v", err)
	}
}

// fetchLeaky never closes the response body (positive).
func fetchLeaky(c *http.Client, url string) (int, error) {
	resp, err := c.Get(url) // want httplife "never closed"
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// fireAndForget drops the response entirely, body included (positive).
func fireAndForget(c *http.Client, url string) error {
	_, err := c.Get(url) // want httplife "discarded"
	return err
}

// discard closes a response body, logging the error.
func discard(resp *http.Response) {
	if err := resp.Body.Close(); err != nil {
		log.Printf("closing response body: %v", err)
	}
}

// fetchClosed hands the response to a closer via defer (negative).
func fetchClosed(c *http.Client, url string) (int, error) {
	resp, err := c.Get(url)
	if err != nil {
		return 0, err
	}
	defer discard(resp)
	return resp.StatusCode, nil
}

// fetchExplicit closes inline and propagates the error (negative).
func fetchExplicit(c *http.Client, url string) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// throttleBare rejects without telling the client when to come back
// (positive).
func throttleBare(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "slow down", http.StatusTooManyRequests) // want httplife "Retry-After"
}

// throttleHinted honors the admission contract (negative).
func throttleHinted(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Retry-After", "3")
	http.Error(w, "slow down", http.StatusTooManyRequests)
}

// ingestUnbounded decodes an attacker-sized body (positive).
func ingestUnbounded(w http.ResponseWriter, r *http.Request) {
	var v map[string]any
	if err := json.NewDecoder(r.Body).Decode(&v); err != nil { // want httplife "MaxBytesReader"
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ingestBounded wraps the body before reading (negative).
func ingestBounded(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	var v map[string]any
	if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// ingestTrusted reads a peer-bounded internal body (suppressed).
func ingestTrusted(w http.ResponseWriter, r *http.Request) {
	var v map[string]any
	//lint:ignore httplife internal mesh endpoint; peers bound the body upstream
	if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
