// errignore fixture: discarded error returns vs the allowlist.
package errs

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

type closer struct{}

func (closer) Close() error { return nil }

func fallible() error { return nil }

func pair() (int, error) { return 0, nil }

// Positive cases.
func bad(f closer) {
	fallible()      // want errignore "bare call statement"
	defer f.Close() // want errignore "deferred call"
	go fallible()   // want errignore "go statement"
	n, _ := pair()  // want errignore "assigned to _"
	_ = n
	fmt.Fprintf(os.NewFile(3, "x"), "not a std stream\n") // want errignore "bare call statement"
}

// Negative cases: handled errors and the documented-infallible
// allowlist.
func good() error {
	if err := fallible(); err != nil {
		return err
	}
	n, err := pair()
	if err != nil {
		return err
	}
	_ = n
	fmt.Println("stdout display is conventional")
	fmt.Fprintf(os.Stderr, "stderr too\n")
	var b strings.Builder
	b.WriteString("builders never fail")
	fmt.Fprintf(&b, "even via Fprintf\n")
	var buf bytes.Buffer
	buf.WriteByte('x')
	return nil
}

// Suppressed: a deliberate discard with an annotated reason.
func deliberate(f closer) {
	//lint:ignore errignore close error is unactionable on this read path
	f.Close()
}

// Malformed directives are themselves findings.
// want+2 brightlint "unknown analyzer"
//
//lint:ignore nosuchrule because reasons
var placeholder = 0

// want+2 brightlint "needs a reason"
//
//lint:ignore errignore
var placeholder2 = 0
