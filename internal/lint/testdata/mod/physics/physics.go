// unitconv fixture: magic conversion literals vs the named helpers.
package physics

import "fixture/internal/units"

// Positive cases: physical constants spelled as literals.
const roomK = 298.15 // want unitconv "units.StandardTemperature"

var faraday = 96485.0 // want unitconv "units.Faraday"

func charge(mol float64) float64 {
	return mol * 96485.33212 // want unitconv "units.Faraday"
}

func pressurePa() float64 {
	return 2 * 101325 // want unitconv "units.AtmosphericPressure"
}

// Positive: inline temperature-offset arithmetic.
func toKelvin(c float64) float64 {
	return c + 273.15 // want unitconv "units.CtoK"
}

func toCelsius(k float64) float64 {
	return k - 273.15 // want unitconv "units.KtoC"
}

// Positive: unit-scale factors in a unit-suggesting context.
func widthUM(width float64) float64 {
	return width * 1e6 // want unitconv "units.MToUM"
}

func dropBar(pressureDrop float64) float64 {
	return pressureDrop / 1e5 // want unitconv "units.PaToBar"
}

// Negative cases: the named helpers, and scale factors outside a unit
// context (tolerances, grid scaling) stay legal.
func clean(c, width float64) float64 {
	tol := 1e-6
	k := units.CtoK(c)
	um := units.MToUM(width)
	scale := 1e6 * float64(3) // no unit keyword nearby
	return k + um + tol + scale
}

// Suppressed: a deliberate literal with an annotated reason.
func legacyKelvin(c float64) float64 {
	//lint:ignore unitconv matching the reference table's truncated constant
	return c + 273.15
}
