// Package soft type-checks with errors (an undefined identifier) but
// contains nothing any analyzer flags. brightlint must treat the type
// errors as soft — partial analysis, zero findings, exit 0 — because
// the build gate, not the linter, owns compile errors.
package soft

// Broken returns an identifier that does not exist; the type checker
// reports it and moves on.
func Broken() int {
	return missingSymbol
}

// Fine is ordinary clean code sharing the package with the error.
func Fine() int {
	return 42
}
