module typeerr

go 1.22
