// Package bad fails to type-check: the loader must record the errors
// and keep analyzing the rest of the module.
package bad

func Broken() int {
	return undefinedIdentifier + alsoUndefined
}
