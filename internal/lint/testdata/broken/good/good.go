// Package good type-checks and carries one finding, proving analysis
// survived the broken sibling.
package good

func ToKelvin(c float64) float64 {
	return c + 273.15 // want unitconv "units.CtoK"
}
