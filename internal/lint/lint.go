// Package lint implements brightlint, the repository's domain-aware
// static-analysis suite. Ordinary go vet cannot see the conventions the
// physics packages depend on: all computation is SI with conversions
// confined to internal/units, serving paths must call the *Context API
// variants so cancellation reaches iteration boundaries, internal/obs
// registration must stay out of hot loops and per-request handlers, and
// error returns in library code must not be silently dropped. Each
// analyzer here encodes one of those invariants as a checkable rule.
//
// Diagnostics render as `file:line:col: [analyzer] message`. A finding
// that is deliberate is suppressed in source with a directive on the
// same line or the line above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory: a suppression without a rationale is itself
// reported (analyzer name "brightlint").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the canonical `file:line:col: [analyzer] message` form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one rule: a name (used in directives and output), a short
// doc string, and a Run function producing findings for one package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// All returns the full suite in canonical order.
func All() []*Analyzer {
	return []*Analyzer{UnitConv, CtxPropagate, ObsReg, ErrIgnore, GoroutineLife, LockSafe, HTTPLife}
}

// ByName resolves a comma-separated analyzer selection against All.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, analyzerNames())
		}
		out = append(out, a)
	}
	return out, nil
}

func analyzerNames() string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// ignoreDirective is one parsed //lint:ignore comment. A well-formed
// directive suppresses matching diagnostics on its own line and on the
// line immediately below (so both trailing comments and comment-above
// style work).
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
	bad      string // non-empty when malformed: the problem description
}

const directivePrefix = "//lint:ignore"

// parseDirectives extracts every //lint:ignore directive from a file's
// comments.
func parseDirectives(fset *token.FileSet, f *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			d := ignoreDirective{file: pos.Filename, line: pos.Line}
			fields := strings.Fields(rest)
			switch {
			case !strings.HasPrefix(rest, " "):
				// e.g. //lint:ignoreXXX — not our directive; skip.
				continue
			case len(fields) == 0:
				d.bad = "missing analyzer name and reason"
			case len(fields) == 1:
				d.bad = fmt.Sprintf("suppression of %q needs a reason", fields[0])
			default:
				d.analyzer = fields[0]
				if !knownAnalyzer(fields[0]) {
					d.bad = fmt.Sprintf("unknown analyzer %q (have %s)", fields[0], analyzerNames())
				}
			}
			out = append(out, d)
		}
	}
	return out
}

func knownAnalyzer(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Run executes the analyzers over every package, applies //lint:ignore
// suppressions, reports malformed directives, and returns the combined
// findings sorted by (file, line, column, analyzer, message) so output
// is deterministic across runs.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, p := range pkgs {
		var directives []ignoreDirective
		for _, f := range p.Files {
			directives = append(directives, parseDirectives(p.Fset, f)...)
		}
		suppressed := func(d Diagnostic) bool {
			for _, dir := range directives {
				if dir.bad != "" || dir.file != d.Pos.Filename || dir.analyzer != d.Analyzer {
					continue
				}
				if d.Pos.Line == dir.line || d.Pos.Line == dir.line+1 {
					return true
				}
			}
			return false
		}
		for _, a := range analyzers {
			for _, d := range a.Run(p) {
				if !suppressed(d) {
					diags = append(diags, d)
				}
			}
		}
		for _, dir := range directives {
			if dir.bad != "" {
				diags = append(diags, Diagnostic{
					Pos:      token.Position{Filename: dir.file, Line: dir.line, Column: 1},
					Analyzer: "brightlint",
					Message:  "malformed //lint:ignore directive: " + dir.bad,
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// walkStack traverses root pre-order, calling fn with each node and its
// ancestor stack (outermost first, not including n itself). The x/tools
// inspector is off-limits (stdlib only), so this is the shared helper
// every ancestor-sensitive rule uses.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// pkgSegment returns the last path segment of an import path: the
// matching key analyzers use so the rules apply equally to the real
// module ("bright/internal/cosim") and to fixture modules
// ("fixture/internal/cosim").
func pkgSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
