// unitconv: the SI discipline. Every physics package computes in SI
// base units; the numbers that convert between SI and the paper's
// presentation units (°C, bar, µm, mA/cm², …) live in internal/units as
// named constants and helpers. A magic 273.15 or a bare *1e6 elsewhere
// is exactly the kind of silent unit corruption the paper's validation
// discipline cannot survive, so this rule flags them and points at the
// named replacement.

package lint

import (
	"go/ast"
	"go/token"
	"math"
	"strconv"
	"strings"
)

// UnitConv flags magic unit-conversion literals and inline
// temperature-offset arithmetic outside internal/units.
var UnitConv = &Analyzer{
	Name: "unitconv",
	Doc:  "flag magic unit-conversion literals outside internal/units",
	Run:  runUnitConv,
}

// physicalConst is a well-known physical constant recognized by value:
// tol absorbs the common truncated spellings (96485 for the Faraday
// constant, 8.314 for R).
type physicalConst struct {
	value float64
	tol   float64
	name  string // the units.<Name> replacement
}

var physicalConsts = []physicalConst{
	{273.15, 0, "units.ZeroCelsius"},
	{298.15, 0, "units.StandardTemperature"},
	{96485.33212, 1, "units.Faraday"},
	{8.314462618, 0.001, "units.GasConstant"},
	{101325, 0.5, "units.AtmosphericPressure"},
}

// scaleRule flags a power-of-ten factor only in a unit-suggesting
// context: the literal must be multiplied with (or divide) an
// expression that mentions one of the keywords. Bare 1e-6 tolerances
// and grid scales stay legal.
type scaleRule struct {
	values   []float64
	keywords []string
	hint     string
}

var scaleRules = []scaleRule{
	{
		values:   []float64{1e6, 1e-6},
		keywords: []string{"width", "height", "pitch", "depth", "thick", "radius", "diameter", "wall", "gap", "length"},
		hint:     "use units.MToUM/units.UMToM (or units.Micrometer) for m<->um conversions",
	},
	{
		values:   []float64{1e5, 1e-5},
		keywords: []string{"pressure", "drop", "bar", "head"},
		hint:     "use units.PaToBar/units.BarToPa (or units.Bar) for Pa<->bar conversions",
	},
	{
		values:   []float64{1e4, 1e-4},
		keywords: []string{"power", "flux", "densit", "current"},
		hint:     "use units.WPerM2ToWPerCM2/units.WPerCM2ToWPerM2 for W/m2<->W/cm2 conversions",
	},
}

// litValue returns the numeric value of an INT or FLOAT literal.
func litValue(lit *ast.BasicLit) (float64, bool) {
	if lit.Kind != token.INT && lit.Kind != token.FLOAT {
		return 0, false
	}
	v, err := strconv.ParseFloat(lit.Value, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func matchConst(v float64) (physicalConst, bool) {
	for _, c := range physicalConsts {
		if math.Abs(v-c.value) <= c.tol {
			return c, true
		}
	}
	return physicalConst{}, false
}

// mentionsKeyword reports whether any identifier or selector inside e
// contains one of the keywords (case-insensitive).
func mentionsKeyword(e ast.Expr, keywords []string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		low := strings.ToLower(id.Name)
		for _, kw := range keywords {
			if strings.Contains(low, kw) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

func runUnitConv(p *Package) []Diagnostic {
	// The conversions have to be spelled somewhere: the defining package
	// is exempt, and so is this package — the rule table above must
	// spell the magic numbers it recognizes.
	if seg := pkgSegment(p.ImportPath); seg == "units" || seg == "lint" {
		return nil
	}
	var diags []Diagnostic
	// handled marks literals already reported through a more specific
	// parent rule (offset arithmetic, scale context) so the generic
	// constant rule does not double-report them.
	handled := map[*ast.BasicLit]bool{}
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{Pos: p.Fset.Position(pos), Analyzer: "unitconv", Message: msg})
	}

	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				// Temperature-offset arithmetic: x + 273.15 / x - 273.15.
				if n.Op == token.ADD || n.Op == token.SUB {
					for _, side := range []ast.Expr{n.X, n.Y} {
						lit, ok := side.(*ast.BasicLit)
						if !ok {
							continue
						}
						if v, ok := litValue(lit); ok && v == 273.15 {
							handled[lit] = true
							helper := "units.CtoK"
							if n.Op == token.SUB && side == n.Y {
								helper = "units.KtoC"
							}
							report(n.Pos(), "inline temperature-offset arithmetic: use "+helper+" instead of the 273.15 literal")
						}
					}
				}
				// Scale factors in a unit-suggesting context.
				if n.Op == token.MUL || n.Op == token.QUO {
					for _, pair := range [][2]ast.Expr{{n.X, n.Y}, {n.Y, n.X}} {
						lit, ok := pair[0].(*ast.BasicLit)
						if !ok {
							continue
						}
						v, ok := litValue(lit)
						if !ok {
							continue
						}
						for _, rule := range scaleRules {
							for _, rv := range rule.values {
								if v == rv && mentionsKeyword(pair[1], rule.keywords) {
									handled[lit] = true
									report(lit.Pos(), "unit-scale literal "+lit.Value+" in a unit context: "+rule.hint)
								}
							}
						}
					}
				}
			case *ast.BasicLit:
				if handled[n] {
					return true
				}
				if v, ok := litValue(n); ok {
					if c, ok := matchConst(v); ok {
						report(n.Pos(), "magic physical-constant literal "+n.Value+": use "+c.name)
					}
				}
			}
			return true
		})
	}
	return diags
}
