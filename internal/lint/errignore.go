// errignore: the error discipline. A library that drops an error return
// converts a diagnosable failure into silent data corruption — a CSV
// file truncated mid-write, a JSON response half-encoded. This rule
// flags every discarded error return in non-test code: bare call
// statements, `_` in the error position of an assignment, and deferred
// or go'd calls whose error has nowhere to go. A small allowlist covers
// the documented-infallible cases (strings.Builder and bytes.Buffer
// writes, fmt printing to the standard streams).

package lint

import (
	"go/ast"
	"go/types"
)

// ErrIgnore flags discarded error returns outside the allowlist.
var ErrIgnore = &Analyzer{
	Name: "errignore",
	Doc:  "flag discarded error returns in non-test code",
	Run:  runErrIgnore,
}

// errType is the predeclared error interface.
var errType = types.Universe.Lookup("error").Type()

// returnsError reports whether the call's type includes an error
// result, and at which tuple positions.
func errorPositions(info *types.Info, call *ast.CallExpr) []int {
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		var out []int
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				out = append(out, i)
			}
		}
		return out
	default:
		if tv.Type != nil && types.Identical(tv.Type, errType) {
			return []int{0}
		}
	}
	return nil
}

// allowlisted reports whether a call's error is documented-infallible
// (or conventionally ignored) and may be dropped without annotation.
func allowlisted(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	sig, _ := fn.Type().(*types.Signature)

	// Methods on strings.Builder and bytes.Buffer never fail: the error
	// results exist only to satisfy io interfaces.
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		switch types.TypeString(recv, nil) {
		case "strings.Builder", "bytes.Buffer":
			return true
		}
	}

	if pkg != "fmt" {
		return false
	}
	// fmt.Print* to stdout is conventional display output.
	switch name {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		// Allowed only when the writer cannot fail (in-memory builders)
		// or when a write error is not actionable (standard streams); an
		// Fprint to a real file must be checked.
		if len(call.Args) > 0 {
			arg0 := ast.Unparen(call.Args[0])
			if tv, ok := info.Types[arg0]; ok {
				switch types.TypeString(tv.Type, nil) {
				case "*strings.Builder", "*bytes.Buffer":
					return true
				}
			}
			if sel, ok := arg0.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					obj := info.Uses[id]
					if pn, ok := obj.(*types.PkgName); ok && pn.Imported().Path() == "os" &&
						(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
						return true
					}
				}
			}
		}
	}
	return false
}

func runErrIgnore(p *Package) []Diagnostic {
	if p.Info == nil {
		return nil
	}
	var diags []Diagnostic
	report := func(n ast.Node, msg string) {
		diags = append(diags, Diagnostic{Pos: p.Fset.Position(n.Pos()), Analyzer: "errignore", Message: msg})
	}
	callName := func(call *ast.CallExpr) string {
		if fn := calleeFunc(p.Info, call); fn != nil {
			return fn.Name()
		}
		return "call"
	}
	checkDiscard := func(call *ast.CallExpr, how string) {
		if len(errorPositions(p.Info, call)) == 0 || allowlisted(p.Info, call) {
			return
		}
		report(call, "error return of "+callName(call)+" discarded ("+how+"): handle or log it, or annotate //lint:ignore errignore <reason>")
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscard(call, "bare call statement")
				}
			case *ast.DeferStmt:
				checkDiscard(n.Call, "deferred call")
			case *ast.GoStmt:
				checkDiscard(n.Call, "go statement")
			case *ast.AssignStmt:
				// x, _ := f() with _ in an error position.
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok || allowlisted(p.Info, call) {
					return true
				}
				for _, i := range errorPositions(p.Info, call) {
					if i < len(n.Lhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							report(id, "error return of "+callName(call)+" assigned to _: handle or log it, or annotate //lint:ignore errignore <reason>")
						}
					}
				}
			}
			return true
		})
	}
	return diags
}
