// locksafe: mutex discipline. The serving tier guards every shared
// structure (engine close state, session registries, the coordinator's
// ring and chain tables, cache internals) with sync.Mutex/RWMutex, and
// the three classic ways to get that wrong are all invisible to the
// unit tests: copying a mutex by value forks the lock so two "holders"
// proceed at once, a return path that skips Unlock deadlocks the next
// caller, and pairing RLock with Unlock (or Lock with RUnlock)
// corrupts the RWMutex reader count. go vet's copylocks covers part of
// the first; this rule covers all three, lexically, per function.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafe flags by-value mutex copies, Lock calls with an
// unlock-free return path, and RLock/Unlock kind mismatches.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "flag mutex copies, missing unlocks on return paths, and RLock/Unlock mismatches",
	Run:  runLockSafe,
}

func runLockSafe(p *Package) []Diagnostic {
	if p.Info == nil {
		return nil
	}
	var diags []Diagnostic
	report := func(n ast.Node, msg string) {
		diags = append(diags, Diagnostic{Pos: p.Fset.Position(n.Pos()), Analyzer: "locksafe", Message: msg})
	}
	for _, f := range p.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					checkLockCopyFields(p, n.Recv, "receiver", report)
				}
				checkLockCopyFields(p, n.Type.Params, "parameter", report)
				if n.Body != nil {
					checkLockBalance(p, n.Body, report)
				}
			case *ast.FuncLit:
				checkLockCopyFields(p, n.Type.Params, "parameter", report)
				checkLockBalance(p, n.Body, report)
			case *ast.RangeStmt:
				if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
					if k := identLockKind(p, id); k != "" {
						report(id, "range value "+id.Name+" copies a "+k+" each iteration: iterate by index or over pointers")
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if isLockValueRead(v) {
						if k := exprLockKind(p, v); k != "" {
							report(v, "composite literal copies a "+k+" from "+types.ExprString(v)+": share the lock through a pointer")
						}
					}
				}
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					if isLockValueRead(rhs) {
						if k := exprLockKind(p, rhs); k != "" {
							report(rhs, "assignment copies a "+k+" from "+types.ExprString(rhs)+": both copies can be 'held' at once")
						}
					}
				}
			}
		})
	}
	return diags
}

// isLockValueRead reports whether an expression reads an existing
// value (as opposed to constructing a fresh zero value, which is the
// legitimate way to initialize a lock-bearing struct).
func isLockValueRead(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// exprLockKind returns the lock type an expression's value contains
// ("sync.Mutex"/"sync.RWMutex"), or "" when it carries no lock.
func exprLockKind(p *Package, e ast.Expr) string {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	return containsLock(tv.Type, 0)
}

// identLockKind is exprLockKind for identifiers that are definitions
// (range variables), whose types live in Defs rather than Types.
func identLockKind(p *Package, id *ast.Ident) string {
	obj := p.Info.Defs[id]
	if obj == nil {
		obj = p.Info.Uses[id]
	}
	if obj == nil {
		return ""
	}
	return containsLock(obj.Type(), 0)
}

// checkLockCopyFields flags value parameters and receivers whose type
// carries a mutex.
func checkLockCopyFields(p *Package, fields *ast.FieldList, role string, report func(ast.Node, string)) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		k := containsLock(tv.Type, 0)
		if k == "" {
			continue
		}
		name := ""
		if len(field.Names) > 0 {
			name = " " + field.Names[0].Name
		}
		report(field.Type, role+name+" passes a "+k+" by value: the callee locks a private copy; use a pointer")
	}
}

// containsLock walks a type for a sync.Mutex/RWMutex carried by value:
// the lock itself, a struct holding one, or an array of either.
// Pointers stop the walk — a shared lock behind a pointer is the fix,
// not the bug.
func containsLock(t types.Type, depth int) string {
	if t == nil || depth > 4 {
		return ""
	}
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return "sync." + obj.Name()
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if k := containsLock(u.Field(i).Type(), depth+1); k != "" {
				return k
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), depth+1)
	}
	return ""
}

// lockEvent is one mutex method call inside a function scope.
type lockEvent struct {
	recv     string // rendered receiver expression, e.g. "s.mu"
	kind     string // Lock, RLock, Unlock, RUnlock
	pos      token.Pos
	node     ast.Node
	deferred bool
}

// mutexMethod resolves a call to a sync mutex method and renders its
// receiver, or returns "", "" when the call is something else.
func mutexMethod(p *Package, call *ast.CallExpr) (recv, kind string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name()
	}
	return "", ""
}

// checkLockBalance runs the per-function lock/unlock pairing rules on
// one function body. Nested function literals are their own scopes
// (the walk in runLockSafe visits them separately), with one
// exception: `defer func() { mu.Unlock() }()` releases the outer
// function's lock on every path, so unlocks inside immediately
// deferred closures count as deferred unlocks here.
func checkLockBalance(p *Package, body *ast.BlockStmt, report func(ast.Node, string)) {
	var events []lockEvent
	var returns []*ast.ReturnStmt

	walkStack(body, func(n ast.Node, stack []ast.Node) {
		for _, a := range stack {
			if _, inLit := a.(*ast.FuncLit); inLit {
				return // nested scope; deferred closures handled below
			}
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			returns = append(returns, n)
		case *ast.DeferStmt:
			if recv, kind := mutexMethod(p, n.Call); kind != "" {
				events = append(events, lockEvent{recv: recv, kind: kind, pos: n.Pos(), node: n, deferred: true})
				return
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if recv, kind := mutexMethod(p, call); kind == "Unlock" || kind == "RUnlock" {
							events = append(events, lockEvent{recv: recv, kind: kind, pos: n.Pos(), node: n, deferred: true})
						}
					}
					return true
				})
			}
		case *ast.CallExpr:
			if len(stack) > 0 {
				if _, isDefer := stack[len(stack)-1].(*ast.DeferStmt); isDefer {
					return // recorded by the DeferStmt case
				}
			}
			if recv, kind := mutexMethod(p, n); kind != "" {
				events = append(events, lockEvent{recv: recv, kind: kind, pos: n.Pos(), node: n})
			}
		}
	})

	byRecv := map[string][]lockEvent{}
	for _, e := range events {
		byRecv[e.recv] = append(byRecv[e.recv], e)
	}
	for recv, evs := range byRecv {
		checkReceiverEvents(recv, evs, returns, report)
	}
}

// checkReceiverEvents applies the pairing rules to one receiver's
// events within one function scope.
func checkReceiverEvents(recv string, evs []lockEvent, returns []*ast.ReturnStmt, report func(ast.Node, string)) {
	var locks, unlocks []lockEvent
	kinds := map[string]bool{}
	deferredUnlock := false
	for _, e := range evs {
		kinds[e.kind] = true
		switch e.kind {
		case "Lock", "RLock":
			if !e.deferred {
				locks = append(locks, e)
			}
		case "Unlock", "RUnlock":
			if e.deferred {
				deferredUnlock = true
			} else {
				unlocks = append(unlocks, e)
			}
		}
	}

	// Kind mismatch: only decidable when exactly one lock flavor is
	// used in this function.
	if kinds["RLock"] && !kinds["Lock"] && kinds["Unlock"] && !kinds["RUnlock"] {
		for _, e := range evs {
			if e.kind == "Unlock" {
				report(e.node, recv+".RLock() is released with Unlock(): use "+recv+".RUnlock() to keep the reader count sane")
				break
			}
		}
	}
	if kinds["Lock"] && !kinds["RLock"] && kinds["RUnlock"] && !kinds["Unlock"] {
		for _, e := range evs {
			if e.kind == "RUnlock" {
				report(e.node, recv+".Lock() is released with RUnlock(): use "+recv+".Unlock()")
				break
			}
		}
	}

	if len(locks) == 0 || deferredUnlock {
		return // nothing held, or a deferred unlock covers every path
	}

	flaggedReturns := map[token.Pos]bool{}
	for _, l := range locks {
		unlockedAfter := false
		for _, u := range unlocks {
			if u.pos > l.pos {
				unlockedAfter = true
				break
			}
		}
		returnAfter := false
		for _, r := range returns {
			if r.Pos() <= l.pos {
				continue
			}
			returnAfter = true
			covered := false
			for _, u := range unlocks {
				if u.pos > l.pos && u.pos < r.Pos() {
					covered = true
					break
				}
			}
			if !covered && !flaggedReturns[r.Pos()] {
				flaggedReturns[r.Pos()] = true
				report(r, "return path after "+recv+"."+l.kind+"() has no "+recv+".Unlock(): the next caller deadlocks; unlock before returning or defer the unlock")
			}
		}
		if !unlockedAfter && !returnAfter {
			report(l.node, recv+"."+l.kind+"() is never released in this function: defer the unlock or release it on every path")
		}
	}
}
