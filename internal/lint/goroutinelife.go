// goroutinelife: goroutine and ticker lifetime discipline on the
// serving paths. The daemon's long-lived layers (internal/sim workers,
// internal/stream session run loops, the internal/cluster coordinator)
// spawn goroutines that must die with their owner: a `go` statement
// whose body loops forever with no ctx.Done()/return/break exit keeps
// the goroutine alive past Shutdown, and a time.Ticker or time.Timer
// that is never stopped pins its runtime timer (and, for time.Tick,
// the whole ticker) for the life of the process. Both leak slowly
// enough to pass every functional test and still take the daemon down
// under sustained traffic, so they get a static rule; the runtime twin
// is internal/testutil/leakcheck.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLife flags unterminated goroutines and unstopped
// tickers/timers in serving-path packages.
var GoroutineLife = &Analyzer{
	Name: "goroutinelife",
	Doc:  "require termination paths for goroutines and Stop for tickers/timers on serving paths",
	Run:  runGoroutineLife,
}

func runGoroutineLife(p *Package) []Diagnostic {
	if !servingPkg(p.ImportPath) || p.Info == nil {
		return nil
	}
	var diags []Diagnostic
	report := func(n ast.Node, msg string) {
		diags = append(diags, Diagnostic{Pos: p.Fset.Position(n.Pos()), Analyzer: "goroutinelife", Message: msg})
	}

	// Bodies of named package functions and of function literals bound
	// to local variables, so `go attempt(i)` and `go m.janitor()`
	// resolve to something inspectable.
	declBodies := map[*types.Func]*ast.BlockStmt{}
	litBodies := map[types.Object]*ast.BlockStmt{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if fn, ok := p.Info.Defs[n.Name].(*types.Func); ok && n.Body != nil {
					declBodies[fn] = n.Body
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(n.Lhs) {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := p.Info.Defs[id]; obj != nil {
							litBodies[obj] = lit.Body
						} else if obj := p.Info.Uses[id]; obj != nil {
							litBodies[obj] = lit.Body
						}
					}
				}
			}
			return true
		})
	}
	goBody := func(call *ast.CallExpr) *ast.BlockStmt {
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.FuncLit:
			return fun.Body
		case *ast.Ident:
			if obj := p.Info.Uses[fun]; obj != nil {
				if b, ok := litBodies[obj]; ok {
					return b
				}
			}
		}
		if fn := calleeFunc(p.Info, call); fn != nil {
			return declBodies[fn]
		}
		return nil
	}

	for _, f := range p.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.GoStmt:
				body := goBody(n.Call)
				if body == nil {
					return // body in another package or not statically resolvable
				}
				if loop := unterminatedLoop(body); loop != nil {
					report(n, "goroutine loops forever with no termination path (no return, break, or <-Done() receive): it outlives its owner's Shutdown")
				}
			case *ast.CallExpr:
				checkTimerCall(p, n, stack, report)
			}
		})
	}
	return diags
}

// unterminatedLoop returns the first `for { ... }` loop in body (not
// inside a nested function literal) that has no exit: no return, no
// break out of the loop, and no receive from a Done()-style channel.
// Bounded loops (a condition, or range over a collection or closable
// channel) are presumed to terminate.
func unterminatedLoop(body *ast.BlockStmt) *ast.ForStmt {
	var found *ast.ForStmt
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil || found != nil {
			return
		}
		for _, a := range stack {
			if _, inLit := a.(*ast.FuncLit); inLit {
				return // a loop in a nested closure is that closure's problem
			}
		}
		if !loopExits(loop) {
			found = loop
		}
	})
	return found
}

// loopExits reports whether control can leave the loop from inside its
// body: a return, a break that targets this loop (labeled breaks always
// leave it), or a receive from some Done() channel — the idiomatic
// shutdown signal.
func loopExits(loop *ast.ForStmt) bool {
	exits := false
	walkStack(loop.Body, func(n ast.Node, stack []ast.Node) {
		if exits {
			return
		}
		for _, a := range stack {
			if _, inLit := a.(*ast.FuncLit); inLit {
				return
			}
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			exits = true
		case *ast.BranchStmt:
			if n.Tok != token.BREAK {
				return
			}
			if n.Label != nil {
				exits = true // labeled break leaves this loop or an outer one
				return
			}
			// An unlabeled break targets the innermost for/select/switch;
			// it only exits our loop when none of those sit in between.
			for _, a := range stack {
				switch a.(type) {
				case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
					return
				}
			}
			exits = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isDoneCall(n.X) {
				exits = true
			}
		}
	})
	return exits
}

// isDoneCall matches `x.Done()` — the context.Context / closable-signal
// convention for "this channel closes on shutdown".
func isDoneCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Done"
}

// checkTimerCall flags time.Tick (its ticker can never be stopped) and
// time.NewTicker/time.NewTimer values with no Stop call in the
// function that created them. A value that escapes — returned, stored
// in a field, or handed to another function — is someone else's to
// stop, and is skipped.
func checkTimerCall(p *Package, call *ast.CallExpr, stack []ast.Node, report func(ast.Node, string)) {
	fn := calleeFunc(p.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return
	}
	switch fn.Name() {
	case "Tick":
		report(call, "time.Tick leaks its Ticker (no handle to Stop): use time.NewTicker with defer t.Stop()")
		return
	case "NewTicker", "NewTimer":
	default:
		return
	}
	kind := "time." + fn.Name()
	if len(stack) == 0 {
		return
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		// t := time.NewTicker(d): require t.Stop() in the enclosing
		// function unless t escapes it.
		idx := -1
		for i, rhs := range parent.Rhs {
			if rhs == call {
				idx = i
			}
		}
		if idx < 0 || idx >= len(parent.Lhs) {
			return
		}
		id, ok := parent.Lhs[idx].(*ast.Ident)
		if !ok || id.Name == "_" {
			report(call, kind+" result is discarded: the ticker/timer can never be stopped")
			return
		}
		var obj types.Object
		if obj = p.Info.Defs[id]; obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		encl := enclosingFuncBody(stack)
		if encl == nil {
			return
		}
		stopped, escaped := timerDisposition(p, encl, obj)
		if !stopped && !escaped {
			report(call, kind+" assigned to "+id.Name+" is never stopped in this function: add defer "+id.Name+".Stop() or stop it on every exit path")
		}
	case *ast.ExprStmt:
		report(call, kind+" result is discarded: the ticker/timer can never be stopped")
	case *ast.SelectorExpr:
		// <-time.NewTimer(d).C and friends: the value is unnameable, so
		// nothing can ever stop it.
		report(call, kind+" used inline leaves no handle to Stop: bind it to a variable and defer Stop")
	}
}

// enclosingFuncBody returns the body of the innermost function in the
// ancestor stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			return n.Body
		case *ast.FuncDecl:
			return n.Body
		}
	}
	return nil
}

// timerDisposition scans a function body for what becomes of a
// ticker/timer variable: a .Stop() call (possibly deferred, possibly
// in a deferred closure) marks it stopped; being returned, reassigned,
// passed as an argument, aliased, or address-taken marks it escaped.
func timerDisposition(p *Package, body *ast.BlockStmt, obj types.Object) (stopped, escaped bool) {
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || p.Info.Uses[id] != obj {
			return
		}
		if len(stack) == 0 {
			return
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.SelectorExpr:
			if parent.X == id && parent.Sel.Name == "Stop" {
				stopped = true
			}
			// t.C, t.Reset(...) are ordinary uses, not escapes.
		case *ast.CallExpr:
			for _, arg := range parent.Args {
				if arg == id {
					escaped = true
				}
			}
		case *ast.ReturnStmt, *ast.KeyValueExpr, *ast.CompositeLit:
			escaped = true
		case *ast.UnaryExpr:
			if parent.Op == token.AND {
				escaped = true
			}
		case *ast.AssignStmt:
			for _, rhs := range parent.Rhs {
				if rhs == id {
					escaped = true // aliased into another variable or field
				}
			}
		}
	})
	return stopped, escaped
}
