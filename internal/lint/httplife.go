// httplife: HTTP request/response lifecycle discipline. The serving
// tier's contracts live outside the type system: WriteHeader commits
// the status exactly once (a second call is a logged no-op that masks
// the real status); after Hijack the ResponseWriter is dead; an
// *http.Response body left unclosed pins its keep-alive connection and
// its readLoop goroutine (the coordinator fans out to every shard, so
// one leak per request scales with the ring); a 429 without
// Retry-After breaks the admission contract the cluster and stream
// tiers promise their clients; and a handler that decodes r.Body
// without http.MaxBytesReader lets one hostile POST stream unbounded
// data into the daemon. Each is a lexical, per-function rule here.
package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
)

// HTTPLife flags double WriteHeader, writes after Hijack, unclosed
// response bodies, 429 without Retry-After, and unbounded request-body
// reads in handlers.
var HTTPLife = &Analyzer{
	Name: "httplife",
	Doc:  "enforce HTTP lifecycle contracts: single WriteHeader, closed bodies, Retry-After on 429, bounded request reads",
	Run:  runHTTPLife,
}

func runHTTPLife(p *Package) []Diagnostic {
	if p.Info == nil {
		return nil
	}
	rw := responseWriterIface(p)
	var diags []Diagnostic
	report := func(n ast.Node, msg string) {
		diags = append(diags, Diagnostic{Pos: p.Fset.Position(n.Pos()), Analyzer: "httplife", Message: msg})
	}
	for _, f := range p.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return
				}
				checkWriterLifecycle(p, rw, n.Body, report)
				checkResponseBodies(p, n.Body, report)
				checkRetryAfter(p, n.Body, report)
				if handlerShaped(p.Info, n) {
					checkRequestBodyBound(p, n.Type, n.Body, report)
				}
			case *ast.FuncLit:
				checkWriterLifecycle(p, rw, n.Body, report)
				checkResponseBodies(p, n.Body, report)
				if handlerShaped(p.Info, n) {
					checkRequestBodyBound(p, n.Type, n.Body, report)
				}
			}
		})
	}
	return diags
}

// responseWriterIface digs net/http.ResponseWriter out of the
// package's imports; nil when the package never imports net/http (no
// HTTP code, nothing to check).
func responseWriterIface(p *Package) *types.Interface {
	if p.Types == nil {
		return nil
	}
	for _, imp := range p.Types.Imports() {
		if imp.Path() != "net/http" {
			continue
		}
		if obj, ok := imp.Scope().Lookup("ResponseWriter").(*types.TypeName); ok {
			if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
				return iface
			}
		}
	}
	return nil
}

// writerEvent is one status/body operation on a ResponseWriter within
// one function scope.
type writerEvent struct {
	node   ast.Node
	recv   string
	method string
	path   []ast.Node // ancestors within the scope, outermost first, ending at the call
	inLoop bool
}

// checkWriterLifecycle runs the WriteHeader-once and no-writes-after-
// Hijack rules on one function scope (nested literals are their own
// scopes).
func checkWriterLifecycle(p *Package, rw *types.Interface, body *ast.BlockStmt, report func(ast.Node, string)) {
	if rw == nil {
		return
	}
	var writes []writerEvent
	var hijacks []token.Pos
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		for _, a := range stack {
			if _, inLit := a.(*ast.FuncLit); inLit {
				return
			}
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		name := sel.Sel.Name
		if name == "Hijack" && len(call.Args) == 0 {
			hijacks = append(hijacks, call.Pos())
			return
		}
		if (name != "WriteHeader" && name != "Write" && name != "Flush") ||
			(name == "WriteHeader" && len(call.Args) != 1) {
			return
		}
		tv, ok := p.Info.Types[sel.X]
		if !ok || tv.Type == nil || !types.Implements(tv.Type, rw) {
			return
		}
		inLoop := false
		for _, a := range stack {
			switch a.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				inLoop = true
			}
		}
		path := append(append([]ast.Node{}, stack...), call)
		writes = append(writes, writerEvent{node: call, recv: types.ExprString(sel.X), method: name, path: path, inLoop: inLoop})
	})

	flagged := map[ast.Node]bool{}
	for i, a := range writes {
		if a.method != "WriteHeader" {
			continue
		}
		if a.inLoop && !flagged[a.node] {
			flagged[a.node] = true
			report(a.node, a.recv+".WriteHeader inside a loop can commit the status more than once")
			continue
		}
		for j := i + 1; j < len(writes); j++ {
			b := writes[j]
			if b.method != "WriteHeader" || b.recv != a.recv || flagged[b.node] {
				continue
			}
			if writeCanFollow(a.path, b.path) {
				flagged[b.node] = true
				first := p.Fset.Position(a.node.Pos())
				report(b.node, a.recv+".WriteHeader may already have been called on this path (first call at line "+strconv.Itoa(first.Line)+"): the second call is ignored and masks the real status")
			}
		}
	}
	for _, h := range hijacks {
		for _, w := range writes {
			if w.node.Pos() > h && !flagged[w.node] {
				flagged[w.node] = true
				report(w.node, w.recv+"."+w.method+" after Hijack: the connection belongs to the hijacker and the ResponseWriter is dead")
			}
		}
	}
}

// stmtList returns the statement list a node carries, if any.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// writeCanFollow approximates reachability from call A to call B
// (pathA/pathB are their ancestor paths within a shared scope): the
// calls must diverge inside a statement list (divergence inside an
// if/switch/select node means mutually exclusive branches), A's branch
// must not exit (no return/break/continue after it on the way up to
// the common list), and no statement between the two in that list may
// exit either.
func writeCanFollow(pathA, pathB []ast.Node) bool {
	n := len(pathA)
	if len(pathB) < n {
		n = len(pathB)
	}
	div := -1
	for i := 0; i < n; i++ {
		if pathA[i] != pathB[i] {
			div = i
			break
		}
	}
	if div <= 0 {
		return false
	}
	list := stmtList(pathA[div-1])
	if list == nil {
		return false // diverged inside an if/switch/select: exclusive branches
	}
	idxA, idxB := indexOfSubtree(list, pathA[div]), indexOfSubtree(list, pathB[div])
	if idxA < 0 || idxB < 0 || idxA >= idxB {
		return false
	}
	// A's own branch must fall through to the end of its statement.
	for j := div; j < len(pathA)-1; j++ {
		l := stmtList(pathA[j])
		if l == nil {
			continue
		}
		idx := indexOfSubtree(l, pathA[j+1])
		if idx < 0 {
			continue
		}
		for _, s := range l[idx+1:] {
			switch s.(type) {
			case *ast.ReturnStmt, *ast.BranchStmt:
				return false
			}
		}
	}
	// Nothing between the two statements may exit.
	for _, s := range list[idxA+1 : idxB] {
		switch s.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return false
		}
	}
	return true
}

func indexOfSubtree(list []ast.Stmt, n ast.Node) int {
	for i, s := range list {
		if s == n {
			return i
		}
	}
	return -1
}

// checkResponseBodies flags *http.Response values whose Body is not
// closed on any path: no resp.Body.Close(), not handed to another
// function, not returned or stored. Close calls inside deferred
// closures count — the scan spans nested literals.
func checkResponseBodies(p *Package, body *ast.BlockStmt, report func(ast.Node, string)) {
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return
		}
		for _, a := range stack {
			if _, inLit := a.(*ast.FuncLit); inLit {
				return // the literal gets its own scope pass
			}
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		tv, ok := p.Info.Types[call]
		if !ok || tv.Type == nil {
			return
		}
		idx := -1
		switch t := tv.Type.(type) {
		case *types.Tuple:
			for i := 0; i < t.Len(); i++ {
				if types.TypeString(t.At(i).Type(), nil) == "*net/http.Response" {
					idx = i
				}
			}
		default:
			if types.TypeString(t, nil) == "*net/http.Response" {
				idx = 0
			}
		}
		if idx < 0 || idx >= len(assign.Lhs) {
			return
		}
		id, ok := assign.Lhs[idx].(*ast.Ident)
		if !ok {
			return // stored into a field: escapes, owner closes it
		}
		if id.Name == "_" {
			report(assign, "the *http.Response is discarded: on success its Body must be closed or the connection leaks")
			return
		}
		var obj types.Object
		if obj = p.Info.Defs[id]; obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if !responseHandled(p, body, obj) {
			report(assign, id.Name+".Body is never closed on this path: defer "+id.Name+".Body.Close() (or hand the response off) so the keep-alive connection is reusable")
		}
	})
}

// responseHandled reports whether a response variable is closed,
// delegated, or escapes within the scope (nested literals included:
// `defer func() { closeBody(resp) }()` counts).
func responseHandled(p *Package, body *ast.BlockStmt, obj types.Object) bool {
	handled := false
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		if handled {
			return
		}
		id, ok := n.(*ast.Ident)
		if !ok || (p.Info.Uses[id] != obj) {
			return
		}
		if len(stack) == 0 {
			return
		}
		switch parent := stack[len(stack)-1].(type) {
		case *ast.SelectorExpr:
			// resp.Body.Close(): selector chain Body then Close as a call.
			if parent.Sel.Name != "Body" || len(stack) < 2 {
				return
			}
			if outer, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && outer.Sel.Name == "Close" {
				if len(stack) >= 3 {
					if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == outer {
						handled = true
					}
				}
			}
		case *ast.CallExpr:
			for _, arg := range parent.Args {
				if arg == id {
					handled = true // delegated, e.g. defer closeBody(resp)
				}
			}
		case *ast.ReturnStmt, *ast.KeyValueExpr, *ast.CompositeLit:
			handled = true
		case *ast.UnaryExpr:
			if parent.Op == token.AND {
				handled = true
			}
		case *ast.AssignStmt:
			for _, rhs := range parent.Rhs {
				if rhs == id {
					handled = true // aliased: tracking stops here
				}
			}
		}
	})
	return handled
}

// checkRetryAfter enforces the admission contract: any function that
// sends a 429 must also set a Retry-After header (the scan covers the
// whole declaration, nested literals included).
func checkRetryAfter(p *Package, body *ast.BlockStmt, report func(ast.Node, string)) {
	var uses []ast.Expr
	hasRetryAfter := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			tv, ok := p.Info.Types[arg]
			if !ok || tv.Value == nil {
				continue
			}
			switch tv.Value.Kind() {
			case constant.Int:
				if v, ok := constant.Int64Val(tv.Value); ok && v == 429 {
					uses = append(uses, arg)
				}
			case constant.String:
				if constant.StringVal(tv.Value) == "Retry-After" {
					hasRetryAfter = true
				}
			}
		}
		return true
	})
	if hasRetryAfter {
		return
	}
	for _, u := range uses {
		report(u, "429 without a Retry-After header breaks the admission contract: tell the client when to come back")
	}
}

// checkRequestBodyBound requires http.MaxBytesReader (or an
// io.LimitReader) before a handler reads r.Body — POST/PUT bodies are
// attacker-sized.
func checkRequestBodyBound(p *Package, ft *ast.FuncType, body *ast.BlockStmt, report func(ast.Node, string)) {
	if ft.Params == nil || len(ft.Params.List) < 2 || len(ft.Params.List[1].Names) == 0 {
		return
	}
	reqIdent := ft.Params.List[1].Names[0]
	reqObj := p.Info.Defs[reqIdent]
	if reqObj == nil || reqIdent.Name == "_" {
		return
	}
	bounded := false
	var firstRead ast.Node
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(p.Info, n); fn != nil && fn.Pkg() != nil {
				if (fn.Pkg().Path() == "net/http" && fn.Name() == "MaxBytesReader") ||
					(fn.Pkg().Path() == "io" && fn.Name() == "LimitReader") {
					bounded = true
				}
			}
		case *ast.SelectorExpr:
			if n.Sel.Name != "Body" {
				return
			}
			id, ok := n.X.(*ast.Ident)
			if !ok || p.Info.Uses[id] != reqObj || len(stack) == 0 {
				return
			}
			switch parent := stack[len(stack)-1].(type) {
			case *ast.CallExpr:
				// r.Body handed to a reader: json.NewDecoder(r.Body),
				// io.ReadAll(r.Body), ...
				for _, arg := range parent.Args {
					if arg == n && firstRead == nil {
						firstRead = n
					}
				}
			case *ast.SelectorExpr:
				// r.Body.Close() and friends are lifecycle, not reads.
			case *ast.AssignStmt:
				// r.Body = http.MaxBytesReader(...) is the fix pattern.
			}
		}
	})
	if !bounded && firstRead != nil {
		report(firstRead, "request body is read with no http.MaxBytesReader bound: one hostile POST can stream unbounded data; wrap r.Body first")
	}
}
