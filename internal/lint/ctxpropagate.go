// ctxpropagate: the cancellation discipline. The serving stack
// (internal/sim, internal/stream, internal/cluster, cmd/brightd)
// threads context.Context from the HTTP request down to the iterative
// solvers, which check it at iteration boundaries; a call to a
// non-Context API variant — or a fresh context.Background() — anywhere
// on that path silently detaches the solve from request cancellation,
// and a client timeout stops buying the server anything. In the
// cluster tier the same discipline keeps proxied backend calls tied to
// the client request, so a hung shard cannot pin coordinator
// goroutines past the caller's deadline. This rule flags both within
// the serving packages.

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPropagate flags non-Context API calls and fresh root contexts in
// serving-path packages.
var CtxPropagate = &Analyzer{
	Name: "ctxpropagate",
	Doc:  "require *Context API variants and inherited contexts on serving paths",
	Run:  runCtxPropagate,
}

// servingPkg reports whether an import path is part of the serving
// stack. Matching by suffix keeps the rule applicable to fixture
// modules.
func servingPkg(path string) bool {
	return strings.HasSuffix(path, "internal/sim") ||
		strings.HasSuffix(path, "internal/stream") ||
		strings.HasSuffix(path, "internal/cluster") ||
		strings.HasSuffix(path, "cmd/brightd")
}

// nonContextSiblings maps (defining package's last path segment,
// function or method name) to the *Context variant that must be called
// instead on serving paths.
var nonContextSiblings = map[[2]string]string{
	{"cosim", "Run"}:              "cosim.RunContext",
	{"thermal", "Solve"}:          "thermal.SolveContext",
	{"thermal", "SolveSchedule"}:  "thermal.SolveScheduleContext",
	{"thermal", "SolveTransient"}: "thermal.SolveTransientContext",
	{"pdn", "SolveTransient"}:     "pdn.SolveTransientContext",
	{"flowcell", "Polarize"}:      "PolarizeContext",
	{"core", "Evaluate"}:          "EvaluateContext",
}

// calleeFunc resolves the *types.Func a call invokes, when it is a
// direct (possibly selector-qualified) call to a named function or
// method.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

func runCtxPropagate(p *Package) []Diagnostic {
	if !servingPkg(p.ImportPath) || p.Info == nil {
		return nil
	}
	var diags []Diagnostic
	report := func(n ast.Node, msg string) {
		diags = append(diags, Diagnostic{Pos: p.Fset.Position(n.Pos()), Analyzer: "ctxpropagate", Message: msg})
	}
	for _, f := range p.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return
			}
			seg := pkgSegment(fn.Pkg().Path())
			switch {
			case fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO"):
				// signal.NotifyContext(context.Background(), ...) is the
				// documented way to build the process root context; the
				// Background() argument there is allowed.
				if parentIsSignalNotify(p.Info, stack) {
					return
				}
				report(call, "context."+fn.Name()+"() on a serving path detaches the solve from request cancellation: derive the context from the caller instead")
			default:
				if repl, ok := nonContextSiblings[[2]string{seg, fn.Name()}]; ok {
					report(call, seg+"."+fn.Name()+" has no cancellation hook on a serving path: call "+repl+" so cancellation reaches iteration boundaries")
				}
			}
		})
	}
	return diags
}

// parentIsSignalNotify reports whether the innermost enclosing call is
// os/signal.NotifyContext.
func parentIsSignalNotify(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := calleeFunc(info, call)
		return fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "os/signal" && fn.Name() == "NotifyContext"
	}
	return false
}
