// Loader: enumerates packages with `go list -json`, parses them with
// go/parser and type-checks them with go/types. Intra-module imports
// are resolved against the go list output (so the module layout, not
// GOPATH heuristics, decides what an import path means); everything
// else — the standard library — goes through the stdlib source
// importer. The main module therefore stays dependency-free: no
// golang.org/x/tools, no export-data formats.
//
// Type-check errors are soft: a package that fails to check is still
// returned (with partial type information and its errors recorded) and
// the remaining packages are still analyzed. Analysis of a tree must
// not be held hostage by one broken package.

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed and (best-effort) type-checked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File // non-test GoFiles, in go list order
	Types      *types.Package
	Info       *types.Info
	// TypeErrors holds every soft type-check error; analyzers run with
	// whatever partial information survived.
	TypeErrors []error
	// LoadError is a go list-level problem (unparsable file list, etc.).
	LoadError error
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Loader loads and type-checks module packages with a shared FileSet
// and a shared import cache, so one invocation type-checks each
// dependency exactly once.
type Loader struct {
	dir  string // directory to run go list in ("" = cwd)
	fset *token.FileSet
	std  types.ImporterFrom
	mod  map[string]*listPackage // import path -> module package
	done map[string]*Package     // import path -> result
	busy map[string]bool         // import cycle guard
}

// NewLoader returns a loader rooted at dir (the module to analyze; ""
// means the current directory).
func NewLoader(dir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		dir:  dir,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		mod:  map[string]*listPackage{},
		done: map[string]*Package{},
		busy: map[string]bool{},
	}
}

// Load lists patterns (typically "./...") in dir and returns the
// matched packages, parsed and type-checked, sorted by import path.
func Load(dir string, patterns ...string) ([]*Package, error) {
	l := NewLoader(dir)
	lps, err := l.list(patterns)
	if err != nil {
		return nil, err
	}
	for _, lp := range lps {
		l.mod[lp.ImportPath] = lp
	}
	var out []*Package
	for _, lp := range lps {
		if lp.Name == "" && len(lp.GoFiles) == 0 {
			// Pattern matched a directory with no buildable files.
			continue
		}
		out = append(out, l.load(lp.ImportPath))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// list shells out to `go list -e -json`. -e keeps broken packages in
// the output (with their Error recorded) instead of failing the whole
// enumeration.
func (l *Loader) list(patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var out []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := &listPackage{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// load parses and type-checks one module package, memoized. It never
// returns nil: failures are recorded on the Package.
func (l *Loader) load(path string) *Package {
	if p, ok := l.done[path]; ok {
		return p
	}
	lp := l.mod[path]
	p := &Package{ImportPath: path, Name: lp.Name, Dir: lp.Dir, Fset: l.fset}
	l.done[path] = p
	if lp.Error != nil {
		p.LoadError = fmt.Errorf("%s", lp.Error.Err)
	}

	files := append([]string(nil), lp.GoFiles...)
	sort.Strings(files)
	for _, name := range files {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if f != nil {
			p.Files = append(p.Files, f)
		}
		if err != nil {
			p.TypeErrors = append(p.TypeErrors, err)
		}
	}
	if len(p.Files) == 0 {
		return p
	}

	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: l,
		// Soft errors: record and keep checking, so one bad package (or
		// one bad file) degrades to partial info instead of aborting.
		Error: func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	l.busy[path] = true
	pkg, err := conf.Check(path, l.fset, p.Files, p.Info)
	delete(l.busy, path)
	p.Types = pkg
	if err != nil && len(p.TypeErrors) == 0 {
		p.TypeErrors = append(p.TypeErrors, err)
	}
	return p
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.dir, 0)
}

// ImportFrom implements types.ImporterFrom: module packages resolve
// through the loader's own cache (type-checked from source at the
// directory go list reported), everything else through the stdlib
// source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if _, ok := l.mod[path]; ok {
		if l.busy[path] {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		p := l.load(path)
		if p.Types == nil {
			return nil, fmt.Errorf("package %s failed to type-check", path)
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
