package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestCheckDetectsLeak parks a goroutine on a channel, expects Check
// to name it, then releases it and expects the retry window to see it
// drain.
func TestCheckDetectsLeak(t *testing.T) {
	release := make(chan struct{})
	go func() {
		<-release
	}()

	err := Check(100 * time.Millisecond)
	if err == nil {
		t.Fatal("Check found no leak while a goroutine was parked")
	}
	if !strings.Contains(err.Error(), "leakcheck_test") {
		t.Errorf("leak report does not name the leaking frame:\n%s", err)
	}

	close(release)
	if err := Check(2 * time.Second); err != nil {
		t.Errorf("goroutine released but still reported: %v", err)
	}
}

// TestExtraAllowlist proves a deliberate process-lifetime goroutine can
// be tolerated by substring, the same way the built-in allowlist works.
func TestExtraAllowlist(t *testing.T) {
	release := make(chan struct{})
	go parkedHelper(release)
	defer close(release)

	if err := Check(100*time.Millisecond, "leakcheck.parkedHelper"); err != nil {
		t.Errorf("allowlisted goroutine still reported: %v", err)
	}
	if err := Check(50 * time.Millisecond); err == nil {
		t.Error("without the allowlist entry the parked goroutine should be a leak")
	}
}

func parkedHelper(release chan struct{}) {
	<-release
}

// TestMain dogfoods the harness on its own package.
func TestMain(m *testing.M) {
	Main(m)
}
