// Package leakcheck is the runtime twin of the goroutinelife analyzer:
// a goleak-style goroutine-neutrality harness for package TestMains.
// After a package's tests pass, it snapshots every live goroutine via
// runtime.Stack, subtracts an allowlist (test machinery, stdlib signal
// pollers, the process-lifetime kernel pool), and fails the run if
// anything else is still alive once a retry window — goroutines that
// are merely winding down deserve a moment — has elapsed. The serving
// packages (internal/sim, internal/stream, internal/cluster) wire it
// into TestMain, so every `make race-all` run also proves the engine
// workers, session run loops, and coordinator probes all died with
// their owners.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// defaultWindow is how long Main lets residual goroutines wind down
// before calling them leaks. Session run loops and engine workers exit
// promptly after Shutdown; five seconds is far past honest cleanup.
const defaultWindow = 5 * time.Second

// defaultAllow lists stack substrings of goroutines that are allowed
// to outlive a test run.
var defaultAllow = []string{
	// Test machinery: the main test goroutine and runners mid-teardown.
	"testing.Main(",
	"testing.(*M).",
	"testing.tRunner(",
	"testing.runTests(",
	"testing.runFuzzing(",
	"testing.runFuzzTests(",
	// Stdlib pollers that live for the process by design.
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime.ensureSigM",
	// The persistent kernel pool (internal/num): workers park on the
	// work channel forever by contract; they are the one sanctioned
	// process-lifetime pool in the repo.
	"internal/num.kernelWorker",
	// os/exec's context watcher unwinds asynchronously after Wait
	// (the cluster e2e test runs real brightd processes).
	"os/exec.(*Cmd).watchCtx",
}

// stacks returns one formatted stack per live goroutine; the first
// entry is the goroutine running the check itself.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	return strings.Split(strings.TrimSpace(string(buf)), "\n\n")
}

// leaked returns the stacks of goroutines not covered by the
// allowlists.
func leaked(extraAllow []string) []string {
	var out []string
	for i, g := range stacks() {
		if i == 0 {
			continue // the goroutine running this check
		}
		allowed := false
		for _, a := range defaultAllow {
			if strings.Contains(g, a) {
				allowed = true
				break
			}
		}
		for _, a := range extraAllow {
			if !allowed && strings.Contains(g, a) {
				allowed = true
			}
		}
		if !allowed {
			out = append(out, g)
		}
	}
	return out
}

// Check polls until no non-allowlisted goroutines remain or the window
// expires, then reports the survivors. extraAllow entries are matched
// as stack substrings, like the built-in allowlist.
func Check(window time.Duration, extraAllow ...string) error {
	deadline := time.Now().Add(window)
	delay := 10 * time.Millisecond
	for {
		l := leaked(extraAllow)
		if len(l) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("leakcheck: %d goroutine(s) still alive %v after the tests finished:\n\n%s",
				len(l), window, strings.Join(l, "\n\n"))
		}
		time.Sleep(delay)
		if delay < 200*time.Millisecond {
			delay *= 2
		}
	}
}

// Main runs a package's tests and then enforces goroutine-neutrality:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// A leak turns a passing run into a failing one; an already-failing
// run keeps its own exit code so the real failure stays on top.
func Main(m *testing.M, extraAllow ...string) {
	code := m.Run()
	if code == 0 {
		if err := Check(defaultWindow, extraAllow...); err != nil {
			fmt.Fprintln(os.Stderr, err)
			code = 1
		}
	}
	os.Exit(code)
}
