package mesh

import (
	"math"
	"math/rand"
	"testing"
)

func TestUniformAxis(t *testing.T) {
	a := NewUniformAxis(1.0, 4)
	if a.N() != 4 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Length() != 1.0 {
		t.Fatalf("Length = %g", a.Length())
	}
	if math.Abs(a.Centers[0]-0.125) > 1e-15 || math.Abs(a.Widths[2]-0.25) > 1e-15 {
		t.Fatalf("centers/widths wrong: %v %v", a.Centers, a.Widths)
	}
	if a.Edges[4] != 1.0 {
		t.Fatal("last edge must be exact")
	}
}

func TestNonuniformAxis(t *testing.T) {
	a := NewAxis([]float64{0, 0.1, 0.5, 1.0})
	if a.N() != 3 {
		t.Fatalf("N = %d", a.N())
	}
	if math.Abs(a.Widths[1]-0.4) > 1e-15 {
		t.Fatalf("width[1] = %g", a.Widths[1])
	}
	if math.Abs(a.CenterSpacing(0)-(0.3-0.05)) > 1e-15 {
		t.Fatalf("center spacing = %g", a.CenterSpacing(0))
	}
}

func TestAxisPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero cells", func() { NewUniformAxis(1, 0) })
	mustPanic("negative length", func() { NewUniformAxis(-1, 3) })
	mustPanic("non-increasing", func() { NewAxis([]float64{0, 1, 1}) })
	mustPanic("too few edges", func() { NewAxis([]float64{0}) })
}

func TestFindCell(t *testing.T) {
	a := NewAxis([]float64{0, 1, 3, 6})
	cases := []struct {
		x    float64
		want int
	}{
		{-5, 0}, {0, 0}, {0.99, 0}, {1, 1}, {2.5, 1}, {3, 2}, {5.9, 2}, {6, 2}, {100, 2},
	}
	for _, c := range cases {
		if got := a.FindCell(c.x); got != c.want {
			t.Errorf("FindCell(%g) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestFindCellConsistentWithEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	edges := []float64{0}
	for i := 0; i < 30; i++ {
		edges = append(edges, edges[len(edges)-1]+0.01+rng.Float64())
	}
	a := NewAxis(edges)
	for trial := 0; trial < 500; trial++ {
		x := rng.Float64() * a.Length()
		i := a.FindCell(x)
		if x < a.Edges[i] || x > a.Edges[i+1] {
			t.Fatalf("x=%g not inside cell %d [%g,%g]", x, i, a.Edges[i], a.Edges[i+1])
		}
	}
}

func TestGrid2DIndexRoundTrip(t *testing.T) {
	g := NewUniformGrid2D(2, 1, 5, 3)
	if g.NumCells() != 15 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
	for j := 0; j < g.NY(); j++ {
		for i := 0; i < g.NX(); i++ {
			ii, jj := g.Coords(g.Index(i, j))
			if ii != i || jj != j {
				t.Fatalf("round trip (%d,%d) -> (%d,%d)", i, j, ii, jj)
			}
		}
	}
	if math.Abs(g.CellArea(0, 0)-(0.4*1.0/3.0)) > 1e-15 {
		t.Fatalf("CellArea = %g", g.CellArea(0, 0))
	}
}

func TestGrid3DIndexRoundTrip(t *testing.T) {
	g := &Grid3D{
		X: NewUniformAxis(1, 4),
		Y: NewUniformAxis(2, 3),
		Z: NewAxis([]float64{0, 1e-4, 5e-4}),
	}
	if g.NumCells() != 24 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
	for k := 0; k < g.NZ(); k++ {
		for j := 0; j < g.NY(); j++ {
			for i := 0; i < g.NX(); i++ {
				ii, jj, kk := g.Coords(g.Index(i, j, k))
				if ii != i || jj != j || kk != k {
					t.Fatalf("round trip (%d,%d,%d) -> (%d,%d,%d)", i, j, k, ii, jj, kk)
				}
			}
		}
	}
	vol := g.CellVolume(0, 0, 1)
	if math.Abs(vol-0.25*(2.0/3.0)*4e-4) > 1e-18 {
		t.Fatalf("CellVolume = %g", vol)
	}
}

func TestGridIndexPanics(t *testing.T) {
	g := NewUniformGrid2D(1, 1, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Index(2, 0)
}

func TestField2D(t *testing.T) {
	g := NewUniformGrid2D(2, 3, 4, 6)
	f := NewField2D(g)
	f.Fill(2.0)
	// Integral of constant 2 over 2x3 domain = 12.
	if math.Abs(f.Integrate()-12) > 1e-12 {
		t.Fatalf("Integrate = %g", f.Integrate())
	}
	f.Set(1, 2, -5)
	if f.At(1, 2) != -5 {
		t.Fatal("Set/At")
	}
	lo, hi := f.MinMax()
	if lo != -5 || hi != 2 {
		t.Fatalf("MinMax = %g, %g", lo, hi)
	}
}

// Property: total cell volume equals the domain volume for random
// nonuniform grids.
func TestVolumeConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		mkEdges := func(n int) []float64 {
			e := []float64{0}
			for i := 0; i < n; i++ {
				e = append(e, e[len(e)-1]+0.01+rng.Float64())
			}
			return e
		}
		g := &Grid3D{X: NewAxis(mkEdges(5)), Y: NewAxis(mkEdges(4)), Z: NewAxis(mkEdges(3))}
		total := 0.0
		for k := 0; k < g.NZ(); k++ {
			for j := 0; j < g.NY(); j++ {
				for i := 0; i < g.NX(); i++ {
					total += g.CellVolume(i, j, k)
				}
			}
		}
		want := g.X.Length() * g.Y.Length() * g.Z.Length()
		if math.Abs(total-want) > 1e-10*want {
			t.Fatalf("trial %d: sum %g vs domain %g", trial, total, want)
		}
	}
}
