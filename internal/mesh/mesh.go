// Package mesh provides structured rectilinear grids (1D/2D/3D) with
// cell-centered indexing, the discretization substrate for the
// finite-volume transport solver, the compact thermal model and the power
// grid. Grids may be nonuniform per axis.
package mesh

import "fmt"

// Axis describes one grid direction: cell edges and derived centers.
type Axis struct {
	Edges   []float64 // len N+1, strictly increasing
	Centers []float64 // len N
	Widths  []float64 // len N
}

// NewUniformAxis builds an axis spanning [0, length] with n equal cells.
func NewUniformAxis(length float64, n int) Axis {
	if n <= 0 || length <= 0 {
		panic(fmt.Sprintf("mesh: invalid axis (length=%g, n=%d)", length, n))
	}
	edges := make([]float64, n+1)
	for i := range edges {
		edges[i] = length * float64(i) / float64(n)
	}
	edges[n] = length
	return NewAxis(edges)
}

// NewAxis builds an axis from explicit, strictly increasing cell edges.
func NewAxis(edges []float64) Axis {
	if len(edges) < 2 {
		panic("mesh: axis needs at least 2 edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic(fmt.Sprintf("mesh: edges not increasing at %d (%g <= %g)", i, edges[i], edges[i-1]))
		}
	}
	n := len(edges) - 1
	a := Axis{
		Edges:   append([]float64(nil), edges...),
		Centers: make([]float64, n),
		Widths:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		a.Centers[i] = 0.5 * (edges[i] + edges[i+1])
		a.Widths[i] = edges[i+1] - edges[i]
	}
	return a
}

// N returns the number of cells on the axis.
func (a Axis) N() int { return len(a.Centers) }

// Length returns the total axis extent.
func (a Axis) Length() float64 { return a.Edges[len(a.Edges)-1] - a.Edges[0] }

// CenterSpacing returns the distance between the centers of cells i and
// i+1 (used for gradient/conductance computation between neighbours).
func (a Axis) CenterSpacing(i int) float64 { return a.Centers[i+1] - a.Centers[i] }

// FindCell returns the index of the cell containing coordinate x,
// clamped to [0, N-1]. Coordinates exactly on an interior edge belong to
// the higher cell.
func (a Axis) FindCell(x float64) int {
	n := a.N()
	lo, hi := 0, n // binary search over edges
	for lo < hi {
		mid := (lo + hi) / 2
		if a.Edges[mid+1] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= n {
		lo = n - 1
	}
	return lo
}

// Grid2D is a cell-centered 2D structured grid (X horizontal, Y vertical).
type Grid2D struct {
	X, Y Axis
}

// NewUniformGrid2D builds a uniform grid over lengthX x lengthY.
func NewUniformGrid2D(lengthX, lengthY float64, nx, ny int) *Grid2D {
	return &Grid2D{X: NewUniformAxis(lengthX, nx), Y: NewUniformAxis(lengthY, ny)}
}

// NX returns the number of cells along X.
func (g *Grid2D) NX() int { return g.X.N() }

// NY returns the number of cells along Y.
func (g *Grid2D) NY() int { return g.Y.N() }

// NumCells returns the total number of cells.
func (g *Grid2D) NumCells() int { return g.NX() * g.NY() }

// Index returns the flat row-major index of cell (i, j) where i indexes X
// and j indexes Y.
func (g *Grid2D) Index(i, j int) int {
	if i < 0 || i >= g.NX() || j < 0 || j >= g.NY() {
		panic(fmt.Sprintf("mesh: cell (%d,%d) out of %dx%d", i, j, g.NX(), g.NY()))
	}
	return j*g.NX() + i
}

// Coords inverts Index.
func (g *Grid2D) Coords(idx int) (i, j int) {
	if idx < 0 || idx >= g.NumCells() {
		panic(fmt.Sprintf("mesh: index %d out of %d", idx, g.NumCells()))
	}
	return idx % g.NX(), idx / g.NX()
}

// CellArea returns the area of cell (i, j).
func (g *Grid2D) CellArea(i, j int) float64 { return g.X.Widths[i] * g.Y.Widths[j] }

// Grid3D is a cell-centered 3D structured grid. Z typically indexes the
// layer stack in the thermal model.
type Grid3D struct {
	X, Y, Z Axis
}

// NX returns the number of cells along X.
func (g *Grid3D) NX() int { return g.X.N() }

// NY returns the number of cells along Y.
func (g *Grid3D) NY() int { return g.Y.N() }

// NZ returns the number of cells along Z.
func (g *Grid3D) NZ() int { return g.Z.N() }

// NumCells returns the total number of cells.
func (g *Grid3D) NumCells() int { return g.NX() * g.NY() * g.NZ() }

// Index returns the flat index of cell (i, j, k): X fastest, Z slowest.
func (g *Grid3D) Index(i, j, k int) int {
	if i < 0 || i >= g.NX() || j < 0 || j >= g.NY() || k < 0 || k >= g.NZ() {
		panic(fmt.Sprintf("mesh: cell (%d,%d,%d) out of %dx%dx%d", i, j, k, g.NX(), g.NY(), g.NZ()))
	}
	return (k*g.NY()+j)*g.NX() + i
}

// Coords inverts Index.
func (g *Grid3D) Coords(idx int) (i, j, k int) {
	if idx < 0 || idx >= g.NumCells() {
		panic(fmt.Sprintf("mesh: index %d out of %d", idx, g.NumCells()))
	}
	i = idx % g.NX()
	j = (idx / g.NX()) % g.NY()
	k = idx / (g.NX() * g.NY())
	return
}

// CellVolume returns the volume of cell (i, j, k).
func (g *Grid3D) CellVolume(i, j, k int) float64 {
	return g.X.Widths[i] * g.Y.Widths[j] * g.Z.Widths[k]
}

// Field2D is a scalar field on a Grid2D, stored row-major like
// Grid2D.Index.
type Field2D struct {
	Grid *Grid2D
	Data []float64
}

// NewField2D allocates a zero field on g.
func NewField2D(g *Grid2D) *Field2D {
	return &Field2D{Grid: g, Data: make([]float64, g.NumCells())}
}

// At returns the value at cell (i, j).
func (f *Field2D) At(i, j int) float64 { return f.Data[f.Grid.Index(i, j)] }

// Set assigns the value at cell (i, j).
func (f *Field2D) Set(i, j int, v float64) { f.Data[f.Grid.Index(i, j)] = v }

// Fill sets every cell to v.
func (f *Field2D) Fill(v float64) {
	for i := range f.Data {
		f.Data[i] = v
	}
}

// Integrate returns the area integral of the field over the grid.
func (f *Field2D) Integrate() float64 {
	s := 0.0
	for j := 0; j < f.Grid.NY(); j++ {
		for i := 0; i < f.Grid.NX(); i++ {
			s += f.At(i, j) * f.Grid.CellArea(i, j)
		}
	}
	return s
}

// MinMax returns the extreme values of the field.
func (f *Field2D) MinMax() (lo, hi float64) {
	lo, hi = f.Data[0], f.Data[0]
	for _, v := range f.Data[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return
}
