package cluster

import (
	"testing"

	"bright/internal/testutil/leakcheck"
)

// TestMain enforces goroutine-neutrality for the cluster tier: the
// coordinator's health/snapshot loops, hedged attempts, and proxied
// exchanges must all be gone once their coordinator shuts down. This
// is the runtime twin of the goroutinelife analyzer.
func TestMain(m *testing.M) {
	leakcheck.Main(m)
}
