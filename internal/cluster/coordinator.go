package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"bright/internal/obs"
	"bright/internal/sim"
)

// Options configures a Coordinator.
type Options struct {
	// Backends is the shard set, as host:port addresses. Required,
	// non-empty, duplicate-free.
	Backends []string
	// Vnodes is the virtual-node count per backend on the hash ring
	// (default 64).
	Vnodes int
	// HedgeMin floors the hedge delay: a second attempt for a slow
	// request never launches earlier than this, even when the observed
	// p99 is lower (default 250ms). The effective delay is
	// max(HedgeMin, p99 of the proxy latency histogram).
	HedgeMin time.Duration
	// QuotaRPS is the per-client admission rate in requests/second for
	// the solve-submitting endpoints (/v1/evaluate, /v1/sweep); 0
	// disables admission control.
	QuotaRPS float64
	// QuotaBurst is the token-bucket depth (default 10).
	QuotaBurst int
	// HealthInterval paces the liveness probes (default 2s).
	HealthInterval time.Duration
	// HealthFailures is how many consecutive probe failures mark a
	// backend dead (default 2 — one lost packet must not reshard the
	// ring).
	HealthFailures int
	// SnapshotInterval paces the cache-snapshot pulls that feed warm
	// rejoin; 0 disables snapshotting (default 30s when unset via
	// NewCoordinator's defaulting, explicit negative disables).
	SnapshotInterval time.Duration
	// RebalanceDepth gates mid-sweep chain re-balancing: when a shard
	// holds more than this many unfinished chains of one sweep while
	// another alive shard holds none, job polls move not-yet-started
	// chains from the loaded shard to the idle one through the
	// chain-resubmit path. 0 (the default) disables re-balancing —
	// chains stay where the ring placed them.
	RebalanceDepth int
	// Client is the HTTP client for backend traffic; nil uses a
	// dedicated client with no overall timeout (per-request contexts
	// bound each call).
	Client *http.Client
	// Metrics is the registry the coordinator publishes bright_cluster_*
	// into; nil gives it a private registry (reachable via Metrics()).
	Metrics *obs.Registry
}

// Coordinator fronts a fleet of brightd shards: consistent-hash
// routing with hedging and failover for point evaluations, whole-chain
// partitioning for sweeps, per-client admission control, health-gated
// ring membership and warm cache hand-off for rejoining shards.
type Coordinator struct {
	opts    Options
	ring    *ring
	clients map[string]*backendClient
	proxies map[string]*httputil.ReverseProxy
	quota   *tokenBuckets
	jobs    *clusterJobs
	reg     *obs.Registry

	sessMu   sync.Mutex
	sessions map[string]string // session id -> backend addr
	sessRR   atomic.Uint64

	snapMu    sync.Mutex
	snapshots map[string]sim.CacheSnapshot // last pulled snapshot per backend

	m clusterMetrics
}

type clusterMetrics struct {
	routed           map[string]*obs.Counter
	backendUp        map[string]*obs.Gauge
	hedges           *obs.Counter
	hedgeWins        *obs.Counter
	failovers        *obs.Counter
	quotaRejected    *obs.Counter
	snapshotPulls    *obs.Counter
	snapshotRestores *obs.Counter
	chainResubmits   *obs.Counter
	chainRebalances  *obs.Counter
	proxyDur         *obs.Histogram
}

// NewCoordinator validates the options, builds the ring and registers
// the bright_cluster_* metric families. Run must be started for health
// checking and snapshot pulls to happen; the Handler works without it
// (all backends presumed alive).
func NewCoordinator(opts Options) (*Coordinator, error) {
	r, err := newRing(opts.Backends, opts.Vnodes)
	if err != nil {
		return nil, err
	}
	if opts.HedgeMin <= 0 {
		opts.HedgeMin = 250 * time.Millisecond
	}
	if opts.QuotaBurst <= 0 {
		opts.QuotaBurst = 10
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = 2 * time.Second
	}
	if opts.HealthFailures <= 0 {
		opts.HealthFailures = 2
	}
	if opts.SnapshotInterval == 0 {
		opts.SnapshotInterval = 30 * time.Second
	}
	hc := opts.Client
	if hc == nil {
		hc = &http.Client{}
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}

	c := &Coordinator{
		opts:      opts,
		ring:      r,
		clients:   make(map[string]*backendClient, len(opts.Backends)),
		proxies:   make(map[string]*httputil.ReverseProxy, len(opts.Backends)),
		quota:     newTokenBuckets(opts.QuotaRPS, opts.QuotaBurst, nil),
		jobs:      newClusterJobs(),
		reg:       reg,
		sessions:  make(map[string]string),
		snapshots: make(map[string]sim.CacheSnapshot),
	}
	for _, addr := range opts.Backends {
		c.clients[addr] = &backendClient{addr: addr, hc: hc}
		target := &url.URL{Scheme: "http", Host: addr}
		proxy := httputil.NewSingleHostReverseProxy(target)
		// Streaming session frames (SSE/NDJSON) must flow through
		// unbuffered; -1 flushes after every write.
		proxy.FlushInterval = -1
		c.proxies[addr] = proxy
	}

	c.m = clusterMetrics{
		routed:    make(map[string]*obs.Counter, len(opts.Backends)),
		backendUp: make(map[string]*obs.Gauge, len(opts.Backends)),
		hedges: reg.Counter("bright_cluster_hedges_total",
			"Hedged second attempts launched for slow shards."),
		hedgeWins: reg.Counter("bright_cluster_hedge_wins_total",
			"Hedged attempts that answered before the primary."),
		failovers: reg.Counter("bright_cluster_failovers_total",
			"Requests retried on another shard after a failure."),
		quotaRejected: reg.Counter("bright_cluster_quota_rejected_total",
			"Requests rejected by per-client admission control (429)."),
		snapshotPulls: reg.Counter("bright_cluster_snapshot_pulls_total",
			"Cache snapshots pulled from shards."),
		snapshotRestores: reg.Counter("bright_cluster_snapshot_restores_total",
			"Cache snapshots pushed into rejoining shards."),
		chainResubmits: reg.Counter("bright_cluster_chain_resubmits_total",
			"Sweep chains resubmitted after losing their shard."),
		chainRebalances: reg.Counter("bright_cluster_chain_rebalances_total",
			"Queued sweep chains moved from a loaded shard to an idle one mid-sweep."),
		proxyDur: reg.Histogram("bright_cluster_proxy_duration_seconds",
			"Latency of proxied backend exchanges.", obs.DefLatencyBuckets),
	}
	for _, addr := range opts.Backends {
		//lint:ignore obsreg one-time constructor registration over the static backend list, bounded cardinality
		c.m.routed[addr] = reg.Counter("bright_cluster_routed_total",
			"Requests routed per shard.", obs.L("backend", addr))
		//lint:ignore obsreg one-time constructor registration over the static backend list, bounded cardinality
		up := reg.Gauge("bright_cluster_backend_up",
			"Shard liveness (1 alive, 0 dead).", obs.L("backend", addr))
		up.Set(1)
		c.m.backendUp[addr] = up
	}
	reg.GaugeFunc("bright_cluster_backends",
		"Configured shard count.", func() float64 { return float64(len(opts.Backends)) })
	reg.GaugeFunc("bright_cluster_backends_alive",
		"Shards currently passing health checks.", func() float64 { return float64(c.ring.aliveCount()) })
	return c, nil
}

// Metrics returns the registry carrying the bright_cluster_* families.
func (c *Coordinator) Metrics() *obs.Registry { return c.reg }

// hedgeDelay derives the hedge launch delay from the observed proxy
// latency distribution: max(HedgeMin, p99). An empty histogram (cold
// start) yields the floor.
func (c *Coordinator) hedgeDelay() time.Duration {
	p99 := time.Duration(c.m.proxyDur.Quantile(0.99) * float64(time.Second))
	if p99 < c.opts.HedgeMin {
		return c.opts.HedgeMin
	}
	return p99
}

// --- HTTP surface ----------------------------------------------------

type errorBody struct {
	Error     string `json:"error"`
	Retryable bool   `json:"retryable,omitempty"`
}

func writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("cluster: %s %s: encoding %T response after status %d: %v",
			r.Method, r.URL.Path, v, status, err)
	}
}

func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeJSON(w, r, status, errorBody{Error: err.Error()})
}

// clientID identifies the quota principal: the X-Client-ID header when
// the client presents one, else the remote host (not host:port — every
// connection from one machine shares a bucket).
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admit runs admission control, answering 429 (with Retry-After and a
// retryable error body, the same convention the shards use for
// backpressure) when the client's bucket is dry.
func (c *Coordinator) admit(w http.ResponseWriter, r *http.Request) bool {
	ok, retryAfter := c.quota.allow(clientID(r))
	if ok {
		return true
	}
	c.m.quotaRejected.Inc()
	w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retryAfter.Seconds())))
	writeJSON(w, r, http.StatusTooManyRequests,
		errorBody{Error: "cluster: per-client request quota exceeded", Retryable: true})
	return false
}

// Handler wires the coordinator's HTTP surface — the same API shape the
// shards serve, so clients need not know whether they talk to one node
// or a fleet:
//
//	POST /v1/evaluate    — routed by canonical key, hedged + failover
//	POST /v1/sweep       — partitioned into whole chains across shards
//	GET  /v1/jobs/{id}   — merged poll over the chain sub-jobs
//	GET  /v1/stats       — per-shard stats plus cluster aggregates
//	GET  /metrics        — bright_cluster_* plus this process's obs.Default
//	GET  /healthz        — coordinator liveness
//	     /v1/sessions... — streamed passthrough with session affinity
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/evaluate", c.handleEvaluate)
	mux.HandleFunc("POST /v1/sweep", c.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	mux.HandleFunc("GET /v1/stats", c.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, r, http.StatusOK, map[string]string{"status": "ok", "role": "coordinator"})
	})
	mux.Handle("GET /metrics", obs.Handler(c.reg, obs.Default))

	mux.HandleFunc("POST /v1/sessions", c.handleSessionCreate)
	mux.HandleFunc("POST /v1/sessions/restore", c.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions", c.handleSessionList)
	mux.HandleFunc("/v1/sessions/{id}", c.handleSessionProxy)
	mux.HandleFunc("/v1/sessions/{id}/{op}", c.handleSessionProxy)
	return mux
}

// handleEvaluate routes one evaluation by its configuration's canonical
// key — the same key the shard's memoization cache uses, so repeats of
// a configuration always land on the shard that has it cached.
func (c *Coordinator) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if !c.admit(w, r) {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	var req sim.EvaluateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	pr, err := c.forwardEvaluate(r.Context(), req.Config().CanonicalKey(), body)
	if err != nil {
		writeError(w, r, http.StatusBadGateway, err)
		return
	}
	pr.writeTo(w, r)
}

// attemptOutcome is one backend attempt's result inside the hedged
// exchange.
type attemptOutcome struct {
	pr      *proxyResponse
	err     error
	backend string
	hedged  bool
}

// forwardEvaluate performs the hedged, failover-capable exchange:
//
//   - the primary shard is the ring owner of the key;
//   - if it has not answered after the p99-derived hedge delay, ONE
//     hedge launches on the next alive shard (never more — hedges must
//     cap the fleet's duplicated work at 2x on the tail, not amplify
//     overload);
//   - transport errors and 5xx answers fail over to the next shard once;
//   - 2xx–4xx answers are definitive (a 400 is the client's problem, no
//     other shard will disagree).
func (c *Coordinator) forwardEvaluate(ctx context.Context, key string, body []byte) (*proxyResponse, error) {
	primary, ok := c.ring.lookup(key)
	if !ok {
		return nil, fmt.Errorf("cluster: no alive backends")
	}
	outcomes := make(chan attemptOutcome, 2)
	attempt := func(addr string, hedged bool) {
		c.m.routed[addr].Inc()
		start := time.Now()
		pr, err := c.clients[addr].roundTrip(ctx, http.MethodPost, "/v1/evaluate", body)
		c.m.proxyDur.Observe(time.Since(start).Seconds())
		outcomes <- attemptOutcome{pr: pr, err: err, backend: addr, hedged: hedged}
	}
	go attempt(primary, false)

	hedgeTimer := time.NewTimer(c.hedgeDelay())
	defer hedgeTimer.Stop()
	pending := 1
	hedged := false
	failedOver := false
	var lastFailure attemptOutcome
	for pending > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-hedgeTimer.C:
			if hedged {
				continue
			}
			if next, ok := c.ring.next(key, primary); ok {
				hedged = true
				c.m.hedges.Inc()
				pending++
				go attempt(next, true)
			}
		case out := <-outcomes:
			pending--
			definitive := out.err == nil && out.pr.status < 500
			if definitive {
				if out.hedged {
					c.m.hedgeWins.Inc()
				}
				return out.pr, nil
			}
			lastFailure = out
			if pending > 0 {
				continue // the other in-flight attempt may still win
			}
			if !failedOver {
				if next, ok := c.ring.next(key, out.backend); ok {
					failedOver = true
					c.m.failovers.Inc()
					pending++
					go attempt(next, false)
				}
			}
		}
	}
	if lastFailure.err != nil {
		return nil, lastFailure.err
	}
	return lastFailure.pr, nil // the shard's own 5xx, replayed verbatim
}

// handleStats merges the fleet view: each alive shard's stats verbatim
// plus the coordinator's own aggregates.
func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	type backendStatus struct {
		Addr  string     `json:"addr"`
		Alive bool       `json:"alive"`
		Stats *sim.Stats `json:"stats,omitempty"`
		Error string     `json:"error,omitempty"`
	}
	addrs := c.ring.backends()
	statuses := make([]backendStatus, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		statuses[i] = backendStatus{Addr: addr, Alive: c.ring.isAlive(addr)}
		if !statuses[i].Alive {
			continue
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			st, err := c.clients[addr].stats(r.Context())
			if err != nil {
				statuses[i].Error = err.Error()
				return
			}
			statuses[i].Stats = &st
		}(i, addr)
	}
	wg.Wait()

	agg := struct {
		Backends         int    `json:"backends"`
		Alive            int    `json:"alive"`
		Solves           uint64 `json:"solves"`
		CacheHits        uint64 `json:"cache_hits"`
		CacheMisses      uint64 `json:"cache_misses"`
		JobsActive       int    `json:"jobs_active"`
		Hedges           uint64 `json:"hedges"`
		HedgeWins        uint64 `json:"hedge_wins"`
		Failovers        uint64 `json:"failovers"`
		QuotaRejected    uint64 `json:"quota_rejected"`
		SnapshotPulls    uint64 `json:"snapshot_pulls"`
		SnapshotRestores uint64 `json:"snapshot_restores"`
		ChainResubmits   uint64 `json:"chain_resubmits"`
		ChainRebalances  uint64 `json:"chain_rebalances"`
	}{
		Backends:         len(addrs),
		Alive:            c.ring.aliveCount(),
		JobsActive:       c.jobs.active(),
		Hedges:           c.m.hedges.Value(),
		HedgeWins:        c.m.hedgeWins.Value(),
		Failovers:        c.m.failovers.Value(),
		QuotaRejected:    c.m.quotaRejected.Value(),
		SnapshotPulls:    c.m.snapshotPulls.Value(),
		SnapshotRestores: c.m.snapshotRestores.Value(),
		ChainResubmits:   c.m.chainResubmits.Value(),
		ChainRebalances:  c.m.chainRebalances.Value(),
	}
	for _, s := range statuses {
		if s.Stats != nil {
			agg.Solves += s.Stats.Solves
			agg.CacheHits += s.Stats.CacheHits
			agg.CacheMisses += s.Stats.CacheMisses
		}
	}
	writeJSON(w, r, http.StatusOK, map[string]any{
		"cluster":  agg,
		"backends": statuses,
	})
}

// --- streaming session passthrough -----------------------------------

// pickSessionBackend places a new session: round-robin over the alive
// backends (sessions are long-lived and stateful, so spreading them
// beats hashing a one-shot key).
func (c *Coordinator) pickSessionBackend() (string, bool) {
	addrs := c.ring.backends()
	start := int(c.sessRR.Add(1)) % len(addrs)
	for i := range addrs {
		addr := addrs[(start+i)%len(addrs)]
		if c.ring.isAlive(addr) {
			return addr, true
		}
	}
	return "", false
}

// handleSessionCreate places the session, relays the create (or
// restore) call, and on success records the session-id -> backend
// affinity every later call follows.
func (c *Coordinator) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	addr, ok := c.pickSessionBackend()
	if !ok {
		writeError(w, r, http.StatusBadGateway, fmt.Errorf("cluster: no alive backends"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	c.m.routed[addr].Inc()
	pr, err := c.clients[addr].roundTrip(r.Context(), r.Method, r.URL.Path, body)
	if err != nil {
		writeError(w, r, http.StatusBadGateway, err)
		return
	}
	if pr.status/100 == 2 {
		var status struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(pr.body, &status); err == nil && status.ID != "" {
			c.sessMu.Lock()
			c.sessions[status.ID] = addr
			c.sessMu.Unlock()
		}
	}
	pr.writeTo(w, r)
}

// handleSessionList merges every alive shard's session list.
func (c *Coordinator) handleSessionList(w http.ResponseWriter, r *http.Request) {
	var (
		mu     sync.Mutex
		merged = []json.RawMessage{}
		wg     sync.WaitGroup
	)
	for _, addr := range c.ring.backends() {
		if !c.ring.isAlive(addr) {
			continue
		}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			var list []json.RawMessage
			if err := c.clients[addr].getInto(r.Context(), "/v1/sessions", &list); err != nil {
				log.Printf("cluster: listing sessions on %s: %v", addr, err)
				return
			}
			mu.Lock()
			merged = append(merged, list...)
			mu.Unlock()
		}(addr)
	}
	wg.Wait()
	writeJSON(w, r, http.StatusOK, merged)
}

// handleSessionProxy streams any per-session call (frames included)
// to the backend owning the session.
func (c *Coordinator) handleSessionProxy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.sessMu.Lock()
	addr, ok := c.sessions[id]
	c.sessMu.Unlock()
	if !ok {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("cluster: unknown session %q", id))
		return
	}
	if !c.ring.isAlive(addr) {
		writeError(w, r, http.StatusBadGateway,
			fmt.Errorf("cluster: session %q is on dead backend %s", id, addr))
		return
	}
	c.m.routed[addr].Inc()
	c.proxies[addr].ServeHTTP(w, r)
	if r.Method == http.MethodDelete {
		c.sessMu.Lock()
		delete(c.sessions, id)
		c.sessMu.Unlock()
	}
}

// --- background loops -------------------------------------------------

// Run drives the health and snapshot loops until ctx cancels. It probes
// once immediately so a coordinator started against a partially dead
// fleet converges before the first tick.
func (c *Coordinator) Run(ctx context.Context) {
	fails := make(map[string]int, len(c.opts.Backends))
	health := time.NewTicker(c.opts.HealthInterval)
	defer health.Stop()
	var snapC <-chan time.Time
	if c.opts.SnapshotInterval > 0 {
		snap := time.NewTicker(c.opts.SnapshotInterval)
		defer snap.Stop()
		snapC = snap.C
	}
	c.healthPass(ctx, fails)
	for {
		select {
		case <-ctx.Done():
			return
		case <-health.C:
			c.healthPass(ctx, fails)
		case <-snapC:
			c.snapshotPass(ctx)
		}
	}
}

// healthPass probes every backend once. A backend goes dead after
// HealthFailures consecutive failed probes; it rejoins on the first
// successful probe, receiving its last-known cache snapshot *before*
// the ring starts routing to it, so rejoin traffic lands on a warm
// cache.
func (c *Coordinator) healthPass(ctx context.Context, fails map[string]int) {
	for _, addr := range c.ring.backends() {
		probeCtx, cancel := context.WithTimeout(ctx, c.opts.HealthInterval)
		err := c.clients[addr].health(probeCtx)
		cancel()
		if err != nil {
			fails[addr]++
			if fails[addr] >= c.opts.HealthFailures && c.ring.isAlive(addr) {
				c.ring.setAlive(addr, false)
				c.m.backendUp[addr].Set(0)
				log.Printf("cluster: backend %s dead after %d failed probes: %v", addr, fails[addr], err)
			}
			continue
		}
		fails[addr] = 0
		if !c.ring.isAlive(addr) {
			c.rejoin(ctx, addr)
		}
	}
}

// rejoin warms a recovered backend from its last pulled snapshot, then
// readmits it to the ring.
func (c *Coordinator) rejoin(ctx context.Context, addr string) {
	c.snapMu.Lock()
	snap, ok := c.snapshots[addr]
	c.snapMu.Unlock()
	if ok && len(snap.Entries) > 0 {
		restoreCtx, cancel := context.WithTimeout(ctx, c.opts.HealthInterval)
		restored, err := c.clients[addr].putSnapshot(restoreCtx, snap)
		cancel()
		if err != nil {
			log.Printf("cluster: warm rejoin of %s: snapshot push failed: %v", addr, err)
		} else {
			c.m.snapshotRestores.Inc()
			log.Printf("cluster: backend %s rejoined warm (%d cache entries restored)", addr, restored)
		}
	} else {
		log.Printf("cluster: backend %s rejoined cold (no snapshot on hand)", addr)
	}
	c.ring.setAlive(addr, true)
	c.m.backendUp[addr].Set(1)
}

// snapshotPass pulls each alive backend's cache snapshot, keeping the
// newest per backend as its warm-rejoin payload.
func (c *Coordinator) snapshotPass(ctx context.Context) {
	timeout := c.opts.SnapshotInterval
	if timeout <= 0 {
		// Manual passes (ticker disabled) still need a bound per pull.
		timeout = 10 * time.Second
	}
	for _, addr := range c.ring.backends() {
		if !c.ring.isAlive(addr) {
			continue
		}
		pullCtx, cancel := context.WithTimeout(ctx, timeout)
		snap, err := c.clients[addr].getSnapshot(pullCtx)
		cancel()
		if err != nil {
			log.Printf("cluster: snapshot pull from %s: %v", addr, err)
			continue
		}
		c.m.snapshotPulls.Inc()
		c.snapMu.Lock()
		c.snapshots[addr] = snap
		c.snapMu.Unlock()
	}
}
