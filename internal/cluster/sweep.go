package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"bright/internal/core"
	"bright/internal/sim"
)

// chainAssign is one warm-start chain of a partitioned sweep: a
// contiguous run of grid points sharing a hydrodynamic condition
// (core.Config.ChainKey), placed whole on a single shard so the shard's
// batched chain solver keeps its neighbor warm starts. start/count
// locate the chain in the client-visible global grid.
type chainAssign struct {
	key   string
	spec  sim.SweepSpec
	start int
	count int

	backend string
	jobID   string
	view    sim.JobView // last observed, indices still chain-local
	final   bool
}

// partitionSweep splits a validated spec into its chains, mirroring the
// row-major nesting of sim.SweepSpec.Grid (flow outermost, load
// innermost): each (flow, inlet) pair is one chain carrying the full
// voltage x load sub-grid.
func partitionSweep(spec sim.SweepSpec) []*chainAssign {
	base := core.DefaultConfig()
	if spec.Base != nil {
		base = *spec.Base
	}
	axis := func(vals []float64, fallback float64) []float64 {
		if len(vals) == 0 {
			return []float64{fallback}
		}
		return vals
	}
	flows := axis(spec.FlowsMLMin, base.FlowMLMin)
	inlets := axis(spec.InletTempsC, base.InletTempC)
	chainLen := len(axis(spec.SupplyVoltages, base.SupplyVoltage)) * len(axis(spec.ChipLoads, base.ChipLoad))

	chains := make([]*chainAssign, 0, len(flows)*len(inlets))
	start := 0
	for _, f := range flows {
		for _, t := range inlets {
			cfg := base
			cfg.FlowMLMin, cfg.InletTempC = f, t
			chains = append(chains, &chainAssign{
				key: cfg.ChainKey(),
				spec: sim.SweepSpec{
					Base:           spec.Base,
					FlowsMLMin:     []float64{f},
					InletTempsC:    []float64{t},
					SupplyVoltages: spec.SupplyVoltages,
					ChipLoads:      spec.ChipLoads,
				},
				start: start,
				count: chainLen,
			})
			start += chainLen
		}
	}
	return chains
}

// clusterJob is one client-visible sweep spanning shards.
type clusterJob struct {
	id      string
	total   int
	started time.Time

	mu     sync.Mutex
	chains []*chainAssign
	done   bool
}

// clusterJobs is the coordinator's job registry.
type clusterJobs struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*clusterJob
}

func newClusterJobs() *clusterJobs {
	return &clusterJobs{jobs: make(map[string]*clusterJob)}
}

func (r *clusterJobs) add(j *clusterJob) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	j.id = fmt.Sprintf("cjob-%06d", r.seq)
	r.jobs[j.id] = j
}

func (r *clusterJobs) get(id string) (*clusterJob, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

func (r *clusterJobs) active() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, j := range r.jobs {
		j.mu.Lock()
		if !j.done {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// submitChain routes a chain by its chain key and submits it, failing
// over once to the next alive shard when the owner refuses.
func (c *Coordinator) submitChain(ctx context.Context, ch *chainAssign) error {
	addr, ok := c.ring.lookup(ch.key)
	if !ok {
		return fmt.Errorf("cluster: no alive backends")
	}
	if err := c.submitChainTo(ctx, addr, ch); err != nil {
		next, haveNext := c.ring.next(ch.key, addr)
		if !haveNext {
			return err
		}
		c.m.failovers.Inc()
		return c.submitChainTo(ctx, next, ch)
	}
	return nil
}

// submitChainTo submits a chain's sub-sweep on a specific shard and
// records the placement on the chain. The chain's previous placement
// (if any) is overwritten — retiring the superseded sub-job is the
// caller's business.
func (c *Coordinator) submitChainTo(ctx context.Context, addr string, ch *chainAssign) error {
	jobID, _, err := c.clients[addr].submitSweep(ctx, ch.spec)
	if err != nil {
		return err
	}
	c.m.routed[addr].Inc()
	ch.backend, ch.jobID = addr, jobID
	ch.view = sim.JobView{State: sim.JobRunning, Total: ch.count}
	ch.final = false
	return nil
}

// handleSweep partitions the sweep into whole chains, one sub-sweep per
// chain on its owning shard, and answers 202 with a cluster job id that
// handleJob merges polls for.
func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !c.admit(w, r) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxProxyBody)
	var spec sim.SweepSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Errorf("decoding sweep spec: %w", err))
		return
	}
	grid, err := spec.Grid()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err)
		return
	}
	job := &clusterJob{total: len(grid), started: time.Now(), chains: partitionSweep(spec)}
	for _, ch := range job.chains {
		if err := c.submitChain(r.Context(), ch); err != nil {
			// Chains already submitted keep running on their shards;
			// their points land in those shards' caches, so a retry of
			// this sweep is cheap.
			writeError(w, r, http.StatusBadGateway, err)
			return
		}
	}
	c.jobs.add(job)
	writeJSON(w, r, http.StatusAccepted, map[string]any{
		"job_id": job.id,
		"total":  job.total,
		"chains": len(job.chains),
	})
}

// handleJob polls every live chain's shard and merges the sub-jobs into
// one client-visible JobView with global indices. A chain whose shard
// died — or restarted and forgot the sub-job — is resubmitted through
// the ring (which now routes around the death); the points it had
// already solved re-resolve as cache hits on the new owner once the
// snapshot hand-off has warmed it.
func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := c.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, r, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	for _, ch := range job.chains {
		if ch.final {
			continue
		}
		view, found, err := c.pollChain(r.Context(), ch)
		switch {
		case err != nil && !c.ring.isAlive(ch.backend), err == nil && !found:
			// Dead shard, or a restarted one that lost its job registry.
			c.m.chainResubmits.Inc()
			if rerr := c.submitChain(r.Context(), ch); rerr != nil {
				writeError(w, r, http.StatusBadGateway,
					fmt.Errorf("resubmitting chain at %d after losing %s: %w", ch.start, ch.backend, rerr))
				return
			}
		case err != nil:
			// Transient poll failure against a live shard: keep the last
			// observed view, the next poll retries.
		default:
			ch.view = view
			if view.State != sim.JobRunning {
				ch.final = true
			}
		}
	}
	c.rebalanceLocked(r.Context(), job)
	writeJSON(w, r, http.StatusOK, job.mergedViewLocked())
}

// rebalanceLocked moves queued chains from overloaded shards to idle
// ones mid-sweep. The ring's static partitioning can pile several
// chains of one sweep onto a single shard while others sit empty; with
// Options.RebalanceDepth > 0, each job poll checks for a shard holding
// more than RebalanceDepth unfinished chains of this job alongside an
// alive shard holding none, and moves a not-yet-started chain (zero
// completed points) to the idle shard through the chain-resubmit path.
// Only untouched chains move — a chain with progress stays put, its
// solved points and warm solver state are worth more than placement
// symmetry — and the superseded sub-job is canceled best-effort (its
// solved-nothing state makes the cancel a cheap no-op in the common
// case). Caller holds job.mu.
func (c *Coordinator) rebalanceLocked(ctx context.Context, job *clusterJob) {
	depth := c.opts.RebalanceDepth
	if depth <= 0 {
		return
	}
	pending := make(map[string]int)
	queued := make(map[string][]*chainAssign)
	for _, ch := range job.chains {
		if ch.final {
			continue
		}
		pending[ch.backend]++
		if ch.view.Completed == 0 {
			queued[ch.backend] = append(queued[ch.backend], ch)
		}
	}
	var idle []string
	for _, addr := range c.ring.backends() {
		if c.ring.isAlive(addr) && pending[addr] == 0 {
			idle = append(idle, addr)
		}
	}
	for len(idle) > 0 {
		// Most-loaded shard above the depth gate that still has a chain
		// worth moving; ties resolve in backend-list order.
		src := ""
		for _, addr := range c.ring.backends() {
			if pending[addr] > depth && len(queued[addr]) > 0 && (src == "" || pending[addr] > pending[src]) {
				src = addr
			}
		}
		if src == "" {
			return
		}
		q := queued[src]
		ch := q[len(q)-1] // deepest-queued: the least likely to start soon
		queued[src] = q[:len(q)-1]
		oldAddr, oldJob := ch.backend, ch.jobID
		dst := idle[0]
		idle = idle[1:]
		if err := c.submitChainTo(ctx, dst, ch); err != nil {
			// The idle shard refused; the chain keeps its old placement
			// (submitChainTo leaves it untouched on error) and the next
			// poll retries with whatever shards are idle then.
			continue
		}
		c.m.chainRebalances.Inc()
		pending[src]--
		pending[dst]++
		c.clients[oldAddr].cancelJob(ctx, oldJob)
	}
}

// pollChain fetches one sub-job's view. found is false when the shard
// answered but no longer knows the job (it restarted).
func (c *Coordinator) pollChain(ctx context.Context, ch *chainAssign) (sim.JobView, bool, error) {
	pr, err := c.clients[ch.backend].roundTrip(ctx, http.MethodGet, "/v1/jobs/"+ch.jobID, nil)
	if err != nil {
		return sim.JobView{}, false, err
	}
	if pr.status == http.StatusNotFound {
		return sim.JobView{}, false, nil
	}
	if pr.status != http.StatusOK {
		return sim.JobView{}, false, fmt.Errorf("cluster: polling job %s on %s: status %d: %s",
			ch.jobID, ch.backend, pr.status, truncate(pr.body))
	}
	var view sim.JobView
	if err := json.Unmarshal(pr.body, &view); err != nil {
		return sim.JobView{}, false, fmt.Errorf("cluster: decoding job view from %s: %w", ch.backend, err)
	}
	return view, true, nil
}

// mergedViewLocked folds the chain sub-views into the global JobView:
// indices shifted to grid positions, counters summed, state the
// conjunction of the chains' states. Caller holds job.mu.
func (j *clusterJob) mergedViewLocked() sim.JobView {
	out := sim.JobView{
		ID:        j.id,
		State:     sim.JobDone,
		Total:     j.total,
		ElapsedMS: float64(time.Since(j.started).Milliseconds()),
	}
	allFinal := true
	anyFailed, anyCanceled := false, false
	for _, ch := range j.chains {
		if !ch.final {
			allFinal = false
		}
		switch ch.view.State {
		case sim.JobFailed:
			anyFailed = true
		case sim.JobCanceled:
			anyCanceled = true
		}
		out.Completed += ch.view.Completed
		out.Failed += ch.view.Failed
		for _, res := range ch.view.Results {
			res.Index += ch.start
			out.Results = append(out.Results, res)
		}
	}
	switch {
	case !allFinal:
		out.State = sim.JobRunning
	case anyFailed:
		out.State = sim.JobFailed
	case anyCanceled:
		out.State = sim.JobCanceled
	}
	sort.Slice(out.Results, func(a, b int) bool { return out.Results[a].Index < out.Results[b].Index })
	if out.State != sim.JobRunning {
		j.done = true
	}
	return out
}
