package cluster

import (
	"math"
	"sync"
	"time"
)

// maxQuotaClients bounds the per-client bucket map: past this, buckets
// that have refilled to full burst (i.e. idle clients) are pruned. A
// hostile population of client IDs therefore costs O(maxQuotaClients)
// memory, not O(distinct IDs ever seen).
const maxQuotaClients = 4096

// tokenBuckets is per-client token-bucket admission control: each
// client refills at rate tokens/second up to burst, and every admitted
// request spends one token. A zero or negative rate disables the quota
// entirely (allow always succeeds).
type tokenBuckets struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newTokenBuckets builds the limiter. now is injectable for tests; nil
// means time.Now.
func newTokenBuckets(rate float64, burst int, now func() time.Time) *tokenBuckets {
	if now == nil {
		now = time.Now
	}
	if burst < 1 {
		burst = 1
	}
	return &tokenBuckets{
		rate:    rate,
		burst:   float64(burst),
		now:     now,
		buckets: make(map[string]*bucket),
	}
}

// enabled reports whether the quota is active at all.
func (t *tokenBuckets) enabled() bool { return t.rate > 0 }

// allow spends one token from client's bucket. When the bucket is dry
// it returns false plus the wait until one token will have refilled —
// the Retry-After hint.
func (t *tokenBuckets) allow(client string) (ok bool, retryAfter time.Duration) {
	if !t.enabled() {
		return true, 0
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	b, found := t.buckets[client]
	if !found {
		if len(t.buckets) >= maxQuotaClients {
			t.pruneLocked(now)
		}
		b = &bucket{tokens: t.burst, last: now}
		t.buckets[client] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens = math.Min(t.burst, b.tokens+elapsed*t.rate)
			b.last = now
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / t.rate
	return false, time.Duration(math.Ceil(need)) * time.Second
}

// pruneLocked drops buckets that have refilled to full burst — clients
// idle long enough that forgetting them is indistinguishable from
// remembering them.
func (t *tokenBuckets) pruneLocked(now time.Time) {
	for client, b := range t.buckets {
		tokens := math.Min(t.burst, b.tokens+now.Sub(b.last).Seconds()*t.rate)
		if tokens >= t.burst {
			delete(t.buckets, client)
		}
	}
}
