package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"bright/internal/core"
	"bright/internal/sim"
)

// TestClusterEndToEnd boots real brightd processes — three backends and a
// coordinator — over localhost and drives the full serving story from the
// outside: consistent routing, hedging, quotas, sweep chain partitioning,
// a SIGKILLed shard mid-run, and the warm cache hand-off when it comes
// back. Every solve here is a real co-simulation (~1s on one core), so
// the traffic mix is chosen to keep the distinct-solve count small.
func TestClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e test skipped in -short mode")
	}

	bin := buildBrightd(t)
	logDir := t.TempDir()

	// Pick ports up front so the victim can be restarted on its old
	// address, exactly as a supervised process would be.
	backendAddrs := []string{freeAddr(t), freeAddr(t), freeAddr(t)}
	coordAddr := freeAddr(t)

	procs := map[string]*exec.Cmd{}
	stopProc := func(name string) {
		cmd, ok := procs[name]
		if !ok || cmd.Process == nil {
			return
		}
		delete(procs, name)
		if err := cmd.Process.Kill(); err != nil {
			t.Logf("kill %s: %v", name, err)
		}
		_ = cmd.Wait() // reap; a killed process always reports an error
	}
	t.Cleanup(func() {
		for name := range procs {
			stopProc(name)
		}
		if t.Failed() {
			dumpLogs(t, logDir)
		}
	})
	startProc := func(name string, args ...string) {
		logf, err := os.OpenFile(filepath.Join(logDir, name+".log"),
			os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin, args...)
		cmd.Stdout = logf
		cmd.Stderr = logf
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		if err := logf.Close(); err != nil {
			t.Logf("closing %s log: %v", name, err)
		}
		procs[name] = cmd
	}
	startBackend := func(i int) {
		startProc(fmt.Sprintf("backend-%d", i),
			"-addr", backendAddrs[i], "-workers", "1", "-cache", "64",
			"-kernel-threads", "1")
	}

	for i := range backendAddrs {
		startBackend(i)
	}
	for _, addr := range backendAddrs {
		waitHealthy(t, "http://"+addr+"/healthz", 60*time.Second)
	}

	startProc("coordinator",
		"-coordinator", "-backends", strings.Join(backendAddrs, ","),
		"-addr", coordAddr,
		"-health-interval", "200ms",
		"-snapshot-interval", "300ms",
		"-hedge-min", "500ms",
		"-quota-rps", "0.2", "-quota-burst", "10",
		"-request-timeout", "1m")
	coordURL := "http://" + coordAddr
	waitHealthy(t, coordURL+"/healthz", 60*time.Second)

	// Predict routing with the same ring the coordinator builds, so the
	// test can kill the exact shard that owns the pinned configuration.
	ring, err := newRing(backendAddrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	flow := 300.0
	pinned := sim.EvaluateRequest{FlowMLMin: &flow}
	pinnedBody := `{"flow_ml_min": 300}`
	victimAddr, ok := ring.lookup(pinned.Config().CanonicalKey())
	if !ok {
		t.Fatal("ring lookup failed with three alive backends")
	}
	victimIdx := -1
	for i, addr := range backendAddrs {
		if addr == victimAddr {
			victimIdx = i
		}
	}

	// --- Cold evaluate. The real solve takes ~1s, comfortably past the
	// 500ms hedge delay, so the hedge fires and a second shard warms the
	// same config — that shard is the natural failover target later.
	var coldView sim.ReportView
	postEvaluate(t, coordURL, "", pinnedBody, http.StatusOK, &coldView)
	if coldView.PeakTempC <= coldView.Config.InletTempC {
		t.Fatalf("implausible report: peak %.2fC vs inlet %.2fC",
			coldView.PeakTempC, coldView.Config.InletTempC)
	}
	if got := metricValue(t, coordURL, "bright_cluster_hedges_total"); got < 1 {
		t.Fatalf("hedges_total = %v after a ~1s cold solve with 500ms hedge delay", got)
	}

	// Warm repeat must be served from cache and agree exactly (the
	// solver is deterministic).
	var warmView sim.ReportView
	postEvaluate(t, coordURL, "", pinnedBody, http.StatusOK, &warmView)
	if warmView.PeakTempC != coldView.PeakTempC ||
		warmView.NetElectricalGainW != coldView.NetElectricalGainW ||
		warmView.ArrayPowerW != coldView.ArrayPowerW {
		t.Fatalf("cached evaluate disagrees with cold solve:\ncold %+v\nwarm %+v",
			coldView, warmView)
	}

	// --- Sweep: 2 flows x 2 loads = 4 points in 2 whole chains.
	resp, body := doJSON(t, http.MethodPost, coordURL+"/v1/sweep", "",
		`{"flows_ml_min": [100, 300], "chip_loads": [0.4, 0.8]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d: %s", resp.StatusCode, body)
	}
	var accepted struct {
		JobID  string `json:"job_id"`
		Total  int    `json:"total"`
		Chains int    `json:"chains"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Total != 4 || accepted.Chains != 2 {
		t.Fatalf("sweep accepted %d points in %d chains, want 4 in 2", accepted.Total, accepted.Chains)
	}
	view := pollJob(t, coordURL, accepted.JobID, 2*time.Minute)
	if view.State != sim.JobDone || view.Completed != 4 {
		t.Fatalf("sweep finished %s with %d/4 points", view.State, view.Completed)
	}
	for i, res := range view.Results {
		if res.Index != i || res.Report == nil || res.Error != "" {
			t.Fatalf("sweep result %d malformed: %+v", i, res)
		}
	}

	// --- Quota: flood one client identity with cheap cached evaluates.
	// The driver traffic above used the host-derived client id, so this
	// bucket starts full. Burst 10 at 0.2 rps cannot absorb 14 hits
	// unless the loop somehow stretches past 20s — slow enough a refill
	// rate that CPU contention (e.g. a parallel race-detected package)
	// cannot flake the assertion, while the handful of driver-identity
	// requests stays comfortably inside its own burst.
	rejected := 0
	var lastRetryAfter string
	for i := 0; i < 14; i++ {
		resp, body := doJSON(t, http.MethodPost, coordURL+"/v1/evaluate", "flood", pinnedBody)
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected++
			lastRetryAfter = resp.Header.Get("Retry-After")
			if !strings.Contains(string(body), "quota") {
				t.Fatalf("429 body does not mention the quota: %s", body)
			}
		}
	}
	if rejected == 0 {
		t.Fatal("14 rapid requests from one client all admitted past burst 10")
	}
	if lastRetryAfter == "" {
		t.Fatal("429 without a Retry-After header")
	}
	if got := metricValue(t, coordURL, "bright_cluster_quota_rejected_total"); got < 1 {
		t.Fatalf("quota_rejected_total = %v after %d rejections", got, rejected)
	}

	// --- Let a full snapshot pass cover the now-warm fleet so the
	// coordinator holds the victim's cache before the murder.
	pullsBefore := metricValue(t, coordURL, "bright_cluster_snapshot_pulls_total")
	waitMetric(t, coordURL, "bright_cluster_snapshot_pulls_total",
		func(v float64) bool { return v >= pullsBefore+3 }, 60*time.Second)

	// --- Kill the shard that owns the pinned config, mid-run.
	stopProc(fmt.Sprintf("backend-%d", victimIdx))
	waitMetric(t, coordURL, "bright_cluster_backends_alive",
		func(v float64) bool { return v == 2 }, 60*time.Second)

	// Service continues during the outage: the pinned config routes (or
	// fails over) to the hedge-warmed shard and is served from cache.
	var outageView sim.ReportView
	postEvaluate(t, coordURL, "", pinnedBody, http.StatusOK, &outageView)
	if outageView.PeakTempC != coldView.PeakTempC {
		t.Fatalf("outage evaluate diverged: %.6f vs %.6f",
			outageView.PeakTempC, coldView.PeakTempC)
	}

	// --- Restart the victim cold on its old address. The coordinator
	// must push the saved snapshot before readmitting it to the ring.
	startBackend(victimIdx)
	waitMetric(t, coordURL, "bright_cluster_snapshot_restores_total",
		func(v float64) bool { return v >= 1 }, 60*time.Second)
	waitMetric(t, coordURL, "bright_cluster_backends_alive",
		func(v float64) bool { return v == 3 }, 60*time.Second)

	victimStats := backendStats(t, "http://"+victimAddr)
	if victimStats.CacheRestored == 0 {
		t.Fatal("restarted shard reports no restored cache entries")
	}
	if victimStats.Solves != 0 {
		t.Fatalf("restarted shard already solved %d configs before any traffic", victimStats.Solves)
	}

	// The pinned config routes back to its readmitted owner and must be
	// a warm hit there: zero post-restart solves, hits > 0.
	var rejoinView sim.ReportView
	postEvaluate(t, coordURL, "", pinnedBody, http.StatusOK, &rejoinView)
	if rejoinView.PeakTempC != coldView.PeakTempC {
		t.Fatalf("post-rejoin evaluate diverged: %.6f vs %.6f",
			rejoinView.PeakTempC, coldView.PeakTempC)
	}
	victimStats = backendStats(t, "http://"+victimAddr)
	if victimStats.Solves != 0 || victimStats.CacheHits == 0 {
		t.Fatalf("rejoined shard not serving from the restored cache: solves=%d hits=%d",
			victimStats.Solves, victimStats.CacheHits)
	}

	// Merged cluster stats see the whole fleet again.
	var merged struct {
		Cluster struct {
			Backends int `json:"backends"`
			Alive    int `json:"alive"`
		} `json:"cluster"`
	}
	getJSONURL(t, coordURL+"/v1/stats", &merged)
	if merged.Cluster.Backends != 3 || merged.Cluster.Alive != 3 {
		t.Fatalf("merged stats report %d/%d alive, want 3/3",
			merged.Cluster.Alive, merged.Cluster.Backends)
	}
}

// TestClusterRebalanceUnevenShards boots two real brightd processes and
// a coordinator with -rebalance-depth 1, then submits a sweep whose
// chains all hash onto ONE shard — the worst placement the static ring
// can produce. The other shard starts idle, so the coordinator's job
// polls must move queued chains over to it mid-sweep and the job must
// finish with every point accounted for.
func TestClusterRebalanceUnevenShards(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e test skipped in -short mode")
	}

	bin := buildBrightd(t)
	logDir := t.TempDir()
	backendAddrs := []string{freeAddr(t), freeAddr(t)}
	coordAddr := freeAddr(t)

	procs := map[string]*exec.Cmd{}
	t.Cleanup(func() {
		for name, cmd := range procs {
			if cmd.Process != nil {
				if err := cmd.Process.Kill(); err != nil {
					t.Logf("kill %s: %v", name, err)
				}
				_ = cmd.Wait()
			}
		}
		if t.Failed() {
			dumpLogs(t, logDir)
		}
	})
	startProc := func(name string, args ...string) {
		logf, err := os.OpenFile(filepath.Join(logDir, name+".log"),
			os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin, args...)
		cmd.Stdout = logf
		cmd.Stderr = logf
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", name, err)
		}
		if err := logf.Close(); err != nil {
			t.Logf("closing %s log: %v", name, err)
		}
		procs[name] = cmd
	}
	for i, addr := range backendAddrs {
		startProc(fmt.Sprintf("backend-%d", i),
			"-addr", addr, "-workers", "1", "-cache", "64", "-kernel-threads", "1")
	}
	for _, addr := range backendAddrs {
		waitHealthy(t, "http://"+addr+"/healthz", 60*time.Second)
	}
	startProc("coordinator",
		"-coordinator", "-backends", strings.Join(backendAddrs, ","),
		"-addr", coordAddr,
		"-health-interval", "200ms",
		"-snapshot-interval", "-1s",
		"-hedge-min", "30s",
		"-rebalance-depth", "1",
		"-request-timeout", "2m")
	coordURL := "http://" + coordAddr
	waitHealthy(t, coordURL+"/healthz", 60*time.Second)

	// Build the same ring the coordinator uses and pick three flows whose
	// chains all hash to one shard: a guaranteed-skewed placement.
	ring, err := newRing(backendAddrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	perShard := map[string][]float64{}
	var loadedAddr string
	for flow := 100.0; flow < 2000; flow += 10 {
		cfg := core.DefaultConfig()
		cfg.FlowMLMin = flow
		addr, ok := ring.lookup(cfg.ChainKey())
		if !ok {
			t.Fatal("ring lookup failed with two alive backends")
		}
		perShard[addr] = append(perShard[addr], flow)
		if len(perShard[addr]) == 3 {
			loadedAddr = addr
			break
		}
	}
	if loadedAddr == "" {
		t.Fatal("no shard accumulated 3 chains from 190 candidate flows")
	}
	flows := perShard[loadedAddr]

	// 3 chains x 2 loads = 6 points, all owned by one shard. Real solves
	// take ~1s each, so the first polls see the loaded shard's chains at
	// zero completed points — movable — while the other shard is idle.
	flowsJSON, err := json.Marshal(flows)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := doJSON(t, http.MethodPost, coordURL+"/v1/sweep", "",
		fmt.Sprintf(`{"flows_ml_min": %s, "chip_loads": [0.4, 0.8]}`, flowsJSON))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d: %s", resp.StatusCode, body)
	}
	var accepted struct {
		JobID  string `json:"job_id"`
		Total  int    `json:"total"`
		Chains int    `json:"chains"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Total != 6 || accepted.Chains != 3 {
		t.Fatalf("sweep accepted %d points in %d chains, want 6 in 3", accepted.Total, accepted.Chains)
	}

	view := pollJob(t, coordURL, accepted.JobID, 3*time.Minute)
	if view.State != sim.JobDone || view.Completed != 6 {
		t.Fatalf("sweep finished %s with %d/6 points", view.State, view.Completed)
	}
	for i, res := range view.Results {
		if res.Index != i || res.Report == nil || res.Error != "" {
			t.Fatalf("sweep result %d malformed: %+v", i, res)
		}
	}
	if got := metricValue(t, coordURL, "bright_cluster_chain_rebalances_total"); got < 1 {
		t.Fatalf("chain_rebalances_total = %v after an all-on-one-shard sweep with an idle peer", got)
	}

	// The idle shard must actually have solved some of the moved work.
	var idleSolves uint64
	for _, addr := range backendAddrs {
		if addr != loadedAddr {
			idleSolves += backendStats(t, "http://"+addr).Solves
		}
	}
	if idleSolves == 0 {
		t.Fatal("idle shard solved nothing despite re-balancing")
	}
}

// dumpLogs replays the subprocess logs into the test output on failure.
func dumpLogs(t *testing.T, dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Logf("reading log dir: %v", err)
		return
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Logf("reading %s: %v", e.Name(), err)
			continue
		}
		t.Logf("--- %s ---\n%s", e.Name(), data)
	}
}

// buildBrightd compiles the real daemon binary into a scratch dir.
func buildBrightd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "brightd")
	cmd := exec.Command("go", "build", "-o", bin, "bright/cmd/brightd")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building brightd: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a localhost port by binding and releasing it.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return addr
}

func waitHealthy(t *testing.T, url string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(url)
		if err == nil {
			drainClose(t, resp)
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became healthy: %v", url, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func doJSON(t *testing.T, method, url, clientID, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if clientID != "" {
		req.Header.Set("X-Client-ID", clientID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	data, err := io.ReadAll(resp.Body)
	drainClose(t, resp)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp, data
}

func postEvaluate(t *testing.T, coordURL, clientID, body string, wantStatus int, out any) {
	t.Helper()
	resp, data := doJSON(t, http.MethodPost, coordURL+"/v1/evaluate", clientID, body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("evaluate: %d (want %d): %s", resp.StatusCode, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding evaluate response: %v\n%s", err, data)
		}
	}
}

func getJSONURL(t *testing.T, url string, out any) {
	t.Helper()
	resp, data := doJSON(t, http.MethodGet, url, "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatalf("decoding %s: %v\n%s", url, err, data)
	}
}

func pollJob(t *testing.T, coordURL, id string, timeout time.Duration) sim.JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var view sim.JobView
		getJSONURL(t, coordURL+"/v1/jobs/"+id, &view)
		if view.State != sim.JobRunning {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still running after %v: %+v", id, timeout, view)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func backendStats(t *testing.T, base string) sim.Stats {
	t.Helper()
	var stats sim.Stats
	getJSONURL(t, base+"/v1/stats", &stats)
	return stats
}

// metricValue scrapes one unlabeled metric from the coordinator's
// Prometheus text exposition.
func metricValue(t *testing.T, coordURL, name string) float64 {
	t.Helper()
	resp, err := http.Get(coordURL + "/metrics")
	if err != nil {
		t.Fatalf("scraping metrics: %v", err)
	}
	defer drainClose(t, resp)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name)), 64)
		if err != nil {
			t.Fatalf("parsing %s from %q: %v", name, line, err)
		}
		return v
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading metrics: %v", err)
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

func waitMetric(t *testing.T, coordURL, name string, pred func(float64) bool, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if v := metricValue(t, coordURL, name); pred(v) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("metric %s never satisfied predicate (last = %v)",
				name, metricValue(t, coordURL, name))
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func drainClose(t *testing.T, resp *http.Response) {
	t.Helper()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Logf("draining response body: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Logf("closing response body: %v", err)
	}
}
