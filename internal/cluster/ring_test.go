package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndBalanced(t *testing.T) {
	addrs := []string{"a:1", "b:1", "c:1"}
	r1, err := newRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := newRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		got1, ok := r1.lookup(key)
		if !ok {
			t.Fatalf("lookup(%q) found nothing", key)
		}
		got2, _ := r2.lookup(key)
		if got1 != got2 {
			t.Fatalf("same ring inputs disagree for %q: %s vs %s", key, got1, got2)
		}
		counts[got1]++
	}
	// With 64 vnodes per backend the load split should be within a
	// loose band of fair share (1000 each).
	for addr, c := range counts {
		if c < n/6 || c > n/2 {
			t.Fatalf("unbalanced ring: %s owns %d of %d keys (%v)", addr, c, n, counts)
		}
	}
}

func TestRingDeathMovesOnlyTheDeadShardsKeys(t *testing.T) {
	r, err := newRing([]string{"a:1", "b:1", "c:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := map[string]string{}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before[key], _ = r.lookup(key)
	}
	if changed := r.setAlive("b:1", false); !changed {
		t.Fatal("killing b:1 reported no change")
	}
	moved := 0
	for key, owner := range before {
		now, ok := r.lookup(key)
		if !ok {
			t.Fatalf("lookup(%q) found nothing with 2 alive backends", key)
		}
		if owner == "b:1" {
			if now == "b:1" {
				t.Fatalf("key %q still routed to dead backend", key)
			}
			moved++
			continue
		}
		if now != owner {
			t.Fatalf("key %q moved from alive %s to %s when only b:1 died", key, owner, now)
		}
	}
	if moved == 0 {
		t.Fatal("b:1 owned no keys — ring construction broken")
	}
	// Rejoin restores the original ownership exactly.
	r.setAlive("b:1", true)
	for key, owner := range before {
		if now, _ := r.lookup(key); now != owner {
			t.Fatalf("key %q did not return to %s after rejoin (got %s)", key, owner, now)
		}
	}
}

func TestRingNextIsDistinctAliveBackend(t *testing.T) {
	r, err := newRing([]string{"a:1", "b:1", "c:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		primary, _ := r.lookup(key)
		hedge, ok := r.next(key, primary)
		if !ok {
			t.Fatalf("no hedge target for %q with 3 alive backends", key)
		}
		if hedge == primary {
			t.Fatalf("hedge target equals primary %s for %q", primary, key)
		}
	}
	// With a single alive backend there is no distinct hedge target.
	r.setAlive("b:1", false)
	r.setAlive("c:1", false)
	primary, ok := r.lookup("solo")
	if !ok || primary != "a:1" {
		t.Fatalf("lookup with one alive backend = (%s, %v)", primary, ok)
	}
	if hedge, ok := r.next("solo", primary); ok {
		t.Fatalf("hedge target %s conjured from a one-backend ring", hedge)
	}
	// All dead: nothing to route to.
	r.setAlive("a:1", false)
	if _, ok := r.lookup("solo"); ok {
		t.Fatal("lookup succeeded with every backend dead")
	}
}

func TestRingRejectsBadConfigurations(t *testing.T) {
	if _, err := newRing(nil, 0); err == nil {
		t.Fatal("empty backend set accepted")
	}
	if _, err := newRing([]string{"a:1", "a:1"}, 0); err == nil {
		t.Fatal("duplicate backend accepted")
	}
	if _, err := newRing([]string{""}, 0); err == nil {
		t.Fatal("empty address accepted")
	}
}
