package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bright/internal/core"
	"bright/internal/cosim"
	"bright/internal/flowcell"
	"bright/internal/hydro"
	"bright/internal/pdn"
	"bright/internal/sim"
	"bright/internal/thermal"
)

// fakeReport builds a structurally complete report (every pointer the
// view/summary layer dereferences is non-nil) without running solvers.
func fakeReport(cfg core.Config) *core.Report {
	return &core.Report{
		Config: cfg,
		CoSim: &cosim.Result{
			Iterations: 3,
			Converged:  true,
			Operating:  flowcell.OperatingPoint{Current: 6.3, Voltage: cfg.SupplyVoltage, Power: 6.3 * cfg.SupplyVoltage},
			Thermal:    &thermal.Solution{PeakT: 311.4, OutletT: 301.4},
		},
		CacheDemandW:       2.2,
		CacheDemandA:       2.2,
		DeliveredW:         5.4,
		PowersCaches:       true,
		Grid:               &pdn.Solution{MinVCache: 0.962},
		Thermal:            &thermal.Solution{PeakT: 311.4, OutletT: 301.4},
		PeakTempC:          38.3,
		Hydraulics:         hydro.Report{TotalDrop: 41300, PressureGradient: 1.9e6, PumpPower: 0.93},
		NetElectricalGainW: 4.5,
	}
}

// fakeSolver counts solves and records the chain keys it saw, so tests
// can assert chain-to-shard placement. delay stalls every solve (a slow
// shard for hedge tests).
type fakeSolver struct {
	calls atomic.Int64
	delay time.Duration

	mu   sync.Mutex
	keys map[string]bool
}

func (s *fakeSolver) solve(ctx context.Context, cfg core.Config) (*core.Report, error) {
	s.calls.Add(1)
	s.mu.Lock()
	if s.keys == nil {
		s.keys = make(map[string]bool)
	}
	s.keys[cfg.ChainKey()] = true
	s.mu.Unlock()
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return fakeReport(cfg), nil
}

func (s *fakeSolver) chainKeys() map[string]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]bool, len(s.keys))
	for k := range s.keys {
		out[k] = true
	}
	return out
}

// testBackend is one in-process shard: a real sim engine + handler on
// an httptest server.
type testBackend struct {
	solver *fakeSolver
	engine *sim.Engine
	srv    *httptest.Server
	addr   string
}

func newTestBackend(t *testing.T, solver *fakeSolver) *testBackend {
	t.Helper()
	e := sim.New(sim.Options{Workers: 2, Solver: solver.solve})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := e.Shutdown(ctx); err != nil {
			t.Errorf("engine shutdown: %v", err)
		}
	})
	srv := httptest.NewServer(sim.NewHandler(e))
	t.Cleanup(srv.Close)
	return &testBackend{
		solver: solver,
		engine: e,
		srv:    srv,
		addr:   strings.TrimPrefix(srv.URL, "http://"),
	}
}

// testCluster boots n in-process shards plus a coordinator.
type testCluster struct {
	backends []*testBackend
	coord    *Coordinator
	srv      *httptest.Server
}

func newTestCluster(t *testing.T, n int, mod func(*Options)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		b := newTestBackend(t, &fakeSolver{})
		tc.backends = append(tc.backends, b)
		addrs[i] = b.addr
	}
	// The hedge floor is far above any in-process latency so hedging
	// never fires by accident (the hedge test lowers it deliberately);
	// a stray hedge would double-solve and break exact-count asserts.
	opts := Options{Backends: addrs, HedgeMin: 30 * time.Second}
	if mod != nil {
		mod(&opts)
	}
	coord, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	tc.coord = coord
	tc.srv = httptest.NewServer(coord.Handler())
	t.Cleanup(tc.srv.Close)
	return tc
}

// backendFor returns the shard currently owning the config's canonical
// key.
func (tc *testCluster) backendFor(t *testing.T, cfg core.Config) *testBackend {
	t.Helper()
	addr, ok := tc.coord.ring.lookup(cfg.CanonicalKey())
	if !ok {
		t.Fatal("no alive backends in ring")
	}
	for _, b := range tc.backends {
		if b.addr == addr {
			return b
		}
	}
	t.Fatalf("ring routed to unknown backend %s", addr)
	return nil
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestCoordinatorRoutesByCanonicalKey(t *testing.T) {
	tc := newTestCluster(t, 3, nil)

	// The same configuration, evaluated repeatedly, must land on one
	// shard and be solved exactly once (the repeats are cache hits).
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, tc.srv.URL+"/v1/evaluate", `{"flow_ml_min": 300}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("evaluate %d: %d: %s", i, resp.StatusCode, body)
		}
		var view sim.ReportView
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatal(err)
		}
		if view.Config.FlowMLMin != 300 {
			t.Fatalf("config echo lost the override: %+v", view.Config)
		}
	}
	var total int64
	for _, b := range tc.backends {
		total += b.solver.calls.Load()
	}
	if total != 1 {
		t.Fatalf("3 identical evaluates caused %d solves across the fleet, want 1", total)
	}

	// Distinct configurations spread across shards (with 3 backends and
	// 20 keys, every shard should see work).
	for i := 0; i < 20; i++ {
		resp, body := postJSON(t, tc.srv.URL+"/v1/evaluate",
			fmt.Sprintf(`{"flow_ml_min": %d}`, 100+10*i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("evaluate: %d: %s", resp.StatusCode, body)
		}
	}
	for _, b := range tc.backends {
		if b.solver.calls.Load() == 0 {
			t.Fatalf("backend %s received no work from 21 distinct configs", b.addr)
		}
	}
}

func TestCoordinatorEvaluateValidationIsDefinitive(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	resp, body := postJSON(t, tc.srv.URL+"/v1/evaluate", `{"flow_ml_min": -10}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid config returned %d: %s", resp.StatusCode, body)
	}
	if got := tc.coord.m.failovers.Value(); got != 0 {
		t.Fatalf("a 400 triggered %d failovers; 4xx answers are definitive", got)
	}
}

func TestCoordinatorFailoverOnDeadShard(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	cfg := core.DefaultConfig()
	cfg.FlowMLMin = 300
	victim := tc.backendFor(t, cfg)
	victim.srv.Close() // transport errors, but the ring still lists it alive

	resp, body := postJSON(t, tc.srv.URL+"/v1/evaluate", `{"flow_ml_min": 300}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate with dead primary: %d: %s", resp.StatusCode, body)
	}
	if got := tc.coord.m.failovers.Value(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	if victim.solver.calls.Load() != 0 {
		t.Fatal("closed backend somehow solved")
	}
}

func TestCoordinatorHedgesSlowShard(t *testing.T) {
	tc := newTestCluster(t, 3, func(o *Options) { o.HedgeMin = 20 * time.Millisecond })
	cfg := core.DefaultConfig()
	cfg.FlowMLMin = 420
	slow := tc.backendFor(t, cfg)
	slow.solver.delay = 2 * time.Second // far past the hedge delay

	start := time.Now()
	resp, body := postJSON(t, tc.srv.URL+"/v1/evaluate", `{"flow_ml_min": 420}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged evaluate: %d: %s", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed >= 2*time.Second {
		t.Fatalf("response took %v — the hedge did not short-circuit the slow shard", elapsed)
	}
	if got := tc.coord.m.hedges.Value(); got != 1 {
		t.Fatalf("hedges = %d, want 1", got)
	}
	if got := tc.coord.m.hedgeWins.Value(); got != 1 {
		t.Fatalf("hedge wins = %d, want 1", got)
	}
}

func TestCoordinatorSweepKeepsChainsWhole(t *testing.T) {
	tc := newTestCluster(t, 3, nil)

	// 2 flows x 2 inlets x 2 loads = 8 points in 4 chains of 2.
	resp, body := postJSON(t, tc.srv.URL+"/v1/sweep",
		`{"flows_ml_min": [100, 300], "inlet_temps_c": [27, 37], "chip_loads": [0.4, 0.8]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d: %s", resp.StatusCode, body)
	}
	var accepted struct {
		JobID  string `json:"job_id"`
		Total  int    `json:"total"`
		Chains int    `json:"chains"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Total != 8 || accepted.Chains != 4 {
		t.Fatalf("accept body %+v, want total 8 in 4 chains", accepted)
	}

	var view sim.JobView
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, tc.srv.URL+"/v1/jobs/"+accepted.JobID, &view)
		if view.State != sim.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster job stuck: %+v", view)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if view.State != sim.JobDone || view.Completed != 8 {
		t.Fatalf("job finished %s with %d/%d", view.State, view.Completed, view.Total)
	}

	// Results must cover global indices 0..7 in grid order.
	spec := sim.SweepSpec{
		FlowsMLMin:  []float64{100, 300},
		InletTempsC: []float64{27, 37},
		ChipLoads:   []float64{0.4, 0.8},
	}
	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Results) != len(grid) {
		t.Fatalf("%d results for %d grid points", len(view.Results), len(grid))
	}
	for i, res := range view.Results {
		if res.Index != i {
			t.Fatalf("result %d has index %d", i, res.Index)
		}
		if res.Config.CanonicalKey() != grid[i].CanonicalKey() {
			t.Fatalf("result %d solved %+v, grid point is %+v", i, res.Config, grid[i])
		}
		if res.Report == nil {
			t.Fatalf("result %d has no report", i)
		}
	}

	// Chain affinity: no chain key may appear on two shards.
	seen := map[string]string{}
	for _, b := range tc.backends {
		for key := range b.solver.chainKeys() {
			if other, dup := seen[key]; dup {
				t.Fatalf("chain %s split across %s and %s", key, other, b.addr)
			}
			seen[key] = b.addr
		}
	}
	if len(seen) != 4 {
		t.Fatalf("expected 4 chains across the fleet, saw %d: %v", len(seen), seen)
	}
}

func TestCoordinatorQuota429(t *testing.T) {
	tc := newTestCluster(t, 2, func(o *Options) {
		o.QuotaRPS = 0.001 // effectively no refill within the test
		o.QuotaBurst = 2
	})
	client := &http.Client{}
	do := func() (*http.Response, []byte) {
		req, err := http.NewRequest(http.MethodPost, tc.srv.URL+"/v1/evaluate",
			strings.NewReader(`{"flow_ml_min": 300}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Client-ID", "hammer")
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}
	for i := 0; i < 2; i++ {
		resp, body := do()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d within burst: %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := do()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request past burst: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	var eb struct {
		Error     string `json:"error"`
		Retryable bool   `json:"retryable"`
	}
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if !eb.Retryable || !strings.Contains(eb.Error, "quota") {
		t.Fatalf("429 body %+v, want retryable quota error", eb)
	}
	if got := tc.coord.m.quotaRejected.Value(); got != 1 {
		t.Fatalf("quota_rejected = %d, want 1", got)
	}

	// A different client is not throttled by hammer's bucket.
	resp2, body2 := postJSON(t, tc.srv.URL+"/v1/evaluate", `{"flow_ml_min": 300}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("unthrottled client: %d: %s", resp2.StatusCode, body2)
	}
}

func TestCoordinatorStatsMergesFleet(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	for i := 0; i < 4; i++ {
		resp, body := postJSON(t, tc.srv.URL+"/v1/evaluate",
			fmt.Sprintf(`{"flow_ml_min": %d}`, 200+50*i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("evaluate: %d: %s", resp.StatusCode, body)
		}
	}
	var stats struct {
		Cluster struct {
			Backends int    `json:"backends"`
			Alive    int    `json:"alive"`
			Solves   uint64 `json:"solves"`
		} `json:"cluster"`
		Backends []struct {
			Addr  string     `json:"addr"`
			Alive bool       `json:"alive"`
			Stats *sim.Stats `json:"stats"`
		} `json:"backends"`
	}
	getJSON(t, tc.srv.URL+"/v1/stats", &stats)
	if stats.Cluster.Backends != 2 || stats.Cluster.Alive != 2 {
		t.Fatalf("cluster counts %+v, want 2/2", stats.Cluster)
	}
	if stats.Cluster.Solves != 4 {
		t.Fatalf("aggregated solves = %d, want 4", stats.Cluster.Solves)
	}
	if len(stats.Backends) != 2 {
		t.Fatalf("%d backend entries", len(stats.Backends))
	}
	for _, b := range stats.Backends {
		if !b.Alive || b.Stats == nil {
			t.Fatalf("backend entry %+v, want alive with stats", b)
		}
	}
}

// TestCoordinatorSweepResubmitsLostChains kills a shard while its chain
// is still running: the next poll must resubmit that chain through the
// ring (now routing around the death) and the job must still complete
// with every point accounted for.
func TestCoordinatorSweepResubmitsLostChains(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	resp, body := postJSON(t, tc.srv.URL+"/v1/sweep",
		`{"flows_ml_min": [100, 300], "chip_loads": [0.4, 0.8]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d: %s", resp.StatusCode, body)
	}
	var accepted struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}

	// Kill the shard owning the first chain and tell the ring (standing
	// in for the health loop, which is not running here).
	job, ok := tc.coord.jobs.get(accepted.JobID)
	if !ok {
		t.Fatal("cluster job not registered")
	}
	job.mu.Lock()
	victimAddr := job.chains[0].backend
	job.mu.Unlock()
	for _, b := range tc.backends {
		if b.addr == victimAddr {
			b.srv.Close()
		}
	}
	tc.coord.ring.setAlive(victimAddr, false)

	var view sim.JobView
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, tc.srv.URL+"/v1/jobs/"+accepted.JobID, &view)
		if view.State != sim.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished after shard loss: %+v", view)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if view.State != sim.JobDone || view.Completed != 4 {
		t.Fatalf("job finished %s with %d/4", view.State, view.Completed)
	}
	if got := tc.coord.m.chainResubmits.Value(); got == 0 {
		t.Fatal("chain_resubmits_total stayed 0 after a shard died mid-sweep")
	}
	for i, res := range view.Results {
		if res.Index != i || res.Report == nil {
			t.Fatalf("result %d malformed after resubmission: %+v", i, res)
		}
	}
}

// TestCoordinatorSweepRebalancesQueuedChains piles a sweep onto a fleet
// where one shard is slow: once the fast shard drains its own chains it
// goes idle while the slow one still holds a queue of untouched chains,
// and with RebalanceDepth set the job polls must move queued chains over
// to the idle shard instead of letting it sit.
func TestCoordinatorSweepRebalancesQueuedChains(t *testing.T) {
	tc := newTestCluster(t, 2, func(o *Options) { o.RebalanceDepth = 1 })

	// 12 flows x 2 loads = 24 points in 12 chains of 2. Find the shard
	// the ring loads most heavily and make it the slow one, so its
	// chains are still untouched when the other shard goes idle.
	flows := make([]float64, 12)
	perShard := map[string]int{}
	for i := range flows {
		flows[i] = 100 + 20*float64(i)
		cfg := core.DefaultConfig()
		cfg.FlowMLMin = flows[i]
		addr, ok := tc.coord.ring.lookup(cfg.ChainKey())
		if !ok {
			t.Fatal("ring lookup failed with two alive backends")
		}
		perShard[addr]++
	}
	var slow *testBackend
	for _, b := range tc.backends {
		if slow == nil || perShard[b.addr] > perShard[slow.addr] {
			slow = b
		}
	}
	if perShard[slow.addr] < 2 {
		t.Fatalf("ring spread 12 chains as %v; need >=2 on one shard", perShard)
	}
	// Long enough that every poll inside the window sees the slow
	// shard's chains at zero completed points (still movable).
	slow.solver.delay = 500 * time.Millisecond

	flowsJSON, err := json.Marshal(flows)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, tc.srv.URL+"/v1/sweep",
		fmt.Sprintf(`{"flows_ml_min": %s, "chip_loads": [0.4, 0.8]}`, flowsJSON))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d: %s", resp.StatusCode, body)
	}
	var accepted struct {
		JobID  string `json:"job_id"`
		Chains int    `json:"chains"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Chains != 12 {
		t.Fatalf("sweep accepted %d chains, want 12", accepted.Chains)
	}

	var view sim.JobView
	deadline := time.Now().Add(30 * time.Second)
	for {
		getJSON(t, tc.srv.URL+"/v1/jobs/"+accepted.JobID, &view)
		if view.State != sim.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("skewed sweep never finished: %+v", view)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if view.State != sim.JobDone || view.Completed != 24 {
		t.Fatalf("job finished %s with %d/24", view.State, view.Completed)
	}
	for i, res := range view.Results {
		if res.Index != i || res.Report == nil || res.Error != "" {
			t.Fatalf("result %d malformed after re-balancing: %+v", i, res)
		}
	}
	if got := tc.coord.m.chainRebalances.Value(); got == 0 {
		t.Fatal("chain_rebalances_total stayed 0 with an idle shard beside a queue")
	}

	// The merged stats surface reports the moves.
	var stats struct {
		Cluster struct {
			ChainRebalances uint64 `json:"chain_rebalances"`
		} `json:"cluster"`
	}
	getJSON(t, tc.srv.URL+"/v1/stats", &stats)
	if stats.Cluster.ChainRebalances == 0 {
		t.Fatal("merged stats hide chain_rebalances")
	}
}

// TestCoordinatorWarmRejoin exercises the full death-and-rejoin cycle
// in-process: warm a shard, snapshot it, kill it, watch the health loop
// evict it, bring a cold replacement up on the same address, and verify
// the coordinator hands it the snapshot so the replacement answers the
// old working set without solving.
func TestCoordinatorWarmRejoin(t *testing.T) {
	tc := newTestCluster(t, 3, func(o *Options) {
		o.HealthInterval = 50 * time.Millisecond
		o.HealthFailures = 2
		o.SnapshotInterval = -1 // snapshots pulled manually below
	})
	cfg := core.DefaultConfig()
	cfg.FlowMLMin = 300
	victim := tc.backendFor(t, cfg)

	// Warm the victim through the coordinator, then snapshot the fleet.
	resp, body := postJSON(t, tc.srv.URL+"/v1/evaluate", `{"flow_ml_min": 300}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming evaluate: %d: %s", resp.StatusCode, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tc.coord.snapshotPass(ctx)
	if got := tc.coord.m.snapshotPulls.Value(); got != 3 {
		t.Fatalf("snapshot pulls = %d, want 3", got)
	}

	// Kill the victim and run the health loop until it is evicted.
	victimAddr := victim.addr
	victim.srv.Close()
	runCtx, stopRun := context.WithCancel(ctx)
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		tc.coord.Run(runCtx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for tc.coord.ring.isAlive(victimAddr) {
		if time.Now().After(deadline) {
			t.Fatal("health loop never evicted the dead shard")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// While the shard is down, its keys are served by the rest of the
	// fleet.
	resp, body = postJSON(t, tc.srv.URL+"/v1/evaluate", `{"flow_ml_min": 300}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate during outage: %d: %s", resp.StatusCode, body)
	}

	// Resurrect a cold engine on the same address.
	l, err := net.Listen("tcp", victimAddr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", victimAddr, err)
	}
	freshSolver := &fakeSolver{}
	fresh := sim.New(sim.Options{Workers: 2, Solver: freshSolver.solve})
	t.Cleanup(func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if err := fresh.Shutdown(sctx); err != nil {
			t.Errorf("fresh engine shutdown: %v", err)
		}
	})
	freshSrv := &http.Server{Handler: sim.NewHandler(fresh)}
	go func() {
		if err := freshSrv.Serve(l); err != http.ErrServerClosed {
			t.Errorf("fresh backend: %v", err)
		}
	}()
	t.Cleanup(func() { freshSrv.Close() })

	// The health loop must readmit it — warm.
	deadline = time.Now().Add(5 * time.Second)
	for !tc.coord.ring.isAlive(victimAddr) {
		if time.Now().After(deadline) {
			t.Fatal("health loop never readmitted the resurrected shard")
		}
		time.Sleep(10 * time.Millisecond)
	}
	stopRun()
	<-runDone
	if got := tc.coord.m.snapshotRestores.Value(); got != 1 {
		t.Fatalf("snapshot restores = %d, want 1", got)
	}

	// The resurrected shard answers its old working set from the
	// restored cache: no solver calls.
	resp, body = postJSON(t, tc.srv.URL+"/v1/evaluate", `{"flow_ml_min": 300}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate after rejoin: %d: %s", resp.StatusCode, body)
	}
	if n := freshSolver.calls.Load(); n != 0 {
		t.Fatalf("resurrected shard solved %d times, want 0 (warm cache)", n)
	}
}
