package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"

	"bright/internal/sim"
)

// maxProxyBody bounds how much of a backend response the coordinator
// will buffer (reports are tens of KB; snapshots scale with the cache
// cap, still well under this).
const maxProxyBody = 64 << 20

// backendClient is the coordinator's HTTP client for one shard. Every
// method takes the caller's context so request cancellation propagates
// through the coordinator down to the shard's solvers.
type backendClient struct {
	addr string // host:port
	hc   *http.Client
}

// proxyResponse is a fully buffered backend response, ready to be
// replayed to the client or decoded.
type proxyResponse struct {
	status int
	header http.Header
	body   []byte
}

// passthroughHeaders are the backend response headers the coordinator
// replays to the client verbatim.
var passthroughHeaders = []string{"Content-Type", "Retry-After"}

// writeTo replays the buffered response on w.
func (p *proxyResponse) writeTo(w http.ResponseWriter, r *http.Request) {
	for _, h := range passthroughHeaders {
		if v := p.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(p.status)
	if _, err := w.Write(p.body); err != nil {
		log.Printf("cluster: writing %d-byte proxied response to %s %s: %v",
			len(p.body), r.Method, r.URL.Path, err)
	}
}

// closeBody drains and closes a response body so the transport can
// reuse the connection. Failures are log-only: the response itself has
// already been consumed or abandoned.
func closeBody(resp *http.Response) {
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		log.Printf("cluster: draining response body: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		log.Printf("cluster: closing response body: %v", err)
	}
}

// roundTrip performs one buffered HTTP exchange with the shard. A
// non-nil error means the shard was unreachable or the exchange died
// mid-flight (candidate for failover); HTTP-level failures come back as
// a proxyResponse with the shard's status.
func (b *backendClient) roundTrip(ctx context.Context, method, path string, body []byte) (*proxyResponse, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, "http://"+b.addr+path, rd)
	if err != nil {
		return nil, fmt.Errorf("cluster: building %s %s request for %s: %w", method, path, b.addr, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := b.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s %s on %s: %w", method, path, b.addr, err)
	}
	defer closeBody(resp)
	buf, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return nil, fmt.Errorf("cluster: reading %s %s response from %s: %w", method, path, b.addr, err)
	}
	return &proxyResponse{status: resp.StatusCode, header: resp.Header.Clone(), body: buf}, nil
}

// getInto decodes a GET response into out, treating non-2xx statuses as
// errors.
func (b *backendClient) getInto(ctx context.Context, path string, out any) error {
	pr, err := b.roundTrip(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	if pr.status/100 != 2 {
		return fmt.Errorf("cluster: GET %s on %s: status %d: %s", path, b.addr, pr.status, truncate(pr.body))
	}
	if err := json.Unmarshal(pr.body, out); err != nil {
		return fmt.Errorf("cluster: decoding GET %s response from %s: %w", path, b.addr, err)
	}
	return nil
}

// health probes the shard's lock-free liveness endpoint.
func (b *backendClient) health(ctx context.Context) error {
	var status struct {
		Status string `json:"status"`
	}
	if err := b.getInto(ctx, "/healthz", &status); err != nil {
		return err
	}
	if status.Status != "ok" {
		return fmt.Errorf("cluster: %s reports health %q", b.addr, status.Status)
	}
	return nil
}

// stats fetches the shard's serving stats.
func (b *backendClient) stats(ctx context.Context) (sim.Stats, error) {
	var st sim.Stats
	err := b.getInto(ctx, "/v1/stats", &st)
	return st, err
}

// getSnapshot pulls the shard's cache snapshot.
func (b *backendClient) getSnapshot(ctx context.Context) (sim.CacheSnapshot, error) {
	var snap sim.CacheSnapshot
	err := b.getInto(ctx, "/v1/cache/snapshot", &snap)
	return snap, err
}

// putSnapshot pushes a previously captured snapshot into the shard,
// returning how many entries it accepted.
func (b *backendClient) putSnapshot(ctx context.Context, snap sim.CacheSnapshot) (restored int, err error) {
	body, err := json.Marshal(snap)
	if err != nil {
		return 0, fmt.Errorf("cluster: encoding snapshot for %s: %w", b.addr, err)
	}
	pr, err := b.roundTrip(ctx, http.MethodPut, "/v1/cache/snapshot", body)
	if err != nil {
		return 0, err
	}
	if pr.status/100 != 2 {
		return 0, fmt.Errorf("cluster: PUT /v1/cache/snapshot on %s: status %d: %s", b.addr, pr.status, truncate(pr.body))
	}
	var out struct {
		Restored int `json:"restored"`
	}
	if err := json.Unmarshal(pr.body, &out); err != nil {
		return 0, fmt.Errorf("cluster: decoding snapshot PUT response from %s: %w", b.addr, err)
	}
	return out.Restored, nil
}

// submitSweep posts a sub-sweep spec and returns the shard-local job id.
func (b *backendClient) submitSweep(ctx context.Context, spec sim.SweepSpec) (jobID string, total int, err error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", 0, fmt.Errorf("cluster: encoding sweep spec for %s: %w", b.addr, err)
	}
	pr, err := b.roundTrip(ctx, http.MethodPost, "/v1/sweep", body)
	if err != nil {
		return "", 0, err
	}
	if pr.status != http.StatusAccepted {
		return "", 0, fmt.Errorf("cluster: POST /v1/sweep on %s: status %d: %s", b.addr, pr.status, truncate(pr.body))
	}
	var out struct {
		JobID string `json:"job_id"`
		Total int    `json:"total"`
	}
	if err := json.Unmarshal(pr.body, &out); err != nil {
		return "", 0, fmt.Errorf("cluster: decoding sweep accept from %s: %w", b.addr, err)
	}
	return out.JobID, out.Total, nil
}

// cancelJob aborts a shard-local sweep job (DELETE /v1/jobs/{id}).
// Best-effort: on the re-balance path the superseding sub-job is
// already authoritative and the stale one only wastes the old shard's
// cycles, so failures are log-only.
func (b *backendClient) cancelJob(ctx context.Context, id string) {
	pr, err := b.roundTrip(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		log.Printf("cluster: canceling superseded job %s on %s: %v", id, b.addr, err)
		return
	}
	if pr.status/100 != 2 {
		log.Printf("cluster: canceling superseded job %s on %s: status %d: %s",
			id, b.addr, pr.status, truncate(pr.body))
	}
}

// job polls a shard-local sweep job.
func (b *backendClient) job(ctx context.Context, id string) (sim.JobView, error) {
	var view sim.JobView
	err := b.getInto(ctx, "/v1/jobs/"+id, &view)
	return view, err
}

// truncate clips an error body for inclusion in an error message.
func truncate(b []byte) string {
	const max = 256
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}
