// Package cluster implements the brightd scale-out tier: a coordinator
// that consistent-hashes work across a fleet of single-node brightd
// backends (shards), preserving the per-node caches' locality that the
// serving stack's memoization and warm-start chaining depend on.
//
// The coordinator owns no solver state of its own. It routes
// /v1/evaluate by the configuration's canonical key, partitions
// /v1/sweep into warm-start chains (core.Config.ChainKey) placed whole
// on one shard each, hedges slow shards, health-checks dead ones out of
// the ring, and hands a rejoining shard its last-known cache snapshot so
// it comes back warm instead of cold.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// defaultVnodes is the number of virtual nodes each backend contributes
// to the ring. 64 keeps the per-backend load imbalance in the few-
// percent range for small fleets while the ring stays tiny (a few KB).
const defaultVnodes = 64

// vnode is one virtual point on the ring.
type vnode struct {
	hash uint64
	addr string
}

// ring is a consistent-hash ring over the backend set with liveness
// gating: lookups walk clockwise from the key's hash and skip dead
// backends, so a backend's death reassigns exactly its own hash ranges
// (to the next alive backend clockwise) and every other key keeps its
// shard — the property that keeps the fleet's caches warm across
// membership churn.
type ring struct {
	mu     sync.RWMutex
	vnodes []vnode
	addrs  []string // declaration order, for stable iteration
	alive  map[string]bool
}

// hashKey is FNV-64a: cheap, deterministic across processes, and well
// spread for the short structured keys (canonical/chain keys, backend
// addresses) it is fed.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	if _, err := h.Write([]byte(s)); err != nil {
		// hash.Hash documents Write as infallible; this is unreachable.
		panic("cluster: fnv write: " + err.Error())
	}
	return h.Sum64()
}

// newRing builds the ring. Backends start alive; health checking flips
// them via setAlive.
func newRing(addrs []string, vnodes int) (*ring, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no backends")
	}
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &ring{alive: make(map[string]bool, len(addrs))}
	for _, addr := range addrs {
		if addr == "" {
			return nil, fmt.Errorf("cluster: empty backend address")
		}
		if _, dup := r.alive[addr]; dup {
			return nil, fmt.Errorf("cluster: duplicate backend %q", addr)
		}
		r.alive[addr] = true
		r.addrs = append(r.addrs, addr)
		for v := 0; v < vnodes; v++ {
			r.vnodes = append(r.vnodes, vnode{
				hash: hashKey(fmt.Sprintf("%s#%d", addr, v)),
				addr: addr,
			})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool { return r.vnodes[i].hash < r.vnodes[j].hash })
	return r, nil
}

// lookup returns the alive backend owning key: the first alive vnode at
// or clockwise after the key's hash. ok is false when every backend is
// dead.
func (r *ring) lookup(key string) (addr string, ok bool) {
	return r.walk(key, "")
}

// next returns the first alive backend clockwise after key's position
// that is not skip — the hedge/failover target, guaranteed distinct
// from the primary. ok is false when no such backend exists (single
// alive backend, or none).
func (r *ring) next(key, skip string) (addr string, ok bool) {
	return r.walk(key, skip)
}

// walk is the clockwise scan shared by lookup and next.
func (r *ring) walk(key, skip string) (string, bool) {
	h := hashKey(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := len(r.vnodes)
	start := sort.Search(n, func(i int) bool { return r.vnodes[i].hash >= h })
	for i := 0; i < n; i++ {
		vn := r.vnodes[(start+i)%n]
		if vn.addr != skip && r.alive[vn.addr] {
			return vn.addr, true
		}
	}
	return "", false
}

// setAlive flips a backend's liveness, reporting whether the state
// changed (so callers can count transitions, not checks).
func (r *ring) setAlive(addr string, alive bool) (changed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	was, known := r.alive[addr]
	if !known || was == alive {
		return false
	}
	r.alive[addr] = alive
	return true
}

// isAlive reports a backend's current liveness.
func (r *ring) isAlive(addr string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.alive[addr]
}

// backends returns every backend address in declaration order.
func (r *ring) backends() []string {
	return append([]string(nil), r.addrs...)
}

// aliveCount returns the number of alive backends.
func (r *ring) aliveCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, a := range r.alive {
		if a {
			n++
		}
	}
	return n
}
