package cluster

import (
	"testing"
	"time"
)

func TestTokenBucketBurstThenRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	q := newTokenBuckets(2, 3, clock) // 2 rps, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := q.allow("alice"); !ok {
			t.Fatalf("request %d within burst rejected", i)
		}
	}
	ok, retryAfter := q.allow("alice")
	if ok {
		t.Fatal("4th immediate request admitted past burst 3")
	}
	if retryAfter < time.Second {
		t.Fatalf("Retry-After hint %v, want >= 1s (header granularity)", retryAfter)
	}

	// Another client has its own bucket.
	if ok, _ := q.allow("bob"); !ok {
		t.Fatal("fresh client rejected because another client is throttled")
	}

	// Half a second refills one token at 2 rps.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := q.allow("alice"); !ok {
		t.Fatal("refilled token not granted")
	}
	if ok, _ := q.allow("alice"); ok {
		t.Fatal("second token granted after refilling only one")
	}
}

func TestTokenBucketDisabled(t *testing.T) {
	q := newTokenBuckets(0, 5, nil)
	for i := 0; i < 100; i++ {
		if ok, _ := q.allow("anyone"); !ok {
			t.Fatal("disabled quota rejected a request")
		}
	}
}

func TestTokenBucketPrunesIdleClients(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	q := newTokenBuckets(10, 5, clock)
	for i := 0; i < maxQuotaClients; i++ {
		if ok, _ := q.allow(string(rune('a'+i%26)) + string(rune('0'+i%10)) + "-" + time.Duration(i).String()); !ok {
			t.Fatalf("client %d rejected on first request", i)
		}
	}
	// Everyone refills to full burst; the next new client must prune
	// rather than grow without bound.
	now = now.Add(time.Hour)
	if ok, _ := q.allow("newcomer"); !ok {
		t.Fatal("newcomer rejected")
	}
	q.mu.Lock()
	n := len(q.buckets)
	q.mu.Unlock()
	if n > maxQuotaClients {
		t.Fatalf("bucket map grew to %d, cap is %d", n, maxQuotaClients)
	}
}
