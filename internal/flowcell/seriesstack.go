package flowcell

import (
	"fmt"
	"math"

	"bright/internal/num"
)

// SeriesStack partitions an array's channels into groups connected
// electrically in series, raising the stack voltage toward the chip
// rail and easing the VRM conversion ratio. The price — well known in
// flow-battery engineering and absent from the paper — is *shunt
// currents*: all groups share electrolyte manifolds, which form ionic
// leakage paths between points at different electric potentials. The
// ladder-network model here quantifies that trade-off (extension E10).
type SeriesStack struct {
	// Array supplies the chemistry, geometry and flow; its channels are
	// divided evenly among the series groups.
	Array *Array
	// SeriesGroups M >= 1; ChannelsPerGroup = Array.NChannels / M.
	SeriesGroups int
	// ChannelShuntResistance is the ionic resistance (ohm) of one
	// channel's feed path from its inlet to the shared manifold.
	ChannelShuntResistance float64
	// ManifoldSegmentResistance is the ionic resistance (ohm) of the
	// manifold between two adjacent groups.
	ManifoldSegmentResistance float64
}

// DefaultShuntResistances returns representative values for the
// Table II geometry: a ~5 mm feed path at the channel cross-section
// (~1.5 kohm per channel) and a 1 mm2 manifold at the 300 um group
// spacing scale (~8 ohm per segment).
func DefaultShuntResistances() (channel, manifold float64) { return 1500, 8 }

// Validate reports whether the stack is well formed.
func (s *SeriesStack) Validate() error {
	if s.Array == nil {
		return fmt.Errorf("flowcell: nil array in series stack")
	}
	if err := s.Array.Validate(); err != nil {
		return err
	}
	if s.SeriesGroups < 1 {
		return fmt.Errorf("flowcell: need >= 1 series group, got %d", s.SeriesGroups)
	}
	if s.Array.NChannels%s.SeriesGroups != 0 {
		return fmt.Errorf("flowcell: %d channels do not divide into %d groups",
			s.Array.NChannels, s.SeriesGroups)
	}
	if s.ChannelShuntResistance <= 0 || s.ManifoldSegmentResistance <= 0 {
		return fmt.Errorf("flowcell: nonpositive shunt resistances")
	}
	return nil
}

// StackResult is one solved stack operating point.
type StackResult struct {
	// TerminalVoltage across the whole series stack.
	TerminalVoltage float64
	// TerminalCurrent delivered externally (A).
	TerminalCurrent float64
	// DeliveredW = V * I at the stack terminals.
	DeliveredW float64
	// ShuntLossW dissipated in the ionic leakage network.
	ShuntLossW float64
	// ShuntLossPct = ShuntLossW / (DeliveredW + ShuntLossW) * 100.
	ShuntLossPct float64
	// GroupCurrents are the per-group internal currents (A); shunt
	// leakage makes them unequal.
	GroupCurrents []float64
	// ImbalancePct = (max-min)/mean group current * 100.
	ImbalancePct float64
}

// Solve computes the stack state at the given terminal voltage,
// linearizing each group's polarization around its share of the
// voltage. The linearization is accurate in the ohmic-dominated middle
// of the curve where stacks operate; the tests cross-check the M=1
// degenerate case against the exact array solver.
func (s *SeriesStack) Solve(terminalVoltage float64) (*StackResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m := s.SeriesGroups
	perGroup := s.Array.NChannels / m
	group := &Array{Cell: s.Array.Cell, NChannels: perGroup}
	vGroup := terminalVoltage / float64(m)

	// Linearize the group polarization at the group voltage: current
	// I(V) ~ i0 + (v0 - V)/rd.
	op0, err := group.CurrentAtVoltage(vGroup)
	if err != nil {
		return nil, fmt.Errorf("flowcell: stack group at %.3f V: %w", vGroup, err)
	}
	dv := 0.02
	opLo, err := group.CurrentAtVoltage(vGroup - dv)
	if err != nil {
		return nil, err
	}
	rd := dv / (opLo.Current - op0.Current)
	if rd <= 0 || math.IsInf(rd, 0) {
		return nil, fmt.Errorf("flowcell: non-physical differential resistance %g", rd)
	}
	gd := 1 / rd
	// Group EMF in the linear model: I = gd*(eEff - V).
	eEff := vGroup + op0.Current*rd

	// Unknowns: junction potentials v_1..v_{M-1} (v_0 = 0 and
	// v_M = terminalVoltage are fixed) and manifold potentials
	// m_0..m_M. Channel shunt paths connect junction j to manifold
	// node j through Rch/perGroup-ish; we lump one path per junction at
	// the per-group parallel resistance.
	rch := s.ChannelShuntResistance / float64(perGroup)
	gch := 1 / rch
	gm := 1 / s.ManifoldSegmentResistance
	nv := m - 1
	nm := m + 1
	n := nv + nm
	vIdx := func(j int) int { return j - 1 }  // junction j in 1..M-1
	mIdx := func(j int) int { return nv + j } // manifold j in 0..M
	a := num.NewDense(maxInt(n, 1), maxInt(n, 1))
	b := make([]float64, maxInt(n, 1))
	vKnown := func(j int) (float64, bool) {
		if j == 0 {
			return 0, true
		}
		if j == m {
			return terminalVoltage, true
		}
		return 0, false
	}
	// Junction KCL (j = 1..M-1): I_j - I_{j+1} - gch*(v_j - m_j) = 0
	// with I_j = gd*(eEff - (v_j - v_{j-1})).
	for j := 1; j <= m-1; j++ {
		row := vIdx(j)
		// I_j depends on v_j - v_{j-1}: d/dv_j = -gd, d/dv_{j-1} = +gd.
		// I_{j+1} depends on v_{j+1} - v_j: so -I_{j+1} contributes
		// d/dv_{j+1} = +gd, d/dv_j = -gd.
		addV := func(node int, coef float64) {
			if val, known := vKnown(node); known {
				b[row] -= coef * val
			} else {
				a.Add(row, vIdx(node), coef)
			}
		}
		// I_j - I_{j+1} = gd*(v_{j+1} - 2 v_j + v_{j-1}) (eEff cancels).
		addV(j+1, gd)
		addV(j, -2*gd)
		addV(j-1, gd)
		// Shunt: -gch*(v_j - m_j).
		addV(j, -gch)
		a.Add(row, mIdx(j), gch)
	}
	// Manifold KCL (j = 0..M): sum of segment currents + channel path.
	for j := 0; j <= m; j++ {
		row := mIdx(j)
		if j > 0 {
			a.Add(row, mIdx(j), gm)
			a.Add(row, mIdx(j-1), -gm)
		}
		if j < m {
			a.Add(row, mIdx(j), gm)
			a.Add(row, mIdx(j+1), -gm)
		}
		a.Add(row, mIdx(j), gch)
		if val, known := vKnown(j); known {
			b[row] += gch * val
		} else {
			a.Add(row, vIdx(j), -gch)
		}
	}
	var x []float64
	if n > 0 {
		x, err = num.SolveDense(a, b)
		if err != nil {
			return nil, fmt.Errorf("flowcell: shunt ladder solve: %w", err)
		}
	}
	vAt := func(j int) float64 {
		if val, known := vKnown(j); known {
			return val
		}
		return x[vIdx(j)]
	}
	mAt := func(j int) float64 { return x[mIdx(j)] }

	res := &StackResult{TerminalVoltage: terminalVoltage}
	minI, maxI, sumI := math.Inf(1), math.Inf(-1), 0.0
	for j := 1; j <= m; j++ {
		ij := gd * (eEff - (vAt(j) - vAt(j-1)))
		res.GroupCurrents = append(res.GroupCurrents, ij)
		minI = math.Min(minI, ij)
		maxI = math.Max(maxI, ij)
		sumI += ij
	}
	// Shunt dissipation.
	for j := 0; j <= m; j++ {
		dv := vAt(j) - mAt(j)
		res.ShuntLossW += dv * dv * gch
		if j < m {
			dm := mAt(j) - mAt(j+1)
			res.ShuntLossW += dm * dm * gm
		}
	}
	// Terminal current: the last group's current minus the leakage
	// injected at the terminal junction.
	res.TerminalCurrent = res.GroupCurrents[m-1] - (vAt(m)-mAt(m))*gch
	res.DeliveredW = res.TerminalCurrent * terminalVoltage
	if res.DeliveredW+res.ShuntLossW > 0 {
		res.ShuntLossPct = 100 * res.ShuntLossW / (res.DeliveredW + res.ShuntLossW)
	}
	mean := sumI / float64(m)
	if mean != 0 {
		res.ImbalancePct = 100 * (maxI - minI) / mean
	}
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
