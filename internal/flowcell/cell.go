// Package flowcell models the membraneless co-laminar microfluidic
// vanadium redox flow cell of the paper: a single etched microchannel
// carrying fuel and oxidant streams side by side, with electrodes on the
// two side walls, plus electrically parallel arrays of such channels
// (the 88-channel Table II array). It combines the hydrodynamics (cfd),
// species transport (transport) and electrode kinetics (echem) into
// polarization curves and operating-point solvers, replacing the paper's
// COMSOL model.
//
// Geometry convention: Channel.Width is the electrode-to-electrode gap
// (the two electrolyte streams sit side by side across it, each
// Width/2 wide); Channel.Height is the electrode dimension normal to the
// flow; Channel.Length is the streamwise electrode length. Electrode
// geometric area = Height x Length.
package flowcell

import (
	"fmt"
	"math"

	"bright/internal/cfd"
	"bright/internal/echem"
	"bright/internal/potential"
	"bright/internal/transport"
	"bright/internal/units"
)

// SolverPath selects how electrode mass transfer is evaluated.
type SolverPath int

const (
	// PathCorrelation uses Leveque-averaged mass-transfer coefficients
	// (fast; used inside system-level co-simulation loops).
	PathCorrelation SolverPath = iota
	// PathFVM solves the 2D species transport field per electrode with
	// a flux-coupled finite-volume march (the "numerical model" that
	// replaces COMSOL; slower, used for validation and Fig. 3).
	PathFVM
)

// String implements fmt.Stringer.
func (p SolverPath) String() string {
	switch p {
	case PathCorrelation:
		return "correlation"
	case PathFVM:
		return "fvm"
	default:
		return fmt.Sprintf("SolverPath(%d)", int(p))
	}
}

// ElectrodeSpec describes one electrode's chemistry and inlet state.
type ElectrodeSpec struct {
	Couple echem.Couple
	// COxInlet, CRedInlet are inlet concentrations (mol/m3).
	COxInlet, CRedInlet float64
}

// Cell is a single co-laminar flow-cell channel.
type Cell struct {
	Channel     cfd.Channel
	Electrolyte echem.Electrolyte
	// Anode is the negative electrode (oxidation during discharge);
	// Cathode is the positive electrode (reduction).
	Anode, Cathode ElectrodeSpec
	// StreamFlowRate is the volumetric flow rate per stream (m3/s);
	// the channel carries two streams, so the channel total is twice
	// this value.
	StreamFlowRate float64
	// Temperature is the operating temperature (K) used for all
	// temperature-dependent properties. The co-simulation layer updates
	// it from the thermal solution.
	Temperature float64
	// ContactASR is an additional area-specific ohmic resistance
	// (ohm.m2) lumping electrode bulk, contact and current-collector
	// resistances.
	ContactASR float64
	// AreaEnhancement (>= 1) multiplies the geometric electrode area to
	// model structured / flow-through electrodes (Rapp 2012, the source
	// of the Table II parameters, used flow-through electrode designs).
	// 1 means a flat wall electrode.
	AreaEnhancement float64
	// Path selects the mass-transfer solver (correlation by default).
	Path SolverPath
	// NX, NY are the FVM grid resolutions (streamwise stations x
	// transverse cells); defaults 160x48 when zero.
	NX, NY int
	// ElectrodeCoverage is the fraction of each side wall's height the
	// electrode actually covers, in (0, 1]; 0 means full coverage.
	// Partial coverage constricts the ionic current path; the factor is
	// computed with the charge-conservation field solver (paper
	// eq. (11), package potential) and folded into OhmicASR.
	ElectrodeCoverage float64
}

// Validate reports whether the cell description is usable.
func (c *Cell) Validate() error {
	if err := c.Channel.Validate(); err != nil {
		return err
	}
	if err := c.Electrolyte.Validate(); err != nil {
		return err
	}
	for _, e := range []struct {
		name string
		spec ElectrodeSpec
	}{{"anode", c.Anode}, {"cathode", c.Cathode}} {
		if err := e.spec.Couple.Validate(); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		if e.spec.COxInlet <= 0 || e.spec.CRedInlet <= 0 {
			return fmt.Errorf("flowcell: %s inlet concentrations must be positive (Ox=%g, Red=%g); use a small floor such as 1 mol/m3 for trace species",
				e.name, e.spec.COxInlet, e.spec.CRedInlet)
		}
	}
	if c.StreamFlowRate <= 0 {
		return fmt.Errorf("flowcell: nonpositive stream flow rate %g", c.StreamFlowRate)
	}
	if c.Temperature <= 0 {
		return fmt.Errorf("flowcell: nonpositive temperature %g", c.Temperature)
	}
	if c.ContactASR < 0 {
		return fmt.Errorf("flowcell: negative contact ASR %g", c.ContactASR)
	}
	if c.AreaEnhancement != 0 && c.AreaEnhancement < 1 {
		return fmt.Errorf("flowcell: area enhancement %g < 1", c.AreaEnhancement)
	}
	if c.ElectrodeCoverage < 0 || c.ElectrodeCoverage > 1 {
		return fmt.Errorf("flowcell: electrode coverage %g out of [0,1]", c.ElectrodeCoverage)
	}
	return nil
}

// enhancement returns the effective area multiplier (default 1).
func (c *Cell) enhancement() float64 {
	if c.AreaEnhancement == 0 {
		return 1
	}
	return c.AreaEnhancement
}

// fvmGrid returns the FVM resolution with defaults applied.
func (c *Cell) fvmGrid() (nx, ny int) {
	nx, ny = c.NX, c.NY
	if nx == 0 {
		nx = 160
	}
	if ny == 0 {
		ny = 48
	}
	return
}

// ElectrodeArea returns the effective electrode area (m2) including the
// enhancement factor.
func (c *Cell) ElectrodeArea() float64 {
	return c.Channel.Height * c.Channel.Length * c.enhancement()
}

// GeometricElectrodeArea returns the flat-wall electrode area (m2).
func (c *Cell) GeometricElectrodeArea() float64 {
	return c.Channel.Height * c.Channel.Length
}

// StreamWidth returns the transverse extent of each electrolyte stream
// (half the electrode gap).
func (c *Cell) StreamWidth() float64 { return c.Channel.Width / 2 }

// MeanVelocity returns the mean streamwise velocity (m/s) in the channel.
func (c *Cell) MeanVelocity() float64 {
	return 2 * c.StreamFlowRate / c.Channel.Area()
}

// fluid returns the cfd.Fluid at the cell's operating temperature.
func (c *Cell) fluid() cfd.Fluid {
	t := c.Temperature
	return cfd.Fluid{
		Density:             c.Electrolyte.Density(t),
		Viscosity:           c.Electrolyte.Viscosity(t),
		ThermalConductivity: c.Electrolyte.ThermalConductivity,
		HeatCapacityVol:     c.Electrolyte.HeatCapacityVol,
	}
}

// shearGap returns the length scale over which the near-electrode
// velocity profile develops: the smaller cross-section dimension. (For
// wide shallow cells like the Kjeang validation cell the profile is
// Hele-Shaw, parabolic across the height; for the deep-etched Table II
// channels it is parabolic across the electrode gap.)
func (c *Cell) shearGap() float64 {
	return math.Min(c.Channel.Width, c.Channel.Height)
}

// WallShearRate returns the shear rate at the electrode wall (1/s).
func (c *Cell) WallShearRate() float64 {
	return transport.WallShearRate(c.MeanVelocity(), c.shearGap())
}

// KmAvg returns the Leveque-averaged mass-transfer coefficient (m/s) for
// a species of diffusivity d at the cell's flow condition.
func (c *Cell) KmAvg(d float64) float64 {
	return transport.KmLevequeAvg(d, c.WallShearRate(), c.Channel.Length)
}

// halfState assembles the echem.HalfCellState for one electrode using
// the correlation mass-transfer path.
func (c *Cell) halfState(spec ElectrodeSpec) echem.HalfCellState {
	t := c.Temperature
	return echem.HalfCellState{
		Couple:      spec.Couple,
		COxBulk:     spec.COxInlet,
		CRedBulk:    spec.CRedInlet,
		Temperature: t,
		KmOx:        c.KmAvg(spec.Couple.DOx(t)),
		KmRed:       c.KmAvg(spec.Couple.DRed(t)),
	}
}

// OpenCircuitVoltage returns the cell OCV (V) from the Nernst potentials
// at the inlet concentrations and operating temperature.
func (c *Cell) OpenCircuitVoltage() (float64, error) {
	return echem.OpenCircuitVoltage(c.halfState(c.Cathode), c.halfState(c.Anode))
}

// OhmicASR returns the total area-specific resistance (ohm.m2): ionic
// conduction across the electrode gap (including the geometric
// constriction factor for partial electrode coverage) plus the contact
// term. The ionic path length is the full gap (the current crosses
// both streams).
func (c *Cell) OhmicASR() float64 {
	ionic := c.Channel.Width / c.Electrolyte.Conductivity(c.Temperature)
	return ionic*c.constriction() + c.ContactASR
}

// constriction returns the geometric constriction factor of the ionic
// path for the cell's electrode coverage (1 for full-wall electrodes).
// The factor is conductivity-independent when both streams share the
// same electrolyte, so the process-wide memo inside
// potential.ConstrictionFactor (keyed on geometry only) serves every
// cell with the same cross-section — including copies of this one.
func (c *Cell) constriction() float64 {
	cov := c.ElectrodeCoverage
	if cov == 0 || cov == 1 {
		return 1
	}
	f, err := potential.ConstrictionFactor(c.Channel.Width, c.Channel.Height, cov, 1)
	if err != nil {
		// Validate guarantees a well-posed problem; a solver failure
		// here is a programming error, not an operating condition.
		panic(fmt.Sprintf("flowcell: constriction solve failed: %v", err))
	}
	return f
}

// LimitingCurrent returns the smaller of the two electrodes' limiting
// currents (A) on the correlation path; the cell cannot sustain steady
// currents at or above this value.
func (c *Cell) LimitingCurrent() float64 {
	a := c.halfState(c.Anode).LimitingCurrentDensity(echem.Oxidation)
	k := c.halfState(c.Cathode).LimitingCurrentDensity(echem.Reduction)
	return math.Min(a, k) * c.ElectrodeArea()
}

// CrossoverCurrent estimates the parasitic current (A) carried by
// reactant diffusing across the co-laminar interface and reaching the
// opposite electrode. The wrong species must cross a stream half-width;
// its arrival rate is attenuated by exp(-w^2 / (4 D t_res)), which is
// negligible (< 1e-100) for every configuration in the paper — the tests
// assert this, justifying the membraneless design assumption.
func (c *Cell) CrossoverCurrent() float64 {
	t := c.Temperature
	v := c.MeanVelocity()
	tRes := c.Channel.Length / v
	w := c.StreamWidth()
	total := 0.0
	for _, s := range []struct {
		d, conc float64
	}{
		{c.Anode.Couple.DRed(t), c.Anode.CRedInlet},   // fuel toward cathode
		{c.Cathode.Couple.DOx(t), c.Cathode.COxInlet}, // oxidant toward anode
	} {
		reach := math.Exp(-w * w / (4 * s.d * tRes))
		// Interface flux scale: species entering the mixing layer.
		mix := transport.MixingWidth(s.d, c.Channel.Length, v)
		molar := s.conc * mix * c.Channel.Height * v / 2 * reach
		total += units.Faraday * molar
	}
	return total
}

// HeatDissipation returns the heat generated inside the cell (W) while
// delivering current i at terminal voltage v: the difference between the
// reversible power (OCV*i) and the delivered electric power. Entropic
// (reversible) heat is small for the vanadium couples and is neglected,
// as in the paper's thermal analysis.
func (c *Cell) HeatDissipation(current, voltage float64) (float64, error) {
	ocv, err := c.OpenCircuitVoltage()
	if err != nil {
		return 0, err
	}
	q := current * (ocv - voltage)
	if q < 0 {
		q = 0
	}
	return q, nil
}
