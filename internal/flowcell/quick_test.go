package flowcell

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func quickConfig(seed int64, max int) *quick.Config {
	return &quick.Config{MaxCount: max, Rand: rand.New(rand.NewSource(seed))}
}

// TestQuickVoltageDecreasesWithCurrent: at any random SOC, flow rate and
// temperature, the discharge voltage strictly decreases with current —
// the fundamental polarization property.
func TestQuickVoltageDecreasesWithCurrent(t *testing.T) {
	f := func(socRaw, flowRaw, tRaw, f1Raw, f2Raw uint8) bool {
		soc := 0.1 + 0.8*float64(socRaw)/255
		flow := 5 + float64(flowRaw) // 5..260 uL/min
		cell, err := KjeangCell(flow).AtStateOfCharge(soc)
		if err != nil {
			return false
		}
		cell.Temperature = 285 + float64(tRaw)/8 // 285..317 K
		iL := cell.LimitingCurrent()
		fr1 := 0.05 + 0.85*float64(f1Raw)/255
		fr2 := 0.05 + 0.85*float64(f2Raw)/255
		if math.Abs(fr1-fr2) < 1e-3 {
			return true
		}
		if fr1 > fr2 {
			fr1, fr2 = fr2, fr1
		}
		op1, err1 := cell.VoltageAtCurrent(fr1 * iL)
		op2, err2 := cell.VoltageAtCurrent(fr2 * iL)
		if err1 != nil || err2 != nil {
			return false
		}
		return op2.Voltage < op1.Voltage
	}
	if err := quick.Check(f, quickConfig(21, 60)); err != nil {
		t.Error(err)
	}
}

// TestQuickChargeAboveDischarge: at any feasible state, charging at a
// current costs more voltage than discharging at the same current
// yields.
func TestQuickChargeAboveDischarge(t *testing.T) {
	f := func(socRaw, flowRaw, fracRaw uint8) bool {
		soc := 0.2 + 0.6*float64(socRaw)/255
		flow := 10 + float64(flowRaw)
		cell, err := KjeangCell(flow).AtStateOfCharge(soc)
		if err != nil {
			return false
		}
		iL := math.Min(cell.LimitingCurrent(), cell.ChargingLimitingCurrent())
		i := (0.05 + 0.8*float64(fracRaw)/255) * iL
		dis, err1 := cell.VoltageAtCurrent(i)
		chg, err2 := cell.ChargeAtCurrent(i)
		if err1 != nil || err2 != nil {
			return false
		}
		return chg.Voltage > dis.Voltage
	}
	if err := quick.Check(f, quickConfig(22, 50)); err != nil {
		t.Error(err)
	}
}

// TestQuickArrayLinearInChannelCount: array current at a voltage scales
// exactly with the channel count when per-channel conditions are fixed.
func TestQuickArrayLinearInChannelCount(t *testing.T) {
	f := func(nRaw uint8, vRaw uint8) bool {
		n := 2 + int(nRaw)%200
		v := 0.8 + 0.6*float64(vRaw)/255 // 0.8..1.4 V
		base := Power7Array()
		a1 := &Array{Cell: base.Cell, NChannels: 1}
		an := &Array{Cell: base.Cell, NChannels: n}
		op1, err1 := a1.CurrentAtVoltage(v)
		opn, err2 := an.CurrentAtVoltage(v)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(opn.Current-float64(n)*op1.Current) <= 1e-9*(1+opn.Current)
	}
	if err := quick.Check(f, quickConfig(23, 40)); err != nil {
		t.Error(err)
	}
}

// TestQuickLimitingCurrentMonotoneInFlow: more flow never lowers the
// transport limit.
func TestQuickLimitingCurrentMonotoneInFlow(t *testing.T) {
	f := func(q1Raw, dqRaw uint8) bool {
		q1 := 1 + float64(q1Raw)
		q2 := q1 + 1 + float64(dqRaw)
		return KjeangCell(q2).LimitingCurrent() > KjeangCell(q1).LimitingCurrent()
	}
	if err := quick.Check(f, quickConfig(24, 200)); err != nil {
		t.Error(err)
	}
}

// TestQuickHeatNonNegative: the heat dissipation is non-negative at
// every feasible discharge point, and energy is conserved
// (P_elec + Q = OCV * I).
func TestQuickHeatNonNegative(t *testing.T) {
	f := func(flowRaw, fracRaw uint8) bool {
		cell := KjeangCell(5 + float64(flowRaw))
		i := (0.05 + 0.9*float64(fracRaw)/255) * cell.LimitingCurrent()
		op, err := cell.VoltageAtCurrent(i)
		if err != nil {
			return false
		}
		q, err := cell.HeatDissipation(op.Current, op.Voltage)
		if err != nil || q < 0 {
			return false
		}
		return math.Abs(q+op.Power-op.OpenCircuit*op.Current) <= 1e-6*(1+op.OpenCircuit*op.Current)
	}
	if err := quick.Check(f, quickConfig(25, 80)); err != nil {
		t.Error(err)
	}
}
