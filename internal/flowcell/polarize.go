package flowcell

import (
	"context"
	"errors"
	"fmt"

	"bright/internal/echem"
	"bright/internal/num"
)

// ErrBeyondLimit is returned when a requested operating point exceeds
// the cell's mass-transport limit.
var ErrBeyondLimit = errors.New("flowcell: operating point beyond mass-transport limit")

// OperatingPoint is one solved cell state.
type OperatingPoint struct {
	Current        float64 // A
	Voltage        float64 // V
	CurrentDensity float64 // A/m2 on the geometric electrode area
	PowerDensity   float64 // W/m2 on the geometric electrode area
	Power          float64 // W
	// Loss decomposition (V, all positive magnitudes).
	OhmicLoss   float64
	AnodeLoss   float64 // charge-transfer + mass-transfer at the anode
	CathodeLoss float64
	OpenCircuit float64
	// Charging marks points produced by the charge solvers (Voltage
	// above OCV, Power = power absorbed).
	Charging bool
}

// VoltageAtCurrent solves the cell voltage at total current i >= 0
// (discharge). It returns ErrBeyondLimit (wrapped) when i exceeds the
// transport limit.
func (c *Cell) VoltageAtCurrent(current float64) (OperatingPoint, error) {
	if err := c.Validate(); err != nil {
		return OperatingPoint{}, err
	}
	if current < 0 {
		return OperatingPoint{}, fmt.Errorf("flowcell: negative current %g (charging is not modeled)", current)
	}
	ocv, err := c.OpenCircuitVoltage()
	if err != nil {
		return OperatingPoint{}, err
	}
	area := c.ElectrodeArea()
	iDens := (current + c.CrossoverCurrent()) / area

	var etaA, etaC float64
	switch c.Path {
	case PathCorrelation:
		etaA, err = c.halfState(c.Anode).Overpotential(iDens, echem.Oxidation)
		if err == nil {
			etaC, err = c.halfState(c.Cathode).Overpotential(iDens, echem.Reduction)
		}
	case PathFVM:
		etaA, err = c.electrodeFVM(c.Anode, echem.Oxidation, iDens)
		if err == nil {
			etaC, err = c.electrodeFVM(c.Cathode, echem.Reduction, iDens)
		}
	default:
		return OperatingPoint{}, fmt.Errorf("flowcell: unknown solver path %v", c.Path)
	}
	if err != nil {
		if errors.Is(err, echem.ErrMassTransportLimited) {
			return OperatingPoint{}, fmt.Errorf("%w: %v", ErrBeyondLimit, err)
		}
		return OperatingPoint{}, err
	}
	ohmic := iDens * c.OhmicASR()
	v := ocv + etaC - etaA - ohmic
	geo := c.GeometricElectrodeArea()
	return OperatingPoint{
		Current:        current,
		Voltage:        v,
		CurrentDensity: current / geo,
		PowerDensity:   current * v / geo,
		Power:          current * v,
		OhmicLoss:      ohmic,
		AnodeLoss:      etaA,
		CathodeLoss:    -etaC,
		OpenCircuit:    ocv,
	}, nil
}

// effectiveLimit returns the largest solvable current (A) for the active
// path: the correlation path's closed-form limit, or a bisection against
// solver feasibility on the FVM path (whose local depletion limit is
// slightly below the average-km limit).
func (c *Cell) effectiveLimit() (float64, error) {
	iLim := c.LimitingCurrent() - c.CrossoverCurrent()
	if iLim <= 0 {
		return 0, fmt.Errorf("flowcell: crossover exceeds limiting current")
	}
	if c.Path == PathCorrelation {
		return iLim, nil
	}
	solvable := func(i float64) bool {
		_, err := c.VoltageAtCurrent(i)
		return err == nil
	}
	if solvable(iLim) {
		return iLim, nil
	}
	lo, hi := 0.0, iLim
	for k := 0; k < 60 && (hi-lo) > 1e-7*iLim; k++ {
		mid := 0.5 * (lo + hi)
		if solvable(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// CurrentAtVoltage solves the discharge current that produces terminal
// voltage v. Voltages at or above OCV return zero current; voltages the
// cell cannot reach before its transport limit return ErrBeyondLimit.
func (c *Cell) CurrentAtVoltage(voltage float64) (OperatingPoint, error) {
	if err := c.Validate(); err != nil {
		return OperatingPoint{}, err
	}
	ocv, err := c.OpenCircuitVoltage()
	if err != nil {
		return OperatingPoint{}, err
	}
	if voltage >= ocv {
		return c.VoltageAtCurrent(0)
	}
	iLim, err := c.effectiveLimit()
	if err != nil {
		return OperatingPoint{}, err
	}
	iHi := iLim * (1 - 1e-9)
	opHi, err := c.VoltageAtCurrent(iHi)
	if err != nil {
		// Numerical edge: back off slightly further.
		iHi = iLim * (1 - 1e-4)
		opHi, err = c.VoltageAtCurrent(iHi)
		if err != nil {
			return OperatingPoint{}, err
		}
	}
	if voltage < opHi.Voltage {
		return OperatingPoint{}, fmt.Errorf("%w: voltage %.4f V below the limiting-current voltage %.4f V",
			ErrBeyondLimit, voltage, opHi.Voltage)
	}
	g := func(i float64) float64 {
		op, err := c.VoltageAtCurrent(i)
		if err != nil {
			return -1e3 // beyond limit: far below any target voltage
		}
		return op.Voltage - voltage
	}
	iStar, err := num.Brent(g, 0, iHi, 1e-10*iHi)
	if err != nil {
		return OperatingPoint{}, fmt.Errorf("flowcell: solving current at %g V: %w", voltage, err)
	}
	return c.VoltageAtCurrent(iStar)
}

// PolarizationCurve is a swept set of operating points, ordered by
// increasing current.
type PolarizationCurve []OperatingPoint

// Polarize sweeps n operating points from open circuit to maxFrac of the
// effective limiting current (use ~0.98; 1.0 is singular).
func (c *Cell) Polarize(n int, maxFrac float64) (PolarizationCurve, error) {
	return c.PolarizeContext(context.Background(), n, maxFrac)
}

// PolarizeContext is Polarize with cancellation, checked at every sweep
// point (each point is a full nonlinear cell solve, so a canceled
// context aborts within one point's solve time).
func (c *Cell) PolarizeContext(ctx context.Context, n int, maxFrac float64) (PolarizationCurve, error) {
	if n < 2 {
		return nil, fmt.Errorf("flowcell: need at least 2 sweep points, got %d", n)
	}
	if maxFrac <= 0 || maxFrac >= 1 {
		return nil, fmt.Errorf("flowcell: maxFrac %g out of (0,1)", maxFrac)
	}
	iLim, err := c.effectiveLimit()
	if err != nil {
		return nil, err
	}
	currents := num.Linspace(0, maxFrac*iLim, n)
	curve := make(PolarizationCurve, 0, n)
	for _, i := range currents {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		op, err := c.VoltageAtCurrent(i)
		if err != nil {
			return nil, fmt.Errorf("flowcell: sweep at %g A: %w", i, err)
		}
		curve = append(curve, op)
	}
	return curve, nil
}

// MaxPower returns the operating point of maximum power in the curve.
func (pc PolarizationCurve) MaxPower() OperatingPoint {
	if len(pc) == 0 {
		return OperatingPoint{}
	}
	best := pc[0]
	for _, op := range pc[1:] {
		if op.Power > best.Power {
			best = op
		}
	}
	return best
}

// VoltageAt linearly interpolates the curve's voltage at the given
// current; it returns an error outside the swept range.
func (pc PolarizationCurve) VoltageAt(current float64) (float64, error) {
	if len(pc) < 2 {
		return 0, fmt.Errorf("flowcell: curve too short")
	}
	if current < pc[0].Current || current > pc[len(pc)-1].Current {
		return 0, fmt.Errorf("flowcell: current %g outside swept range [%g, %g]",
			current, pc[0].Current, pc[len(pc)-1].Current)
	}
	for k := 1; k < len(pc); k++ {
		if current <= pc[k].Current {
			lo, hi := pc[k-1], pc[k]
			t := (current - lo.Current) / (hi.Current - lo.Current)
			return lo.Voltage + t*(hi.Voltage-lo.Voltage), nil
		}
	}
	return pc[len(pc)-1].Voltage, nil
}

// IsMonotoneDecreasing reports whether voltage strictly decreases with
// current along the curve — the qualitative property every physical
// polarization curve must satisfy (asserted by tests for both paths).
func (pc PolarizationCurve) IsMonotoneDecreasing() bool {
	for k := 1; k < len(pc); k++ {
		if pc[k].Voltage >= pc[k-1].Voltage {
			return false
		}
	}
	return true
}

// LimitingCurrentDensityApprox returns the current density (A/m2,
// geometric area) at the end of the sweep, an estimate of the limiting
// current density when the sweep runs close to the limit.
func (pc PolarizationCurve) LimitingCurrentDensityApprox() float64 {
	if len(pc) == 0 {
		return 0
	}
	return pc[len(pc)-1].CurrentDensity
}
