package flowcell

import (
	"errors"
	"math"
	"testing"
)

func halfChargedKjeang(t *testing.T) *Cell {
	t.Helper()
	c, err := KjeangCell(60).AtStateOfCharge(0.5)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAtStateOfCharge(t *testing.T) {
	c := halfChargedKjeang(t)
	// Totals preserved per side.
	if math.Abs(c.Anode.COxInlet+c.Anode.CRedInlet-1000) > 1e-9 {
		t.Fatalf("anode total changed: %g", c.Anode.COxInlet+c.Anode.CRedInlet)
	}
	if math.Abs(c.Cathode.COxInlet+c.Cathode.CRedInlet-1000) > 1e-9 {
		t.Fatalf("cathode total changed: %g", c.Cathode.COxInlet+c.Cathode.CRedInlet)
	}
	// 50% split.
	if c.Anode.CRedInlet != 500 || c.Cathode.COxInlet != 500 {
		t.Fatalf("SOC split wrong: %+v %+v", c.Anode, c.Cathode)
	}
	// At 50% SOC the Nernst terms cancel: OCV == standard OCV.
	ocv, err := c.OpenCircuitVoltage()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ocv-1.246) > 0.01 {
		t.Fatalf("50%% SOC OCV %g, want ~1.246 (standard)", ocv)
	}
	// Bounds.
	if _, err := c.AtStateOfCharge(0); err == nil {
		t.Fatal("SOC 0 accepted")
	}
	if _, err := c.AtStateOfCharge(1); err == nil {
		t.Fatal("SOC 1 accepted")
	}
}

func TestChargeAboveOCVDischargeBelow(t *testing.T) {
	c := halfChargedKjeang(t)
	i := 0.3 * c.LimitingCurrent()
	dis, err := c.VoltageAtCurrent(i)
	if err != nil {
		t.Fatal(err)
	}
	chg, err := c.ChargeAtCurrent(i)
	if err != nil {
		t.Fatal(err)
	}
	if !(dis.Voltage < dis.OpenCircuit && chg.Voltage > chg.OpenCircuit) {
		t.Fatalf("ordering violated: dis %.3f, OCV %.3f, chg %.3f",
			dis.Voltage, dis.OpenCircuit, chg.Voltage)
	}
	if !chg.Charging || dis.Charging {
		t.Fatal("Charging flag wrong")
	}
	// Loss budget closes on the charge side too.
	sum := chg.OpenCircuit + chg.CathodeLoss + chg.AnodeLoss + chg.OhmicLoss
	if math.Abs(chg.Voltage-sum) > 1e-9 {
		t.Fatalf("charge loss budget: %g vs %g", chg.Voltage, sum)
	}
}

func TestChargeVoltageMonotone(t *testing.T) {
	c := halfChargedKjeang(t)
	iLim := c.ChargingLimitingCurrent()
	prev := 0.0
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		op, err := c.ChargeAtCurrent(frac * iLim)
		if err != nil {
			t.Fatalf("frac %g: %v", frac, err)
		}
		if op.Voltage <= prev {
			t.Fatalf("charge voltage not increasing at frac %g", frac)
		}
		prev = op.Voltage
	}
}

func TestChargeAtVoltageRoundTrip(t *testing.T) {
	c := halfChargedKjeang(t)
	op, err := c.ChargeAtCurrent(0.4 * c.ChargingLimitingCurrent())
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.ChargeAtVoltage(op.Voltage)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back.Current-op.Current)/op.Current > 1e-6 {
		t.Fatalf("I->V->I: %g vs %g", back.Current, op.Current)
	}
	// At or below OCV: zero current.
	zero, err := c.ChargeAtVoltage(op.OpenCircuit - 0.1)
	if err != nil || zero.Current != 0 {
		t.Fatalf("below-OCV charge: %+v err=%v", zero, err)
	}
}

func TestChargeBeyondLimit(t *testing.T) {
	c := halfChargedKjeang(t)
	if _, err := c.ChargeAtCurrent(1.01 * c.ChargingLimitingCurrent()); !errors.Is(err, ErrBeyondLimit) {
		t.Fatalf("expected ErrBeyondLimit, got %v", err)
	}
	if _, err := c.ChargeAtVoltage(10); !errors.Is(err, ErrBeyondLimit) {
		t.Fatalf("expected ErrBeyondLimit at absurd voltage, got %v", err)
	}
	if _, err := c.ChargeAtCurrent(-1); err == nil {
		t.Fatal("negative magnitude accepted")
	}
}

func TestFullyChargedCellHasNoHeadroom(t *testing.T) {
	// Table II state (2000:1) has essentially no charging headroom:
	// the charging limit is ~1/2000 of the discharge limit.
	c := Power7Array().Cell
	if r := c.ChargingLimitingCurrent() / c.LimitingCurrent(); r > 0.01 {
		t.Fatalf("charged cell headroom ratio %g unexpectedly large", r)
	}
}

func TestRoundTripEfficiency(t *testing.T) {
	pts, err := KjeangCell(60).RoundTripEfficiency(0.5, 8, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("points %d", len(pts))
	}
	prev := 1.0
	for _, p := range pts {
		if p.Efficiency <= 0 || p.Efficiency >= 1 {
			t.Fatalf("efficiency %g out of (0,1)", p.Efficiency)
		}
		if p.Efficiency >= prev {
			t.Fatalf("efficiency must fall with current: %g after %g", p.Efficiency, prev)
		}
		if p.ChargeVoltage <= p.DischargeVoltage {
			t.Fatal("charge voltage must exceed discharge voltage")
		}
		prev = p.Efficiency
	}
	// Small-current efficiency approaches 1; deep currents cost real
	// voltage.
	if pts[0].Efficiency < 0.85 {
		t.Fatalf("low-current efficiency %g too low", pts[0].Efficiency)
	}
	if pts[len(pts)-1].Efficiency > 0.85 {
		t.Fatalf("near-limit efficiency %g too high", pts[len(pts)-1].Efficiency)
	}
	// Argument validation.
	if _, err := KjeangCell(60).RoundTripEfficiency(0.5, 1, 0.8); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := KjeangCell(60).RoundTripEfficiency(0.5, 4, 1.5); err == nil {
		t.Fatal("maxFrac>1 accepted")
	}
	if _, err := KjeangCell(60).RoundTripEfficiency(2, 4, 0.5); err == nil {
		t.Fatal("bad SOC accepted")
	}
}

func TestChargeFVMPathAgrees(t *testing.T) {
	corr := halfChargedKjeang(t)
	fvm := halfChargedKjeang(t)
	fvm.Path = PathFVM
	i := 0.4 * corr.ChargingLimitingCurrent()
	opC, err := corr.ChargeAtCurrent(i)
	if err != nil {
		t.Fatal(err)
	}
	opF, err := fvm.ChargeAtCurrent(i)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(opF.Voltage-opC.Voltage) / opC.Voltage; d > 0.05 {
		t.Fatalf("charge paths disagree %.1f%%: %g vs %g", 100*d, opC.Voltage, opF.Voltage)
	}
}
