package flowcell

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// VariationResult is the outcome of a manufacturing-variation Monte
// Carlo on an array: DRIE etch tolerances perturb each channel's width
// and depth, perturbing its flow share (parallel hydraulic network),
// electrode area and mass transfer, and therefore its current at the
// common terminal voltage.
type VariationResult struct {
	// Sigma is the applied relative geometric standard deviation.
	Sigma float64
	// Samples is the number of Monte Carlo array realizations.
	Samples int
	// NominalA is the unperturbed array current at the voltage.
	NominalA float64
	// MeanA and StdA summarize the realized array currents.
	MeanA, StdA float64
	// WorstA is the minimum realized array current (yield floor).
	WorstA float64
	// P05A is the 5th percentile of the realized currents.
	P05A float64
	// MeanShiftPct = (MeanA - NominalA)/NominalA * 100: systematic bias
	// from the nonlinear width dependence (Jensen effect).
	MeanShiftPct float64
}

// MonteCarloVariation perturbs every channel's width and height with
// independent Gaussian factors (1 + sigma*N(0,1), clamped to +-3 sigma)
// and re-evaluates the array current at the given terminal voltage.
// Flow redistributes across the parallel channels according to their
// hydraulic conductances (laminar: G ~ A * Dh^2 approximately via the
// exact fRe relation). The RNG is seeded deterministically.
func (a *Array) MonteCarloVariation(voltage, sigma float64, samples int, seed int64) (*VariationResult, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if sigma < 0 || sigma > 0.3 {
		return nil, fmt.Errorf("flowcell: sigma %g out of [0, 0.3]", sigma)
	}
	if samples < 2 {
		return nil, fmt.Errorf("flowcell: need >= 2 samples, got %d", samples)
	}
	nominal, err := a.CurrentAtVoltage(voltage)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	totalFlow := a.TotalFlowRate()
	currents := make([]float64, 0, samples)
	for s := 0; s < samples; s++ {
		i, err := a.realizationCurrent(voltage, sigma, totalFlow, rng)
		if err != nil {
			return nil, fmt.Errorf("flowcell: realization %d: %w", s, err)
		}
		currents = append(currents, i)
	}
	res := &VariationResult{
		Sigma:    sigma,
		Samples:  samples,
		NominalA: nominal.Current,
		WorstA:   math.Inf(1),
	}
	for _, i := range currents {
		res.MeanA += i
		if i < res.WorstA {
			res.WorstA = i
		}
	}
	res.MeanA /= float64(samples)
	for _, i := range currents {
		d := i - res.MeanA
		res.StdA += d * d
	}
	res.StdA = math.Sqrt(res.StdA / float64(samples-1))
	sorted := append([]float64(nil), currents...)
	sort.Float64s(sorted)
	res.P05A = sorted[int(0.05*float64(samples))]
	res.MeanShiftPct = 100 * (res.MeanA - res.NominalA) / res.NominalA
	return res, nil
}

// realizationCurrent evaluates one perturbed array. Each channel k gets
// geometry factors; the common pressure head distributes the fixed
// total flow in proportion to the channels' hydraulic conductances;
// each channel's current at the shared voltage is then summed.
func (a *Array) realizationCurrent(voltage, sigma, totalFlow float64, rng *rand.Rand) (float64, error) {
	n := a.NChannels
	type geom struct{ w, h float64 }
	chans := make([]geom, n)
	conds := make([]float64, n)
	sum := 0.0
	clamp := func(f float64) float64 {
		if f < 1-3*sigma {
			f = 1 - 3*sigma
		}
		if f > 1+3*sigma {
			f = 1 + 3*sigma
		}
		return f
	}
	for k := 0; k < n; k++ {
		fw := clamp(1 + sigma*rng.NormFloat64())
		fh := clamp(1 + sigma*rng.NormFloat64())
		w := a.Cell.Channel.Width * fw
		h := a.Cell.Channel.Height * fh
		chans[k] = geom{w, h}
		// Laminar conductance ~ A * Dh^2 / fRe (per unit gradient).
		area := w * h
		dh := 2 * area / (w + h)
		aspect := math.Min(w, h) / math.Max(w, h)
		g := area * dh * dh / fReApprox(aspect)
		conds[k] = g
		sum += g
	}
	total := 0.0
	for k := 0; k < n; k++ {
		cell := a.Cell // copy
		cell.Channel.Width = chans[k].w
		cell.Channel.Height = chans[k].h
		cell.StreamFlowRate = totalFlow * conds[k] / sum / 2
		op, err := cell.CurrentAtVoltage(voltage)
		if err != nil {
			// A starved narrow channel may not reach the voltage; it
			// contributes its limited current instead of failing the
			// whole realization.
			lim, lerr := cell.effectiveLimit()
			if lerr != nil {
				return 0, err
			}
			opLim, lerr := cell.VoltageAtCurrent(lim * (1 - 1e-6))
			if lerr != nil {
				return 0, err
			}
			total += opLim.Current
			continue
		}
		total += op.Current
	}
	return total, nil
}

// fReApprox mirrors cfd.FRe without the panic-on-range contract (the
// Monte Carlo can momentarily produce extreme aspects at the clamp
// boundary).
func fReApprox(aspect float64) float64 {
	if aspect <= 0 {
		return 96
	}
	if aspect > 1 {
		aspect = 1
	}
	a := aspect
	return 96 * (1 - 1.3553*a + 1.9467*a*a - 1.7012*a*a*a + 0.9564*a*a*a*a - 0.2537*a*a*a*a*a)
}
