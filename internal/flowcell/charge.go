package flowcell

import (
	"errors"
	"fmt"

	"bright/internal/echem"
	"bright/internal/num"
)

// Charging support. During charge the reactions of Section II run in
// reverse: the negative electrode reduces V(III) back to V(II) and the
// positive electrode oxidizes V(IV) to V(V), so the terminal voltage
// sits *above* the OCV by the same three loss mechanisms. Together with
// the discharge solvers this closes the round-trip of the secondary
// battery the paper's Section II describes.

// ChargeAtCurrent solves the terminal voltage while charging with
// current > 0 (magnitude). The consumed species are the discharge
// products, so a fully charged cell (Table II inlet state, 2000:1) has
// almost no charging headroom — charge from a partially discharged
// state (see AtStateOfCharge).
func (c *Cell) ChargeAtCurrent(current float64) (OperatingPoint, error) {
	if err := c.Validate(); err != nil {
		return OperatingPoint{}, err
	}
	if current < 0 {
		return OperatingPoint{}, fmt.Errorf("flowcell: charge current must be a magnitude, got %g", current)
	}
	ocv, err := c.OpenCircuitVoltage()
	if err != nil {
		return OperatingPoint{}, err
	}
	area := c.ElectrodeArea()
	iDens := (current + c.CrossoverCurrent()) / area

	var etaA, etaC float64
	switch c.Path {
	case PathCorrelation:
		// Anode (negative electrode) runs reduction on charge; cathode
		// (positive electrode) runs oxidation.
		etaA, err = c.halfState(c.Anode).Overpotential(iDens, echem.Reduction)
		if err == nil {
			etaC, err = c.halfState(c.Cathode).Overpotential(iDens, echem.Oxidation)
		}
	case PathFVM:
		etaA, err = c.electrodeFVM(c.Anode, echem.Reduction, iDens)
		if err == nil {
			etaC, err = c.electrodeFVM(c.Cathode, echem.Oxidation, iDens)
		}
	default:
		return OperatingPoint{}, fmt.Errorf("flowcell: unknown solver path %v", c.Path)
	}
	if err != nil {
		if errors.Is(err, echem.ErrMassTransportLimited) {
			return OperatingPoint{}, fmt.Errorf("%w: %v", ErrBeyondLimit, err)
		}
		return OperatingPoint{}, err
	}
	ohmic := iDens * c.OhmicASR()
	// etaC > 0 (oxidation), etaA < 0 (reduction): both push V above OCV.
	v := ocv + etaC - etaA + ohmic
	geo := c.GeometricElectrodeArea()
	return OperatingPoint{
		Current:        current,
		Voltage:        v,
		CurrentDensity: current / geo,
		PowerDensity:   current * v / geo,
		Power:          current * v, // power absorbed from the charger
		OhmicLoss:      ohmic,
		AnodeLoss:      -etaA,
		CathodeLoss:    etaC,
		OpenCircuit:    ocv,
		Charging:       true,
	}, nil
}

// ChargingLimitingCurrent returns the transport-limited charging
// current (A): on charge the anode consumes its oxidized species and
// the cathode its reduced species.
func (c *Cell) ChargingLimitingCurrent() float64 {
	a := c.halfState(c.Anode).LimitingCurrentDensity(echem.Reduction)
	k := c.halfState(c.Cathode).LimitingCurrentDensity(echem.Oxidation)
	if k < a {
		a = k
	}
	return a * c.ElectrodeArea()
}

// ChargeAtVoltage solves the charging current drawn at a terminal
// voltage above the OCV.
func (c *Cell) ChargeAtVoltage(voltage float64) (OperatingPoint, error) {
	if err := c.Validate(); err != nil {
		return OperatingPoint{}, err
	}
	ocv, err := c.OpenCircuitVoltage()
	if err != nil {
		return OperatingPoint{}, err
	}
	if voltage <= ocv {
		return c.ChargeAtCurrent(0)
	}
	iLim := c.ChargingLimitingCurrent() - c.CrossoverCurrent()
	if iLim <= 0 {
		return OperatingPoint{}, fmt.Errorf("%w: no charging headroom at this state of charge", ErrBeyondLimit)
	}
	iHi := iLim * (1 - 1e-6)
	opHi, err := c.ChargeAtCurrent(iHi)
	if err != nil {
		iHi = iLim * (1 - 1e-3)
		if opHi, err = c.ChargeAtCurrent(iHi); err != nil {
			return OperatingPoint{}, err
		}
	}
	if voltage > opHi.Voltage {
		return OperatingPoint{}, fmt.Errorf("%w: voltage %.4f V above the charge-limited voltage %.4f V",
			ErrBeyondLimit, voltage, opHi.Voltage)
	}
	g := func(i float64) float64 {
		op, err := c.ChargeAtCurrent(i)
		if err != nil {
			return 1e3 // beyond limit: voltage diverges upward
		}
		return op.Voltage - voltage
	}
	iStar, err := num.Brent(g, 0, iHi, 1e-10*iHi)
	if err != nil {
		return OperatingPoint{}, fmt.Errorf("flowcell: solving charge current at %g V: %w", voltage, err)
	}
	return c.ChargeAtCurrent(iStar)
}

// AtStateOfCharge returns a copy of the cell with both electrolytes set
// to the given state of charge (fraction in (0, 1)) at the same total
// vanadium concentration per side. SOC 1 is the fully charged Table II
// state; SOC 0.5 is the natural state for round-trip studies.
func (c *Cell) AtStateOfCharge(soc float64) (*Cell, error) {
	if soc <= 0 || soc >= 1 {
		return nil, fmt.Errorf("flowcell: SOC %g out of (0,1)", soc)
	}
	out := *c
	totalA := c.Anode.COxInlet + c.Anode.CRedInlet
	totalC := c.Cathode.COxInlet + c.Cathode.CRedInlet
	// Anode charged species is Red (fuel), cathode charged species is Ox.
	out.Anode.CRedInlet = soc * totalA
	out.Anode.COxInlet = (1 - soc) * totalA
	out.Cathode.COxInlet = soc * totalC
	out.Cathode.CRedInlet = (1 - soc) * totalC
	return &out, nil
}

// RoundTripPoint is one current level of a round-trip efficiency sweep.
type RoundTripPoint struct {
	Current          float64 // A
	DischargeVoltage float64 // V
	ChargeVoltage    float64 // V
	// Efficiency is the voltage efficiency V_dis/V_chg (coulombic
	// efficiency is ~1 for the crossover-free co-laminar design).
	Efficiency float64
}

// RoundTripEfficiency sweeps symmetric charge/discharge currents at the
// given state of charge and returns the voltage-efficiency curve, the
// round-trip figure of merit of the flow battery.
func (c *Cell) RoundTripEfficiency(soc float64, n int, maxFrac float64) ([]RoundTripPoint, error) {
	if n < 2 {
		return nil, fmt.Errorf("flowcell: need >= 2 sweep points, got %d", n)
	}
	if maxFrac <= 0 || maxFrac >= 1 {
		return nil, fmt.Errorf("flowcell: maxFrac %g out of (0,1)", maxFrac)
	}
	cell, err := c.AtStateOfCharge(soc)
	if err != nil {
		return nil, err
	}
	iLim := cell.LimitingCurrent()
	if chg := cell.ChargingLimitingCurrent(); chg < iLim {
		iLim = chg
	}
	currents := num.Linspace(0, maxFrac*iLim, n+1)[1:] // skip 0 (efficiency is 1 there)
	out := make([]RoundTripPoint, 0, n)
	for _, i := range currents {
		dis, err := cell.VoltageAtCurrent(i)
		if err != nil {
			return nil, fmt.Errorf("flowcell: round-trip discharge at %g A: %w", i, err)
		}
		chg, err := cell.ChargeAtCurrent(i)
		if err != nil {
			return nil, fmt.Errorf("flowcell: round-trip charge at %g A: %w", i, err)
		}
		out = append(out, RoundTripPoint{
			Current:          i,
			DischargeVoltage: dis.Voltage,
			ChargeVoltage:    chg.Voltage,
			Efficiency:       dis.Voltage / chg.Voltage,
		})
	}
	return out, nil
}
